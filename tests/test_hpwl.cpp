#include "place/hpwl.h"

#include <gtest/gtest.h>

#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

TEST(Hpwl, MatchesManualBoundingBox) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  const Netlist& nl = d.netlist();
  for (int n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).routable()) continue;
    Coord lx = 0, hx = 0, ly = 0, hy = 0;
    bool first = true;
    for (const NetPin& p : nl.net(n).pins) {
      Point pos = d.pin_position(p);
      if (first) {
        lx = hx = pos.x;
        ly = hy = pos.y;
        first = false;
      } else {
        lx = std::min(lx, pos.x);
        hx = std::max(hx, pos.x);
        ly = std::min(ly, pos.y);
        hy = std::max(hy, pos.y);
      }
    }
    EXPECT_EQ(net_hpwl(d, n), (hx - lx) + (hy - ly)) << nl.net(n).name;
  }
}

TEST(Hpwl, UnroutableNetIsZero) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  const Netlist& nl = d.netlist();
  for (int n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).routable()) EXPECT_EQ(net_hpwl(d, n), 0);
  }
}

TEST(Hpwl, TotalIsSumOfNets) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  Coord sum = 0;
  for (int n = 0; n < d.netlist().num_nets(); ++n) sum += net_hpwl(d, n);
  EXPECT_EQ(total_hpwl(d), sum);
}

TEST(Hpwl, HpwlOfNetsSubset) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  std::vector<int> nets = {0, 1, 2};
  Coord expect = net_hpwl(d, 0) + net_hpwl(d, 1) + net_hpwl(d, 2);
  EXPECT_EQ(hpwl_of_nets(d, nets), expect);
}

TEST(Hpwl, NetsOfInstanceUniqueAndComplete) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  const Netlist& nl = d.netlist();
  for (int i = 0; i < std::min(20, nl.num_instances()); ++i) {
    auto nets = nets_of_instance(d, i);
    // No duplicates.
    for (std::size_t a = 0; a < nets.size(); ++a) {
      for (std::size_t b = a + 1; b < nets.size(); ++b) {
        EXPECT_NE(nets[a], nets[b]);
      }
    }
    // Every connected pin's net is present.
    const Cell& c = nl.cell_of(i);
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      int n = nl.net_at(i, static_cast<int>(p));
      if (n < 0) continue;
      EXPECT_NE(std::find(nets.begin(), nets.end(), n), nets.end());
    }
  }
}

TEST(Hpwl, MovingCellChangesOnlyItsNets) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  int inst = 0;
  auto nets = nets_of_instance(d, inst);
  ASSERT_FALSE(nets.empty());
  std::vector<Coord> before(d.netlist().num_nets());
  for (int n = 0; n < d.netlist().num_nets(); ++n) before[n] = net_hpwl(d, n);
  Placement p = d.placement(inst);
  p.x = (p.x + 11) % (d.sites_per_row() - 8);
  d.set_placement(inst, p);
  for (int n = 0; n < d.netlist().num_nets(); ++n) {
    bool is_mine = std::find(nets.begin(), nets.end(), n) != nets.end();
    if (!is_mine) {
      EXPECT_EQ(net_hpwl(d, n), before[n]) << "net " << n;
    }
  }
}

}  // namespace
}  // namespace vm1
