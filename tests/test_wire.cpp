/// Wire-format tests for the distributed window-solve service
/// (dist/wire.h): bit-exact encode -> decode round-trips for every message
/// type (including NaN doubles and a full design replica), and a seeded
/// corruption/truncation fuzz harness proving that a damaged stream always
/// surfaces as a typed WireError — never UB, an unbounded allocation, or a
/// half-decoded message. Also built into the ASan `faults` binary.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/window.h"
#include "core/window_solve.h"
#include "dist/wire.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace vm1::dist {
namespace {

Design placed_design(std::uint64_t seed, CellArch arch) {
  DesignOptions dopt;
  dopt.scale = 0.3;
  dopt.utilization = 0.7;
  dopt.seed = seed | 1;
  Design d = make_design("tiny", arch, dopt);
  GlobalPlaceOptions gp;
  gp.seed = seed * 31 + 7;
  global_place(d, gp);
  legalize(d);
  return d;
}

WireRequest sample_request(std::uint64_t seed) {
  Rng rng(seed);
  WireRequest rq;
  rq.req_id = rng.next();
  rq.job.widx = static_cast<int>(rng.uniform(1000));
  rq.job.key = rng.next();
  rq.job.window = Window{3, 40, 1, 4};
  rq.job.movable = {2, 5, 9, static_cast<int>(rng.uniform(100))};
  rq.job.lx = 4;
  rq.job.ly = 1;
  rq.job.allow_move = rng.chance(0.5);
  rq.job.allow_flip = rng.chance(0.5);
  rq.job.rounding_fallback = rng.chance(0.5);
  rq.job.params.alpha = 20 + rng.uniform_real();
  rq.job.params.net_beta = {1.0, 0.5, 2.25};
  rq.job.mip.max_nodes = 60;
  rq.job.mip.time_limit_sec = 1.5;
  rq.job.mip.lp_options.time_limit_sec = 0.75;
  rq.greedy_fallback = rng.chance(0.5);
  rq.sig_mip.max_nodes = 40;
  rq.faults.rate[0] = 0.25;
  rq.faults.rate[fault::kNumSites - 1] = 0.5;
  rq.faults.seed = rng.next();
  rq.expected_sig = WindowSig{rng.next(), rng.next()};
  return rq;
}

WireReply sample_reply(std::uint64_t seed) {
  Rng rng(seed);
  WireReply rp;
  rp.req_id = rng.next();
  rp.result.faults = 1;
  rp.result.cells = {2, 5, 9};
  rp.result.has_solution = true;
  rp.result.usable = true;
  rp.result.placements = {Placement{10, 2, false}, Placement{-3, 0, true},
                          Placement{7, 1, true}};
  rp.result.warm_obj = 12.75;
  rp.result.objective = 11.5;
  rp.result.nodes = 17;
  rp.result.lp_iterations = 301;
  rp.result.dual_pivots = 44;
  rp.result.warm_solves = 12;
  rp.result.cold_restarts = 1;
  rp.result.rc_fixed = 3;
  return rp;
}

TEST(WireFrame, RoundTripsBitExact) {
  std::vector<std::uint8_t> payload = {0xde, 0xad, 0x00, 0xff, 0x42};
  std::vector<std::uint8_t> frame = encode_frame(MsgType::kSync, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());

  std::vector<std::uint8_t> buf = frame;
  std::optional<Frame> f = extract_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, MsgType::kSync);
  EXPECT_EQ(f->payload, payload);
  EXPECT_TRUE(buf.empty()) << "frame bytes must be consumed";
}

TEST(WireFrame, PartialBuffersWaitForMoreBytes) {
  std::vector<std::uint8_t> frame =
      encode_frame(MsgType::kHello, {1, 2, 3, 4});
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<std::uint8_t> buf(frame.begin(), frame.begin() + cut);
    EXPECT_EQ(extract_frame(buf), std::nullopt) << "cut at " << cut;
    EXPECT_EQ(buf.size(), cut) << "partial frame must not be consumed";
  }
}

TEST(WireFrame, BackToBackFramesPopInOrder) {
  std::vector<std::uint8_t> buf = encode_frame(MsgType::kHello, {1});
  std::vector<std::uint8_t> second = encode_frame(MsgType::kShutdown, {});
  buf.insert(buf.end(), second.begin(), second.end());
  std::optional<Frame> a = extract_frame(buf);
  std::optional<Frame> b = extract_frame(buf);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->type, MsgType::kHello);
  EXPECT_EQ(b->type, MsgType::kShutdown);
  EXPECT_EQ(extract_frame(buf), std::nullopt);
}

TEST(WireFrame, RejectsBadMagicVersionTypeAndChecksum) {
  std::vector<std::uint8_t> good = encode_frame(MsgType::kReply, {9, 9, 9});

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(extract_frame(bad_magic), WireError);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] ^= 0xff;
  EXPECT_THROW(extract_frame(bad_version), WireError);

  std::vector<std::uint8_t> bad_type = good;
  bad_type[6] = 0xff;  // type far outside the MsgType range
  EXPECT_THROW(extract_frame(bad_type), WireError);

  std::vector<std::uint8_t> bad_len = good;
  bad_len[11] = 0xff;  // payload_len high byte -> > kMaxPayload
  EXPECT_THROW(extract_frame(bad_len), WireError);

  std::vector<std::uint8_t> bad_payload = good;
  bad_payload[kFrameHeaderSize] ^= 0x01;  // checksum now disagrees
  EXPECT_THROW(extract_frame(bad_payload), WireError);
}

TEST(WireMessages, HelloErrorSyncRoundTrip) {
  WireHello h;
  h.pid = 0x1234567890abcdefULL;
  h.num_fault_sites = fault::kNumSites;
  WireHello h2 = decode_hello(encode_hello(h));
  EXPECT_EQ(h2.pid, h.pid);
  EXPECT_EQ(h2.num_fault_sites, h.num_fault_sites);

  WireErrorMsg e;
  e.req_id = 77;
  e.code = ErrorCode::kDesync;
  e.message = "window signature mismatch";
  WireErrorMsg e2 = decode_error(encode_error(e));
  EXPECT_EQ(e2.req_id, e.req_id);
  EXPECT_EQ(e2.code, e.code);
  EXPECT_EQ(e2.message, e.message);

  WireSync s;
  s.changed = {{3, Placement{10, 2, true}}, {8, Placement{-4, 0, false}}};
  WireSync s2 = decode_sync(encode_sync(s));
  ASSERT_EQ(s2.changed.size(), s.changed.size());
  for (std::size_t i = 0; i < s.changed.size(); ++i) {
    EXPECT_EQ(s2.changed[i].first, s.changed[i].first);
    EXPECT_EQ(s2.changed[i].second, s.changed[i].second);
  }
}

TEST(WireMessages, RequestRoundTripsBitExact) {
  WireRequest rq = sample_request(42);
  WireRequest r2 = decode_request(encode_request(rq));
  EXPECT_EQ(r2.req_id, rq.req_id);
  EXPECT_EQ(r2.job.widx, rq.job.widx);
  EXPECT_EQ(r2.job.key, rq.job.key);
  EXPECT_EQ(r2.job.window.x0, rq.job.window.x0);
  EXPECT_EQ(r2.job.window.x1, rq.job.window.x1);
  EXPECT_EQ(r2.job.window.row0, rq.job.window.row0);
  EXPECT_EQ(r2.job.window.row1, rq.job.window.row1);
  EXPECT_EQ(r2.job.movable, rq.job.movable);
  EXPECT_EQ(r2.job.lx, rq.job.lx);
  EXPECT_EQ(r2.job.ly, rq.job.ly);
  EXPECT_EQ(r2.job.allow_move, rq.job.allow_move);
  EXPECT_EQ(r2.job.allow_flip, rq.job.allow_flip);
  EXPECT_EQ(r2.job.rounding_fallback, rq.job.rounding_fallback);
  // Bitwise double comparisons on purpose: the solve path is only
  // bit-identical across processes if its inputs are.
  EXPECT_EQ(r2.job.params.alpha, rq.job.params.alpha);
  EXPECT_EQ(r2.job.params.net_beta, rq.job.params.net_beta);
  EXPECT_EQ(r2.job.mip.max_nodes, rq.job.mip.max_nodes);
  EXPECT_EQ(r2.job.mip.time_limit_sec, rq.job.mip.time_limit_sec);
  EXPECT_EQ(r2.job.mip.lp_options.time_limit_sec,
            rq.job.mip.lp_options.time_limit_sec);
  EXPECT_EQ(r2.greedy_fallback, rq.greedy_fallback);
  EXPECT_EQ(r2.sig_mip.max_nodes, rq.sig_mip.max_nodes);
  for (int i = 0; i < fault::kNumSites; ++i) {
    EXPECT_EQ(r2.faults.rate[i], rq.faults.rate[i]) << "site " << i;
  }
  EXPECT_EQ(r2.faults.seed, rq.faults.seed);
  EXPECT_EQ(r2.expected_sig.a, rq.expected_sig.a);
  EXPECT_EQ(r2.expected_sig.b, rq.expected_sig.b);
}

TEST(WireMessages, ReplyRoundTripsBitExactIncludingNaN) {
  WireReply rp = sample_reply(7);
  rp.result.objective = std::numeric_limits<double>::quiet_NaN();
  WireReply r2 = decode_reply(encode_reply(rp));
  EXPECT_EQ(r2.req_id, rp.req_id);
  EXPECT_EQ(r2.result.cells, rp.result.cells);
  EXPECT_EQ(r2.result.has_solution, rp.result.has_solution);
  EXPECT_EQ(r2.result.usable, rp.result.usable);
  ASSERT_EQ(r2.result.placements.size(), rp.result.placements.size());
  for (std::size_t i = 0; i < rp.result.placements.size(); ++i) {
    EXPECT_EQ(r2.result.placements[i], rp.result.placements[i]);
  }
  EXPECT_EQ(r2.result.warm_obj, rp.result.warm_obj);
  // NaN must survive the trip as NaN (IEEE-754 bit-pattern transport).
  EXPECT_TRUE(std::isnan(r2.result.objective));
  EXPECT_EQ(r2.result.nodes, rp.result.nodes);
  EXPECT_EQ(r2.result.lp_iterations, rp.result.lp_iterations);
  EXPECT_EQ(r2.result.dual_pivots, rp.result.dual_pivots);

  WireReply failed;
  failed.req_id = 9;
  failed.result.failed = true;
  failed.result.error = "injected fault: build_throw";
  failed.result.faults = 1;
  WireReply f2 = decode_reply(encode_reply(failed));
  EXPECT_TRUE(f2.result.failed);
  EXPECT_EQ(f2.result.error, failed.result.error);
  EXPECT_EQ(f2.result.faults, 1);
}

TEST(WireDesign, ReplicaRoundTripsToIdenticalDigest) {
  for (CellArch arch : {CellArch::kClosedM1, CellArch::kOpenM1}) {
    Design d = placed_design(11, arch);
    std::vector<std::uint8_t> bytes = encode_design(d);
    Design r = decode_design(bytes);

    ASSERT_EQ(r.netlist().num_instances(), d.netlist().num_instances());
    for (int i = 0; i < d.netlist().num_instances(); ++i) {
      EXPECT_EQ(r.placement(i), d.placement(i)) << "instance " << i;
    }
    EXPECT_EQ(design_digest(r), design_digest(d));
    // Re-encoding the replica must be byte-identical: the snapshot is a
    // fixpoint, so digest comparisons across processes are meaningful.
    EXPECT_EQ(encode_design(r), bytes);
  }
}

TEST(WireDesign, ReplicaSolvesWindowBitIdentically) {
  Design d = placed_design(23, CellArch::kClosedM1);
  Design r = decode_design(encode_design(d));

  WindowGrid grid = partition_windows(d, 0, 0, 20, 3);
  int widx = -1;
  for (std::size_t w = 0; w < grid.windows.size(); ++w) {
    if (grid.movable[w].size() >= 2) {
      widx = static_cast<int>(w);
      break;
    }
  }
  ASSERT_GE(widx, 0) << "no window with movable cells";

  WindowSolveJob job;
  job.widx = widx;
  job.key = 123;
  job.window = grid.windows[widx];
  job.movable = grid.movable[widx];
  job.params.alpha = 25.0;
  job.mip.max_nodes = 40;
  job.mip.time_limit_sec = 3600;
  job.mip.lp_options.time_limit_sec = 0;

  WindowSolveResult a = solve_window(d, job, nullptr);
  WindowSolveResult b = solve_window(r, job, nullptr);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.usable, b.usable);
  EXPECT_EQ(a.cells, b.cells);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i], b.placements[i]) << "cell " << i;
  }
  EXPECT_EQ(a.warm_obj, b.warm_obj);
  EXPECT_EQ(a.objective, b.objective);
}

/// Corruption fuzz: any single-byte flip or truncation of a valid frame
/// must either fail with WireError or (for payload-region flips that keep
/// a decodable value) succeed — anything else (crash, hang, non-Wire
/// exception) fails the test. ASan (the `faults` binary) additionally
/// proves no out-of-bounds reads.
TEST(WireFuzz, MutatedFramesNeverEscapeWireError) {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(encode_frame(MsgType::kRequest,
                                encode_request(sample_request(1))));
  corpus.push_back(encode_frame(MsgType::kReply,
                                encode_reply(sample_reply(2))));
  WireSync sync;
  sync.changed = {{0, Placement{1, 1, false}}};
  corpus.push_back(encode_frame(MsgType::kSync, encode_sync(sync)));

  Rng rng(2024);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::uint8_t> buf =
        corpus[rng.uniform(corpus.size())];
    if (rng.chance(0.5)) {
      buf.resize(rng.uniform(buf.size() + 1));  // truncate
    } else {
      buf[rng.uniform(buf.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));  // bit flip
    }
    try {
      std::optional<Frame> f = extract_frame(buf);
      if (!f) continue;  // truncation read as "need more bytes" — fine
      // A frame that still checksums (flip before the payload start is
      // caught above; a flip that lands in a dead zone cannot — the
      // checksum covers the payload only) must decode or throw WireError.
      switch (f->type) {
        case MsgType::kRequest:
          decode_request(f->payload);
          break;
        case MsgType::kReply:
          decode_reply(f->payload);
          break;
        case MsgType::kSync:
          decode_sync(f->payload);
          break;
        default:
          break;
      }
    } catch (const WireError&) {
      // expected for most mutations
    }
  }
}

/// Payload-level fuzz (no frame checksum shield): decoders facing flipped
/// or truncated payloads directly must still contain the damage.
TEST(WireFuzz, MutatedPayloadsNeverEscapeWireError) {
  Design d = placed_design(5, CellArch::kClosedM1);
  std::vector<std::uint8_t> design_bytes = encode_design(d);
  std::vector<std::uint8_t> request_bytes =
      encode_request(sample_request(3));
  std::vector<std::uint8_t> reply_bytes = encode_reply(sample_reply(4));

  Rng rng(77);
  auto mutate = [&rng](std::vector<std::uint8_t> b) {
    if (rng.chance(0.5)) {
      b.resize(rng.uniform(b.size() + 1));
    } else {
      b[rng.uniform(b.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    return b;
  };
  for (int iter = 0; iter < 1000; ++iter) {
    try {
      decode_request(mutate(request_bytes));
    } catch (const WireError&) {
    }
    try {
      decode_reply(mutate(reply_bytes));
    } catch (const WireError&) {
    }
    try {
      decode_design(mutate(design_bytes));
    } catch (const WireError&) {
    }
  }
}

}  // namespace
}  // namespace vm1::dist
