#include "core/candidates.h"

#include <gtest/gtest.h>

#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

class CandidatesTest : public ::testing::Test {
 protected:
  CandidatesTest() : d_(make_design("tiny", CellArch::kClosedM1)) {
    global_place(d_);
    legalize(d_);
    win_.x0 = 0;
    win_.x1 = d_.sites_per_row();
    win_.row0 = 0;
    win_.row1 = d_.num_rows() - 1;
  }

  std::vector<int> all_movable() {
    std::vector<int> v;
    for (int i = 0; i < d_.netlist().num_instances(); ++i) v.push_back(i);
    return v;
  }

  Design d_;
  Window win_;
};

TEST_F(CandidatesTest, CurrentPlacementIsCandidateZero) {
  auto movable = all_movable();
  auto mask = fixed_site_mask(d_, win_, movable);
  auto cands = enumerate_candidates(d_, 0, win_, mask, 3, 1, true, true);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands[0], d_.placement(0));
}

TEST_F(CandidatesTest, PerturbationRangeRespected) {
  auto movable = all_movable();
  auto mask = fixed_site_mask(d_, win_, movable);
  const int lx = 4, ly = 1;
  for (int i = 0; i < 10; ++i) {
    const Placement cur = d_.placement(i);
    for (const Candidate& c :
         enumerate_candidates(d_, i, win_, mask, lx, ly, true, true)) {
      EXPECT_LE(std::abs(c.x - cur.x), lx);
      EXPECT_LE(std::abs(c.row - cur.row), ly);
    }
  }
}

TEST_F(CandidatesTest, CandidatesStayInsideWindow) {
  Window small;
  small.x0 = 4;
  small.x1 = 18;
  small.row0 = 1;
  small.row1 = 2;
  // Movable set: cells fully inside.
  std::vector<int> movable;
  const Netlist& nl = d_.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d_.placement(i);
    if (small.contains_footprint(p.x, p.row, nl.cell_of(i).width_sites)) {
      movable.push_back(i);
    }
  }
  auto mask = fixed_site_mask(d_, small, movable);
  for (int m : movable) {
    int w = nl.cell_of(m).width_sites;
    auto cands = enumerate_candidates(d_, m, small, mask, 8, 3, true, true);
    for (std::size_t k = 1; k < cands.size(); ++k) {  // 0 = identity
      EXPECT_TRUE(small.contains_footprint(cands[k].x, cands[k].row, w));
    }
  }
}

TEST_F(CandidatesTest, FixedMaskExcludesOccupiedSites) {
  // Use a window over everything but mark only instance 0 movable: all
  // other cells become fixed blockages.
  std::vector<int> movable = {0};
  auto mask = fixed_site_mask(d_, win_, movable);
  const Netlist& nl = d_.netlist();
  auto cands = enumerate_candidates(d_, 0, win_, mask, 6, 2, true, false);
  auto grid = occupancy_grid(d_);
  for (std::size_t k = 1; k < cands.size(); ++k) {
    for (int s = cands[k].x; s < cands[k].x + nl.cell_of(0).width_sites;
         ++s) {
      int occ = grid[cands[k].row][s];
      EXPECT_TRUE(occ < 0 || occ == 0)
          << "candidate overlaps fixed cell " << occ;
    }
  }
}

TEST_F(CandidatesTest, FlipOnlyModeProducesAtMostTwo) {
  auto movable = all_movable();
  auto mask = fixed_site_mask(d_, win_, movable);
  auto cands = enumerate_candidates(d_, 3, win_, mask, 4, 1,
                                    /*allow_move=*/false,
                                    /*allow_flip=*/true);
  EXPECT_GE(cands.size(), 1u);
  EXPECT_LE(cands.size(), 2u);
  for (const Candidate& c : cands) {
    EXPECT_EQ(c.x, d_.placement(3).x);
    EXPECT_EQ(c.row, d_.placement(3).row);
  }
}

TEST_F(CandidatesTest, NoFlipNoMoveIsIdentityOnly) {
  auto movable = all_movable();
  auto mask = fixed_site_mask(d_, win_, movable);
  auto cands = enumerate_candidates(d_, 5, win_, mask, 4, 1, false, false);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], d_.placement(5));
}

TEST_F(CandidatesTest, LargerRangeGivesMoreCandidates) {
  auto movable = all_movable();
  auto mask = fixed_site_mask(d_, win_, movable);
  auto small = enumerate_candidates(d_, 7, win_, mask, 1, 0, true, false);
  auto large = enumerate_candidates(d_, 7, win_, mask, 5, 1, true, false);
  EXPECT_GE(large.size(), small.size());
}

TEST(WindowStruct, ContainsFootprint) {
  Window w;
  w.x0 = 10;
  w.x1 = 20;
  w.row0 = 2;
  w.row1 = 4;
  EXPECT_TRUE(w.contains_footprint(10, 2, 5));
  EXPECT_TRUE(w.contains_footprint(15, 4, 5));
  EXPECT_FALSE(w.contains_footprint(16, 4, 5));  // spills right
  EXPECT_FALSE(w.contains_footprint(9, 3, 5));   // starts left
  EXPECT_FALSE(w.contains_footprint(12, 5, 2));  // row below window
  EXPECT_EQ(w.width(), 10);
  EXPECT_EQ(w.rows(), 3);
}

}  // namespace
}  // namespace vm1
