#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "lp/factor.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace vm1::lp {
namespace {

Result solve(const Problem& p) {
  SimplexSolver s;
  return s.solve(p);
}

TEST(Simplex, EmptyProblem) {
  Problem p;
  Result r = solve(p);
  EXPECT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, 0);
}

TEST(Simplex, UnconstrainedBoxMinimum) {
  Problem p;
  p.add_variable(-2, 5, 3.0, "x");   // cost 3 -> sits at lower bound
  p.add_variable(-4, 7, -2.0, "y");  // cost -2 -> sits at upper bound
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], -2, 1e-7);
  EXPECT_NEAR(r.x[1], 7, 1e-7);
  EXPECT_NEAR(r.objective, 3 * -2 + -2 * 7, 1e-7);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // => min -3x - 5y; optimum x=2, y=6, z=-36.
  Problem p;
  int x = p.add_variable(0, kInf, -3, "x");
  int y = p.add_variable(0, kInf, -5, "y");
  p.add_constraint({{x, 1}}, Sense::kLe, 4);
  p.add_constraint({{y, 2}}, Sense::kLe, 12);
  p.add_constraint({{x, 3}, {y, 2}}, Sense::kLe, 18);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -36, 1e-6);
  EXPECT_NEAR(r.x[0], 2, 1e-6);
  EXPECT_NEAR(r.x[1], 6, 1e-6);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min x + 2y s.t. x + y >= 3, x - y == 1, 0 <= x,y <= 10.
  // From x = y + 1: x + y >= 3 -> y >= 1; objective 3y + 1 -> y = 1, x = 2.
  Problem p;
  int x = p.add_variable(0, 10, 1, "x");
  int y = p.add_variable(0, 10, 2, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kGe, 3);
  p.add_constraint({{x, 1}, {y, -1}}, Sense::kEq, 1);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 2, 1e-6);
  EXPECT_NEAR(r.x[1], 1, 1e-6);
  EXPECT_NEAR(r.objective, 4, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p;
  int x = p.add_variable(0, 1, 1, "x");
  p.add_constraint({{x, 1}}, Sense::kGe, 2);  // x >= 2 but x <= 1
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, InfeasibleEqualityPair) {
  Problem p;
  int x = p.add_variable(0, 10, 0, "x");
  int y = p.add_variable(0, 10, 0, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kEq, 4);
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kEq, 5);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  int x = p.add_variable(0, kInf, -1, "x");  // minimize -x, x unbounded
  p.add_variable(0, 1, 0, "y");
  p.add_constraint({{x, -1}}, Sense::kLe, 0);  // -x <= 0, no upper limit
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y s.t. x + y >= -3, bounds [-5, 5].
  Problem p;
  int x = p.add_variable(-5, 5, 1, "x");
  int y = p.add_variable(-5, 5, 1, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kGe, -3);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3, 1e-6);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple redundant constraints through one vertex.
  Problem p;
  int x = p.add_variable(0, kInf, -1, "x");
  int y = p.add_variable(0, kInf, -1, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kLe, 2);
  p.add_constraint({{x, 2}, {y, 2}}, Sense::kLe, 4);
  p.add_constraint({{x, 1}}, Sense::kLe, 2);
  p.add_constraint({{y, 1}}, Sense::kLe, 2);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -2, 1e-6);
}

TEST(Simplex, EqualityWithBoundedVarsBigM) {
  // Alignment-style big-M rows as emitted by the window MILP builder.
  Problem p;
  int d = p.add_variable(0, 1, -10, "d");
  int xa = p.add_variable(0, 30, 0.1, "xa");
  int xb = p.add_variable(5, 20, 0.1, "xb");
  double G = 40;
  p.add_constraint({{xa, 1}, {xb, -1}, {d, G}}, Sense::kLe, G);
  p.add_constraint({{xb, 1}, {xa, -1}, {d, G}}, Sense::kLe, G);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  // d=1 requires xa == xb; cheapest alignment at xa=xb=5.
  EXPECT_NEAR(r.x[0], 1, 1e-6);
  EXPECT_NEAR(r.x[1], r.x[2], 1e-6);
}

TEST(Simplex, ObjectiveValueAndViolationHelpers) {
  Problem p;
  int x = p.add_variable(0, 4, 2, "x");
  p.add_constraint({{x, 1}}, Sense::kLe, 3);
  EXPECT_DOUBLE_EQ(p.objective_value({2.0}), 4.0);
  EXPECT_DOUBLE_EQ(p.max_violation({2.0}), 0.0);
  EXPECT_DOUBLE_EQ(p.max_violation({3.5}), 0.5);
  EXPECT_DOUBLE_EQ(p.max_violation({-1.0}), 1.0);  // bound violation
}

TEST(Simplex, TimeLimitTruncates) {
  // A generous problem with an absurdly small time budget must return
  // kIterLimit rather than wrong answers.
  Rng rng(3);
  Problem p;
  const int n = 40;
  for (int j = 0; j < n; ++j) {
    p.add_variable(0, 10, static_cast<double>(rng.uniform_int(-5, 5)));
  }
  for (int i = 0; i < 60; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.5)) {
        terms.emplace_back(j, static_cast<double>(rng.uniform_int(1, 4)));
      }
    }
    if (!terms.empty()) {
      p.add_constraint(terms, Sense::kLe,
                       static_cast<double>(rng.uniform_int(10, 60)));
    }
  }
  SimplexSolver::Options opts;
  opts.time_limit_sec = 1e-9;
  Result r = SimplexSolver(opts).solve(p);
  EXPECT_EQ(r.status, Status::kIterLimit);
}

class SimplexRandom : public ::testing::TestWithParam<int> {};

// Property: on randomly generated feasible LPs, the solver returns optimal,
// the solution is feasible, and its objective is no worse than the known
// interior feasible point used to construct the instance.
TEST_P(SimplexRandom, FeasibleInstancesSolveToFeasibleOptimum) {
  Rng rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.uniform(6));
  const int m = 1 + static_cast<int>(rng.uniform(6));

  Problem p;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    double lo = rng.uniform_int(-5, 0);
    double hi = lo + 1 + rng.uniform(10);
    double cost = rng.uniform_int(-5, 5);
    p.add_variable(lo, hi, cost);
    x0[j] = lo + (hi - lo) * rng.uniform_real();
  }
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) continue;
      double a = rng.uniform_int(-4, 4);
      if (a == 0) continue;
      terms.emplace_back(j, a);
      lhs += a * x0[j];
    }
    if (terms.empty()) continue;
    // Slack keeps x0 strictly feasible for <= / >=.
    if (rng.chance(0.5)) {
      p.add_constraint(terms, Sense::kLe, lhs + rng.uniform_real() * 3);
    } else {
      p.add_constraint(terms, Sense::kGe, lhs - rng.uniform_real() * 3);
    }
  }

  Result r = SimplexSolver().solve(p);
  ASSERT_EQ(r.status, Status::kOptimal) << "instance " << GetParam();
  EXPECT_LT(p.max_violation(r.x), 1e-5);
  EXPECT_LE(r.objective, p.objective_value(x0) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexRandom, ::testing::Range(0, 40));

// ---- basis reuse / warm start ----

/// Random feasible LP with a known interior point (same scheme as
/// SimplexRandom above).
Problem random_feasible_lp(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.uniform(6));
  const int m = 2 + static_cast<int>(rng.uniform(6));
  Problem p;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    double lo = rng.uniform_int(-5, 0);
    double hi = lo + 1 + rng.uniform(10);
    p.add_variable(lo, hi, rng.uniform_int(-5, 5));
    x0[j] = lo + (hi - lo) * rng.uniform_real();
  }
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) continue;
      double a = rng.uniform_int(-4, 4);
      if (a == 0) continue;
      terms.emplace_back(j, a);
      lhs += a * x0[j];
    }
    if (terms.empty()) continue;
    if (rng.chance(0.5)) {
      p.add_constraint(terms, Sense::kLe, lhs + rng.uniform_real() * 3);
    } else {
      p.add_constraint(terms, Sense::kGe, lhs - rng.uniform_real() * 3);
    }
  }
  return p;
}

TEST(SimplexWarm, BasisExportedOnOptimal) {
  Problem p;
  int x = p.add_variable(0, kInf, -3, "x");
  int y = p.add_variable(0, kInf, -5, "y");
  p.add_constraint({{x, 1}}, Sense::kLe, 4);
  p.add_constraint({{y, 2}}, Sense::kLe, 12);
  p.add_constraint({{x, 3}, {y, 2}}, Sense::kLe, 18);
  Result r = SimplexSolver().solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  ASSERT_FALSE(r.basis.empty());
  EXPECT_EQ(r.basis.basic.size(), 3u);   // one basic column per row
  EXPECT_EQ(r.basis.state.size(), 5u);   // structural + slacks
  EXPECT_EQ(r.reduced_cost.size(), 2u);  // structural prefix only
  // Reduced costs of an optimal basis: at-lower vars have rc >= 0.
  for (int v = 0; v < 2; ++v) {
    if (r.basis.state[v] == BasisState::kAtLower) {
      EXPECT_GE(r.reduced_cost[v], -1e-7);
    }
  }
}

class SimplexWarmBasis : public ::testing::TestWithParam<int> {};

// Property: re-solving from a parent basis after bound tightening gives the
// same status and objective as a fresh cold solve.
TEST_P(SimplexWarmBasis, ReoptimizeMatchesFreshAfterBoundChange) {
  Rng rng(4000 + GetParam());
  Problem p = random_feasible_lp(rng);
  Result root = SimplexSolver().solve(p);
  ASSERT_EQ(root.status, Status::kOptimal);
  ASSERT_FALSE(root.basis.empty());

  // Tighten bounds of a few variables around / away from the LP optimum,
  // the same kind of change branching makes.
  Problem q = p;
  int changes = 1 + static_cast<int>(rng.uniform(3));
  for (int k = 0; k < changes; ++k) {
    int v = static_cast<int>(rng.uniform(p.num_variables()));
    double lo = q.lower_bound(v);
    double hi = q.upper_bound(v);
    double xv = root.x[v];
    if (rng.chance(0.5) && xv - 0.5 >= lo) {
      hi = std::min(hi, xv - 0.5);  // cut off the current optimum
    } else if (xv + 0.5 <= hi) {
      lo = std::max(lo, xv + 0.5);
    }
    if (lo <= hi) q.set_bounds(v, lo, hi);
  }

  Result fresh = SimplexSolver().solve(q);
  Result warm = SimplexSolver().solve(q, &root.basis);
  ASSERT_EQ(warm.status, fresh.status) << "instance " << GetParam();
  if (fresh.status == Status::kOptimal) {
    EXPECT_NEAR(warm.objective, fresh.objective, 1e-6)
        << "instance " << GetParam();
    EXPECT_LT(q.max_violation(warm.x), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexWarmBasis, ::testing::Range(0, 40));

class SimplexIncremental : public ::testing::TestWithParam<int> {};

// Property: a persistent IncrementalSimplex driven through a random walk of
// bound changes (the branch-and-bound dive pattern) agrees with a fresh
// cold solve after every step.
TEST_P(SimplexIncremental, MatchesFreshSolveUnderBoundWalk) {
  Rng rng(5000 + GetParam());
  Problem p = random_feasible_lp(rng);
  IncrementalSimplex inc(p, {});
  Problem q = p;  // mirror of inc's internal problem

  Result r0 = inc.solve();
  Result f0 = SimplexSolver().solve(q);
  ASSERT_EQ(r0.status, f0.status);

  // Remember original bounds so the walk can both tighten and restore.
  std::vector<std::pair<double, double>> orig;
  for (int v = 0; v < p.num_variables(); ++v) {
    orig.emplace_back(p.lower_bound(v), p.upper_bound(v));
  }
  for (int step = 0; step < 12; ++step) {
    int v = static_cast<int>(rng.uniform(p.num_variables()));
    auto [olo, ohi] = orig[v];
    double lo = olo, hi = ohi;
    if (rng.chance(0.7)) {
      // Tighten to a random subinterval (upper bounds stay finite here).
      double span = std::isfinite(ohi) ? ohi - olo : 10.0;
      double a = olo + span * rng.uniform_real();
      double b = olo + span * rng.uniform_real();
      lo = std::min(a, b);
      hi = std::max(a, b);
    }  // else: restore the original bounds
    inc.set_bounds(v, lo, hi);
    q.set_bounds(v, lo, hi);

    Result ri = inc.solve();
    Result rf = SimplexSolver().solve(q);
    ASSERT_EQ(ri.status, rf.status)
        << "instance " << GetParam() << " step " << step;
    if (rf.status == Status::kOptimal) {
      EXPECT_NEAR(ri.objective, rf.objective, 1e-6)
          << "instance " << GetParam() << " step " << step;
      EXPECT_LT(q.max_violation(ri.x), 1e-5);
    }
  }
  EXPECT_GT(inc.warm_solves() + inc.cold_solves(), 0);
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexIncremental,
                         ::testing::Range(0, 40));

// ---- revised-vs-dense differential fuzz ----
//
// The revised engine — in both basis representations, sparse eta file and
// collapsed explicit inverse — must agree with the dense oracle on status
// everywhere and on the objective wherever optimality is proved. Instance
// modes cover the stress shapes of the branch-and-bound workload:
// degenerate vertices (stall / Bland paths), bound-flip-heavy boxes,
// equality-heavy and infeasible systems, unbounded rays, and plain random
// feasible LPs. Sanitizer binaries define VM1_EQUIV_LIGHT to shrink the
// instance count.

#ifdef VM1_EQUIV_LIGHT
constexpr int kFuzzPerShard = 60;
constexpr int kFuzzAuxInstances = 40;
#else
constexpr int kFuzzPerShard = 1000;  // x10 shards: 10k instances
constexpr int kFuzzAuxInstances = 200;
#endif
constexpr int kFuzzShards = 10;

Problem random_fuzz_lp(Rng& rng) {
  const int mode = static_cast<int>(rng.uniform(5));
  if (mode == 0) return random_feasible_lp(rng);
  Problem p;
  const int n = 2 + static_cast<int>(rng.uniform(7));
  switch (mode) {
    case 1: {  // degenerate: scaled copies of one hyperplane + a Ge pin
      for (int j = 0; j < n; ++j) {
        p.add_variable(0, kInf, rng.uniform_int(-3, 3));
      }
      std::vector<std::pair<int, double>> base;
      for (int j = 0; j < n; ++j) {
        if (rng.chance(0.6)) {
          base.emplace_back(j, static_cast<double>(rng.uniform_int(1, 3)));
        }
      }
      if (base.empty()) base.emplace_back(0, 1.0);
      const int m = 2 + static_cast<int>(rng.uniform(6));
      for (int i = 0; i < m; ++i) {
        std::vector<std::pair<int, double>> row = base;
        double scale = 1 + rng.uniform(3);
        for (auto& [v, a] : row) a *= scale;
        if (rng.chance(0.4) && row.size() > 1) row.pop_back();
        p.add_constraint(row, Sense::kLe, 4 * scale);
      }
      p.add_constraint(base, Sense::kGe, 0);
      break;
    }
    case 2: {  // bound-flip-heavy: tight boxes, rarely-binding rows
      for (int j = 0; j < n; ++j) {
        double lo = rng.uniform_int(-2, 0);
        p.add_variable(lo, lo + 1 + rng.uniform(2), rng.uniform_int(-5, 5));
      }
      for (int i = 0; i < 2; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < n; ++j) {
          row.emplace_back(j, static_cast<double>(rng.uniform_int(1, 2)));
        }
        p.add_constraint(row, Sense::kLe, 3.0 * n);
      }
      break;
    }
    case 3: {  // equality-heavy, often infeasible
      for (int j = 0; j < n; ++j) {
        p.add_variable(0, 1 + rng.uniform(5), rng.uniform_int(-4, 4));
      }
      const int m = 2 + static_cast<int>(rng.uniform(4));
      for (int i = 0; i < m; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < n; ++j) {
          if (rng.chance(0.5)) {
            row.emplace_back(j, static_cast<double>(rng.uniform_int(-3, 3)));
          }
        }
        if (row.empty()) continue;
        p.add_constraint(row, Sense::kEq,
                         static_cast<double>(rng.uniform_int(-4, 8)));
      }
      break;
    }
    default: {  // mixed senses, negative bounds, occasional unbounded rays
      for (int j = 0; j < n; ++j) {
        double lo = rng.uniform_int(-6, 0);
        double hi = rng.chance(0.8) ? lo + 1 + rng.uniform(8) : kInf;
        p.add_variable(lo, hi, rng.uniform_int(-5, 5));
      }
      const int m = 1 + static_cast<int>(rng.uniform(6));
      for (int i = 0; i < m; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < n; ++j) {
          if (rng.chance(0.4)) {
            row.emplace_back(j, static_cast<double>(rng.uniform_int(-4, 4)));
          }
        }
        if (row.empty()) continue;
        Sense s = rng.chance(0.5)   ? Sense::kLe
                  : rng.chance(0.5) ? Sense::kGe
                                    : Sense::kEq;
        p.add_constraint(row, s, static_cast<double>(rng.uniform_int(-6, 10)));
      }
      break;
    }
  }
  return p;
}

class SimplexDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SimplexDifferential, RevisedMatchesDenseOracle) {
  SimplexSolver::Options dense_o;
  dense_o.engine = Engine::kDense;
  SimplexSolver::Options eta_o;  // revised, eta-file representation forced
  eta_o.dense_inverse_dim = 0;
  SimplexSolver dense(dense_o);
  SimplexSolver revised;  // default: revised, explicit inverse
  SimplexSolver eta(eta_o);
  for (int i = 0; i < kFuzzPerShard; ++i) {
    Rng rng(900000 + static_cast<std::uint64_t>(GetParam()) * kFuzzPerShard +
            static_cast<std::uint64_t>(i));
    Problem p = random_fuzz_lp(rng);
    Result rd = dense.solve(p);
    Result rr = revised.solve(p);
    Result re = eta.solve(p);
    ASSERT_EQ(rr.status, rd.status)
        << "shard " << GetParam() << " instance " << i;
    ASSERT_EQ(re.status, rd.status)
        << "shard " << GetParam() << " instance " << i;
    if (rd.status == Status::kOptimal) {
      EXPECT_NEAR(rr.objective, rd.objective, 1e-6)
          << "shard " << GetParam() << " instance " << i;
      EXPECT_NEAR(re.objective, rd.objective, 1e-6)
          << "shard " << GetParam() << " instance " << i;
      EXPECT_LT(p.max_violation(rr.x), 1e-5);
      EXPECT_LT(p.max_violation(re.x), 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SimplexDifferential,
                         ::testing::Range(0, kFuzzShards));

// Warm re-solves after branching-style bound changes must agree across
// engines and with a fresh dense solve.
TEST(SimplexDifferentialWarm, WarmReoptimizeMatchesAcrossEngines) {
  SimplexSolver::Options dense_o;
  dense_o.engine = Engine::kDense;
  SimplexSolver::Options eta_o;
  eta_o.dense_inverse_dim = 0;
  for (int i = 0; i < kFuzzAuxInstances; ++i) {
    Rng rng(770000 + i);
    Problem p = random_feasible_lp(rng);
    Result root = SimplexSolver().solve(p);
    if (root.status != Status::kOptimal || root.basis.empty()) continue;

    Problem q = p;
    int changes = 1 + static_cast<int>(rng.uniform(3));
    for (int k = 0; k < changes; ++k) {
      int v = static_cast<int>(rng.uniform(p.num_variables()));
      double lo = q.lower_bound(v);
      double hi = q.upper_bound(v);
      double xv = root.x[v];
      if (rng.chance(0.5) && xv - 0.5 >= lo) {
        hi = std::min(hi, xv - 0.5);
      } else if (xv + 0.5 <= hi) {
        lo = std::max(lo, xv + 0.5);
      }
      if (lo <= hi) q.set_bounds(v, lo, hi);
    }

    Result fresh = SimplexSolver(dense_o).solve(q);
    Result wd = SimplexSolver(dense_o).solve(q, &root.basis);
    Result wr = SimplexSolver().solve(q, &root.basis);
    Result we = SimplexSolver(eta_o).solve(q, &root.basis);
    ASSERT_EQ(wd.status, fresh.status) << "instance " << i;
    ASSERT_EQ(wr.status, fresh.status) << "instance " << i;
    ASSERT_EQ(we.status, fresh.status) << "instance " << i;
    if (fresh.status == Status::kOptimal) {
      EXPECT_NEAR(wr.objective, fresh.objective, 1e-6) << "instance " << i;
      EXPECT_NEAR(we.objective, fresh.objective, 1e-6) << "instance " << i;
      EXPECT_LT(q.max_violation(wr.x), 1e-5);
    }
  }
}

// A structurally singular warm basis (one column occupying two basis slots)
// must be rejected by the factorization and fall back to a cold solve with
// the correct optimum — in every engine.
TEST(SimplexDifferentialWarm, SingularWarmBasisFallsBackInBothEngines) {
  SimplexSolver::Options dense_o;
  dense_o.engine = Engine::kDense;
  SimplexSolver::Options eta_o;
  eta_o.dense_inverse_dim = 0;
  for (int i = 0; i < kFuzzAuxInstances; ++i) {
    Rng rng(660000 + i);
    Problem p = random_feasible_lp(rng);
    Result root = SimplexSolver().solve(p);
    if (root.status != Status::kOptimal || root.basis.empty()) continue;
    if (root.basis.basic.size() < 2) continue;
    Basis bad = root.basis;
    bad.basic[1] = bad.basic[0];
    for (SimplexSolver s : {SimplexSolver(dense_o), SimplexSolver(),
                            SimplexSolver(eta_o)}) {
      Result r = s.solve(p, &bad);
      ASSERT_EQ(r.status, Status::kOptimal) << "instance " << i;
      EXPECT_NEAR(r.objective, root.objective, 1e-6) << "instance " << i;
    }
  }
}

// ---- refactor policy ----

TEST(SimplexRefactor, IntervalTriggersScheduledRefactorizations) {
  obs::Counter& refactors = obs::counter("lp.refactorizations");
  Rng rng(42);
  Problem p = random_feasible_lp(rng);

  // interval 1: every pivot after the first forces a scheduled rebuild, in
  // both basis representations.
  for (int dense_dim : {0, 256}) {
    SimplexSolver::Options o;
    o.refactor_interval = 1;
    o.dense_inverse_dim = dense_dim;
    long before = refactors.value();
    Result r = SimplexSolver(o).solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_GE(refactors.value() - before, 1) << "dense_dim " << dense_dim;
  }

  // Default policy: the diagonal cold-start basis is loaded, not
  // refactorized, and this solve is far shorter than the interval — the
  // counter must not move at all.
  long before = refactors.value();
  Result r = SimplexSolver().solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(refactors.value() - before, 0);
}

// With scheduled refactorization effectively disabled, correctness over a
// long bound walk rests on the warm-entry recompute and the per-pivot
// consistency (drift) check — exactly the safety net the eta file relies on.
TEST(SimplexRefactor, LongEtaChainStaysConsistentUnderBoundWalk) {
  SimplexSolver::Options o;
  o.refactor_interval = 1 << 30;
  o.dense_inverse_dim = 0;  // eta-file mode, chain never scheduled away
  Rng rng(4242);
  Problem p = random_feasible_lp(rng);
  IncrementalSimplex inc(p, o);
  Problem q = p;
  ASSERT_EQ(inc.solve().status, SimplexSolver().solve(q).status);

  std::vector<std::pair<double, double>> orig;
  for (int v = 0; v < p.num_variables(); ++v) {
    orig.emplace_back(p.lower_bound(v), p.upper_bound(v));
  }
  for (int step = 0; step < 40; ++step) {
    int v = static_cast<int>(rng.uniform(p.num_variables()));
    auto [olo, ohi] = orig[v];
    double lo = olo, hi = ohi;
    if (rng.chance(0.7)) {
      double span = std::isfinite(ohi) ? ohi - olo : 10.0;
      double a = olo + span * rng.uniform_real();
      double b = olo + span * rng.uniform_real();
      lo = std::min(a, b);
      hi = std::max(a, b);
    }
    inc.set_bounds(v, lo, hi);
    q.set_bounds(v, lo, hi);
    Result ri = inc.solve();
    Result rf = SimplexSolver().solve(q);
    ASSERT_EQ(ri.status, rf.status) << "step " << step;
    if (rf.status == Status::kOptimal) {
      EXPECT_NEAR(ri.objective, rf.objective, 1e-6) << "step " << step;
    }
  }
}

// ---- pricing ----

TEST(SimplexPricing, DevexAndDantzigReachTheSameOptimum) {
  SimplexSolver::Options dantzig_o;
  dantzig_o.pricing = Pricing::kDantzig;
  SimplexSolver devex;  // default pricing
  SimplexSolver dantzig(dantzig_o);
  for (int i = 0; i < kFuzzAuxInstances; ++i) {
    Rng rng(880000 + i);
    Problem p = random_fuzz_lp(rng);
    Result a = devex.solve(p);
    Result b = dantzig.solve(p);
    ASSERT_EQ(a.status, b.status) << "instance " << i;
    if (a.status == Status::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "instance " << i;
    }
  }
}

// ---- EtaFactor unit ----

TEST(EtaFactorTest, FactorizeCollapseAndUpdateAgree) {
  // B columns: b0 = (2,0,1), b1 = (1,1,0), b2 = (0,0,3).
  detail::BasisColumns cols;
  cols.clear();
  cols.push(0, 2.0);
  cols.push(2, 1.0);
  cols.close_column();
  cols.push(0, 1.0);
  cols.push(1, 1.0);
  cols.close_column();
  cols.push(2, 3.0);
  cols.close_column();
  const double b[3][3] = {{2, 0, 1}, {1, 1, 0}, {0, 0, 3}};  // b[k] = col k

  detail::EtaFactor f;
  ASSERT_TRUE(f.factorize(cols, 1e-9));
  EXPECT_EQ(f.updates(), 0);
  auto check_inverse = [&](const char* what) {
    for (int k = 0; k < 3; ++k) {
      double x[3] = {b[k][0], b[k][1], b[k][2]};
      f.ftran(x);
      for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(x[i], i == f.slot_row()[k] ? 1.0 : 0.0, 1e-12)
            << what << " col " << k << " row " << i;
      }
      // BTRAN: (B^-T e_s) . (B e_k) = [s == slot_row(k)].
      double y[3] = {0, 0, 0};
      y[f.slot_row()[k]] = 1.0;
      f.btran(y);
      for (int j = 0; j < 3; ++j) {
        double dot = 0;
        for (int i = 0; i < 3; ++i) dot += y[i] * b[j][i];
        EXPECT_NEAR(dot, j == k ? 1.0 : 0.0, 1e-12) << what << " col " << k;
      }
    }
  };
  check_inverse("eta");

  f.collapse();  // same inverse, explicit representation
  EXPECT_TRUE(f.dense_inverse());
  EXPECT_EQ(f.updates(), 0);
  check_inverse("collapsed");

  // Product-form update: replace the basis column at pivot row r with
  // c = (1,2,1); afterwards FTRAN(c) must be exactly e_r.
  double alpha[3] = {1, 2, 1};
  f.ftran(alpha);
  const int r = f.slot_row()[2];
  ASSERT_TRUE(f.append(r, alpha, 1e-9));
  EXPECT_EQ(f.updates(), 1);
  double x[3] = {1, 2, 1};
  f.ftran(x);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(x[i], i == r ? 1.0 : 0.0, 1e-12);
  }
}

TEST(EtaFactorTest, SingularBasisRejected) {
  detail::BasisColumns cols;
  cols.clear();
  cols.push(0, 1.0);
  cols.push(1, 2.0);
  cols.close_column();
  cols.push(0, 2.0);
  cols.push(1, 4.0);  // linearly dependent on column 0
  cols.close_column();
  detail::EtaFactor f;
  EXPECT_FALSE(f.factorize(cols, 1e-9));
}

TEST(EtaFactorTest, DiagonalResetMatchesBothRepresentations) {
  const double diag[3] = {1.0, -1.0, 1.0};
  for (bool dense : {false, true}) {
    detail::EtaFactor f;
    f.reset_diagonal(diag, 3, dense);
    EXPECT_EQ(f.dense_inverse(), dense);
    EXPECT_TRUE(f.factorized());
    EXPECT_EQ(f.updates(), 0);
    double x[3] = {3.0, 5.0, -2.0};
    f.ftran(x);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], -5.0, 1e-12);
    EXPECT_NEAR(x[2], -2.0, 1e-12);
    double y[3] = {1.0, 1.0, 1.0};
    f.btran(y);
    EXPECT_NEAR(y[1], -1.0, 1e-12);
  }
}

}  // namespace
}  // namespace vm1::lp
