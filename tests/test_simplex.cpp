#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace vm1::lp {
namespace {

Result solve(const Problem& p) {
  SimplexSolver s;
  return s.solve(p);
}

TEST(Simplex, EmptyProblem) {
  Problem p;
  Result r = solve(p);
  EXPECT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, 0);
}

TEST(Simplex, UnconstrainedBoxMinimum) {
  Problem p;
  p.add_variable(-2, 5, 3.0, "x");   // cost 3 -> sits at lower bound
  p.add_variable(-4, 7, -2.0, "y");  // cost -2 -> sits at upper bound
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], -2, 1e-7);
  EXPECT_NEAR(r.x[1], 7, 1e-7);
  EXPECT_NEAR(r.objective, 3 * -2 + -2 * 7, 1e-7);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // => min -3x - 5y; optimum x=2, y=6, z=-36.
  Problem p;
  int x = p.add_variable(0, kInf, -3, "x");
  int y = p.add_variable(0, kInf, -5, "y");
  p.add_constraint({{x, 1}}, Sense::kLe, 4);
  p.add_constraint({{y, 2}}, Sense::kLe, 12);
  p.add_constraint({{x, 3}, {y, 2}}, Sense::kLe, 18);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -36, 1e-6);
  EXPECT_NEAR(r.x[0], 2, 1e-6);
  EXPECT_NEAR(r.x[1], 6, 1e-6);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min x + 2y s.t. x + y >= 3, x - y == 1, 0 <= x,y <= 10.
  // From x = y + 1: x + y >= 3 -> y >= 1; objective 3y + 1 -> y = 1, x = 2.
  Problem p;
  int x = p.add_variable(0, 10, 1, "x");
  int y = p.add_variable(0, 10, 2, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kGe, 3);
  p.add_constraint({{x, 1}, {y, -1}}, Sense::kEq, 1);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 2, 1e-6);
  EXPECT_NEAR(r.x[1], 1, 1e-6);
  EXPECT_NEAR(r.objective, 4, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p;
  int x = p.add_variable(0, 1, 1, "x");
  p.add_constraint({{x, 1}}, Sense::kGe, 2);  // x >= 2 but x <= 1
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, InfeasibleEqualityPair) {
  Problem p;
  int x = p.add_variable(0, 10, 0, "x");
  int y = p.add_variable(0, 10, 0, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kEq, 4);
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kEq, 5);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  int x = p.add_variable(0, kInf, -1, "x");  // minimize -x, x unbounded
  p.add_variable(0, 1, 0, "y");
  p.add_constraint({{x, -1}}, Sense::kLe, 0);  // -x <= 0, no upper limit
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y s.t. x + y >= -3, bounds [-5, 5].
  Problem p;
  int x = p.add_variable(-5, 5, 1, "x");
  int y = p.add_variable(-5, 5, 1, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kGe, -3);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3, 1e-6);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple redundant constraints through one vertex.
  Problem p;
  int x = p.add_variable(0, kInf, -1, "x");
  int y = p.add_variable(0, kInf, -1, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kLe, 2);
  p.add_constraint({{x, 2}, {y, 2}}, Sense::kLe, 4);
  p.add_constraint({{x, 1}}, Sense::kLe, 2);
  p.add_constraint({{y, 1}}, Sense::kLe, 2);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -2, 1e-6);
}

TEST(Simplex, EqualityWithBoundedVarsBigM) {
  // Alignment-style big-M rows as emitted by the window MILP builder.
  Problem p;
  int d = p.add_variable(0, 1, -10, "d");
  int xa = p.add_variable(0, 30, 0.1, "xa");
  int xb = p.add_variable(5, 20, 0.1, "xb");
  double G = 40;
  p.add_constraint({{xa, 1}, {xb, -1}, {d, G}}, Sense::kLe, G);
  p.add_constraint({{xb, 1}, {xa, -1}, {d, G}}, Sense::kLe, G);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  // d=1 requires xa == xb; cheapest alignment at xa=xb=5.
  EXPECT_NEAR(r.x[0], 1, 1e-6);
  EXPECT_NEAR(r.x[1], r.x[2], 1e-6);
}

TEST(Simplex, ObjectiveValueAndViolationHelpers) {
  Problem p;
  int x = p.add_variable(0, 4, 2, "x");
  p.add_constraint({{x, 1}}, Sense::kLe, 3);
  EXPECT_DOUBLE_EQ(p.objective_value({2.0}), 4.0);
  EXPECT_DOUBLE_EQ(p.max_violation({2.0}), 0.0);
  EXPECT_DOUBLE_EQ(p.max_violation({3.5}), 0.5);
  EXPECT_DOUBLE_EQ(p.max_violation({-1.0}), 1.0);  // bound violation
}

TEST(Simplex, TimeLimitTruncates) {
  // A generous problem with an absurdly small time budget must return
  // kIterLimit rather than wrong answers.
  Rng rng(3);
  Problem p;
  const int n = 40;
  for (int j = 0; j < n; ++j) {
    p.add_variable(0, 10, static_cast<double>(rng.uniform_int(-5, 5)));
  }
  for (int i = 0; i < 60; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.5)) {
        terms.emplace_back(j, static_cast<double>(rng.uniform_int(1, 4)));
      }
    }
    if (!terms.empty()) {
      p.add_constraint(terms, Sense::kLe,
                       static_cast<double>(rng.uniform_int(10, 60)));
    }
  }
  SimplexSolver::Options opts;
  opts.time_limit_sec = 1e-9;
  Result r = SimplexSolver(opts).solve(p);
  EXPECT_EQ(r.status, Status::kIterLimit);
}

class SimplexRandom : public ::testing::TestWithParam<int> {};

// Property: on randomly generated feasible LPs, the solver returns optimal,
// the solution is feasible, and its objective is no worse than the known
// interior feasible point used to construct the instance.
TEST_P(SimplexRandom, FeasibleInstancesSolveToFeasibleOptimum) {
  Rng rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.uniform(6));
  const int m = 1 + static_cast<int>(rng.uniform(6));

  Problem p;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    double lo = rng.uniform_int(-5, 0);
    double hi = lo + 1 + rng.uniform(10);
    double cost = rng.uniform_int(-5, 5);
    p.add_variable(lo, hi, cost);
    x0[j] = lo + (hi - lo) * rng.uniform_real();
  }
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) continue;
      double a = rng.uniform_int(-4, 4);
      if (a == 0) continue;
      terms.emplace_back(j, a);
      lhs += a * x0[j];
    }
    if (terms.empty()) continue;
    // Slack keeps x0 strictly feasible for <= / >=.
    if (rng.chance(0.5)) {
      p.add_constraint(terms, Sense::kLe, lhs + rng.uniform_real() * 3);
    } else {
      p.add_constraint(terms, Sense::kGe, lhs - rng.uniform_real() * 3);
    }
  }

  Result r = SimplexSolver().solve(p);
  ASSERT_EQ(r.status, Status::kOptimal) << "instance " << GetParam();
  EXPECT_LT(p.max_violation(r.x), 1e-5);
  EXPECT_LE(r.objective, p.objective_value(x0) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexRandom, ::testing::Range(0, 40));

// ---- basis reuse / warm start ----

/// Random feasible LP with a known interior point (same scheme as
/// SimplexRandom above).
Problem random_feasible_lp(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.uniform(6));
  const int m = 2 + static_cast<int>(rng.uniform(6));
  Problem p;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    double lo = rng.uniform_int(-5, 0);
    double hi = lo + 1 + rng.uniform(10);
    p.add_variable(lo, hi, rng.uniform_int(-5, 5));
    x0[j] = lo + (hi - lo) * rng.uniform_real();
  }
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) continue;
      double a = rng.uniform_int(-4, 4);
      if (a == 0) continue;
      terms.emplace_back(j, a);
      lhs += a * x0[j];
    }
    if (terms.empty()) continue;
    if (rng.chance(0.5)) {
      p.add_constraint(terms, Sense::kLe, lhs + rng.uniform_real() * 3);
    } else {
      p.add_constraint(terms, Sense::kGe, lhs - rng.uniform_real() * 3);
    }
  }
  return p;
}

TEST(SimplexWarm, BasisExportedOnOptimal) {
  Problem p;
  int x = p.add_variable(0, kInf, -3, "x");
  int y = p.add_variable(0, kInf, -5, "y");
  p.add_constraint({{x, 1}}, Sense::kLe, 4);
  p.add_constraint({{y, 2}}, Sense::kLe, 12);
  p.add_constraint({{x, 3}, {y, 2}}, Sense::kLe, 18);
  Result r = SimplexSolver().solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  ASSERT_FALSE(r.basis.empty());
  EXPECT_EQ(r.basis.basic.size(), 3u);   // one basic column per row
  EXPECT_EQ(r.basis.state.size(), 5u);   // structural + slacks
  EXPECT_EQ(r.reduced_cost.size(), 2u);  // structural prefix only
  // Reduced costs of an optimal basis: at-lower vars have rc >= 0.
  for (int v = 0; v < 2; ++v) {
    if (r.basis.state[v] == BasisState::kAtLower) {
      EXPECT_GE(r.reduced_cost[v], -1e-7);
    }
  }
}

class SimplexWarmBasis : public ::testing::TestWithParam<int> {};

// Property: re-solving from a parent basis after bound tightening gives the
// same status and objective as a fresh cold solve.
TEST_P(SimplexWarmBasis, ReoptimizeMatchesFreshAfterBoundChange) {
  Rng rng(4000 + GetParam());
  Problem p = random_feasible_lp(rng);
  Result root = SimplexSolver().solve(p);
  ASSERT_EQ(root.status, Status::kOptimal);
  ASSERT_FALSE(root.basis.empty());

  // Tighten bounds of a few variables around / away from the LP optimum,
  // the same kind of change branching makes.
  Problem q = p;
  int changes = 1 + static_cast<int>(rng.uniform(3));
  for (int k = 0; k < changes; ++k) {
    int v = static_cast<int>(rng.uniform(p.num_variables()));
    double lo = q.lower_bound(v);
    double hi = q.upper_bound(v);
    double xv = root.x[v];
    if (rng.chance(0.5) && xv - 0.5 >= lo) {
      hi = std::min(hi, xv - 0.5);  // cut off the current optimum
    } else if (xv + 0.5 <= hi) {
      lo = std::max(lo, xv + 0.5);
    }
    if (lo <= hi) q.set_bounds(v, lo, hi);
  }

  Result fresh = SimplexSolver().solve(q);
  Result warm = SimplexSolver().solve(q, &root.basis);
  ASSERT_EQ(warm.status, fresh.status) << "instance " << GetParam();
  if (fresh.status == Status::kOptimal) {
    EXPECT_NEAR(warm.objective, fresh.objective, 1e-6)
        << "instance " << GetParam();
    EXPECT_LT(q.max_violation(warm.x), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexWarmBasis, ::testing::Range(0, 40));

class SimplexIncremental : public ::testing::TestWithParam<int> {};

// Property: a persistent IncrementalSimplex driven through a random walk of
// bound changes (the branch-and-bound dive pattern) agrees with a fresh
// cold solve after every step.
TEST_P(SimplexIncremental, MatchesFreshSolveUnderBoundWalk) {
  Rng rng(5000 + GetParam());
  Problem p = random_feasible_lp(rng);
  IncrementalSimplex inc(p, {});
  Problem q = p;  // mirror of inc's internal problem

  Result r0 = inc.solve();
  Result f0 = SimplexSolver().solve(q);
  ASSERT_EQ(r0.status, f0.status);

  // Remember original bounds so the walk can both tighten and restore.
  std::vector<std::pair<double, double>> orig;
  for (int v = 0; v < p.num_variables(); ++v) {
    orig.emplace_back(p.lower_bound(v), p.upper_bound(v));
  }
  for (int step = 0; step < 12; ++step) {
    int v = static_cast<int>(rng.uniform(p.num_variables()));
    auto [olo, ohi] = orig[v];
    double lo = olo, hi = ohi;
    if (rng.chance(0.7)) {
      // Tighten to a random subinterval (upper bounds stay finite here).
      double span = std::isfinite(ohi) ? ohi - olo : 10.0;
      double a = olo + span * rng.uniform_real();
      double b = olo + span * rng.uniform_real();
      lo = std::min(a, b);
      hi = std::max(a, b);
    }  // else: restore the original bounds
    inc.set_bounds(v, lo, hi);
    q.set_bounds(v, lo, hi);

    Result ri = inc.solve();
    Result rf = SimplexSolver().solve(q);
    ASSERT_EQ(ri.status, rf.status)
        << "instance " << GetParam() << " step " << step;
    if (rf.status == Status::kOptimal) {
      EXPECT_NEAR(ri.objective, rf.objective, 1e-6)
          << "instance " << GetParam() << " step " << step;
      EXPECT_LT(q.max_violation(ri.x), 1e-5);
    }
  }
  EXPECT_GT(inc.warm_solves() + inc.cold_solves(), 0);
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexIncremental,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace vm1::lp
