#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vm1::lp {
namespace {

Result solve(const Problem& p) {
  SimplexSolver s;
  return s.solve(p);
}

TEST(Simplex, EmptyProblem) {
  Problem p;
  Result r = solve(p);
  EXPECT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, 0);
}

TEST(Simplex, UnconstrainedBoxMinimum) {
  Problem p;
  p.add_variable(-2, 5, 3.0, "x");   // cost 3 -> sits at lower bound
  p.add_variable(-4, 7, -2.0, "y");  // cost -2 -> sits at upper bound
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], -2, 1e-7);
  EXPECT_NEAR(r.x[1], 7, 1e-7);
  EXPECT_NEAR(r.objective, 3 * -2 + -2 * 7, 1e-7);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // => min -3x - 5y; optimum x=2, y=6, z=-36.
  Problem p;
  int x = p.add_variable(0, kInf, -3, "x");
  int y = p.add_variable(0, kInf, -5, "y");
  p.add_constraint({{x, 1}}, Sense::kLe, 4);
  p.add_constraint({{y, 2}}, Sense::kLe, 12);
  p.add_constraint({{x, 3}, {y, 2}}, Sense::kLe, 18);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -36, 1e-6);
  EXPECT_NEAR(r.x[0], 2, 1e-6);
  EXPECT_NEAR(r.x[1], 6, 1e-6);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min x + 2y s.t. x + y >= 3, x - y == 1, 0 <= x,y <= 10.
  // From x = y + 1: x + y >= 3 -> y >= 1; objective 3y + 1 -> y = 1, x = 2.
  Problem p;
  int x = p.add_variable(0, 10, 1, "x");
  int y = p.add_variable(0, 10, 2, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kGe, 3);
  p.add_constraint({{x, 1}, {y, -1}}, Sense::kEq, 1);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 2, 1e-6);
  EXPECT_NEAR(r.x[1], 1, 1e-6);
  EXPECT_NEAR(r.objective, 4, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p;
  int x = p.add_variable(0, 1, 1, "x");
  p.add_constraint({{x, 1}}, Sense::kGe, 2);  // x >= 2 but x <= 1
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, InfeasibleEqualityPair) {
  Problem p;
  int x = p.add_variable(0, 10, 0, "x");
  int y = p.add_variable(0, 10, 0, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kEq, 4);
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kEq, 5);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  int x = p.add_variable(0, kInf, -1, "x");  // minimize -x, x unbounded
  p.add_variable(0, 1, 0, "y");
  p.add_constraint({{x, -1}}, Sense::kLe, 0);  // -x <= 0, no upper limit
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y s.t. x + y >= -3, bounds [-5, 5].
  Problem p;
  int x = p.add_variable(-5, 5, 1, "x");
  int y = p.add_variable(-5, 5, 1, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kGe, -3);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3, 1e-6);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple redundant constraints through one vertex.
  Problem p;
  int x = p.add_variable(0, kInf, -1, "x");
  int y = p.add_variable(0, kInf, -1, "y");
  p.add_constraint({{x, 1}, {y, 1}}, Sense::kLe, 2);
  p.add_constraint({{x, 2}, {y, 2}}, Sense::kLe, 4);
  p.add_constraint({{x, 1}}, Sense::kLe, 2);
  p.add_constraint({{y, 1}}, Sense::kLe, 2);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -2, 1e-6);
}

TEST(Simplex, EqualityWithBoundedVarsBigM) {
  // Alignment-style big-M rows as emitted by the window MILP builder.
  Problem p;
  int d = p.add_variable(0, 1, -10, "d");
  int xa = p.add_variable(0, 30, 0.1, "xa");
  int xb = p.add_variable(5, 20, 0.1, "xb");
  double G = 40;
  p.add_constraint({{xa, 1}, {xb, -1}, {d, G}}, Sense::kLe, G);
  p.add_constraint({{xb, 1}, {xa, -1}, {d, G}}, Sense::kLe, G);
  Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  // d=1 requires xa == xb; cheapest alignment at xa=xb=5.
  EXPECT_NEAR(r.x[0], 1, 1e-6);
  EXPECT_NEAR(r.x[1], r.x[2], 1e-6);
}

TEST(Simplex, ObjectiveValueAndViolationHelpers) {
  Problem p;
  int x = p.add_variable(0, 4, 2, "x");
  p.add_constraint({{x, 1}}, Sense::kLe, 3);
  EXPECT_DOUBLE_EQ(p.objective_value({2.0}), 4.0);
  EXPECT_DOUBLE_EQ(p.max_violation({2.0}), 0.0);
  EXPECT_DOUBLE_EQ(p.max_violation({3.5}), 0.5);
  EXPECT_DOUBLE_EQ(p.max_violation({-1.0}), 1.0);  // bound violation
}

TEST(Simplex, TimeLimitTruncates) {
  // A generous problem with an absurdly small time budget must return
  // kIterLimit rather than wrong answers.
  Rng rng(3);
  Problem p;
  const int n = 40;
  for (int j = 0; j < n; ++j) {
    p.add_variable(0, 10, static_cast<double>(rng.uniform_int(-5, 5)));
  }
  for (int i = 0; i < 60; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.5)) {
        terms.emplace_back(j, static_cast<double>(rng.uniform_int(1, 4)));
      }
    }
    if (!terms.empty()) {
      p.add_constraint(terms, Sense::kLe,
                       static_cast<double>(rng.uniform_int(10, 60)));
    }
  }
  SimplexSolver::Options opts;
  opts.time_limit_sec = 1e-9;
  Result r = SimplexSolver(opts).solve(p);
  EXPECT_EQ(r.status, Status::kIterLimit);
}

class SimplexRandom : public ::testing::TestWithParam<int> {};

// Property: on randomly generated feasible LPs, the solver returns optimal,
// the solution is feasible, and its objective is no worse than the known
// interior feasible point used to construct the instance.
TEST_P(SimplexRandom, FeasibleInstancesSolveToFeasibleOptimum) {
  Rng rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.uniform(6));
  const int m = 1 + static_cast<int>(rng.uniform(6));

  Problem p;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    double lo = rng.uniform_int(-5, 0);
    double hi = lo + 1 + rng.uniform(10);
    double cost = rng.uniform_int(-5, 5);
    p.add_variable(lo, hi, cost);
    x0[j] = lo + (hi - lo) * rng.uniform_real();
  }
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) continue;
      double a = rng.uniform_int(-4, 4);
      if (a == 0) continue;
      terms.emplace_back(j, a);
      lhs += a * x0[j];
    }
    if (terms.empty()) continue;
    // Slack keeps x0 strictly feasible for <= / >=.
    if (rng.chance(0.5)) {
      p.add_constraint(terms, Sense::kLe, lhs + rng.uniform_real() * 3);
    } else {
      p.add_constraint(terms, Sense::kGe, lhs - rng.uniform_real() * 3);
    }
  }

  Result r = SimplexSolver().solve(p);
  ASSERT_EQ(r.status, Status::kOptimal) << "instance " << GetParam();
  EXPECT_LT(p.max_violation(r.x), 1e-5);
  EXPECT_LE(r.objective, p.objective_value(x0) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomLp, SimplexRandom, ::testing::Range(0, 40));

}  // namespace
}  // namespace vm1::lp
