#include "milp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace vm1::milp {
namespace {

MipResult solve(const Model& m) {
  BranchAndBound bnb;
  return bnb.solve(m);
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  int x = m.add_continuous(0, 4, -1, "x");
  m.add_constraint({{x, 1.0}}, lp::Sense::kLe, 2.5);
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.5, 1e-6);
}

TEST(BranchAndBound, SimpleBinaryChoice) {
  // min -3a - 2b  s.t. a + b <= 1  => a = 1, b = 0.
  Model m;
  int a = m.add_binary(-3, "a");
  int b = m.add_binary(-2, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kLe, 1);
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3, 1e-6);
  EXPECT_NEAR(r.x[a], 1, 1e-6);
  EXPECT_NEAR(r.x[b], 0, 1e-6);
}

TEST(BranchAndBound, KnapsackKnownOptimum) {
  // values {10, 13, 7, 8}, weights {3, 4, 2, 3}, capacity 7.
  // Optimum: items 0+1 (v=23, w=7).
  Model m;
  const double v[] = {10, 13, 7, 8};
  const double w[] = {3, 4, 2, 3};
  std::vector<std::pair<int, double>> cap;
  for (int i = 0; i < 4; ++i) {
    int x = m.add_binary(-v[i]);
    cap.emplace_back(x, w[i]);
  }
  m.add_constraint(cap, lp::Sense::kLe, 7);
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -23, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegral) {
  // a + b == 1 with both forced to 0 by bounds on a third constraint.
  Model m;
  int a = m.add_binary(0, "a");
  int b = m.add_binary(0, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kEq, 1);
  m.add_constraint({{a, 1.0}}, lp::Sense::kLe, 0);
  m.add_constraint({{b, 1.0}}, lp::Sense::kLe, 0);
  EXPECT_EQ(solve(m).status, MipStatus::kInfeasible);
}

TEST(BranchAndBound, FractionalLpForcedInteger) {
  // LP optimum is x = 2.5; integer optimum is 2 (x <= 2.5 constraint).
  Model m;
  int x = m.add_integer(0, 10, -1, "x");
  m.add_constraint({{x, 2.0}}, lp::Sense::kLe, 5);
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2, 1e-6);
}

TEST(BranchAndBound, AssignmentProblemIntegrality) {
  // 3x3 assignment: cost matrix with unique optimum on the diagonal.
  Model m;
  double cost[3][3] = {{1, 5, 5}, {5, 2, 5}, {5, 5, 3}};
  int v[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) v[i][j] = m.add_binary(cost[i][j]);
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<std::pair<int, double>> row, col;
    for (int j = 0; j < 3; ++j) {
      row.emplace_back(v[i][j], 1.0);
      col.emplace_back(v[j][i], 1.0);
    }
    m.add_constraint(row, lp::Sense::kEq, 1);
    m.add_constraint(col, lp::Sense::kEq, 1);
  }
  MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6, 1e-6);
}

TEST(BranchAndBound, WarmStartNeverWorsens) {
  Model m;
  int a = m.add_binary(-1, "a");
  int b = m.add_binary(-1, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kLe, 1);
  std::vector<double> warm = {1.0, 0.0};  // feasible with objective -1
  BranchAndBound::Options opts;
  opts.max_nodes = 0;  // forbid all search: incumbent must come from warm
  BranchAndBound bnb(opts);
  MipResult r = bnb.solve(m, nullptr, &warm);
  ASSERT_FALSE(r.x.empty());
  EXPECT_LE(r.objective, -1 + 1e-9);
}

TEST(BranchAndBound, HeuristicSeedsIncumbent) {
  Model m;
  int a = m.add_binary(-2, "a");
  int b = m.add_binary(-3, "b");
  m.add_constraint({{a, 2.0}, {b, 2.0}}, lp::Sense::kLe, 3);
  auto heuristic = [](const Model& model, const std::vector<double>& lpx)
      -> std::optional<std::vector<double>> {
    // Round down: always feasible for <=-only models with positive coeffs.
    std::vector<double> x(lpx.size());
    for (std::size_t i = 0; i < lpx.size(); ++i) x[i] = std::floor(lpx[i]);
    (void)model;
    return x;
  };
  BranchAndBound bnb;
  MipResult r = bnb.solve(m, heuristic);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3, 1e-6);  // b alone
}

TEST(BranchAndBound, NodeLimitReportsFeasible) {
  Rng rng(5);
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 18; ++i) {
    int x = m.add_binary(-(1.0 + static_cast<double>(rng.uniform(9))));
    row.emplace_back(x, 1.0 + static_cast<double>(rng.uniform(4)));
  }
  m.add_constraint(row, lp::Sense::kLe, 11);
  BranchAndBound::Options opts;
  opts.max_nodes = 3;
  MipResult r = BranchAndBound(opts).solve(m);
  // With almost no search we still expect an incumbent (rounded LP or a
  // lucky integral node) or an honest kNoSolution.
  if (!r.x.empty()) {
    EXPECT_TRUE(m.is_feasible(r.x, 1e-5));
    EXPECT_GE(r.objective, r.best_bound - 1e-6);
  } else {
    EXPECT_EQ(r.status, MipStatus::kNoSolution);
  }
}

TEST(BranchAndBound, NanWarmStartIsRejected) {
  Model m;
  int a = m.add_binary(-1, "a");
  m.add_constraint({{a, 1.0}}, lp::Sense::kLe, 1);
  std::vector<double> warm = {std::nan("")};
  BranchAndBound::Options opts;
  opts.max_nodes = 0;  // incumbent can only come from the warm start
  MipResult r = BranchAndBound(opts).solve(m, nullptr, &warm);
  EXPECT_TRUE(r.x.empty());
  EXPECT_EQ(r.status, MipStatus::kNoSolution);
}

TEST(BranchAndBound, InfiniteWarmStartIsRejected) {
  Model m;
  int a = m.add_binary(-1, "a");
  m.add_constraint({{a, 1.0}}, lp::Sense::kLe, 1);
  std::vector<double> warm = {std::numeric_limits<double>::infinity()};
  BranchAndBound::Options opts;
  opts.max_nodes = 0;
  MipResult r = BranchAndBound(opts).solve(m, nullptr, &warm);
  EXPECT_TRUE(r.x.empty());
  EXPECT_EQ(r.status, MipStatus::kNoSolution);
}

TEST(BranchAndBound, WrongSizeWarmStartIsRejected) {
  Model m;
  int a = m.add_binary(-1, "a");
  int b = m.add_binary(-1, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kLe, 1);
  std::vector<double> warm = {1.0};  // missing b
  BranchAndBound::Options opts;
  opts.max_nodes = 0;
  MipResult r = BranchAndBound(opts).solve(m, nullptr, &warm);
  EXPECT_TRUE(r.x.empty());
}

TEST(BranchAndBound, NanHeuristicDoesNotPoisonSearch) {
  // A heuristic that returns NaN coordinates must be ignored; the search
  // still proves the true optimum.
  Model m;
  int a = m.add_binary(-2, "a");
  int b = m.add_binary(-3, "b");
  m.add_constraint({{a, 2.0}, {b, 2.0}}, lp::Sense::kLe, 3);
  auto heuristic = [](const Model& model, const std::vector<double>& lpx)
      -> std::optional<std::vector<double>> {
    (void)model;
    return std::vector<double>(lpx.size(), std::nan(""));
  };
  MipResult r = BranchAndBound().solve(m, heuristic);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3, 1e-6);
}

TEST(BranchAndBound, OptionsValidationRejectsGarbage) {
  Model m;
  int a = m.add_binary(-1, "a");
  m.add_constraint({{a, 1.0}}, lp::Sense::kLe, 1);

  BranchAndBound::Options opts;
  opts.max_nodes = -1;
  EXPECT_THROW(BranchAndBound(opts).solve(m), std::invalid_argument);

  opts = {};
  opts.time_limit_sec = -0.5;
  EXPECT_THROW(BranchAndBound(opts).solve(m), std::invalid_argument);

  opts = {};
  opts.int_tol = std::nan("");
  EXPECT_THROW(BranchAndBound(opts).solve(m), std::invalid_argument);

  opts = {};
  opts.gap_tol = -1e-9;
  EXPECT_THROW(BranchAndBound(opts).solve(m), std::invalid_argument);

  opts = {};
  opts.lp_options.max_iterations = 0;
  EXPECT_THROW(BranchAndBound(opts).solve(m), std::invalid_argument);
}

TEST(BranchAndBound, CancelTokenStopsSearch) {
  // A pre-set cancellation token means zero nodes are explored; with a warm
  // start the incumbent still survives the truncated search.
  Model m;
  int a = m.add_binary(-3, "a");
  int b = m.add_binary(-2, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kLe, 1);
  std::vector<double> warm = {0.0, 1.0};  // feasible, objective -2
  std::atomic<bool> cancel{true};
  BranchAndBound::Options opts;
  opts.cancel = &cancel;
  MipResult r = BranchAndBound(opts).solve(m, nullptr, &warm);
  EXPECT_EQ(r.nodes_explored, 0);
  ASSERT_FALSE(r.x.empty());
  EXPECT_NEAR(r.objective, -2, 1e-9);
  EXPECT_EQ(r.status, MipStatus::kFeasible);  // truncated, not proven
}

class BnBExhaustive : public ::testing::TestWithParam<int> {};

// Property: on random small binary MILPs the B&B optimum matches exhaustive
// enumeration over all 2^n assignments.
TEST_P(BnBExhaustive, MatchesEnumeration) {
  Rng rng(900 + GetParam());
  const int n = 3 + static_cast<int>(rng.uniform(6));  // up to 8 binaries
  const int mrows = 1 + static_cast<int>(rng.uniform(4));

  Model m;
  std::vector<double> cost(n);
  for (int j = 0; j < n; ++j) {
    cost[j] = rng.uniform_int(-6, 6);
    m.add_binary(cost[j]);
  }
  struct Row {
    std::vector<double> a;
    double rhs;
    lp::Sense sense;
  };
  std::vector<Row> rows;
  for (int i = 0; i < mrows; ++i) {
    Row row;
    row.a.resize(n);
    for (int j = 0; j < n; ++j) {
      row.a[j] = static_cast<double>(rng.uniform_int(-3, 3));
    }
    row.rhs = static_cast<double>(rng.uniform_int(-2, 6));
    row.sense = rng.chance(0.5) ? lp::Sense::kLe : lp::Sense::kGe;
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (row.a[j] != 0) terms.emplace_back(j, row.a[j]);
    }
    if (terms.empty()) continue;
    m.add_constraint(terms, row.sense, row.rhs);
    rows.push_back(row);
  }

  // Exhaustive reference.
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (const Row& row : rows) {
      double lhs = 0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1 << j)) lhs += row.a[j];
      }
      if (row.sense == lp::Sense::kLe ? lhs > row.rhs + 1e-9
                                      : lhs < row.rhs - 1e-9) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double obj = 0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1 << j)) obj += cost[j];
    }
    best = std::min(best, obj);
  }

  MipResult r = solve(m);
  if (std::isinf(best)) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "instance " << GetParam();
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "instance " << GetParam();
    EXPECT_NEAR(r.objective, best, 1e-6) << "instance " << GetParam();
    EXPECT_TRUE(m.is_feasible(r.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMilp, BnBExhaustive, ::testing::Range(0, 40));

class BnBWarmCold : public ::testing::TestWithParam<int> {};

// Property: warm-started branch-and-bound (basis reuse + dual simplex)
// proves the same optimal objective as the cold-start search on randomized
// window-MILP-shaped instances (candidate binaries with exclusivity,
// shared-site coupling, and big-M alignment indicators).
TEST_P(BnBWarmCold, IdenticalOptimaWithAndWithoutWarmStart) {
  Rng rng(1300 + GetParam());
  const int cells = 3 + static_cast<int>(rng.uniform(3));
  const int cands = 3 + static_cast<int>(rng.uniform(2));

  Model m;
  std::vector<std::vector<int>> lam(cells);
  std::vector<int> xpos(cells);
  for (int c = 0; c < cells; ++c) {
    for (int k = 0; k < cands; ++k) {
      lam[c].push_back(
          m.add_binary(0.1 * static_cast<double>(rng.uniform(40))));
    }
    xpos[c] = m.add_continuous(0, 20, 0);
    std::vector<std::pair<int, double>> link{{xpos[c], 1.0}};
    for (int k = 0; k < cands; ++k) {
      link.emplace_back(lam[c][k], -static_cast<double>(rng.uniform(20)));
    }
    m.add_constraint(link, lp::Sense::kEq, 0);
    std::vector<std::pair<int, double>> excl;
    for (int v : lam[c]) excl.emplace_back(v, 1.0);
    m.add_constraint(excl, lp::Sense::kEq, 1);
  }
  for (int r = 0; r < cells; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int c = 0; c < cells; ++c) {
      row.emplace_back(lam[c][rng.uniform(cands)], 1.0);
    }
    m.add_constraint(row, lp::Sense::kLe, 1);
  }
  const double big_m = 30;
  for (int i = 0; i < 3; ++i) {
    int a = static_cast<int>(rng.uniform(cells));
    int b = static_cast<int>(rng.uniform(cells));
    if (a == b) continue;
    int d = m.add_binary(-4.0 - static_cast<double>(rng.uniform(5)));
    m.add_constraint({{xpos[a], 1.0}, {xpos[b], -1.0}, {d, big_m}},
                     lp::Sense::kLe, big_m);
    m.add_constraint({{xpos[b], 1.0}, {xpos[a], -1.0}, {d, big_m}},
                     lp::Sense::kLe, big_m);
  }

  BranchAndBound::Options opts;
  opts.max_nodes = 200000;
  opts.use_warm_start = false;
  MipResult cold = BranchAndBound(opts).solve(m);
  opts.use_warm_start = true;
  MipResult warm = BranchAndBound(opts).solve(m);

  // Tight coupling can make an instance genuinely infeasible; both modes
  // must agree on that verdict too.
  ASSERT_EQ(warm.status, cold.status) << "instance " << GetParam();
  if (cold.status == MipStatus::kInfeasible) return;
  ASSERT_EQ(cold.status, MipStatus::kOptimal) << "instance " << GetParam();
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6)
      << "instance " << GetParam();
  EXPECT_TRUE(m.is_feasible(warm.x, 1e-5));

  // Counter plumbing: cold search never reuses a basis; warm search only
  // pays a cold solve at the root (plus rare numerical restarts).
  EXPECT_EQ(cold.warm_solves, 0);
  EXPECT_EQ(cold.dual_pivots, 0);
  if (warm.nodes_explored > 1) {
    EXPECT_GT(warm.warm_solves, 0) << "instance " << GetParam();
  }
  EXPECT_LT(warm.cold_restarts, warm.nodes_explored + 1);
}

INSTANTIATE_TEST_SUITE_P(RandomWindowMilp, BnBWarmCold,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace vm1::milp
