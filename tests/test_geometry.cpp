#include "util/geometry.h"

#include <gtest/gtest.h>

namespace vm1 {
namespace {

TEST(Geometry, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {2, -5}), 14);
  EXPECT_EQ(manhattan({1, 1}, {1, 1}), 0);
}

TEST(Geometry, RectBasics) {
  Rect r(1, 2, 5, 9);
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 7);
  EXPECT_EQ(r.half_perimeter(), 11);
  EXPECT_EQ(r.center(), (Point{3, 5}));
}

TEST(Geometry, DegenerateRectIsValid) {
  Rect pin(3, 3, 3, 11);  // 1D vertical pin shape
  EXPECT_TRUE(pin.valid());
  EXPECT_EQ(pin.width(), 0);
  EXPECT_EQ(pin.half_perimeter(), 8);
}

TEST(Geometry, ContainsPoint) {
  Rect r(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_FALSE(r.contains(Point{5, -1}));
}

TEST(Geometry, ContainsRect) {
  Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect(2, 2, 8, 8)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect(2, 2, 11, 8)));
}

TEST(Geometry, IntersectsClosed) {
  Rect a(0, 0, 5, 5);
  EXPECT_TRUE(a.intersects(Rect(5, 5, 9, 9)));  // corner touch counts
  EXPECT_TRUE(a.intersects(Rect(3, 3, 4, 4)));
  EXPECT_FALSE(a.intersects(Rect(6, 0, 9, 5)));
}

TEST(Geometry, OverlapsOpenExcludesSharedEdge) {
  Rect a(0, 0, 5, 5);
  EXPECT_FALSE(a.overlaps_open(Rect(5, 0, 9, 5)));  // abutting cells
  EXPECT_TRUE(a.overlaps_open(Rect(4, 0, 9, 5)));
}

TEST(Geometry, ExpandPointAndRect) {
  Rect r(2, 2, 3, 3);
  r.expand(Point{0, 5});
  EXPECT_EQ(r, Rect(0, 2, 3, 5));
  r.expand(Rect(-1, -1, 7, 0));
  EXPECT_EQ(r, Rect(-1, -1, 7, 5));
}

TEST(Geometry, ShiftedAndIntersection) {
  Rect r(0, 0, 4, 4);
  EXPECT_EQ(r.shifted(2, -1), Rect(2, -1, 6, 3));
  Rect i = r.intersection(Rect(2, 2, 9, 9));
  EXPECT_EQ(i, Rect(2, 2, 4, 4));
  EXPECT_FALSE(r.intersection(Rect(5, 5, 6, 6)).valid());
}

TEST(Geometry, IntervalOverlap) {
  EXPECT_EQ(interval_overlap(0, 4, 2, 6), 2);
  EXPECT_EQ(interval_overlap(0, 4, 4, 6), 0);   // touching
  EXPECT_EQ(interval_overlap(0, 4, 5, 6), -1);  // gap of 1
  EXPECT_EQ(interval_overlap(0, 10, 2, 3), 1);
}

TEST(Geometry, BBoxAccumulation) {
  BBox box;
  EXPECT_TRUE(box.empty());
  box.add(Point{3, 4});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.rect(), Rect(3, 4, 3, 4));
  box.add(Point{0, 9});
  box.add(Rect(5, 1, 6, 2));
  EXPECT_EQ(box.rect(), Rect(0, 1, 6, 9));
}

TEST(Geometry, ToStringRoundtrip) {
  EXPECT_EQ(to_string(Point{1, -2}), "(1,-2)");
  EXPECT_EQ(to_string(Rect(0, 1, 2, 3)), "[0,1 .. 2,3]");
}

}  // namespace
}  // namespace vm1
