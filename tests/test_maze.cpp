#include "route/maze_router.h"

#include <gtest/gtest.h>

#include <memory>

#include "cells/library_builder.h"

namespace vm1 {
namespace {

/// Empty design: free routing fabric with no cells (OpenM1 so no PG
/// staples when disabled via options, and no pin blockage).
Design empty_design(int rows, int sites) {
  auto lib = std::make_unique<Library>(build_library(CellArch::kOpenM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  return Design("empty", Tech::make_7nm(), std::move(lib), std::move(nl),
                rows, sites);
}

class MazeTest : public ::testing::Test {
 protected:
  MazeTest()
      : d_(empty_design(4, 40)),
        graph_(d_, no_staples()),
        state_(graph_, MazeCostOptions{}) {}

  static TrackGraphOptions no_staples() {
    TrackGraphOptions o;
    o.staple_pitch = 0;
    return o;
  }

  std::vector<GNode> search(GNode from, GNode to) {
    return state_.search({from}, {to}, /*net=*/0, 0, 0, graph_.width(),
                         graph_.height());
  }

  Design d_;
  TrackGraph graph_;
  MazeState state_;
};

TEST_F(MazeTest, StraightM1Path) {
  auto path = search({kM1, 5, 2}, {kM1, 5, 9});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), (GNode{kM1, 5, 2}));
  EXPECT_EQ(path.back(), (GNode{kM1, 5, 9}));
  for (const GNode& n : path) {
    EXPECT_EQ(n.layer, kM1);  // no reason to leave M1
    EXPECT_EQ(n.gx, 5);
  }
  EXPECT_EQ(path.size(), 8u);
}

TEST_F(MazeTest, LShapedPathUsesViaAndM2) {
  auto path = search({kM1, 5, 2}, {kM1, 15, 2});
  ASSERT_FALSE(path.empty());
  bool used_m2 = false;
  for (const GNode& n : path) used_m2 |= (n.layer == kM2);
  EXPECT_TRUE(used_m2);  // horizontal motion requires a horizontal layer
}

TEST_F(MazeTest, SourceEqualsTargetIsTrivial) {
  auto path = search({kM1, 7, 3}, {kM1, 7, 3});
  ASSERT_EQ(path.size(), 1u);
}

TEST_F(MazeTest, MultiSourceMultiTargetPicksNearest) {
  std::vector<GNode> sources = {{kM1, 2, 2}, {kM1, 30, 2}};
  std::vector<GNode> targets = {{kM1, 31, 5}, {kM1, 20, 12}};
  auto path = state_.search(sources, targets, 0, 0, 0, graph_.width(),
                            graph_.height());
  ASSERT_FALSE(path.empty());
  // Nearest pairing is (30,2) -> (31,5).
  EXPECT_EQ(path.front().gx, 30);
  EXPECT_EQ(path.back().gx, 31);
}

TEST_F(MazeTest, BboxRestrictsSearch) {
  // Target outside the bbox: unreachable.
  auto path = state_.search({{kM1, 5, 2}}, {{kM1, 5, 9}}, 0, 0, 0,
                            graph_.width(), 5);
  EXPECT_TRUE(path.empty());
}

TEST_F(MazeTest, CongestionDivertsSecondNet) {
  // Saturate the cheap M1 column with net 1, then route net 2 in parallel:
  // it should avoid the used edges (capacity 1).
  auto p1 = search({kM1, 10, 2}, {kM1, 10, 10});
  ASSERT_FALSE(p1.empty());
  for (std::size_t i = 0; i + 1 < p1.size(); ++i) {
    int fy = std::min(p1[i].gy, p1[i + 1].gy);
    state_.add_wire(graph_.node_id(kM1, 10, fy), 1);
  }
  auto p2 = state_.search({{kM1, 10, 2}}, {{kM1, 10, 10}}, /*net=*/2, 0, 0,
                          graph_.width(), graph_.height());
  ASSERT_FALSE(p2.empty());
  bool left_column = false;
  for (const GNode& n : p2) left_column |= (n.gx != 10 || n.layer != kM1);
  EXPECT_TRUE(left_column) << "second net should detour off the used column";
}

TEST_F(MazeTest, OverflowTrackingAndHistory) {
  std::size_t edge = graph_.node_id(kM1, 4, 4);
  EXPECT_EQ(state_.total_overflow(), 0);
  state_.add_wire(edge, 2);  // capacity 1 -> overflow 1
  EXPECT_EQ(state_.total_overflow(), 1);
  auto over = state_.overused_edges();
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], edge);
  state_.accumulate_history();
  state_.reset_usage();
  EXPECT_EQ(state_.total_overflow(), 0);
}

TEST_F(MazeTest, ViaCostDiscouragesLayerHopping) {
  // A short vertical run should stay on M1 rather than hop M1->M3.
  auto path = search({kM1, 8, 3}, {kM1, 8, 6});
  for (const GNode& n : path) EXPECT_EQ(n.layer, kM1);
}

}  // namespace
}  // namespace vm1
