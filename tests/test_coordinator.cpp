/// Coordinator/worker tests for the distributed window-solve service.
///
/// Layer 1 drives run_worker() in-process over a socketpair — the exact
/// loop the vm1_worker executable runs — and checks the protocol: hello,
/// replica binding, signature-checked requests, sync deltas, typed desync
/// and bad-request errors, orderly shutdown.
///
/// Layer 2 runs whole dist_opt()/Coordinator passes against real worker
/// subprocesses: results must be bit-identical to the threads backend,
/// including under a 25% deterministic fault storm on every transport
/// drill (worker_kill / reply_drop / reply_corrupt / connect_timeout /
/// connect_refused / partition / slow_loris) — the budgeted
/// retry-then-local-fallback policy must absorb every failure without
/// losing a window (outcome taxonomy sums to `windows`) and without
/// changing a single placement.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/dist_opt.h"
#include "core/incremental.h"
#include "core/window.h"
#include "core/window_solve.h"
#include "dist/coordinator.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/fault_injection.h"
#include "util/subprocess.h"

namespace vm1::dist {
namespace {

Design placed_design(std::uint64_t seed) {
  DesignOptions dopt;
  dopt.scale = 0.3;
  dopt.utilization = 0.7;
  dopt.seed = seed | 1;
  Design d = make_design("tiny", CellArch::kClosedM1, dopt);
  GlobalPlaceOptions gp;
  gp.seed = seed * 131 + 3;
  global_place(d, gp);
  legalize(d);
  return d;
}

DistOptOptions base_opts() {
  DistOptOptions o;
  o.bw = 16;
  o.bh = 2;
  o.params.alpha = 30;
  o.mip.max_nodes = 40;
  o.mip.time_limit_sec = 3600;
  o.mip.lp_options.time_limit_sec = 0;
  o.incremental = false;
  return o;
}

/// Every test runs under a known fault config (the window signature hashes
/// it, so the in-process tests must compute signatures under the same
/// config the request ships).
class DistFixture : public ::testing::Test {
 protected:
  void SetUp() override { fault::set_config(fault::Config{}); }
  void TearDown() override { fault::set_config(fault::Config{}); }
};

using WorkerProtocol = DistFixture;
using CoordinatorEndToEnd = DistFixture;
using CoordinatorFaults = DistFixture;

/// In-process worker on one end of a socketpair; the test is the
/// coordinator side of the wire.
struct WorkerHarness {
  int fd = -1;  ///< test side
  int rc = -1;  ///< run_worker return code
  std::thread thread;
  std::vector<std::uint8_t> rbuf;

  WorkerHarness() {
    int sv[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    fd = sv[0];
    thread = std::thread([this, worker_fd = sv[1]] {
      rc = run_worker(worker_fd);
      close(worker_fd);
    });
  }
  ~WorkerHarness() {
    if (fd >= 0) close(fd);
    if (thread.joinable()) thread.join();
  }

  void send(MsgType type, std::vector<std::uint8_t> payload) {
    std::vector<std::uint8_t> frame =
        encode_frame(type, std::move(payload));
    ASSERT_TRUE(subprocess::write_all(fd, frame.data(), frame.size()));
  }
  /// Blocking receive of the next frame (test relies on ctest timeouts).
  Frame recv() {
    std::uint8_t chunk[4096];
    for (;;) {
      if (std::optional<Frame> f = extract_frame(rbuf)) return *f;
      long n = subprocess::read_some(fd, chunk, sizeof chunk);
      if (n <= 0) throw WireError("worker closed the socket");
      rbuf.insert(rbuf.end(), chunk, chunk + n);
    }
  }
  /// Closes the test side and joins; returns run_worker's exit code.
  int finish() {
    close(fd);
    fd = -1;
    thread.join();
    return rc;
  }
};

/// One solvable window of `d` plus the signature-bearing request, built
/// exactly the way dist_opt prepares remote jobs.
struct PreparedWindow {
  WindowSolveJob job;
  WireRequest request;
};

PreparedWindow prepare_window(const Design& d, const DistOptOptions& o) {
  WindowGrid grid = partition_windows(d, o.tx, o.ty, o.bw, o.bh);
  std::vector<std::vector<int>> nets =
      window_incident_nets(grid, d.netlist());
  int widx = -1;
  for (std::size_t w = 0; w < grid.windows.size(); ++w) {
    if (grid.movable[w].size() >= 2) {
      widx = static_cast<int>(w);
      break;
    }
  }
  EXPECT_GE(widx, 0) << "no window with movable cells";
  PreparedWindow pw;
  pw.job.widx = widx;
  pw.job.key = 99;
  pw.job.window = grid.windows[widx];
  pw.job.movable = grid.movable[widx];
  pw.job.lx = o.lx;
  pw.job.ly = o.ly;
  pw.job.allow_move = o.allow_move;
  pw.job.allow_flip = o.allow_flip;
  pw.job.rounding_fallback = o.rounding_fallback;
  pw.job.params = o.params;
  pw.job.mip = o.mip;
  pw.request.req_id = 1;
  pw.request.job = pw.job;
  pw.request.greedy_fallback = o.greedy_fallback;
  pw.request.sig_mip = o.mip;
  pw.request.faults = fault::config();
  pw.request.expected_sig =
      window_signature(d, pw.job.window, pw.job.movable, nets[widx], o);
  return pw;
}

TEST_F(WorkerProtocol, HelloBindSolveShutdown) {
  Design d = placed_design(1);
  DistOptOptions o = base_opts();
  PreparedWindow pw = prepare_window(d, o);

  WorkerHarness w;
  Frame hello = w.recv();
  ASSERT_EQ(hello.type, MsgType::kHello);
  WireHello h = decode_hello(hello.payload);
  EXPECT_EQ(h.num_fault_sites, fault::kNumSites);

  w.send(MsgType::kBindDesign, encode_design(d));
  w.send(MsgType::kRequest, encode_request(pw.request));
  Frame reply = w.recv();
  ASSERT_EQ(reply.type, MsgType::kReply);
  WireReply rp = decode_reply(reply.payload);
  EXPECT_EQ(rp.req_id, pw.request.req_id);
  EXPECT_FALSE(rp.result.failed);

  // The remote solve must be bit-identical to solving the same job here.
  WindowSolveResult local = solve_window(d, pw.job, nullptr);
  EXPECT_EQ(rp.result.usable, local.usable);
  EXPECT_EQ(rp.result.cells, local.cells);
  ASSERT_EQ(rp.result.placements.size(), local.placements.size());
  for (std::size_t i = 0; i < local.placements.size(); ++i) {
    EXPECT_EQ(rp.result.placements[i], local.placements[i]) << "cell " << i;
  }
  EXPECT_EQ(rp.result.objective, local.objective);
  EXPECT_EQ(rp.result.warm_obj, local.warm_obj);

  w.send(MsgType::kShutdown, {});
  EXPECT_EQ(w.finish(), 0);
}

TEST_F(WorkerProtocol, DesyncedReplicaReportsTypedErrorThenRecovers) {
  Design d = placed_design(2);
  DistOptOptions o = base_opts();
  PreparedWindow pw = prepare_window(d, o);

  WorkerHarness w;
  ASSERT_EQ(w.recv().type, MsgType::kHello);

  // Request before any design is bound: kDesync.
  w.send(MsgType::kRequest, encode_request(pw.request));
  Frame err = w.recv();
  ASSERT_EQ(err.type, MsgType::kError);
  EXPECT_EQ(decode_error(err.payload).code, ErrorCode::kDesync);

  // Bound replica but a stale signature (the design moved on): kDesync.
  w.send(MsgType::kBindDesign, encode_design(d));
  WireRequest stale = pw.request;
  stale.expected_sig.a ^= 1;
  w.send(MsgType::kRequest, encode_request(stale));
  err = w.recv();
  ASSERT_EQ(err.type, MsgType::kError);
  EXPECT_EQ(decode_error(err.payload).code, ErrorCode::kDesync);

  // The correct signature still solves — the worker stayed serviceable.
  w.send(MsgType::kRequest, encode_request(pw.request));
  EXPECT_EQ(w.recv().type, MsgType::kReply);

  w.send(MsgType::kShutdown, {});
  EXPECT_EQ(w.finish(), 0);
}

TEST_F(WorkerProtocol, SyncDeltasKeepReplicaCurrent) {
  Design d = placed_design(3);
  DistOptOptions o = base_opts();

  WorkerHarness w;
  ASSERT_EQ(w.recv().type, MsgType::kHello);
  w.send(MsgType::kBindDesign, encode_design(d));

  // Mutate the authoritative design the way an apply phase would, ship the
  // delta, and prove the replica tracked it: a request signed against the
  // *updated* design must succeed.
  WindowGrid grid = partition_windows(d, 0, 0, o.bw, o.bh);
  int moved = -1;
  for (std::size_t wi = 0; wi < grid.windows.size(); ++wi) {
    if (!grid.movable[wi].empty()) {
      moved = grid.movable[wi][0];
      break;
    }
  }
  ASSERT_GE(moved, 0);
  Placement p = d.placement(moved);
  p.flipped = !p.flipped;
  d.set_placement(moved, p);
  WireSync sync;
  sync.changed = {{moved, p}};
  w.send(MsgType::kSync, encode_sync(sync));

  PreparedWindow pw = prepare_window(d, o);
  w.send(MsgType::kRequest, encode_request(pw.request));
  Frame reply = w.recv();
  ASSERT_EQ(reply.type, MsgType::kReply) << "replica missed the sync delta";

  w.send(MsgType::kShutdown, {});
  EXPECT_EQ(w.finish(), 0);
}

TEST_F(WorkerProtocol, OutOfRangeInstanceIsBadRequestNotUB) {
  Design d = placed_design(4);
  DistOptOptions o = base_opts();
  PreparedWindow pw = prepare_window(d, o);

  WorkerHarness w;
  ASSERT_EQ(w.recv().type, MsgType::kHello);
  w.send(MsgType::kBindDesign, encode_design(d));
  WireRequest bad = pw.request;
  bad.job.movable.push_back(d.netlist().num_instances() + 5);
  w.send(MsgType::kRequest, encode_request(bad));
  Frame err = w.recv();
  ASSERT_EQ(err.type, MsgType::kError);
  EXPECT_EQ(decode_error(err.payload).code, ErrorCode::kBadRequest);
  w.send(MsgType::kShutdown, {});
  EXPECT_EQ(w.finish(), 0);
}

/// Runs one dist_opt pass; `coordinator` null means threads backend.
DistOptStats run_pass(Design& d, DistOptOptions o, Coordinator* coordinator) {
  if (coordinator) {
    o.backend = DistBackend::kProcesses;
    o.coordinator = coordinator;
  }
  return dist_opt(d, o, nullptr);
}

TEST_F(CoordinatorEndToEnd, ProcessesPassMatchesThreadsBitExactly) {
  Design dp = placed_design(10);
  Design dt = placed_design(10);
  DistOptOptions o = base_opts();

  Coordinator coord(CoordinatorOptions{});
  DistOptStats sp = run_pass(dp, o, &coord);
  DistOptStats st = run_pass(dt, o, nullptr);

  ASSERT_EQ(dp.placements().size(), dt.placements().size());
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.objective, st.objective);
  EXPECT_EQ(sp.outcome_total(), sp.windows);
  EXPECT_EQ(sp.solved, st.solved);
  EXPECT_GT(sp.remote_replies, 0) << "nothing actually solved remotely";
  EXPECT_EQ(sp.remote_local_fallbacks, 0);
  EXPECT_EQ(sp.remote_desyncs, 0);
  EXPECT_GT(sp.wire_bytes_sent, 0);
  EXPECT_GT(sp.wire_bytes_received, 0);
  EXPECT_FALSE(coord.spawn_broken());
}

TEST_F(CoordinatorEndToEnd, BrokenWorkerBinaryDegradesToAllLocal) {
  Design dp = placed_design(11);
  Design dt = placed_design(11);
  DistOptOptions o = base_opts();

  CoordinatorOptions co;
  co.worker_path = "/nonexistent/vm1_worker";
  co.spawn_timeout_sec = 2.0;
  Coordinator coord(co);
  DistOptStats sp = run_pass(dp, o, &coord);
  DistOptStats st = run_pass(dt, o, nullptr);

  EXPECT_TRUE(coord.spawn_broken());
  EXPECT_EQ(sp.remote_replies, 0);
  EXPECT_GT(sp.remote_local_fallbacks, 0);
  EXPECT_EQ(sp.outcome_total(), sp.windows);
  // The degraded path still produces the identical answer.
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.objective, st.objective);
}

TEST_F(CoordinatorFaults, QuarterRateTransportStormIsAbsorbedBitExactly) {
  // 25% deterministic faults on every transport drill. The same config is
  // active for the threads reference run (signatures hash the fault
  // config), but the dist sites never fire there — only the transport
  // layer consults them — so the reference is the clean answer.
  fault::Config fc = fault::parse_spec(
      "worker_kill=0.25,reply_drop=0.25,reply_corrupt=0.25,"
      "connect_timeout=0.25,connect_refused=0.25,partition=0.25,"
      "slow_loris=0.25,seed=11");
  fault::set_config(fc);

  Design dp = placed_design(12);
  Design dt = placed_design(12);
  DistOptOptions o = base_opts();
  // Short solver limit: it never binds on these windows (the node limit
  // does), but it sets the reply-drop deadline, keeping the storm fast.
  o.mip.time_limit_sec = 0.5;

  CoordinatorOptions co;
  co.request_timeout_sec = 0.75;
  co.quarantine_base_sec = 0.2;
  Coordinator coord(co);
  DistOptStats sp = run_pass(dp, o, &coord);
  DistOptStats st = run_pass(dt, o, nullptr);

  // No window may be lost to the storm...
  EXPECT_EQ(sp.outcome_total(), sp.windows);
  EXPECT_EQ(sp.windows, st.windows);
  // ...and every drill must have actually fired and been absorbed.
  EXPECT_GT(sp.remote_retries, 0);
  EXPECT_GT(sp.remote_local_fallbacks, 0);
  EXPECT_GT(sp.remote_timeouts, 0)
      << "reply_drop/slow_loris never hit the deadline";
  EXPECT_GT(sp.worker_restarts, 0) << "no killed worker was respawned";
  // (connect_refused / partition counters are NOT asserted here: whether a
  // given window key is ever *dispatched* — rather than drained straight to
  // local while every slot sits quarantined — depends on timing, so their
  // firing in a mixed storm is not reproducible run-to-run. The dedicated
  // rate-1.0 drills below pin those two sites deterministically.)
  // Transport faults are invisible in the results: retried or locally
  // solved windows are bit-identical to the threads reference.
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.objective, st.objective);
  EXPECT_EQ(sp.solved, st.solved);
  EXPECT_TRUE(is_legal(dp));
}

TEST_F(CoordinatorFaults, ConnectRefusedStormDegradesToLocalBitExactly) {
  // Every dispatch is refused: the first dispatch attempt always happens
  // (slots start healthy), so the counter is deterministic, and the whole
  // pass must degrade to local solving with the identical answer.
  fault::set_config(fault::parse_spec("connect_refused=1.0,seed=7"));

  Design dp = placed_design(14);
  Design dt = placed_design(14);
  DistOptOptions o = base_opts();
  CoordinatorOptions co;
  co.quarantine_base_sec = 0.05;
  Coordinator coord(co);
  DistOptStats sp = run_pass(dp, o, &coord);
  DistOptStats st = run_pass(dt, o, nullptr);

  EXPECT_EQ(sp.outcome_total(), sp.windows);
  EXPECT_GT(sp.remote_connect_failures, 0) << "connect_refused never fired";
  EXPECT_EQ(sp.remote_replies, 0);
  EXPECT_GT(sp.remote_local_fallbacks, 0);
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.objective, st.objective);
  EXPECT_TRUE(is_legal(dp));
}

TEST_F(CoordinatorFaults, MidFramePartitionDropsBytesButStaysBitExact) {
  // Every request is cut mid-frame: half the frame leaves (accounted as
  // sent), the stranded tail is accounted as dropped, the link dies, and
  // the window is still solved — locally — with the identical answer.
  fault::set_config(fault::parse_spec("partition=1.0,seed=7"));

  Design dp = placed_design(15);
  Design dt = placed_design(15);
  DistOptOptions o = base_opts();
  CoordinatorOptions co;
  co.quarantine_base_sec = 0.05;
  Coordinator coord(co);
  DistOptStats sp = run_pass(dp, o, &coord);
  DistOptStats st = run_pass(dt, o, nullptr);

  EXPECT_EQ(sp.outcome_total(), sp.windows);
  EXPECT_GT(sp.wire_bytes_dropped, 0) << "partition never dropped a frame";
  EXPECT_EQ(sp.remote_replies, 0);
  EXPECT_GT(sp.remote_local_fallbacks, 0);
  EXPECT_GT(sp.worker_restarts, 0);
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.objective, st.objective);
  EXPECT_TRUE(is_legal(dp));
}

// ---------------------------------------------------------------------
// CoordinatorStats byte-accounting invariants, at the struct level: drive
// solve_batch directly on prepared windows and check the counters against
// the contract documented on CoordinatorStats (bytes_sent = bytes handed
// to the kernel; bytes_dropped = stranded mid-frame tails; retransmitted
// = the subset of bytes_sent spent on retries), clean and after drills.

using CoordinatorStatsInvariants = DistFixture;

/// Up to `maxn` solvable windows of `d`, prepared exactly the way
/// dist_opt hands them to solve_batch (distinct keys; results pinned).
struct PreparedBatch {
  std::vector<WindowSolveJob> jobs;
  std::vector<WindowSolveResult> results;
  std::vector<RemoteJob> remote;
};

PreparedBatch prepare_batch(const Design& d, const DistOptOptions& o,
                            std::size_t maxn) {
  WindowGrid grid = partition_windows(d, o.tx, o.ty, o.bw, o.bh);
  std::vector<std::vector<int>> nets =
      window_incident_nets(grid, d.netlist());
  PreparedBatch b;
  for (std::size_t w = 0; w < grid.windows.size() && b.jobs.size() < maxn;
       ++w) {
    if (grid.movable[w].size() < 2) continue;
    WindowSolveJob j;
    j.widx = static_cast<int>(w);
    j.key = 1000 + static_cast<std::uint64_t>(w);
    j.window = grid.windows[w];
    j.movable = grid.movable[w];
    j.lx = o.lx;
    j.ly = o.ly;
    j.allow_move = o.allow_move;
    j.allow_flip = o.allow_flip;
    j.rounding_fallback = o.rounding_fallback;
    j.params = o.params;
    j.mip = o.mip;
    b.jobs.push_back(std::move(j));
  }
  EXPECT_GE(b.jobs.size(), 2u) << "need at least two solvable windows";
  b.results.resize(b.jobs.size());
  for (std::size_t i = 0; i < b.jobs.size(); ++i) {
    RemoteJob rj;
    rj.job = &b.jobs[i];
    rj.result = &b.results[i];
    rj.greedy_fallback = o.greedy_fallback;
    rj.sig_mip = o.mip;
    rj.expected_sig = window_signature(
        d, b.jobs[i].window, b.jobs[i].movable,
        nets[static_cast<std::size_t>(b.jobs[i].widx)], o);
    b.remote.push_back(rj);
  }
  return b;
}

TEST_F(CoordinatorStatsInvariants, CleanBatchSendsEverythingDropsNothing) {
  Design d = placed_design(40);
  DistOptOptions o = base_opts();
  Coordinator coord(CoordinatorOptions{});
  PreparedBatch b = prepare_batch(d, o, 4);

  coord.begin_pass(d);
  coord.solve_batch(d, b.remote, nullptr);
  CoordinatorStats cs = coord.take_stats();

  const long n = static_cast<long>(b.remote.size());
  EXPECT_EQ(cs.requests, n);
  EXPECT_EQ(cs.replies, n);
  EXPECT_EQ(cs.retries, 0);
  EXPECT_EQ(cs.local_fallbacks, 0);
  EXPECT_GT(cs.bytes_sent, 0);
  EXPECT_GT(cs.bytes_received, 0);
  // Nothing failed mid-frame and nothing was retried, so both deltas of
  // the byte-accounting invariant are exactly zero.
  EXPECT_EQ(cs.bytes_dropped, 0);
  EXPECT_EQ(cs.bytes_retransmitted, 0);
  EXPECT_EQ(cs.faults_scheduled, 0) << "census must be zero with faults off";
}

TEST_F(CoordinatorStatsInvariants, PartitionStormAccountsDropsNotRetransmits) {
  // Every request is cut mid-frame. The injection accounts the sent half +
  // the stranded tail and tears the link down BEFORE any retransmit
  // accounting: a partitioned retry must never count as retransmitted.
  fault::set_config(fault::parse_spec("partition=1.0,seed=9"));
  Design d = placed_design(41);
  DistOptOptions o = base_opts();
  CoordinatorOptions co;
  co.quarantine_base_sec = 0.05;
  Coordinator coord(co);
  PreparedBatch b = prepare_batch(d, o, 4);

  coord.begin_pass(d);
  coord.solve_batch(d, b.remote, nullptr);
  CoordinatorStats cs = coord.take_stats();

  const long n = static_cast<long>(b.remote.size());
  EXPECT_EQ(cs.requests, 0) << "a cut frame must not count as a request";
  EXPECT_EQ(cs.replies, 0);
  EXPECT_GT(cs.bytes_sent, 0) << "the pre-cut half is real kernel traffic";
  EXPECT_GT(cs.bytes_dropped, 0);
  EXPECT_EQ(cs.bytes_retransmitted, 0);
  EXPECT_EQ(cs.local_fallbacks, n);
  // Rate 1.0 schedules the partition drill for every window, exactly once.
  EXPECT_EQ(cs.faults_scheduled, n);
}

TEST_F(CoordinatorStatsInvariants, ConnectTimeoutStormSendsNoBytes) {
  // The timeout drill fails the attempt before a single frame is built:
  // the whole batch degrades to local with zero wire traffic.
  fault::set_config(fault::parse_spec("connect_timeout=1.0,seed=9"));
  Design d = placed_design(42);
  DistOptOptions o = base_opts();
  CoordinatorOptions co;
  co.quarantine_base_sec = 0.05;
  Coordinator coord(co);
  PreparedBatch b = prepare_batch(d, o, 4);

  coord.begin_pass(d);
  coord.solve_batch(d, b.remote, nullptr);
  CoordinatorStats cs = coord.take_stats();

  EXPECT_EQ(cs.bytes_sent, 0);
  EXPECT_EQ(cs.bytes_dropped, 0);
  EXPECT_EQ(cs.bytes_retransmitted, 0);
  EXPECT_EQ(cs.requests, 0);
  EXPECT_EQ(cs.replies, 0);
  EXPECT_EQ(cs.local_fallbacks, static_cast<long>(b.remote.size()));
  EXPECT_EQ(cs.faults_scheduled, static_cast<long>(b.remote.size()));
}

TEST_F(CoordinatorStatsInvariants, CorruptRepliesRetransmitWithinBytesSent) {
  // Every reply is corrupted: each window burns its retry (retransmitted
  // bytes) and then falls back locally. Retransmitted bytes are a strict
  // subset of bytes_sent — the invariant the struct doc promises.
  fault::set_config(fault::parse_spec("reply_corrupt=1.0,seed=9"));
  Design d = placed_design(43);
  DistOptOptions o = base_opts();
  CoordinatorOptions co;
  co.quarantine_base_sec = 0.05;
  Coordinator coord(co);
  PreparedBatch b = prepare_batch(d, o, 4);

  coord.begin_pass(d);
  coord.solve_batch(d, b.remote, nullptr);
  CoordinatorStats cs = coord.take_stats();

  EXPECT_GT(cs.retries, 0);
  EXPECT_GT(cs.bytes_retransmitted, 0);
  EXPECT_LT(cs.bytes_retransmitted, cs.bytes_sent);
  EXPECT_EQ(cs.replies, 0) << "a corrupt reply must never be accepted";
  EXPECT_EQ(cs.local_fallbacks, static_cast<long>(b.remote.size()));
  EXPECT_EQ(cs.faults_scheduled, static_cast<long>(b.remote.size()));
}

TEST_F(CoordinatorFaults, CoordinatorReusableAcrossPassesAfterStorm) {
  fault::Config fc = fault::parse_spec("worker_kill=0.3,seed=5");
  fault::set_config(fc);

  Design d = placed_design(13);
  DistOptOptions o = base_opts();
  o.mip.time_limit_sec = 0.5;
  CoordinatorOptions co;
  co.request_timeout_sec = 0.75;
  Coordinator coord(co);

  DistOptStats first = run_pass(d, o, &coord);
  EXPECT_EQ(first.outcome_total(), first.windows);
  double obj_after_first = first.objective;

  // Second pass on the mutated design: replicas rebind via the pass
  // digest, respawned workers keep serving, and the objective never
  // regresses (warm-started window solves are non-degrading).
  o.tx = o.bw / 2;
  o.ty = 1;
  DistOptStats second = run_pass(d, o, &coord);
  EXPECT_EQ(second.outcome_total(), second.windows);
  EXPECT_LE(second.objective, obj_after_first + 1e-9);
  EXPECT_TRUE(is_legal(d));
}

}  // namespace
}  // namespace vm1::dist
