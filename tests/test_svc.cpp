/// Placement-service suite (`ctest -L svc`): job-frame codec roundtrips,
/// deficit-round-robin fair-share scheduling, admission control, the
/// JobManager lifecycle (queued -> admitted -> running -> exactly one
/// terminal state, deadlines riding the cancellation token, graceful
/// drain), the TCP front-end protocol, and the acceptance soaks: three
/// tenants with mixed quotas and deadlines multiplexed onto one shared
/// worker fleet — per-tenant shares tracking the configured weights under
/// saturation, every completed job bit-identical to a standalone vm1opt()
/// run, clean and under the 25% seven-site transport fault storm.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/vm1opt.h"
#include "design/design.h"
#include "dist/coordinator.h"
#include "dist/tcp.h"
#include "dist/wire.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "svc/admission.h"
#include "svc/job_manager.h"
#include "svc/scheduler.h"
#include "svc/service.h"
#include "util/fault_injection.h"
#include "util/subprocess.h"

namespace vm1::svc {
namespace {

#ifdef VM1_EQUIV_LIGHT
constexpr int kSoakJobsPerTenant = 2;
constexpr double kSoakScale = 0.25;
#else
constexpr int kSoakJobsPerTenant = 4;
constexpr double kSoakScale = 0.35;
#endif

Design placed_design(std::uint64_t seed, double scale = 0.3) {
  DesignOptions dopt;
  dopt.scale = scale;
  dopt.utilization = 0.7;
  dopt.seed = seed | 1;
  Design d = make_design("tiny", CellArch::kClosedM1, dopt);
  GlobalPlaceOptions gp;
  gp.seed = seed * 131 + 3;
  global_place(d, gp);
  legalize(d);
  return d;
}

/// Bit-exact design duplicate via the wire codec (Design is move-only).
Design duplicate(const Design& d) {
  return dist::decode_design(dist::encode_design(d));
}

/// Fast deterministic optimizer knobs: the node limit binds, wall clock
/// never, so every run of the same spec is bit-identical.
JobSpec fast_spec(const std::string& tenant, Design d) {
  JobSpec s;
  s.tenant = tenant;
  s.design = std::move(d);
  s.sequence = {ParamSet{16, 2, 2, 1}};
  s.theta = 0;
  s.max_inner_iters = 1;
  s.incremental = false;
  s.params.alpha = 30;
  s.mip.max_nodes = 40;
  s.mip.time_limit_sec = 3600;
  s.mip.lp_options.time_limit_sec = 0;
  return s;
}

/// The exact standalone VM1OptOptions JobManager::run_job builds for a
/// threads-backend job — the bit-identity reference.
VM1OptOptions standalone_opts(const JobSpec& s, unsigned threads = 1) {
  VM1OptOptions o;
  o.params = s.params;
  o.sequence = s.sequence;
  o.theta = s.theta;
  o.max_inner_iters = s.max_inner_iters;
  o.flip_pass = s.flip_pass;
  o.shift_windows = s.shift_windows;
  o.incremental = s.incremental;
  o.mip = s.mip;
  o.backend = DistBackend::kThreads;
  o.threads = threads;
  return o;
}

class SvcFixture : public ::testing::Test {
 protected:
  void SetUp() override { fault::set_config(fault::Config{}); }
  void TearDown() override { fault::set_config(fault::Config{}); }
};

using SvcWire = SvcFixture;
using SvcScheduler = SvcFixture;
using SvcAdmission = SvcFixture;
using SvcJobManager = SvcFixture;
using SvcService = SvcFixture;
using SvcSoak = SvcFixture;

// ---------------------------------------------------------------------
// Job-frame codec roundtrips.

TEST_F(SvcWire, SubmitJobRoundTripsEveryField) {
  dist::WireSubmitJob in;
  in.tenant = "gold";
  in.name = "nightly-aes";
  in.deadline_sec = 12.5;
  in.theta = 0.02;
  in.max_inner_iters = 7;
  in.flip_pass = false;
  in.shift_windows = true;
  in.incremental = false;
  // bh = 0 is the "derive from bw" default and must survive the wire.
  in.sequence = {dist::WireParamStep{20, 0, 4, 1},
                 dist::WireParamStep{12, 2, 3, 0}};
  in.params.alpha = 42.5;
  in.mip.max_nodes = 99;
  in.design = {0xde, 0xad, 0xbe, 0xef, 0x01};

  dist::WireSubmitJob out = dist::decode_submit_job(dist::encode_submit_job(in));
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.deadline_sec, in.deadline_sec);
  EXPECT_EQ(out.theta, in.theta);
  EXPECT_EQ(out.max_inner_iters, in.max_inner_iters);
  EXPECT_EQ(out.flip_pass, in.flip_pass);
  EXPECT_EQ(out.shift_windows, in.shift_windows);
  EXPECT_EQ(out.incremental, in.incremental);
  ASSERT_EQ(out.sequence.size(), in.sequence.size());
  for (std::size_t i = 0; i < in.sequence.size(); ++i) {
    EXPECT_EQ(out.sequence[i].bw, in.sequence[i].bw);
    EXPECT_EQ(out.sequence[i].bh, in.sequence[i].bh);
    EXPECT_EQ(out.sequence[i].lx, in.sequence[i].lx);
    EXPECT_EQ(out.sequence[i].ly, in.sequence[i].ly);
  }
  EXPECT_EQ(out.params.alpha, in.params.alpha);
  EXPECT_EQ(out.mip.max_nodes, in.mip.max_nodes);
  EXPECT_EQ(out.design, in.design);
}

TEST_F(SvcWire, SubmitJobRejectsBadSequenceAndTruncatedDesign) {
  dist::WireSubmitJob bad;
  bad.tenant = "t";
  bad.sequence = {dist::WireParamStep{0, 2, 1, 1}};  // bw must be positive
  bad.design = {1, 2, 3};
  EXPECT_THROW(dist::decode_submit_job(dist::encode_submit_job(bad)),
               dist::WireError);

  dist::WireSubmitJob ok;
  ok.tenant = "t";
  ok.sequence = {dist::WireParamStep{8, 2, 1, 1}};
  ok.design = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::uint8_t> payload = dist::encode_submit_job(ok);
  payload.pop_back();  // embedded design length no longer matches
  EXPECT_THROW(dist::decode_submit_job(payload), dist::WireError);
}

TEST_F(SvcWire, JobQueryStatusAndResultRoundTrip) {
  dist::WireJobQuery q;
  q.job_id = 0x1122334455667788ull;
  EXPECT_EQ(dist::decode_job_query(dist::encode_job_query(q)).job_id,
            q.job_id);

  dist::WireJobStatus st;
  st.job_id = 7;
  st.state = dist::JobState::kRunning;
  st.accepted = false;
  st.reason = "tenant 'x' quota exhausted";
  st.objective = -3.25;
  st.windows_done = 19;
  dist::WireJobStatus st2 = dist::decode_job_status(dist::encode_job_status(st));
  EXPECT_EQ(st2.job_id, st.job_id);
  EXPECT_EQ(st2.state, st.state);
  EXPECT_EQ(st2.accepted, st.accepted);
  EXPECT_EQ(st2.reason, st.reason);
  EXPECT_EQ(st2.objective, st.objective);
  EXPECT_EQ(st2.windows_done, st.windows_done);

  dist::WireJobResult r;
  r.job_id = 9;
  r.state = dist::JobState::kDone;
  r.objective = 123.5;
  r.windows = 40;
  r.solved = 33;
  r.outer_iterations = 4;
  r.seconds = 1.75;
  r.placements = {Placement{3, 1, true}, Placement{0, 2, false}};
  dist::WireJobResult r2 = dist::decode_job_result(dist::encode_job_result(r));
  EXPECT_EQ(r2.job_id, r.job_id);
  EXPECT_EQ(r2.state, r.state);
  EXPECT_EQ(r2.objective, r.objective);
  EXPECT_EQ(r2.windows, r.windows);
  EXPECT_EQ(r2.solved, r.solved);
  EXPECT_EQ(r2.outer_iterations, r.outer_iterations);
  EXPECT_EQ(r2.seconds, r.seconds);
  ASSERT_EQ(r2.placements.size(), r.placements.size());
  EXPECT_EQ(r2.placements[0], r.placements[0]);
  EXPECT_EQ(r2.placements[1], r.placements[1]);
}

TEST_F(SvcWire, NonDoneResultMustNotCarryPlacements) {
  dist::WireJobResult r;
  r.job_id = 1;
  r.state = dist::JobState::kFailed;
  r.error = "solver exploded";
  r.placements = {Placement{1, 1, false}};
  EXPECT_THROW(dist::decode_job_result(dist::encode_job_result(r)),
               dist::WireError);
}

TEST_F(SvcWire, JobStateNamesAndTerminality) {
  using dist::JobState;
  EXPECT_STREQ(dist::to_string(JobState::kQueued), "queued");
  EXPECT_STREQ(dist::to_string(JobState::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_FALSE(dist::job_state_terminal(JobState::kQueued));
  EXPECT_FALSE(dist::job_state_terminal(JobState::kAdmitted));
  EXPECT_FALSE(dist::job_state_terminal(JobState::kRunning));
  EXPECT_TRUE(dist::job_state_terminal(JobState::kDone));
  EXPECT_TRUE(dist::job_state_terminal(JobState::kFailed));
  EXPECT_TRUE(dist::job_state_terminal(JobState::kCancelled));
  EXPECT_TRUE(dist::job_state_terminal(JobState::kDeadlineExceeded));
}

// ---------------------------------------------------------------------
// Deficit round-robin fair share.

TEST_F(SvcScheduler, RejectsBadConfigAndUnknownTenants) {
  EXPECT_THROW(FairScheduler({TenantConfig{"a", 0.0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(
      FairScheduler({TenantConfig{"a", 1, 1}, TenantConfig{"a", 2, 1}}),
      std::invalid_argument);
  FairScheduler s({TenantConfig{"a", 1, 1}});
  EXPECT_THROW(s.acquire("nope", 1), std::invalid_argument);
  EXPECT_THROW(s.credit("nope", 1), std::invalid_argument);
}

TEST_F(SvcScheduler, GrantsImmediatelyWhenIdleAndCreditsAccumulate) {
  FairScheduler s({TenantConfig{"a", 1, 1}});
  s.acquire("a", 5);  // idle fleet: must not block
  s.release();
  s.credit("a", 7);
  EXPECT_EQ(s.served_windows("a"), 12);
  EXPECT_EQ(s.served_windows("ghost"), 0);
}

TEST_F(SvcScheduler, DeficitRoundRobinTracksWeightsExactly) {
  // Weights 1:3, eight equal-cost batches queued while the fleet is held.
  // With a full backlog DRR is fully deterministic: the grant sequence by
  // tenant must be b,b,a,b,b,a,a,a — i.e. exactly 3:1 in every prefix
  // window of the saturated phase.
  FairScheduler s({TenantConfig{"a", 1.0, 1}, TenantConfig{"b", 3.0, 1}});
  s.acquire("a", 1);  // hold the fleet so the full backlog forms

  std::mutex order_mu;
  std::vector<std::string> order;
  std::atomic<int> started{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    for (const char* t : {"a", "b"}) {
      waiters.emplace_back([&, t] {
        started.fetch_add(1);
        s.acquire(t, 10);
        {
          std::lock_guard<std::mutex> lock(order_mu);
          order.emplace_back(t);
        }
        s.release();
      });
    }
  }
  while (started.load() < 8) usleep(1000);
  usleep(50'000);  // let the last acquire actually enqueue
  s.release();     // open the floodgate
  for (std::thread& t : waiters) t.join();

  ASSERT_EQ(order.size(), 8u);
  const std::vector<std::string> expected = {"b", "b", "a", "b",
                                             "b", "a", "a", "a"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(s.served_windows("a"), 41);  // 4 x 10 + the cost-1 holder
  EXPECT_EQ(s.served_windows("b"), 40);

  std::vector<std::pair<std::string, long>> snap = s.served_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");  // registration order
  EXPECT_EQ(snap[1].first, "b");
}

// ---------------------------------------------------------------------
// Admission control.

TEST_F(SvcAdmission, QuotaAndQueueBoundsRejectWithTypedReasons) {
  AdmissionController adm(3, {TenantConfig{"a", 1, 2}, TenantConfig{"b", 1, 9}});

  std::optional<std::string> r = adm.try_admit("ghost");
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->find("unknown tenant"), std::string::npos);

  EXPECT_FALSE(adm.try_admit("a").has_value());
  EXPECT_FALSE(adm.try_admit("a").has_value());
  r = adm.try_admit("a");  // quota 2 exhausted
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->find("quota"), std::string::npos);
  EXPECT_EQ(adm.queue_depth(), 2);

  EXPECT_FALSE(adm.try_admit("b").has_value());  // queue now full (3)
  r = adm.try_admit("b");
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->find("queue full"), std::string::npos);

  // A started job frees its queue slot but still holds its quota slot.
  adm.on_started("a");
  EXPECT_EQ(adm.queue_depth(), 2);
  EXPECT_TRUE(adm.try_admit("a").has_value()) << "quota must still bind";
  // Terminal releases the quota slot; a queued-terminal also frees the
  // queue slot.
  adm.on_terminal("a", /*was_queued=*/false);
  EXPECT_FALSE(adm.try_admit("a").has_value());
  adm.on_terminal("a", /*was_queued=*/true);
  adm.on_terminal("a", /*was_queued=*/true);
  EXPECT_EQ(adm.queue_depth(), 1);
}

TEST_F(SvcAdmission, InvalidConfigThrows) {
  EXPECT_THROW(AdmissionController(0, {TenantConfig{"a", 1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(AdmissionController(4, {TenantConfig{"a", 1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(
      AdmissionController(4, {TenantConfig{"a", 1, 1}, TenantConfig{"a", 1, 1}}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------
// JobManager lifecycle (threads backend: no fleet needed).

JobManagerOptions threads_manager(std::vector<TenantConfig> tenants,
                                  int max_running = 1) {
  JobManagerOptions o;
  o.tenants = std::move(tenants);
  o.max_running = max_running;
  o.max_queue_depth = 16;
  o.deadline_poll_sec = 0.005;
  return o;
}

TEST_F(SvcJobManager, RunsToDoneBitIdenticalToStandalone) {
  JobManager mgr(threads_manager({TenantConfig{"t", 1, 4}}));
  Design reference = placed_design(5);
  JobSpec spec = fast_spec("t", duplicate(reference));
  VM1OptOptions ref_opts = standalone_opts(spec);

  JobManager::Submission sub = mgr.submit(std::move(spec));
  ASSERT_TRUE(sub.accepted) << sub.reason;
  ASSERT_TRUE(mgr.wait_all_terminal(120.0));

  std::optional<JobOutcome> out = mgr.result(sub.id);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->state, dist::JobState::kDone);
  EXPECT_GT(out->windows, 0);

  VM1OptStats ref = vm1opt(reference, ref_opts);
  EXPECT_EQ(out->objective, ref.final.value);
  ASSERT_EQ(out->placements.size(), reference.placements().size());
  for (std::size_t i = 0; i < out->placements.size(); ++i) {
    EXPECT_EQ(out->placements[i], reference.placements()[i]) << "cell " << i;
  }
  // Accounting: the job's windows are the tenant's served windows.
  EXPECT_EQ(mgr.served_windows("t"), out->windows);
}

TEST_F(SvcJobManager, RejectsBadSubmissions) {
  JobManager mgr(threads_manager({TenantConfig{"t", 1, 1}}));

  JobSpec no_design;
  no_design.tenant = "t";
  JobManager::Submission sub = mgr.submit(std::move(no_design));
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.reason, "missing design");

  JobSpec unknown = fast_spec("ghost", placed_design(6));
  sub = mgr.submit(std::move(unknown));
  EXPECT_FALSE(sub.accepted);
  EXPECT_NE(sub.reason.find("unknown tenant"), std::string::npos);

  JobSpec bad_seq = fast_spec("t", placed_design(6));
  bad_seq.sequence.clear();
  sub = mgr.submit(std::move(bad_seq));
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.reason, "empty parameter sequence");

  JobSpec bad_deadline = fast_spec("t", placed_design(6));
  bad_deadline.deadline_sec = -1;
  sub = mgr.submit(std::move(bad_deadline));
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.reason, "negative deadline");

  EXPECT_FALSE(mgr.status(42).has_value());
  EXPECT_FALSE(mgr.result(42).has_value());
  EXPECT_FALSE(mgr.cancel(42));
}

TEST_F(SvcJobManager, CancelQueuedIsImmediateCancelRunningStopsAtBoundary) {
  // max_running = 1: the first job occupies the executor, the second waits
  // in kQueued where cancel must take effect without ever running it.
  JobManager mgr(threads_manager({TenantConfig{"t", 1, 8}}));
  JobSpec big = fast_spec("t", placed_design(7, /*scale=*/0.6));
  big.max_inner_iters = 4;
  big.sequence = {ParamSet{16, 2, 2, 1}, ParamSet{12, 2, 2, 1},
                  ParamSet{20, 2, 3, 1}};
  JobManager::Submission running = mgr.submit(std::move(big));
  ASSERT_TRUE(running.accepted);
  JobManager::Submission queued =
      mgr.submit(fast_spec("t", placed_design(8)));
  ASSERT_TRUE(queued.accepted);

  EXPECT_TRUE(mgr.cancel(queued.id));
  std::optional<JobInfo> qi = mgr.status(queued.id);
  ASSERT_TRUE(qi.has_value());
  EXPECT_EQ(qi->state, dist::JobState::kCancelled);
  EXPECT_EQ(qi->reason, "cancelled by client");

  EXPECT_TRUE(mgr.cancel(running.id));
  ASSERT_TRUE(mgr.wait_all_terminal(120.0));
  std::optional<JobInfo> ri = mgr.status(running.id);
  ASSERT_TRUE(ri.has_value());
  // The running job either saw the token mid-run (kCancelled) or was
  // already past its last window — but it must be terminal exactly once.
  EXPECT_TRUE(dist::job_state_terminal(ri->state));
  EXPECT_TRUE(mgr.cancel(running.id)) << "cancelling a terminal job is a no-op";
}

TEST_F(SvcJobManager, DeadlinesFireQueuedAndMidRun) {
  JobManager mgr(threads_manager({TenantConfig{"t", 1, 8}}));

  // Occupy the single executor with a long job carrying a short deadline:
  // the watcher must trip its cancel token mid-run.
  JobSpec long_job = fast_spec("t", placed_design(9, /*scale=*/0.6));
  long_job.max_inner_iters = 6;
  long_job.sequence = {ParamSet{16, 2, 2, 1}, ParamSet{12, 2, 2, 1},
                       ParamSet{20, 2, 3, 1}, ParamSet{14, 2, 2, 0}};
  long_job.deadline_sec = 0.05;
  JobManager::Submission running = mgr.submit(std::move(long_job));
  ASSERT_TRUE(running.accepted);

  // A queued job whose deadline expires before it ever starts.
  JobSpec queued_job = fast_spec("t", placed_design(10));
  queued_job.deadline_sec = 0.01;
  JobManager::Submission queued = mgr.submit(std::move(queued_job));
  ASSERT_TRUE(queued.accepted);

  ASSERT_TRUE(mgr.wait_all_terminal(120.0));
  std::optional<JobInfo> ri = mgr.status(running.id);
  std::optional<JobInfo> qi = mgr.status(queued.id);
  ASSERT_TRUE(ri.has_value());
  ASSERT_TRUE(qi.has_value());
  EXPECT_EQ(ri->state, dist::JobState::kDeadlineExceeded);
  EXPECT_EQ(ri->reason, "deadline exceeded mid-run");
  EXPECT_EQ(qi->state, dist::JobState::kDeadlineExceeded);
  EXPECT_EQ(qi->reason, "deadline expired while queued");
}

TEST_F(SvcJobManager, DrainCancelsQueuedFinishesRunningThenRejects) {
  JobManager mgr(threads_manager({TenantConfig{"t", 1, 8}}));
  JobManager::Submission running =
      mgr.submit(fast_spec("t", placed_design(11)));
  JobManager::Submission queued =
      mgr.submit(fast_spec("t", placed_design(12)));
  ASSERT_TRUE(running.accepted);
  ASSERT_TRUE(queued.accepted);

  mgr.drain(/*cancel_queued=*/true);

  std::optional<JobInfo> ri = mgr.status(running.id);
  std::optional<JobInfo> qi = mgr.status(queued.id);
  ASSERT_TRUE(ri.has_value());
  ASSERT_TRUE(qi.has_value());
  EXPECT_TRUE(dist::job_state_terminal(ri->state));
  // The queued job must not have run; either the drain or (rarely) the
  // executor-claim race decided it, but "cancelled by drain" is the
  // expected path when it never started.
  EXPECT_TRUE(dist::job_state_terminal(qi->state));

  JobManager::Submission late = mgr.submit(fast_spec("t", placed_design(13)));
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.reason, "service draining");
}

// ---------------------------------------------------------------------
// TCP front-end: the full client protocol against a live Service.

struct TestClient {
  int fd = -1;
  std::vector<std::uint8_t> rbuf;

  ~TestClient() {
    if (fd >= 0) close(fd);
  }
  bool connect(int port, const std::string& secret) {
    dist::TcpConnectOptions copts;
    copts.secret = secret;
    fd = dist::tcp_attach("127.0.0.1", port, copts);
    return fd >= 0;
  }
  std::optional<dist::Frame> call(dist::MsgType type,
                                  std::vector<std::uint8_t> payload) {
    std::vector<std::uint8_t> frame =
        dist::encode_frame(type, std::move(payload));
    if (!subprocess::write_all(fd, frame.data(), frame.size())) {
      return std::nullopt;
    }
    std::uint8_t chunk[64 * 1024];
    std::optional<dist::Frame> reply;
    while (!(reply = dist::extract_frame(rbuf))) {
      long n = subprocess::read_some(fd, chunk, sizeof chunk);
      if (n <= 0) return std::nullopt;
      rbuf.insert(rbuf.end(), chunk, chunk + n);
    }
    return reply;
  }
};

struct ServiceHarness {
  JobManager manager;
  Service service;
  std::thread thread;

  explicit ServiceHarness(JobManagerOptions mo, const std::string& secret)
      : manager(std::move(mo)), service(make_opts(secret), &manager) {
    thread = std::thread([this] { service.serve(); });
  }
  ~ServiceHarness() {
    service.stop();
    thread.join();
  }
  static ServiceOptions make_opts(const std::string& secret) {
    ServiceOptions so;
    so.secret = secret;
    return so;
  }
};

TEST_F(SvcService, SubmitPollFetchCancelOverTcp) {
  const std::string secret = "svc-secret";
  ServiceHarness h(threads_manager({TenantConfig{"acme", 1, 4}}), secret);

  TestClient c;
  ASSERT_TRUE(c.connect(h.service.port(), secret));

  Design reference = placed_design(20);
  JobSpec ref_spec = fast_spec("acme", duplicate(reference));
  dist::WireSubmitJob sj;
  sj.tenant = "acme";
  sj.name = "e2e";
  sj.theta = ref_spec.theta;
  sj.max_inner_iters = ref_spec.max_inner_iters;
  sj.incremental = ref_spec.incremental;
  sj.sequence = {dist::WireParamStep{16, 2, 2, 1}};
  sj.params = ref_spec.params;
  sj.mip = ref_spec.mip;
  sj.design = dist::encode_design(reference);

  std::optional<dist::Frame> reply =
      c.call(dist::MsgType::kSubmitJob, dist::encode_submit_job(sj));
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, dist::MsgType::kJobStatus);
  dist::WireJobStatus ack = dist::decode_job_status(reply->payload);
  ASSERT_TRUE(ack.accepted) << ack.reason;
  ASSERT_GT(ack.job_id, 0u);

  // Poll status until terminal.
  dist::WireJobQuery q;
  q.job_id = ack.job_id;
  for (;;) {
    reply = c.call(dist::MsgType::kJobStatus, dist::encode_job_query(q));
    ASSERT_TRUE(reply.has_value());
    dist::WireJobStatus st = dist::decode_job_status(reply->payload);
    ASSERT_TRUE(st.accepted);
    if (dist::job_state_terminal(st.state)) {
      EXPECT_EQ(st.state, dist::JobState::kDone) << st.reason;
      break;
    }
    usleep(20'000);
  }

  // Fetch the result and check it against the standalone run.
  reply = c.call(dist::MsgType::kJobResult, dist::encode_job_query(q));
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, dist::MsgType::kJobResult);
  dist::WireJobResult res = dist::decode_job_result(reply->payload);
  EXPECT_EQ(res.state, dist::JobState::kDone);
  VM1OptStats ref = vm1opt(reference, standalone_opts(ref_spec));
  EXPECT_EQ(res.objective, ref.final.value);
  ASSERT_EQ(res.placements.size(), reference.placements().size());
  for (std::size_t i = 0; i < res.placements.size(); ++i) {
    EXPECT_EQ(res.placements[i], reference.placements()[i]) << "cell " << i;
  }

  // Unknown ids answer accepted=false — on status, result, and cancel.
  q.job_id = 4242;
  for (dist::MsgType t : {dist::MsgType::kJobStatus, dist::MsgType::kJobResult,
                          dist::MsgType::kCancelJob}) {
    reply = c.call(t, dist::encode_job_query(q));
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, dist::MsgType::kJobStatus);
    dist::WireJobStatus st = dist::decode_job_status(reply->payload);
    EXPECT_FALSE(st.accepted);
    EXPECT_NE(st.reason.find("unknown job"), std::string::npos);
  }

  // Rejections are per-job, not connection errors.
  sj.tenant = "ghost";
  reply = c.call(dist::MsgType::kSubmitJob, dist::encode_submit_job(sj));
  ASSERT_TRUE(reply.has_value());
  dist::WireJobStatus rej = dist::decode_job_status(reply->payload);
  EXPECT_FALSE(rej.accepted);
  EXPECT_NE(rej.reason.find("unknown tenant"), std::string::npos);
}

TEST_F(SvcService, ProtocolErrorDropsTheClientNotTheService) {
  const std::string secret = "svc-secret-2";
  ServiceHarness h(threads_manager({TenantConfig{"acme", 1, 4}}), secret);

  // A worker-protocol frame is a protocol error on the service listener:
  // the connection must be closed...
  TestClient bad;
  ASSERT_TRUE(bad.connect(h.service.port(), secret));
  dist::WirePing ping;
  ping.seq = 1;
  std::optional<dist::Frame> reply =
      bad.call(dist::MsgType::kPing, dist::encode_ping(ping));
  EXPECT_FALSE(reply.has_value()) << "service must hang up on bad frames";

  // ...while a fresh client is still served.
  TestClient good;
  ASSERT_TRUE(good.connect(h.service.port(), secret));
  dist::WireJobQuery q;
  q.job_id = 1;
  reply = good.call(dist::MsgType::kJobStatus, dist::encode_job_query(q));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, dist::MsgType::kJobStatus);
}

TEST_F(SvcService, WrongSecretNeverGetsAnAnswer) {
  // tcp_attach fires its HMAC hello and returns without waiting for a
  // verdict, so the rejection surfaces as a hang-up on the first call.
  ServiceHarness h(threads_manager({TenantConfig{"acme", 1, 4}}), "right");
  TestClient bad;
  ASSERT_TRUE(bad.connect(h.service.port(), "wrong"));
  dist::WireJobQuery q;
  q.job_id = 1;
  EXPECT_FALSE(bad.call(dist::MsgType::kJobStatus, dist::encode_job_query(q)))
      << "a client with the wrong secret must never reach the job API";

  TestClient good;
  ASSERT_TRUE(good.connect(h.service.port(), "right"));
  EXPECT_TRUE(good.call(dist::MsgType::kJobStatus, dist::encode_job_query(q)));
}

// ---------------------------------------------------------------------
// Acceptance soaks: three tenants sharing one worker fleet.

struct SoakJob {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint64_t seed = 0;
  JobSpec reference;  ///< same spec, duplicate design, for bit-identity
};

JobSpec soak_spec(const std::string& tenant, std::uint64_t seed) {
  JobSpec s = fast_spec(tenant, placed_design(seed, kSoakScale));
  s.sequence = {ParamSet{16, 2, 2, 1}, ParamSet{12, 2, 2, 1}};
  s.max_inner_iters = 2;
  return s;
}

/// Clones a spec (specs are move-only because of the Design).
JobSpec clone_spec(const JobSpec& s) {
  JobSpec c;
  c.tenant = s.tenant;
  c.name = s.name;
  c.deadline_sec = s.deadline_sec;
  c.design = duplicate(*s.design);
  c.sequence = s.sequence;
  c.theta = s.theta;
  c.max_inner_iters = s.max_inner_iters;
  c.flip_pass = s.flip_pass;
  c.shift_windows = s.shift_windows;
  c.incremental = s.incremental;
  c.params = s.params;
  c.mip = s.mip;
  return c;
}

TEST_F(SvcSoak, ThreeTenantsFairSharesAllTerminalBitIdentical) {
  const std::vector<TenantConfig> tenants = {TenantConfig{"bronze", 1.0, 8},
                                             TenantConfig{"silver", 2.0, 8},
                                             TenantConfig{"gold", 3.0, 8}};
  // Worker-memo probing off for the same reason the comment below gives:
  // the fairness census needs the fleet to be the bottleneck, and the
  // cache tier exists precisely to stop repeat windows from loading the
  // fleet — memo-served batches drain demand below each tenant's
  // entitlement and DRR correctly lets the shares flatten. (Cache-tier
  // correctness under a shared fleet is test_cache's job.)
  dist::CoordinatorOptions co;
  co.remote_cache = false;
  dist::Coordinator coord(co);
  JobManagerOptions mo;
  mo.tenants = tenants;
  // Two runners per tenant: a tenant with only ONE job in flight has no
  // scheduler waiter during its apply/build gap between batches, so its
  // feasible share is pipeline-capped regardless of weight. True
  // saturation — the thing the fair-share guarantee is about — needs the
  // backlog to live in the scheduler, not in the job queue.
  mo.max_running = 6;
  mo.max_queue_depth = 64;
  mo.coordinator = &coord;
  mo.deadline_poll_sec = 0.005;
  JobManager mgr(mo);

  // The fairness core: identical workloads per tenant, saturating the
  // fleet (one runner per tenant at all times, plus a queued backlog).
  std::vector<SoakJob> jobs;
  for (int j = 0; j < kSoakJobsPerTenant; ++j) {
    for (const TenantConfig& t : tenants) {
      SoakJob sj;
      sj.tenant = t.name;
      sj.seed = 100 + static_cast<std::uint64_t>(j);
      sj.reference = soak_spec(t.name, sj.seed);
      JobManager::Submission sub =
          mgr.submit(clone_spec(sj.reference));
      ASSERT_TRUE(sub.accepted) << sub.reason;
      sj.id = sub.id;
      jobs.push_back(std::move(sj));
    }
  }

  // Mixed-lifecycle extras: a queued job cancelled by the client, a queued
  // job whose deadline expires, and a quota rejection.
  JobSpec cancel_me = soak_spec("silver", 300);
  JobManager::Submission cancel_sub = mgr.submit(std::move(cancel_me));
  ASSERT_TRUE(cancel_sub.accepted);
  JobSpec expire_me = soak_spec("bronze", 301);
  expire_me.deadline_sec = 0.01;
  JobManager::Submission expire_sub = mgr.submit(std::move(expire_me));
  ASSERT_TRUE(expire_sub.accepted);
  for (int i = 0; i < 8; ++i) {
    JobManager::Submission s = mgr.submit(soak_spec("gold", 310 + i));
    if (!s.accepted) {
      EXPECT_NE(s.reason.find("quota"), std::string::npos);
      break;
    }
    ASSERT_LT(i, 7) << "gold quota (8) never bound";
  }
  EXPECT_TRUE(mgr.cancel(cancel_sub.id));

  // Fairness sampling: between the first instant every tenant is warmed
  // up (t0) and the last instant every tenant still has backlog (t1), the
  // served-window deltas must split by weight (DRR guarantee).
  std::map<std::string, long> t0, t1;
  bool have_t0 = false, have_t1 = false;
  std::map<std::string, std::vector<std::uint64_t>> per_tenant;
  for (const SoakJob& sj : jobs) per_tenant[sj.tenant].push_back(sj.id);
  while (!mgr.wait_all_terminal(0.004)) {
    std::map<std::string, long> now;
    bool warmed = true, backlogged = true;
    for (const TenantConfig& t : tenants) {
      now[t.name] = mgr.served_windows(t.name);
      if (now[t.name] < 3) warmed = false;
      bool alive = false;
      for (std::uint64_t id : per_tenant[t.name]) {
        std::optional<JobInfo> info = mgr.status(id);
        if (info && !dist::job_state_terminal(info->state)) alive = true;
      }
      if (!alive) backlogged = false;
    }
    if (warmed && backlogged) {
      if (!have_t0) {
        t0 = now;
        have_t0 = true;
      } else {
        t1 = now;
        have_t1 = true;
      }
    }
  }

  // Every job ended in exactly one terminal state, consistently visible
  // through both the status and the result surface.
  long done_jobs = 0;
  for (const SoakJob& sj : jobs) {
    std::optional<JobInfo> info = mgr.status(sj.id);
    std::optional<JobOutcome> out = mgr.result(sj.id);
    ASSERT_TRUE(info.has_value());
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(dist::job_state_terminal(info->state)) << "job " << sj.id;
    EXPECT_EQ(info->state, out->state);
    if (out->state == dist::JobState::kDone) ++done_jobs;
  }
  EXPECT_EQ(done_jobs, static_cast<long>(jobs.size()))
      << "a clean soak must complete every fairness-core job";
  std::optional<JobInfo> ci = mgr.status(cancel_sub.id);
  ASSERT_TRUE(ci.has_value());
  EXPECT_TRUE(dist::job_state_terminal(ci->state));
  std::optional<JobInfo> ei = mgr.status(expire_sub.id);
  ASSERT_TRUE(ei.has_value());
  EXPECT_TRUE(dist::job_state_terminal(ei->state));

  // Bit-identity: every completed job equals its standalone threads run.
  for (const SoakJob& sj : jobs) {
    std::optional<JobOutcome> out = mgr.result(sj.id);
    ASSERT_TRUE(out.has_value());
    if (out->state != dist::JobState::kDone) continue;
    Design ref_design = duplicate(*sj.reference.design);
    VM1OptStats ref = vm1opt(ref_design, standalone_opts(sj.reference));
    EXPECT_EQ(out->objective, ref.final.value)
        << sj.tenant << " job " << sj.id;
    ASSERT_EQ(out->placements.size(), ref_design.placements().size());
    for (std::size_t i = 0; i < out->placements.size(); ++i) {
      ASSERT_EQ(out->placements[i], ref_design.placements()[i])
          << sj.tenant << " job " << sj.id << " cell " << i;
    }
  }

  // Fair shares: over the saturated phase the served-window deltas track
  // the 1:2:3 weights within the 10-point acceptance tolerance.
  ASSERT_TRUE(have_t0 && have_t1)
      << "the soak never reached a saturated sampling window";
  double total = 0;
  std::map<std::string, double> delta;
  for (const TenantConfig& t : tenants) {
    delta[t.name] = static_cast<double>(t1[t.name] - t0[t.name]);
    total += delta[t.name];
  }
  ASSERT_GE(total, 24.0) << "saturated phase too short to judge fairness";
  const double wsum = 6.0;
  for (const TenantConfig& t : tenants) {
    double share = delta[t.name] / total;
    double expect = t.weight / wsum;
    EXPECT_NEAR(share, expect, 0.10)
        << t.name << " served " << delta[t.name] << " of " << total
        << " windows in the saturated phase";
  }
}

TEST_F(SvcSoak, QuarterStormSoakStaysGreenAndBitIdentical) {
  // The same multi-tenant soak under the 25% seven-site transport storm:
  // supervision absorbs every drill, every job still reaches exactly one
  // terminal state, and completed jobs stay bit-identical to standalone
  // runs under the same fault config (signatures hash it; the dist sites
  // never fire on the threads reference).
  fault::Config fc = fault::parse_spec(
      "worker_kill=0.25,reply_drop=0.25,reply_corrupt=0.25,"
      "connect_timeout=0.25,connect_refused=0.25,partition=0.25,"
      "slow_loris=0.25,seed=23");
  fault::set_config(fc);

  const std::vector<TenantConfig> tenants = {TenantConfig{"bronze", 1.0, 4},
                                             TenantConfig{"silver", 2.0, 4},
                                             TenantConfig{"gold", 3.0, 4}};
  dist::CoordinatorOptions co;
  co.request_timeout_sec = 0.75;
  co.quarantine_base_sec = 0.2;
  dist::Coordinator coord(co);
  JobManagerOptions mo;
  mo.tenants = tenants;
  mo.max_running = 3;
  mo.coordinator = &coord;
  mo.deadline_poll_sec = 0.005;
  JobManager mgr(mo);

  std::vector<SoakJob> jobs;
  for (int j = 0; j < 2; ++j) {
    for (const TenantConfig& t : tenants) {
      SoakJob sj;
      sj.tenant = t.name;
      sj.seed = 200 + static_cast<std::uint64_t>(j);
      sj.reference = soak_spec(t.name, sj.seed);
      // Short solver limit: never binds on these windows, but keeps the
      // reply-drop deadline (and so the whole storm) fast.
      sj.reference.mip.time_limit_sec = 0.5;
      sj.reference.max_inner_iters = 1;
      JobManager::Submission sub = mgr.submit(clone_spec(sj.reference));
      ASSERT_TRUE(sub.accepted) << sub.reason;
      sj.id = sub.id;
      jobs.push_back(std::move(sj));
    }
  }

  ASSERT_TRUE(mgr.wait_all_terminal(240.0));

  for (const SoakJob& sj : jobs) {
    std::optional<JobOutcome> out = mgr.result(sj.id);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(dist::job_state_terminal(out->state)) << "job " << sj.id;
    ASSERT_EQ(out->state, dist::JobState::kDone)
        << "the storm must be absorbed, not surfaced: " << out->error;
    fault::set_config(fc);  // reference signatures hash the same config
    Design ref_design = duplicate(*sj.reference.design);
    VM1OptStats ref = vm1opt(ref_design, standalone_opts(sj.reference));
    EXPECT_EQ(out->objective, ref.final.value)
        << sj.tenant << " job " << sj.id;
    ASSERT_EQ(out->placements.size(), ref_design.placements().size());
    for (std::size_t i = 0; i < out->placements.size(); ++i) {
      ASSERT_EQ(out->placements[i], ref_design.placements()[i])
          << sj.tenant << " job " << sj.id << " cell " << i;
    }
  }
}

}  // namespace
}  // namespace vm1::svc
