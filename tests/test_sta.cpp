#include "timing/sta.h"

#include <gtest/gtest.h>

#include <memory>

#include "cells/library_builder.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

/// Builds an inverter chain of `n` stages: pi -> INV -> INV ... -> po.
Design make_chain(int n) {
  auto lib = std::make_unique<Library>(build_library(CellArch::kClosedM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int pi = nl->add_io("pi", true);
  int prev = nl->add_net("n_in");
  nl->connect(prev, NetPin{-1, pi});
  for (int i = 0; i < n; ++i) {
    int u = nl->add_instance("u" + std::to_string(i), inv);
    nl->connect(prev, NetPin{u, c.pin_index("A")});
    prev = nl->add_net("n" + std::to_string(i));
    nl->connect(prev, NetPin{u, c.pin_index("ZN")});
  }
  int po = nl->add_io("po", false);
  nl->connect(prev, NetPin{-1, po});
  Design d("chain", Tech::make_7nm(), std::move(lib), std::move(nl), 2, 64);
  for (int i = 0; i < n; ++i) {
    d.set_placement(i, Placement{i * 4, 0, false});
  }
  return d;
}

TEST(Sta, ChainDelayGrowsWithLength) {
  Design d3 = make_chain(3);
  Design d6 = make_chain(6);
  StaResult r3 = run_sta(d3);
  StaResult r6 = run_sta(d6);
  EXPECT_GT(r3.max_delay, 0);
  EXPECT_GT(r6.max_delay, 1.5 * r3.max_delay);
}

TEST(Sta, WnsZeroWhenPeriodAuto) {
  Design d = make_chain(4);
  StaResult r = run_sta(d);
  EXPECT_DOUBLE_EQ(r.wns, 0);
}

TEST(Sta, WnsNegativeForTightPeriod) {
  Design d = make_chain(4);
  StaResult base = run_sta(d);
  StaOptions opts;
  opts.clock_period = base.max_delay * 0.5;
  StaResult r = run_sta(d, opts);
  EXPECT_LT(r.wns, 0);
  EXPECT_NEAR(r.wns, opts.clock_period - base.max_delay, 1e-9);
}

TEST(Sta, LongerRoutedNetsIncreaseDelay) {
  Design d = make_chain(4);
  StaResult base = run_sta(d);
  StaOptions opts;
  opts.net_lengths.assign(d.netlist().num_nets(), 200);  // long routes
  StaResult slow = run_sta(d, opts);
  EXPECT_GT(slow.max_delay, base.max_delay);
}

TEST(Sta, FullDesignHasEndpoints) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  StaResult r = run_sta(d);
  EXPECT_GT(r.num_endpoints, 0);
  EXPECT_GT(r.max_delay, 0);
}

TEST(Sta, NetCapacitanceParts) {
  Design d = make_chain(2);
  // Net n0 connects u0.ZN to u1.A: cap = wire + A's input cap.
  int net = -1;
  for (int n = 0; n < d.netlist().num_nets(); ++n) {
    if (d.netlist().net(n).name == "n0") net = n;
  }
  ASSERT_GE(net, 0);
  double c0 = net_capacitance(d, net, 0);
  double c100 = net_capacitance(d, net, 100);
  EXPECT_GT(c0, 0);        // pin cap alone
  EXPECT_GT(c100, c0);     // wire adds cap
  EXPECT_NEAR(c100 - c0, 100 * 0.19, 1e-9);
}

TEST(Sta, DeterministicOnFixedDesign) {
  Design d = make_chain(5);
  EXPECT_DOUBLE_EQ(run_sta(d).max_delay, run_sta(d).max_delay);
}

}  // namespace
}  // namespace vm1
