/// Seeded fuzz harness proving the processes backend exact: for every
/// seed, a random small design is optimized twice — DistBackend::kThreads
/// vs kProcesses (worker subprocesses over the dist/wire.h protocol) — and
/// the final placements, objective, HPWL, alignment count, and legality
/// must match bit-for-bit. This is the acceptance check for the whole
/// coordinator/worker stack: full-replica binding, per-batch placement
/// sync, signature-checked requests, and the shared serial apply phase.
///
/// Options pin every solver limit that binds to a deterministic quantity
/// (node counts), never wall-clock, so both backends walk the identical
/// arithmetic path. Sanitizer builds define VM1_EQUIV_LIGHT to shrink the
/// seed ranges (the TSan `concurrency` binary runs the light variant; the
/// processes backend creates no pool threads, keeping fork TSan-clean).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/vm1opt.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/rng.h"

namespace vm1 {
namespace {

#ifdef VM1_EQUIV_LIGHT
constexpr std::uint64_t kSeeds = 4;
constexpr std::uint64_t kVariantSeeds = 2;
#else
constexpr std::uint64_t kSeeds = 20;
constexpr std::uint64_t kVariantSeeds = 4;
#endif

Design random_design(std::uint64_t seed) {
  Rng rng(seed);
  CellArch arch = rng.chance(0.5) ? CellArch::kClosedM1 : CellArch::kOpenM1;
  DesignOptions dopt;
  dopt.scale = 0.25 + 0.25 * rng.uniform_real();
  dopt.utilization = 0.55 + 0.25 * rng.uniform_real();
  dopt.seed = rng.next() | 1;
  Design d = make_design("tiny", arch, dopt);
  GlobalPlaceOptions gp;
  gp.seed = rng.next() | 1;
  global_place(d, gp);
  legalize(d);
  return d;
}

VM1OptOptions equiv_opts(std::uint64_t seed) {
  Rng rng(seed * 6271 + 5);
  VM1OptOptions o;
  int bw = 10 + static_cast<int>(rng.uniform(10));
  int lx = 2 + static_cast<int>(rng.uniform(3));
  int ly = static_cast<int>(rng.uniform(2));
  o.sequence = {ParamSet{bw, 2, lx, ly}};
  o.theta = 0;  // run until the zero-change exit (or max_inner_iters)
  o.max_inner_iters = 3;
  o.threads = 1;
  o.params.alpha = 20 + 40 * rng.uniform_real();
  // Deterministic truncation only: the node limit binds, wall-clock never.
  o.mip.max_nodes = 40;
  o.mip.time_limit_sec = 3600;
  o.mip.lp_options.time_limit_sec = 0;  // unlimited
  return o;
}

struct RunResult {
  std::vector<Placement> placements;
  double objective = 0;
  double hpwl = 0;
  long alignments = 0;
  bool legal = false;
  long remote_replies = 0;
  long remote_local_fallbacks = 0;
  long windows = 0;
};

RunResult run(std::uint64_t seed, DistBackend backend, int workers) {
  Design d = random_design(seed);
  VM1OptOptions o = equiv_opts(seed);
  o.backend = backend;
  o.dist_workers = workers;
  VM1OptStats s = vm1opt(d, o);
  EXPECT_EQ(s.solved + s.fallback_rounding + s.fallback_greedy +
                s.rejected_audit + s.kept + s.faulted + s.skipped,
            s.windows)
      << "outcome buckets must sum to windows (seed " << seed << ")";
  RunResult r;
  r.placements = d.placements();
  r.objective = s.final.value;
  r.hpwl = s.final.hpwl;
  r.alignments = s.final.alignments;
  r.legal = is_legal(d);
  r.remote_replies = s.remote_replies;
  r.remote_local_fallbacks = s.remote_local_fallbacks;
  r.windows = s.windows;
  return r;
}

void expect_identical(const RunResult& proc, const RunResult& thr,
                      std::uint64_t seed) {
  ASSERT_EQ(proc.placements.size(), thr.placements.size());
  for (std::size_t i = 0; i < proc.placements.size(); ++i) {
    ASSERT_EQ(proc.placements[i], thr.placements[i])
        << "seed " << seed << " instance " << i;
  }
  // Bitwise comparisons on purpose: the processes backend must walk the
  // identical arithmetic path, not merely land within a tolerance.
  EXPECT_EQ(proc.objective, thr.objective) << "seed " << seed;
  EXPECT_EQ(proc.hpwl, thr.hpwl) << "seed " << seed;
  EXPECT_EQ(proc.alignments, thr.alignments) << "seed " << seed;
  EXPECT_EQ(proc.legal, thr.legal) << "seed " << seed;
  EXPECT_TRUE(proc.legal) << "seed " << seed;
}

TEST(DistBackendEquiv, ProcessesMatchThreadsAcrossSeeds) {
  long total_remote = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    RunResult proc = run(seed, DistBackend::kProcesses, /*workers=*/2);
    RunResult thr = run(seed, DistBackend::kThreads, /*workers=*/0);
    expect_identical(proc, thr, seed);
    total_remote += proc.remote_replies;
    // Without injected faults every window must solve remotely; a silent
    // local fallback would make this suite vacuous.
    EXPECT_EQ(proc.remote_local_fallbacks, 0) << "seed " << seed;
  }
  EXPECT_GT(total_remote, 0) << "no window was ever solved by a worker";
}

TEST(DistBackendEquiv, WorkerCountDoesNotChangeResults) {
  for (std::uint64_t seed = 201; seed <= 200 + kVariantSeeds; ++seed) {
    RunResult one = run(seed, DistBackend::kProcesses, /*workers=*/1);
    RunResult four = run(seed, DistBackend::kProcesses, /*workers=*/4);
    expect_identical(one, four, seed);
  }
}

}  // namespace
}  // namespace vm1
