#include <gtest/gtest.h>

#include <numeric>

#include "design/legality.h"
#include "util/rng.h"
#include "place/detailed_placer.h"
#include "place/global_placer.h"
#include "place/hpwl.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

class PlaceFlow : public ::testing::TestWithParam<CellArch> {};

TEST_P(PlaceFlow, GlobalPlaceKeepsCellsInCore) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  const Netlist& nl = d.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    EXPECT_GE(p.row, 0);
    EXPECT_LT(p.row, d.num_rows());
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x + nl.cell_of(i).width_sites, d.sites_per_row());
  }
}

TEST_P(PlaceFlow, LegalizeProducesLegalPlacement) {
  Design d = make_design("tiny", GetParam());
  global_place(d);
  legalize(d);
  EXPECT_TRUE(is_legal(d));
}

INSTANTIATE_TEST_SUITE_P(Archs, PlaceFlow,
                         ::testing::Values(CellArch::kClosedM1,
                                           CellArch::kOpenM1,
                                           CellArch::kConventional12T));

TEST(Place, GlobalPlaceBeatsRandomPlacement) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  // Random-but-legal baseline: row-major packing in *shuffled* order (the
  // generator's id order carries cluster locality, which would not be a
  // random placement).
  {
    const Netlist& nl = d.netlist();
    std::vector<int> order(nl.num_instances());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(123);
    rng.shuffle(order);
    int x = 0, row = 0;
    for (int i : order) {
      int w = nl.cell_of(i).width_sites;
      if (x + w > d.sites_per_row()) {
        x = 0;
        ++row;
      }
      d.set_placement(i, Placement{x, row, false});
      x += w;
    }
  }
  Coord packed = total_hpwl(d);
  global_place(d);
  legalize(d);
  Coord placed = total_hpwl(d);
  EXPECT_LT(placed, packed);
}

TEST(Place, LegalizeAtHighUtilization) {
  DesignOptions opts;
  opts.utilization = 0.92;
  Design d = make_design("tiny", CellArch::kClosedM1, opts);
  global_place(d);
  legalize(d);
  EXPECT_TRUE(is_legal(d));
}

TEST(Place, DetailedPlaceImprovesHpwlAndStaysLegal) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  Coord before = total_hpwl(d);
  Coord after = detailed_place(d);
  EXPECT_LE(after, before);
  EXPECT_EQ(after, total_hpwl(d));  // returned value is accurate
  EXPECT_TRUE(is_legal(d));
}

TEST(Place, DetailedPlaceIdempotentWhenConverged) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  DetailedPlaceOptions opts;
  opts.max_passes = 8;
  Coord first = detailed_place(d, opts);
  Coord second = detailed_place(d, opts);
  // A converged placement can improve only marginally on a second run.
  EXPECT_LE(second, first);
  EXPECT_GT(static_cast<double>(second),
            0.98 * static_cast<double>(first));
}

TEST(Place, DeterministicAcrossRuns) {
  auto run = [] {
    Design d = make_design("tiny", CellArch::kClosedM1);
    global_place(d);
    legalize(d);
    detailed_place(d);
    return total_hpwl(d);
  };
  EXPECT_EQ(run(), run());
}

TEST(Place, FlipEnabledHelpsOrEqual) {
  Design base = make_design("tiny", CellArch::kClosedM1);
  global_place(base);
  legalize(base);

  Design with_flip = make_design("tiny", CellArch::kClosedM1);
  global_place(with_flip);
  legalize(with_flip);

  DetailedPlaceOptions no_flip;
  no_flip.allow_flip = false;
  DetailedPlaceOptions flip;
  flip.allow_flip = true;
  Coord a = detailed_place(base, no_flip);
  Coord b = detailed_place(with_flip, flip);
  EXPECT_LE(b, a);
}

}  // namespace
}  // namespace vm1
