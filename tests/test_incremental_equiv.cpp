/// Seeded fuzz harness proving the dirty-window incremental engine exact:
/// for every seed, a random small design is optimized twice — incremental
/// on vs off — and the final placements, objective, HPWL, alignment count,
/// and legality must match bit-for-bit. Variants cover serial and parallel
/// pools, and fault-injection drills (VM1_FAULTS schedules are part of the
/// window signature, so they replay identically in both modes).
///
/// Options are chosen so every solver limit that binds is deterministic
/// (node counts), never wall-clock: theta = 0 plus several inner
/// iterations drives the run into the regime where memo hits actually
/// occur, relying on the zero-change early exit for termination.
///
/// Sanitizer builds define VM1_EQUIV_LIGHT to shrink the seed ranges.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/vm1opt.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace vm1 {
namespace {

#ifdef VM1_EQUIV_LIGHT
constexpr std::uint64_t kSerialSeeds = 6;
constexpr std::uint64_t kVariantSeeds = 3;
#else
constexpr std::uint64_t kSerialSeeds = 50;
constexpr std::uint64_t kVariantSeeds = 6;
#endif

Design random_design(std::uint64_t seed) {
  Rng rng(seed);
  CellArch arch = rng.chance(0.5) ? CellArch::kClosedM1 : CellArch::kOpenM1;
  DesignOptions dopt;
  dopt.scale = 0.25 + 0.25 * rng.uniform_real();
  dopt.utilization = 0.55 + 0.25 * rng.uniform_real();
  dopt.seed = rng.next() | 1;
  Design d = make_design("tiny", arch, dopt);
  GlobalPlaceOptions gp;
  gp.seed = rng.next() | 1;
  global_place(d, gp);
  legalize(d);
  return d;
}

VM1OptOptions equiv_opts(std::uint64_t seed, unsigned threads) {
  Rng rng(seed * 7919 + 13);
  VM1OptOptions o;
  int bw = 10 + static_cast<int>(rng.uniform(10));
  int lx = 2 + static_cast<int>(rng.uniform(3));
  int ly = static_cast<int>(rng.uniform(2));
  o.sequence = {ParamSet{bw, 2, lx, ly}};
  o.theta = 0;  // run until the zero-change exit (or max_inner_iters)
  o.max_inner_iters = 5;
  o.threads = threads;
  o.params.alpha = 20 + 40 * rng.uniform_real();
  // Deterministic truncation only: the node limit binds, wall-clock never.
  o.mip.max_nodes = 40;
  o.mip.time_limit_sec = 3600;
  o.mip.lp_options.time_limit_sec = 0;  // unlimited
  return o;
}

struct RunResult {
  std::vector<Placement> placements;
  double objective = 0;
  double hpwl = 0;
  long alignments = 0;
  bool legal = false;
  long skipped = 0;
  long signature_hits = 0;
};

RunResult run(std::uint64_t seed, bool incremental, unsigned threads) {
  Design d = random_design(seed);
  VM1OptOptions o = equiv_opts(seed, threads);
  o.incremental = incremental;
  VM1OptStats s = vm1opt(d, o);
  EXPECT_EQ(s.solved + s.fallback_rounding + s.fallback_greedy +
                s.rejected_audit + s.kept + s.faulted + s.skipped,
            s.windows)
      << "outcome buckets must sum to windows (seed " << seed << ")";
  RunResult r;
  r.placements = d.placements();
  r.objective = s.final.value;
  r.hpwl = s.final.hpwl;
  r.alignments = s.final.alignments;
  r.legal = is_legal(d);
  r.skipped = s.skipped;
  r.signature_hits = s.signature_hits;
  return r;
}

void expect_identical(const RunResult& inc, const RunResult& full,
                      std::uint64_t seed) {
  ASSERT_EQ(inc.placements.size(), full.placements.size());
  for (std::size_t i = 0; i < inc.placements.size(); ++i) {
    ASSERT_EQ(inc.placements[i], full.placements[i])
        << "seed " << seed << " instance " << i;
  }
  // Bitwise comparisons on purpose: both modes must walk the identical
  // arithmetic path, not merely land within a tolerance.
  EXPECT_EQ(inc.objective, full.objective) << "seed " << seed;
  EXPECT_EQ(inc.hpwl, full.hpwl) << "seed " << seed;
  EXPECT_EQ(inc.alignments, full.alignments) << "seed " << seed;
  EXPECT_EQ(inc.legal, full.legal) << "seed " << seed;
  EXPECT_TRUE(inc.legal) << "seed " << seed;
}

void expect_identical_vs_full(const RunResult& inc, const RunResult& full,
                              std::uint64_t seed) {
  expect_identical(inc, full, seed);
  EXPECT_EQ(full.skipped, 0) << "full mode must not skip (seed " << seed
                             << ")";
}

TEST(IncrementalEquiv, SerialSeeds) {
  long total_skipped = 0;
  for (std::uint64_t seed = 1; seed <= kSerialSeeds; ++seed) {
    RunResult inc = run(seed, /*incremental=*/true, /*threads=*/1);
    RunResult full = run(seed, /*incremental=*/false, /*threads=*/1);
    expect_identical_vs_full(inc, full, seed);
    total_skipped += inc.skipped;
  }
  // The harness must actually exercise the skip path, not vacuously pass.
  EXPECT_GT(total_skipped, 0) << "no seed ever produced a signature hit";
}

TEST(IncrementalEquiv, ParallelSeeds) {
  for (std::uint64_t seed = 101; seed <= 100 + kVariantSeeds; ++seed) {
    RunResult inc = run(seed, /*incremental=*/true, /*threads=*/3);
    RunResult full = run(seed, /*incremental=*/false, /*threads=*/3);
    expect_identical_vs_full(inc, full, seed);
  }
}

TEST(IncrementalEquiv, ParallelMatchesSerialIncremental) {
  for (std::uint64_t seed = 201; seed <= 200 + kVariantSeeds; ++seed) {
    RunResult serial = run(seed, /*incremental=*/true, /*threads=*/1);
    RunResult parallel = run(seed, /*incremental=*/true, /*threads=*/3);
    expect_identical(parallel, serial, seed);
    EXPECT_EQ(parallel.skipped, serial.skipped) << "seed " << seed;
  }
}

class IncrementalEquivFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::set_config(fault::parse_spec("rate=0.25,seed=11"));
  }
  void TearDown() override { fault::set_config(fault::Config{}); }
};

TEST_F(IncrementalEquivFaults, SerialSeedsUnderFaults) {
  for (std::uint64_t seed = 301; seed <= 300 + kVariantSeeds; ++seed) {
    RunResult inc = run(seed, /*incremental=*/true, /*threads=*/1);
    RunResult full = run(seed, /*incremental=*/false, /*threads=*/1);
    expect_identical_vs_full(inc, full, seed);
  }
}

TEST_F(IncrementalEquivFaults, ParallelSeedsUnderFaults) {
  for (std::uint64_t seed = 401; seed <= 400 + kVariantSeeds; ++seed) {
    RunResult inc = run(seed, /*incremental=*/true, /*threads=*/3);
    RunResult full = run(seed, /*incremental=*/false, /*threads=*/3);
    expect_identical_vs_full(inc, full, seed);
  }
}

}  // namespace
}  // namespace vm1
