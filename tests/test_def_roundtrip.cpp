/// Property test for the full LEF/DEF ingestion path: for randomized
/// generated designs across all three cell architectures, serializing a
/// design and re-reading it through read_def_design must reproduce the
/// byte-identical DEF (and the same for the library through read_lef).
/// Bit-exactness is the strongest cheap invariant: it implies every name,
/// master binding, connection order, IO position and placement survived.
#include <gtest/gtest.h>

#include "io/def_io.h"
#include "io/def_reader.h"
#include "io/lef_reader.h"
#include "io/lef_writer.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

constexpr CellArch kArchs[] = {CellArch::kConventional12T,
                               CellArch::kClosedM1, CellArch::kOpenM1};

TEST(DefRoundtrip, FiftyRandomDesignsBitExact) {
  for (int i = 0; i < 50; ++i) {
    CellArch arch = kArchs[i % 3];
    DesignOptions opts;
    opts.seed = 1000 + i;
    opts.scale = 0.25 + 0.15 * (i % 4);
    opts.utilization = 0.55 + 0.1 * (i % 3);
    Design d = make_design("tiny", arch, opts);
    // Half the corpus is placed (exercises nonzero coordinates and
    // orientation), half stays at the generator's all-zero placement.
    if (i % 2 == 0) {
      global_place(d);
      legalize(d);
    }
    std::string def = write_def(d);

    IoError err;
    std::unique_ptr<Design> back =
        read_def_design(def, d.tech(), d.library(), &err);
    ASSERT_NE(back, nullptr)
        << "design " << i << " (" << to_string(arch) << "): " << err.str();
    EXPECT_EQ(write_def(*back), def)
        << "design " << i << " (" << to_string(arch) << ") not bit-exact";
  }
}

TEST(DefRoundtrip, ReadDesignIsSelfContained) {
  // The constructed Design must not alias the caller's library: the
  // roundtripped design works after the source design is gone.
  std::unique_ptr<Design> back;
  {
    Design d = make_design("tiny", CellArch::kClosedM1);
    global_place(d);
    legalize(d);
    IoError err;
    back = read_def_design(write_def(d), d.tech(), d.library(), &err);
    ASSERT_NE(back, nullptr) << err.str();
  }
  // Touching masters and pins after the source's destruction: under ASan
  // this faults if the library was aliased instead of copied.
  long pins = 0;
  for (int i = 0; i < back->netlist().num_instances(); ++i) {
    pins += static_cast<long>(back->netlist().cell_of(i).pins.size());
  }
  EXPECT_GT(pins, 0);
}

TEST(LefRoundtrip, AllArchesBitExactThroughReader) {
  for (CellArch arch : kArchs) {
    Design d = make_design("tiny", arch);
    std::string lef = write_lef(d.tech(), d.library());
    LefContents back;
    IoError err;
    ASSERT_TRUE(read_lef(lef, &back, &err))
        << to_string(arch) << ": " << err.str();
    EXPECT_EQ(write_lef(back.tech, back.lib), lef) << to_string(arch);
  }
}

TEST(DefRoundtrip, IngestedDesignRunsTheFlowIdentically) {
  // End-to-end: a DEF-ingested design is a full equal citizen — routing it
  // gives the same metrics as routing the original in-memory design.
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  IoError err;
  std::unique_ptr<Design> back =
      read_def_design(write_def(d), d.tech(), d.library(), &err);
  ASSERT_NE(back, nullptr) << err.str();
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    ASSERT_EQ(back->placement(i), d.placement(i));
  }
  for (int io = 0; io < d.netlist().num_ios(); ++io) {
    ASSERT_EQ(back->io_position(io), d.io_position(io));
  }
}

}  // namespace
}  // namespace vm1
