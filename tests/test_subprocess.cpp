/// Unit tests for util/subprocess: the fork/exec + socket helpers under
/// the distributed window-solve service. These pin down the failure
/// surfacing the coordinator's supervision relies on — exec failures look
/// like immediate EOF (never a hang), kill_and_reap really kills and
/// really reaps (no zombies accumulate across restart storms), and the
/// byte-exact write accounting that the coordinator's sent/dropped split
/// is built on.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/subprocess.h"

namespace vm1::subprocess {
namespace {

TEST(Subprocess, MissingBinaryYieldsInvalidChild) {
  Child c = spawn_worker("/nonexistent/definitely_not_a_worker", {});
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(c.pid, -1);
  EXPECT_EQ(c.fd, -1);
}

TEST(Subprocess, NonExecutableFileYieldsInvalidChild) {
  // A regular file without the x bit (this test's own source is not
  // guaranteed present, so make one).
  char path[] = "/tmp/vm1_subprocess_testXXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  EXPECT_FALSE(is_executable(path));
  Child c = spawn_worker(path, {});
  EXPECT_FALSE(c.valid());
  pid_t p = spawn_process(path, {});
  EXPECT_EQ(p, -1);
  unlink(path);
}

TEST(Subprocess, ExecFailureSurfacesAsImmediateEofNotHang) {
  // A file that passes the is_executable pre-check but fails execv itself
  // (x-bit set, but neither ELF nor shebang): the child _exit(127)s and
  // the parent's contract is immediate EOF on the socket — never a hang,
  // never a half-spawned worker.
  char path[] = "/tmp/vm1_subprocess_execXXXXXX";
  int tmp = mkstemp(path);
  ASSERT_GE(tmp, 0);
  const char garbage[] = "\x7fNOT AN EXECUTABLE\n";
  ASSERT_EQ(write(tmp, garbage, sizeof garbage - 1),
            static_cast<ssize_t>(sizeof garbage - 1));
  close(tmp);
  ASSERT_EQ(chmod(path, 0755), 0);
  ASSERT_TRUE(is_executable(path));

  Child c = spawn_worker(path, {});
  ASSERT_TRUE(c.valid()) << "fork itself should succeed";
  std::uint8_t buf[16];
  long n = read_some(c.fd, buf, sizeof buf);
  EXPECT_EQ(n, 0) << "expected EOF from the _exit(127) child";
  close(c.fd);
  kill_and_reap(c.pid);
  EXPECT_TRUE(try_reap(c.pid));
  unlink(path);
}

TEST(Subprocess, KillAndReapTerminatesASleepingChild) {
  pid_t pid = spawn_process("/bin/sleep", {"30"});
  ASSERT_GT(pid, 0);
  EXPECT_FALSE(try_reap(pid)) << "sleep(30) exited implausibly fast";
  kill_and_reap(pid, /*timeout_sec=*/5.0);
  // After kill_and_reap the pid must be fully collected: a second waitpid
  // finds nothing (ECHILD), i.e. no zombie remains.
  int status = 0;
  pid_t r = waitpid(pid, &status, WNOHANG);
  EXPECT_TRUE(r < 0 && errno == ECHILD) << "child " << pid << " not reaped";
}

TEST(Subprocess, RepeatedRespawnsLeaveNoZombies) {
  // A restart storm: every generation must be reaped before the next, or
  // the coordinator would leak one zombie per worker death.
  std::vector<pid_t> pids;
  for (int i = 0; i < 8; ++i) {
    pid_t pid = spawn_process("/bin/sleep", {"30"});
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
    kill_and_reap(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    EXPECT_TRUE(r < 0 && errno == ECHILD) << "zombie " << pid << " leaked";
  }
}

TEST(Subprocess, KillAndReapIsIdempotentAndIgnoresBogusPids) {
  kill_and_reap(-1);
  kill_and_reap(0);
  pid_t pid = spawn_process("/bin/sleep", {"30"});
  ASSERT_GT(pid, 0);
  kill_and_reap(pid);
  kill_and_reap(pid);  // second call: already reaped, must not block
  EXPECT_TRUE(try_reap(pid));
}

TEST(Subprocess, WriteUptoReportsDeliveredBytesOnDeadPeer) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const char msg[] = "delivered in full";
  EXPECT_EQ(write_upto(sv[0], msg, sizeof msg), sizeof msg);
  EXPECT_TRUE(write_all(sv[0], msg, sizeof msg));

  // Sever the peer: the write must fail (EPIPE, not SIGPIPE) and report
  // zero delivered bytes — the split the coordinator's dropped-byte
  // accounting depends on.
  close(sv[1]);
  EXPECT_EQ(write_upto(sv[0], msg, sizeof msg), 0u);
  EXPECT_FALSE(write_all(sv[0], msg, sizeof msg));
  close(sv[0]);
}

TEST(Subprocess, SpawnWorkerPassesArgsAndFdContract) {
  // spawn_worker appends --fd=N naming the child's inherited socket end;
  // for `/bin/sh -c SCRIPT` that lands in $0. The script writes through
  // that fd, proving both the argument passthrough and that the fd really
  // is open in the child.
  Child c = spawn_worker("/bin/sh", {"-c", "eval \"printf ok >&${0#--fd=}\""});
  ASSERT_TRUE(c.valid());
  char buf[8] = {};
  long n = read_some(c.fd, buf, sizeof buf);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(std::string(buf, 2), "ok");
  close(c.fd);
  kill_and_reap(c.pid);
}

}  // namespace
}  // namespace vm1::subprocess
