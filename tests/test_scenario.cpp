/// Scenario harness suite: declarative metric-spec parsing, tolerance
/// semantics, metric extraction from all three sources, golden-corpus
/// roundtrip, the checked-in corpus gate, and the seeded-regression drill
/// (a deliberately perturbed flow must trip the gate and name the metric).
///
/// Regenerate the per-scenario corpus after an intended change with:
///   VM1_UPDATE_GOLDEN=1 ./build/tests/openvm1_scenario_tests
/// or `./build/apps/vm1_sweep --quick --update-golden` (identical output).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "scenario/runner.h"

#ifndef VM1_GOLDEN_DIR
#define VM1_GOLDEN_DIR "tests/golden"
#endif

namespace vm1::scenario {
namespace {

std::string scenario_golden_dir() {
  return std::string(VM1_GOLDEN_DIR) + "/scenarios";
}

// ---------------------------------------------------------------------- spec

TEST(MetricSpec, ParsesDefaultSpec) {
  std::vector<MetricSpec> specs;
  std::string err;
  ASSERT_TRUE(parse_metric_specs(default_metric_spec_text(), &specs, &err))
      << err;
  EXPECT_GT(specs.size(), 20u);
  // All three source kinds are exercised by the default spec.
  bool flow = false, counter = false, report = false;
  for (const MetricSpec& s : specs) {
    flow |= s.source == MetricSource::kFlow;
    counter |= s.source == MetricSource::kCounter;
    report |= s.source == MetricSource::kReport;
  }
  EXPECT_TRUE(flow && counter && report);
}

TEST(MetricSpec, ParsesAllToleranceKinds) {
  std::vector<MetricSpec> specs;
  std::string err;
  ASSERT_TRUE(parse_metric_specs("a;flow:x;exact\n"
                                 "b;flow:x;abs:2\n"
                                 "c;flow:x;rel:0.05\n"
                                 "d;flow:x;le\n"
                                 "e;flow:x;ge:0.1\n"
                                 "f;flow:x;info\n",
                                 &specs, &err))
      << err;
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].tol.kind, TolKind::kExact);
  EXPECT_EQ(specs[1].tol.kind, TolKind::kAbs);
  EXPECT_DOUBLE_EQ(specs[1].tol.value, 2);
  EXPECT_EQ(specs[2].tol.kind, TolKind::kRel);
  EXPECT_EQ(specs[3].tol.kind, TolKind::kLe);
  EXPECT_EQ(specs[4].tol.kind, TolKind::kGe);
  EXPECT_DOUBLE_EQ(specs[4].tol.value, 0.1);
  EXPECT_EQ(specs[5].tol.kind, TolKind::kInfo);
}

TEST(MetricSpec, RejectsMalformedLines) {
  std::vector<MetricSpec> specs;
  std::string err;
  // Missing fields.
  EXPECT_FALSE(parse_metric_specs("just_a_name\n", &specs, &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
  // Unknown source kind.
  EXPECT_FALSE(parse_metric_specs("m;bogus:x;exact\n", &specs, &err));
  EXPECT_NE(err.find("unknown source"), std::string::npos);
  // Unknown tolerance.
  EXPECT_FALSE(parse_metric_specs("m;flow:x;never\n", &specs, &err));
  // abs without a value.
  EXPECT_FALSE(parse_metric_specs("m;flow:x;abs\n", &specs, &err));
  // Report regex without a capture group.
  EXPECT_FALSE(parse_metric_specs("m;report:DRV [0-9]+;exact\n", &specs,
                                  &err));
  EXPECT_NE(err.find("capture"), std::string::npos);
  // Invalid regex.
  EXPECT_FALSE(parse_metric_specs("m;report:([0-9]+;exact\n", &specs, &err));
  // Duplicate metric name.
  EXPECT_FALSE(parse_metric_specs("m;flow:x;exact\nm;flow:y;exact\n", &specs,
                                  &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(MetricSpec, HashCommentsAndBlanksIgnoredButNotInRegex) {
  std::vector<MetricSpec> specs;
  std::string err;
  ASSERT_TRUE(parse_metric_specs("# a comment\n\n"
                                 "drv;report:#DRV +([0-9]+);exact\n",
                                 &specs, &err))
      << err;
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].key, "#DRV +([0-9]+)");  // '#' kept inside the line
}

// ----------------------------------------------------------------- tolerance

TEST(MetricSpec, ToleranceSemantics) {
  EXPECT_TRUE(check_tolerance({TolKind::kExact, 0}, 5, 5).pass);
  EXPECT_FALSE(check_tolerance({TolKind::kExact, 0}, 5, 6).pass);
  EXPECT_TRUE(check_tolerance({TolKind::kAbs, 2}, 7, 5).pass);
  EXPECT_FALSE(check_tolerance({TolKind::kAbs, 2}, 8, 5).pass);
  EXPECT_TRUE(check_tolerance({TolKind::kRel, 0.1}, 109, 100).pass);
  EXPECT_FALSE(check_tolerance({TolKind::kRel, 0.1}, 111, 100).pass);
  // le: may improve (drop) freely, may not regress upward.
  EXPECT_TRUE(check_tolerance({TolKind::kLe, 0}, 0, 10).pass);
  EXPECT_FALSE(check_tolerance({TolKind::kLe, 0}, 11, 10).pass);
  EXPECT_TRUE(check_tolerance({TolKind::kLe, 0.2}, 11, 10).pass);
  // ge: the mirror for maximized metrics.
  EXPECT_TRUE(check_tolerance({TolKind::kGe, 0}, 99, 10).pass);
  EXPECT_FALSE(check_tolerance({TolKind::kGe, 0}, 9, 10).pass);
  // info never gates.
  EXPECT_TRUE(check_tolerance({TolKind::kInfo, 0}, 1e9, 0).pass);
  // A failed check names both values.
  MetricCheck c = check_tolerance({TolKind::kExact, 0}, 5, 6);
  EXPECT_NE(c.detail.find("5"), std::string::npos);
  EXPECT_NE(c.detail.find("6"), std::string::npos);
}

// ---------------------------------------------------------------- extraction

TEST(MetricSpec, ExtractsFromAllSources) {
  std::map<std::string, double> flow{{"final_drv", 3}};
  std::map<std::string, double> counters{{"lp.solves", 42}};
  std::string report = "  #DRV   7   3\n";
  ExtractionContext ctx{&flow, &counters, &report};

  std::vector<MetricSpec> specs;
  std::string err;
  ASSERT_TRUE(parse_metric_specs("a;flow:final_drv;exact\n"
                                 "b;counter:lp.solves;info\n"
                                 "c;report:#DRV +[0-9]+ +([0-9]+);exact\n",
                                 &specs, &err))
      << err;
  double v = 0;
  ASSERT_TRUE(extract_metric(specs[0], ctx, &v, &err)) << err;
  EXPECT_DOUBLE_EQ(v, 3);
  ASSERT_TRUE(extract_metric(specs[1], ctx, &v, &err)) << err;
  EXPECT_DOUBLE_EQ(v, 42);
  ASSERT_TRUE(extract_metric(specs[2], ctx, &v, &err)) << err;
  EXPECT_DOUBLE_EQ(v, 3);  // the capture group, not the first number

  // Failures are reported, not silently zero.
  ASSERT_TRUE(parse_metric_specs("m;flow:nope;exact\n", &specs, &err));
  EXPECT_FALSE(extract_metric(specs[0], ctx, &v, &err));
  EXPECT_NE(err.find("nope"), std::string::npos);
  ASSERT_TRUE(parse_metric_specs("m;counter:nope;info\n", &specs, &err));
  EXPECT_FALSE(extract_metric(specs[0], ctx, &v, &err));
  ASSERT_TRUE(parse_metric_specs("m;report:NOMATCH([0-9]+);exact\n", &specs,
                                 &err));
  EXPECT_FALSE(extract_metric(specs[0], ctx, &v, &err));
}

// -------------------------------------------------------------------- golden

TEST(ScenarioGolden, WriteReadRoundtrip) {
  ScenarioResult res;
  res.name = "roundtrip_probe";
  res.metrics = {{"final_hpwl", 7272}, {"final_drv", 0}, {"seconds", 1.5}};
  std::vector<MetricSpec> specs;
  std::string err;
  ASSERT_TRUE(parse_metric_specs("final_hpwl;flow:final_hpwl;exact\n"
                                 "final_drv;flow:final_drv;le\n"
                                 "seconds;flow:seconds;info\n",
                                 &specs, &err));
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(write_scenario_golden(dir, specs, res));
  std::map<std::string, double> gold = read_scenario_golden(dir, res.name);
  ASSERT_EQ(gold.size(), 2u);  // info metrics are not part of the corpus
  EXPECT_DOUBLE_EQ(gold["final_hpwl"], 7272);
  EXPECT_DOUBLE_EQ(gold["final_drv"], 0);
  EXPECT_EQ(gold.count("seconds"), 0u);
}

TEST(ScenarioGolden, MissingGoldenGatesEveryMetric) {
  ScenarioResult res;
  res.name = "no_such_golden";
  res.metrics = {{"final_hpwl", 1}};
  std::vector<MetricSpec> specs;
  std::string err;
  ASSERT_TRUE(
      parse_metric_specs("final_hpwl;flow:final_hpwl;exact\n", &specs, &err));
  auto v = gate_scenario(res, specs, {});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].metric, "final_hpwl");
  EXPECT_NE(v[0].detail.find("no golden"), std::string::npos);
  EXPECT_NE(v[0].str().find("no_such_golden/final_hpwl"), std::string::npos);
}

// --------------------------------------------------------------------- sweep

TEST(SweepMatrix, QuickMatrixCoversTheRequiredAxes) {
  std::vector<Scenario> m = sweep_matrix(/*quick=*/true);
  std::set<std::string> names;
  std::set<CellArch> archs;
  std::map<CellArch, std::set<int>> utils;
  bool aspect = false, capacity = false, processes = false;
  for (const Scenario& s : m) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    archs.insert(s.arch);
    utils[s.arch].insert(int(s.utilization * 100 + 0.5));
    aspect |= s.aspect != 1.0;
    capacity |= s.wire_capacity != 1;
    processes |= s.backend == DistBackend::kProcesses;
  }
  EXPECT_EQ(archs.size(), 3u);
  for (const auto& [arch, u] : utils) {
    EXPECT_GE(u.size(), 4u) << to_string(arch);
  }
  EXPECT_TRUE(aspect && capacity && processes);
  // The full matrix is a strict superset.
  EXPECT_GT(sweep_matrix(false).size(), m.size());
}

TEST(SweepMatrix, FilterSelectsBySubstring) {
  std::vector<Scenario> m = sweep_matrix(true);
  EXPECT_EQ(filter_scenarios(m, "").size(), m.size());
  std::vector<Scenario> only = filter_scenarios(m, "openm1");
  ASSERT_FALSE(only.empty());
  for (const Scenario& s : only) {
    EXPECT_NE(s.name.find("openm1"), std::string::npos);
  }
  EXPECT_TRUE(filter_scenarios(m, "zzz_no_match").empty());
}

// The end-to-end gate against the checked-in corpus, plus the
// seeded-regression drill. One fast scenario keeps this cheap enough for
// tier1; the full quick matrix runs under `ctest -L scenario` via
// openvm1_scenario_tests (VM1_SCENARIO_FULL).
Scenario probe_scenario() {
  for (const Scenario& s : sweep_matrix(true)) {
    if (s.name == "closedm1_u55") return s;
  }
  ADD_FAILURE() << "closedm1_u55 missing from the quick matrix";
  return {};
}

TEST(ScenarioRun, GatesCleanAgainstCheckedInCorpus) {
  RunnerOptions opts;
  opts.golden_dir = scenario_golden_dir();
  opts.out_dir = ::testing::TempDir();
  if (std::getenv("VM1_UPDATE_GOLDEN")) opts.update_golden = true;

  SweepSummary sum = run_sweep({probe_scenario()}, opts);
  EXPECT_EQ(sum.scenarios_run, 1);
  if (opts.update_golden) {
    EXPECT_EQ(sum.goldens_written, 1);
  }
  for (const Violation& v : sum.violations) {
    ADD_FAILURE() << v.str();
  }
  // The trend JSON exists and records the scenario.
  std::ifstream trend(opts.out_dir + "/TREND_closedm1_u55.json");
  ASSERT_TRUE(trend.good());
  std::stringstream ss;
  ss << trend.rdbuf();
  EXPECT_NE(ss.str().find("\"scenario\": \"closedm1_u55\""),
            std::string::npos);
  EXPECT_NE(ss.str().find("\"pass\": true"), std::string::npos);
}

TEST(ScenarioRun, SeededRegressionDrillTripsTheGate) {
  if (std::getenv("VM1_UPDATE_GOLDEN")) {
    GTEST_SKIP() << "drill is meaningless while regenerating the corpus";
  }
  RunnerOptions opts;
  opts.golden_dir = scenario_golden_dir();
  opts.out_dir = ::testing::TempDir();
  opts.write_trends = false;
  // The drill: cap the MILP at one node. Windows that the golden run
  // solved to proven optimality now keep whatever the root produced, so
  // final quality (HPWL, alignments, vias) drifts off the recorded values
  // — the exact/monotonic gates MUST fail and name scenario + metric.
  opts.perturb = [](FlowOptions& f) { f.vm1.mip.max_nodes = 1; };

  SweepSummary sum = run_sweep({probe_scenario()}, opts);
  ASSERT_FALSE(sum.violations.empty())
      << "perturbed flow passed the gate — the corpus is not protecting "
         "the final quality metrics";
  bool names_final_quality = false;
  for (const Violation& v : sum.violations) {
    EXPECT_EQ(v.scenario, "closedm1_u55");
    EXPECT_FALSE(v.metric.empty());
    EXPECT_FALSE(v.detail.empty());
    if (v.metric.rfind("final_", 0) == 0) names_final_quality = true;
  }
  EXPECT_TRUE(names_final_quality)
      << "violations did not name a final quality metric";
}

#ifdef VM1_SCENARIO_FULL
TEST(ScenarioRun, FullQuickMatrixGatesClean) {
  RunnerOptions opts;
  opts.golden_dir = scenario_golden_dir();
  opts.out_dir = ::testing::TempDir();
  if (std::getenv("VM1_UPDATE_GOLDEN")) opts.update_golden = true;

  std::vector<Scenario> matrix = sweep_matrix(/*quick=*/true);
  SweepSummary sum = run_sweep(matrix, opts);
  EXPECT_EQ(sum.scenarios_run, int(matrix.size()));
  for (const Violation& v : sum.violations) {
    ADD_FAILURE() << v.str();
  }
  // Backend-axis invariant: threads(1), threads(2) and processes(2) gate
  // against independent goldens, but the values must agree — the backends
  // are bit-identical by contract.
  std::map<std::string, double> ref =
      read_scenario_golden(opts.golden_dir, "closedm1_u75");
  for (const char* peer : {"closedm1_u75_t1", "closedm1_u75_proc2"}) {
    std::map<std::string, double> got =
        read_scenario_golden(opts.golden_dir, peer);
    EXPECT_EQ(got, ref) << peer << " diverges from the threads(2) reference";
  }
}
#endif  // VM1_SCENARIO_FULL

}  // namespace
}  // namespace vm1::scenario
