#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace vm1 {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.uniform(10), 10u);
  }
}

TEST(Rng, UniformIntClosedRange) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, GeometricBetweenBounds) {
  Rng r(5);
  for (int i = 0; i < 500; ++i) {
    int v = r.geometric_between(1, 8, 0.5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 8);
  }
  // ratio 0 always returns the lower bound.
  EXPECT_EQ(r.geometric_between(2, 8, 0.0), 2);
  // ratio 1 always returns the upper bound.
  EXPECT_EQ(r.geometric_between(2, 8, 1.0), 8);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng r(13);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[r.weighted_pick(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(99);
  auto a = r.next();
  r.reseed(99);
  EXPECT_EQ(r.next(), a);
}

}  // namespace
}  // namespace vm1
