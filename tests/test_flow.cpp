#include "core/flow.h"

#include <gtest/gtest.h>

#include "design/legality.h"

namespace vm1 {
namespace {

FlowOptions fast_flow(CellArch arch) {
  FlowOptions f;
  f.design_name = "tiny";
  f.arch = arch;
  f.vm1.sequence = {ParamSet{16, 2, 3, 1}};
  f.vm1.max_inner_iters = 2;
  f.vm1.threads = 2;
  f.vm1.mip.max_nodes = 60;
  f.vm1.mip.time_limit_sec = 2.0;
  f.vm1.params.alpha = 30;
  return f;
}

TEST(Flow, EndToEndClosedM1) {
  std::optional<Design> d;
  FlowResult r = run_flow(fast_flow(CellArch::kClosedM1), &d);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(is_legal(*d));
  EXPECT_GT(r.init.route.rwl_dbu, 0);
  EXPECT_GT(r.final.route.rwl_dbu, 0);
  // The optimizer's own objective must improve or hold.
  EXPECT_LE(r.final.objective.value, r.init.objective.value + 1e-6);
  // Alignments (potential dM1) should not decrease.
  EXPECT_GE(r.final.objective.alignments, r.init.objective.alignments);
}

TEST(Flow, EndToEndOpenM1) {
  FlowResult r = run_flow(fast_flow(CellArch::kOpenM1));
  EXPECT_GT(r.init.route.rwl_dbu, 0);
  EXPECT_LE(r.final.objective.value, r.init.objective.value + 1e-6);
}

TEST(Flow, BaselineOnlySkipsOptimization) {
  FlowOptions f = fast_flow(CellArch::kClosedM1);
  f.run_vm1 = false;
  FlowResult r = run_flow(f);
  EXPECT_EQ(r.init.route.rwl_dbu, r.final.route.rwl_dbu);
  EXPECT_EQ(r.opt.outer_iterations, 0);
}

TEST(Flow, MeasureIsDeterministic) {
  FlowOptions f = fast_flow(CellArch::kClosedM1);
  double place_s = 0;
  Design d = prepare_design(f, &place_s);
  QoR a = measure(d, f.router, f.vm1.params);
  QoR b = measure(d, f.router, f.vm1.params);
  EXPECT_EQ(a.hpwl, b.hpwl);
  EXPECT_EQ(a.route.rwl_dbu, b.route.rwl_dbu);
  EXPECT_EQ(a.route.num_dm1, b.route.num_dm1);
  EXPECT_DOUBLE_EQ(a.power.total_mw(), b.power.total_mw());
}

TEST(Flow, ClosedM1HasDm1Potential) {
  FlowOptions f = fast_flow(CellArch::kClosedM1);
  f.run_vm1 = false;
  std::optional<Design> d;
  FlowResult r = run_flow(f, &d);
  // Even unoptimized, some pins align by chance (Table 2 "Init" columns).
  EXPECT_GT(r.init.objective.alignments, 0);
  (void)d;
}

}  // namespace
}  // namespace vm1
