/// Golden-run regression: the quickstart flow (tiny design, ClosedM1,
/// alpha = 1200 nm, the paper's best sequence) is fully deterministic, so
/// its integer quality metrics are checked into tests/golden/ and any
/// unintended behavior change — solver, placer, router, or the
/// incremental engine — shows up as a diff against the recorded values.
///
/// Regenerate after an *intended* change with:
///   VM1_UPDATE_GOLDEN=1 ./build/tests/openvm1_tests \
///       --gtest_filter='GoldenRun.*'
/// and commit the rewritten tests/golden/quickstart.json.
///
/// The same flow also doubles as the acceptance check that the dirty-window
/// engine is exact end-to-end: incremental on vs off must produce the
/// identical placement and identical metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <sstream>
#include <string>

#include "core/flow.h"

#ifndef VM1_GOLDEN_DIR
#define VM1_GOLDEN_DIR "tests/golden"
#endif

namespace vm1 {
namespace {

FlowOptions golden_flow(bool incremental) {
  FlowOptions f;
  f.design_name = "tiny";
  f.arch = CellArch::kClosedM1;
  f.vm1.params.alpha = paper_alpha(1200);
  f.vm1.sequence = {ParamSet{20, 0, 4, 1}};  // quickstart configuration
  f.vm1.incremental = incremental;
  // The default per-window wall-clock caps make results load-dependent (a
  // window truncating at 1.5s solves differently under a busy ctest -j).
  // Golden runs must be governed by the deterministic node cap alone.
  f.vm1.mip.time_limit_sec = 3600;
  f.vm1.mip.lp_options.time_limit_sec = 3600;
  return f;
}

/// Integer-only metric snapshot: every value below is a count or a Coord
/// sum, so the comparison is exact and platform noise-free.
std::map<std::string, long long> metrics_of(const FlowResult& r) {
  std::map<std::string, long long> m;
  m["init_hpwl"] = r.init.hpwl;
  m["init_alignments"] = r.init.objective.alignments;
  m["init_num_dm1"] = r.init.route.num_dm1;
  m["init_via12"] = r.init.route.via12;
  m["init_drv"] = r.init.route.drv;
  m["init_rwl_dbu"] = r.init.route.rwl_dbu;
  m["final_hpwl"] = r.final.hpwl;
  m["final_alignments"] = r.final.objective.alignments;
  m["final_num_dm1"] = r.final.route.num_dm1;
  m["final_via12"] = r.final.route.via12;
  m["final_drv"] = r.final.route.drv;
  m["final_rwl_dbu"] = r.final.route.rwl_dbu;
  m["outer_iterations"] = r.opt.outer_iterations;
  m["windows"] = r.opt.windows;
  m["solved"] = r.opt.solved;
  m["fallback_rounding"] = r.opt.fallback_rounding;
  m["fallback_greedy"] = r.opt.fallback_greedy;
  m["rejected_audit"] = r.opt.rejected_audit;
  m["kept"] = r.opt.kept;
  m["faulted"] = r.opt.faulted;
  m["skipped"] = r.opt.skipped;
  return m;
}

std::string golden_path() {
  return std::string(VM1_GOLDEN_DIR) + "/quickstart.json";
}

void write_golden(const std::map<std::string, long long>& m) {
  std::ofstream out(golden_path());
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
  out << "{\n";
  std::size_t i = 0;
  for (const auto& [k, v] : m) {
    out << "  \"" << k << "\": " << v
        << (++i == m.size() ? "\n" : ",\n");
  }
  out << "}\n";
}

std::map<std::string, long long> read_golden() {
  std::ifstream in(golden_path());
  std::map<std::string, long long> m;
  if (!in.good()) return m;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  std::regex entry("\"([a-z0-9_]+)\"\\s*:\\s*(-?[0-9]+)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), entry);
       it != std::sregex_iterator(); ++it) {
    m[(*it)[1]] = std::stoll((*it)[2]);
  }
  return m;
}

TEST(GoldenRun, QuickstartMatchesCheckedInMetrics) {
  std::optional<Design> d_inc;
  FlowResult r = run_flow(golden_flow(/*incremental=*/true), &d_inc);
  std::map<std::string, long long> got = metrics_of(r);

  if (std::getenv("VM1_UPDATE_GOLDEN")) {
    write_golden(got);
    GTEST_SKIP() << "golden file rewritten: " << golden_path();
  }

  std::map<std::string, long long> want = read_golden();
  ASSERT_FALSE(want.empty())
      << "missing golden file " << golden_path()
      << " — run with VM1_UPDATE_GOLDEN=1 to create it";
  // Compare key-by-key for readable failure messages.
  for (const auto& [k, v] : want) {
    ASSERT_TRUE(got.count(k)) << "golden key " << k << " not produced";
    EXPECT_EQ(got[k], v) << "metric " << k << " drifted from golden";
  }
  EXPECT_EQ(got.size(), want.size()) << "metric set changed; regenerate";
  // The flow must have actually optimized something, or the golden run
  // degenerates into a no-op and stops guarding the solve path.
  EXPECT_GT(r.opt.windows, 0);
  EXPECT_GE(got["final_alignments"], got["init_alignments"]);
}

TEST(GoldenRun, QuickstartIncrementalMatchesFull) {
  std::optional<Design> d_inc;
  std::optional<Design> d_full;
  FlowResult ri = run_flow(golden_flow(/*incremental=*/true), &d_inc);
  FlowResult rf = run_flow(golden_flow(/*incremental=*/false), &d_full);
  ASSERT_TRUE(d_inc.has_value());
  ASSERT_TRUE(d_full.has_value());
  ASSERT_EQ(d_inc->placements(), d_full->placements());
  EXPECT_EQ(ri.final.hpwl, rf.final.hpwl);
  EXPECT_EQ(ri.final.objective.alignments, rf.final.objective.alignments);
  EXPECT_EQ(ri.final.route.num_dm1, rf.final.route.num_dm1);
  EXPECT_EQ(ri.final.route.rwl_dbu, rf.final.route.rwl_dbu);
  EXPECT_EQ(ri.opt.windows, rf.opt.windows);
  EXPECT_EQ(ri.opt.cells_changed, rf.opt.cells_changed);
  EXPECT_EQ(rf.opt.skipped, 0) << "full mode must not skip";
}

}  // namespace
}  // namespace vm1
