#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace vm1 {
namespace {

/// Restores the default sink and level even when a test fails mid-way.
struct SinkGuard {
  ~SinkGuard() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kInfo);
  }
};

TEST(Logging, SinkCapturesMessagesWithLevel) {
  SinkGuard guard;
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel lvl, const std::string& msg) {
    captured.emplace_back(lvl, msg);
  });
  log_info("hello ", 42);
  log_warn("danger");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello 42");
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_EQ(captured[1].second, "danger");
}

TEST(Logging, SinkRespectsLevelThreshold) {
  SinkGuard guard;
  std::vector<std::string> captured;
  set_log_sink([&captured](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  set_log_level(LogLevel::kError);
  log_debug("drop me");
  log_info("drop me too");
  log_error("keep me");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "keep me");
}

TEST(Logging, NullSinkRestoresDefault) {
  SinkGuard guard;
  int calls = 0;
  set_log_sink([&calls](LogLevel, const std::string&) { ++calls; });
  log_info("one");
  set_log_sink(nullptr);
  log_info("goes to stderr, not the old sink");
  EXPECT_EQ(calls, 1);
}

TEST(Logging, ConcurrentEmissionIsSerializedAndLossless) {
  SinkGuard guard;
  std::vector<std::string> captured;
  set_log_sink([&captured](LogLevel, const std::string& msg) {
    // No extra lock: the sink contract says calls are serialized.
    captured.push_back(msg);
  });
  const int kThreads = 8;
  const int kPer = 200;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      for (int i = 0; i < kPer; ++i) log_info("t", t, " msg ", i);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(captured.size(), static_cast<std::size_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace vm1
