#include "place/abacus.h"

#include <gtest/gtest.h>

#include "design/legality.h"
#include "place/global_placer.h"
#include "place/hpwl.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

class AbacusPerArch : public ::testing::TestWithParam<CellArch> {};

TEST_P(AbacusPerArch, ProducesLegalPlacement) {
  Design d = make_design("tiny", GetParam());
  global_place(d);
  abacus_legalize(d);
  EXPECT_TRUE(is_legal(d));
}

INSTANTIATE_TEST_SUITE_P(Archs, AbacusPerArch,
                         ::testing::Values(CellArch::kClosedM1,
                                           CellArch::kOpenM1));

TEST(Abacus, HandlesHighUtilization) {
  DesignOptions opts;
  opts.utilization = 0.92;
  Design d = make_design("tiny", CellArch::kClosedM1, opts);
  global_place(d);
  abacus_legalize(d);
  EXPECT_TRUE(is_legal(d));
}

TEST(Abacus, DisplacementNotWorseThanTetris) {
  // Abacus minimizes squared displacement; on the same global placement
  // its total displacement should beat (or at least match) Tetris.
  auto displacement = [](const Design& d,
                         const std::vector<Placement>& from) {
    long total = 0;
    for (int i = 0; i < d.netlist().num_instances(); ++i) {
      total += std::abs(d.placement(i).x - from[i].x) +
               std::abs(d.placement(i).row - from[i].row) * 4;
    }
    return total;
  };

  Design da = make_design("tiny", CellArch::kClosedM1);
  global_place(da);
  std::vector<Placement> targets = da.placements();
  abacus_legalize(da);
  long disp_abacus = displacement(da, targets);

  Design dt = make_design("tiny", CellArch::kClosedM1);
  global_place(dt);
  legalize(dt);
  long disp_tetris = displacement(dt, targets);

  EXPECT_LE(disp_abacus, disp_tetris);
}

TEST(Abacus, PreservesOrientation) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  d.set_placement(0, Placement{d.placement(0).x, d.placement(0).row, true});
  abacus_legalize(d);
  EXPECT_TRUE(d.placement(0).flipped);
}

TEST(Abacus, AlreadyLegalPlacementStaysClose) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  std::vector<Placement> before = d.placements();
  abacus_legalize(d);
  EXPECT_TRUE(is_legal(d));
  // A legal input is a zero-cost solution; cells should barely move.
  long moved_far = 0;
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    if (std::abs(d.placement(i).x - before[i].x) > 3 ||
        d.placement(i).row != before[i].row) {
      ++moved_far;
    }
  }
  EXPECT_LT(moved_far, d.netlist().num_instances() / 4);
}

}  // namespace
}  // namespace vm1
