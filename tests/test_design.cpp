#include "design/design.h"

#include <gtest/gtest.h>

namespace vm1 {
namespace {

TEST(Design, MakeDesignBasics) {
  DesignOptions opts;
  opts.utilization = 0.75;
  Design d = make_design("tiny", CellArch::kClosedM1, opts);
  EXPECT_GT(d.num_rows(), 1);
  EXPECT_GT(d.sites_per_row(), 15);
  EXPECT_EQ(d.library().arch(), CellArch::kClosedM1);
  EXPECT_GT(d.netlist().num_instances(), 50);
  // Achieved utilization is close to the request (floorplan rounding).
  EXPECT_NEAR(d.utilization(), 0.75, 0.08);
}

TEST(Design, CoreIsRowAligned) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  Rect core = d.core();
  EXPECT_EQ(core.lx, 0);
  EXPECT_EQ(core.ly, 0);
  EXPECT_EQ(core.hy, d.num_rows() * d.tech().row_height());
  EXPECT_EQ(core.hx, d.sites_per_row() * d.tech().site_width());
}

TEST(Design, CellRectTracksPlacement) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  const Cell& c = d.netlist().cell_of(0);
  d.set_placement(0, Placement{5, 2, false});
  Rect r = d.cell_rect(0);
  EXPECT_EQ(r.lx, 5);
  EXPECT_EQ(r.ly, 2 * d.tech().row_height());
  EXPECT_EQ(r.width(), c.width_sites);
  EXPECT_EQ(r.height(), d.tech().row_height());
}

TEST(Design, PinPositionFollowsFlip) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  const Netlist& nl = d.netlist();
  // Find an instance with pins.
  int inst = -1;
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (!nl.cell_of(i).pins.empty()) {
      inst = i;
      break;
    }
  }
  ASSERT_GE(inst, 0);
  const Cell& c = nl.cell_of(inst);
  d.set_placement(inst, Placement{10, 1, false});
  Point straight = d.pin_position(NetPin{inst, 0});
  d.set_placement(inst, Placement{10, 1, true});
  Point flipped = d.pin_position(NetPin{inst, 0});
  EXPECT_EQ(straight.y, flipped.y);
  EXPECT_EQ((straight.x - 10) + (flipped.x - 10), c.width_sites);
}

TEST(Design, PinSpanAbsolute) {
  Design d = make_design("tiny", CellArch::kOpenM1);
  const Netlist& nl = d.netlist();
  int inst = 0;
  ASSERT_FALSE(nl.cell_of(inst).pins.empty());
  d.set_placement(inst, Placement{7, 0, false});
  auto [lo, hi] = d.pin_span_abs(inst, 0);
  const PinInfo& p = nl.cell_of(inst).pins[0];
  EXPECT_EQ(lo, 7 + p.xmin);
  EXPECT_EQ(hi, 7 + p.xmax);
}

TEST(Design, IoPositionsOnBoundary) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  Rect core = d.core();
  for (int io = 0; io < d.netlist().num_ios(); ++io) {
    const Point& p = d.io_position(io);
    bool on_edge = p.x == core.lx || p.x == core.hx || p.y == core.ly ||
                   p.y == core.hy;
    EXPECT_TRUE(on_edge) << "io " << io << " at " << to_string(p);
  }
}

TEST(Design, ScaleGrowsDesign) {
  DesignOptions small_opts, big_opts;
  small_opts.scale = 0.5;
  big_opts.scale = 1.5;
  Design small = make_design("tiny", CellArch::kClosedM1, small_opts);
  Design big = make_design("tiny", CellArch::kClosedM1, big_opts);
  EXPECT_LT(small.netlist().num_instances(), big.netlist().num_instances());
}

TEST(Design, UtilizationKnob) {
  DesignOptions lo, hi;
  lo.utilization = 0.6;
  hi.utilization = 0.9;
  Design dl = make_design("tiny", CellArch::kClosedM1, lo);
  Design dh = make_design("tiny", CellArch::kClosedM1, hi);
  EXPECT_LT(dl.utilization(), dh.utilization());
}

}  // namespace
}  // namespace vm1
