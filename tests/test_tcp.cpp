/// TCP transport suite (`ctest -L tcp`): the auth handshake primitives
/// (SHA-256 / HMAC known-answer vectors), the worker-side attach path
/// (connect retry with backoff against a late listener, refusal exit),
/// transport-level auth accept/reject, fleet supervision (heartbeats
/// catching a silently dead peer, kill storms quarantining flapping
/// workers), and the acceptance bar for the whole stack: the loopback-TCP
/// processes backend is bit-identical to the threads backend across
/// seeds, including under a 25% seven-site transport fault storm.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/vm1opt.h"
#include "design/legality.h"
#include "dist/coordinator.h"
#include "dist/tcp.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/fault_injection.h"
#include "util/hmac.h"
#include "util/rng.h"
#include "util/subprocess.h"

namespace vm1 {
namespace {

#ifdef VM1_EQUIV_LIGHT
constexpr std::uint64_t kSeeds = 4;
#else
constexpr std::uint64_t kSeeds = 20;
#endif

// ---------------------------------------------------------------------
// Handshake primitives: known-answer vectors.

TEST(Sha256, Fips180KnownAnswers) {
  // FIPS 180-4 example vectors.
  EXPECT_EQ(crypto::to_hex(crypto::sha256("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(crypto::to_hex(crypto::sha256("", 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const char* two_blocks =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(crypto::to_hex(crypto::sha256(two_blocks, 56)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(HmacSha256, Rfc4231KnownAnswers) {
  // RFC 4231 test case 1: key = 20 x 0x0b, data = "Hi There".
  std::vector<std::uint8_t> key1(20, 0x0b);
  EXPECT_EQ(crypto::to_hex(crypto::hmac_sha256(key1.data(), key1.size(),
                                               "Hi There", 8)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // RFC 4231 test case 2: key = "Jefe", data = "what do ya want for
  // nothing?".
  EXPECT_EQ(crypto::to_hex(crypto::hmac_sha256(
                "Jefe", 4, "what do ya want for nothing?", 28)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, DigestEqualIsExact) {
  crypto::Digest a = crypto::sha256("x", 1);
  crypto::Digest b = a;
  EXPECT_TRUE(crypto::digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(crypto::digest_equal(a, b));
}

// ---------------------------------------------------------------------
// Worker attach: retry/backoff and refusal.

TEST(TcpAttach, GivesUpAfterBoundedAttemptsWhenRefused) {
  // A bound-but-never-listening socket refuses connects deterministically.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  int port = ntohs(addr.sin_port);

  dist::TcpConnectOptions opts;
  opts.max_attempts = 3;
  opts.backoff_base_sec = 0.01;
  opts.io_timeout_sec = 1.0;
  EXPECT_EQ(dist::tcp_attach("127.0.0.1", port, opts), -1);
  close(fd);
}

TEST(TcpAttach, BackoffSurvivesALateListenerThenCompletesHandshake) {
  // Reserve a port without listening: early connect attempts are refused;
  // listen() starts partway through the client's backoff schedule, and the
  // attach must recover and complete the challenge/hello handshake (served
  // manually here, independently pinning the client's wire format).
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  int port = ntohs(addr.sin_port);

  const std::string secret = "test-secret";
  std::atomic<int> client_fd{-2};
  std::thread client([&] {
    dist::TcpConnectOptions opts;
    opts.max_attempts = 40;
    opts.backoff_base_sec = 0.02;
    opts.backoff_max_sec = 0.1;
    opts.io_timeout_sec = 5.0;
    opts.secret = secret;
    opts.jitter_seed = 7;
    client_fd = dist::tcp_attach("127.0.0.1", port, opts);
  });

  usleep(150'000);  // let a few refused attempts happen first
  ASSERT_EQ(listen(lfd, 4), 0);
  int sfd = accept(lfd, nullptr, nullptr);
  ASSERT_GE(sfd, 0) << "client never connected after listen()";

  // Serve the handshake by hand: challenge out, authed hello in.
  dist::WireChallenge ch;
  ch.nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<std::uint8_t> frame = dist::encode_frame(
      dist::MsgType::kChallenge, dist::encode_challenge(ch));
  ASSERT_TRUE(subprocess::write_all(sfd, frame.data(), frame.size()));

  std::vector<std::uint8_t> rbuf;
  std::optional<dist::Frame> hello;
  std::uint8_t chunk[4096];
  while (!(hello = dist::extract_frame(rbuf))) {
    long n = subprocess::read_some(sfd, chunk, sizeof chunk);
    ASSERT_GT(n, 0) << "client hung up before sending hello";
    rbuf.insert(rbuf.end(), chunk, chunk + n);
  }
  ASSERT_EQ(hello->type, dist::MsgType::kHello);
  dist::WireHello h = dist::decode_hello(hello->payload);
  EXPECT_TRUE(h.authed);
  EXPECT_EQ(h.num_fault_sites, fault::kNumSites);
  crypto::Digest want = crypto::hmac_sha256(
      secret.data(), secret.size(), ch.nonce.data(), ch.nonce.size());
  crypto::Digest got{};
  std::memcpy(got.data(), h.auth.data(), got.size());
  EXPECT_TRUE(crypto::digest_equal(want, got)) << "client HMAC tag wrong";

  client.join();
  EXPECT_GE(client_fd.load(), 0);
  if (client_fd >= 0) close(client_fd);
  close(sfd);
  close(lfd);
}

// ---------------------------------------------------------------------
// Transport-level auth accept/reject.

TEST(TcpTransport, AcceptsWorkerWithMatchingSecret) {
  dist::TcpTransportOptions topts;
  topts.secret = "fleet-secret";
  dist::TcpTransport transport(topts);
  int port = transport.listen_port();
  ASSERT_GT(port, 0);

  std::thread peer([&] {
    dist::TcpConnectOptions copts;
    copts.secret = "fleet-secret";
    int fd = dist::tcp_attach("127.0.0.1", port, copts);
    if (fd < 0) return;
    dist::run_worker(fd, /*send_hello=*/false);
    close(fd);
  });

  std::optional<dist::Established> est = transport.establish(5.0);
  ASSERT_TRUE(est.has_value()) << "handshake with matching secret failed";
  EXPECT_STREQ(est->conn->kind(), "tcp");
  EXPECT_EQ(est->conn->pid(), -1) << "remote-attach peers are not owned";

  // The established connection speaks the worker protocol: ping -> pong.
  dist::WirePing ping;
  ping.seq = 42;
  std::vector<std::uint8_t> frame =
      dist::encode_frame(dist::MsgType::kPing, dist::encode_ping(ping));
  ASSERT_EQ(est->conn->write_all(frame.data(), frame.size()), frame.size());
  std::vector<std::uint8_t> rbuf = est->leftover;
  std::optional<dist::Frame> pong;
  std::uint8_t chunk[4096];
  while (!(pong = dist::extract_frame(rbuf))) {
    long n = est->conn->read_some(chunk, sizeof chunk);
    ASSERT_GT(n, 0);
    rbuf.insert(rbuf.end(), chunk, chunk + n);
  }
  ASSERT_EQ(pong->type, dist::MsgType::kPong);
  EXPECT_EQ(dist::decode_ping(pong->payload).seq, 42u);

  est->conn->hard_close();  // EOF ends the worker loop
  peer.join();
}

TEST(TcpTransport, RejectsWorkerWithWrongSecret) {
  dist::TcpTransportOptions topts;
  topts.secret = "right-secret";
  dist::TcpTransport transport(topts);
  int port = transport.listen_port();

  std::thread imposter([&] {
    dist::TcpConnectOptions copts;
    copts.secret = "wrong-secret";
    int fd = dist::tcp_attach("127.0.0.1", port, copts);
    if (fd >= 0) {
      // The server closes on auth failure; drain to EOF then leave.
      std::uint8_t chunk[64];
      while (subprocess::read_some(fd, chunk, sizeof chunk) > 0) {
      }
      close(fd);
    }
  });

  std::optional<dist::Established> est = transport.establish(5.0);
  EXPECT_FALSE(est.has_value()) << "wrong secret must be rejected";
  imposter.join();
}

// ---------------------------------------------------------------------
// Fleet supervision.

TEST(TcpFleet, HeartbeatCatchesSilentlyDeadPeer) {
  dist::TcpTransportOptions topts;
  topts.secret = "hb-secret";
  auto transport = std::make_unique<dist::TcpTransport>(topts);
  int port = transport->listen_port();

  // A peer that authenticates and then goes catatonic: never serves, never
  // pongs, never closes. Only a heartbeat can expose it.
  std::atomic<bool> done{false};
  std::thread zombie([&] {
    dist::TcpConnectOptions copts;
    copts.secret = "hb-secret";
    int fd = dist::tcp_attach("127.0.0.1", port, copts);
    while (fd >= 0 && !done.load()) usleep(10'000);
    if (fd >= 0) close(fd);
  });

  dist::CoordinatorOptions co;
  co.num_workers = 1;
  co.heartbeat_timeout_sec = 0.5;
  dist::Coordinator coord(co, std::move(transport));
  ASSERT_EQ(coord.connect_workers(), 1) << "zombie peer failed to attach";
  EXPECT_EQ(coord.heartbeat(0.5), 0) << "silent peer survived a heartbeat";
  dist::CoordinatorStats cs = coord.take_stats();
  EXPECT_GE(cs.heartbeats_missed, 1);
  EXPECT_NE(coord.worker_health(0), dist::WorkerHealth::kHealthy);
  done = true;
  zombie.join();
}

TEST(TcpFleet, HeartbeatConfirmsResponsivePeer) {
  dist::TcpTransportOptions topts;
  topts.secret = "hb2-secret";
  auto transport = std::make_unique<dist::TcpTransport>(topts);
  int port = transport->listen_port();

  std::thread peer([&] {
    dist::TcpConnectOptions copts;
    copts.secret = "hb2-secret";
    int fd = dist::tcp_attach("127.0.0.1", port, copts);
    if (fd < 0) return;
    dist::run_worker(fd, /*send_hello=*/false);
    close(fd);
  });

  {
    dist::CoordinatorOptions co;
    co.num_workers = 1;
    dist::Coordinator coord(co, std::move(transport));
    ASSERT_EQ(coord.connect_workers(), 1);
    EXPECT_EQ(coord.heartbeat(5.0), 1) << "responsive peer was torn down";
    dist::CoordinatorStats cs = coord.take_stats();
    EXPECT_EQ(cs.heartbeats_missed, 0);
    EXPECT_EQ(coord.worker_health(0), dist::WorkerHealth::kHealthy);
    // Scope end: the coordinator's shutdown/close ends the worker loop.
  }
  peer.join();
}

// ---------------------------------------------------------------------
// End-to-end: loopback-TCP processes backend vs threads, bit-identical.

Design random_design(std::uint64_t seed) {
  Rng rng(seed);
  CellArch arch = rng.chance(0.5) ? CellArch::kClosedM1 : CellArch::kOpenM1;
  DesignOptions dopt;
  dopt.scale = 0.25 + 0.25 * rng.uniform_real();
  dopt.utilization = 0.55 + 0.25 * rng.uniform_real();
  dopt.seed = rng.next() | 1;
  Design d = make_design("tiny", arch, dopt);
  GlobalPlaceOptions gp;
  gp.seed = rng.next() | 1;
  global_place(d, gp);
  legalize(d);
  return d;
}

VM1OptOptions equiv_opts(std::uint64_t seed) {
  Rng rng(seed * 6271 + 5);
  VM1OptOptions o;
  int bw = 10 + static_cast<int>(rng.uniform(10));
  int lx = 2 + static_cast<int>(rng.uniform(3));
  int ly = static_cast<int>(rng.uniform(2));
  o.sequence = {ParamSet{bw, 2, lx, ly}};
  o.theta = 0;
  o.max_inner_iters = 2;
  o.threads = 1;
  o.params.alpha = 20 + 40 * rng.uniform_real();
  // Deterministic truncation only: the node limit binds, wall-clock never.
  o.mip.max_nodes = 40;
  o.mip.time_limit_sec = 3600;
  o.mip.lp_options.time_limit_sec = 0;
  return o;
}

struct RunResult {
  std::vector<Placement> placements;
  double objective = 0;
  bool legal = false;
  VM1OptStats stats;
};

RunResult run(std::uint64_t seed, DistBackend backend, DistTransport tr) {
  Design d = random_design(seed);
  VM1OptOptions o = equiv_opts(seed);
  o.backend = backend;
  o.dist_workers = 2;
  o.dist_transport = tr;
  VM1OptStats s = vm1opt(d, o);
  EXPECT_EQ(s.solved + s.fallback_rounding + s.fallback_greedy +
                s.rejected_audit + s.kept + s.faulted + s.skipped,
            s.windows)
      << "outcome buckets must sum to windows (seed " << seed << ")";
  RunResult r;
  r.placements = d.placements();
  r.objective = s.final.value;
  r.legal = is_legal(d);
  r.stats = std::move(s);
  return r;
}

void expect_identical(const RunResult& tcp, const RunResult& thr,
                      std::uint64_t seed) {
  ASSERT_EQ(tcp.placements.size(), thr.placements.size());
  for (std::size_t i = 0; i < tcp.placements.size(); ++i) {
    ASSERT_EQ(tcp.placements[i], thr.placements[i])
        << "seed " << seed << " instance " << i;
  }
  EXPECT_EQ(tcp.objective, thr.objective) << "seed " << seed;
  EXPECT_EQ(tcp.legal, thr.legal) << "seed " << seed;
  EXPECT_TRUE(tcp.legal) << "seed " << seed;
}

TEST(TcpBackendEquiv, LoopbackTcpMatchesThreadsAcrossSeeds) {
  long total_remote = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    RunResult tcp =
        run(seed, DistBackend::kProcesses, DistTransport::kTcp);
    RunResult thr =
        run(seed, DistBackend::kThreads, DistTransport::kSocketpair);
    expect_identical(tcp, thr, seed);
    total_remote += tcp.stats.remote_replies;
    // Without injected faults every window must solve remotely; a silent
    // local fallback would make this suite vacuous.
    EXPECT_EQ(tcp.stats.remote_local_fallbacks, 0) << "seed " << seed;
  }
  EXPECT_GT(total_remote, 0) << "no window was ever solved over TCP";
}

TEST(TcpBackendEquiv, SevenSiteQuarterStormStaysBitIdentical) {
  // All seven transport drills at 25%, over loopback TCP. The reference
  // threads run sees the same config (signatures hash it) but the dist
  // sites never fire there.
  fault::Config fc = fault::parse_spec(
      "worker_kill=0.25,reply_drop=0.25,reply_corrupt=0.25,"
      "connect_timeout=0.25,connect_refused=0.25,partition=0.25,"
      "slow_loris=0.25,seed=23");
  fault::set_config(fc);

  Design dp = random_design(77);
  Design dt = random_design(77);
  VM1OptOptions o = equiv_opts(77);
  o.max_inner_iters = 1;
  // Short solver limit: it never binds on these windows (the node limit
  // does), but it sets the reply-drop deadline, keeping the storm fast.
  o.mip.time_limit_sec = 0.5;
  VM1OptOptions op = o;
  op.backend = DistBackend::kProcesses;
  op.dist_workers = 2;
  op.dist_transport = DistTransport::kTcp;

  VM1OptStats sp = vm1opt(dp, op);
  fault::set_config(fc);  // same config for the reference signatures
  VM1OptStats st = vm1opt(dt, o);
  fault::set_config(fault::Config{});

  EXPECT_EQ(sp.solved + sp.fallback_rounding + sp.fallback_greedy +
                sp.rejected_audit + sp.kept + sp.faulted + sp.skipped,
            sp.windows);
  EXPECT_EQ(sp.windows, st.windows);
  // Timing-invariant storm proof: faults_scheduled is a census taken at
  // dispatch time — for every (job, site) pair it counts should_fire(),
  // a pure function of the fault config seed and the window keys. The
  // previously asserted retry/fallback counters depend on *when* each
  // drill lands relative to socket deadlines and were flaky on slow or
  // loaded hosts; the census is identical on every run of this seed.
  EXPECT_GT(sp.remote_faults_scheduled, 0)
      << "the storm never scheduled a single drill";
  ASSERT_EQ(dp.placements().size(), dt.placements().size());
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.final.value, st.final.value);
  EXPECT_TRUE(is_legal(dp));
}

TEST(TcpFleet, KillStormQuarantinesAndDegradesToLocalBitIdentically) {
  // Every request kills its worker: the fleet must walk
  // healthy -> suspect -> quarantined, stop re-dispatching into the
  // grinder, and finish the pass locally with the identical answer.
  fault::Config fc = fault::parse_spec("worker_kill=1.0,seed=3");
  fault::set_config(fc);

  Design dp = random_design(301);
  Design dt = random_design(301);
  VM1OptOptions o = equiv_opts(301);
  o.max_inner_iters = 1;
  o.mip.time_limit_sec = 0.5;
  VM1OptOptions op = o;
  op.backend = DistBackend::kProcesses;
  op.dist_workers = 2;
  op.dist_transport = DistTransport::kTcp;

  VM1OptStats sp = vm1opt(dp, op);
  fault::set_config(fc);
  VM1OptStats st = vm1opt(dt, o);
  fault::set_config(fault::Config{});

  EXPECT_EQ(sp.remote_replies, 0) << "a killed worker somehow replied";
  EXPECT_GT(sp.remote_local_fallbacks, 0);
  EXPECT_GT(sp.worker_restarts, 0);
  ASSERT_EQ(dp.placements().size(), dt.placements().size());
  for (std::size_t i = 0; i < dp.placements().size(); ++i) {
    EXPECT_EQ(dp.placements()[i], dt.placements()[i]) << "instance " << i;
  }
  EXPECT_EQ(sp.final.value, st.final.value);
}

}  // namespace
}  // namespace vm1
