#include "tech/tech.h"

#include <gtest/gtest.h>

namespace vm1 {
namespace {

TEST(Tech, Default7nmStack) {
  Tech t = Tech::make_7nm();
  EXPECT_EQ(t.site_width(), 1);
  EXPECT_EQ(t.row_height(), 15);
  EXPECT_EQ(t.num_layers(), 5);
  EXPECT_EQ(t.layer(LayerId::kM1).dir, Dir::kVertical);
  EXPECT_EQ(t.layer(LayerId::kM2).dir, Dir::kHorizontal);
  EXPECT_EQ(t.layer(LayerId::kM3).dir, Dir::kVertical);
}

TEST(Tech, M1PitchEqualsSiteWidth) {
  // The ClosedM1 enabling property from Section 1.1 of the paper.
  Tech t = Tech::make_7nm();
  EXPECT_EQ(t.layer(LayerId::kM1).pitch, t.site_width());
}

TEST(Tech, ResistanceDecreasesGoingUp) {
  Tech t = Tech::make_7nm();
  for (int l = 1; l < t.num_layers(); ++l) {
    EXPECT_LE(t.layers()[l].r_per_dbu, t.layers()[l - 1].r_per_dbu);
  }
}

TEST(Tech, GammaDeltaDefaults) {
  Tech t = Tech::make_7nm();
  EXPECT_EQ(t.gamma(), 3);  // paper's choice
  EXPECT_EQ(t.delta(), 1);
  t.set_gamma(2);
  t.set_delta(3);
  EXPECT_EQ(t.gamma(), 2);
  EXPECT_EQ(t.delta(), 3);
}

TEST(Tech, ViaParasitics) {
  Tech t = Tech::make_7nm();
  for (int l = 0; l < 4; ++l) {
    EXPECT_GT(t.via_resistance(l), 0);
    EXPECT_GT(t.via_capacitance(l), 0);
  }
}

TEST(Tech, ArchNames) {
  EXPECT_STREQ(to_string(CellArch::kClosedM1), "ClosedM1");
  EXPECT_STREQ(to_string(CellArch::kOpenM1), "OpenM1");
  EXPECT_STREQ(to_string(CellArch::kConventional12T), "Conventional12T");
}

}  // namespace
}  // namespace vm1
