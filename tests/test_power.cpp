#include "timing/power.h"

#include <gtest/gtest.h>

#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

Design placed() {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  return d;
}

TEST(Power, PositiveComponents) {
  Design d = placed();
  PowerResult p = compute_power(d);
  EXPECT_GT(p.dynamic_mw, 0);
  EXPECT_GT(p.leakage_mw, 0);
  EXPECT_NEAR(p.total_mw(), p.dynamic_mw + p.leakage_mw, 1e-12);
}

TEST(Power, ShorterNetsLowerDynamicPower) {
  Design d = placed();
  PowerOptions with_routes;
  with_routes.net_lengths.assign(d.netlist().num_nets(), 10);
  PowerOptions longer;
  longer.net_lengths.assign(d.netlist().num_nets(), 50);
  EXPECT_LT(compute_power(d, with_routes).dynamic_mw,
            compute_power(d, longer).dynamic_mw);
}

TEST(Power, ActivityScalesDynamic) {
  Design d = placed();
  PowerOptions lo, hi;
  lo.activity = 0.1;
  hi.activity = 0.3;
  double pl = compute_power(d, lo).dynamic_mw;
  double ph = compute_power(d, hi).dynamic_mw;
  EXPECT_GT(ph, pl);
  // Clock nets toggle at activity 1.0 in both, so the ratio is below 3.
  EXPECT_LT(ph / pl, 3.0 + 1e-9);
}

TEST(Power, VddQuadratic) {
  Design d = placed();
  PowerOptions v1, v2;
  v1.vdd = 0.7;
  v2.vdd = 1.4;
  EXPECT_NEAR(compute_power(d, v2).dynamic_mw,
              4 * compute_power(d, v1).dynamic_mw, 1e-9);
}

TEST(Power, LeakageIndependentOfRouting) {
  Design d = placed();
  PowerOptions a, b;
  a.net_lengths.assign(d.netlist().num_nets(), 10);
  b.net_lengths.assign(d.netlist().num_nets(), 99);
  EXPECT_DOUBLE_EQ(compute_power(d, a).leakage_mw,
                   compute_power(d, b).leakage_mw);
}

}  // namespace
}  // namespace vm1
