#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "cells/library_builder.h"

namespace vm1 {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(build_library(CellArch::kClosedM1)), nl_(&lib_) {}
  Library lib_;
  Netlist nl_;
};

TEST_F(NetlistTest, AddInstanceAndLookup) {
  int inv = lib_.find("INV_X1_SVT");
  int u0 = nl_.add_instance("u0", inv);
  EXPECT_EQ(u0, 0);
  EXPECT_EQ(nl_.num_instances(), 1);
  EXPECT_EQ(nl_.instance(u0).name, "u0");
  EXPECT_EQ(&nl_.cell_of(u0), &lib_.cell(inv));
}

TEST_F(NetlistTest, ConnectTracksBothDirections) {
  int inv = lib_.find("INV_X1_SVT");
  int u0 = nl_.add_instance("u0", inv);
  int u1 = nl_.add_instance("u1", inv);
  int n = nl_.add_net("n0");
  const Cell& c = lib_.cell(inv);
  nl_.connect(n, NetPin{u0, c.pin_index("ZN")});
  nl_.connect(n, NetPin{u1, c.pin_index("A")});
  EXPECT_EQ(nl_.net(n).num_pins(), 2);
  EXPECT_EQ(nl_.net_at(u0, c.pin_index("ZN")), n);
  EXPECT_EQ(nl_.net_at(u1, c.pin_index("A")), n);
  EXPECT_EQ(nl_.net_at(u1, c.pin_index("ZN")), -1);
}

TEST_F(NetlistTest, NetsOfInstanceIsDeduplicated) {
  // The per-instance net index feeds the incremental engine's dirtiness
  // propagation: it must list each incident net exactly once, even when an
  // instance has several pins on the same net, and stay empty for
  // unconnected instances.
  int nand = lib_.find("NAND2_X1_SVT");
  int u0 = nl_.add_instance("u0", nand);
  int u1 = nl_.add_instance("u1", nand);
  const Cell& c = lib_.cell(nand);
  int n0 = nl_.add_net("n0");
  int n1 = nl_.add_net("n1");
  nl_.connect(n0, NetPin{u0, c.pin_index("A1")});
  nl_.connect(n0, NetPin{u0, c.pin_index("A2")});  // same net twice
  nl_.connect(n1, NetPin{u0, c.pin_index("ZN")});
  EXPECT_EQ(nl_.nets_of(u0), (std::vector<int>{n0, n1}));
  EXPECT_TRUE(nl_.nets_of(u1).empty());
}

TEST_F(NetlistTest, IoTerminalsInNets) {
  int inv = lib_.find("INV_X1_SVT");
  int u0 = nl_.add_instance("u0", inv);
  int pi = nl_.add_io("in0", true);
  int n = nl_.add_net("n0");
  nl_.connect(n, NetPin{-1, pi});
  nl_.connect(n, NetPin{u0, lib_.cell(inv).pin_index("A")});
  EXPECT_TRUE(nl_.net(n).pins[0].is_io());
  EXPECT_TRUE(nl_.net(n).routable());
}

TEST_F(NetlistTest, RoutableRequiresTwoPins) {
  int inv = lib_.find("INV_X1_SVT");
  int u0 = nl_.add_instance("u0", inv);
  int n = nl_.add_net("n0");
  EXPECT_FALSE(nl_.net(n).routable());
  nl_.connect(n, NetPin{u0, lib_.cell(inv).pin_index("ZN")});
  EXPECT_FALSE(nl_.net(n).routable());
}

TEST_F(NetlistTest, TotalSitesExcludesFillers) {
  int inv = lib_.find("INV_X1_SVT");  // width 3
  int fill = lib_.find("FILL4");
  nl_.add_instance("u0", inv);
  nl_.add_instance("u1", inv);
  nl_.add_instance("f0", fill);
  EXPECT_EQ(nl_.total_sites(), 6);
}

TEST_F(NetlistTest, ValidateCleanNetlist) {
  int inv = lib_.find("INV_X1_SVT");
  int u0 = nl_.add_instance("u0", inv);
  int u1 = nl_.add_instance("u1", inv);
  int pi = nl_.add_io("in", true);
  const Cell& c = lib_.cell(inv);
  int n0 = nl_.add_net("n0");
  nl_.connect(n0, NetPin{-1, pi});
  nl_.connect(n0, NetPin{u0, c.pin_index("A")});
  int n1 = nl_.add_net("n1");
  nl_.connect(n1, NetPin{u0, c.pin_index("ZN")});
  nl_.connect(n1, NetPin{u1, c.pin_index("A")});
  int n2 = nl_.add_net("n2");
  nl_.connect(n2, NetPin{u1, c.pin_index("ZN")});
  int po = nl_.add_io("out", false);
  nl_.connect(n2, NetPin{-1, po});
  EXPECT_TRUE(nl_.validate().empty());
}

TEST_F(NetlistTest, ValidateFlagsMultipleDrivers) {
  int inv = lib_.find("INV_X1_SVT");
  int u0 = nl_.add_instance("u0", inv);
  int u1 = nl_.add_instance("u1", inv);
  const Cell& c = lib_.cell(inv);
  int n = nl_.add_net("n");
  nl_.connect(n, NetPin{u0, c.pin_index("ZN")});
  nl_.connect(n, NetPin{u1, c.pin_index("ZN")});
  auto problems = nl_.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("multiple drivers"), std::string::npos);
}

TEST_F(NetlistTest, ValidateFlagsUnconnectedInput) {
  int inv = lib_.find("INV_X1_SVT");
  nl_.add_instance("u0", inv);
  auto problems = nl_.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unconnected"), std::string::npos);
}

}  // namespace
}  // namespace vm1
