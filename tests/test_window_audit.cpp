#include "core/window_audit.h"

#include <gtest/gtest.h>

#include "core/window.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

struct AuditFixture {
  Design d = make_design("tiny", CellArch::kClosedM1);
  Window win;
  std::vector<int> insts;
  std::vector<Placement> before;

  AuditFixture() {
    global_place(d);
    legalize(d);
    // Pick the most populated window of a coarse grid so the overlap and
    // displacement checks have real cells to work with.
    WindowGrid grid = partition_windows(d, 0, 0, 16, 2);
    std::size_t best = 0;
    for (std::size_t i = 0; i < grid.movable.size(); ++i) {
      if (grid.movable[i].size() > grid.movable[best].size()) best = i;
    }
    win = grid.windows[best];
    insts = grid.movable[best];
    for (int i : insts) before.push_back(d.placement(i));
  }
};

TEST(WindowAudit, CleanPlacementPasses) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 2u);
  WindowAuditResult r = audit_window_placement(f.d, f.win, f.insts, f.before,
                                               3, 1, true, true);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(WindowAudit, DetectsOverlap) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 2u);
  // Stack the second cell on top of the first.
  f.d.set_placement(f.insts[1], f.d.placement(f.insts[0]));
  WindowAuditResult r = audit_window_placement(f.d, f.win, f.insts, f.before,
                                               16, 2, true, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("overlap"), std::string::npos) << r.violation;
}

TEST(WindowAudit, DetectsDisplacementBeyondBounds) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 1u);
  Placement p = f.before[0];
  p.x += 5;  // beyond lx = 3 (may also escape the window; bounds check
             // runs only if the footprint stays inside)
  f.d.set_placement(f.insts[0], p);
  WindowAuditResult r = audit_window_placement(f.d, f.win, f.insts, f.before,
                                               3, 1, true, true);
  EXPECT_FALSE(r.ok);
}

TEST(WindowAudit, DetectsWindowEscape) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 1u);
  Placement p = f.before[0];
  p.x = f.win.x1;  // first site past the right edge
  f.d.set_placement(f.insts[0], p);
  WindowAuditResult r = audit_window_placement(
      f.d, f.win, f.insts, f.before, 1000, 1000, true, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("window"), std::string::npos) << r.violation;
}

TEST(WindowAudit, DetectsMoveInFlipOnlyPass) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 1u);
  Placement p = f.before[0];
  p.x += 1;
  f.d.set_placement(f.insts[0], p);
  WindowAuditResult r = audit_window_placement(f.d, f.win, f.insts, f.before,
                                               3, 1, /*allow_move=*/false,
                                               true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("flip-only"), std::string::npos) << r.violation;
}

TEST(WindowAudit, DetectsFlipInMoveOnlyPass) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 1u);
  Placement p = f.before[0];
  p.flipped = !p.flipped;
  f.d.set_placement(f.insts[0], p);
  WindowAuditResult r = audit_window_placement(f.d, f.win, f.insts, f.before,
                                               3, 1, true,
                                               /*allow_flip=*/false);
  EXPECT_FALSE(r.ok);
}

TEST(WindowAudit, FlipAloneIsLegalWhenAllowed) {
  AuditFixture f;
  ASSERT_GE(f.insts.size(), 1u);
  Placement p = f.before[0];
  p.flipped = !p.flipped;
  f.d.set_placement(f.insts[0], p);
  WindowAuditResult r = audit_window_placement(f.d, f.win, f.insts, f.before,
                                               0, 0, false, true);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(WindowAudit, DetectsCollisionWithFixedCell) {
  AuditFixture f;
  // Treat all but the first instance as fixed: moving the audited cell onto
  // an occupied site (while its footprint stays inside the window) must
  // collide with "fixed" occupancy.
  ASSERT_GE(f.insts.size(), 2u);
  const int inst = f.insts[0];
  const int w = f.d.netlist().cell_of(inst).width_sites;
  int target = -1;
  for (std::size_t k = 1; k < f.insts.size(); ++k) {
    const Placement& t = f.d.placement(f.insts[k]);
    if (f.win.contains_footprint(t.x, t.row, w)) {
      target = f.insts[k];
      break;
    }
  }
  ASSERT_GE(target, 0) << "no in-window landing spot among fixed cells";
  std::vector<int> audited = {inst};
  std::vector<Placement> before = {f.before[0]};
  f.d.set_placement(inst, f.d.placement(target));
  WindowAuditResult r = audit_window_placement(
      f.d, f.win, audited, before, 1000, 1000, true, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("overlap"), std::string::npos) << r.violation;
}

}  // namespace
}  // namespace vm1
