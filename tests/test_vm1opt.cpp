#include "core/vm1opt.h"

#include <gtest/gtest.h>

#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

Design placed(CellArch arch = CellArch::kClosedM1) {
  Design d = make_design("tiny", arch);
  global_place(d);
  legalize(d);
  return d;
}

VM1OptOptions fast_opts() {
  VM1OptOptions o;
  o.sequence = {ParamSet{16, 2, 3, 1}};
  o.max_inner_iters = 2;
  o.threads = 2;
  o.mip.max_nodes = 60;
  o.mip.time_limit_sec = 2.0;
  return o;
}

TEST(VM1Opt, ObjectiveMonotoneNonIncreasing) {
  Design d = placed();
  VM1OptStats stats = vm1opt(d, fast_opts());
  EXPECT_LE(stats.final.value, stats.initial.value + 1e-6);
  for (std::size_t i = 1; i < stats.objective_trajectory.size(); ++i) {
    EXPECT_LE(stats.objective_trajectory[i],
              stats.objective_trajectory[i - 1] + 1e-6)
        << "iteration " << i;
  }
}

TEST(VM1Opt, PreservesLegality) {
  Design d = placed();
  vm1opt(d, fast_opts());
  EXPECT_TRUE(is_legal(d));
}

TEST(VM1Opt, AlignmentsIncreaseOnClosedM1) {
  Design d = placed();
  VM1OptOptions opts = fast_opts();
  opts.params.alpha = 40;
  VM1OptStats stats = vm1opt(d, opts);
  EXPECT_GE(stats.final.alignments, stats.initial.alignments);
}

TEST(VM1Opt, OverlapsIncreaseOnOpenM1) {
  Design d = placed(CellArch::kOpenM1);
  VM1OptOptions opts = fast_opts();
  opts.params.alpha = 30;
  opts.params.epsilon = 2;
  VM1OptStats stats = vm1opt(d, opts);
  EXPECT_GE(stats.final.alignments, stats.initial.alignments);
}

TEST(VM1Opt, MultiSetSequenceRuns) {
  Design d = placed();
  VM1OptOptions opts = fast_opts();
  opts.sequence = {ParamSet{10, 2, 3, 1}, ParamSet{16, 2, 3, 0}};
  VM1OptStats stats = vm1opt(d, opts);
  EXPECT_GE(stats.outer_iterations, 2);
  EXPECT_LE(stats.final.value, stats.initial.value + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(VM1Opt, ThetaStopsIteration) {
  Design d = placed();
  VM1OptOptions opts = fast_opts();
  opts.theta = 1e9;  // impossible improvement requirement: one pass only
  opts.max_inner_iters = 5;
  VM1OptStats stats = vm1opt(d, opts);
  EXPECT_EQ(stats.outer_iterations, 1);
}

TEST(VM1Opt, ParamSetDerivedRows) {
  ParamSet p{20, 0, 4, 1};
  EXPECT_EQ(p.rows(), 3);
  ParamSet q{40, 0, 4, 1};
  EXPECT_EQ(q.rows(), 6);
  ParamSet r{5, 0, 2, 1};
  EXPECT_EQ(r.rows(), 2);
  ParamSet s{20, 7, 4, 1};
  EXPECT_EQ(s.rows(), 7);  // explicit override wins
}

TEST(VM1Opt, HigherAlphaNeverFewerAlignments) {
  Design d_lo = placed();
  Design d_hi = placed();
  VM1OptOptions lo = fast_opts(), hi = fast_opts();
  lo.params.alpha = 1;
  hi.params.alpha = 80;
  VM1OptStats sl = vm1opt(d_lo, lo);
  VM1OptStats sh = vm1opt(d_hi, hi);
  // Not strictly guaranteed per-instance, but with identical inputs and a
  // 80x alpha gap the high-alpha run must not lose alignments.
  EXPECT_GE(sh.final.alignments, sl.final.alignments);
}

}  // namespace
}  // namespace vm1
