#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dist_opt.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/logging.h"

namespace vm1 {
namespace {

// ---------------------------------------------------------------- metrics

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c;
  const int kThreads = 8;
  const long kAdds = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (long i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(ObsCounter, BulkAddAndReset) {
  obs::Counter c;
  c.add(5);
  c.add(37);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsGauge, LastWriteWins) {
  obs::Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(ObsHistogram, BasicStats) {
  obs::Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.observe(v);
  obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  // Log-scale buckets resolve ~19%; quantiles must land in range and be
  // ordered.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(ObsHistogram, QuantileAccuracyWithinBucketResolution) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(1e-3);  // 1ms latencies
  obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  // All mass in one bucket: every quantile within one sub-bucket (2^(1/4)).
  EXPECT_NEAR(s.p50, 1e-3, 1e-3 * 0.2);
  EXPECT_NEAR(s.p99, 1e-3, 1e-3 * 0.2);
}

TEST(ObsHistogram, ConcurrentObserveCountsEverySample) {
  obs::Histogram h;
  const int kThreads = 8;
  const int kSamples = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kSamples; ++i) {
        h.observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kSamples);
}

TEST(ObsHistogram, NonPositiveValuesLandInFirstBucket) {
  obs::Histogram h;
  h.observe(0.0);
  h.observe(-3.0);
  obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
}

TEST(ObsRegistry, SameNameSameObject) {
  obs::Counter& a = obs::counter("test.registry.same");
  obs::Counter& b = obs::counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = obs::gauge("test.registry.same");  // separate namespace
  obs::Gauge& g2 = obs::gauge("test.registry.same");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, ResetKeepsHandlesValid) {
  obs::Counter& c = obs::counter("test.registry.reset");
  c.add(7);
  obs::reset_metrics();
  EXPECT_EQ(c.value(), 0);
  c.add(3);
  EXPECT_EQ(c.value(), 3);
  EXPECT_EQ(&c, &obs::counter("test.registry.reset"));
}

TEST(ObsRegistry, SnapshotContainsRegisteredMetrics) {
  obs::counter("test.snapshot.counter").add(11);
  obs::gauge("test.snapshot.gauge").set(2.5);
  obs::histogram("test.snapshot.hist").observe(0.5);
  obs::MetricsSnapshot s = obs::snapshot_metrics();
  bool found_c = false, found_g = false, found_h = false;
  for (const auto& [name, v] : s.counters) {
    if (name == "test.snapshot.counter") {
      found_c = true;
      EXPECT_GE(v, 11);
    }
  }
  for (const auto& [name, v] : s.gauges) {
    if (name == "test.snapshot.gauge") {
      found_g = true;
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  }
  for (const auto& [name, h] : s.histograms) {
    if (name == "test.snapshot.hist") {
      found_h = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(found_c);
  EXPECT_TRUE(found_g);
  EXPECT_TRUE(found_h);
}

TEST(ObsScopedTimer, ObservesOnDestruction) {
  obs::Histogram h;
  { obs::ScopedTimer t(h); }
  obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LT(s.max, 10.0);  // a no-op scope is far under 10 seconds
}

// ----------------------------------------------------------------- trace

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal structural JSON check: quotes/escapes respected, braces and
/// brackets balanced and properly nested, non-empty. Not a full parser,
/// but catches truncation, stray commas in strings, and unbalanced output.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && !escaped && stack.empty() && !s.empty();
}

long count_occurrences(const std::string& hay, const std::string& needle) {
  long n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique: the same tests run in the tier1 and concurrency
    // binaries, which a parallel ctest schedules concurrently.
    path_ = ::testing::TempDir() + "obs_trace_test." +
            std::to_string(::getpid()) + ".json";
  }
  void TearDown() override {
    obs::trace_stop();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(TraceFileTest, DisabledSpansAreNoOps) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    obs::ObsSpan span("test.disabled");
    span.arg("k", 1);
  }
  obs::trace_instant("test.disabled_instant");
  obs::trace_stop();  // no session: must not create a file
  std::ifstream in(path_);
  EXPECT_FALSE(in.good());
}

TEST_F(TraceFileTest, WritesWellFormedJsonWithArgs) {
  obs::trace_start(path_);
  {
    obs::ObsSpan span("test.span");
    span.arg("number", 42).arg("text", "hello \"quoted\"");
  }
  obs::trace_instant("test.instant", "objective", 1.5);
  obs::trace_stop();

  std::string j = slurp(path_);
  EXPECT_TRUE(json_well_formed(j)) << j;
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"test.span\""), std::string::npos);
  EXPECT_NE(j.find("\"number\":42"), std::string::npos);
  EXPECT_NE(j.find("hello \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(j.find("\"test.instant\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(j.find("\"dropped_events\": 0"), std::string::npos);
}

TEST_F(TraceFileTest, RingWrapsKeepingNewestAndReportsDropped) {
  const std::size_t kCap = 8;
  const int kEmit = 20;
  obs::trace_start(path_, kCap);
  for (int i = 0; i < kEmit; ++i) {
    obs::ObsSpan span("test.wrap");
    span.arg("i", i);
  }
  obs::trace_stop();

  std::string j = slurp(path_);
  EXPECT_TRUE(json_well_formed(j)) << j;
  // Exactly kCap events survive (all from this thread), newest last.
  EXPECT_EQ(count_occurrences(j, "\"test.wrap\""), static_cast<long>(kCap));
  EXPECT_NE(j.find("\"dropped_events\": 12"), std::string::npos);
  EXPECT_NE(j.find("\"i\":19}"), std::string::npos);  // newest kept
  EXPECT_EQ(j.find("\"i\":3}"), std::string::npos);   // oldest dropped
}

TEST_F(TraceFileTest, RestartFlushesPreviousSession) {
  std::string path2 = ::testing::TempDir() + "obs_trace_test2." +
                      std::to_string(::getpid()) + ".json";
  obs::trace_start(path_);
  { obs::ObsSpan span("test.first"); }
  obs::trace_start(path2);  // implicit stop + flush of session one
  { obs::ObsSpan span("test.second"); }
  obs::trace_stop();

  std::string j1 = slurp(path_);
  std::string j2 = slurp(path2);
  EXPECT_NE(j1.find("test.first"), std::string::npos);
  EXPECT_EQ(j1.find("test.second"), std::string::npos);
  EXPECT_NE(j2.find("test.second"), std::string::npos);
  EXPECT_EQ(j2.find("test.first"), std::string::npos);
  std::remove(path2.c_str());
}

TEST_F(TraceFileTest, MultiThreadedSpansAllExported) {
  obs::trace_start(path_);
  const int kThreads = 4;
  const int kSpansPer = 10;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kSpansPer; ++i) {
        obs::ObsSpan span("test.mt");
      }
    });
  }
  for (auto& t : ts) t.join();
  obs::trace_stop();

  std::string j = slurp(path_);
  EXPECT_TRUE(json_well_formed(j)) << j;
  EXPECT_EQ(count_occurrences(j, "\"test.mt\""),
            static_cast<long>(kThreads) * kSpansPer);
}

// ---------------------------------------------------- solver integration

TEST_F(TraceFileTest, DistOptEmitsOutcomeTaggedWindowSpans) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  DistOptOptions o;
  o.bw = 16;
  o.bh = 2;
  o.lx = 3;
  o.ly = 1;
  o.mip.max_nodes = 60;
  o.mip.time_limit_sec = 2.0;

  obs::Histogram& h = obs::histogram("dist_opt.window_solve_sec");
  std::uint64_t solves_before = h.snapshot().count;

  obs::trace_start(path_);
  DistOptStats stats = dist_opt(d, o, nullptr);
  obs::trace_stop();
  ASSERT_GT(stats.windows, 0);

  std::string j = slurp(path_);
  EXPECT_TRUE(json_well_formed(j)) << j;
  EXPECT_NE(j.find("\"dist_opt.pass\""), std::string::npos);
  EXPECT_NE(j.find("\"dist_opt.window_solve\""), std::string::npos);
  EXPECT_NE(j.find("\"dist_opt.window_apply\""), std::string::npos);
  EXPECT_NE(j.find("\"outcome\""), std::string::npos);
  EXPECT_NE(j.find("\"milp.solve\""), std::string::npos);

  // Every counted window carries an outcome tag from the taxonomy.
  long tagged = 0;
  for (const char* name :
       {"\"solved\"", "\"fallback_rounding\"", "\"fallback_greedy\"",
        "\"rejected_audit\"", "\"kept\"", "\"faulted\""}) {
    tagged += count_occurrences(j, name);
  }
  EXPECT_GE(tagged, stats.windows);

  // The latency histogram required by the bench JSON saw this pass.
  EXPECT_GT(h.snapshot().count, solves_before);
  // And the registry outcome counters agree with the struct view in total.
  obs::MetricsSnapshot snap = obs::snapshot_metrics();
  long outcome_total = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("dist_opt.outcome.", 0) == 0) outcome_total += v;
  }
  EXPECT_GE(outcome_total, stats.windows);
}

// -------------------------------------------------------------- progress

TEST(ObsProgress, EmitsThroughLogSinkWithEtaAndObjective) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });
  {
    obs::ProgressReporter p("unit_test", 4, /*interval_sec=*/0.0);
    p.update_objective(100.0);
    p.advance();
    p.update_objective(90.0);
    p.advance(3);
    p.finish();
  }
  set_log_sink(nullptr);

  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("unit_test: 1/4"), std::string::npos);
  EXPECT_NE(lines[0].find("objective 100"), std::string::npos);
  bool saw_final = false;
  for (const std::string& l : lines) {
    if (l.find("4/4 (100%)") != std::string::npos) saw_final = true;
  }
  EXPECT_TRUE(saw_final);
}

TEST(ObsProgress, QuietWhenIntervalNotElapsed) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });
  {
    obs::ProgressReporter p("quiet_test", 100, /*interval_sec=*/3600.0);
    for (int i = 0; i < 100; ++i) p.advance();
  }  // destructor finish(): nothing was emitted, so it stays silent
  set_log_sink(nullptr);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.find("quiet_test"), std::string::npos) << l;
  }
}

TEST(ObsProgress, OpenEndedModeReportsSteps) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });
  {
    obs::ProgressReporter p("steps_test", 0, /*interval_sec=*/0.0);
    p.advance();
    p.advance();
  }
  set_log_sink(nullptr);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("steps"), std::string::npos);
}

}  // namespace
}  // namespace vm1
