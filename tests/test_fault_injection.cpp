#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/vm1opt.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

/// Restores the process-wide fault config on scope exit so tests cannot
/// leak injected failures into each other.
struct FaultGuard {
  fault::Config saved = fault::config();
  ~FaultGuard() { fault::set_config(saved); }
};

fault::Config all_sites(double rate, std::uint64_t seed = 7) {
  fault::Config cfg;
  for (double& r : cfg.rate) r = rate;
  cfg.seed = seed;
  return cfg;
}

fault::Config one_site(fault::Site s, double rate, std::uint64_t seed = 7) {
  fault::Config cfg;
  cfg.rate[static_cast<int>(s)] = rate;
  cfg.seed = seed;
  return cfg;
}

Design placed(CellArch arch = CellArch::kClosedM1) {
  Design d = make_design("tiny", arch);
  global_place(d);
  legalize(d);
  return d;
}

DistOptOptions fast_opts() {
  DistOptOptions o;
  o.bw = 16;
  o.bh = 2;
  o.lx = 3;
  o.ly = 1;
  o.mip.max_nodes = 60;
  o.mip.time_limit_sec = 2.0;
  return o;
}

// --- Config / spec parsing --------------------------------------------------

TEST(FaultConfig, ParseSpecRateAndSeed) {
  fault::Config cfg = fault::parse_spec("rate=0.25,seed=99");
  for (double r : cfg.rate) EXPECT_DOUBLE_EQ(r, 0.25);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultConfig, ParseSpecPerSiteOverride) {
  fault::Config cfg =
      fault::parse_spec("no_solution=0.5,apply_throw=0.125");
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kNoSolution)], 0.5);
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kApplyThrow)],
                   0.125);
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kBuildThrow)], 0.0);
}

TEST(FaultConfig, ParseSpecKnowsDistTransportSites) {
  // The four transport drills of the distributed backend (src/dist) parse
  // like any solver site and land on their own Site slots.
  fault::Config cfg = fault::parse_spec(
      "worker_kill=0.25,reply_drop=0.5,reply_corrupt=0.125,"
      "connect_timeout=0.0625");
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kWorkerKill)],
                   0.25);
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kReplyDrop)], 0.5);
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kReplyCorrupt)],
                   0.125);
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kConnectTimeout)],
                   0.0625);
  EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(fault::Site::kBuildThrow)], 0.0);
  EXPECT_TRUE(cfg.enabled());
  EXPECT_STREQ(fault::to_string(fault::Site::kWorkerKill), "worker_kill");
  EXPECT_STREQ(fault::to_string(fault::Site::kConnectTimeout),
               "connect_timeout");
}

TEST(FaultConfig, ParseSpecRejectsMalformedInput) {
  EXPECT_THROW(fault::parse_spec("bogus_site=0.5"), std::invalid_argument);
  EXPECT_THROW(fault::parse_spec("rate=1.5"), std::invalid_argument);
  EXPECT_THROW(fault::parse_spec("rate=-0.1"), std::invalid_argument);
  EXPECT_THROW(fault::parse_spec("rate"), std::invalid_argument);
  EXPECT_THROW(fault::parse_spec("rate=abc"), std::invalid_argument);
  EXPECT_THROW(fault::parse_spec("seed=xyz"), std::invalid_argument);
}

TEST(FaultConfig, EmptySpecDisabled) {
  fault::Config cfg = fault::parse_spec("");
  EXPECT_FALSE(cfg.enabled());
}

TEST(FaultInjection, ShouldFireIsDeterministicAndSeedKeyed) {
  FaultGuard guard;
  fault::set_config(all_sites(0.5, 123));
  for (std::uint64_t key = 0; key < 64; ++key) {
    bool first = fault::should_fire(fault::Site::kNoSolution, key);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(fault::should_fire(fault::Site::kNoSolution, key), first);
    }
  }
  // A different seed must produce a different schedule on some key.
  std::vector<bool> a, b;
  fault::set_config(all_sites(0.5, 123));
  for (std::uint64_t key = 0; key < 64; ++key) {
    a.push_back(fault::should_fire(fault::Site::kApplyThrow, key));
  }
  fault::set_config(all_sites(0.5, 456));
  for (std::uint64_t key = 0; key < 64; ++key) {
    b.push_back(fault::should_fire(fault::Site::kApplyThrow, key));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjection, RateZeroNeverFiresRateOneAlwaysFires) {
  FaultGuard guard;
  fault::set_config(all_sites(0.0));
  for (std::uint64_t key = 0; key < 32; ++key) {
    EXPECT_FALSE(fault::should_fire(fault::Site::kBuildThrow, key));
  }
  fault::set_config(all_sites(1.0));
  for (std::uint64_t key = 0; key < 32; ++key) {
    EXPECT_TRUE(fault::should_fire(fault::Site::kBuildThrow, key));
  }
}

TEST(FaultInjection, EmpiricalRateTracksConfiguredRate) {
  FaultGuard guard;
  fault::set_config(all_sites(0.3, 2026));
  int fired = 0;
  const int n = 4000;
  for (std::uint64_t key = 0; key < n; ++key) {
    fired += fault::should_fire(fault::Site::kLpTimeout, key) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.3, 0.05);
}

TEST(FaultInjection, MaybeThrowRaisesInjectedFault) {
  FaultGuard guard;
  fault::set_config(all_sites(1.0));
  EXPECT_THROW(fault::maybe_throw(fault::Site::kApplyThrow, 1),
               fault::InjectedFault);
  fault::set_config(all_sites(0.0));
  EXPECT_NO_THROW(fault::maybe_throw(fault::Site::kApplyThrow, 1));
}

// --- DistOpt degradation paths ----------------------------------------------

TEST(FaultedDistOpt, NoSolutionFaultDegradesToFallbacks) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kNoSolution, 1.0));
  Design d = placed();
  DistOptOptions opts = fast_opts();
  double before = evaluate_objective(d, opts.params).value;
  DistOptStats s = dist_opt(d, opts, nullptr);
  EXPECT_GT(s.windows, 0);
  EXPECT_EQ(s.outcome_total(), s.windows);
  EXPECT_EQ(s.solved, 0);  // every MILP answer was discarded
  EXPECT_GT(s.fallback_rounding + s.fallback_greedy + s.kept, 0);
  EXPECT_GT(s.faults_injected, 0);
  EXPECT_LE(s.objective, before + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(FaultedDistOpt, NanObjectiveFaultNeverCorrupts) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kNanObjective, 1.0));
  Design d = placed();
  DistOptOptions opts = fast_opts();
  double before = evaluate_objective(d, opts.params).value;
  DistOptStats s = dist_opt(d, opts, nullptr);
  EXPECT_EQ(s.outcome_total(), s.windows);
  EXPECT_EQ(s.solved, 0);
  EXPECT_LE(s.objective, before + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(FaultedDistOpt, BuildThrowFaultClassifiedAndHarmless) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kBuildThrow, 1.0));
  Design d = placed();
  std::vector<Placement> snap = d.placements();
  DistOptStats s = dist_opt(d, fast_opts(), nullptr);
  EXPECT_GT(s.windows, 0);
  EXPECT_EQ(s.faulted, s.windows);  // every window threw in build
  EXPECT_EQ(s.outcome_total(), s.windows);
  // Nothing was ever applied: the layout is bit-identical.
  EXPECT_EQ(d.placements(), snap);
}

TEST(FaultedDistOpt, ApplyThrowRollsBackAndContinues) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kApplyThrow, 1.0));
  Design d = placed();
  std::vector<Placement> snap = d.placements();
  DistOptStats s = dist_opt(d, fast_opts(), nullptr);
  EXPECT_GT(s.windows, 0);
  EXPECT_EQ(s.outcome_total(), s.windows);
  EXPECT_GT(s.faulted, 0);
  // Every applied window threw mid-apply and was rolled back; windows with
  // no applicable solution were kept. Either way the layout is unchanged
  // and still legal.
  EXPECT_EQ(s.faulted + s.kept, s.windows);
  EXPECT_EQ(d.placements(), snap);
  EXPECT_TRUE(is_legal(d));
}

TEST(FaultedDistOpt, LpTimeoutFaultDegradesGracefully) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kLpTimeout, 1.0));
  Design d = placed();
  DistOptOptions opts = fast_opts();
  double before = evaluate_objective(d, opts.params).value;
  DistOptStats s = dist_opt(d, opts, nullptr);
  EXPECT_EQ(s.outcome_total(), s.windows);
  EXPECT_LE(s.objective, before + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(FaultedDistOpt, GreedyFallbackReachedWhenRoundingDisabled) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kNoSolution, 1.0));
  Design d = placed();
  DistOptOptions opts = fast_opts();
  opts.rounding_fallback = false;
  opts.params.alpha = 60;  // make greedy moves worth taking
  double before = evaluate_objective(d, opts.params).value;
  DistOptStats s = dist_opt(d, opts, nullptr);
  EXPECT_EQ(s.outcome_total(), s.windows);
  EXPECT_EQ(s.fallback_rounding, 0);
  EXPECT_GT(s.fallback_greedy, 0);
  EXPECT_LE(s.objective, before + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(FaultedDistOpt, CascadeFullyDisabledKeepsEveryWindow) {
  FaultGuard guard;
  fault::set_config(one_site(fault::Site::kNoSolution, 1.0));
  Design d = placed();
  std::vector<Placement> snap = d.placements();
  DistOptOptions opts = fast_opts();
  opts.rounding_fallback = false;
  opts.greedy_fallback = false;
  DistOptStats s = dist_opt(d, opts, nullptr);
  EXPECT_EQ(s.kept, s.windows);
  EXPECT_EQ(d.placements(), snap);
}

TEST(FaultedDistOpt, FaultScheduleIsThreadInvariant) {
  FaultGuard guard;
  fault::set_config(all_sites(0.4, 99));
  DistOptOptions opts = fast_opts();
  Design d_seq = placed();
  Design d_par = placed();
  DistOptStats ss = dist_opt(d_seq, opts, nullptr);
  ThreadPool pool(4);
  DistOptStats sp = dist_opt(d_par, opts, &pool);
  // Faults key off the window, not the worker: identical schedules,
  // identical outcome histograms, identical layouts.
  EXPECT_EQ(ss.faults_injected, sp.faults_injected);
  EXPECT_EQ(ss.solved, sp.solved);
  EXPECT_EQ(ss.fallback_rounding, sp.fallback_rounding);
  EXPECT_EQ(ss.fallback_greedy, sp.fallback_greedy);
  EXPECT_EQ(ss.faulted, sp.faulted);
  EXPECT_EQ(ss.kept, sp.kept);
  for (int i = 0; i < d_seq.netlist().num_instances(); ++i) {
    EXPECT_EQ(d_seq.placement(i), d_par.placement(i)) << "instance " << i;
  }
}

// --- Full-run acceptance: the ISSUE 2 drill ---------------------------------

TEST(FaultedVM1Opt, ThirtyPercentFaultsFullRunDegradesGracefully) {
  FaultGuard guard;
  fault::set_config(all_sites(0.35, 2026));
  Design d = placed();
  VM1OptOptions opts;
  opts.sequence = {ParamSet{16, 2, 3, 1}};
  opts.max_inner_iters = 2;
  opts.threads = 2;
  opts.mip.max_nodes = 60;
  opts.mip.time_limit_sec = 2.0;
  VM1OptStats stats = vm1opt(d, opts);
  // Every window accounted for in exactly one outcome bucket.
  EXPECT_GT(stats.windows, 0);
  EXPECT_EQ(stats.solved + stats.fallback_rounding + stats.fallback_greedy +
                stats.rejected_audit + stats.kept + stats.faulted,
            static_cast<long>(stats.windows));
  // The drill actually injected a substantial number of faults...
  EXPECT_GT(stats.faults_injected, 0);
  EXPECT_GT(stats.faulted + stats.fallback_rounding + stats.fallback_greedy +
                stats.kept,
            0);
  // ...and the pass degraded, never corrupted: objective monotone, layout
  // legal.
  EXPECT_LE(stats.final.value, stats.initial.value + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(FaultedVM1Opt, OpenM1ArchSurvivesFaultsToo) {
  FaultGuard guard;
  fault::set_config(all_sites(0.35, 11));
  Design d = placed(CellArch::kOpenM1);
  VM1OptOptions opts;
  opts.sequence = {ParamSet{16, 2, 3, 1}};
  opts.max_inner_iters = 1;
  opts.threads = 2;
  opts.mip.max_nodes = 60;
  opts.mip.time_limit_sec = 2.0;
  opts.params.alpha = 30;
  VM1OptStats stats = vm1opt(d, opts);
  EXPECT_LE(stats.final.value, stats.initial.value + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

}  // namespace
}  // namespace vm1
