#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace vm1 {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(50, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (49 * 50 / 2));
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool def(0);
  EXPECT_GE(def.size(), 1u);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsAllTasksDespiteThrow) {
  // A throwing task must not abort the batch: every other index still runs
  // and the first exception is rethrown only after the batch drains.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  bool thrown = false;
  try {
    pool.parallel_for(32, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i % 2 == 0) throw std::runtime_error("x");
    });
  } catch (const std::runtime_error&) {
    thrown = true;
  }
  EXPECT_TRUE(thrown);
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ParallelForNullCancelRunsEverything) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::size_t invoked =
      pool.parallel_for(40, [&](std::size_t) { ran.fetch_add(1); }, nullptr);
  EXPECT_EQ(invoked, 40u);
  EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPool, ParallelForPreCancelledSkipsEverything) {
  ThreadPool pool(3);
  std::atomic<bool> cancel{true};
  std::atomic<int> ran{0};
  std::size_t invoked =
      pool.parallel_for(40, [&](std::size_t) { ran.fetch_add(1); }, &cancel);
  EXPECT_EQ(invoked, 0u);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, ParallelForMidBatchCancelStopsRemainingTasks) {
  // Single worker => tasks run in index order, so setting the token at
  // i == 10 deterministically skips indices 11..n-1.
  ThreadPool pool(1);
  std::atomic<bool> cancel{false};
  std::atomic<int> ran{0};
  std::size_t invoked = pool.parallel_for(
      64,
      [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 10) cancel.store(true);
      },
      &cancel);
  EXPECT_EQ(invoked, 11u);
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, CancelledBatchLeavesPoolReusable) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};
  pool.parallel_for(16, [](std::size_t) {}, &cancel);
  std::atomic<int> ran{0};
  std::size_t invoked = pool.parallel_for(
      16, [&](std::size_t) { ran.fetch_add(1); }, nullptr);
  EXPECT_EQ(invoked, 16u);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) {
      throw std::runtime_error("first batch");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
}  // namespace vm1
