#include "core/greedy_aligner.h"

#include <gtest/gtest.h>

#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

Design placed(CellArch arch = CellArch::kClosedM1) {
  Design d = make_design("tiny", arch);
  global_place(d);
  legalize(d);
  return d;
}

TEST(GreedyAligner, PreservesLegality) {
  Design d = placed();
  GreedyAlignOptions opts;
  opts.params.alpha = 30;
  greedy_align(d, opts);
  EXPECT_TRUE(is_legal(d));
}

TEST(GreedyAligner, IncreasesAlignments) {
  Design d = placed();
  GreedyAlignOptions opts;
  opts.params.alpha = 40;
  GreedyAlignStats s = greedy_align(d, opts);
  EXPECT_GE(s.alignments_after, s.alignments_before);
  EXPECT_GT(s.moves + s.flips, 0);
}

TEST(GreedyAligner, AlphaZeroReducesHpwlOnly) {
  Design d = placed();
  GreedyAlignOptions opts;
  opts.params.alpha = 0;
  GreedyAlignStats s = greedy_align(d, opts);
  EXPECT_LE(s.hpwl_after, s.hpwl_before);
}

TEST(GreedyAligner, WorksOnOpenM1) {
  Design d = placed(CellArch::kOpenM1);
  GreedyAlignOptions opts;
  opts.params.alpha = 25;
  GreedyAlignStats s = greedy_align(d, opts);
  EXPECT_GE(s.alignments_after, s.alignments_before);
  EXPECT_TRUE(is_legal(d));
}

TEST(GreedyAligner, ObjectiveNotWorse) {
  Design d = placed();
  GreedyAlignOptions opts;
  opts.params.alpha = 30;
  double before = evaluate_objective(d, opts.params).value;
  greedy_align(d, opts);
  double after = evaluate_objective(d, opts.params).value;
  EXPECT_LE(after, before + 1e-6);
}

TEST(GreedyAligner, DeterministicAcrossRuns) {
  Design d1 = placed();
  Design d2 = placed();
  GreedyAlignOptions opts;
  opts.params.alpha = 30;
  greedy_align(d1, opts);
  greedy_align(d2, opts);
  for (int i = 0; i < d1.netlist().num_instances(); ++i) {
    EXPECT_EQ(d1.placement(i), d2.placement(i));
  }
}

}  // namespace
}  // namespace vm1
