#include "netlist/generator.h"

#include <gtest/gtest.h>

#include "cells/library_builder.h"

namespace vm1 {
namespace {

TEST(Generator, ProducesRequestedSize) {
  Library lib = build_library(CellArch::kClosedM1);
  GeneratorConfig cfg;
  cfg.num_instances = 400;
  Netlist nl = generate_netlist(lib, cfg);
  EXPECT_EQ(nl.num_instances(), 400);
  EXPECT_GT(nl.num_nets(), 300);
}

TEST(Generator, ValidNetlist) {
  Library lib = build_library(CellArch::kClosedM1);
  GeneratorConfig cfg;
  cfg.num_instances = 500;
  Netlist nl = generate_netlist(lib, cfg);
  auto problems = nl.validate();
  EXPECT_TRUE(problems.empty())
      << problems.size() << " problems, first: " << problems.front();
}

TEST(Generator, DeterministicInSeed) {
  Library lib = build_library(CellArch::kOpenM1);
  GeneratorConfig cfg;
  cfg.num_instances = 300;
  cfg.seed = 77;
  Netlist a = generate_netlist(lib, cfg);
  Netlist b = generate_netlist(lib, cfg);
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (int n = 0; n < a.num_nets(); ++n) {
    ASSERT_EQ(a.net(n).pins.size(), b.net(n).pins.size());
    for (std::size_t p = 0; p < a.net(n).pins.size(); ++p) {
      EXPECT_EQ(a.net(n).pins[p], b.net(n).pins[p]);
    }
  }
}

TEST(Generator, FanoutCapRespected) {
  Library lib = build_library(CellArch::kClosedM1);
  GeneratorConfig cfg;
  cfg.num_instances = 600;
  cfg.max_fanout = 6;
  Netlist nl = generate_netlist(lib, cfg);
  for (int n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).is_clock) continue;  // clock tree fanout set separately
    // pins = 1 driver + sinks (+ possibly one PO terminal).
    EXPECT_LE(nl.net(n).num_pins(), cfg.max_fanout + 2) << nl.net(n).name;
  }
}

TEST(Generator, CombinationalLogicIsAcyclic) {
  Library lib = build_library(CellArch::kClosedM1);
  GeneratorConfig cfg;
  cfg.num_instances = 500;
  Netlist nl = generate_netlist(lib, cfg);
  // The generator guarantees combinational driver id < sink id, so walking
  // instances in id order is a topological order: verify every
  // combinational input's driver has a smaller id (or is sequential).
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Cell& c = nl.cell_of(i);
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      if (c.pins[p].dir != PinDir::kInput) continue;
      int net = nl.net_at(i, static_cast<int>(p));
      if (net < 0) continue;
      if (nl.net(net).is_clock) continue;  // clock tree is not a comb path
      for (const NetPin& np : nl.net(net).pins) {
        if (np.is_io()) continue;
        const Cell& dc = nl.cell_of(np.inst);
        if (dc.pins[np.pin].dir != PinDir::kOutput) continue;
        if (dc.sequential) continue;
        EXPECT_LT(np.inst, i) << "combinational cycle risk";
      }
    }
  }
}

TEST(Generator, DffsHaveClock) {
  Library lib = build_library(CellArch::kClosedM1);
  GeneratorConfig cfg;
  cfg.num_instances = 400;
  Netlist nl = generate_netlist(lib, cfg);
  int dffs = 0;
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Cell& c = nl.cell_of(i);
    if (!c.sequential) continue;
    ++dffs;
    int ck = c.pin_index("CK");
    ASSERT_GE(ck, 0);
    int net = nl.net_at(i, ck);
    ASSERT_GE(net, 0) << "DFF without clock";
    EXPECT_TRUE(nl.net(net).is_clock);
  }
  EXPECT_GT(dffs, 0);
}

TEST(Generator, DesignConfigsScaleLikeTable2) {
  // Instance ratios should follow m0 < aes << jpeg < vga.
  auto m0 = design_config("m0").num_instances;
  auto aes = design_config("aes").num_instances;
  auto jpeg = design_config("jpeg").num_instances;
  auto vga = design_config("vga").num_instances;
  EXPECT_LT(m0, aes);
  EXPECT_LT(aes, jpeg);
  EXPECT_LT(jpeg, vga);
  // Paper ratio jpeg/aes ~ 4.4.
  EXPECT_NEAR(static_cast<double>(jpeg) / aes, 4.4, 0.6);
  // Scale knob multiplies size.
  EXPECT_NEAR(design_config("aes", 2.0).num_instances, 2 * aes, 2);
}

TEST(Generator, UnknownDesignThrows) {
  EXPECT_THROW(design_config("nonexistent"), std::invalid_argument);
}

TEST(Generator, PrimaryIosPresent) {
  Library lib = build_library(CellArch::kClosedM1);
  GeneratorConfig cfg;
  cfg.num_instances = 300;
  cfg.num_primary_inputs = 10;
  cfg.num_primary_outputs = 12;
  Netlist nl = generate_netlist(lib, cfg);
  int pis = 0, pos = 0;
  for (int io = 0; io < nl.num_ios(); ++io) {
    (nl.io(io).is_input ? pis : pos) += 1;
  }
  EXPECT_EQ(pis, 10 + 1);  // + clk
  EXPECT_EQ(pos, 12);
}

}  // namespace
}  // namespace vm1
