#include "core/dist_opt.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/incremental.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

Design placed(CellArch arch = CellArch::kClosedM1) {
  Design d = make_design("tiny", arch);
  global_place(d);
  legalize(d);
  return d;
}

DistOptOptions fast_opts() {
  DistOptOptions o;
  o.bw = 16;
  o.bh = 2;
  o.lx = 3;
  o.ly = 1;
  o.mip.max_nodes = 60;
  o.mip.time_limit_sec = 2.0;
  return o;
}

TEST(DistOpt, ObjectiveDoesNotIncrease) {
  Design d = placed();
  DistOptOptions opts = fast_opts();
  double before = evaluate_objective(d, opts.params).value;
  DistOptStats stats = dist_opt(d, opts, nullptr);
  EXPECT_LE(stats.objective, before + 1e-6);
  EXPECT_GT(stats.windows, 0);
}

TEST(DistOpt, PreservesLegality) {
  Design d = placed();
  dist_opt(d, fast_opts(), nullptr);
  EXPECT_TRUE(is_legal(d));
}

TEST(DistOpt, ParallelMatchesSequential) {
  Design d_seq = placed();
  Design d_par = placed();
  DistOptOptions opts = fast_opts();
  dist_opt(d_seq, opts, nullptr);
  ThreadPool pool(4);
  dist_opt(d_par, opts, &pool);
  // Same windows, same MILPs, same deterministic solver => same layout.
  for (int i = 0; i < d_seq.netlist().num_instances(); ++i) {
    EXPECT_EQ(d_seq.placement(i), d_par.placement(i)) << "instance " << i;
  }
}

TEST(DistOpt, IncreasesAlignmentsWithHighAlpha) {
  Design d = placed();
  DistOptOptions opts = fast_opts();
  opts.params.alpha = 60;  // strongly favour alignment
  long before = evaluate_objective(d, opts.params).alignments;
  dist_opt(d, opts, nullptr);
  long after = evaluate_objective(d, opts.params).alignments;
  EXPECT_GE(after, before);
}

TEST(DistOpt, FlipOnlyPassKeepsPositions) {
  Design d = placed();
  std::vector<std::pair<int, int>> pos;
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    pos.emplace_back(d.placement(i).x, d.placement(i).row);
  }
  DistOptOptions opts = fast_opts();
  opts.allow_move = false;
  opts.allow_flip = true;
  opts.lx = 0;
  opts.ly = 0;
  dist_opt(d, opts, nullptr);
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    EXPECT_EQ(d.placement(i).x, pos[i].first);
    EXPECT_EQ(d.placement(i).row, pos[i].second);
  }
  EXPECT_TRUE(is_legal(d));
}

TEST(DistOpt, OpenM1ArchRuns) {
  Design d = placed(CellArch::kOpenM1);
  DistOptOptions opts = fast_opts();
  opts.params.alpha = 30;
  double before = evaluate_objective(d, opts.params).value;
  DistOptStats stats = dist_opt(d, opts, nullptr);
  EXPECT_LE(stats.objective, before + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(DistOpt, StatsAreCoherent) {
  Design d = placed();
  DistOptStats s = dist_opt(d, fast_opts(), nullptr);
  EXPECT_GE(s.windows, s.windows_solved);
  EXPECT_GE(s.windows_solved, s.windows_improved);
  EXPECT_GE(s.total_nodes, 0);
  EXPECT_GT(s.seconds, 0);
  // Warm-start accounting: every node LP is either a basis reuse or a cold
  // restart, iterations include the dual pivots, and each window's root
  // solve is cold.
  EXPECT_EQ(s.warm_solves + s.cold_restarts, s.total_nodes);
  EXPECT_GE(s.total_lp_iters, s.dual_pivots);
  EXPECT_GE(s.cold_restarts, s.windows_solved);
  EXPECT_GE(s.rc_fixed, 0);
}

TEST(DistOpt, ResultIndependentOfThreadCount) {
  DistOptOptions opts = fast_opts();
  Design d1 = placed();
  Design d3 = placed();
  ThreadPool p1(1);
  ThreadPool p3(3);
  DistOptStats s1 = dist_opt(d1, opts, &p1);
  DistOptStats s3 = dist_opt(d3, opts, &p3);
  for (int i = 0; i < d1.netlist().num_instances(); ++i) {
    EXPECT_EQ(d1.placement(i), d3.placement(i)) << "instance " << i;
  }
  EXPECT_EQ(s1.windows, s3.windows);
  EXPECT_EQ(s1.windows_solved, s3.windows_solved);
  EXPECT_EQ(s1.total_nodes, s3.total_nodes);
  EXPECT_EQ(s1.total_lp_iters, s3.total_lp_iters);
  EXPECT_DOUBLE_EQ(s1.objective, s3.objective);
}

TEST(DistOpt, OptionsValidationRejectsGarbage) {
  Design d = placed();
  DistOptOptions o = fast_opts();
  o.bw = 0;
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);

  o = fast_opts();
  o.bh = -2;
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);

  o = fast_opts();
  o.lx = -1;
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);

  o = fast_opts();
  o.time_budget_sec = -1;
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);

  o = fast_opts();
  o.min_window_time_sec = -0.1;
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);

  o = fast_opts();
  o.mip.max_nodes = -5;  // nested mip options validated too
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);
}

TEST(DistOpt, OutcomeCountersCoherentOnCleanRun) {
  Design d = placed();
  DistOptStats s = dist_opt(d, fast_opts(), nullptr);
  EXPECT_EQ(s.outcome_total(), s.windows);
  // No faults, no deadline: every window either solves or keeps; the
  // fallback and failure buckets stay empty.
  EXPECT_EQ(s.solved + s.kept, s.windows);
  EXPECT_EQ(s.fallback_rounding, 0);
  EXPECT_EQ(s.fallback_greedy, 0);
  EXPECT_EQ(s.rejected_audit, 0);
  EXPECT_EQ(s.faulted, 0);
  EXPECT_EQ(s.faults_injected, 0);
  EXPECT_FALSE(s.deadline_hit);
  EXPECT_GT(s.solved, 0);
}

TEST(DistOpt, TinyBudgetHitsDeadlineButStaysSafe) {
  Design d = placed();
  double before = evaluate_objective(d, fast_opts().params).value;
  DistOptOptions o = fast_opts();
  o.time_budget_sec = 1e-6;  // expires before the first window starts
  o.min_window_time_sec = 0;
  DistOptStats s = dist_opt(d, o, nullptr);
  EXPECT_TRUE(s.deadline_hit);
  EXPECT_EQ(s.outcome_total(), s.windows);
  EXPECT_LE(s.objective, before + 1e-6);
  EXPECT_TRUE(is_legal(d));
}

TEST(DistOptIncremental, ValidationRejectsStateWithoutFlag) {
  Design d = placed();
  IncrementalState state;
  DistOptOptions o = fast_opts();
  o.incremental = false;
  o.inc = &state;
  EXPECT_THROW(dist_opt(d, o, nullptr), std::invalid_argument);
}

TEST(DistOptIncremental, RepeatedPassesConvergeToAllSkipped) {
  Design d_inc = placed();
  Design d_full = placed();
  IncrementalState state;
  DistOptOptions oi = fast_opts();
  oi.inc = &state;
  DistOptOptions of = fast_opts();
  of.incremental = false;

  // Iterate the same pass: placements must track full mode bit-for-bit,
  // and once a pass changes zero cells, every window of the next pass is a
  // clean signature hit — the engine's steady state.
  const int kMaxPasses = 10;
  bool converged = false;
  for (int p = 0; p < kMaxPasses; ++p) {
    DistOptStats si = dist_opt(d_inc, oi, nullptr);
    DistOptStats sf = dist_opt(d_full, of, nullptr);
    ASSERT_EQ(d_inc.placements(), d_full.placements()) << "pass " << p;
    EXPECT_DOUBLE_EQ(si.objective, sf.objective) << "pass " << p;
    EXPECT_EQ(si.outcome_total(), si.windows) << "pass " << p;
    EXPECT_EQ(sf.outcome_total(), sf.windows) << "pass " << p;
    EXPECT_EQ(sf.skipped, 0) << "full mode must never skip";
    EXPECT_EQ(si.cells_changed, sf.cells_changed) << "pass " << p;
    if (converged) {
      // Previous pass was a fixpoint: everything skips now.
      EXPECT_EQ(si.skipped, si.windows) << "pass " << p;
      EXPECT_GT(si.signature_hits, 0) << "pass " << p;
      EXPECT_EQ(si.cells_changed, 0) << "pass " << p;
      break;
    }
    converged = si.cells_changed == 0;
  }
  EXPECT_TRUE(converged) << "pass never reached a zero-change fixpoint";
  EXPECT_TRUE(is_legal(d_inc));
  EXPECT_GT(state.memo_entries(), 0u);
}

TEST(DistOptIncremental, StateSurvivesGridShift) {
  // Alternating offsets (the vm1opt shift pattern, period 2): entries
  // recorded at one offset must hit when that offset recurs, and must
  // never corrupt results at the other offset.
  Design d_inc = placed();
  Design d_full = placed();
  IncrementalState state;
  long hits = 0;
  int quiet_passes = 0;  // consecutive zero-change passes seen
  for (int p = 0; p < 24 && quiet_passes < 3; ++p) {
    DistOptOptions oi = fast_opts();
    oi.tx = (p % 2) * (oi.bw / 2);
    oi.ty = p % 2;
    oi.inc = &state;
    DistOptOptions of = oi;
    of.incremental = false;
    of.inc = nullptr;
    DistOptStats si = dist_opt(d_inc, oi, nullptr);
    dist_opt(d_full, of, nullptr);
    ASSERT_EQ(d_inc.placements(), d_full.placements()) << "pass " << p;
    hits += si.signature_hits;
    quiet_passes = si.cells_changed == 0 ? quiet_passes + 1 : 0;
  }
  // Once both offsets went a full cycle without changes, their memo
  // entries must have been hit.
  EXPECT_EQ(quiet_passes, 3) << "alternating grids never settled";
  EXPECT_GT(hits, 0) << "recurring grids should produce signature hits";
}

TEST(DistOpt, PreSetCancelTokenKeepsEverything) {
  Design d = placed();
  std::vector<Placement> snap = d.placements();
  std::atomic<bool> cancel{true};
  DistOptOptions o = fast_opts();
  o.cancel = &cancel;
  DistOptStats s = dist_opt(d, o, nullptr);
  EXPECT_EQ(s.kept, s.windows);
  EXPECT_EQ(s.solved, 0);
  EXPECT_EQ(d.placements(), snap);  // nothing applied
}

}  // namespace
}  // namespace vm1
