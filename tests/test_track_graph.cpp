#include "route/track_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "design/legality.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

Design placed_design(CellArch arch) {
  Design d = make_design("tiny", arch);
  global_place(d);
  legalize(d);
  return d;
}

TEST(TrackGraph, DimensionsMatchCore) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  EXPECT_EQ(g.width(), d.core().hx);
  EXPECT_EQ(g.height(), d.core().hy / 2);
  EXPECT_EQ(g.num_nodes(),
            static_cast<std::size_t>(kNumRouteLayers) * (g.width() + 1) *
                (g.height() + 1));
}

TEST(TrackGraph, LatticeValidity) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  EXPECT_TRUE(g.valid(kM1, 3, 5));
  EXPECT_TRUE(g.valid(kM2, 3, 5));
  EXPECT_TRUE(g.valid(kM3, 4, 5));   // even gx only
  EXPECT_FALSE(g.valid(kM3, 3, 5));
  EXPECT_TRUE(g.valid(kM4, 3, 4));   // even gy only
  EXPECT_FALSE(g.valid(kM4, 3, 5));
  EXPECT_FALSE(g.valid(kM1, -1, 0));
  EXPECT_FALSE(g.valid(kM1, g.width() + 1, 0));
}

TEST(TrackGraph, ClosedM1SignalPinsOwnTheirNodes) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  const Netlist& nl = d.netlist();
  int checked = 0;
  for (int i = 0; i < nl.num_instances() && checked < 25; ++i) {
    const Cell& c = nl.cell_of(i);
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      int net = nl.net_at(i, static_cast<int>(p));
      if (net < 0) continue;
      for (const GNode& n : g.pin_access_nodes(i, static_cast<int>(p))) {
        EXPECT_EQ(g.owner(n.layer, n.gx, n.gy), net);
        EXPECT_TRUE(g.passable(n.layer, n.gx, n.gy, net));
        EXPECT_FALSE(g.passable(n.layer, n.gx, n.gy, net + 1));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(TrackGraph, ClosedM1CellBoundariesBlocked) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  const Netlist& nl = d.netlist();
  // The left-boundary M1 column of every cell is PG-blocked in its row.
  const Placement& p = d.placement(0);
  Coord y0 = static_cast<Coord>(p.row) * d.tech().row_height();
  auto [lo, hi] = TrackGraph::track_range(y0, y0 + d.tech().row_height());
  bool any = false;
  for (int gy = lo; gy <= std::min(hi, g.height()); ++gy) {
    EXPECT_EQ(g.owner(kM1, p.x, gy), kBlocked);
    any = true;
  }
  EXPECT_TRUE(any);
  (void)nl;
}

TEST(TrackGraph, OpenM1DoesNotBlockM1OverCells) {
  Design d = placed_design(CellArch::kOpenM1);
  TrackGraphOptions opts;
  opts.staple_pitch = 0;  // isolate the pin-blockage rule
  TrackGraph g(d, opts);
  // With no staples, all M1 is free in OpenM1 (pins live on M0).
  for (int gx = 0; gx <= g.width(); gx += 3) {
    for (int gy = 0; gy <= g.height(); gy += 5) {
      EXPECT_EQ(g.owner(kM1, gx, gy), kFree);
    }
  }
}

TEST(TrackGraph, OpenM1StaplesReserveColumns) {
  Design d = placed_design(CellArch::kOpenM1);
  TrackGraphOptions opts;
  opts.staple_pitch = 10;
  TrackGraph g(d, opts);
  for (int gx = 0; gx <= g.width(); gx += 10) {
    EXPECT_EQ(g.owner(kM1, gx, 3), kBlocked);
  }
  EXPECT_EQ(g.owner(kM1, 5, 3), kFree);
}

TEST(TrackGraph, ConventionalBlocksInterRowM1) {
  Design d = placed_design(CellArch::kConventional12T);
  TrackGraph g(d);
  // An M1 edge crossing the row-0/row-1 boundary (y = 15) must be
  // forbidden; edges within a row are allowed where no cell blocks them.
  // Track gy=7 spans y [14,16] which contains the boundary.
  // Use a net id that owns nothing (-100 => treated as ordinary net).
  EXPECT_FALSE(g.edge_allowed(kM1, 1, 7, /*net=*/1 << 20));
}

TEST(TrackGraph, M2PgStrapsBlockBoundaryTracks) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  // Row boundary at y=15 -> gy ~ 7 or 8 depending on rounding.
  int gy = static_cast<int>(std::llround(15.0 / 2.0));
  EXPECT_EQ(g.owner(kM2, 4, gy), kBlocked);
}

TEST(TrackGraph, PinAccessNodesNonEmptyForPlacedPins) {
  for (CellArch arch : {CellArch::kClosedM1, CellArch::kOpenM1}) {
    Design d = placed_design(arch);
    TrackGraph g(d);
    const Netlist& nl = d.netlist();
    for (int i = 0; i < std::min(40, nl.num_instances()); ++i) {
      const Cell& c = nl.cell_of(i);
      for (std::size_t p = 0; p < c.pins.size(); ++p) {
        EXPECT_FALSE(g.pin_access_nodes(i, static_cast<int>(p)).empty())
            << to_string(arch) << " " << nl.instance(i).name << "/"
            << c.pins[p].name;
      }
    }
  }
}

TEST(TrackGraph, IoAccessAvoidsBlockedTrack) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  for (int io = 0; io < d.netlist().num_ios(); ++io) {
    auto nodes = g.io_access_nodes(io);
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0].layer, kM2);
  }
}

TEST(TrackGraph, TrackRangeHelper) {
  // DBU [3, 11] covers tracks at y = 4, 6, 8, 10 -> gy 2..5.
  auto [lo, hi] = TrackGraph::track_range(3, 11);
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 5);
  // Exact track endpoints are inclusive.
  auto [lo2, hi2] = TrackGraph::track_range(4, 8);
  EXPECT_EQ(lo2, 2);
  EXPECT_EQ(hi2, 4);
}

TEST(TrackGraph, RebuildAfterMoveUpdatesOwnership) {
  Design d = placed_design(CellArch::kClosedM1);
  TrackGraph g(d);
  const Netlist& nl = d.netlist();
  int inst = -1;
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (!nl.cell_of(i).pins.empty() && nl.net_at(i, 0) >= 0) {
      inst = i;
      break;
    }
  }
  ASSERT_GE(inst, 0);
  auto before = g.pin_access_nodes(inst, 0);
  Placement p = d.placement(inst);
  p.x += 2;
  d.set_placement(inst, p);
  g.rebuild_blockage();
  auto after = g.pin_access_nodes(inst, 0);
  ASSERT_FALSE(before.empty());
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].gx, before[0].gx + 2);
}

}  // namespace
}  // namespace vm1
