#include "util/stats.h"

#include <gtest/gtest.h>

namespace vm1 {
namespace {

TEST(Stats, SummaryEmpty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
}

TEST(Stats, SummaryAccumulates) {
  Summary s;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, PctDelta) {
  EXPECT_DOUBLE_EQ(pct_delta(100, 94), -6.0);
  EXPECT_DOUBLE_EQ(pct_delta(50, 75), 50.0);
  EXPECT_DOUBLE_EQ(pct_delta(0, 10), 0.0);  // guarded division
}

TEST(Stats, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_delta(100, 93.6, 1), "-6.4");
  EXPECT_EQ(fmt_delta(100, 104, 1), "+4.0");
}

}  // namespace
}  // namespace vm1
