#include "util/stats.h"

#include <gtest/gtest.h>

#include "core/dist_opt.h"
#include "core/vm1opt.h"

namespace vm1 {
namespace {

TEST(Stats, SummaryEmpty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
}

TEST(Stats, SummaryAccumulates) {
  Summary s;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, PctDelta) {
  EXPECT_DOUBLE_EQ(pct_delta(100, 94), -6.0);
  EXPECT_DOUBLE_EQ(pct_delta(50, 75), 50.0);
  EXPECT_DOUBLE_EQ(pct_delta(0, 10), 0.0);  // guarded division
}

TEST(Stats, DistOptOutcomeTotalCoversEveryBucket) {
  // Struct-level guard for the "buckets sum to windows" invariant: assign
  // each outcome bucket a distinct value and check outcome_total() adds
  // all eight — in particular the kSkipped bucket added with the
  // incremental engine and the kCachedRemote bucket added with the solve
  // cache. A bucket forgotten here would silently break the accounting
  // every runtime test relies on.
  DistOptStats s;
  s.solved = 1;
  s.fallback_rounding = 2;
  s.fallback_greedy = 4;
  s.rejected_audit = 8;
  s.kept = 16;
  s.faulted = 32;
  s.skipped = 64;
  s.cached_remote = 128;
  EXPECT_EQ(s.outcome_total(), 255);
  s.windows = 255;
  EXPECT_EQ(s.outcome_total(), s.windows);
}

TEST(Stats, VM1OptStatsDefaultsAreCoherent) {
  // A freshly constructed stats block must satisfy the same invariant
  // trivially (all buckets zero) and start with the incremental counters
  // cleared, so accumulation across passes never inherits garbage.
  VM1OptStats s;
  EXPECT_EQ(s.solved + s.fallback_rounding + s.fallback_greedy +
                s.rejected_audit + s.kept + s.faulted + s.skipped +
                s.cached_remote,
            s.windows);
  EXPECT_EQ(s.skipped, 0);
  EXPECT_EQ(s.cached_remote, 0);
  EXPECT_EQ(s.cache_hits, 0);
  EXPECT_EQ(s.cache_stores, 0);
  EXPECT_EQ(s.signature_hits, 0);
  EXPECT_EQ(s.signature_misses, 0);
  EXPECT_EQ(s.cells_changed, 0);
  EXPECT_FALSE(s.converged_early);
  EXPECT_TRUE(s.windows_per_iter.empty());
  EXPECT_TRUE(s.skipped_per_iter.empty());
}

TEST(Stats, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_delta(100, 93.6, 1), "-6.4");
  EXPECT_EQ(fmt_delta(100, 104, 1), "+4.0");
}

}  // namespace
}  // namespace vm1
