#include "route/metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "cells/library_builder.h"

namespace vm1 {
namespace {

/// A design with a library but zero instances and zero nets.
Design empty_design() {
  auto lib = std::make_unique<Library>(build_library(CellArch::kClosedM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  return Design("empty", Tech::make_7nm(), std::move(lib), std::move(nl), 4,
                24);
}

/// Two ClosedM1 INVs in adjacent rows, driver ZN vertically aligned with
/// sink A, joined by a single two-pin net — the smallest routable design.
Design single_net_design() {
  auto lib = std::make_unique<Library>(build_library(CellArch::kClosedM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  Design d("one_net", Tech::make_7nm(), std::move(lib), std::move(nl), 4, 24);
  // ZN of u0 sits at track x+2, A of u1 at track x+1: offset placements by
  // one site so the pin tracks align vertically.
  d.set_placement(u0, Placement{10, 1, false});
  d.set_placement(u1, Placement{11, 2, false});
  return d;
}

int render_line_count(const std::string& art) {
  int lines = 0;
  for (char ch : art) {
    if (ch == '\n') ++lines;
  }
  return lines;
}

TEST(RouteMetrics, EmptyDesignRoutesToAllZeroMetrics) {
  Design d = empty_design();
  Router router(d);
  RouteMetrics m = router.route();
  EXPECT_EQ(m.rwl_dbu, 0);
  EXPECT_EQ(m.num_dm1, 0);
  EXPECT_EQ(m.drv, 0);
  EXPECT_EQ(m.unrouted, 0);
  EXPECT_EQ(m.via12, 0);
}

TEST(RouteMetrics, EmptyDesignCongestionMapIsZeroButShaped) {
  Design d = empty_design();
  Router router(d);
  router.route();
  CongestionMap map = build_congestion_map(router);
  EXPECT_GT(map.bins_x, 0);
  EXPECT_GT(map.bins_y, 0);
  EXPECT_EQ(map.total(), 0);
  for (int by = 0; by < map.bins_y; ++by) {
    for (int bx = 0; bx < map.bins_x; ++bx) {
      EXPECT_EQ(map.at(bx, by), 0);
    }
  }
  std::string art = render_congestion(map);
  EXPECT_EQ(render_line_count(art), map.bins_y);
}

TEST(RouteMetrics, SingleNetCountsOneDm1AndNoOverflow) {
  Design d = single_net_design();
  Router router(d);
  RouteMetrics m = router.route();
  EXPECT_EQ(m.unrouted, 0);
  EXPECT_GE(m.num_dm1, 1);
  EXPECT_EQ(m.drv, 0);  // one net can't overflow unit-capacity edges
  CongestionMap map = build_congestion_map(router);
  EXPECT_EQ(map.total(), m.drv);
}

TEST(RouteMetrics, ZeroCapacityBinsAccountForEveryOverflowUnit) {
  Design d = single_net_design();
  RouterOptions opts;
  opts.cost.wire_capacity = 0;  // every used wire edge overflows
  opts.max_iterations = 1;      // rip-up can't help; keep the overflow
  Router router(d, opts);
  RouteMetrics m = router.route();
  EXPECT_GT(m.drv, 0);
  CongestionMap map = build_congestion_map(router);
  EXPECT_EQ(map.total(), m.drv);
  // The overflow is localized: at least one hot bin, not all bins hot.
  int hot = 0;
  for (int by = 0; by < map.bins_y; ++by) {
    for (int bx = 0; bx < map.bins_x; ++bx) {
      if (map.at(bx, by) > 0) ++hot;
    }
  }
  EXPECT_GE(hot, 1);
  EXPECT_LT(hot, map.bins_x * map.bins_y);
  std::string art = render_congestion(map);
  EXPECT_NE(art.find_first_not_of(" \n"), std::string::npos);
}

TEST(RouteMetrics, RenderIsRectangular) {
  Design d = single_net_design();
  RouterOptions opts;
  opts.cost.wire_capacity = 0;
  opts.max_iterations = 1;
  Router router(d, opts);
  router.route();
  CongestionMap map = build_congestion_map(router, /*target_bins_x=*/8);
  std::string art = render_congestion(map);
  std::istringstream in(art);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(static_cast<int>(line.size()), map.bins_x);
    ++lines;
  }
  EXPECT_EQ(lines, map.bins_y);
}

TEST(RouteMetrics, SummarizeMentionsEveryKeyMetric) {
  Design d = single_net_design();
  Router router(d);
  RouteMetrics m = router.route();
  std::string s = summarize(m);
  for (const char* key :
       {"RWL=", "M1WL=", "via12=", "dM1=", "DRV=", "unrouted="}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace vm1
