#include "route/router.h"

#include <gtest/gtest.h>

#include <memory>

#include "cells/library_builder.h"
#include "place/global_placer.h"
#include "place/hpwl.h"
#include "place/legalizer.h"
#include "route/metrics.h"

namespace vm1 {
namespace {

Design placed_design(CellArch arch, double util = 0.75) {
  DesignOptions opts;
  opts.utilization = util;
  Design d = make_design("tiny", arch, opts);
  global_place(d);
  legalize(d);
  return d;
}

class RouterPerArch : public ::testing::TestWithParam<CellArch> {};

TEST_P(RouterPerArch, RoutesEverythingAtModerateUtilization) {
  Design d = placed_design(GetParam(), 0.7);
  Router router(d);
  RouteMetrics m = router.route();
  EXPECT_EQ(m.unrouted, 0);
  EXPECT_GT(m.rwl_dbu, 0);
}

TEST_P(RouterPerArch, RwlAtLeastHpwlPerNet) {
  // A routed tree spanning a net's pins can't be shorter than ~half its
  // HPWL (vertical DBU granularity rounds in favour of the route), and the
  // total must be at least the total HPWL minus rounding slack.
  Design d = placed_design(GetParam(), 0.7);
  Router router(d);
  router.route();
  const Netlist& nl = d.netlist();
  for (int n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).routable()) continue;
    if (!router.net_routes()[n].routed) continue;
    long len = router.net_length_dbu(n);
    // HPWL uses point pins (x_track / M0 midpoint, y_off). The router may
    // legitimately beat it: it can tap a pin anywhere on its physical shape
    // (ClosedM1 stubs are 8 DBU tall; OpenM1 segments several sites wide)
    // and y is quantized to 2-DBU tracks. Grant each pin its shape extents
    // plus one track of slack.
    long slack = 0;
    for (const NetPin& p : nl.net(n).pins) {
      slack += 4;
      if (!p.is_io()) {
        const Rect& shape =
            nl.cell_of(p.inst).pins[p.pin].shapes.front().box;
        slack += shape.width() + shape.height();
      }
    }
    EXPECT_GE(len + slack, net_hpwl(d, n)) << nl.net(n).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, RouterPerArch,
                         ::testing::Values(CellArch::kClosedM1,
                                           CellArch::kOpenM1,
                                           CellArch::kConventional12T));

TEST(Router, ConventionalHasNoInterRowDm1) {
  Design d = placed_design(CellArch::kConventional12T);
  Router router(d);
  RouteMetrics m = router.route();
  // M1 rails forbid inter-row M1; the only "dM1" possible would be a
  // zero-length abutment, which ClosedM1-style pins can't produce either.
  // dM1 paths within a row would require equal x (impossible for two
  // distinct pins in the same row at the same track without overlap).
  EXPECT_EQ(m.num_dm1, 0);
}

TEST(Router, ClosedM1AlignedPairRoutesAsDm1) {
  // Hand-build the canonical Figure 2(a) scenario: two INVs in adjacent
  // rows with driver ZN vertically aligned with sink A.
  auto lib = std::make_unique<Library>(build_library(CellArch::kClosedM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  // Tie off u1's output and u0's input to IOs so validate() is clean.
  int pi = nl->add_io("pi", true);
  int n_in = nl->add_net("nin");
  nl->connect(n_in, NetPin{-1, pi});
  nl->connect(n_in, NetPin{u0, c.pin_index("A")});
  int po = nl->add_io("po", false);
  int n_out = nl->add_net("nout");
  nl->connect(n_out, NetPin{u1, c.pin_index("ZN")});
  nl->connect(n_out, NetPin{-1, po});

  Design d("dm1_pair", Tech::make_7nm(), std::move(lib), std::move(nl), 4,
           24);
  d.set_io_position(0, Point{0, 0});
  d.set_io_position(1, Point{24, 60});
  // ZN of u0 at track 10+2=12; A of u1 at track x+1 -> x=11 aligns.
  d.set_placement(u0, Placement{10, 1, false});
  d.set_placement(u1, Placement{11, 2, false});

  Router router(d);
  RouteMetrics m = router.route();
  EXPECT_GE(m.num_dm1, 1);
  EXPECT_EQ(m.unrouted, 0);
}

TEST(Router, OpenM1OverlappedPairRoutesAsDm1) {
  // Figure 2(b): two OpenM1 INVs in adjacent rows whose ZN / A horizontal
  // M0 projections overlap — a single vertical M1 segment (plus V01 vias)
  // connects them.
  auto lib = std::make_unique<Library>(build_library(CellArch::kOpenM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  Design d("open_pair", Tech::make_7nm(), std::move(lib), std::move(nl), 4,
           24);
  // ZN span [1,3] at x=10 -> [11,13]; A span [0,1] at x=12 -> [12,13]:
  // overlapped by one site.
  d.set_placement(u0, Placement{10, 1, false});
  d.set_placement(u1, Placement{12, 2, false});
  RouterOptions opts;
  opts.graph.staple_pitch = 0;  // keep the overlap column free
  Router router(d, opts);
  RouteMetrics m = router.route();
  EXPECT_GE(m.num_dm1, 1);
  EXPECT_EQ(m.unrouted, 0);
}

TEST(Router, MisalignedPairIsNotDm1) {
  auto lib = std::make_unique<Library>(build_library(CellArch::kClosedM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  Design d("miss_pair", Tech::make_7nm(), std::move(lib), std::move(nl), 4,
           24);
  d.set_placement(u0, Placement{10, 1, false});
  d.set_placement(u1, Placement{16, 2, false});  // 5 tracks off
  Router router(d);
  RouteMetrics m = router.route();
  EXPECT_EQ(m.num_dm1, 0);
  EXPECT_GT(m.via12, 0);  // must hop to M2 to jog sideways
}

TEST(Router, MetricsAreConsistent) {
  Design d = placed_design(CellArch::kClosedM1);
  Router router(d);
  RouteMetrics m = router.route();
  long sum = 0;
  for (long l : m.wl_by_layer) sum += l;
  EXPECT_EQ(sum, m.rwl_dbu);
  EXPECT_EQ(m.m1_wl_dbu(), m.wl_by_layer[kM1]);
  EXPECT_GE(m.via12, 0);
  EXPECT_GE(m.drv, 0);
}

TEST(Router, DeterministicAcrossRuns) {
  Design d1 = placed_design(CellArch::kClosedM1);
  Design d2 = placed_design(CellArch::kClosedM1);
  RouteMetrics a = Router(d1).route();
  RouteMetrics b = Router(d2).route();
  EXPECT_EQ(a.rwl_dbu, b.rwl_dbu);
  EXPECT_EQ(a.num_dm1, b.num_dm1);
  EXPECT_EQ(a.via12, b.via12);
  EXPECT_EQ(a.drv, b.drv);
}

TEST(Router, HighUtilizationIncreasesCongestion) {
  Design lo = placed_design(CellArch::kClosedM1, 0.6);
  Design hi = placed_design(CellArch::kClosedM1, 0.95);
  RouterOptions opts;
  opts.max_iterations = 2;  // keep overflow visible
  RouteMetrics ml = Router(lo, opts).route();
  RouteMetrics mh = Router(hi, opts).route();
  EXPECT_GE(mh.drv, ml.drv);
}

TEST(Router, CongestionMapCoversOverflow) {
  Design d = placed_design(CellArch::kClosedM1, 0.95);
  RouterOptions opts;
  opts.max_iterations = 1;
  Router router(d, opts);
  RouteMetrics m = router.route();
  CongestionMap map = build_congestion_map(router);
  EXPECT_EQ(map.total(), m.drv);
  if (m.drv > 0) {
    std::string art = render_congestion(map);
    EXPECT_FALSE(art.empty());
  }
}

TEST(Router, SummaryMentionsKeyMetrics) {
  Design d = placed_design(CellArch::kClosedM1);
  Router router(d);
  RouteMetrics m = router.route();
  std::string s = summarize(m);
  EXPECT_NE(s.find("RWL="), std::string::npos);
  EXPECT_NE(s.find("dM1="), std::string::npos);
}

}  // namespace
}  // namespace vm1
