#include "core/milp_builder.h"

#include <gtest/gtest.h>

#include <memory>

#include "cells/library_builder.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/hpwl.h"
#include "place/legalizer.h"
#include "util/rng.h"

namespace vm1 {
namespace {

/// Two INVs in adjacent rows connected ZN -> A, misaligned by `offset`
/// sites, inside a wide-open core.
Design make_pair_design(CellArch arch, int offset) {
  auto lib = std::make_unique<Library>(build_library(arch));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  Design d("pair", Tech::make_7nm(), std::move(lib), std::move(nl), 4, 32);
  d.set_placement(u0, Placement{10, 1, false});
  // Aligned would be x = 11 (ZN track 12 == A track x+1).
  d.set_placement(u1, Placement{11 + offset, 2, false});
  return d;
}

WindowProblem whole_core_problem(const Design& d, int lx, int ly) {
  WindowProblem wp;
  wp.design = &d;
  wp.window.x0 = 0;
  wp.window.x1 = d.sites_per_row();
  wp.window.row0 = 0;
  wp.window.row1 = d.num_rows() - 1;
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    wp.movable.push_back(i);
  }
  wp.lx = lx;
  wp.ly = ly;
  return wp;
}

TEST(MilpBuilder, WarmStartIsFeasible) {
  Design d = make_pair_design(CellArch::kClosedM1, 2);
  WindowProblem wp = whole_core_problem(d, 3, 1);
  BuiltMilp built = build_window_milp(wp);
  ASSERT_FALSE(built.empty());
  std::vector<double> warm = built.warm_start(d);
  EXPECT_TRUE(built.model.is_feasible(warm, 1e-6));
}

TEST(MilpBuilder, ClosedAlignsPairWhenAlphaHigh) {
  Design d = make_pair_design(CellArch::kClosedM1, 2);
  WindowProblem wp = whole_core_problem(d, 3, 1);
  wp.params.alpha = 50;  // far above the <= 4 DBU HPWL cost of aligning
  BuiltMilp built = build_window_milp(wp);
  ASSERT_EQ(built.pairs.size(), 1u);

  std::vector<double> warm = built.warm_start(d);
  milp::BranchAndBound bnb;
  milp::MipResult r = bnb.solve(built.model, built.make_heuristic(), &warm);
  ASSERT_FALSE(r.x.empty());
  built.apply(d, r.x);
  auto [aligned, ovl] = count_net_alignments(d, 0, wp.params);
  EXPECT_EQ(aligned, 1);
  (void)ovl;
  EXPECT_TRUE(is_legal(d));
}

TEST(MilpBuilder, ClosedKeepsPlacementWhenAlphaZero) {
  Design d = make_pair_design(CellArch::kClosedM1, 2);
  Coord hpwl0 = total_hpwl(d);
  WindowProblem wp = whole_core_problem(d, 3, 1);
  wp.params.alpha = 0;
  BuiltMilp built = build_window_milp(wp);
  std::vector<double> warm = built.warm_start(d);
  milp::BranchAndBound bnb;
  milp::MipResult r = bnb.solve(built.model, built.make_heuristic(), &warm);
  ASSERT_FALSE(r.x.empty());
  built.apply(d, r.x);
  // Pure-HPWL optimization can only improve (or preserve) wirelength.
  EXPECT_LE(total_hpwl(d), hpwl0);
}

TEST(MilpBuilder, MilpObjectiveNeverWorseThanWarm) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  WindowProblem wp;
  wp.design = &d;
  wp.window.x0 = 0;
  wp.window.x1 = std::min(20, d.sites_per_row());
  wp.window.row0 = 0;
  wp.window.row1 = std::min(2, d.num_rows() - 1);
  const Netlist& nl = d.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    if (wp.window.contains_footprint(p.x, p.row,
                                     nl.cell_of(i).width_sites)) {
      wp.movable.push_back(i);
    }
  }
  if (wp.movable.empty()) GTEST_SKIP() << "no movable cells in window";
  wp.lx = 3;
  wp.ly = 1;
  BuiltMilp built = build_window_milp(wp);
  std::vector<double> warm = built.warm_start(d);
  double warm_obj = built.model.objective_value(warm);
  milp::BranchAndBound::Options opts;
  opts.max_nodes = 200;
  opts.time_limit_sec = 10;
  milp::BranchAndBound bnb(opts);
  milp::MipResult r = bnb.solve(built.model, built.make_heuristic(), &warm);
  ASSERT_FALSE(r.x.empty());
  EXPECT_LE(r.objective, warm_obj + 1e-6);
  EXPECT_TRUE(built.model.is_feasible(r.x, 1e-5));
  built.apply(d, r.x);
  EXPECT_TRUE(is_legal(d));
}

TEST(MilpBuilder, OpenOverlapRewarded) {
  Design d = make_pair_design(CellArch::kOpenM1, 4);
  WindowProblem wp = whole_core_problem(d, 4, 1);
  wp.params.alpha = 50;
  wp.params.epsilon = 2;
  BuiltMilp built = build_window_milp(wp);
  ASSERT_EQ(built.pairs.size(), 1u);
  EXPECT_GE(built.pairs[0].o_var, 0);
  std::vector<double> warm = built.warm_start(d);
  milp::BranchAndBound bnb;
  milp::MipResult r = bnb.solve(built.model, built.make_heuristic(), &warm);
  ASSERT_FALSE(r.x.empty());
  built.apply(d, r.x);
  auto [overlapped, ovl] = count_net_alignments(d, 0, wp.params);
  EXPECT_EQ(overlapped, 1);
  EXPECT_GE(ovl, 0);
}

TEST(MilpBuilder, OpenWarmStartFeasible) {
  Design d = make_pair_design(CellArch::kOpenM1, 3);
  WindowProblem wp = whole_core_problem(d, 3, 1);
  BuiltMilp built = build_window_milp(wp);
  std::vector<double> warm = built.warm_start(d);
  EXPECT_TRUE(built.model.is_feasible(warm, 1e-6))
      << "violation " << built.model.lp().max_violation(warm);
}

TEST(MilpBuilder, PairPrunedWhenUnreachable) {
  // Offset far beyond the perturbation range: no d variable is created.
  Design d = make_pair_design(CellArch::kClosedM1, 15);
  WindowProblem wp = whole_core_problem(d, 2, 0);
  BuiltMilp built = build_window_milp(wp);
  EXPECT_TRUE(built.pairs.empty());
}

TEST(MilpBuilder, GammaClosedLimitsVerticalSpan) {
  // Pins three rows apart with gamma_closed = 1: alignment must not count.
  auto lib = std::make_unique<Library>(build_library(CellArch::kClosedM1));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  Design d("far", Tech::make_7nm(), std::move(lib), std::move(nl), 6, 32);
  d.set_placement(u0, Placement{10, 0, false});
  d.set_placement(u1, Placement{11, 4, false});  // aligned but 4 rows away
  VM1Params params;
  auto [count, ovl] = count_net_alignments(d, net, params);
  EXPECT_EQ(count, 0);
  (void)ovl;
}

TEST(MilpBuilder, EvaluateObjectiveComposition) {
  Design d = make_pair_design(CellArch::kClosedM1, 0);  // aligned
  VM1Params params;
  params.alpha = 10;
  params.beta = 1;
  ObjectiveBreakdown obj = evaluate_objective(d, params);
  EXPECT_EQ(obj.alignments, 1);
  EXPECT_DOUBLE_EQ(obj.hpwl, static_cast<double>(total_hpwl(d)));
  EXPECT_DOUBLE_EQ(obj.value, obj.hpwl - 10.0);
}

TEST(MilpBuilder, PerNetBetaWeighting) {
  // Two nets; weighting one heavily must steer the HPWL trade-off.
  Design d = make_pair_design(CellArch::kClosedM1, 0);
  VM1Params params;
  params.alpha = 0;
  params.beta = 1;
  ObjectiveBreakdown base = evaluate_objective(d, params);
  params.net_beta = {5.0};  // net 0 weighted 5x
  ObjectiveBreakdown weighted = evaluate_objective(d, params);
  // Only net 0 exists with pins; weighted value = 5 * its HPWL.
  EXPECT_NEAR(weighted.value, 5.0 * base.value, 1e-9);
  EXPECT_DOUBLE_EQ(params.beta_of(0), 5.0);
  EXPECT_DOUBLE_EQ(params.beta_of(7), 1.0);  // beyond vector: default
}

TEST(MilpBuilder, TimingCriticalityWeights) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  std::vector<long> lengths(d.netlist().num_nets(), 20);
  auto beta = timing_criticality_weights(d, lengths, 4.0);
  ASSERT_EQ(beta.size(), static_cast<std::size_t>(d.netlist().num_nets()));
  double lo = 1e9, hi = 0;
  for (double b : beta) {
    EXPECT_GE(b, 1.0 - 1e-9);
    EXPECT_LE(b, 4.0 + 1e-9);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  // The critical net reaches the max weight; early nets stay near 1.
  EXPECT_NEAR(hi, 4.0, 1e-6);
  EXPECT_LT(lo, 1.2);
}

TEST(MilpBuilder, HeuristicProducesFeasible) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  WindowProblem wp;
  wp.design = &d;
  wp.window.x0 = 0;
  wp.window.x1 = std::min(24, d.sites_per_row());
  wp.window.row0 = 0;
  wp.window.row1 = std::min(3, d.num_rows() - 1);
  const Netlist& nl = d.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    if (wp.window.contains_footprint(p.x, p.row,
                                     nl.cell_of(i).width_sites)) {
      wp.movable.push_back(i);
    }
  }
  if (wp.movable.empty()) GTEST_SKIP();
  BuiltMilp built = build_window_milp(wp);
  auto heuristic = built.make_heuristic();
  // Feed the warm start as the "LP solution": rounding must reproduce a
  // feasible vector.
  std::vector<double> warm = built.warm_start(d);
  auto rounded = heuristic(built.model, warm);
  ASSERT_TRUE(rounded.has_value());
  EXPECT_TRUE(built.model.is_feasible(*rounded, 1e-5));
}

class WindowProperty : public ::testing::TestWithParam<int> {};

// Property: for random windows of a placed design (both architectures),
// the warm start is feasible, the truncated solve never worsens the window
// objective, and applying the solution keeps the design legal.
TEST_P(WindowProperty, SolveIsSafeAndMonotone) {
  int seed = GetParam();
  CellArch arch = (seed % 2 == 0) ? CellArch::kClosedM1 : CellArch::kOpenM1;
  DesignOptions dopts;
  dopts.seed = 1000 + seed;
  Design d = make_design("tiny", arch, dopts);
  GlobalPlaceOptions gp;
  gp.seed = 17 + seed;
  global_place(d, gp);
  legalize(d);
  ASSERT_TRUE(is_legal(d));

  Rng rng(seed);
  WindowProblem wp;
  wp.design = &d;
  int bw = 10 + static_cast<int>(rng.uniform(14));
  int bh = 2 + static_cast<int>(rng.uniform(2));
  wp.window.x0 = static_cast<int>(rng.uniform(
      std::max(1, d.sites_per_row() - bw)));
  wp.window.x1 = std::min(d.sites_per_row(), wp.window.x0 + bw);
  wp.window.row0 = static_cast<int>(rng.uniform(
      std::max(1, d.num_rows() - bh)));
  wp.window.row1 = std::min(d.num_rows() - 1, wp.window.row0 + bh - 1);
  const Netlist& nl = d.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    if (wp.window.contains_footprint(p.x, p.row,
                                     nl.cell_of(i).width_sites)) {
      wp.movable.push_back(i);
    }
  }
  if (wp.movable.empty()) GTEST_SKIP() << "empty window";
  wp.lx = 3;
  wp.ly = 1;
  wp.params.alpha = 20 + static_cast<double>(rng.uniform(40));

  BuiltMilp built = build_window_milp(wp);
  std::vector<double> warm = built.warm_start(d);
  ASSERT_TRUE(built.model.is_feasible(warm, 1e-6))
      << to_string(arch) << " violation "
      << built.model.lp().max_violation(warm);

  milp::BranchAndBound::Options mo;
  mo.max_nodes = 25;
  mo.time_limit_sec = 2.0;
  milp::BranchAndBound bnb(mo);
  milp::MipResult r = bnb.solve(built.model, built.make_heuristic(), &warm);
  ASSERT_FALSE(r.x.empty());
  EXPECT_LE(r.objective, built.model.objective_value(warm) + 1e-6);
  EXPECT_TRUE(built.model.is_feasible(r.x, 1e-5));
  built.apply(d, r.x);
  EXPECT_TRUE(is_legal(d)) << to_string(arch) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, WindowProperty,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace vm1
