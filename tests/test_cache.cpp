/// Solve-cache suite (src/cache + the shared hash primitives + the
/// tier-2 seam in core/incremental): run with `ctest -L cache`.
///
/// Layer 1 freezes the hash constants — window signatures key the
/// persistent store and the golden corpus, so a changed bit pattern is a
/// cache-epoch/golden-regeneration event that must fail loudly, never
/// pass as a refactor.
///
/// Layer 2 exercises the on-disk store's whole failure matrix from
/// store.h: reopen persistence, truncated tails, bit flips, stale
/// epochs, old formats, the single-writer lock, and LRU eviction. A
/// damaged store must degrade to misses, never wrong hits.
///
/// Layer 3 is the acceptance check: a warm rerun through a persistent
/// store must serve its windows from cache (no MILP) while producing
/// bit-identical placements, objective, and HPWL — clean and under the
/// 25% fault storm — and the worker memo tier must do the same for the
/// processes backend (kCachedRemote), including coalesced dispatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "cache/solve_cache.h"
#include "cache/store.h"
#include "core/incremental.h"
#include "core/vm1opt.h"
#include "design/legality.h"
#include "dist/coordinator.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/rng.h"

namespace vm1 {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: frozen hash constants.

TEST(HashPrimitives, Fnv1a64FrozenVectors) {
  // Offset basis: hashing nothing returns the FNV-1a basis itself.
  EXPECT_EQ(hash::fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(hash::fnv1a64(abc, 3), 0xe71fa2190541574bULL);
}

TEST(HashPrimitives, SplitmixFrozenVectors) {
  EXPECT_EQ(hash::splitmix_finalize(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(hash::splitmix_mix(1, 2), 0xa3efbcce2e044f84ULL);
}

TEST(HashPrimitives, SignatureHasherFrozenVector) {
  hash::SignatureHasher h;
  h.add(1);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.low(), 0x6da0eea95f45479eULL);
  EXPECT_EQ(h.high(), 0x85261fd452e00e9fULL);
}

TEST(HashPrimitives, DefaultEpochIsStableWithinABuild) {
  // The epoch mixes the solver generation with the fault-site census;
  // within one build it must be a constant (two stores opened by the same
  // binary always agree).
  EXPECT_EQ(cache::default_epoch(), cache::default_epoch());
  EXPECT_NE(cache::default_epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Layer 2: the on-disk store's failure matrix.

/// Fresh temp store directory per test, removed on teardown.
class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vm1_cache_testXXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    std::system(cmd.c_str());
  }

  cache::StoreOptions opts(std::uint64_t epoch = 7) {
    cache::StoreOptions o;
    o.dir = dir_;
    o.epoch = epoch;
    return o;
  }

  std::string log_path() const { return dir_ + "/cache.log"; }

  /// Byte-patches the log at `off` (negative: relative to EOF).
  void patch_log(long off, std::uint8_t value) {
    std::FILE* f = std::fopen(log_path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, off, off < 0 ? SEEK_END : SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&value, 1, 1, f), 1u);
    std::fclose(f);
  }

  void truncate_log_by(long bytes) {
    std::FILE* f = std::fopen(log_path().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    std::string cmd = "truncate -s " + std::to_string(size - bytes) + " " +
                      log_path();
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  static std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
    std::vector<std::uint8_t> out;
    for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
    return out;
  }

  std::string dir_;
};

TEST_F(StoreFixture, RoundtripAndReopenPersists) {
  {
    cache::CacheStore s(opts());
    EXPECT_TRUE(s.open_report().created);
    s.put(1, 2, bytes({10, 20, 30}));
    s.put(3, 4, bytes({40}));
    auto v = s.lookup(1, 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, bytes({10, 20, 30}));
    EXPECT_FALSE(s.lookup(1, 5).has_value());  // 128-bit key: b matters
    EXPECT_EQ(s.entries(), 2u);
  }
  cache::CacheStore s(opts());
  EXPECT_FALSE(s.open_report().created);
  EXPECT_EQ(s.open_report().records_loaded, 2);
  EXPECT_EQ(s.entries(), 2u);
  auto v = s.lookup(3, 4);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, bytes({40}));
}

TEST_F(StoreFixture, OpenCreatesMissingParentDirectories) {
  // A sweep's store path is <out_dir>/cache_<scenario>; neither component
  // has to exist yet (the regression: --out=DIR aborted the whole sweep).
  cache::StoreOptions o = opts();
  o.dir = dir_ + "/a/b/c";
  cache::CacheStore s(o);
  EXPECT_TRUE(s.open_report().created);
  s.put(1, 2, bytes({3}));
  EXPECT_TRUE(s.lookup(1, 2).has_value());
}

TEST_F(StoreFixture, OverwriteKeepsLatestAcrossReopen) {
  {
    cache::CacheStore s(opts());
    s.put(9, 9, bytes({1}));
    s.put(9, 9, bytes({2, 2}));
    auto v = s.lookup(9, 9);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, bytes({2, 2}));
  }
  cache::CacheStore s(opts());
  EXPECT_EQ(s.entries(), 1u);
  auto v = s.lookup(9, 9);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, bytes({2, 2}));
}

TEST_F(StoreFixture, TruncatedTailDropsOnlyThePartialRecord) {
  {
    cache::CacheStore s(opts());
    s.put(1, 1, bytes({1, 1, 1}));
    s.put(2, 2, bytes({2, 2, 2}));
  }
  truncate_log_by(2);  // crash mid-append of the second record
  cache::CacheStore s(opts());
  EXPECT_TRUE(s.open_report().truncated_tail);
  EXPECT_EQ(s.entries(), 1u);
  EXPECT_TRUE(s.lookup(1, 1).has_value());
  EXPECT_FALSE(s.lookup(2, 2).has_value());
  // The file was truncated back to the last good byte: a new put appends
  // cleanly and the store reopens with both entries.
  s.put(3, 3, bytes({3}));
  EXPECT_EQ(s.entries(), 2u);
}

TEST_F(StoreFixture, BitFlippedRecordIsSkippedNotServed) {
  {
    cache::CacheStore s(opts());
    s.put(1, 1, bytes({1, 1, 1}));
    s.put(2, 2, bytes({2, 2, 2}));
  }
  // Flip one byte inside the LAST record's value (3 value bytes at EOF).
  patch_log(-1, 0xff);
  cache::CacheStore s(opts());
  EXPECT_EQ(s.open_report().corrupt_records, 1);
  EXPECT_EQ(s.entries(), 1u);
  EXPECT_TRUE(s.lookup(1, 1).has_value());
  EXPECT_FALSE(s.lookup(2, 2).has_value());  // a miss, never a wrong hit
}

TEST_F(StoreFixture, StaleEpochDiscardsWholesale) {
  {
    cache::CacheStore s(opts(/*epoch=*/7));
    s.put(1, 1, bytes({1}));
  }
  cache::CacheStore s(opts(/*epoch=*/8));
  EXPECT_TRUE(s.open_report().stale_epoch);
  EXPECT_EQ(s.entries(), 0u);
  EXPECT_FALSE(s.lookup(1, 1).has_value());
  // The store restarts fresh under the new epoch and works normally.
  s.put(5, 5, bytes({5}));
  EXPECT_TRUE(s.lookup(5, 5).has_value());
}

TEST_F(StoreFixture, FormatVersionMismatchDiscardsWholesale) {
  {
    cache::CacheStore s(opts());
    s.put(1, 1, bytes({1}));
  }
  // Header layout: magic u32 | format u32 | epoch u64 (little-endian).
  patch_log(4, static_cast<std::uint8_t>(cache::kStoreFormatVersion + 1));
  cache::CacheStore s(opts());
  EXPECT_TRUE(s.open_report().version_mismatch);
  EXPECT_EQ(s.entries(), 0u);
}

TEST_F(StoreFixture, SecondConcurrentOpenThrowsLocked) {
  cache::CacheStore first(opts());
  try {
    cache::CacheStore second(opts());
    FAIL() << "second open must throw CacheError kLocked";
  } catch (const cache::CacheError& e) {
    EXPECT_EQ(e.kind(), cache::CacheErrorKind::kLocked);
  }
  // The lock releases with the holder: a later open succeeds (checked by
  // every other test reopening after scope exit).
}

TEST_F(StoreFixture, EntryCapEvictsLeastRecentlyUsed) {
  cache::StoreOptions o = opts();
  o.max_entries = 4;
  o.evict_to_fraction = 0.5;
  cache::CacheStore s(o);
  for (std::uint64_t k = 1; k <= 4; ++k) s.put(k, k, bytes({1, 2, 3}));
  // Touch key 1 so it is the most recently used.
  EXPECT_TRUE(s.lookup(1, 1).has_value());
  s.put(5, 5, bytes({1, 2, 3}));  // exceeds the cap: evict down to 2
  EXPECT_LE(s.entries(), 4u);
  EXPECT_GT(s.evictions(), 0);
  EXPECT_TRUE(s.lookup(1, 1).has_value()) << "LRU must keep the touched key";
  EXPECT_TRUE(s.lookup(5, 5).has_value()) << "the new entry always survives";
}

TEST_F(StoreFixture, ClearEmptiesAndPersists) {
  {
    cache::CacheStore s(opts());
    s.put(1, 1, bytes({1}));
    s.clear();
    EXPECT_EQ(s.entries(), 0u);
    EXPECT_FALSE(s.lookup(1, 1).has_value());
  }
  cache::CacheStore s(opts());
  EXPECT_EQ(s.entries(), 0u);
}

// ---------------------------------------------------------------------------
// Layer 2b: the memo codec and the backend adapter's collision guard.

WindowMemo sample_memo() {
  WindowMemo m;
  m.sig2 = 0x1234567890abcdefULL;
  m.outcome = WindowOutcome::kSolved;
  m.empty_build = false;
  m.obj_delta = -3.25;
  m.changed = {{7, Placement{120, 3, true}}, {9, Placement{-40, 0, false}}};
  return m;
}

TEST(MemoCodec, RoundtripIsExact) {
  WindowMemo m = sample_memo();
  std::vector<std::uint8_t> enc = cache::encode_memo(m);
  std::optional<WindowMemo> d = cache::decode_memo(enc.data(), enc.size());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sig2, m.sig2);
  EXPECT_EQ(d->outcome, m.outcome);
  EXPECT_EQ(d->empty_build, m.empty_build);
  EXPECT_EQ(d->obj_delta, m.obj_delta);  // bitwise: doubles roundtrip exactly
  ASSERT_EQ(d->changed.size(), m.changed.size());
  for (std::size_t i = 0; i < m.changed.size(); ++i) {
    EXPECT_EQ(d->changed[i].first, m.changed[i].first);
    EXPECT_EQ(d->changed[i].second, m.changed[i].second);
  }
  // recorded_gen is run-local and deliberately not persisted.
  EXPECT_EQ(d->recorded_gen, 0u);
}

TEST(MemoCodec, MalformedInputsDecodeToNullopt) {
  std::vector<std::uint8_t> enc = cache::encode_memo(sample_memo());
  // Every truncation point fails closed.
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(cache::decode_memo(enc.data(), len).has_value())
        << "len " << len;
  }
  // Trailing garbage is corruption, not padding.
  std::vector<std::uint8_t> longer = enc;
  longer.push_back(0);
  EXPECT_FALSE(cache::decode_memo(longer.data(), longer.size()).has_value());
  // An out-of-range outcome byte (e.g. a persisted kCachedRemote, which
  // commit() must have mapped away) rejects the whole memo.
  std::vector<std::uint8_t> bad_outcome = enc;
  bad_outcome[8] = 200;
  EXPECT_FALSE(
      cache::decode_memo(bad_outcome.data(), bad_outcome.size()).has_value());
  bad_outcome[8] =
      static_cast<std::uint8_t>(WindowOutcome::kCachedRemote);
  EXPECT_FALSE(
      cache::decode_memo(bad_outcome.data(), bad_outcome.size()).has_value());
}

TEST_F(StoreFixture, PersistentCacheRejectsCollisionGuardMismatch) {
  cache::CacheStore s(opts());
  cache::PersistentCache pc(&s);
  WindowMemo m = sample_memo();
  // A record stored under a key whose b-half disagrees with the memo's
  // embedded sig2 is torn/foreign: lookup must miss, never serve it.
  s.put(42, 0xdeadULL, cache::encode_memo(m));  // m.sig2 != 0xdead
  EXPECT_FALSE(pc.lookup(WindowSig{42, 0xdeadULL}).has_value());
  EXPECT_EQ(pc.hits(), 0);
  EXPECT_EQ(pc.misses(), 1);
  // Stored through the adapter under the matching key, it round-trips.
  WindowSig sig{42, m.sig2};
  pc.store(sig, m);
  std::optional<WindowMemo> got = pc.lookup(sig);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->changed.size(), m.changed.size());
  EXPECT_EQ(pc.hits(), 1);
  EXPECT_EQ(pc.stores(), 1);
}

TEST(IncrementalMemoCaps, EntryCapEvictsOldestFirst) {
  IncrementalState inc;
  inc.set_memo_limits(/*max_entries=*/4, /*max_bytes=*/1u << 20);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    WindowMemo m;
    m.outcome = WindowOutcome::kSolved;
    inc.store(WindowSig{k, k}, std::move(m));
  }
  EXPECT_LE(inc.memo_entries(), 4u);
  EXPECT_GE(inc.memo_evictions(), 4L);
  EXPECT_EQ(inc.lookup(WindowSig{1, 1}), nullptr) << "oldest evicted";
  EXPECT_NE(inc.lookup(WindowSig{8, 8}), nullptr) << "newest kept";
}

// ---------------------------------------------------------------------------
// Layer 3: warm-rerun acceptance — bit-identical and MILP-free.

Design cache_design(std::uint64_t seed) {
  Rng rng(seed);
  DesignOptions dopt;
  dopt.scale = 0.25 + 0.25 * rng.uniform_real();
  dopt.utilization = 0.55 + 0.25 * rng.uniform_real();
  dopt.seed = rng.next() | 1;
  Design d = make_design("tiny", CellArch::kClosedM1, dopt);
  GlobalPlaceOptions gp;
  gp.seed = rng.next() | 1;
  global_place(d, gp);
  legalize(d);
  return d;
}

VM1OptOptions cache_opts() {
  VM1OptOptions o;
  o.sequence = {ParamSet{14, 2, 3, 1}};
  o.theta = 0;
  o.max_inner_iters = 2;
  o.threads = 2;
  o.params.alpha = 35;
  // Deterministic truncation only: the node limit binds, wall-clock never
  // (wall-clock-truncated solves are excluded from memoization).
  o.mip.max_nodes = 40;
  o.mip.time_limit_sec = 3600;
  o.mip.lp_options.time_limit_sec = 0;
  return o;
}

struct CacheRun {
  std::vector<Placement> placements;
  double objective = 0;
  double hpwl = 0;
  bool legal = false;
  VM1OptStats stats;
};

CacheRun run_with_cache(std::uint64_t seed, CacheBackend* cb) {
  Design d = cache_design(seed);
  VM1OptOptions o = cache_opts();
  o.cache = cb;
  VM1OptStats s = vm1opt(d, o);
  EXPECT_EQ(s.solved + s.fallback_rounding + s.fallback_greedy +
                s.rejected_audit + s.kept + s.faulted + s.skipped +
                s.cached_remote,
            s.windows)
      << "the eight outcome buckets must sum to windows (seed " << seed
      << ")";
  CacheRun r;
  r.placements = d.placements();
  r.objective = s.final.value;
  r.hpwl = s.final.hpwl;
  r.legal = is_legal(d);
  r.stats = s;
  return r;
}

void expect_identical(const CacheRun& warm, const CacheRun& cold,
                      std::uint64_t seed) {
  ASSERT_EQ(warm.placements.size(), cold.placements.size());
  for (std::size_t i = 0; i < warm.placements.size(); ++i) {
    ASSERT_EQ(warm.placements[i], cold.placements[i])
        << "seed " << seed << " instance " << i;
  }
  // Bitwise on purpose: a cache hit must replay the identical arithmetic
  // path, not merely land within a tolerance.
  EXPECT_EQ(warm.objective, cold.objective) << "seed " << seed;
  EXPECT_EQ(warm.hpwl, cold.hpwl) << "seed " << seed;
  EXPECT_TRUE(warm.legal) << "seed " << seed;
}

class CacheEquiv : public StoreFixture {};

TEST_F(CacheEquiv, WarmRerunIsBitIdenticalAndSkipsTheMilp) {
  for (std::uint64_t seed : {std::uint64_t{5}, std::uint64_t{11}}) {
    cache::StoreOptions o = opts();
    o.dir = dir_ + "/s" + std::to_string(seed);
    o.epoch = cache::default_epoch();
    cache::CacheStore store(o);
    cache::PersistentCache pc(&store);

    CacheRun cold = run_with_cache(seed, &pc);
    EXPECT_GT(cold.stats.cache_stores, 0) << "seed " << seed;
    EXPECT_EQ(cold.stats.cache_hits, 0) << "seed " << seed;

    CacheRun warm = run_with_cache(seed, &pc);
    expect_identical(warm, cold, seed);
    EXPECT_GT(warm.stats.cache_hits, 0) << "seed " << seed;
    EXPECT_GT(warm.stats.cached_remote, 0) << "seed " << seed;
    // Acceptance: the warm rerun must skip >= 90% of the windows the cold
    // run solved with a MILP.
    long cold_milp = cold.stats.solved + cold.stats.fallback_rounding +
                     cold.stats.fallback_greedy;
    long warm_milp = warm.stats.solved + warm.stats.fallback_rounding +
                     warm.stats.fallback_greedy;
    EXPECT_LE(warm_milp * 10, cold_milp) << "seed " << seed;
  }
}

TEST_F(CacheEquiv, WarmRerunSurvivesStoreReopen) {
  cache::StoreOptions o = opts();
  o.epoch = cache::default_epoch();
  CacheRun cold;
  {
    cache::CacheStore store(o);
    cache::PersistentCache pc(&store);
    cold = run_with_cache(3, &pc);
  }
  cache::CacheStore store(o);  // fresh process, same directory
  cache::PersistentCache pc(&store);
  CacheRun warm = run_with_cache(3, &pc);
  expect_identical(warm, cold, 3);
  EXPECT_GT(warm.stats.cache_hits, 0);
}

class CacheEquivFaults : public StoreFixture {
 protected:
  void SetUp() override {
    StoreFixture::SetUp();
    fault::set_config(fault::parse_spec("rate=0.25,seed=11"));
  }
  void TearDown() override {
    fault::set_config(fault::Config{});
    StoreFixture::TearDown();
  }
};

TEST_F(CacheEquivFaults, WarmRerunIsBitIdenticalUnderTheFaultStorm) {
  // The fault config is part of the window signature, so cold-run
  // injected-fault outcomes are themselves deterministic no-ops and get
  // memoized (dist_opt memoizes kFaulted iff the fault was an injected
  // drill). The warm run therefore serves even faulted windows from the
  // store — what must hold is bit-identity of the resulting state, and
  // that the storm changed signatures enough that both runs agree drill
  // for drill.
  cache::StoreOptions o = opts();
  o.epoch = cache::default_epoch();
  cache::CacheStore store(o);
  cache::PersistentCache pc(&store);
  CacheRun cold = run_with_cache(7, &pc);
  EXPECT_GT(cold.stats.faulted, 0) << "the storm must actually fire";
  CacheRun warm = run_with_cache(7, &pc);
  expect_identical(warm, cold, 7);
  EXPECT_GT(warm.stats.cache_hits, 0);
}

// ---------------------------------------------------------------------------
// Layer 3b: the remote tiers — worker memos and coalesced dispatch.

CacheRun run_remote(std::uint64_t seed, dist::Coordinator* coord) {
  Design d = cache_design(seed);
  VM1OptOptions o = cache_opts();
  o.threads = 1;
  o.backend = DistBackend::kProcesses;
  o.coordinator = coord;
  VM1OptStats s = vm1opt(d, o);
  CacheRun r;
  r.placements = d.placements();
  r.objective = s.final.value;
  r.hpwl = s.final.hpwl;
  r.legal = is_legal(d);
  r.stats = s;
  return r;
}

TEST(RemoteCacheTier, WorkerMemoServesRepeatRunsAsCachedRemote) {
  dist::CoordinatorOptions co;
  co.num_workers = 2;
  dist::Coordinator coord(co);
  CacheRun first = run_remote(21, &coord);
  EXPECT_EQ(first.stats.cached_remote, 0)
      << "a cold fleet has nothing memoized";
  // Same design, same signatures, same (still warm) workers: the second
  // run's solves come back from the worker memo tier — tagged cached on
  // the wire and classified kCachedRemote — or from the batched
  // kCacheQuery probe before dispatch.
  CacheRun second = run_remote(21, &coord);
  expect_identical(second, first, 21);
  EXPECT_GT(second.stats.cached_remote, 0);
  EXPECT_GT(second.stats.remote_cache_queries, 0)
      << "dispatch must probe the fleet before sending solves";
}

TEST(RemoteCacheTier, CoalescedDispatchIsBitIdentical) {
  CacheRun threads;
  {
    Design d = cache_design(23);
    VM1OptOptions o = cache_opts();
    VM1OptStats s = vm1opt(d, o);
    threads.placements = d.placements();
    threads.objective = s.final.value;
    threads.hpwl = s.final.hpwl;
    threads.legal = is_legal(d);
    threads.stats = s;
  }
  for (int coalesce : {4, 64}) {
    dist::CoordinatorOptions co;
    co.num_workers = 2;
    co.coalesce = coalesce;
    dist::Coordinator coord(co);
    CacheRun proc = run_remote(23, &coord);
    expect_identical(proc, threads, 23);
    // Coalescing must reduce traffic: strictly fewer request frames than
    // windows dispatched (the whole point of kRequestBatch).
    EXPECT_GT(proc.stats.remote_frames_sent, 0) << "coalesce " << coalesce;
    EXPECT_GT(proc.stats.remote_replies, 0) << "coalesce " << coalesce;
  }
}

class RemoteCacheFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::set_config(fault::parse_spec("rate=0.25,seed=11"));
  }
  void TearDown() override { fault::set_config(fault::Config{}); }
};

TEST_F(RemoteCacheFaults, CoalescedDispatchSurvivesTheFaultStorm) {
  CacheRun threads;
  {
    Design d = cache_design(29);
    VM1OptOptions o = cache_opts();
    VM1OptStats s = vm1opt(d, o);
    threads.placements = d.placements();
    threads.objective = s.final.value;
    threads.hpwl = s.final.hpwl;
    threads.legal = is_legal(d);
    threads.stats = s;
  }
  dist::CoordinatorOptions co;
  co.num_workers = 2;
  co.coalesce = 8;
  dist::Coordinator coord(co);
  CacheRun proc = run_remote(29, &coord);
  expect_identical(proc, threads, 29);
}

}  // namespace
}  // namespace vm1
