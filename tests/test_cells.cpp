#include "cells/library_builder.h"

#include <gtest/gtest.h>

#include <set>

namespace vm1 {
namespace {

class LibraryPerArch : public ::testing::TestWithParam<CellArch> {};

TEST_P(LibraryPerArch, HasAllMastersInThreeVts) {
  Library lib = build_library(GetParam());
  EXPECT_EQ(lib.arch(), GetParam());
  for (const char* base :
       {"INV_X1", "INV_X2", "BUF_X1", "NAND2_X1", "NAND2_X2", "NOR2_X1",
        "AOI21_X1", "OAI21_X1", "XOR2_X1", "MUX2_X1", "DFF_X1"}) {
    for (const char* vt : {"_LVT", "_SVT", "_HVT"}) {
      EXPECT_GE(lib.find(std::string(base) + vt), 0)
          << base << vt << " missing";
    }
  }
  EXPECT_GE(lib.find("FILL1"), 0);
  EXPECT_GE(lib.find("FILL2"), 0);
  EXPECT_GE(lib.find("FILL4"), 0);
}

TEST_P(LibraryPerArch, EveryLogicCellHasOneOutput) {
  Library lib = build_library(GetParam());
  for (const Cell& c : lib.cells()) {
    if (c.filler) {
      EXPECT_TRUE(c.pins.empty());
      continue;
    }
    int outputs = 0;
    for (const PinInfo& p : c.pins) {
      if (p.dir == PinDir::kOutput) ++outputs;
    }
    EXPECT_EQ(outputs, 1) << c.name;
  }
}

TEST_P(LibraryPerArch, PinGeometryInsideCell) {
  Library lib = build_library(GetParam());
  for (const Cell& c : lib.cells()) {
    for (const PinInfo& p : c.pins) {
      EXPECT_GE(p.xmin, 0) << c.name << "/" << p.name;
      EXPECT_LE(p.xmax, c.width_sites) << c.name << "/" << p.name;
      EXPECT_GE(p.x_track, 0);
      EXPECT_LE(p.x_track, c.width_sites);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, LibraryPerArch,
                         ::testing::Values(CellArch::kClosedM1,
                                           CellArch::kOpenM1,
                                           CellArch::kConventional12T));

TEST(Cells, ClosedM1PinsAre1DOnSiteGrid) {
  Library lib = build_library(CellArch::kClosedM1);
  for (const Cell& c : lib.cells()) {
    for (const PinInfo& p : c.pins) {
      EXPECT_EQ(p.xmin, p.xmax) << c.name << "/" << p.name;       // 1D pin
      EXPECT_EQ(p.xmin, p.x_track);
      // Interior track: boundary tracks carry the PG pins.
      EXPECT_GT(p.x_track, 0) << c.name << "/" << p.name;
      EXPECT_LT(p.x_track, c.width_sites) << c.name << "/" << p.name;
      ASSERT_EQ(p.shapes.size(), 1u);
      EXPECT_EQ(p.shapes[0].layer, LayerId::kM1);
      EXPECT_EQ(p.shapes[0].box.width(), 0);  // vertical segment
    }
  }
}

TEST(Cells, OpenM1PinsAreHorizontalM0Segments) {
  Library lib = build_library(CellArch::kOpenM1);
  for (const Cell& c : lib.cells()) {
    for (const PinInfo& p : c.pins) {
      EXPECT_LT(p.xmin, p.xmax) << c.name << "/" << p.name;
      ASSERT_EQ(p.shapes.size(), 1u);
      EXPECT_EQ(p.shapes[0].layer, LayerId::kM0);
      EXPECT_EQ(p.shapes[0].box.height(), 0);  // horizontal segment
    }
  }
}

TEST(Cells, OpenM1PinsOnSameM0TrackDoNotOverlap) {
  Library lib = build_library(CellArch::kOpenM1);
  for (const Cell& c : lib.cells()) {
    for (std::size_t i = 0; i < c.pins.size(); ++i) {
      for (std::size_t j = i + 1; j < c.pins.size(); ++j) {
        if (c.pins[i].y_off != c.pins[j].y_off) continue;
        Coord ov = interval_overlap(c.pins[i].xmin, c.pins[i].xmax,
                                    c.pins[j].xmin, c.pins[j].xmax);
        EXPECT_LE(ov, 0) << c.name << ": " << c.pins[i].name << " vs "
                         << c.pins[j].name;
      }
    }
  }
}

TEST(Cells, FlipMirrorsPinTrack) {
  Library lib = build_library(CellArch::kClosedM1);
  const Cell& inv = lib.cell(lib.find("INV_X1_SVT"));
  int a = inv.pin_index("A");
  ASSERT_GE(a, 0);
  Coord straight = inv.pin_x_track(a, false);
  Coord flipped = inv.pin_x_track(a, true);
  EXPECT_EQ(straight + flipped, inv.width_sites);
}

TEST(Cells, FlipMirrorsPinSpan) {
  Library lib = build_library(CellArch::kOpenM1);
  const Cell& nand = lib.cell(lib.find("NAND2_X1_SVT"));
  int zn = nand.pin_index("ZN");
  ASSERT_GE(zn, 0);
  auto [lo, hi] = nand.pin_span(zn, false);
  auto [flo, fhi] = nand.pin_span(zn, true);
  EXPECT_EQ(flo, nand.width_sites - hi);
  EXPECT_EQ(fhi, nand.width_sites - lo);
  EXPECT_EQ(hi - lo, fhi - flo);  // span length preserved
}

TEST(Cells, DoubleFlipIsIdentity) {
  Library lib = build_library(CellArch::kClosedM1);
  for (const Cell& c : lib.cells()) {
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      Coord x = c.pin_x_track(static_cast<int>(p), false);
      Coord xf = c.pin_x_track(static_cast<int>(p), true);
      EXPECT_EQ(c.width_sites - xf, x);
    }
  }
}

TEST(Cells, VtScalesLeakageAndDelay) {
  Library lib = build_library(CellArch::kClosedM1);
  const Cell& lvt = lib.cell(lib.find("INV_X1_LVT"));
  const Cell& svt = lib.cell(lib.find("INV_X1_SVT"));
  const Cell& hvt = lib.cell(lib.find("INV_X1_HVT"));
  EXPECT_GT(lvt.leakage, svt.leakage);
  EXPECT_GT(svt.leakage, hvt.leakage);
  EXPECT_LT(lvt.intrinsic_delay, svt.intrinsic_delay);
  EXPECT_LT(svt.intrinsic_delay, hvt.intrinsic_delay);
}

TEST(Cells, BestFillerSelection) {
  Library lib = build_library(CellArch::kClosedM1);
  EXPECT_EQ(best_filler(lib, 1), "FILL1");
  EXPECT_EQ(best_filler(lib, 2), "FILL2");
  EXPECT_EQ(best_filler(lib, 3), "FILL2");
  EXPECT_EQ(best_filler(lib, 9), "FILL4");
  EXPECT_EQ(best_filler(lib, 0), "");
}

TEST(Cells, LibraryLookup) {
  Library lib = build_library(CellArch::kOpenM1);
  EXPECT_EQ(lib.find("NO_SUCH_CELL"), -1);
  int idx = lib.find("DFF_X1_SVT");
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(lib.cell(idx).sequential);
  EXPECT_EQ(lib.cell(idx).name, "DFF_X1_SVT");
}

TEST(Cells, UniqueNames) {
  Library lib = build_library(CellArch::kClosedM1);
  std::set<std::string> names;
  for (const Cell& c : lib.cells()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
  }
}

}  // namespace
}  // namespace vm1
