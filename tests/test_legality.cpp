#include "design/legality.h"

#include <gtest/gtest.h>

namespace vm1 {
namespace {

class LegalityTest : public ::testing::Test {
 protected:
  LegalityTest() : d_(make_design("tiny", CellArch::kClosedM1)) {
    // Spread cells legally: one per stretch of sites, row-major.
    const Netlist& nl = d_.netlist();
    int x = 0, row = 0;
    for (int i = 0; i < nl.num_instances(); ++i) {
      int w = nl.cell_of(i).width_sites;
      if (x + w > d_.sites_per_row()) {
        x = 0;
        ++row;
      }
      EXPECT_LT(row, d_.num_rows()) << "test fixture overflow";
      d_.set_placement(i, Placement{x, row, false});
      x += w;
    }
  }
  Design d_;
};

TEST_F(LegalityTest, CleanPlacementPasses) {
  EXPECT_TRUE(is_legal(d_));
  EXPECT_TRUE(check_legality(d_).empty());
}

TEST_F(LegalityTest, DetectsOverlap) {
  d_.set_placement(1, d_.placement(0));  // stack two cells
  auto v = check_legality(d_);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].what.find("overlaps"), std::string::npos);
}

TEST_F(LegalityTest, DetectsRowOutOfRange) {
  d_.set_placement(0, Placement{0, d_.num_rows(), false});
  auto v = check_legality(d_);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].inst, 0);
  EXPECT_NE(v[0].what.find("row"), std::string::npos);
}

TEST_F(LegalityTest, DetectsXOverflow) {
  d_.set_placement(0, Placement{d_.sites_per_row() - 1, 0, false});
  auto v = check_legality(d_);
  bool found = false;
  for (const auto& viol : v) {
    if (viol.inst == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(LegalityTest, AbuttingCellsAreLegal) {
  // Fixture already packs cells shoulder to shoulder: shared boundary
  // sites must not be flagged.
  EXPECT_TRUE(is_legal(d_));
}

TEST_F(LegalityTest, OccupancyGridMatchesPlacement) {
  auto grid = occupancy_grid(d_);
  const Netlist& nl = d_.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d_.placement(i);
    for (int s = p.x; s < p.x + nl.cell_of(i).width_sites; ++s) {
      EXPECT_EQ(grid[p.row][s], i);
    }
  }
}

}  // namespace
}  // namespace vm1
