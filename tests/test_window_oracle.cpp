/// Brute-force oracle for the window MILP: for tiny windows (<= 6 movable
/// cells) the full cross-product of per-cell SCP candidates is enumerated,
/// every pairwise-site-legal assignment is scored with the *design-level*
/// objective restricted to the incident nets (beta_n * HPWL - alpha *
/// alignments [- epsilon * overlap for OpenM1]), and the branch-and-bound
/// window solve must land exactly on the enumerated optimum. This closes
/// the loop between the MILP encoding (big-M alignment constraints, lambda
/// exclusivity, folded fixed pins) and the objective the rest of the
/// system actually measures — any drift between the two shows up as the
/// solver "beating" or missing the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cells/library_builder.h"
#include "core/milp_builder.h"
#include "design/legality.h"
#include "place/global_placer.h"
#include "place/hpwl.h"
#include "place/legalizer.h"
#include "util/rng.h"

namespace vm1 {
namespace {

/// Two INVs in adjacent rows connected ZN -> A, misaligned by `offset`
/// sites, inside a wide-open core (same fixture as the builder tests).
Design make_pair_design(CellArch arch, int offset) {
  auto lib = std::make_unique<Library>(build_library(arch));
  auto nl = std::make_unique<Netlist>(lib.get());
  int inv = lib->find("INV_X1_SVT");
  const Cell& c = lib->cell(inv);
  int u0 = nl->add_instance("u0", inv);
  int u1 = nl->add_instance("u1", inv);
  int net = nl->add_net("n0");
  nl->connect(net, NetPin{u0, c.pin_index("ZN")});
  nl->connect(net, NetPin{u1, c.pin_index("A")});
  Design d("pair", Tech::make_7nm(), std::move(lib), std::move(nl), 4, 32);
  d.set_placement(u0, Placement{10, 1, false});
  d.set_placement(u1, Placement{11 + offset, 2, false});
  return d;
}

WindowProblem whole_core_problem(const Design& d, int lx, int ly) {
  WindowProblem wp;
  wp.design = &d;
  wp.window.x0 = 0;
  wp.window.x1 = d.sites_per_row();
  wp.window.row0 = 0;
  wp.window.row1 = d.num_rows() - 1;
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    wp.movable.push_back(i);
  }
  wp.lx = lx;
  wp.ly = ly;
  return wp;
}

std::vector<int> incident_routable_nets(const Design& d,
                                        const std::vector<int>& movable) {
  std::vector<int> nets;
  for (int i : movable) {
    for (int n : d.netlist().nets_of(i)) {
      if (d.netlist().net(n).routable()) nets.push_back(n);
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

/// Design-level objective restricted to `nets` — the oracle's yardstick.
/// Exactly mirrors evaluate_objective() but over the incident nets only
/// (everything else is constant across window assignments).
double restricted_objective(const Design& d, const std::vector<int>& nets,
                            const VM1Params& params) {
  const bool open = d.library().arch() == CellArch::kOpenM1;
  double value = 0;
  for (int n : nets) {
    value += params.beta_of(n) * static_cast<double>(net_hpwl(d, n));
    auto [cnt, ovl] = count_net_alignments(d, n, params);
    value -= params.alpha * static_cast<double>(cnt);
    if (open) value -= params.epsilon * ovl;
  }
  return value;
}

struct OracleResult {
  double best = std::numeric_limits<double>::infinity();
  long legal_assignments = 0;
  long long product = 0;  ///< full cross-product size (pre-legality)
};

/// Enumerates the cross-product of candidate lists and scores every
/// pairwise-legal assignment. Returns false (without touching `out`) when
/// the product exceeds `cap` — callers skip such windows. The design is
/// mutated during the sweep and restored before returning.
bool enumerate_oracle(Design& d, const WindowProblem& wp, long long cap,
                      OracleResult* out) {
  const Netlist& nl = d.netlist();
  auto mask = fixed_site_mask(d, wp.window, wp.movable);
  std::vector<std::vector<Candidate>> cands;
  long long product = 1;
  for (int inst : wp.movable) {
    cands.push_back(enumerate_candidates(d, inst, wp.window, mask, wp.lx,
                                         wp.ly, wp.allow_move,
                                         wp.allow_flip));
    if (cands.back().empty()) return false;
    product *= static_cast<long long>(cands.back().size());
    if (product > cap) return false;
  }

  std::vector<int> widths;
  for (int inst : wp.movable) widths.push_back(nl.cell_of(inst).width_sites);
  std::vector<int> nets = incident_routable_nets(d, wp.movable);
  std::vector<Placement> original;
  for (int inst : wp.movable) original.push_back(d.placement(inst));

  const std::size_t k = wp.movable.size();
  std::vector<std::size_t> idx(k, 0);
  OracleResult res;
  res.product = product;
  while (true) {
    // Constraint (9): movable footprints must be pairwise disjoint.
    bool legal = true;
    for (std::size_t i = 0; i < k && legal; ++i) {
      const Candidate& a = cands[i][idx[i]];
      for (std::size_t j = i + 1; j < k && legal; ++j) {
        const Candidate& b = cands[j][idx[j]];
        if (a.row == b.row && a.x < b.x + widths[j] &&
            b.x < a.x + widths[i]) {
          legal = false;
        }
      }
    }
    if (legal) {
      for (std::size_t i = 0; i < k; ++i) {
        d.set_placement(wp.movable[i], cands[i][idx[i]]);
      }
      res.best = std::min(res.best,
                          restricted_objective(d, nets, wp.params));
      ++res.legal_assignments;
    }
    // Odometer step.
    std::size_t pos = 0;
    while (pos < k && ++idx[pos] == cands[pos].size()) idx[pos++] = 0;
    if (pos == k) break;
  }
  for (std::size_t i = 0; i < k; ++i) {
    d.set_placement(wp.movable[i], original[i]);
  }
  *out = res;
  return true;
}

/// Builds + solves the window MILP (proof of optimality required), applies
/// the solution, and returns the applied placement's oracle value.
double milp_oracle_value(Design& d, const WindowProblem& wp,
                         const std::string& tag) {
  std::vector<int> nets = incident_routable_nets(d, wp.movable);
  BuiltMilp built = build_window_milp(wp);
  if (built.empty()) {
    // No net couples the window to the objective: everything is constant.
    return restricted_objective(d, nets, wp.params);
  }
  std::vector<double> warm = built.warm_start(d);
  milp::BranchAndBound::Options mo;
  mo.max_nodes = 400000;  // generous: the proof must close, not truncate
  mo.time_limit_sec = 100;
  milp::BranchAndBound bnb(mo);
  milp::MipResult r = bnb.solve(built.model, built.make_heuristic(), &warm);
  EXPECT_EQ(r.status, milp::MipStatus::kOptimal) << tag;
  EXPECT_FALSE(r.x.empty()) << tag;
  built.apply(d, r.x);
  EXPECT_TRUE(is_legal(d)) << tag;
  return restricted_objective(d, nets, wp.params);
}

/// One full oracle round: enumerated optimum == applied MILP optimum.
void run_oracle_case(Design& d, const WindowProblem& wp, long long cap,
                     const std::string& tag) {
  std::vector<int> nets = incident_routable_nets(d, wp.movable);
  double current = restricted_objective(d, nets, wp.params);
  OracleResult oracle;
  ASSERT_TRUE(enumerate_oracle(d, wp, cap, &oracle))
      << tag << ": enumeration exceeded cap";
  ASSERT_GT(oracle.legal_assignments, 0) << tag;
  // Candidate 0 of every cell is the current placement, so the identity
  // assignment is always enumerated: the oracle can never be worse than
  // doing nothing.
  EXPECT_LE(oracle.best, current + 1e-9) << tag;
  double milp_value = milp_oracle_value(d, wp, tag);
  // The MILP searches exactly the enumerated space, so it can neither beat
  // nor miss the oracle optimum.
  EXPECT_NEAR(milp_value, oracle.best, 1e-6)
      << tag << " (" << oracle.legal_assignments << " legal of "
      << oracle.product << " assignments)";
}

TEST(WindowOracle, PairClosedM1AcrossAlphas) {
  // Sweep alpha through "never align" (0), marginal, and "always align"
  // regimes; the oracle optimum shifts and the MILP must track it.
  for (double alpha : {0.0, 2.0, 5.0, 26.0, 60.0}) {
    Design d = make_pair_design(CellArch::kClosedM1, 2);
    WindowProblem wp = whole_core_problem(d, 3, 1);
    wp.params.alpha = alpha;
    wp.params.max_pairs_per_net = 10000;
    run_oracle_case(d, wp, 1 << 20,
                    "closed pair alpha=" + std::to_string(alpha));
  }
}

TEST(WindowOracle, PairOpenM1AcrossAlphasAndEpsilons) {
  for (double alpha : {0.0, 8.0, 40.0}) {
    for (double epsilon : {0.0, 2.0, 6.0}) {
      Design d = make_pair_design(CellArch::kOpenM1, 4);
      WindowProblem wp = whole_core_problem(d, 3, 1);
      wp.params.alpha = alpha;
      wp.params.epsilon = epsilon;
      wp.params.max_pairs_per_net = 10000;
      run_oracle_case(d, wp, 1 << 20,
                      "open pair alpha=" + std::to_string(alpha) +
                          " eps=" + std::to_string(epsilon));
    }
  }
}

/// Carves random tiny windows out of seeded `tiny` designs and oracles
/// each one. Windows with more than `kMaxCells` movables or a candidate
/// product over the cap are skipped; the test insists enough usable
/// windows were found so it cannot pass vacuously.
void random_window_cases(CellArch arch, std::uint64_t seed_base,
                         int want_cases, bool flip_only) {
  constexpr int kMaxCells = 6;
  constexpr long long kCap = 250000;
  int done = 0;
  for (std::uint64_t seed = seed_base;
       done < want_cases && seed < seed_base + 80; ++seed) {
    Rng rng(seed);
    DesignOptions dopt;
    dopt.scale = 0.25;
    dopt.utilization = 0.6 + 0.3 * rng.uniform_real();
    dopt.seed = rng.next() | 1;
    Design d = make_design("tiny", arch, dopt);
    GlobalPlaceOptions gp;
    gp.seed = rng.next() | 1;
    global_place(d, gp);
    legalize(d);

    WindowProblem wp;
    wp.design = &d;
    // Two-row windows wide enough to catch several cells: the interesting
    // oracle cases are the ones where movables compete for sites.
    int bw = 8 + static_cast<int>(rng.uniform(7));
    int bh = flip_only ? 1 + static_cast<int>(rng.uniform(2)) : 2;
    wp.window.x0 = static_cast<int>(rng.uniform(
        std::max(1, d.sites_per_row() - bw)));
    wp.window.x1 = std::min(d.sites_per_row(), wp.window.x0 + bw);
    wp.window.row0 = static_cast<int>(rng.uniform(
        std::max(1, d.num_rows() - bh)));
    wp.window.row1 = std::min(d.num_rows() - 1, wp.window.row0 + bh - 1);
    const Netlist& nl = d.netlist();
    for (int i = 0; i < nl.num_instances(); ++i) {
      const Placement& p = d.placement(i);
      if (wp.window.contains_footprint(p.x, p.row,
                                       nl.cell_of(i).width_sites)) {
        wp.movable.push_back(i);
      }
    }
    const int min_cells = flip_only ? 1 : 2;
    if (static_cast<int>(wp.movable.size()) < min_cells ||
        static_cast<int>(wp.movable.size()) > kMaxCells) {
      continue;
    }
    if (flip_only) {
      wp.allow_move = false;
      wp.allow_flip = true;
      wp.lx = 0;
      wp.ly = 0;
    } else {
      wp.lx = 1 + static_cast<int>(rng.uniform(2));
      wp.ly = static_cast<int>(rng.uniform(2));
      wp.allow_flip = rng.chance(0.5);
    }
    wp.params.alpha = 4 + 30 * rng.uniform_real();
    wp.params.max_pairs_per_net = 10000;

    OracleResult probe;  // pre-check the cap so skips don't count as cases
    if (!enumerate_oracle(d, wp, kCap, &probe)) continue;
    run_oracle_case(d, wp, kCap,
                    "seed " + std::to_string(seed) + " window [" +
                        std::to_string(wp.window.x0) + "," +
                        std::to_string(wp.window.x1) + ")x[" +
                        std::to_string(wp.window.row0) + "," +
                        std::to_string(wp.window.row1) + "]");
    ++done;
  }
  EXPECT_EQ(done, want_cases)
      << "not enough usable oracle windows; widen the seed range";
}

TEST(WindowOracle, RandomWindowsClosedM1) {
  random_window_cases(CellArch::kClosedM1, 1000, 6, /*flip_only=*/false);
}

TEST(WindowOracle, RandomWindowsOpenM1) {
  random_window_cases(CellArch::kOpenM1, 2000, 6, /*flip_only=*/false);
}

TEST(WindowOracle, RandomFlipOnlyWindows) {
  // The flip pass of Algorithm 1 (lx = ly = 0): 2^n assignments, so the
  // oracle is exhaustive even for the densest windows.
  random_window_cases(CellArch::kClosedM1, 3000, 4, /*flip_only=*/true);
  random_window_cases(CellArch::kOpenM1, 4000, 4, /*flip_only=*/true);
}

}  // namespace
}  // namespace vm1
