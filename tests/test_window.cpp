#include "core/window.h"

#include <gtest/gtest.h>

#include <set>

#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

Design placed() {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  return d;
}

TEST(WindowPartition, TilesTheCore) {
  Design d = placed();
  WindowGrid grid = partition_windows(d, 0, 0, 20, 3);
  EXPECT_EQ(static_cast<int>(grid.windows.size()),
            grid.grid_x * grid.grid_y);
  // Every site of every row belongs to exactly one window.
  for (int row = 0; row < d.num_rows(); row += 2) {
    for (int s = 0; s < d.sites_per_row(); s += 3) {
      int covering = 0;
      for (const Window& w : grid.windows) {
        if (row >= w.row0 && row <= w.row1 && s >= w.x0 && s < w.x1) {
          ++covering;
        }
      }
      EXPECT_EQ(covering, 1) << "site " << s << " row " << row;
    }
  }
}

TEST(WindowPartition, MovableCellsFullyInside) {
  Design d = placed();
  WindowGrid grid = partition_windows(d, 0, 0, 16, 2);
  const Netlist& nl = d.netlist();
  for (std::size_t w = 0; w < grid.windows.size(); ++w) {
    for (int inst : grid.movable[w]) {
      const Placement& p = d.placement(inst);
      EXPECT_TRUE(grid.windows[w].contains_footprint(
          p.x, p.row, nl.cell_of(inst).width_sites));
    }
  }
}

TEST(WindowPartition, EachCellMovableInAtMostOneWindow) {
  Design d = placed();
  WindowGrid grid = partition_windows(d, 0, 0, 16, 2);
  std::set<int> seen;
  for (const auto& cells : grid.movable) {
    for (int inst : cells) {
      EXPECT_TRUE(seen.insert(inst).second) << "instance " << inst;
    }
  }
}

TEST(WindowPartition, ShiftMakesBoundaryCellsMovable) {
  Design d = placed();
  WindowGrid a = partition_windows(d, 0, 0, 16, 2);
  WindowGrid b = partition_windows(d, 8, 1, 16, 2);
  std::set<int> ma, mb;
  for (const auto& cells : a.movable) ma.insert(cells.begin(), cells.end());
  for (const auto& cells : b.movable) mb.insert(cells.begin(), cells.end());
  // The union should cover more cells than either partition alone (the
  // boundary-straddling cells of one are interior in the other).
  std::set<int> both = ma;
  both.insert(mb.begin(), mb.end());
  EXPECT_GT(both.size(), ma.size());
  EXPECT_GT(both.size(), mb.size());
}

TEST(DiagonalBatches, CoverEveryWindowOnce) {
  Design d = placed();
  WindowGrid grid = partition_windows(d, 0, 0, 12, 2);
  auto batches = diagonal_batches(grid);
  std::set<int> seen;
  std::size_t total = 0;
  for (const auto& batch : batches) {
    for (int w : batch) {
      EXPECT_TRUE(seen.insert(w).second) << "window repeated";
      ++total;
    }
  }
  EXPECT_EQ(total, grid.windows.size());
}

TEST(DiagonalBatches, DisjointProjectionsWithinBatch) {
  Design d = placed();
  WindowGrid grid = partition_windows(d, 0, 0, 12, 2);
  auto batches = diagonal_batches(grid);
  for (const auto& batch : batches) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (std::size_t j = i + 1; j < batch.size(); ++j) {
        const Window& a = grid.windows[batch[i]];
        const Window& b = grid.windows[batch[j]];
        bool x_disjoint = a.x1 <= b.x0 || b.x1 <= a.x0;
        bool y_disjoint = a.row1 < b.row0 || b.row1 < a.row0;
        EXPECT_TRUE(x_disjoint) << "x projections intersect";
        EXPECT_TRUE(y_disjoint) << "y projections intersect";
      }
    }
  }
}

TEST(DiagonalBatches, CountIsMaxGridDimension) {
  Design d = placed();
  WindowGrid grid = partition_windows(d, 0, 0, 12, 2);
  auto batches = diagonal_batches(grid);
  EXPECT_EQ(static_cast<int>(batches.size()),
            std::max(grid.grid_x, grid.grid_y));
}

TEST(WindowPartition, OffsetNormalizationHandlesLargeShifts) {
  Design d = placed();
  // Offsets beyond one window period must behave like their modulo.
  WindowGrid a = partition_windows(d, 8, 1, 16, 2);
  WindowGrid b = partition_windows(d, 8 + 32, 1 + 4, 16, 2);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].x0, b.windows[i].x0);
    EXPECT_EQ(a.windows[i].row0, b.windows[i].row0);
  }
}

}  // namespace
}  // namespace vm1
