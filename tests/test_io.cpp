#include <gtest/gtest.h>

#include "cells/library_builder.h"
#include "io/def_io.h"
#include "io/def_reader.h"
#include "io/lef_reader.h"
#include "io/lef_writer.h"
#include "io/report.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

TEST(LefWriter, ContainsMacrosAndLayers) {
  Tech tech = Tech::make_7nm();
  Library lib = build_library(CellArch::kClosedM1);
  std::string lef = write_lef(tech, lib);
  EXPECT_NE(lef.find("MACRO INV_X1_SVT"), std::string::npos);
  EXPECT_NE(lef.find("LAYER M1"), std::string::npos);
  EXPECT_NE(lef.find("DIRECTION VERTICAL"), std::string::npos);
  EXPECT_NE(lef.find("PIN ZN"), std::string::npos);
  EXPECT_NE(lef.find("CLASS CORE SPACER"), std::string::npos);  // fillers
}

TEST(DefIo, RoundTripPlacement) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  std::string def = write_def(d);
  EXPECT_NE(def.find("COMPONENTS"), std::string::npos);

  // Scramble, then restore from DEF.
  Design d2 = make_design("tiny", CellArch::kClosedM1);
  auto problems = read_def_placement(def, d2);
  EXPECT_TRUE(problems.empty());
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    EXPECT_EQ(d.placement(i), d2.placement(i)) << "instance " << i;
  }
}

TEST(DefIo, ReportsUnknownInstances) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  std::string def =
      "COMPONENTS 1 ;\n- ghost INV_X1_SVT + PLACED ( 3 2 ) N ;\n"
      "END COMPONENTS\n";
  auto problems = read_def_placement(def, d);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("ghost"), std::string::npos);
}

TEST(DefIo, OrientationPreserved) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  d.set_placement(0, Placement{4, 1, true});
  d.set_placement(1, Placement{9, 0, false});
  std::string def = write_def(d);
  Design d2 = make_design("tiny", CellArch::kClosedM1);
  read_def_placement(def, d2);
  EXPECT_TRUE(d2.placement(0).flipped);
  EXPECT_FALSE(d2.placement(1).flipped);
}

TEST(DefIo, DuplicateComponentReportedFirstWins) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  std::string def =
      "COMPONENTS 2 ;\n"
      "- u0 INV_X1_SVT + PLACED ( 3 2 ) N ;\n"
      "- u0 INV_X1_SVT + PLACED ( 9 1 ) N ;\n"
      "END COMPONENTS\n";
  auto problems = read_def_placement(def, d);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("duplicate"), std::string::npos) << problems[0];
  EXPECT_NE(problems[0].find("u0"), std::string::npos);
  // The first record wins; the later one is rejected, not applied.
  EXPECT_EQ(d.placement(0), (Placement{3, 2, false}));
}

TEST(DefIo, OutsideDieAreaRejected) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  Placement before = d.placement(0);
  std::string def =
      "COMPONENTS 3 ;\n"
      "- u0 INV_X1_SVT + PLACED ( 100000 2 ) N ;\n"
      "- u1 INV_X1_SVT + PLACED ( 3 -1 ) N ;\n"
      "- u2 INV_X1_SVT + PLACED ( 3 100000 ) N ;\n"
      "END COMPONENTS\n";
  auto problems = read_def_placement(def, d);
  ASSERT_EQ(problems.size(), 3u);
  for (const std::string& p : problems) {
    EXPECT_NE(p.find("DIEAREA"), std::string::npos) << p;
  }
  EXPECT_EQ(d.placement(0), before);  // rejected records leave d untouched
}

// ---------------------------------------------------------------------------
// Full LEF/DEF ingestion (read_lef + read_def_design): every malformed
// input yields a typed IoError and never a partially-constructed result.

/// A placed small design plus its serialized LEF/DEF pair.
struct Ingest {
  Design d;
  std::string lef;
  std::string def;
};

Ingest make_ingest(CellArch arch) {
  DesignOptions opts;
  opts.scale = 0.3;
  Design d = make_design("tiny", arch, opts);
  global_place(d);
  legalize(d);
  std::string lef = write_lef(d.tech(), d.library());
  std::string def = write_def(d);
  return {std::move(d), std::move(lef), std::move(def)};
}

TEST(LefReader, RoundTripsOwnWriter) {
  for (CellArch arch : {CellArch::kConventional12T, CellArch::kClosedM1,
                        CellArch::kOpenM1}) {
    Tech tech = Tech::make_7nm();
    Library lib = build_library(arch);
    std::string lef = write_lef(tech, lib);
    LefContents back;
    IoError err;
    ASSERT_TRUE(read_lef(lef, &back, &err)) << err.str();
    EXPECT_EQ(back.lib.arch(), arch);
    EXPECT_EQ(back.lib.num_cells(), lib.num_cells());
    // Bit-exact: the reparsed library serializes to the identical LEF.
    EXPECT_EQ(write_lef(back.tech, back.lib), lef) << to_string(arch);
  }
}

TEST(LefReader, TruncatedFileIsTypedError) {
  Ingest in = make_ingest(CellArch::kClosedM1);
  // Cut mid-MACRO: everything after the first PIN keyword disappears.
  std::string cut = in.lef.substr(0, in.lef.find("PIN") + 3);
  LefContents out;
  IoError err;
  EXPECT_FALSE(read_lef(cut, &out, &err));
  EXPECT_EQ(err.kind, IoErrorKind::kTruncated) << err.str();
  EXPECT_EQ(out.lib.num_cells(), 0);  // untouched, not partially filled
}

TEST(LefReader, DuplicateMacroIsTypedError) {
  Tech tech = Tech::make_7nm();
  Library lib = build_library(CellArch::kClosedM1);
  std::string lef = write_lef(tech, lib);
  std::size_t m = lef.find("\nMACRO ");
  ASSERT_NE(m, std::string::npos);
  std::size_t name_at = m + 7;
  std::string name =
      lef.substr(name_at, lef.find('\n', name_at) - name_at);
  std::size_t end = lef.find("END " + name, m);
  ASSERT_NE(end, std::string::npos);
  end = lef.find('\n', end) + 1;
  // Splice the first MACRO block in a second time.
  std::string block = lef.substr(m + 1, end - m - 1);
  std::string dup = lef.substr(0, end) + block + lef.substr(end);
  LefContents out;
  IoError err;
  EXPECT_FALSE(read_lef(dup, &out, &err));
  EXPECT_EQ(err.kind, IoErrorKind::kDuplicateComponent) << err.str();
}

TEST(DefReader, BuildsCompleteDesign) {
  Ingest in = make_ingest(CellArch::kOpenM1);
  IoError err;
  std::unique_ptr<Design> d2 =
      read_def_design(in.def, in.d.tech(), in.d.library(), &err);
  ASSERT_NE(d2, nullptr) << err.str();
  EXPECT_EQ(d2->name(), in.d.name());
  EXPECT_EQ(d2->netlist().num_instances(), in.d.netlist().num_instances());
  EXPECT_EQ(d2->netlist().num_nets(), in.d.netlist().num_nets());
  EXPECT_EQ(d2->netlist().num_ios(), in.d.netlist().num_ios());
  EXPECT_EQ(d2->num_rows(), in.d.num_rows());
  EXPECT_EQ(d2->sites_per_row(), in.d.sites_per_row());
  for (int i = 0; i < in.d.netlist().num_instances(); ++i) {
    EXPECT_EQ(d2->placement(i), in.d.placement(i)) << "instance " << i;
  }
}

TEST(DefReader, TruncatedFileIsTypedError) {
  Ingest in = make_ingest(CellArch::kClosedM1);
  for (const char* marker : {"END COMPONENTS", "END NETS", "END DESIGN"}) {
    std::string cut = in.def.substr(0, in.def.find(marker));
    IoError err;
    EXPECT_EQ(read_def_design(cut, in.d.tech(), in.d.library(), &err),
              nullptr);
    EXPECT_EQ(err.kind, IoErrorKind::kTruncated)
        << marker << ": " << err.str();
  }
}

TEST(DefReader, UnknownMasterIsTypedError) {
  Ingest in = make_ingest(CellArch::kClosedM1);
  std::string bad = in.def;
  std::size_t name = bad.find("- u0 ") + 5;
  bad.replace(name, bad.find(' ', name) - name, "NO_SUCH_CELL");
  IoError err;
  EXPECT_EQ(read_def_design(bad, in.d.tech(), in.d.library(), &err), nullptr);
  EXPECT_EQ(err.kind, IoErrorKind::kUnknownMaster) << err.str();
  EXPECT_NE(err.message.find("NO_SUCH_CELL"), std::string::npos);
}

TEST(DefReader, DuplicateInstanceIsTypedError) {
  Ingest in = make_ingest(CellArch::kClosedM1);
  std::string bad = in.def;
  std::size_t a = bad.find("- u0 ");
  std::size_t e = bad.find('\n', a) + 1;
  std::string line = bad.substr(a, e - a);
  bad.insert(e, line);  // u0 declared twice (count now off by one too)
  IoError err;
  EXPECT_EQ(read_def_design(bad, in.d.tech(), in.d.library(), &err), nullptr);
  EXPECT_EQ(err.kind, IoErrorKind::kDuplicateComponent) << err.str();
}

TEST(DefReader, DanglingNetPinIsTypedError) {
  Ingest in = make_ingest(CellArch::kClosedM1);
  // A net referencing an instance that is never declared.
  {
    std::string bad = in.def;
    std::size_t n = bad.find("- n0 (");
    bad.replace(n, bad.find('\n', n) - n, "- n0 ( phantom A ) ;");
    IoError err;
    EXPECT_EQ(read_def_design(bad, in.d.tech(), in.d.library(), &err),
              nullptr);
    EXPECT_EQ(err.kind, IoErrorKind::kDanglingNetPin) << err.str();
    EXPECT_NE(err.message.find("phantom"), std::string::npos);
  }
  // A net referencing a pin its master does not have.
  {
    std::string bad = in.def;
    std::size_t n = bad.find("- n0 (");
    bad.replace(n, bad.find('\n', n) - n, "- n0 ( u0 NOT_A_PIN ) ;");
    IoError err;
    EXPECT_EQ(read_def_design(bad, in.d.tech(), in.d.library(), &err),
              nullptr);
    EXPECT_EQ(err.kind, IoErrorKind::kDanglingNetPin) << err.str();
  }
}

TEST(DefReader, OutsideDieAreaIsTypedError) {
  Ingest in = make_ingest(CellArch::kClosedM1);
  std::string bad = in.def;
  std::size_t a = bad.find("+ PLACED ( ");
  bad.replace(a, bad.find(')', a) - a, "+ PLACED ( 100000 0 ");
  IoError err;
  EXPECT_EQ(read_def_design(bad, in.d.tech(), in.d.library(), &err), nullptr);
  EXPECT_EQ(err.kind, IoErrorKind::kOutsideDieArea) << err.str();
}

TEST(Report, TableRendering) {
  Table t({"design", "RWL", "delta%"});
  t.add_row({"aes", "32560", "-6.4"});
  t.add_row({"jpeg", "96621", "-6.2"});
  std::string out = t.render();
  EXPECT_NE(out.find("design"), std::string::npos);
  EXPECT_NE(out.find("aes"), std::string::npos);
  EXPECT_NE(out.find("-6.4"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Rows align: every line has the same length.
  std::size_t first_nl = out.find('\n');
  std::size_t second_nl = out.find('\n', first_nl + 1);
  std::size_t third_nl = out.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
}

}  // namespace
}  // namespace vm1
