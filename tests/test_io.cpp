#include <gtest/gtest.h>

#include "cells/library_builder.h"
#include "io/def_io.h"
#include "io/lef_writer.h"
#include "io/report.h"
#include "place/global_placer.h"
#include "place/legalizer.h"

namespace vm1 {
namespace {

TEST(LefWriter, ContainsMacrosAndLayers) {
  Tech tech = Tech::make_7nm();
  Library lib = build_library(CellArch::kClosedM1);
  std::string lef = write_lef(tech, lib);
  EXPECT_NE(lef.find("MACRO INV_X1_SVT"), std::string::npos);
  EXPECT_NE(lef.find("LAYER M1"), std::string::npos);
  EXPECT_NE(lef.find("DIRECTION VERTICAL"), std::string::npos);
  EXPECT_NE(lef.find("PIN ZN"), std::string::npos);
  EXPECT_NE(lef.find("CLASS CORE SPACER"), std::string::npos);  // fillers
}

TEST(DefIo, RoundTripPlacement) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  global_place(d);
  legalize(d);
  std::string def = write_def(d);
  EXPECT_NE(def.find("COMPONENTS"), std::string::npos);

  // Scramble, then restore from DEF.
  Design d2 = make_design("tiny", CellArch::kClosedM1);
  auto problems = read_def_placement(def, d2);
  EXPECT_TRUE(problems.empty());
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    EXPECT_EQ(d.placement(i), d2.placement(i)) << "instance " << i;
  }
}

TEST(DefIo, ReportsUnknownInstances) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  std::string def =
      "COMPONENTS 1 ;\n- ghost INV_X1_SVT + PLACED ( 3 2 ) N ;\n"
      "END COMPONENTS\n";
  auto problems = read_def_placement(def, d);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("ghost"), std::string::npos);
}

TEST(DefIo, OrientationPreserved) {
  Design d = make_design("tiny", CellArch::kClosedM1);
  d.set_placement(0, Placement{4, 1, true});
  d.set_placement(1, Placement{9, 0, false});
  std::string def = write_def(d);
  Design d2 = make_design("tiny", CellArch::kClosedM1);
  read_def_placement(def, d2);
  EXPECT_TRUE(d2.placement(0).flipped);
  EXPECT_FALSE(d2.placement(1).flipped);
}

TEST(Report, TableRendering) {
  Table t({"design", "RWL", "delta%"});
  t.add_row({"aes", "32560", "-6.4"});
  t.add_row({"jpeg", "96621", "-6.2"});
  std::string out = t.render();
  EXPECT_NE(out.find("design"), std::string::npos);
  EXPECT_NE(out.find("aes"), std::string::npos);
  EXPECT_NE(out.find("-6.4"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Rows align: every line has the same length.
  std::size_t first_nl = out.find('\n');
  std::size_t second_nl = out.find('\n', first_nl + 1);
  std::size_t third_nl = out.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
}

}  // namespace
}  // namespace vm1
