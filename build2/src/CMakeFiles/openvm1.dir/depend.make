# Empty dependencies file for openvm1.
# This may be replaced when dependencies are built.
