
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/cell.cpp" "src/CMakeFiles/openvm1.dir/cells/cell.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/cells/cell.cpp.o.d"
  "/root/repo/src/cells/library_builder.cpp" "src/CMakeFiles/openvm1.dir/cells/library_builder.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/cells/library_builder.cpp.o.d"
  "/root/repo/src/core/candidates.cpp" "src/CMakeFiles/openvm1.dir/core/candidates.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/candidates.cpp.o.d"
  "/root/repo/src/core/dist_opt.cpp" "src/CMakeFiles/openvm1.dir/core/dist_opt.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/dist_opt.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/CMakeFiles/openvm1.dir/core/flow.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/flow.cpp.o.d"
  "/root/repo/src/core/greedy_aligner.cpp" "src/CMakeFiles/openvm1.dir/core/greedy_aligner.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/greedy_aligner.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/CMakeFiles/openvm1.dir/core/incremental.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/incremental.cpp.o.d"
  "/root/repo/src/core/milp_builder_closed.cpp" "src/CMakeFiles/openvm1.dir/core/milp_builder_closed.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/milp_builder_closed.cpp.o.d"
  "/root/repo/src/core/milp_builder_open.cpp" "src/CMakeFiles/openvm1.dir/core/milp_builder_open.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/milp_builder_open.cpp.o.d"
  "/root/repo/src/core/vm1opt.cpp" "src/CMakeFiles/openvm1.dir/core/vm1opt.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/vm1opt.cpp.o.d"
  "/root/repo/src/core/window.cpp" "src/CMakeFiles/openvm1.dir/core/window.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/window.cpp.o.d"
  "/root/repo/src/core/window_audit.cpp" "src/CMakeFiles/openvm1.dir/core/window_audit.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/window_audit.cpp.o.d"
  "/root/repo/src/core/window_solve.cpp" "src/CMakeFiles/openvm1.dir/core/window_solve.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/core/window_solve.cpp.o.d"
  "/root/repo/src/design/design.cpp" "src/CMakeFiles/openvm1.dir/design/design.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/design/design.cpp.o.d"
  "/root/repo/src/design/legality.cpp" "src/CMakeFiles/openvm1.dir/design/legality.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/design/legality.cpp.o.d"
  "/root/repo/src/dist/coordinator.cpp" "src/CMakeFiles/openvm1.dir/dist/coordinator.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/dist/coordinator.cpp.o.d"
  "/root/repo/src/dist/wire.cpp" "src/CMakeFiles/openvm1.dir/dist/wire.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/dist/wire.cpp.o.d"
  "/root/repo/src/dist/worker.cpp" "src/CMakeFiles/openvm1.dir/dist/worker.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/dist/worker.cpp.o.d"
  "/root/repo/src/io/def_io.cpp" "src/CMakeFiles/openvm1.dir/io/def_io.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/io/def_io.cpp.o.d"
  "/root/repo/src/io/lef_writer.cpp" "src/CMakeFiles/openvm1.dir/io/lef_writer.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/io/lef_writer.cpp.o.d"
  "/root/repo/src/io/report.cpp" "src/CMakeFiles/openvm1.dir/io/report.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/io/report.cpp.o.d"
  "/root/repo/src/lp/dense_tableau.cpp" "src/CMakeFiles/openvm1.dir/lp/dense_tableau.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/lp/dense_tableau.cpp.o.d"
  "/root/repo/src/lp/factor.cpp" "src/CMakeFiles/openvm1.dir/lp/factor.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/lp/factor.cpp.o.d"
  "/root/repo/src/lp/pricing.cpp" "src/CMakeFiles/openvm1.dir/lp/pricing.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/lp/pricing.cpp.o.d"
  "/root/repo/src/lp/revised.cpp" "src/CMakeFiles/openvm1.dir/lp/revised.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/lp/revised.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/openvm1.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/milp/branch_and_bound.cpp" "src/CMakeFiles/openvm1.dir/milp/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/milp/branch_and_bound.cpp.o.d"
  "/root/repo/src/milp/model.cpp" "src/CMakeFiles/openvm1.dir/milp/model.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/milp/model.cpp.o.d"
  "/root/repo/src/netlist/generator.cpp" "src/CMakeFiles/openvm1.dir/netlist/generator.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/netlist/generator.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/openvm1.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/openvm1.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/progress.cpp" "src/CMakeFiles/openvm1.dir/obs/progress.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/obs/progress.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/openvm1.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/obs/trace.cpp.o.d"
  "/root/repo/src/place/abacus.cpp" "src/CMakeFiles/openvm1.dir/place/abacus.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/place/abacus.cpp.o.d"
  "/root/repo/src/place/detailed_placer.cpp" "src/CMakeFiles/openvm1.dir/place/detailed_placer.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/place/detailed_placer.cpp.o.d"
  "/root/repo/src/place/global_placer.cpp" "src/CMakeFiles/openvm1.dir/place/global_placer.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/place/global_placer.cpp.o.d"
  "/root/repo/src/place/hpwl.cpp" "src/CMakeFiles/openvm1.dir/place/hpwl.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/place/hpwl.cpp.o.d"
  "/root/repo/src/place/legalizer.cpp" "src/CMakeFiles/openvm1.dir/place/legalizer.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/place/legalizer.cpp.o.d"
  "/root/repo/src/route/maze_router.cpp" "src/CMakeFiles/openvm1.dir/route/maze_router.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/route/maze_router.cpp.o.d"
  "/root/repo/src/route/metrics.cpp" "src/CMakeFiles/openvm1.dir/route/metrics.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/route/metrics.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/CMakeFiles/openvm1.dir/route/router.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/route/router.cpp.o.d"
  "/root/repo/src/route/track_graph.cpp" "src/CMakeFiles/openvm1.dir/route/track_graph.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/route/track_graph.cpp.o.d"
  "/root/repo/src/tech/tech.cpp" "src/CMakeFiles/openvm1.dir/tech/tech.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/tech/tech.cpp.o.d"
  "/root/repo/src/timing/power.cpp" "src/CMakeFiles/openvm1.dir/timing/power.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/timing/power.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/CMakeFiles/openvm1.dir/timing/sta.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/timing/sta.cpp.o.d"
  "/root/repo/src/util/fault_injection.cpp" "src/CMakeFiles/openvm1.dir/util/fault_injection.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/fault_injection.cpp.o.d"
  "/root/repo/src/util/geometry.cpp" "src/CMakeFiles/openvm1.dir/util/geometry.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/geometry.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/openvm1.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/openvm1.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/openvm1.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/subprocess.cpp" "src/CMakeFiles/openvm1.dir/util/subprocess.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/subprocess.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/openvm1.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/openvm1.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
