file(REMOVE_RECURSE
  "libopenvm1.a"
)
