# Empty dependencies file for vm1_worker.
# This may be replaced when dependencies are built.
