file(REMOVE_RECURSE
  "CMakeFiles/vm1_worker.dir/vm1_worker.cpp.o"
  "CMakeFiles/vm1_worker.dir/vm1_worker.cpp.o.d"
  "vm1_worker"
  "vm1_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm1_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
