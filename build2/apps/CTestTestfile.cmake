# CMake generated Testfile for 
# Source directory: /root/repo/apps
# Build directory: /root/repo/build2/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
