# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/openvm1_tests[1]_include.cmake")
include("/root/repo/build2/tests/openvm1_oracle_tests[1]_include.cmake")
include("/root/repo/build2/tests/openvm1_concurrency_tests[1]_include.cmake")
include("/root/repo/build2/tests/openvm1_fault_tests[1]_include.cmake")
include("/root/repo/build2/tests/openvm1_dist_tests[1]_include.cmake")
