
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dist_backend_equiv.cpp" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_dist_backend_equiv.cpp.o" "gcc" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_dist_backend_equiv.cpp.o.d"
  "/root/repo/tests/test_dist_opt.cpp" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_dist_opt.cpp.o" "gcc" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_dist_opt.cpp.o.d"
  "/root/repo/tests/test_incremental_equiv.cpp" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_incremental_equiv.cpp.o" "gcc" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_incremental_equiv.cpp.o.d"
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_obs.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/openvm1_concurrency_tests.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/openvm1.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
