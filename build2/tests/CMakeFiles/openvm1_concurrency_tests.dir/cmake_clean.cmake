file(REMOVE_RECURSE
  "CMakeFiles/openvm1_concurrency_tests.dir/test_dist_backend_equiv.cpp.o"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_dist_backend_equiv.cpp.o.d"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_dist_opt.cpp.o"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_dist_opt.cpp.o.d"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_incremental_equiv.cpp.o"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_incremental_equiv.cpp.o.d"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_obs.cpp.o"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_obs.cpp.o.d"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_thread_pool.cpp.o"
  "CMakeFiles/openvm1_concurrency_tests.dir/test_thread_pool.cpp.o.d"
  "openvm1_concurrency_tests"
  "openvm1_concurrency_tests.pdb"
  "openvm1_concurrency_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openvm1_concurrency_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
