file(REMOVE_RECURSE
  "CMakeFiles/openvm1_fault_tests.dir/test_fault_injection.cpp.o"
  "CMakeFiles/openvm1_fault_tests.dir/test_fault_injection.cpp.o.d"
  "CMakeFiles/openvm1_fault_tests.dir/test_incremental_equiv.cpp.o"
  "CMakeFiles/openvm1_fault_tests.dir/test_incremental_equiv.cpp.o.d"
  "CMakeFiles/openvm1_fault_tests.dir/test_simplex.cpp.o"
  "CMakeFiles/openvm1_fault_tests.dir/test_simplex.cpp.o.d"
  "CMakeFiles/openvm1_fault_tests.dir/test_window_audit.cpp.o"
  "CMakeFiles/openvm1_fault_tests.dir/test_window_audit.cpp.o.d"
  "CMakeFiles/openvm1_fault_tests.dir/test_wire.cpp.o"
  "CMakeFiles/openvm1_fault_tests.dir/test_wire.cpp.o.d"
  "openvm1_fault_tests"
  "openvm1_fault_tests.pdb"
  "openvm1_fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openvm1_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
