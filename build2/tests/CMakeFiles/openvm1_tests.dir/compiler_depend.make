# Empty compiler generated dependencies file for openvm1_tests.
# This may be replaced when dependencies are built.
