
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abacus.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_abacus.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_abacus.cpp.o.d"
  "/root/repo/tests/test_branch_and_bound.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_branch_and_bound.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_branch_and_bound.cpp.o.d"
  "/root/repo/tests/test_candidates.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_candidates.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_candidates.cpp.o.d"
  "/root/repo/tests/test_cells.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_cells.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_cells.cpp.o.d"
  "/root/repo/tests/test_design.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_design.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_design.cpp.o.d"
  "/root/repo/tests/test_dist_opt.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_dist_opt.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_dist_opt.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_golden_run.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_golden_run.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_golden_run.cpp.o.d"
  "/root/repo/tests/test_greedy_aligner.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_greedy_aligner.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_greedy_aligner.cpp.o.d"
  "/root/repo/tests/test_hpwl.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_hpwl.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_hpwl.cpp.o.d"
  "/root/repo/tests/test_incremental_equiv.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_incremental_equiv.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_incremental_equiv.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_legality.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_legality.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_legality.cpp.o.d"
  "/root/repo/tests/test_logging.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_logging.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_logging.cpp.o.d"
  "/root/repo/tests/test_maze.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_maze.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_maze.cpp.o.d"
  "/root/repo/tests/test_milp_builder.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_milp_builder.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_milp_builder.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_obs.cpp.o.d"
  "/root/repo/tests/test_place.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_place.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_place.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_route_metrics.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_route_metrics.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_route_metrics.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_simplex.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_simplex.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_simplex.cpp.o.d"
  "/root/repo/tests/test_sta.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_sta.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_sta.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tech.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_tech.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_tech.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_track_graph.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_track_graph.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_track_graph.cpp.o.d"
  "/root/repo/tests/test_vm1opt.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_vm1opt.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_vm1opt.cpp.o.d"
  "/root/repo/tests/test_window.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_window.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_window.cpp.o.d"
  "/root/repo/tests/test_window_audit.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_window_audit.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_window_audit.cpp.o.d"
  "/root/repo/tests/test_window_oracle.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_window_oracle.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_window_oracle.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/openvm1_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/openvm1_tests.dir/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/openvm1.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
