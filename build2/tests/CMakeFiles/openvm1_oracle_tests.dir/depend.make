# Empty dependencies file for openvm1_oracle_tests.
# This may be replaced when dependencies are built.
