file(REMOVE_RECURSE
  "CMakeFiles/openvm1_oracle_tests.dir/test_window_oracle.cpp.o"
  "CMakeFiles/openvm1_oracle_tests.dir/test_window_oracle.cpp.o.d"
  "openvm1_oracle_tests"
  "openvm1_oracle_tests.pdb"
  "openvm1_oracle_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openvm1_oracle_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
