# Empty dependencies file for openvm1_dist_tests.
# This may be replaced when dependencies are built.
