file(REMOVE_RECURSE
  "CMakeFiles/openvm1_dist_tests.dir/test_coordinator.cpp.o"
  "CMakeFiles/openvm1_dist_tests.dir/test_coordinator.cpp.o.d"
  "CMakeFiles/openvm1_dist_tests.dir/test_dist_backend_equiv.cpp.o"
  "CMakeFiles/openvm1_dist_tests.dir/test_dist_backend_equiv.cpp.o.d"
  "CMakeFiles/openvm1_dist_tests.dir/test_wire.cpp.o"
  "CMakeFiles/openvm1_dist_tests.dir/test_wire.cpp.o.d"
  "openvm1_dist_tests"
  "openvm1_dist_tests.pdb"
  "openvm1_dist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openvm1_dist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
