# Empty dependencies file for openm1_flow.
# This may be replaced when dependencies are built.
