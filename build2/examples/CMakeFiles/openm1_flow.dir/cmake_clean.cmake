file(REMOVE_RECURSE
  "CMakeFiles/openm1_flow.dir/openm1_flow.cpp.o"
  "CMakeFiles/openm1_flow.dir/openm1_flow.cpp.o.d"
  "openm1_flow"
  "openm1_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openm1_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
