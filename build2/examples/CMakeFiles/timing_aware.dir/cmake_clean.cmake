file(REMOVE_RECURSE
  "CMakeFiles/timing_aware.dir/timing_aware.cpp.o"
  "CMakeFiles/timing_aware.dir/timing_aware.cpp.o.d"
  "timing_aware"
  "timing_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
