# Empty dependencies file for timing_aware.
# This may be replaced when dependencies are built.
