file(REMOVE_RECURSE
  "CMakeFiles/congestion_study.dir/congestion_study.cpp.o"
  "CMakeFiles/congestion_study.dir/congestion_study.cpp.o.d"
  "congestion_study"
  "congestion_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
