# Empty dependencies file for congestion_study.
# This may be replaced when dependencies are built.
