# Empty compiler generated dependencies file for closedm1_flow.
# This may be replaced when dependencies are built.
