file(REMOVE_RECURSE
  "CMakeFiles/closedm1_flow.dir/closedm1_flow.cpp.o"
  "CMakeFiles/closedm1_flow.dir/closedm1_flow.cpp.o.d"
  "closedm1_flow"
  "closedm1_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closedm1_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
