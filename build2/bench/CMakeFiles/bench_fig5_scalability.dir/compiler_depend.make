# Empty compiler generated dependencies file for bench_fig5_scalability.
# This may be replaced when dependencies are built.
