file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scalability.dir/bench_fig5_scalability.cpp.o"
  "CMakeFiles/bench_fig5_scalability.dir/bench_fig5_scalability.cpp.o.d"
  "bench_fig5_scalability"
  "bench_fig5_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
