file(REMOVE_RECURSE
  "CMakeFiles/bench_solver.dir/bench_solver.cpp.o"
  "CMakeFiles/bench_solver.dir/bench_solver.cpp.o.d"
  "bench_solver"
  "bench_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
