# Empty compiler generated dependencies file for bench_solver.
# This may be replaced when dependencies are built.
