file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o"
  "CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  "bench_ablation"
  "bench_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
