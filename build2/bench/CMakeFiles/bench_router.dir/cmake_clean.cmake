file(REMOVE_RECURSE
  "CMakeFiles/bench_router.dir/bench_router.cpp.o"
  "CMakeFiles/bench_router.dir/bench_router.cpp.o.d"
  "bench_router"
  "bench_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
