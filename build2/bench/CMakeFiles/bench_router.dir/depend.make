# Empty dependencies file for bench_router.
# This may be replaced when dependencies are built.
