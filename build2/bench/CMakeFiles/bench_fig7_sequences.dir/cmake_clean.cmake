file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sequences.dir/bench_fig7_sequences.cpp.o"
  "CMakeFiles/bench_fig7_sequences.dir/bench_fig7_sequences.cpp.o.d"
  "bench_fig7_sequences"
  "bench_fig7_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
