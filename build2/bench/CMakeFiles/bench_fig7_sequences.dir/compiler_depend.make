# Empty compiler generated dependencies file for bench_fig7_sequences.
# This may be replaced when dependencies are built.
