file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_drv.dir/bench_fig8_drv.cpp.o"
  "CMakeFiles/bench_fig8_drv.dir/bench_fig8_drv.cpp.o.d"
  "bench_fig8_drv"
  "bench_fig8_drv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
