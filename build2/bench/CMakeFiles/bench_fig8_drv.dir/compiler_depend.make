# Empty compiler generated dependencies file for bench_fig8_drv.
# This may be replaced when dependencies are built.
