file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_alpha.dir/bench_fig6_alpha.cpp.o"
  "CMakeFiles/bench_fig6_alpha.dir/bench_fig6_alpha.cpp.o.d"
  "bench_fig6_alpha"
  "bench_fig6_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
