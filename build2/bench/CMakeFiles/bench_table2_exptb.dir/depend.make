# Empty dependencies file for bench_table2_exptb.
# This may be replaced when dependencies are built.
