file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_exptb.dir/bench_table2_exptb.cpp.o"
  "CMakeFiles/bench_table2_exptb.dir/bench_table2_exptb.cpp.o.d"
  "bench_table2_exptb"
  "bench_table2_exptb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_exptb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
