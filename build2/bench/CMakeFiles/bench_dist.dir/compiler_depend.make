# Empty compiler generated dependencies file for bench_dist.
# This may be replaced when dependencies are built.
