file(REMOVE_RECURSE
  "CMakeFiles/bench_dist.dir/bench_dist.cpp.o"
  "CMakeFiles/bench_dist.dir/bench_dist.cpp.o.d"
  "bench_dist"
  "bench_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
