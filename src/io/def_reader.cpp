#include "io/def_reader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "io/text_tokens.h"

namespace vm1 {
namespace {

using iodetail::TokenCursor;

bool fail(IoError* err, IoErrorKind kind, int line, std::string msg) {
  if (err) *err = IoError{kind, line, std::move(msg)};
  return false;
}

bool parse_long(const std::string& s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s.c_str(), &end, 10);
  return end && *end == '\0' && end != s.c_str();
}

// Parsed-but-not-yet-constructed state: the Design is built only after the
// whole file validates, so errors can never leak a partial object.
struct ParsedComponent {
  std::string name;
  int cell = -1;
  Placement place;
};

struct ParsedIo {
  std::string name;
  bool is_input = true;
  Point pos;
};

struct ParsedConn {
  bool is_io = false;
  int inst = -1;  ///< component index, or IO index when is_io
  int pin = 0;
};

struct ParsedNet {
  std::string name;
  bool is_clock = false;
  std::vector<ParsedConn> conns;
};

struct DefParse {
  std::string design_name = "unnamed";
  bool have_diearea = false;
  long die_hx = 0, die_hy = 0;
  long rows = 0, sites = 0;  ///< 0 until ROWS seen or derived
  bool saw_components = false, saw_pins = false, saw_nets = false;
  std::vector<ParsedComponent> comps;
  std::vector<ParsedIo> ios;
  std::vector<ParsedNet> nets;
  std::unordered_map<std::string, int> comp_by_name;
  std::unordered_map<std::string, int> io_by_name;
};

bool expect(TokenCursor& cur, const char* what, std::string* out,
            IoError* err) {
  if (cur.done()) {
    return fail(err, IoErrorKind::kTruncated, cur.line(),
                std::string("expected ") + what);
  }
  *out = cur.next();
  return true;
}

bool expect_long(TokenCursor& cur, const char* what, long* out, IoError* err) {
  std::string tok;
  if (!expect(cur, what, &tok, err)) return false;
  if (!parse_long(tok, out)) {
    return fail(err, IoErrorKind::kSyntax, cur.line(),
                std::string("malformed ") + what + " '" + tok + "'");
  }
  return true;
}

bool expect_token(TokenCursor& cur, const char* want, IoError* err) {
  std::string tok;
  if (!expect(cur, want, &tok, err)) return false;
  if (tok != want) {
    return fail(err, IoErrorKind::kSyntax, cur.line(),
                std::string("expected '") + want + "', got '" + tok + "'");
  }
  return true;
}

bool parse_components(TokenCursor& cur, const Library& lib, DefParse* p,
                      IoError* err) {
  long declared = 0;
  if (!expect_long(cur, "COMPONENTS count", &declared, err)) return false;
  if (!expect_token(cur, ";", err)) return false;
  while (true) {
    if (cur.done()) {
      return fail(err, IoErrorKind::kTruncated, cur.line(),
                  "COMPONENTS section unterminated");
    }
    if (cur.peek() == "END") {
      cur.skip();
      if (!expect_token(cur, "COMPONENTS", err)) return false;
      break;
    }
    if (!expect_token(cur, "-", err)) return false;
    ParsedComponent c;
    std::string master;
    if (!expect(cur, "component name", &c.name, err) ||
        !expect(cur, "master name", &master, err)) {
      return false;
    }
    int line = cur.line();
    c.cell = lib.find(master);
    if (c.cell < 0) {
      return fail(err, IoErrorKind::kUnknownMaster, line,
                  "component " + c.name + " references master " + master);
    }
    if (!p->comp_by_name
             .emplace(c.name, static_cast<int>(p->comps.size()))
             .second) {
      return fail(err, IoErrorKind::kDuplicateComponent, line,
                  "component " + c.name + " declared twice");
    }
    // "+ PLACED ( x row ) N|FS" — also accept UNPLACED components.
    std::string plus;
    if (!expect(cur, "'+'", &plus, err)) return false;
    std::string kind;
    if (!expect(cur, "placement status", &kind, err)) return false;
    if (kind == "PLACED" || kind == "FIXED") {
      long x = 0, row = 0;
      if (!expect_token(cur, "(", err) ||
          !expect_long(cur, "component x", &x, err) ||
          !expect_long(cur, "component row", &row, err) ||
          !expect_token(cur, ")", err)) {
        return false;
      }
      std::string orient;
      if (!expect(cur, "orientation", &orient, err)) return false;
      long width = lib.cell(c.cell).width_sites;
      if (x < 0 || row < 0 || (p->rows > 0 && row >= p->rows) ||
          (p->sites > 0 && x + width > p->sites)) {
        return fail(err, IoErrorKind::kOutsideDieArea, line,
                    "component " + c.name + " at (" + std::to_string(x) +
                        ", " + std::to_string(row) + ") outside DIEAREA");
      }
      c.place = Placement{static_cast<int>(x), static_cast<int>(row),
                          orient == "FS"};
    }
    if (!expect_token(cur, ";", err)) return false;
    p->comps.push_back(std::move(c));
  }
  if (declared != static_cast<long>(p->comps.size())) {
    return fail(err, IoErrorKind::kSyntax, cur.line(),
                "COMPONENTS declares " + std::to_string(declared) +
                    " entries but lists " + std::to_string(p->comps.size()));
  }
  return true;
}

bool parse_pins(TokenCursor& cur, DefParse* p, IoError* err) {
  long declared = 0;
  if (!expect_long(cur, "PINS count", &declared, err)) return false;
  if (!expect_token(cur, ";", err)) return false;
  while (true) {
    if (cur.done()) {
      return fail(err, IoErrorKind::kTruncated, cur.line(),
                  "PINS section unterminated");
    }
    if (cur.peek() == "END") {
      cur.skip();
      if (!expect_token(cur, "PINS", err)) return false;
      break;
    }
    if (!expect_token(cur, "-", err)) return false;
    ParsedIo io;
    if (!expect(cur, "pin name", &io.name, err)) return false;
    int line = cur.line();
    std::string plus, dir;
    if (!expect(cur, "'+'", &plus, err) ||
        !expect(cur, "pin direction", &dir, err)) {
      return false;
    }
    if (dir == "INPUT") {
      io.is_input = true;
    } else if (dir == "OUTPUT") {
      io.is_input = false;
    } else {
      return fail(err, IoErrorKind::kBadValue, line,
                  "pin " + io.name + " direction " + dir);
    }
    long x = 0, y = 0;
    if (!expect_token(cur, "(", err) || !expect_long(cur, "pin x", &x, err) ||
        !expect_long(cur, "pin y", &y, err) ||
        !expect_token(cur, ")", err) || !expect_token(cur, ";", err)) {
      return false;
    }
    if (!p->io_by_name.emplace(io.name, static_cast<int>(p->ios.size()))
             .second) {
      return fail(err, IoErrorKind::kDuplicateComponent, line,
                  "pin " + io.name + " declared twice");
    }
    io.pos = Point{static_cast<Coord>(x), static_cast<Coord>(y)};
    p->ios.push_back(std::move(io));
  }
  if (declared != static_cast<long>(p->ios.size())) {
    return fail(err, IoErrorKind::kSyntax, cur.line(),
                "PINS declares " + std::to_string(declared) +
                    " entries but lists " + std::to_string(p->ios.size()));
  }
  return true;
}

bool parse_nets(TokenCursor& cur, const Library& lib, DefParse* p,
                IoError* err) {
  long declared = 0;
  if (!expect_long(cur, "NETS count", &declared, err)) return false;
  if (!expect_token(cur, ";", err)) return false;
  std::unordered_map<std::string, int> net_by_name;
  // (component, pin) pairs already claimed by a net — a pin joins at most
  // one net, and Netlist::connect asserts it, so validate here.
  std::unordered_map<long, std::string> pin_claimed;
  while (true) {
    if (cur.done()) {
      return fail(err, IoErrorKind::kTruncated, cur.line(),
                  "NETS section unterminated");
    }
    if (cur.peek() == "END") {
      cur.skip();
      if (!expect_token(cur, "NETS", err)) return false;
      break;
    }
    if (!expect_token(cur, "-", err)) return false;
    ParsedNet net;
    if (!expect(cur, "net name", &net.name, err)) return false;
    if (!net_by_name.emplace(net.name, static_cast<int>(p->nets.size()))
             .second) {
      return fail(err, IoErrorKind::kDuplicateNet, cur.line(),
                  "net " + net.name + " declared twice");
    }
    while (true) {
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(),
                    "net " + net.name + " unterminated");
      }
      std::string tok = cur.next();
      if (tok == ";") break;
      if (tok == "+") {
        // "+ USE CLOCK" (other net attributes are tolerated and skipped).
        std::string kw;
        if (!expect(cur, "net attribute", &kw, err)) return false;
        if (kw == "USE") {
          std::string use;
          if (!expect(cur, "USE value", &use, err)) return false;
          net.is_clock = use == "CLOCK";
        }
        continue;
      }
      if (tok != "(") {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "net " + net.name + ": expected '(', got '" + tok + "'");
      }
      std::string a, b;
      if (!expect(cur, "connection target", &a, err) ||
          !expect(cur, "connection pin", &b, err) ||
          !expect_token(cur, ")", err)) {
        return false;
      }
      int line = cur.line();
      ParsedConn conn;
      if (a == "PIN") {
        auto it = p->io_by_name.find(b);
        if (it == p->io_by_name.end()) {
          return fail(err, IoErrorKind::kDanglingNetPin, line,
                      "net " + net.name + " references unknown IO " + b);
        }
        conn.is_io = true;
        conn.inst = it->second;
      } else {
        auto it = p->comp_by_name.find(a);
        if (it == p->comp_by_name.end()) {
          return fail(err, IoErrorKind::kDanglingNetPin, line,
                      "net " + net.name + " references unknown component " +
                          a);
        }
        conn.inst = it->second;
        const Cell& cell = lib.cell(p->comps[conn.inst].cell);
        conn.pin = cell.pin_index(b);
        if (conn.pin < 0) {
          return fail(err, IoErrorKind::kDanglingNetPin, line,
                      "net " + net.name + ": master " + cell.name +
                          " has no pin " + b);
        }
        long key = static_cast<long>(conn.inst) * 1024 + conn.pin;
        auto claimed = pin_claimed.emplace(key, net.name);
        if (!claimed.second) {
          return fail(err, IoErrorKind::kDanglingNetPin, line,
                      "pin " + a + "/" + b + " connected to both net " +
                          claimed.first->second + " and net " + net.name);
        }
      }
      net.conns.push_back(conn);
    }
    p->nets.push_back(std::move(net));
  }
  if (declared != static_cast<long>(p->nets.size())) {
    return fail(err, IoErrorKind::kSyntax, cur.line(),
                "NETS declares " + std::to_string(declared) +
                    " entries but lists " + std::to_string(p->nets.size()));
  }
  return true;
}

}  // namespace

std::unique_ptr<Design> read_def_design(const std::string& text,
                                        const Tech& tech, const Library& lib,
                                        IoError* err) {
  std::vector<iodetail::Tok> toks = iodetail::tokenize(text);
  TokenCursor cur(toks);
  DefParse p;
  bool terminated = false;

  while (!cur.done()) {
    std::string kw = cur.next();
    if (kw == "END" && !cur.done() && cur.peek() == "DESIGN") {
      cur.skip();
      terminated = true;
      break;
    }
    if (kw == "DESIGN") {
      if (!expect(cur, "design name", &p.design_name, err)) return nullptr;
      cur.skip_statement();
    } else if (kw == "DIEAREA") {
      long lx = 0, ly = 0;
      if (!expect_token(cur, "(", err) ||
          !expect_long(cur, "DIEAREA lx", &lx, err) ||
          !expect_long(cur, "DIEAREA ly", &ly, err) ||
          !expect_token(cur, ")", err) || !expect_token(cur, "(", err) ||
          !expect_long(cur, "DIEAREA hx", &p.die_hx, err) ||
          !expect_long(cur, "DIEAREA hy", &p.die_hy, err) ||
          !expect_token(cur, ")", err)) {
        return nullptr;
      }
      cur.skip_statement();
      if (lx != 0 || ly != 0 || p.die_hx <= 0 || p.die_hy <= 0) {
        fail(err, IoErrorKind::kBadValue, cur.line(),
             "DIEAREA must be (0 0) (hx>0 hy>0)");
        return nullptr;
      }
      p.have_diearea = true;
    } else if (kw == "ROWS") {
      if (!expect_long(cur, "ROWS count", &p.rows, err) ||
          !expect_token(cur, "SITES", err) ||
          !expect_long(cur, "SITES count", &p.sites, err)) {
        return nullptr;
      }
      cur.skip_statement();
      if (p.rows <= 0 || p.sites <= 0) {
        fail(err, IoErrorKind::kBadValue, cur.line(), "ROWS/SITES <= 0");
        return nullptr;
      }
    } else if (kw == "COMPONENTS") {
      if (p.rows == 0 && p.have_diearea) {
        // Derive the site grid from DIEAREA when no ROWS statement came
        // first (foreign DEF).
        p.rows = p.die_hy / tech.row_height();
        p.sites = p.die_hx / tech.site_width();
      }
      if (!parse_components(cur, lib, &p, err)) return nullptr;
      p.saw_components = true;
    } else if (kw == "PINS") {
      if (!parse_pins(cur, &p, err)) return nullptr;
      p.saw_pins = true;
    } else if (kw == "NETS") {
      if (!p.saw_components) {
        fail(err, IoErrorKind::kMissingSection, cur.line(),
             "NETS before COMPONENTS");
        return nullptr;
      }
      if (!parse_nets(cur, lib, &p, err)) return nullptr;
      p.saw_nets = true;
    } else {
      cur.skip_statement();  // VERSION and other preamble
    }
  }
  if (!terminated) {
    fail(err, IoErrorKind::kTruncated, cur.line(), "missing END DESIGN");
    return nullptr;
  }
  if (!p.saw_components) {
    fail(err, IoErrorKind::kMissingSection, 0, "no COMPONENTS section");
    return nullptr;
  }
  if (!p.saw_nets) {
    fail(err, IoErrorKind::kMissingSection, 0, "no NETS section");
    return nullptr;
  }
  if (p.rows == 0 && p.have_diearea) {
    p.rows = p.die_hy / tech.row_height();
    p.sites = p.die_hx / tech.site_width();
  }
  if (p.rows <= 0 || p.sites <= 0) {
    fail(err, IoErrorKind::kMissingSection, 0, "no DIEAREA or ROWS");
    return nullptr;
  }

  // Everything validated — construct the Design in one shot.
  auto lib_copy = std::make_unique<Library>(lib);
  auto nl = std::make_unique<Netlist>(lib_copy.get());
  for (const ParsedComponent& c : p.comps) nl->add_instance(c.name, c.cell);
  for (const ParsedIo& io : p.ios) nl->add_io(io.name, io.is_input);
  for (const ParsedNet& net : p.nets) {
    int n = nl->add_net(net.name, net.is_clock);
    for (const ParsedConn& conn : net.conns) {
      nl->connect(n, conn.is_io ? NetPin{-1, conn.inst}
                                : NetPin{conn.inst, conn.pin});
    }
  }
  auto d = std::make_unique<Design>(p.design_name, tech, std::move(lib_copy),
                                    std::move(nl), static_cast<int>(p.rows),
                                    static_cast<int>(p.sites));
  for (std::size_t i = 0; i < p.comps.size(); ++i) {
    d->set_placement(static_cast<int>(i), p.comps[i].place);
  }
  for (std::size_t i = 0; i < p.ios.size(); ++i) {
    d->set_io_position(static_cast<int>(i), p.ios[i].pos);
  }
  return d;
}

std::unique_ptr<Design> read_def_design_file(const std::string& path,
                                             const Tech& tech,
                                             const Library& lib,
                                             IoError* err) {
  std::ifstream in(path);
  if (!in) {
    fail(err, IoErrorKind::kFileNotFound, 0, path);
    return nullptr;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_def_design(ss.str(), tech, lib, err);
}

}  // namespace vm1
