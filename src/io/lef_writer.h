/// \file lef_writer.h
/// LEF-like text dump of a technology + library (debugging / inspection).
#pragma once

#include <string>

#include "cells/cell.h"

namespace vm1 {

/// Renders the library in a LEF-flavoured plain-text format.
std::string write_lef(const Tech& tech, const Library& lib);

/// Convenience: write to a file. Returns false on IO failure.
bool write_lef_file(const std::string& path, const Tech& tech,
                    const Library& lib);

}  // namespace vm1
