/// \file lef_reader.h
/// LEF macro/pin reader: parses a LEF-flavoured library description (the
/// format write_lef emits, a practical subset of LEF 5.7) back into a
/// Library + validated Tech, so real cell libraries can enter the flow
/// without the synthetic generator.
///
/// Supported constructs: VERSION, UNITS, SITE, LAYER (ROUTING), MACRO with
/// CLASS CORE [SPACER] / SIZE / PIN { DIRECTION, PORT LAYER RECT } and the
/// vm1_* vendor PROPERTY extensions carrying access geometry and electrical
/// data (see write_lef). Foreign LEF without those properties still loads:
/// pin access geometry is derived from the physical PORT shapes (M0 segment
/// midpoint for OpenM1-style pins, M1 stub x for ClosedM1-style pins) and
/// electrical data falls back to defaults.
///
/// On any error the reader returns false, fills *err with a typed IoError,
/// and leaves *out untouched — never a partially-constructed library.
#pragma once

#include <string>

#include "cells/cell.h"
#include "io/io_error.h"

namespace vm1 {

struct LefContents {
  Tech tech;    ///< the synthetic 7nm grid, validated against the LEF
  Library lib;
};

bool read_lef(const std::string& text, LefContents* out, IoError* err);
bool read_lef_file(const std::string& path, LefContents* out, IoError* err);

}  // namespace vm1
