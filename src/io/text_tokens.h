/// \file text_tokens.h
/// Shared line-numbered tokenizer for the LEF/DEF readers: whitespace
/// separated, with '(' ')' ';' always standing alone (LEF/DEF allow them
/// glued to operands) and '#' starting a to-end-of-line comment.
#pragma once

#include <string>
#include <vector>

namespace vm1::iodetail {

struct Tok {
  std::string s;
  int line = 0;  ///< 1-based source line
};

inline std::vector<Tok> tokenize(const std::string& text) {
  std::vector<Tok> toks;
  int line = 1;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      toks.push_back({cur, line});
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '#') {
      flush();
      while (i < text.size() && text[i] != '\n') ++i;
      if (i < text.size()) ++line;
      continue;
    }
    if (c == '\n') {
      flush();
      ++line;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      flush();
    } else if (c == '(' || c == ')' || c == ';') {
      flush();
      toks.push_back({std::string(1, c), line});
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return toks;
}

/// Cursor over a token stream with bounds-safe accessors.
class TokenCursor {
 public:
  explicit TokenCursor(const std::vector<Tok>& toks) : toks_(&toks) {}

  bool done() const { return pos_ >= toks_->size(); }
  const std::string& peek() const { return (*toks_)[pos_].s; }
  int line() const {
    if (done()) return toks_->empty() ? 0 : toks_->back().line;
    return (*toks_)[pos_].line;
  }
  const std::string& next() { return (*toks_)[pos_++].s; }
  void skip() { ++pos_; }
  /// Consumes tokens up to and including the next ';' (statement skip).
  void skip_statement() {
    while (!done() && next() != ";") {
    }
  }

 private:
  const std::vector<Tok>* toks_;
  std::size_t pos_ = 0;
};

}  // namespace vm1::iodetail
