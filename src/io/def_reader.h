/// \file def_reader.h
/// Full DEF reader: COMPONENTS + PINS + NETS into a complete standalone
/// Design (floorplan from DIEAREA/ROWS, instances bound to library masters,
/// full net connectivity, IO terminals with positions, placements applied).
/// This is the ingestion path for real designs — pair it with read_lef for
/// the library, or pass a programmatically-built Library.
///
/// On any error the reader returns nullptr and fills *err with a typed
/// IoError (truncated file, unknown master, duplicate component, dangling
/// net pin, placement outside DIEAREA, ...) — never a partially-constructed
/// Design.
#pragma once

#include <memory>
#include <string>

#include "design/design.h"
#include "io/io_error.h"

namespace vm1 {

std::unique_ptr<Design> read_def_design(const std::string& text,
                                        const Tech& tech, const Library& lib,
                                        IoError* err);
std::unique_ptr<Design> read_def_design_file(const std::string& path,
                                             const Tech& tech,
                                             const Library& lib, IoError* err);

}  // namespace vm1
