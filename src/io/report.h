/// \file report.h
/// Fixed-width table printing used by benches and examples to render the
/// paper's tables/figure series on stdout.
#pragma once

#include <string>
#include <vector>

namespace vm1 {

/// A simple left-padded table: set headers once, add rows of strings.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with column auto-sizing and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vm1
