/// \file io_error.h
/// Typed errors for netlist ingestion (LEF/DEF readers).
///
/// Every reader in src/io that constructs objects (a Library from LEF, a
/// complete Design from DEF) reports failures through IoError and returns
/// nothing on error — callers never see a partially-constructed result.
#pragma once

#include <string>

namespace vm1 {

enum class IoErrorKind {
  kFileNotFound,       ///< path cannot be opened
  kTruncated,          ///< file/section ends before its END marker
  kSyntax,             ///< malformed statement
  kBadValue,           ///< parsed but out-of-domain value (e.g. width <= 0)
  kMissingSection,     ///< a required section (COMPONENTS, NETS...) absent
  kUnknownMaster,      ///< COMPONENT references a cell not in the library
  kDuplicateComponent, ///< COMPONENT name declared twice
  kDuplicateNet,       ///< NET name declared twice
  kDanglingNetPin,     ///< NET references an unknown component/pin/IO
  kOutsideDieArea,     ///< placement outside DIEAREA / ROWS
  kUnsupportedTech,    ///< LEF tech incompatible with the synthetic grid
};

const char* to_string(IoErrorKind kind);

struct IoError {
  IoErrorKind kind = IoErrorKind::kSyntax;
  int line = 0;  ///< 1-based line in the source text; 0 = whole file
  std::string message;

  /// "unknown_master at line 12: component u7 references master FOO"
  std::string str() const {
    std::string s = to_string(kind);
    if (line > 0) s += " at line " + std::to_string(line);
    if (!message.empty()) s += ": " + message;
    return s;
  }
};

inline const char* to_string(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kFileNotFound: return "file_not_found";
    case IoErrorKind::kTruncated: return "truncated";
    case IoErrorKind::kSyntax: return "syntax";
    case IoErrorKind::kBadValue: return "bad_value";
    case IoErrorKind::kMissingSection: return "missing_section";
    case IoErrorKind::kUnknownMaster: return "unknown_master";
    case IoErrorKind::kDuplicateComponent: return "duplicate_component";
    case IoErrorKind::kDuplicateNet: return "duplicate_net";
    case IoErrorKind::kDanglingNetPin: return "dangling_net_pin";
    case IoErrorKind::kOutsideDieArea: return "outside_die_area";
    case IoErrorKind::kUnsupportedTech: return "unsupported_tech";
  }
  return "?";
}

}  // namespace vm1
