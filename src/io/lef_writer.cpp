#include "io/lef_writer.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace vm1 {
namespace {

/// Shortest decimal form that round-trips the double exactly — the LEF
/// vendor properties carry electrical data the reader must restore
/// bit-for-bit (the write_lef -> read_lef property test compares ==).
std::string fmt_double(double v) {
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  return std::string(buf, end);
}

}  // namespace

std::string write_lef(const Tech& tech, const Library& lib) {
  std::ostringstream os;
  os << "VERSION 5.7 ;\n";
  os << "# OpenVM1 synthetic " << to_string(lib.arch()) << " library\n";
  // Vendor property: lets the reader restore the architecture without
  // guessing it from pin layers (Conventional12T and ClosedM1 both use M1
  // pin stubs).
  os << "PROPERTY vm1_arch " << to_string(lib.arch()) << " ;\n";
  os << "UNITS\n  DATABASE SITES 1 ;\nEND UNITS\n\n";
  os << "SITE core\n  SIZE 1 BY " << tech.row_height() << " ;\nEND core\n\n";
  for (const Layer& l : tech.layers()) {
    os << "LAYER " << l.name << "\n  TYPE ROUTING ;\n  DIRECTION "
       << (l.dir == Dir::kVertical ? "VERTICAL" : "HORIZONTAL")
       << " ;\n  PITCH " << l.pitch << " ;\nEND " << l.name << "\n\n";
  }
  for (const Cell& c : lib.cells()) {
    os << "MACRO " << c.name << "\n";
    os << "  CLASS " << (c.filler ? "CORE SPACER" : "CORE") << " ;\n";
    os << "  SIZE " << c.width_sites << " BY " << tech.row_height()
       << " ;\n";
    // Electrical/flavour data LEF has no standard home for (it lives in
    // Liberty in a real flow) rides as vendor properties; the reader falls
    // back to defaults when they are absent.
    os << "  PROPERTY vm1_vt " << to_string(c.vt) << " vm1_sequential "
       << (c.sequential ? 1 : 0) << " vm1_drive_res " << fmt_double(c.drive_res)
       << " vm1_intrinsic " << fmt_double(c.intrinsic_delay) << " vm1_leakage "
       << fmt_double(c.leakage) << " ;\n";
    for (const PinInfo& p : c.pins) {
      os << "  PIN " << p.name << "\n    DIRECTION "
         << (p.dir == PinDir::kInput ? "INPUT" : "OUTPUT") << " ;\n";
      // Access geometry the optimizer consumes (x_track/span/y_off): the
      // physical PORT shapes below do not fully determine it (ClosedM1 pin
      // stubs all span y in [3, 11] regardless of y_off), so it is recorded
      // explicitly.
      os << "    PROPERTY vm1_x_track " << p.x_track << " vm1_xmin " << p.xmin
         << " vm1_xmax " << p.xmax << " vm1_y_off " << p.y_off << " vm1_cap "
         << fmt_double(p.cap) << " ;\n";
      for (const PinShape& s : p.shapes) {
        os << "    PORT LAYER "
           << tech.layer(s.layer).name << " RECT " << s.box.lx << " "
           << s.box.ly << " " << s.box.hx << " " << s.box.hy << " ;\n";
      }
      os << "  END " << p.name << "\n";
    }
    os << "END " << c.name << "\n\n";
  }
  os << "END LIBRARY\n";
  return os.str();
}

bool write_lef_file(const std::string& path, const Tech& tech,
                    const Library& lib) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_lef(tech, lib);
  return static_cast<bool>(out);
}

}  // namespace vm1
