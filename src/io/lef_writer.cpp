#include "io/lef_writer.h"

#include <fstream>
#include <sstream>

namespace vm1 {

std::string write_lef(const Tech& tech, const Library& lib) {
  std::ostringstream os;
  os << "VERSION 5.7 ;\n";
  os << "# OpenVM1 synthetic " << to_string(lib.arch()) << " library\n";
  os << "UNITS\n  DATABASE SITES 1 ;\nEND UNITS\n\n";
  os << "SITE core\n  SIZE 1 BY " << tech.row_height() << " ;\nEND core\n\n";
  for (const Layer& l : tech.layers()) {
    os << "LAYER " << l.name << "\n  TYPE ROUTING ;\n  DIRECTION "
       << (l.dir == Dir::kVertical ? "VERTICAL" : "HORIZONTAL")
       << " ;\n  PITCH " << l.pitch << " ;\nEND " << l.name << "\n\n";
  }
  for (const Cell& c : lib.cells()) {
    os << "MACRO " << c.name << "\n";
    os << "  CLASS " << (c.filler ? "CORE SPACER" : "CORE") << " ;\n";
    os << "  SIZE " << c.width_sites << " BY " << tech.row_height()
       << " ;\n";
    for (const PinInfo& p : c.pins) {
      os << "  PIN " << p.name << "\n    DIRECTION "
         << (p.dir == PinDir::kInput ? "INPUT" : "OUTPUT") << " ;\n";
      for (const PinShape& s : p.shapes) {
        os << "    PORT LAYER "
           << tech.layer(s.layer).name << " RECT " << s.box.lx << " "
           << s.box.ly << " " << s.box.hx << " " << s.box.hy << " ;\n";
      }
      os << "  END " << p.name << "\n";
    }
    os << "END " << c.name << "\n\n";
  }
  os << "END LIBRARY\n";
  return os.str();
}

bool write_lef_file(const std::string& path, const Tech& tech,
                    const Library& lib) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_lef(tech, lib);
  return static_cast<bool>(out);
}

}  // namespace vm1
