#include "io/def_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace vm1 {

std::string write_def(const Design& d) {
  const Netlist& nl = d.netlist();
  std::ostringstream os;
  os << "VERSION 5.7 ;\nDESIGN " << d.name() << " ;\n";
  Rect core = d.core();
  os << "DIEAREA ( " << core.lx << " " << core.ly << " ) ( " << core.hx
     << " " << core.hy << " ) ;\n";
  os << "ROWS " << d.num_rows() << " SITES " << d.sites_per_row() << " ;\n";
  os << "COMPONENTS " << nl.num_instances() << " ;\n";
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    os << "- " << nl.instance(i).name << " " << nl.cell_of(i).name
       << " + PLACED ( " << p.x << " " << p.row << " ) "
       << (p.flipped ? "FS" : "N") << " ;\n";
  }
  os << "END COMPONENTS\n";
  os << "PINS " << nl.num_ios() << " ;\n";
  for (int io = 0; io < nl.num_ios(); ++io) {
    const Point& pos = d.io_position(io);
    os << "- " << nl.io(io).name << " + "
       << (nl.io(io).is_input ? "INPUT" : "OUTPUT") << " ( " << pos.x << " "
       << pos.y << " ) ;\n";
  }
  os << "END PINS\n";
  // Full connectivity: connection order (driver first when one exists) is
  // preserved so the def_reader reconstructs identical net pin indices.
  os << "NETS " << nl.num_nets() << " ;\n";
  for (int n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    os << "- " << net.name;
    for (const NetPin& np : net.pins) {
      if (np.is_io()) {
        os << " ( PIN " << nl.io(np.pin).name << " )";
      } else {
        os << " ( " << nl.instance(np.inst).name << " "
           << nl.cell_of(np.inst).pins[np.pin].name << " )";
      }
    }
    if (net.is_clock) os << " + USE CLOCK";
    os << " ;\n";
  }
  os << "END NETS\n";
  os << "END DESIGN\n";
  return os.str();
}

bool write_def_file(const std::string& path, const Design& d) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_def(d);
  return static_cast<bool>(out);
}

std::vector<std::string> read_def_placement(const std::string& text,
                                            Design& d) {
  std::vector<std::string> problems;
  const Netlist& nl = d.netlist();
  std::unordered_map<std::string, int> by_name;
  for (int i = 0; i < nl.num_instances(); ++i) {
    by_name[nl.instance(i).name] = i;
  }

  std::istringstream in(text);
  std::string line;
  bool in_components = false;
  std::unordered_set<std::string> seen;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "COMPONENTS") {
      in_components = true;
      continue;
    }
    if (tok == "END") {
      std::string what;
      ls >> what;
      if (what == "COMPONENTS") in_components = false;
      continue;
    }
    if (!in_components || tok != "-") continue;
    std::string name, master, plus, placed, open;
    int x = 0, row = 0;
    std::string close, orient;
    ls >> name >> master >> plus >> placed >> open >> x >> row >> close >>
        orient;
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      problems.push_back("unknown instance " + name);
      continue;
    }
    if (!seen.insert(name).second) {
      problems.push_back("duplicate component " + name);
      continue;  // the first record wins; never silently overwrite
    }
    // Reject placements outside the restoring design's DIEAREA: the DEF may
    // come from a different floorplan, and applying an out-of-core
    // placement would silently corrupt downstream window/route state.
    int width = nl.cell_of(it->second).width_sites;
    if (x < 0 || row < 0 || row >= d.num_rows() ||
        x + width > d.sites_per_row()) {
      problems.push_back("placement outside DIEAREA for " + name + " (" +
                         std::to_string(x) + ", " + std::to_string(row) + ")");
      continue;
    }
    d.set_placement(it->second, Placement{x, row, orient == "FS"});
  }
  return problems;
}

std::vector<std::string> read_def_placement_file(const std::string& path,
                                                 Design& d) {
  std::ifstream in(path);
  if (!in) return {"cannot open " + path};
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_def_placement(ss.str(), d);
}

}  // namespace vm1
