#include "io/lef_reader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "io/text_tokens.h"

namespace vm1 {
namespace {

using iodetail::TokenCursor;

bool fail(IoError* err, IoErrorKind kind, int line, std::string msg) {
  if (err) *err = IoError{kind, line, std::move(msg)};
  return false;
}

bool parse_num(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end && *end == '\0' && end != s.c_str();
}

bool parse_int(const std::string& s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s.c_str(), &end, 10);
  return end && *end == '\0' && end != s.c_str();
}

bool arch_from_string(const std::string& s, CellArch* out) {
  for (CellArch a : {CellArch::kConventional12T, CellArch::kClosedM1,
                     CellArch::kOpenM1}) {
    if (s == to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool vt_from_string(const std::string& s, Vt* out) {
  for (Vt v : {Vt::kLvt, Vt::kSvt, Vt::kHvt}) {
    if (s == to_string(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

/// Key/value pairs of one `PROPERTY k v k v ... ;` statement.
bool parse_properties(TokenCursor& cur,
                      std::unordered_map<std::string, std::string>* props,
                      IoError* err) {
  while (!cur.done() && cur.peek() != ";") {
    std::string key = cur.next();
    if (cur.done() || cur.peek() == ";") {
      return fail(err, IoErrorKind::kSyntax, cur.line(),
                  "PROPERTY " + key + " has no value");
    }
    (*props)[key] = cur.next();
  }
  if (cur.done()) {
    return fail(err, IoErrorKind::kTruncated, cur.line(),
                "PROPERTY statement unterminated");
  }
  cur.skip();  // ';'
  return true;
}

struct PropReader {
  const std::unordered_map<std::string, std::string>& props;
  bool ok = true;
  std::string bad_key;

  double num(const std::string& key, double fallback) {
    auto it = props.find(key);
    if (it == props.end()) return fallback;
    double v = 0;
    if (!parse_num(it->second, &v)) {
      ok = false;
      bad_key = key;
      return fallback;
    }
    return v;
  }
};

/// Parses one PIN block (cursor sits after "PIN <name>"); consumes through
/// "END <name>".
bool parse_pin(TokenCursor& cur, const std::string& pin_name, const Tech& tech,
               bool* saw_m0, PinInfo* pin, IoError* err) {
  pin->name = pin_name;
  std::unordered_map<std::string, std::string> props;
  bool have_shape = false;
  while (true) {
    if (cur.done()) {
      return fail(err, IoErrorKind::kTruncated, cur.line(),
                  "PIN " + pin_name + " missing END");
    }
    std::string kw = cur.next();
    if (kw == "END") {
      if (cur.done() || cur.next() != pin_name) {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "PIN " + pin_name + " terminated by mismatched END");
      }
      break;
    }
    if (kw == "DIRECTION") {
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(),
                    "DIRECTION unterminated");
      }
      std::string dir = cur.next();
      if (dir == "INPUT") {
        pin->dir = PinDir::kInput;
      } else if (dir == "OUTPUT") {
        pin->dir = PinDir::kOutput;
      } else {
        return fail(err, IoErrorKind::kBadValue, cur.line(),
                    "pin direction " + dir);
      }
      cur.skip_statement();
    } else if (kw == "PROPERTY") {
      if (!parse_properties(cur, &props, err)) return false;
    } else if (kw == "PORT") {
      // PORT LAYER <name> RECT lx ly hx hy ;
      if (cur.done() || cur.next() != "LAYER") {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "PORT without LAYER in pin " + pin_name);
      }
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(), "PORT LAYER");
      }
      std::string lname = cur.next();
      int layer = -1;
      for (const Layer& l : tech.layers()) {
        if (l.name == lname) layer = layer_index(l.id);
      }
      if (layer < 0) {
        return fail(err, IoErrorKind::kUnsupportedTech, cur.line(),
                    "unknown layer " + lname + " in pin " + pin_name);
      }
      if (cur.done() || cur.next() != "RECT") {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "PORT LAYER without RECT in pin " + pin_name);
      }
      long v[4];
      for (long& x : v) {
        if (cur.done() || !parse_int(cur.next(), &x)) {
          return fail(err, IoErrorKind::kSyntax, cur.line(),
                      "malformed RECT in pin " + pin_name);
        }
      }
      pin->shapes.push_back({static_cast<LayerId>(layer),
                             Rect(static_cast<Coord>(v[0]),
                                  static_cast<Coord>(v[1]),
                                  static_cast<Coord>(v[2]),
                                  static_cast<Coord>(v[3]))});
      if (static_cast<LayerId>(layer) == LayerId::kM0) *saw_m0 = true;
      if (!have_shape) {
        // Geometry fallback from the first physical shape, overridden below
        // when vm1_* properties are present.
        const Rect& box = pin->shapes.back().box;
        if (static_cast<LayerId>(layer) == LayerId::kM0) {
          pin->xmin = box.lx;
          pin->xmax = box.hx;
          pin->x_track = (box.lx + box.hx) / 2;
        } else {
          pin->x_track = box.lx;
          pin->xmin = pin->xmax = box.lx;
        }
        pin->y_off = box.ly;
        have_shape = true;
      }
      cur.skip_statement();
    } else {
      cur.skip_statement();  // tolerate foreign pin attributes
    }
  }
  PropReader pr{props, true, {}};
  pin->x_track = static_cast<Coord>(pr.num("vm1_x_track", pin->x_track));
  pin->xmin = static_cast<Coord>(pr.num("vm1_xmin", pin->xmin));
  pin->xmax = static_cast<Coord>(pr.num("vm1_xmax", pin->xmax));
  pin->y_off = static_cast<Coord>(pr.num("vm1_y_off", pin->y_off));
  pin->cap = pr.num("vm1_cap", pin->cap);
  if (!pr.ok) {
    return fail(err, IoErrorKind::kBadValue, cur.line(),
                "pin " + pin_name + " property " + pr.bad_key);
  }
  return true;
}

/// Parses one MACRO block (cursor sits after "MACRO <name>").
bool parse_macro(TokenCursor& cur, const std::string& name, const Tech& tech,
                 bool* saw_m0, Cell* cell, IoError* err) {
  cell->name = name;
  std::unordered_map<std::string, std::string> props;
  while (true) {
    if (cur.done()) {
      return fail(err, IoErrorKind::kTruncated, cur.line(),
                  "MACRO " + name + " missing END");
    }
    std::string kw = cur.next();
    if (kw == "END") {
      if (cur.done() || cur.next() != name) {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "MACRO " + name + " terminated by mismatched END");
      }
      break;
    }
    if (kw == "CLASS") {
      std::string cls;
      while (!cur.done() && cur.peek() != ";") cls += cur.next() + " ";
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(), "CLASS");
      }
      cur.skip();  // ';'
      cell->filler = cls.find("SPACER") != std::string::npos;
    } else if (kw == "SIZE") {
      // SIZE <w> BY <h> ;
      long w = 0;
      if (cur.done() || !parse_int(cur.next(), &w)) {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "malformed SIZE in MACRO " + name);
      }
      if (w <= 0) {
        return fail(err, IoErrorKind::kBadValue, cur.line(),
                    "MACRO " + name + " width " + std::to_string(w));
      }
      cell->width_sites = static_cast<int>(w);
      cur.skip_statement();
    } else if (kw == "PROPERTY") {
      if (!parse_properties(cur, &props, err)) return false;
    } else if (kw == "PIN") {
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(), "PIN");
      }
      std::string pin_name = cur.next();
      PinInfo pin;
      if (!parse_pin(cur, pin_name, tech, saw_m0, &pin, err)) return false;
      cell->pins.push_back(std::move(pin));
    } else {
      cur.skip_statement();
    }
  }
  auto it = props.find("vm1_vt");
  if (it != props.end() && !vt_from_string(it->second, &cell->vt)) {
    return fail(err, IoErrorKind::kBadValue, cur.line(),
                "MACRO " + name + " vm1_vt " + it->second);
  }
  PropReader pr{props, true, {}};
  cell->sequential = pr.num("vm1_sequential", cell->sequential ? 1 : 0) != 0;
  cell->drive_res = pr.num("vm1_drive_res", cell->drive_res);
  cell->intrinsic_delay = pr.num("vm1_intrinsic", cell->intrinsic_delay);
  cell->leakage = pr.num("vm1_leakage", cell->leakage);
  if (!pr.ok) {
    return fail(err, IoErrorKind::kBadValue, cur.line(),
                "MACRO " + name + " property " + pr.bad_key);
  }
  return true;
}

}  // namespace

bool read_lef(const std::string& text, LefContents* out, IoError* err) {
  Tech tech = Tech::make_7nm();
  std::vector<iodetail::Tok> toks = iodetail::tokenize(text);
  TokenCursor cur(toks);

  bool have_arch = false;
  CellArch arch = CellArch::kClosedM1;
  bool saw_m0 = false;
  bool terminated = false;
  std::vector<Cell> cells;
  std::unordered_map<std::string, int> macro_names;

  while (!cur.done()) {
    std::string kw = cur.next();
    if (kw == "END" && !cur.done() && cur.peek() == "LIBRARY") {
      cur.skip();
      terminated = true;
      break;
    }
    if (kw == "PROPERTY") {
      std::unordered_map<std::string, std::string> props;
      if (!parse_properties(cur, &props, err)) return false;
      auto it = props.find("vm1_arch");
      if (it != props.end()) {
        if (!arch_from_string(it->second, &arch)) {
          return fail(err, IoErrorKind::kBadValue, cur.line(),
                      "vm1_arch " + it->second);
        }
        have_arch = true;
      }
    } else if (kw == "SITE") {
      // SITE <name> SIZE <w> BY <h> ; END <name> — the grid must match the
      // synthetic 7nm tech (1 site wide, row_height tall).
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(), "SITE");
      }
      std::string site = cur.next();
      while (!cur.done() && cur.peek() != "END") {
        if (cur.peek() == "SIZE") {
          cur.skip();
          long w = 0, h = 0;
          std::string by;
          if (cur.done() || !parse_int(cur.next(), &w)) {
            return fail(err, IoErrorKind::kSyntax, cur.line(), "SITE SIZE");
          }
          if (cur.done() || cur.next() != "BY" || cur.done() ||
              !parse_int(cur.next(), &h)) {
            return fail(err, IoErrorKind::kSyntax, cur.line(), "SITE SIZE");
          }
          if (w != tech.site_width() || h != tech.row_height()) {
            return fail(err, IoErrorKind::kUnsupportedTech, cur.line(),
                        "SITE " + std::to_string(w) + "x" + std::to_string(h) +
                            " does not match the synthetic 7nm grid");
          }
        }
        cur.skip_statement();
      }
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(),
                    "SITE " + site + " missing END");
      }
      cur.skip();  // END
      if (cur.done() || cur.next() != site) {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "SITE " + site + " terminated by mismatched END");
      }
    } else if (kw == "LAYER") {
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(), "LAYER");
      }
      std::string lname = cur.next();
      bool known = false;
      for (const Layer& l : tech.layers()) known = known || l.name == lname;
      if (!known) {
        return fail(err, IoErrorKind::kUnsupportedTech, cur.line(),
                    "layer " + lname + " not in the synthetic 7nm stack");
      }
      while (!cur.done() && cur.peek() != "END") cur.skip_statement();
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(),
                    "LAYER " + lname + " missing END");
      }
      cur.skip();  // END
      if (cur.done() || cur.next() != lname) {
        return fail(err, IoErrorKind::kSyntax, cur.line(),
                    "LAYER " + lname + " terminated by mismatched END");
      }
    } else if (kw == "MACRO") {
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(), "MACRO");
      }
      std::string name = cur.next();
      if (!macro_names.emplace(name, 1).second) {
        return fail(err, IoErrorKind::kDuplicateComponent, cur.line(),
                    "duplicate MACRO " + name);
      }
      Cell cell;
      if (!parse_macro(cur, name, tech, &saw_m0, &cell, err)) return false;
      cells.push_back(std::move(cell));
    } else if (kw == "UNITS") {
      while (!cur.done() && cur.peek() != "END") cur.skip_statement();
      if (cur.done()) {
        return fail(err, IoErrorKind::kTruncated, cur.line(),
                    "UNITS missing END");
      }
      cur.skip();  // END
      if (!cur.done()) cur.skip();  // UNITS
    } else {
      cur.skip_statement();  // VERSION etc.
    }
  }
  if (!terminated) {
    return fail(err, IoErrorKind::kTruncated, cur.line(),
                "missing END LIBRARY");
  }
  if (cells.empty()) {
    return fail(err, IoErrorKind::kMissingSection, 0, "LEF defines no MACRO");
  }
  if (!have_arch) arch = saw_m0 ? CellArch::kOpenM1 : CellArch::kClosedM1;

  Library lib(arch);
  for (Cell& c : cells) {
    c.arch = arch;
    lib.add_cell(std::move(c));
  }
  out->tech = std::move(tech);
  out->lib = std::move(lib);
  return true;
}

bool read_lef_file(const std::string& path, LefContents* out, IoError* err) {
  std::ifstream in(path);
  if (!in) return fail(err, IoErrorKind::kFileNotFound, 0, path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_lef(ss.str(), out, err);
}

}  // namespace vm1
