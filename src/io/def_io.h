/// \file def_io.h
/// DEF-like placement save/restore.
///
/// The writer emits a DEF-flavoured text file with DIEAREA, COMPONENTS
/// (name, master, x, row, orientation) and PINS. The reader restores the
/// *placement* into an existing Design whose netlist matches by instance
/// name — the use case is checkpointing a flow between stages.
#pragma once

#include <string>

#include "design/design.h"

namespace vm1 {

/// Renders the design's floorplan + placement.
std::string write_def(const Design& d);
bool write_def_file(const std::string& path, const Design& d);

/// Applies the placements recorded in DEF-like text to `d`. Instances are
/// matched by name; unknown names are reported in the returned list
/// (empty = clean load).
std::vector<std::string> read_def_placement(const std::string& text,
                                            Design& d);
std::vector<std::string> read_def_placement_file(const std::string& path,
                                                 Design& d);

}  // namespace vm1
