/// \file def_io.h
/// DEF-like design save/restore.
///
/// The writer emits a DEF-flavoured text file with DIEAREA, COMPONENTS
/// (name, master, x, row, orientation), PINS, and NETS (full connectivity),
/// so a dump is a *complete* netlist snapshot: def_reader.h turns one back
/// into a standalone Design given the matching LEF library.
///
/// The reader in this header is the lighter checkpoint path: it restores
/// only the *placement* into an existing Design whose netlist matches by
/// instance name — the use case is checkpointing a flow between stages.
#pragma once

#include <string>

#include "design/design.h"

namespace vm1 {

/// Renders the design's floorplan + placement + connectivity.
std::string write_def(const Design& d);
bool write_def_file(const std::string& path, const Design& d);

/// Applies the placements recorded in DEF-like text to `d`. Instances are
/// matched by name. Every rejected record is reported in the returned list
/// (empty = clean load):
///  * unknown instance names;
///  * duplicate COMPONENT entries (the first wins; later ones are rejected
///    rather than silently overwriting);
///  * placements outside the design's DIEAREA (x/row out of the core, or a
///    cell overhanging the row end) are rejected rather than applied.
std::vector<std::string> read_def_placement(const std::string& text,
                                            Design& d);
std::vector<std::string> read_def_placement_file(const std::string& path,
                                                 Design& d);

}  // namespace vm1
