#include "io/report.h"

#include <algorithm>
#include <sstream>

namespace vm1 {

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      std::string v = c < cells.size() ? cells[c] : "";
      os << std::string(width[c] - v.size(), ' ') << v;
      os << (c + 1 == width.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace vm1
