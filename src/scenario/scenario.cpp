#include "scenario/scenario.h"

#include "core/milp_builder.h"

namespace vm1::scenario {
namespace {

std::string arch_tag(CellArch arch) {
  switch (arch) {
    case CellArch::kConventional12T:
      return "conv12t";
    case CellArch::kClosedM1:
      return "closedm1";
    case CellArch::kOpenM1:
      return "openm1";
  }
  return "unknown";
}

Scenario base(CellArch arch, double util) {
  Scenario s;
  s.arch = arch;
  s.utilization = util;
  s.name = arch_tag(arch) + "_u" + std::to_string(int(util * 100 + 0.5));
  return s;
}

}  // namespace

FlowOptions Scenario::to_flow() const {
  FlowOptions f;
  f.design_name = design;
  f.arch = arch;
  f.design.utilization = utilization;
  f.design.scale = scale;
  f.design.aspect = aspect;
  f.router.cost.wire_capacity = wire_capacity;
  f.vm1.params.alpha = paper_alpha(alpha_nm);
  f.vm1.sequence = sequence;
  f.vm1.max_inner_iters = max_inner_iters;
  f.vm1.backend = backend;
  f.vm1.threads = threads;
  f.vm1.dist_workers = dist_workers;
  // Per-window wall-clock caps make results load-dependent; golden-gated
  // runs must be governed by the deterministic node cap alone (same
  // reasoning as the quickstart golden test).
  f.vm1.mip.time_limit_sec = 3600;
  f.vm1.mip.lp_options.time_limit_sec = 3600;
  return f;
}

std::vector<Scenario> sweep_matrix(bool quick) {
  std::vector<Scenario> m;
  const CellArch archs[] = {CellArch::kConventional12T, CellArch::kClosedM1,
                            CellArch::kOpenM1};
  // Utilization sweep across all three cell architectures (Table-2 style).
  for (CellArch arch : archs) {
    for (double util : {0.55, 0.65, 0.75, 0.85}) {
      m.push_back(base(arch, util));
    }
  }
  // Aspect-ratio sweep (wide vs tall floorplans) at the reference point.
  for (double aspect : {0.5, 2.0}) {
    Scenario s = base(CellArch::kClosedM1, 0.75);
    s.aspect = aspect;
    s.name += aspect < 1 ? "_tall" : "_wide";
    m.push_back(s);
  }
  // Channel-capacity sweep: a relaxed router (capacity 2) has fewer DRVs,
  // so the gate catches congestion-model drift.
  {
    Scenario s = base(CellArch::kClosedM1, 0.75);
    s.wire_capacity = 2;
    s.name += "_cap2";
    m.push_back(s);
  }
  // Backend axis: single-threaded and the processes backend must both be
  // bit-identical to the threads(2) reference scenario (their goldens are
  // independent files, but regenerated together they always agree).
  {
    Scenario s = base(CellArch::kClosedM1, 0.75);
    s.threads = 1;
    s.name += "_t1";
    m.push_back(s);
  }
  {
    Scenario s = base(CellArch::kClosedM1, 0.75);
    s.backend = DistBackend::kProcesses;
    s.dist_workers = 2;
    s.name += "_proc2";
    m.push_back(s);
  }
  // Warm-cache axis: a second run through a persistent solve cache must
  // serve its windows from the store (gated: the cache.hits counter may
  // only grow) while every quality metric stays on the shared golden —
  // the cache contract is "bit-identical, just cheaper".
  {
    Scenario s = base(CellArch::kClosedM1, 0.75);
    s.warm_cache = true;
    s.name += "_warm";
    s.extra_spec_text = "warm_cache_hits;counter:cache.hits;ge\n";
    m.push_back(s);
  }
  if (!quick) {
    // The full grid widens the axes: scaled netlist and extreme points.
    for (CellArch arch : archs) {
      Scenario s = base(arch, 0.9);
      m.push_back(s);
    }
    {
      Scenario s = base(CellArch::kClosedM1, 0.75);
      s.scale = 2.0;
      s.name += "_x2";
      m.push_back(s);
    }
    {
      Scenario s = base(CellArch::kClosedM1, 0.75);
      s.aspect = 4.0;
      s.name += "_wide4";
      m.push_back(s);
    }
  }
  return m;
}

std::vector<Scenario> filter_scenarios(const std::vector<Scenario>& all,
                                       const std::string& substr) {
  if (substr.empty()) return all;
  std::vector<Scenario> out;
  for (const Scenario& s : all) {
    if (s.name.find(substr) != std::string::npos) out.push_back(s);
  }
  return out;
}

}  // namespace vm1::scenario
