#include "scenario/runner.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <regex>
#include <sstream>

#include "cache/solve_cache.h"
#include "cache/store.h"
#include "io/report.h"
#include "obs/metrics.h"
#include "util/json_writer.h"

namespace vm1::scenario {
namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// The runner's specs plus the scenario's extra lines. Extras whose name
/// collides with a shared spec are dropped (reported via `err`), so a
/// scenario cannot silently shadow a corpus-gated metric.
std::vector<MetricSpec> combined_specs(const Scenario& s,
                                       const RunnerOptions& opts,
                                       std::string* err) {
  std::vector<MetricSpec> specs = opts.specs;
  if (s.extra_spec_text.empty()) return specs;
  std::vector<MetricSpec> extra;
  std::string perr;
  if (!parse_metric_specs(s.extra_spec_text, &extra, &perr)) {
    if (err) *err = perr;
    return specs;
  }
  for (MetricSpec& e : extra) {
    bool dup = false;
    for (const MetricSpec& b : opts.specs) dup = dup || b.name == e.name;
    if (dup) {
      if (err) *err = "extra spec shadows shared metric " + e.name;
      continue;
    }
    specs.push_back(std::move(e));
  }
  return specs;
}

/// Renders the quickstart-style before/after report for one scenario. The
/// row labels are stable — the default spec's report regexes key on them.
std::string render_report(const Scenario& s, const FlowResult& r) {
  std::ostringstream os;
  os << "scenario " << s.name << " design=" << s.design
     << " arch=" << to_string(s.arch) << " util=" << s.utilization
     << " aspect=" << s.aspect << " cap=" << s.wire_capacity << "\n";
  Table t({"metric", "init", "final"});
  auto row = [&](const char* label, long long init, long long fin) {
    t.add_row({label, std::to_string(init), std::to_string(fin)});
  };
  row("#HPWL", r.init.hpwl, r.final.hpwl);
  row("#Align", r.init.objective.alignments, r.final.objective.alignments);
  row("#DM1", r.init.route.num_dm1, r.final.route.num_dm1);
  row("#Via12", r.init.route.via12, r.final.route.via12);
  row("#DRV", r.init.route.drv, r.final.route.drv);
  row("#RWL", r.init.route.rwl_dbu, r.final.route.rwl_dbu);
  os << t.render();
  os << "windows " << r.opt.windows << " solved " << r.opt.solved
     << " kept " << r.opt.kept << " skipped " << r.opt.skipped << "\n";
  return os.str();
}

}  // namespace

std::map<std::string, double> flow_snapshot(const FlowResult& r) {
  std::map<std::string, double> m;
  m["init_hpwl"] = double(r.init.hpwl);
  m["init_alignments"] = double(r.init.objective.alignments);
  m["init_num_dm1"] = double(r.init.route.num_dm1);
  m["init_via12"] = double(r.init.route.via12);
  m["init_drv"] = double(r.init.route.drv);
  m["init_rwl_dbu"] = double(r.init.route.rwl_dbu);
  m["final_hpwl"] = double(r.final.hpwl);
  m["final_alignments"] = double(r.final.objective.alignments);
  m["final_num_dm1"] = double(r.final.route.num_dm1);
  m["final_via12"] = double(r.final.route.via12);
  m["final_drv"] = double(r.final.route.drv);
  m["final_rwl_dbu"] = double(r.final.route.rwl_dbu);
  m["outer_iterations"] = double(r.opt.outer_iterations);
  m["windows"] = double(r.opt.windows);
  m["milp_nodes"] = double(r.opt.milp_nodes);
  m["solved"] = double(r.opt.solved);
  m["fallback_rounding"] = double(r.opt.fallback_rounding);
  m["fallback_greedy"] = double(r.opt.fallback_greedy);
  m["rejected_audit"] = double(r.opt.rejected_audit);
  m["kept"] = double(r.opt.kept);
  m["faulted"] = double(r.opt.faulted);
  m["skipped"] = double(r.opt.skipped);
  m["cached_remote"] = double(r.opt.cached_remote);
  m["cache_hits"] = double(r.opt.cache_hits);
  m["cache_stores"] = double(r.opt.cache_stores);
  m["place_seconds"] = r.place_seconds;
  return m;
}

ScenarioResult run_scenario(const Scenario& s, const RunnerOptions& opts) {
  ScenarioResult res;
  res.name = s.name;

  std::string spec_err;
  const std::vector<MetricSpec> specs = combined_specs(s, opts, &spec_err);
  if (!spec_err.empty()) {
    res.extraction_errors.push_back("extra_specs: " + spec_err);
  }

  FlowOptions flow = s.to_flow();
  if (opts.perturb) opts.perturb(flow);

  // Warm-cache drill: run the flow once into a cleared persistent store,
  // discard that run's telemetry, and measure the second (warm) run —
  // whose window solves should come out of the store.
  std::optional<cache::CacheStore> store;
  std::optional<cache::PersistentCache> pcache;
  if (s.warm_cache) {
    cache::StoreOptions so;
    so.dir = opts.out_dir + "/cache_" + s.name;
    so.epoch = cache::default_epoch();
    try {
      store.emplace(so);
    } catch (const cache::CacheError& e) {
      // An unusable store (locked by another sweep, unwritable out dir)
      // fails THIS scenario's gate, not the whole sweep process.
      res.extraction_errors.push_back(std::string("warm_cache store: ") +
                                      e.what());
      return res;
    }
    store->clear();  // the cold run must be genuinely cold
    pcache.emplace(&*store);
    flow.vm1.cache = &*pcache;
    obs::reset_metrics();
    run_flow(flow);
  }

  obs::reset_metrics();
  auto t0 = std::chrono::steady_clock::now();
  FlowResult r = run_flow(flow);
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  res.flow = flow_snapshot(r);
  res.flow["seconds"] = res.seconds;
  std::map<std::string, double> counters;
  for (const auto& [name, value] : obs::snapshot_metrics().counters) {
    counters[name] = double(value);
  }
  res.report = render_report(s, r);

  ExtractionContext ctx;
  ctx.flow = &res.flow;
  ctx.counters = &counters;
  ctx.report = &res.report;
  for (const MetricSpec& spec : specs) {
    double value = 0;
    std::string err;
    if (extract_metric(spec, ctx, &value, &err)) {
      res.metrics[spec.name] = value;
    } else {
      res.extraction_errors.push_back(spec.name + ": " + err);
    }
  }
  return res;
}

std::map<std::string, double> read_scenario_golden(const std::string& dir,
                                                   const std::string& name) {
  std::map<std::string, double> m;
  std::ifstream in(dir + "/" + name + ".json");
  if (!in.good()) return m;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  std::regex entry("\"([a-z0-9_]+)\"\\s*:\\s*(-?[0-9][0-9.eE+-]*)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), entry);
       it != std::sregex_iterator(); ++it) {
    m[(*it)[1]] = std::strtod((*it)[2].str().c_str(), nullptr);
  }
  return m;
}

bool write_scenario_golden(const std::string& dir,
                           const std::vector<MetricSpec>& specs,
                           const ScenarioResult& res) {
  std::ofstream out(dir + "/" + res.name + ".json");
  if (!out.good()) return false;
  // Only gated metrics are part of the corpus: info metrics (timings,
  // solver work counters) churn on every regeneration without gating
  // anything, so recording them would only create diff noise.
  std::vector<std::pair<std::string, double>> rows;
  for (const MetricSpec& spec : specs) {
    if (spec.tol.kind == TolKind::kInfo) continue;
    auto it = res.metrics.find(spec.name);
    if (it != res.metrics.end()) rows.emplace_back(spec.name, it->second);
  }
  out << "{\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "  \"" << rows[i].first << "\": " << fmt(rows[i].second)
        << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "}\n";
  return out.good();
}

std::vector<Violation> gate_scenario(
    const ScenarioResult& res, const std::vector<MetricSpec>& specs,
    const std::map<std::string, double>& gold) {
  std::vector<Violation> v;
  for (const std::string& err : res.extraction_errors) {
    std::size_t colon = err.find(':');
    v.push_back({res.name, err.substr(0, colon),
                 "extraction failed:" + err.substr(colon + 1)});
  }
  for (const MetricSpec& spec : specs) {
    if (spec.tol.kind == TolKind::kInfo) continue;
    auto it = res.metrics.find(spec.name);
    if (it == res.metrics.end()) continue;  // already an extraction error
    auto g = gold.find(spec.name);
    if (g == gold.end()) {
      v.push_back({res.name, spec.name,
                   "no golden value (regenerate the corpus with "
                   "--update-golden)"});
      continue;
    }
    MetricCheck c = check_tolerance(spec.tol, it->second, g->second);
    if (!c.pass) v.push_back({res.name, spec.name, c.detail});
  }
  return v;
}

namespace {

void write_trend(const Scenario& s, const ScenarioResult& res,
                 const std::vector<MetricSpec>& specs,
                 const std::map<std::string, double>& gold,
                 const std::vector<Violation>& violations,
                 const std::string& out_dir) {
  JsonWriter jw(out_dir + "/TREND_" + res.name + ".json");
  jw.begin_object();
  jw.field("scenario", res.name);
  jw.field("timestamp_utc", iso_timestamp_utc());
  jw.begin_object("config");
  jw.field("design", s.design);
  jw.field("arch", to_string(s.arch));
  jw.field("utilization", s.utilization);
  jw.field("aspect", s.aspect);
  jw.field("scale", s.scale);
  jw.field("alpha_nm", s.alpha_nm);
  jw.field("wire_capacity", s.wire_capacity);
  jw.field("backend",
           s.backend == DistBackend::kProcesses ? "processes" : "threads");
  jw.field("threads", long(s.threads));
  jw.field("dist_workers", s.dist_workers);
  jw.end_object();
  jw.begin_array("metrics");
  for (const MetricSpec& spec : specs) {
    auto it = res.metrics.find(spec.name);
    if (it == res.metrics.end()) continue;
    jw.begin_object();
    jw.field("name", spec.name);
    jw.field("value", it->second);
    jw.field("tolerance", spec.tol.str());
    auto g = gold.find(spec.name);
    if (g != gold.end()) jw.field("golden", g->second);
    jw.end_object();
  }
  jw.end_array();
  jw.begin_array("violations");
  for (const Violation& v : violations) {
    jw.begin_object();
    jw.field("metric", v.metric);
    jw.field("detail", v.detail);
    jw.end_object();
  }
  jw.end_array();
  jw.field("pass", violations.empty());
  jw.end_object();
}

}  // namespace

SweepSummary run_sweep(const std::vector<Scenario>& scenarios,
                       const RunnerOptions& opts) {
  SweepSummary sum;
  for (const Scenario& s : scenarios) {
    if (opts.log) opts.log("running " + s.name);
    ScenarioResult res = run_scenario(s, opts);
    ++sum.scenarios_run;

    const std::vector<MetricSpec> specs = combined_specs(s, opts, nullptr);
    std::vector<Violation> violations;
    std::map<std::string, double> gold;
    if (opts.update_golden) {
      if (write_scenario_golden(opts.golden_dir, specs, res)) {
        ++sum.goldens_written;
        if (opts.log) opts.log("  golden rewritten: " + res.name + ".json");
      } else {
        violations.push_back(
            {s.name, "golden",
             "cannot write " + opts.golden_dir + "/" + res.name + ".json"});
      }
      gold = read_scenario_golden(opts.golden_dir, res.name);
    } else {
      gold = read_scenario_golden(opts.golden_dir, res.name);
      violations = gate_scenario(res, specs, gold);
    }
    if (opts.write_trends) {
      write_trend(s, res, specs, gold, violations, opts.out_dir);
    }
    for (const Violation& v : violations) {
      if (opts.log) opts.log("  VIOLATION " + v.str());
      sum.violations.push_back(v);
    }
    if (opts.log && violations.empty()) {
      opts.log("  ok (" + fmt(res.seconds) + "s, " +
               std::to_string(res.metrics.size()) + " metrics)");
    }
  }
  return sum;
}

}  // namespace vm1::scenario
