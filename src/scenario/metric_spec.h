/// \file metric_spec.h
/// Declarative metric-extraction specs for the scenario harness, in the
/// style of VTR's parse configs: each line names a metric, says where its
/// value comes from, and how much drift against the golden corpus is
/// tolerated.
///
/// Spec line format (';'-separated; lines starting with '#' are comments;
/// blank lines ignored):
///
///   <name>;<source>;<tolerance>
///
/// Sources:
///   flow:<field>     a field of the flow/optimizer snapshot (QoR +
///                    VM1OptStats — e.g. final_num_dm1, solved, windows)
///   counter:<name>   a telemetry counter from the obs registry snapshot
///                    (e.g. lp.solves, dist_opt.windows_skipped)
///   report:<regex>   first capture group of a regex applied to the
///                    scenario's rendered report text (VPR style)
///
/// Tolerances (checked as value-vs-golden):
///   exact            bit-equal (after %.10g formatting)
///   abs:<T>          |v - g| <= T
///   rel:<F>          |v - g| <= F * max(|g|, 1)
///   le[:<F>]         v <= g * (1 + F) — metric may improve (drop) freely,
///                    may not regress upward past F (monotonic gate)
///   ge[:<F>]         v >= g * (1 - F) — mirror for maximized metrics
///   info             recorded in the trend JSON, never gated
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vm1::scenario {

enum class MetricSource { kFlow, kCounter, kReport };
enum class TolKind { kExact, kAbs, kRel, kLe, kGe, kInfo };

struct Tolerance {
  TolKind kind = TolKind::kExact;
  double value = 0;

  std::string str() const;
};

struct MetricSpec {
  std::string name;
  MetricSource source = MetricSource::kFlow;
  std::string key;  ///< field name, counter name, or regex
  Tolerance tol;
};

/// Parses spec text. Returns false and sets *err on the first bad line.
bool parse_metric_specs(const std::string& text, std::vector<MetricSpec>* out,
                        std::string* err);

/// The built-in default spec: the golden-run metric set (flow fields,
/// integer-exact or monotonic) plus informational solver/router counters.
const std::string& default_metric_spec_text();
std::vector<MetricSpec> default_metric_specs();

/// One tolerance check. `detail` explains a failure in one line.
struct MetricCheck {
  bool pass = true;
  std::string detail;
};
MetricCheck check_tolerance(const Tolerance& tol, double value, double golden);

/// Extraction context: everything a spec line can point at.
struct ExtractionContext {
  const std::map<std::string, double>* flow = nullptr;
  const std::map<std::string, double>* counters = nullptr;
  const std::string* report = nullptr;
};

/// Extracts one metric. Returns false with *err set when the source has no
/// such field/counter or the regex does not match.
bool extract_metric(const MetricSpec& spec, const ExtractionContext& ctx,
                    double* value, std::string* err);

}  // namespace vm1::scenario
