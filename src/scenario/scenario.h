/// \file scenario.h
/// Scenario definitions for the sweep harness: one Scenario = one fully
/// pinned end-to-end flow configuration (design, cell architecture,
/// utilization, aspect ratio, channel capacity, backend) plus the metric
/// spec that gates it against the golden corpus.
///
/// Scenarios are deterministic by construction: per-window wall-clock caps
/// are lifted (the node cap governs, as in the golden quickstart run) so
/// results do not depend on machine load, and every knob that feeds the
/// window signature is pinned by the scenario itself.
#pragma once

#include <string>
#include <vector>

#include "core/flow.h"
#include "scenario/metric_spec.h"

namespace vm1::scenario {

struct Scenario {
  std::string name;          ///< golden/trend file key ([a-z0-9_]+)
  std::string design = "tiny";
  CellArch arch = CellArch::kClosedM1;
  double utilization = 0.75;
  double aspect = 1.0;       ///< core width/height ratio
  double scale = 1.0;        ///< netlist size multiplier
  double alpha_nm = 1200;    ///< paper-style alpha (nm HPWL units)
  int wire_capacity = 1;     ///< router channel capacity per track edge
  DistBackend backend = DistBackend::kThreads;
  unsigned threads = 2;
  int dist_workers = 2;
  std::vector<ParamSet> sequence = {ParamSet{12, 0, 4, 1}};
  int max_inner_iters = 1;
  /// Warm-cache drill (src/cache): the runner executes the flow twice
  /// through one persistent solve-cache store under the runner's out_dir —
  /// a cold run that populates the store, then the measured warm run,
  /// whose windows should be served from it. Placements are bit-identical
  /// by the cache contract, so the scenario shares the usual quality
  /// goldens; the cache effect itself is gated via `extra_spec_text`.
  bool warm_cache = false;
  /// Extra metric-spec lines appended to the runner's specs for this
  /// scenario only (same format as default_metric_spec_text()). Lets one
  /// scenario gate a counter the others never emit without poisoning the
  /// shared spec with extraction errors.
  std::string extra_spec_text;

  /// Flow options implementing this scenario (time limits pinned for
  /// determinism).
  FlowOptions to_flow() const;
};

/// The sweep matrix. `quick` (the CI grid, VM1_BENCH_QUICK-style) covers:
///   * the three cell architectures x four utilization points,
///   * two aspect-ratio points and a channel-capacity point,
///   * the threads(1) and processes(2) backends (bit-identity in practice:
///     their goldens must match the threads(2) baseline scenario).
/// The full matrix widens utilization/aspect and adds the m0 design.
std::vector<Scenario> sweep_matrix(bool quick);

/// Scenarios whose name contains `substr` (empty = all).
std::vector<Scenario> filter_scenarios(const std::vector<Scenario>& all,
                                       const std::string& substr);

}  // namespace vm1::scenario
