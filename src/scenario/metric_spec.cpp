#include "scenario/metric_spec.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <regex>
#include <sstream>

namespace vm1::scenario {
namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

bool parse_double(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end && *end == '\0' && end != s.c_str();
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

bool parse_tolerance(const std::string& text, Tolerance* tol,
                     std::string* err) {
  std::string kind = text;
  std::string arg;
  std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    kind = text.substr(0, colon);
    arg = text.substr(colon + 1);
  }
  double v = 0;
  bool has_arg = !arg.empty();
  if (has_arg && !parse_double(arg, &v)) {
    *err = "malformed tolerance argument '" + arg + "'";
    return false;
  }
  if (v < 0) {
    *err = "negative tolerance " + arg;
    return false;
  }
  if (kind == "exact") {
    tol->kind = TolKind::kExact;
  } else if (kind == "abs") {
    if (!has_arg) {
      *err = "abs tolerance needs a value (abs:<T>)";
      return false;
    }
    tol->kind = TolKind::kAbs;
  } else if (kind == "rel") {
    if (!has_arg) {
      *err = "rel tolerance needs a value (rel:<F>)";
      return false;
    }
    tol->kind = TolKind::kRel;
  } else if (kind == "le") {
    tol->kind = TolKind::kLe;
  } else if (kind == "ge") {
    tol->kind = TolKind::kGe;
  } else if (kind == "info") {
    tol->kind = TolKind::kInfo;
  } else {
    *err = "unknown tolerance '" + kind + "'";
    return false;
  }
  tol->value = v;
  return true;
}

}  // namespace

std::string Tolerance::str() const {
  switch (kind) {
    case TolKind::kExact:
      return "exact";
    case TolKind::kAbs:
      return "abs:" + fmt(value);
    case TolKind::kRel:
      return "rel:" + fmt(value);
    case TolKind::kLe:
      return value > 0 ? "le:" + fmt(value) : "le";
    case TolKind::kGe:
      return value > 0 ? "ge:" + fmt(value) : "ge";
    case TolKind::kInfo:
      return "info";
  }
  return "?";
}

bool parse_metric_specs(const std::string& text, std::vector<MetricSpec>* out,
                        std::string* err) {
  std::vector<MetricSpec> specs;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    if (err) *err = "line " + std::to_string(lineno) + ": " + what;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    line = trim(line);
    // '#' comments are whole-line only: report regexes legitimately
    // contain '#' (e.g. matching a "#DRV" report label).
    if (line.empty() || line[0] == '#') continue;

    // name;source;tolerance — the tolerance is the text after the LAST ';'
    // so report regexes may contain ';' only in the middle field is wrong —
    // keep it simple: first and last ';' delimit the three fields.
    std::size_t first = line.find(';');
    std::size_t last = line.rfind(';');
    if (first == std::string::npos || first == last) {
      return fail("expected <name>;<source>;<tolerance>");
    }
    MetricSpec spec;
    spec.name = trim(line.substr(0, first));
    std::string source = trim(line.substr(first + 1, last - first - 1));
    std::string tol = trim(line.substr(last + 1));
    if (spec.name.empty()) return fail("empty metric name");

    std::size_t colon = source.find(':');
    if (colon == std::string::npos) {
      return fail("source must be flow:<field>, counter:<name>, or "
                  "report:<regex>");
    }
    std::string src_kind = source.substr(0, colon);
    spec.key = source.substr(colon + 1);
    if (spec.key.empty()) return fail("empty source key");
    if (src_kind == "flow") {
      spec.source = MetricSource::kFlow;
    } else if (src_kind == "counter") {
      spec.source = MetricSource::kCounter;
    } else if (src_kind == "report") {
      spec.source = MetricSource::kReport;
      try {
        std::regex probe(spec.key);
        if (probe.mark_count() < 1) {
          return fail("report regex needs one capture group");
        }
      } catch (const std::regex_error& e) {
        return fail(std::string("bad regex: ") + e.what());
      }
    } else {
      return fail("unknown source '" + src_kind + "'");
    }
    std::string tol_err;
    if (!parse_tolerance(tol, &spec.tol, &tol_err)) return fail(tol_err);
    for (const MetricSpec& s : specs) {
      if (s.name == spec.name) return fail("duplicate metric " + spec.name);
    }
    specs.push_back(std::move(spec));
  }
  *out = std::move(specs);
  return true;
}

const std::string& default_metric_spec_text() {
  // The gated set mirrors the golden quickstart snapshot: integer, fully
  // deterministic metrics gate exactly; quality metrics that legitimately
  // improve get monotonic gates; solver/router internals ride as info so
  // the trend JSON shows *why* a gated metric moved.
  static const std::string kText = R"(# OpenVM1 default scenario metric spec
# quality after VM1Opt + re-route
final_hpwl;flow:final_hpwl;exact
final_alignments;flow:final_alignments;ge
final_num_dm1;flow:final_num_dm1;ge
final_via12;flow:final_via12;exact
final_drv;flow:final_drv;le
final_rwl_dbu;flow:final_rwl_dbu;exact
# baseline placement + route (catches placer/router drift)
init_hpwl;flow:init_hpwl;exact
init_num_dm1;flow:init_num_dm1;exact
init_drv;flow:init_drv;exact
init_rwl_dbu;flow:init_rwl_dbu;exact
# optimizer shape: the window-outcome taxonomy is fully deterministic
outer_iterations;flow:outer_iterations;exact
windows;flow:windows;exact
solved;flow:solved;exact
fallback_rounding;flow:fallback_rounding;exact
fallback_greedy;flow:fallback_greedy;exact
rejected_audit;flow:rejected_audit;exact
kept;flow:kept;exact
faulted;flow:faulted;exact
skipped;flow:skipped;exact
# solver/router internals: trend context, not gated
cached_remote;flow:cached_remote;info
cache_hits;flow:cache_hits;info
milp_nodes;flow:milp_nodes;info
lp_solves;counter:lp.solves;info
lp_iterations;counter:lp.pivots;info
maze_expansions;counter:route.maze_expansions;info
maze_searches;counter:route.maze_searches;info
seconds;flow:seconds;info
# the rendered report is a first-class source (VPR style)
report_final_drv;report:#DRV +[0-9]+ +([0-9]+);exact
)";
  return kText;
}

std::vector<MetricSpec> default_metric_specs() {
  std::vector<MetricSpec> specs;
  std::string err;
  bool ok = parse_metric_specs(default_metric_spec_text(), &specs, &err);
  (void)ok;
  return specs;
}

MetricCheck check_tolerance(const Tolerance& tol, double value,
                            double golden) {
  MetricCheck c;
  auto fail_with = [&](const std::string& why) {
    c.pass = false;
    c.detail = "value " + fmt(value) + " vs golden " + fmt(golden) + " (" +
               tol.str() + "): " + why;
  };
  switch (tol.kind) {
    case TolKind::kInfo:
      break;
    case TolKind::kExact:
      if (fmt(value) != fmt(golden)) fail_with("not equal");
      break;
    case TolKind::kAbs:
      if (std::abs(value - golden) > tol.value) {
        fail_with("drift " + fmt(std::abs(value - golden)) + " > " +
                  fmt(tol.value));
      }
      break;
    case TolKind::kRel: {
      double budget = tol.value * std::max(std::abs(golden), 1.0);
      if (std::abs(value - golden) > budget) {
        fail_with("drift " + fmt(std::abs(value - golden)) + " > " +
                  fmt(budget));
      }
      break;
    }
    case TolKind::kLe: {
      double cap = golden + tol.value * std::max(std::abs(golden), 1.0);
      if (value > cap) fail_with("regressed above " + fmt(cap));
      break;
    }
    case TolKind::kGe: {
      double floor = golden - tol.value * std::max(std::abs(golden), 1.0);
      if (value < floor) fail_with("regressed below " + fmt(floor));
      break;
    }
  }
  return c;
}

bool extract_metric(const MetricSpec& spec, const ExtractionContext& ctx,
                    double* value, std::string* err) {
  switch (spec.source) {
    case MetricSource::kFlow: {
      if (!ctx.flow) {
        *err = "no flow snapshot in context";
        return false;
      }
      auto it = ctx.flow->find(spec.key);
      if (it == ctx.flow->end()) {
        *err = "flow snapshot has no field '" + spec.key + "'";
        return false;
      }
      *value = it->second;
      return true;
    }
    case MetricSource::kCounter: {
      if (!ctx.counters) {
        *err = "no counter snapshot in context";
        return false;
      }
      auto it = ctx.counters->find(spec.key);
      if (it == ctx.counters->end()) {
        *err = "no telemetry counter '" + spec.key + "'";
        return false;
      }
      *value = it->second;
      return true;
    }
    case MetricSource::kReport: {
      if (!ctx.report) {
        *err = "no report text in context";
        return false;
      }
      std::smatch m;
      std::regex re(spec.key);
      if (!std::regex_search(*ctx.report, m, re) || m.size() < 2) {
        *err = "report regex '" + spec.key + "' did not match";
        return false;
      }
      std::string cap = m[1];
      if (!parse_double(cap, value)) {
        *err = "report capture '" + cap + "' is not numeric";
        return false;
      }
      return true;
    }
  }
  *err = "unknown source";
  return false;
}

}  // namespace vm1::scenario
