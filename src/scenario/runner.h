/// \file runner.h
/// Executes scenarios end-to-end, extracts their metrics through the
/// declarative specs (metric_spec.h), gates them against a checked-in
/// golden corpus, and emits one trend JSON per scenario.
///
/// Golden corpus layout: one `<golden_dir>/<scenario>.json` per scenario,
/// flat `"metric": value` pairs (the quickstart golden format). Regenerate
/// the whole corpus with `vm1_sweep --update-golden` or by running the
/// scenario tests with VM1_UPDATE_GOLDEN=1.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scenario/metric_spec.h"
#include "scenario/scenario.h"

namespace vm1::scenario {

/// One executed scenario: every extracted metric plus the rendered report.
struct ScenarioResult {
  std::string name;
  std::map<std::string, double> metrics;      ///< by spec name
  std::map<std::string, double> flow;         ///< raw flow snapshot
  std::string report;                         ///< rendered report text
  double seconds = 0;
  /// Specs whose source could not be extracted (missing counter, regex
  /// mismatch) — always gating failures unless the run is update-mode.
  std::vector<std::string> extraction_errors;
};

/// One gate violation, formatted for operator consumption.
struct Violation {
  std::string scenario;
  std::string metric;
  std::string detail;

  std::string str() const { return scenario + "/" + metric + ": " + detail; }
};

struct RunnerOptions {
  std::string golden_dir;              ///< corpus root (required for gating)
  std::string out_dir = ".";           ///< TREND_<name>.json destination
  bool update_golden = false;          ///< rewrite corpus instead of gating
  bool write_trends = true;
  std::vector<MetricSpec> specs = default_metric_specs();
  /// Test/drill hook: mutates the flow options after Scenario::to_flow().
  /// The seeded-regression drill perturbs the flow here (e.g. forcing
  /// greedy fallbacks) and asserts the gate trips.
  std::function<void(FlowOptions&)> perturb;
  /// Progress sink (one line per scenario); null = silent.
  std::function<void(const std::string&)> log;
};

/// Builds the design, runs the flow, snapshots telemetry and extracts every
/// spec'd metric. Does not touch the golden corpus.
ScenarioResult run_scenario(const Scenario& s, const RunnerOptions& opts);

/// Flow snapshot for metric extraction (exposed for tests): the integer
/// golden metric set plus milp_nodes and wall-clock seconds.
std::map<std::string, double> flow_snapshot(const FlowResult& r);

/// Reads `<golden_dir>/<name>.json`. Empty map when absent/unreadable.
std::map<std::string, double> read_scenario_golden(const std::string& dir,
                                                   const std::string& name);

/// Writes `<golden_dir>/<name>.json` with every *gated* metric of `res`
/// (info metrics are trend-only and would churn the corpus). Returns false
/// when the file cannot be written.
bool write_scenario_golden(const std::string& dir,
                           const std::vector<MetricSpec>& specs,
                           const ScenarioResult& res);

/// Gates one result against its golden. Missing golden file => one
/// violation per gated metric ("no golden value"). Extraction errors gate
/// as violations too.
std::vector<Violation> gate_scenario(const ScenarioResult& res,
                                     const std::vector<MetricSpec>& specs,
                                     const std::map<std::string, double>& gold);

struct SweepSummary {
  int scenarios_run = 0;
  int goldens_written = 0;
  std::vector<Violation> violations;

  bool pass() const { return violations.empty(); }
};

/// Runs every scenario: execute, (update or gate), write trend JSON.
SweepSummary run_sweep(const std::vector<Scenario>& scenarios,
                       const RunnerOptions& opts);

}  // namespace vm1::scenario
