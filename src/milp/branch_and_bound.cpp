#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vm1::milp {

const char* to_string(MipStatus s) {
  switch (s) {
    case MipStatus::kOptimal:
      return "optimal";
    case MipStatus::kFeasible:
      return "feasible";
    case MipStatus::kInfeasible:
      return "infeasible";
    case MipStatus::kNoSolution:
      return "no-solution";
  }
  return "?";
}

namespace {

struct BoundFix {
  int var;
  double lo;
  double hi;

  bool operator==(const BoundFix& o) const {
    return var == o.var && lo == o.lo && hi == o.hi;
  }
};

struct Node {
  std::vector<BoundFix> fixes;  ///< full path of branching decisions
  double parent_bound;          ///< LP bound inherited from the parent
};

/// One applied branching decision plus the bounds it overwrote, so the
/// search can unwind to any ancestor by popping in LIFO order.
struct Applied {
  BoundFix fix;
  double prev_lo;
  double prev_hi;
};

}  // namespace

void BranchAndBound::Options::validate() const {
  auto bad = [](const std::string& what) {
    throw std::invalid_argument("BranchAndBound::Options: " + what);
  };
  // max_nodes == 0 is valid anytime usage: explore nothing, return the
  // warm-start/heuristic incumbent.
  if (max_nodes < 0) {
    bad("max_nodes must be >= 0, got " + std::to_string(max_nodes));
  }
  if (time_limit_sec < 0) {
    bad("time_limit_sec must be >= 0, got " +
        std::to_string(time_limit_sec));
  }
  if (!(int_tol >= 0) || !(gap_tol >= 0)) {
    bad("int_tol/gap_tol must be >= 0 (and not NaN), got " +
        std::to_string(int_tol) + " / " + std::to_string(gap_tol));
  }
  if (lp_options.max_iterations <= 0) {
    bad("lp_options.max_iterations must be positive, got " +
        std::to_string(lp_options.max_iterations));
  }
}

MipResult BranchAndBound::solve(const Model& model,
                                const RoundingHeuristic& heuristic,
                                const std::vector<double>* warm_start) const {
  opts_.validate();
  MipResult result;
  Timer timer;
  obs::ObsSpan solve_span("milp.solve");

  // The incremental solver owns the working bounds and the LP engine's
  // solve workspace, so the whole dive shares one factorization and one set
  // of scratch buffers. Switching nodes applies only the bound deltas
  // between the two fix paths, and the dual simplex re-optimizes from the
  // parent basis.
  lp::IncrementalSimplex lp(model.lp(), opts_.lp_options);
  const auto& int_vars = model.integer_variables();
  std::vector<double> snap;  // integral-solution scratch, reused per node

  const double inf = std::numeric_limits<double>::infinity();
  double incumbent_obj = inf;
  std::vector<double> incumbent_x;
  bool truncated = false;

  // Candidate incumbents (warm starts, heuristic solutions, rounded node
  // LPs) are untrusted: a NaN/inf coordinate or objective from a numerically
  // sick source must read as "no solution", never poison the incumbent —
  // NaN compares false everywhere, so an unchecked NaN objective would make
  // the bound pruning silently wrong.
  auto try_incumbent = [&](const std::vector<double>& x) {
    if (x.size() != static_cast<std::size_t>(model.num_variables())) return;
    for (double v : x) {
      if (!std::isfinite(v)) return;
    }
    if (!model.is_feasible(x, 1e-5)) return;
    double obj = model.objective_value(x);
    if (!std::isfinite(obj)) return;
    if (obj < incumbent_obj - opts_.gap_tol) {
      incumbent_obj = obj;
      incumbent_x = x;
      obs::trace_instant("milp.incumbent", "objective", obj);
    }
  };

  if (warm_start) try_incumbent(*warm_start);

  // Branching decisions currently applied to `lp`, root-to-leaf.
  std::vector<Applied> applied;
  auto apply_path = [&](const std::vector<BoundFix>& fixes) {
    std::size_t keep = 0;
    while (keep < applied.size() && keep < fixes.size() &&
           applied[keep].fix == fixes[keep]) {
      ++keep;
    }
    while (applied.size() > keep) {
      const Applied& a = applied.back();
      lp.set_bounds(a.fix.var, a.prev_lo, a.prev_hi);
      applied.pop_back();
    }
    for (std::size_t i = keep; i < fixes.size(); ++i) {
      const BoundFix& f = fixes[i];
      applied.push_back({f, lp.problem().lower_bound(f.var),
                         lp.problem().upper_bound(f.var)});
      lp.set_bounds(f.var, f.lo, f.hi);
    }
  };

  std::vector<Node> stack;
  stack.push_back(Node{{}, -inf});
  bool root_fixing_pending = opts_.use_warm_start;

  while (!stack.empty()) {
    if (result.nodes_explored >= opts_.max_nodes ||
        timer.seconds() > opts_.time_limit_sec ||
        (opts_.cancel && opts_.cancel->load(std::memory_order_relaxed))) {
      truncated = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.parent_bound >= incumbent_obj - opts_.gap_tol) continue;
    ++result.nodes_explored;

    apply_path(node.fixes);
    if (!opts_.use_warm_start) lp.invalidate();

    lp::Result rel = lp.solve();
    result.lp_iterations += rel.iterations;
    result.dual_pivots += rel.dual_iterations;
    if (rel.warm_start_used) {
      ++result.warm_solves;
    } else {
      ++result.cold_restarts;
    }
    if (rel.status == lp::Status::kInfeasible) continue;
    if (rel.status == lp::Status::kIterLimit) {
      truncated = true;
      continue;
    }
    if (rel.status == lp::Status::kUnbounded) {
      // A bounded MILP relaxation cannot be unbounded unless the model has
      // unbounded continuous vars; treat as truncation.
      truncated = true;
      continue;
    }
    if (!std::isfinite(rel.objective)) {
      // Numerically sick relaxation: pruning against a NaN/inf bound is
      // meaningless, so abandon the node as a truncation instead of
      // propagating garbage into the search.
      truncated = true;
      continue;
    }
    if (rel.objective >= incumbent_obj - opts_.gap_tol) continue;

    // Find the fractional integer variable with (priority, fractionality)
    // lexicographically highest.
    int branch_var = -1;
    double branch_val = 0;
    double best_frac_dist = opts_.int_tol;
    int best_priority = std::numeric_limits<int>::min();
    for (int v : int_vars) {
      double f = rel.x[v] - std::floor(rel.x[v]);
      double dist = std::min(f, 1.0 - f);
      if (dist <= opts_.int_tol) continue;
      int prio = model.branch_priority(v);
      if (prio > best_priority ||
          (prio == best_priority && dist > best_frac_dist)) {
        best_priority = prio;
        best_frac_dist = dist;
        branch_var = v;
        branch_val = rel.x[v];
      }
    }

    if (branch_var < 0) {
      // Integral LP solution: snap and accept.
      snap = rel.x;
      for (int v : int_vars) snap[v] = std::round(snap[v]);
      try_incumbent(snap);
      continue;
    }

    if (heuristic) {
      if (auto hx = heuristic(model, rel.x)) try_incumbent(*hx);
    }

    // Reduced-cost fixing at the root: an integer variable sitting on a
    // bound whose reduced cost alone pushes the LP bound past the incumbent
    // can never move in an improving solution, so its bounds collapse for
    // the entire search. Any solution it would exclude has objective
    // >= root bound + |rc| > incumbent - gap_tol, which try_incumbent
    // rejects anyway — the search result is unchanged, just cheaper.
    if (root_fixing_pending && node.fixes.empty() &&
        std::isfinite(incumbent_obj) && !rel.reduced_cost.empty()) {
      root_fixing_pending = false;
      for (int v : int_vars) {
        double lo = lp.problem().lower_bound(v);
        double hi = lp.problem().upper_bound(v);
        if (lo >= hi) continue;  // already fixed
        double rc = rel.reduced_cost[v];
        if (rel.x[v] <= lo + opts_.int_tol && rc > 0 &&
            rel.objective + rc > incumbent_obj - opts_.gap_tol) {
          lp.set_bounds(v, lo, lo);
          ++result.rc_fixed;
        } else if (std::isfinite(hi) && rel.x[v] >= hi - opts_.int_tol &&
                   rc < 0 &&
                   rel.objective - rc > incumbent_obj - opts_.gap_tol) {
          lp.set_bounds(v, hi, hi);
          ++result.rc_fixed;
        }
      }
    }

    // Branch: floor child and ceil child. Push the child whose bound value is
    // farther from the LP value first so the nearer one is explored first
    // (DFS dive toward the relaxation).
    double fl = std::floor(branch_val);
    Node down{node.fixes, rel.objective};
    down.fixes.push_back(
        {branch_var, lp.problem().lower_bound(branch_var), fl});
    Node up{std::move(node.fixes), rel.objective};
    up.fixes.push_back(
        {branch_var, fl + 1, lp.problem().upper_bound(branch_var)});
    bool down_first = (branch_val - fl) < 0.5;
    if (down_first) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  // Final bound: min over unexplored nodes and the incumbent.
  double open_bound = incumbent_obj;
  for (const Node& n : stack) open_bound = std::min(open_bound, n.parent_bound);

  if (!incumbent_x.empty()) {
    result.x = std::move(incumbent_x);
    result.objective = incumbent_obj;
    result.best_bound = truncated || !stack.empty() ? open_bound : incumbent_obj;
    result.status = (truncated || !stack.empty()) ? MipStatus::kFeasible
                                                  : MipStatus::kOptimal;
  } else {
    result.status = truncated ? MipStatus::kNoSolution : MipStatus::kInfeasible;
    result.best_bound = open_bound;
  }

  // Bulk-add the per-solve totals once; hot loops above stay metric-free.
  static obs::Counter& solves_metric = obs::counter("milp.solves");
  static obs::Counter& nodes_metric = obs::counter("milp.nodes");
  static obs::Counter& lp_iters_metric = obs::counter("milp.lp_iterations");
  static obs::Counter& warm_metric = obs::counter("milp.warm_solves");
  static obs::Counter& cold_metric = obs::counter("milp.cold_restarts");
  static obs::Counter& rc_fixed_metric = obs::counter("milp.rc_fixed");
  static obs::Counter& incumbents_metric = obs::counter("milp.incumbents");
  solves_metric.add();
  nodes_metric.add(result.nodes_explored);
  lp_iters_metric.add(result.lp_iterations);
  warm_metric.add(result.warm_solves);
  cold_metric.add(result.cold_restarts);
  rc_fixed_metric.add(result.rc_fixed);
  if (!result.x.empty()) incumbents_metric.add();
  // lp_iterations already lands in the milp.lp_iterations counter; the span
  // slot goes to the LP engine tag instead (3-arg cap).
  solve_span.arg("nodes", result.nodes_explored)
      .arg("engine", lp::to_string(opts_.lp_options.engine))
      .arg("status", to_string(result.status));
  return result;
}

}  // namespace vm1::milp
