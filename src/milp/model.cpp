#include "milp/model.h"

#include <cmath>

namespace vm1::milp {

int Model::add_continuous(double lo, double hi, double cost,
                          std::string name) {
  int v = lp_.add_variable(lo, hi, cost, std::move(name));
  is_int_.push_back(false);
  priority_.push_back(0);
  return v;
}

int Model::add_binary(double cost, std::string name) {
  return add_integer(0, 1, cost, std::move(name));
}

int Model::add_integer(double lo, double hi, double cost, std::string name) {
  int v = lp_.add_variable(lo, hi, cost, std::move(name));
  is_int_.push_back(true);
  int_vars_.push_back(v);
  priority_.push_back(0);
  return v;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  if (lp_.max_violation(x) > tol) return false;
  for (int v : int_vars_) {
    if (std::abs(x[v] - std::round(x[v])) > tol) return false;
  }
  return true;
}

}  // namespace vm1::milp
