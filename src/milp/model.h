/// \file model.h
/// Mixed-integer linear program model: an lp::Problem plus integrality marks.
///
/// This plus branch_and_bound.h is the drop-in replacement for the paper's
/// use of CPLEX 12.6.3 to solve per-window detailed-placement MILPs.
#pragma once

#include <string>
#include <vector>

#include "lp/simplex.h"

namespace vm1::milp {

/// A minimization MILP. Variables are continuous by default; binaries and
/// general integers can be added or marked.
class Model {
 public:
  /// Adds a continuous variable; returns its index.
  int add_continuous(double lo, double hi, double cost,
                     std::string name = "");
  /// Adds a binary (0/1) variable; returns its index.
  int add_binary(double cost, std::string name = "");
  /// Adds a bounded integer variable; returns its index.
  int add_integer(double lo, double hi, double cost, std::string name = "");

  void add_constraint(std::vector<std::pair<int, double>> terms,
                      lp::Sense sense, double rhs) {
    lp_.add_constraint(std::move(terms), sense, rhs);
  }

  int num_variables() const { return lp_.num_variables(); }
  int num_constraints() const { return lp_.num_constraints(); }
  int num_integers() const { return static_cast<int>(int_vars_.size()); }
  bool is_integer(int v) const { return is_int_[v]; }
  const std::vector<int>& integer_variables() const { return int_vars_; }

  /// Branching priority (higher = branched first among fractional
  /// integers). The window builder raises the alignment indicators d_pq,
  /// whose big-M rows make the LP relaxation weakest.
  void set_branch_priority(int v, int priority) { priority_[v] = priority; }
  int branch_priority(int v) const { return priority_[v]; }

  lp::Problem& lp() { return lp_; }
  const lp::Problem& lp() const { return lp_; }

  /// True if x satisfies all constraints, bounds, and integrality within tol.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  double objective_value(const std::vector<double>& x) const {
    return lp_.objective_value(x);
  }

 private:
  lp::Problem lp_;
  std::vector<bool> is_int_;
  std::vector<int> int_vars_;
  std::vector<int> priority_;
};

}  // namespace vm1::milp
