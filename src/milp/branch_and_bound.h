/// \file branch_and_bound.h
/// Branch-and-bound MILP solver over the bounded-variable simplex.
///
/// Features used by the window optimizer:
///  * most-fractional branching on integer variables;
///  * depth-first dives (child closer to the LP value first) with global
///    best-bound pruning;
///  * optional user rounding heuristic to seed/improve the incumbent
///    (the window optimizer supplies "pick the best candidate per cell and
///    repair legality");
///  * node- and wall-time limits for anytime behaviour — the paper's
///    runtime/quality trade-off study (ExptA) depends on this.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "milp/model.h"

namespace vm1::milp {

enum class MipStatus {
  kOptimal,       ///< proven optimal incumbent
  kFeasible,      ///< incumbent found, search truncated by a limit
  kInfeasible,    ///< proven infeasible
  kNoSolution,    ///< search truncated before any incumbent was found
};

const char* to_string(MipStatus s);

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  double objective = 0;
  double best_bound = 0;  ///< global lower bound on the optimum
  std::vector<double> x;
  int nodes_explored = 0;
  int lp_iterations = 0;
};

/// Given a (fractional) LP solution, returns a feasible integer solution if
/// the heuristic can construct one.
using RoundingHeuristic =
    std::function<std::optional<std::vector<double>>(const Model&,
                                                     const std::vector<double>&)>;

class BranchAndBound {
 public:
  struct Options {
    int max_nodes = 20000;
    double time_limit_sec = 30.0;
    double int_tol = 1e-6;
    double gap_tol = 1e-9;  ///< absolute objective gap for pruning
    lp::SimplexSolver::Options lp_options = {};
  };

  BranchAndBound() : opts_() {}
  explicit BranchAndBound(const Options& opts) : opts_(opts) {}

  /// Solves `model` (minimization). `heuristic` may be null. `warm_start`,
  /// when given and feasible, seeds the incumbent — the window optimizer
  /// passes the current placement so the result can never be worse than
  /// the input.
  MipResult solve(const Model& model,
                  const RoundingHeuristic& heuristic = nullptr,
                  const std::vector<double>* warm_start = nullptr) const;

 private:
  Options opts_;
};

}  // namespace vm1::milp
