/// \file branch_and_bound.h
/// Branch-and-bound MILP solver over the bounded-variable simplex.
///
/// Features used by the window optimizer:
///  * most-fractional branching on integer variables;
///  * depth-first dives (child closer to the LP value first) with global
///    best-bound pruning;
///  * warm-started node LPs: the search keeps one hot simplex tableau
///    (lp::IncrementalSimplex), applies only the bound *deltas* between
///    consecutive nodes, and re-optimizes with the dual simplex — phase 1
///    runs only at the root and on rare numerical cold restarts. This is
///    the CPLEX-style basis reuse between branch-and-bound nodes that the
///    paper's runtime story (ExptA) relies on;
///  * reduced-cost fixing of integer variables from the root LP;
///  * optional user rounding heuristic to seed/improve the incumbent
///    (the window optimizer supplies "pick the best candidate per cell and
///    repair legality");
///  * node- and wall-time limits for anytime behaviour — the paper's
///    runtime/quality trade-off study (ExptA) depends on this.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

#include "milp/model.h"

namespace vm1::milp {

enum class MipStatus {
  kOptimal,       ///< proven optimal incumbent
  kFeasible,      ///< incumbent found, search truncated by a limit
  kInfeasible,    ///< proven infeasible
  kNoSolution,    ///< search truncated before any incumbent was found
};

const char* to_string(MipStatus s);

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  double objective = 0;
  double best_bound = 0;  ///< global lower bound on the optimum
  std::vector<double> x;
  int nodes_explored = 0;
  int lp_iterations = 0;  ///< total simplex pivots (primal + dual)
  // Warm-start observability (see DESIGN.md "LP/MILP solver internals").
  int dual_pivots = 0;    ///< pivots spent in dual re-optimization
  int warm_solves = 0;    ///< node LPs solved from the parent basis
  int cold_restarts = 0;  ///< node LPs needing a full phase-1 rebuild
  int rc_fixed = 0;       ///< integer vars fixed by root reduced costs
};

/// Given a (fractional) LP solution, returns a feasible integer solution if
/// the heuristic can construct one.
using RoundingHeuristic =
    std::function<std::optional<std::vector<double>>(const Model&,
                                                     const std::vector<double>&)>;

class BranchAndBound {
 public:
  struct Options {
    int max_nodes = 20000;
    double time_limit_sec = 30.0;
    double int_tol = 1e-6;
    double gap_tol = 1e-9;  ///< absolute objective gap for pruning
    /// Reuse the parent basis across nodes (dual-simplex re-optimization
    /// + reduced-cost fixing). Off reproduces the historical cold-start
    /// behaviour; results are identical either way, only the pivot counts
    /// differ — the solver tests assert exactly that.
    bool use_warm_start = true;
    /// Optional cooperative cancellation: when non-null and set, the search
    /// stops at the next node boundary and returns the best incumbent so
    /// far (status kFeasible/kNoSolution, as for a time limit). The pointee
    /// must outlive the solve; DistOpt points every window's solve at its
    /// pass-level token so a deadline cuts a whole batch off cleanly.
    const std::atomic<bool>* cancel = nullptr;
    lp::SimplexSolver::Options lp_options = {};

    /// Throws std::invalid_argument when a field is out of range
    /// (non-positive max_nodes, negative time limit / tolerances).
    /// solve() validates on entry so misconfiguration fails fast instead
    /// of looping forever or mis-pruning.
    void validate() const;
  };

  BranchAndBound() : opts_() {}
  explicit BranchAndBound(const Options& opts) : opts_(opts) {}

  /// Solves `model` (minimization). `heuristic` may be null. `warm_start`,
  /// when given and feasible, seeds the incumbent — the window optimizer
  /// passes the current placement so the result can never be worse than
  /// the input.
  MipResult solve(const Model& model,
                  const RoundingHeuristic& heuristic = nullptr,
                  const std::vector<double>* warm_start = nullptr) const;

 private:
  Options opts_;
};

}  // namespace vm1::milp
