/// \file legalizer.h
/// Tetris-style placement legalization.
#pragma once

#include "design/design.h"

namespace vm1 {

struct LegalizeOptions {
  /// How many rows above/below the desired row to consider.
  int row_search_range = 6;
  /// Cost weight of vertical displacement relative to horizontal (per row).
  double row_cost = 20.0;
};

/// Legalizes the current (possibly overlapping) placement: every cell ends
/// up inside the core on whole sites with no overlaps. Throws
/// std::runtime_error if the design does not fit (utilization > 1).
void legalize(Design& d, const LegalizeOptions& opts = {});

}  // namespace vm1
