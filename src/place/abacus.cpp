#include "place/abacus.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vm1 {
namespace {

/// One placed cell inside a row (Abacus bookkeeping).
struct RowCell {
  int inst;
  int width;
  double target_x;  ///< desired x from global placement
  int x = 0;        ///< legalized position (filled by collapse)
};

/// Cluster of abutting cells per the Abacus recurrence.
struct Cluster {
  double e = 0;   ///< total weight
  double q = 0;   ///< sum of e_i * (target - offset)
  int w = 0;      ///< total width
  int first = 0;  ///< index of first cell in the row vector
  double x() const { return q / e; }
};

/// Re-packs `cells` (sorted by target_x) into [0, row_sites]; returns the
/// total squared displacement, or a negative value when the row overflows.
double collapse_row(std::vector<RowCell>& cells, int row_sites) {
  long total_w = 0;
  for (const RowCell& c : cells) total_w += c.width;
  if (total_w > row_sites) return -1;

  std::vector<Cluster> clusters;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cluster nc;
    nc.e = 1.0;
    nc.q = cells[i].target_x;
    nc.w = cells[i].width;
    nc.first = static_cast<int>(i);
    clusters.push_back(nc);
    // Merge while the new cluster overlaps its predecessor.
    while (clusters.size() > 1) {
      Cluster& prev = clusters[clusters.size() - 2];
      Cluster& cur = clusters.back();
      double prev_x =
          std::clamp(prev.x(), 0.0, static_cast<double>(row_sites - prev.w));
      double cur_x =
          std::clamp(cur.x(), 0.0, static_cast<double>(row_sites - cur.w));
      if (prev_x + prev.w <= cur_x) break;
      // Merge cur into prev: cells of cur sit at offset prev.w.
      prev.q += cur.q - cur.e * prev.w;
      prev.e += cur.e;
      prev.w += cur.w;
      clusters.pop_back();
    }
  }

  // Assign positions. Integer rounding may nudge a cluster into its
  // predecessor, so chain a running lower bound.
  double cost = 0;
  int prev_end = 0;
  for (const Cluster& cl : clusters) {
    if (prev_end > row_sites - cl.w) return -1;  // rounding squeezed us out
    int x = static_cast<int>(std::lround(
        std::clamp(cl.x(), 0.0, static_cast<double>(row_sites - cl.w))));
    x = std::clamp(x, prev_end, row_sites - cl.w);
    std::size_t idx = static_cast<std::size_t>(cl.first);
    int cur = x;
    while (idx < cells.size()) {
      // Cells of this cluster are contiguous starting at `first` and span
      // width cl.w.
      if (cur - x >= cl.w) break;
      cells[idx].x = cur;
      double dx = cur - cells[idx].target_x;
      cost += dx * dx;
      cur += cells[idx].width;
      ++idx;
    }
    prev_end = x + cl.w;
  }
  return cost;
}

}  // namespace

void abacus_legalize(Design& d, const AbacusOptions& opts) {
  const Netlist& nl = d.netlist();
  const int n = nl.num_instances();
  const int num_rows = d.num_rows();
  const int row_sites = d.sites_per_row();

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return d.placement(a).x < d.placement(b).x;
  });

  std::vector<std::vector<RowCell>> rows(num_rows);
  std::vector<double> row_cost_now(num_rows, 0.0);

  for (int idx : order) {
    const Cell& c = nl.cell_of(idx);
    const Placement desired = d.placement(idx);
    const int des_row = std::clamp(desired.row, 0, num_rows - 1);

    int best_row = -1;
    double best_total = 0;
    std::vector<RowCell> best_cells;

    auto try_row = [&](int r) {
      std::vector<RowCell> trial = rows[r];
      RowCell rc;
      rc.inst = idx;
      rc.width = c.width_sites;
      rc.target_x = static_cast<double>(desired.x);
      // Keep sorted by target_x (cells arrive in x order, so push_back is
      // almost always right; insert to be safe).
      auto it = std::upper_bound(
          trial.begin(), trial.end(), rc,
          [](const RowCell& a, const RowCell& b) {
            return a.target_x < b.target_x;
          });
      trial.insert(it, rc);
      double cost = collapse_row(trial, row_sites);
      if (cost < 0) return;  // row overflow
      double vert = static_cast<double>(std::abs(r - des_row));
      double total =
          (cost - row_cost_now[r]) + opts.row_cost * vert * vert;
      if (best_row < 0 || total < best_total) {
        best_row = r;
        best_total = total;
        best_cells = std::move(trial);
      }
    };

    for (int dr = 0; dr <= opts.row_search_range; ++dr) {
      if (des_row - dr >= 0) try_row(des_row - dr);
      if (dr > 0 && des_row + dr < num_rows) try_row(des_row + dr);
      if (best_row >= 0 && dr >= 2) break;  // good enough neighbourhood
    }
    if (best_row < 0) {
      for (int r = 0; r < num_rows; ++r) try_row(r);
    }
    if (best_row < 0) {
      throw std::runtime_error("abacus_legalize: design does not fit core");
    }
    rows[best_row] = std::move(best_cells);
    double c2 = collapse_row(rows[best_row], row_sites);
    row_cost_now[best_row] = c2;
  }

  for (int r = 0; r < num_rows; ++r) {
    for (const RowCell& rc : rows[r]) {
      Placement p = d.placement(rc.inst);
      d.set_placement(rc.inst, Placement{rc.x, r, p.flipped});
    }
  }
}

}  // namespace vm1
