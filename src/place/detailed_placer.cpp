#include "place/detailed_placer.h"

#include <algorithm>

#include "design/legality.h"
#include "place/hpwl.h"

namespace vm1 {
namespace {

/// Occupancy bookkeeping for in-row moves.
class Grid {
 public:
  explicit Grid(const Design& d) : d_(d), grid_(occupancy_grid(d)) {}

  void remove(int inst) {
    const Placement& p = d_.placement(inst);
    int w = d_.netlist().cell_of(inst).width_sites;
    for (int s = p.x; s < p.x + w; ++s) grid_[p.row][s] = -1;
  }
  void put(int inst) {
    const Placement& p = d_.placement(inst);
    int w = d_.netlist().cell_of(inst).width_sites;
    for (int s = p.x; s < p.x + w; ++s) grid_[p.row][s] = inst;
  }
  /// True if [x, x+w) in `row` is free (ignoring `ignore_inst`).
  bool free_span(int row, int x, int w, int ignore_inst) const {
    if (x < 0 || x + w > static_cast<int>(grid_[row].size())) return false;
    for (int s = x; s < x + w; ++s) {
      int occ = grid_[row][s];
      if (occ >= 0 && occ != ignore_inst) return false;
    }
    return true;
  }
  int at(int row, int site) const { return grid_[row][site]; }

 private:
  const Design& d_;
  std::vector<std::vector<int>> grid_;
};

}  // namespace

Coord detailed_place(Design& d, const DetailedPlaceOptions& opts) {
  const Netlist& nl = d.netlist();
  const int n = nl.num_instances();
  Grid grid(d);

  Coord total = total_hpwl(d);
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    Coord pass_start = total;
    for (int i = 0; i < n; ++i) {
      const Cell& c = nl.cell_of(i);
      if (c.filler) continue;
      std::vector<int> nets = nets_of_instance(d, i);
      if (nets.empty()) continue;
      const Placement orig = d.placement(i);
      Coord base = hpwl_of_nets(d, nets);

      Placement best = orig;
      Coord best_gain = 0;

      auto try_placement = [&](const Placement& cand) {
        d.set_placement(i, cand);
        Coord gain = base - hpwl_of_nets(d, nets);
        if (gain > best_gain) {
          best_gain = gain;
          best = cand;
        }
      };

      // 1. Shifts within free gaps of the same row (and flip variants).
      for (int dx = -opts.shift_range; dx <= opts.shift_range; ++dx) {
        int x = orig.x + dx;
        if (!grid.free_span(orig.row, x, c.width_sites, i)) continue;
        try_placement(Placement{x, orig.row, orig.flipped});
        if (opts.allow_flip) {
          try_placement(Placement{x, orig.row, !orig.flipped});
        }
      }
      d.set_placement(i, orig);

      if (best_gain > 0) {
        grid.remove(i);
        d.set_placement(i, best);
        grid.put(i);
        total -= best_gain;
        continue;
      }

      // 2. Swap with the right-hand neighbour when widths permit.
      int right_site = orig.x + c.width_sites;
      if (right_site < d.sites_per_row()) {
        int j = grid.at(orig.row, right_site);
        if (j >= 0 && j != i) {
          const Cell& cj = nl.cell_of(j);
          const Placement pj = d.placement(j);
          // After swap: j at orig.x, i at orig.x + cj.width.
          std::vector<int> both = nets;
          for (int nn : nets_of_instance(d, j)) {
            if (std::find(both.begin(), both.end(), nn) == both.end()) {
              both.push_back(nn);
            }
          }
          Coord before = hpwl_of_nets(d, both);
          d.set_placement(j, Placement{orig.x, orig.row, pj.flipped});
          d.set_placement(
              i, Placement{orig.x + cj.width_sites, orig.row, orig.flipped});
          Coord gain = before - hpwl_of_nets(d, both);
          if (gain > 0) {
            // Grid removal must use the pre-move placements: restore, clear
            // both footprints, then commit the swap.
            d.set_placement(i, orig);
            d.set_placement(j, pj);
            grid.remove(i);
            grid.remove(j);
            d.set_placement(j, Placement{orig.x, orig.row, pj.flipped});
            d.set_placement(i, Placement{orig.x + cj.width_sites, orig.row,
                                         orig.flipped});
            grid.put(i);
            grid.put(j);
            total -= gain;
          } else {
            d.set_placement(i, orig);
            d.set_placement(j, pj);
          }
        }
      }
    }
    double improve =
        pass_start > 0
            ? static_cast<double>(pass_start - total) /
                  static_cast<double>(pass_start)
            : 0.0;
    if (improve < opts.min_improve) break;
  }
  return total;
}

}  // namespace vm1
