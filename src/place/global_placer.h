/// \file global_placer.h
/// Analytic-style global placement (stands in for the Innovus place step).
///
/// Iterates weighted-centroid (clique-model quadratic) relaxation with
/// bin-density spreading, producing real-valued cell positions that the
/// Tetris legalizer then snaps to rows/sites. Quality is adequate for the
/// paper's experiments, which compare an initial routed placement against
/// the VM1-optimized one — both derived from this same initial placement.
#pragma once

#include <cstdint>

#include "design/design.h"

namespace vm1 {

struct GlobalPlaceOptions {
  int iterations = 32;
  double spread_strength = 0.35;  ///< fraction of bin overflow pushed out
  int bin_sites = 12;             ///< bin width in sites
  std::uint64_t seed = 17;
};

/// Runs global placement and writes (continuous, then rounded) positions
/// into d's placements. Result is generally NOT legal; run legalize() next.
void global_place(Design& d, const GlobalPlaceOptions& opts = {});

}  // namespace vm1
