/// \file abacus.h
/// Abacus-style legalization (Spindler/Schlichtmann/Johannes-inspired).
///
/// A second, higher-quality legalizer alongside the Tetris one: cells are
/// inserted row by row in x order and each row's cells are re-packed by a
/// quadratic-cost cluster collapse, minimizing total squared displacement
/// from the global-placement targets. Used for ablations and as the
/// default when placement quality matters more than runtime.
#pragma once

#include "design/design.h"

namespace vm1 {

struct AbacusOptions {
  int row_search_range = 8;  ///< rows above/below the target row to try
  double row_cost = 20.0;    ///< penalty per row of vertical displacement
};

/// Legalizes the current (possibly overlapping) placement with minimum
/// squared displacement. Throws std::runtime_error if the design does not
/// fit. Postcondition: is_legal(d).
void abacus_legalize(Design& d, const AbacusOptions& opts = {});

}  // namespace vm1
