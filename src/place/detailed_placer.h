/// \file detailed_placer.h
/// Greedy wirelength-driven detailed placement.
///
/// Stands in for the commercial tool's detailed placement step: local cell
/// shifts within free gaps, adjacent-cell swaps, and orientation flips,
/// accepted greedily on HPWL improvement. This is the *traditional*,
/// alignment-unaware optimizer; the paper's contribution (src/core) then
/// perturbs its result to win direct vertical M1 routes.
#pragma once

#include "design/design.h"

namespace vm1 {

struct DetailedPlaceOptions {
  int max_passes = 4;
  int shift_range = 8;         ///< sites to explore left/right
  double min_improve = 0.002;  ///< stop when a pass improves HPWL less
  bool allow_flip = true;
};

/// Refines a legal placement; preserves legality. Returns final total HPWL.
Coord detailed_place(Design& d, const DetailedPlaceOptions& opts = {});

}  // namespace vm1
