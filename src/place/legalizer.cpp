#include "place/legalizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vm1 {

namespace {

/// One Tetris pass. In `compact` mode cells pack against the row frontier
/// (no gaps), which always succeeds when any row has room — used as the
/// fallback for very high utilization where gap-preserving placement
/// strands too much whitespace. Throws when a cell cannot be placed.
void tetris_pass(Design& d, const LegalizeOptions& opts, bool compact_mode) {
  const Netlist& nl = d.netlist();
  const int n = nl.num_instances();
  const int num_rows = d.num_rows();
  const int row_sites = d.sites_per_row();

  // Process cells left-to-right (classic Tetris order).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return d.placement(a).x < d.placement(b).x;
  });

  // frontier[r] = first free site in row r (everything left is occupied).
  std::vector<int> frontier(num_rows, 0);

  for (int idx : order) {
    const Cell& c = nl.cell_of(idx);
    const int w = c.width_sites;
    const Placement desired = d.placement(idx);
    const int des_row = std::clamp(desired.row, 0, num_rows - 1);
    const int des_x = std::clamp(desired.x, 0, row_sites - w);

    int best_row = -1, best_pos = 0;
    double best_cost = 0;
    auto consider = [&](int r, bool compact) {
      compact = compact || compact_mode;
      int pos = compact ? frontier[r] : std::max(frontier[r], des_x);
      if (pos + w > row_sites) return;
      double cost = std::abs(pos - des_x) +
                    opts.row_cost * std::abs(r - des_row);
      if (best_row < 0 || cost < best_cost) {
        best_row = r;
        best_pos = pos;
        best_cost = cost;
      }
    };

    for (int dr = 0; dr <= opts.row_search_range && best_row < 0; ++dr) {
      // Expand outward until something fits; then refine one more ring to
      // allow a cheaper neighbour.
      if (des_row - dr >= 0) consider(des_row - dr, false);
      if (dr > 0 && des_row + dr < num_rows) consider(des_row + dr, false);
    }
    if (best_row >= 0) {
      // Look one ring further for a possibly cheaper spot.
      int found_dr = std::abs(best_row - des_row);
      for (int dr = found_dr + 1;
           dr <= std::min(found_dr + 2, opts.row_search_range); ++dr) {
        if (des_row - dr >= 0) consider(des_row - dr, false);
        if (des_row + dr < num_rows) consider(des_row + dr, false);
      }
    } else {
      // Full scan, normal then compact mode.
      for (int r = 0; r < num_rows; ++r) consider(r, false);
      if (best_row < 0) {
        for (int r = 0; r < num_rows; ++r) consider(r, true);
      }
    }
    if (best_row < 0) {
      throw std::runtime_error("legalize: design does not fit core");
    }

    d.set_placement(idx, Placement{best_pos, best_row, desired.flipped});
    frontier[best_row] = best_pos + w;
  }
}

}  // namespace

void legalize(Design& d, const LegalizeOptions& opts) {
  // Snapshot so the compact fallback restarts from the original targets
  // rather than a half-finished normal pass.
  std::vector<Placement> snapshot(d.netlist().num_instances());
  for (int i = 0; i < d.netlist().num_instances(); ++i) {
    snapshot[i] = d.placement(i);
  }
  try {
    tetris_pass(d, opts, /*compact_mode=*/false);
    return;
  } catch (const std::runtime_error&) {
    for (int i = 0; i < d.netlist().num_instances(); ++i) {
      d.set_placement(i, snapshot[i]);
    }
  }
  tetris_pass(d, opts, /*compact_mode=*/true);
}

}  // namespace vm1
