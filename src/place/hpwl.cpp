#include "place/hpwl.h"

#include <algorithm>

namespace vm1 {

Coord net_hpwl(const Design& d, int net) {
  const Net& n = d.netlist().net(net);
  if (!n.routable()) return 0;
  BBox box;
  for (const NetPin& p : n.pins) box.add(d.pin_position(p));
  return box.rect().half_perimeter();
}

Coord total_hpwl(const Design& d) {
  Coord total = 0;
  for (int n = 0; n < d.netlist().num_nets(); ++n) total += net_hpwl(d, n);
  return total;
}

Coord hpwl_of_nets(const Design& d, const std::vector<int>& nets) {
  Coord total = 0;
  for (int n : nets) total += net_hpwl(d, n);
  return total;
}

std::vector<int> nets_of_instance(const Design& d, int inst) {
  return d.netlist().nets_of(inst);
}

}  // namespace vm1
