/// \file hpwl.h
/// Half-perimeter wirelength evaluation.
#pragma once

#include "design/design.h"

namespace vm1 {

/// HPWL of one net (0 for nets with < 2 pins).
Coord net_hpwl(const Design& d, int net);

/// Sum of HPWL over all routable nets.
Coord total_hpwl(const Design& d);

/// Sum of HPWL over the nets in `nets` (deduplicated by the caller).
Coord hpwl_of_nets(const Design& d, const std::vector<int>& nets);

/// All nets incident to instance `inst` (no duplicates).
std::vector<int> nets_of_instance(const Design& d, int inst);

}  // namespace vm1
