#include "place/global_placer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace vm1 {

void global_place(Design& d, const GlobalPlaceOptions& opts) {
  const Netlist& nl = d.netlist();
  const Tech& tech = d.tech();
  const int n = nl.num_instances();
  const Rect core = d.core();
  const double W = static_cast<double>(core.hx);
  const double H = static_cast<double>(core.hy);
  Rng rng(opts.seed);

  // Continuous positions (cell centers).
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = W * (0.25 + 0.5 * rng.uniform_real());
    y[i] = H * (0.25 + 0.5 * rng.uniform_real());
  }

  // Precompute, per instance, its connected (instance | IO) neighbours via
  // a star model: each pin attracts toward the net's centroid.
  struct NetRef {
    int net;
  };
  std::vector<std::vector<int>> inst_nets(n);
  for (int i = 0; i < n; ++i) {
    const Cell& c = nl.cell_of(i);
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      int net = nl.net_at(i, static_cast<int>(p));
      if (net >= 0) inst_nets[i].push_back(net);
    }
  }

  const int num_bins_x = std::max(1, d.sites_per_row() / opts.bin_sites);
  const int num_bins_y = std::max(1, d.num_rows() / 2);
  const double bin_w = W / num_bins_x;
  const double bin_h = H / num_bins_y;
  const double bin_capacity =
      bin_w * bin_h / static_cast<double>(tech.row_height());

  std::vector<double> net_cx(nl.num_nets()), net_cy(nl.num_nets());

  for (int iter = 0; iter < opts.iterations; ++iter) {
    // Net centroids (IO terminals are fixed anchor points).
    for (int nn = 0; nn < nl.num_nets(); ++nn) {
      const Net& net = nl.net(nn);
      if (!net.routable()) continue;
      double cx = 0, cy = 0;
      for (const NetPin& p : net.pins) {
        if (p.is_io()) {
          const Point& io = d.io_position(p.pin);
          cx += static_cast<double>(io.x);
          cy += static_cast<double>(io.y);
        } else {
          cx += x[p.inst];
          cy += y[p.inst];
        }
      }
      net_cx[nn] = cx / net.num_pins();
      net_cy[nn] = cy / net.num_pins();
    }

    // Move every instance toward the average of its nets' centroids.
    for (int i = 0; i < n; ++i) {
      if (inst_nets[i].empty()) continue;
      double tx = 0, ty = 0;
      for (int nn : inst_nets[i]) {
        tx += net_cx[nn];
        ty += net_cy[nn];
      }
      tx /= static_cast<double>(inst_nets[i].size());
      ty /= static_cast<double>(inst_nets[i].size());
      x[i] = 0.5 * x[i] + 0.5 * tx;
      y[i] = 0.5 * y[i] + 0.5 * ty;
    }

    // Bin-density spreading: push overflow outward along the emptier axis.
    std::vector<double> density(
        static_cast<std::size_t>(num_bins_x) * num_bins_y, 0.0);
    auto bin_of = [&](double px, double py) {
      int bx = std::clamp(static_cast<int>(px / bin_w), 0, num_bins_x - 1);
      int by = std::clamp(static_cast<int>(py / bin_h), 0, num_bins_y - 1);
      return std::pair{bx, by};
    };
    for (int i = 0; i < n; ++i) {
      auto [bx, by] = bin_of(x[i], y[i]);
      density[static_cast<std::size_t>(by) * num_bins_x + bx] +=
          nl.cell_of(i).width_sites;
    }
    for (int i = 0; i < n; ++i) {
      auto [bx, by] = bin_of(x[i], y[i]);
      double dens = density[static_cast<std::size_t>(by) * num_bins_x + bx];
      double over = dens / bin_capacity - 1.0;
      if (over <= 0) continue;
      double push = std::min(1.0, over) * opts.spread_strength;
      // Push away from the bin center, plus jitter to break symmetry.
      double cx = (bx + 0.5) * bin_w;
      double cy = (by + 0.5) * bin_h;
      double dx = x[i] - cx + (rng.uniform_real() - 0.5) * bin_w * 0.5;
      double dy = y[i] - cy + (rng.uniform_real() - 0.5) * bin_h * 0.5;
      x[i] += push * dx;
      y[i] += push * dy;
    }

    for (int i = 0; i < n; ++i) {
      x[i] = std::clamp(x[i], 0.0, W - 1.0);
      y[i] = std::clamp(y[i], 0.0, H - 1.0);
    }
  }

  // Write rounded positions (row/site); not yet legal.
  for (int i = 0; i < n; ++i) {
    const Cell& c = nl.cell_of(i);
    Placement p;
    p.x = std::clamp(
        static_cast<int>(std::lround(x[i] - c.width_sites / 2.0)), 0,
        d.sites_per_row() - c.width_sites);
    p.row = std::clamp(
        static_cast<int>(y[i] / static_cast<double>(tech.row_height())), 0,
        d.num_rows() - 1);
    p.flipped = false;
    d.set_placement(i, p);
  }
}

}  // namespace vm1
