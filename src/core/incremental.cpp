#include "core/incremental.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace vm1 {

void IncrementalState::bind(const Design& d) {
  const std::size_t insts =
      static_cast<std::size_t>(d.netlist().num_instances());
  const std::size_t nets = static_cast<std::size_t>(d.netlist().num_nets());
  if (cell_gen_.size() != insts || net_gen_.size() != nets) {
    clear();
    cell_gen_.assign(insts, 0);
    net_gen_.assign(nets, 0);
  }
}

long IncrementalState::mark_changed(const std::vector<int>& insts,
                                    const Netlist& nl) {
  if (insts.empty()) return 0;
  ++gen_;
  long nets_stamped = 0;
  for (int i : insts) {
    cell_gen_[i] = gen_;
    for (int n : nl.nets_of(i)) {
      if (net_gen_[n] != gen_) {
        net_gen_[n] = gen_;
        ++nets_stamped;
      }
    }
  }
  return nets_stamped;
}

bool IncrementalState::clean_since(const std::vector<int>& cells,
                                   const std::vector<int>& nets,
                                   std::uint64_t gen) const {
  for (int c : cells) {
    if (cell_gen_[c] > gen) return false;
  }
  for (int n : nets) {
    if (net_gen_[n] > gen) return false;
  }
  return true;
}

const WindowMemo* IncrementalState::lookup(const WindowSig& sig) const {
  auto it = memo_.find(sig.a);
  if (it == memo_.end() || it->second.sig2 != sig.b) return nullptr;
  return &it->second;
}

std::size_t IncrementalState::memo_cost(const WindowMemo& m) {
  // Rough resident estimate: struct + hash-table slot + delta payload.
  return sizeof(WindowMemo) + 64 +
         m.changed.size() * sizeof(std::pair<int, Placement>);
}

void IncrementalState::store(const WindowSig& sig, WindowMemo memo) {
  memo.sig2 = sig.b;
  auto it = memo_.find(sig.a);
  if (it != memo_.end()) {
    // Overwrite keeps the key's original FIFO position.
    memo_bytes_ -= memo_cost(it->second);
    memo_bytes_ += memo_cost(memo);
    it->second = std::move(memo);
  } else {
    memo_bytes_ += memo_cost(memo);
    memo_fifo_.push_back(sig.a);
    memo_.emplace(sig.a, std::move(memo));
  }
  while ((memo_.size() > max_memo_entries_ ||
          memo_bytes_ > max_memo_bytes_) &&
         !memo_fifo_.empty()) {
    std::uint64_t victim = memo_fifo_.front();
    memo_fifo_.pop_front();
    auto vit = memo_.find(victim);
    if (vit == memo_.end()) continue;
    memo_bytes_ -= memo_cost(vit->second);
    memo_.erase(vit);
    ++memo_evictions_;
  }
}

void IncrementalState::set_memo_limits(std::size_t max_entries,
                                       std::size_t max_bytes) {
  max_memo_entries_ = max_entries == 0 ? 1 : max_entries;
  max_memo_bytes_ = max_bytes == 0 ? 1 : max_bytes;
  while ((memo_.size() > max_memo_entries_ ||
          memo_bytes_ > max_memo_bytes_) &&
         !memo_fifo_.empty()) {
    std::uint64_t victim = memo_fifo_.front();
    memo_fifo_.pop_front();
    auto vit = memo_.find(victim);
    if (vit == memo_.end()) continue;
    memo_bytes_ -= memo_cost(vit->second);
    memo_.erase(vit);
    ++memo_evictions_;
  }
}

void IncrementalState::clear() {
  gen_ = 0;
  cell_gen_.clear();
  net_gen_.clear();
  memo_.clear();
  memo_fifo_.clear();
  memo_bytes_ = 0;
}

WindowSig window_signature(const Design& d, const Window& win,
                           const std::vector<int>& movable,
                           const std::vector<int>& incident_nets,
                           const DistOptOptions& opts) {
  SignatureHasher h;

  // Window geometry and pass shape.
  h.add_int(win.x0);
  h.add_int(win.x1);
  h.add_int(win.row0);
  h.add_int(win.row1);
  h.add_int(opts.lx);
  h.add_int(opts.ly);
  h.add_bool(opts.allow_move);
  h.add_bool(opts.allow_flip);
  h.add_bool(opts.rounding_fallback);
  h.add_bool(opts.greedy_fallback);

  // Objective parameters. beta_of(net) is hashed per incident net below,
  // which covers both the default beta and any net_beta override.
  const VM1Params& p = opts.params;
  h.add_double(p.alpha);
  h.add_double(p.epsilon);
  h.add_int(p.gamma);
  h.add_int(p.gamma_closed);
  h.add_int(static_cast<long long>(p.delta));
  h.add_int(p.max_pairs_per_net);

  // Solver configuration: everything BranchAndBound/SimplexSolver read.
  // These are static limits, not wall-clock samples — two runs with equal
  // limits sign equally; see DESIGN.md for the truncated-solve caveat.
  const milp::BranchAndBound::Options& mo = opts.mip;
  h.add_int(mo.max_nodes);
  h.add_double(mo.time_limit_sec);
  h.add_double(mo.int_tol);
  h.add_double(mo.gap_tol);
  h.add_bool(mo.use_warm_start);
  h.add_int(mo.lp_options.max_iterations);
  h.add_double(mo.lp_options.time_limit_sec);
  h.add_double(mo.lp_options.tol);
  h.add_double(mo.lp_options.pivot_tol);

  // Fault-injection schedule: deterministic per (config, window key), so
  // the config is part of the signature — reconfiguring VM1_FAULTS
  // invalidates every memo entry instead of replaying stale fault drills.
  const fault::Config& fc = fault::config();
  for (double r : fc.rate) h.add_double(r);
  h.add(fc.seed);

  // Movable cells: ids, positions, orientations.
  h.add_int(static_cast<long long>(movable.size()));
  for (int inst : movable) {
    const Placement& pl = d.placement(inst);
    h.add_int(inst);
    h.add_int(pl.x);
    h.add_int(pl.row);
    h.add_bool(pl.flipped);
  }

  // Fixed-site occupancy: cells that are not movable here can protrude
  // into the window (and change across passes with other grids) without
  // sharing a net with any movable cell, so net dirtiness alone cannot
  // see them — the mask makes the signature exact. Bits are packed into
  // words so the hash cost stays proportional to the window area.
  std::vector<std::vector<bool>> mask = fixed_site_mask(d, win, movable);
  std::uint64_t word = 0;
  int bits = 0;
  for (const std::vector<bool>& row : mask) {
    for (bool b : row) {
      word = (word << 1) | (b ? 1u : 0u);
      if (++bits == 64) {
        h.add(word);
        word = 0;
        bits = 0;
      }
    }
  }
  if (bits > 0) h.add(word);

  // Incident nets: per-net weight plus every boundary terminal — pins
  // owned by cells outside the movable set (fixed neighbors, cells of
  // other windows, primary IOs). Their absolute geometry is folded into
  // the MILP's bounds, so it must be part of the signature.
  const Netlist& nl = d.netlist();
  h.add_int(static_cast<long long>(incident_nets.size()));
  for (int net : incident_nets) {
    h.add_int(net);
    h.add_double(p.beta_of(net));
    for (const NetPin& np : nl.net(net).pins) {
      const bool owned =
          !np.is_io() &&
          std::binary_search(movable.begin(), movable.end(), np.inst);
      if (owned) continue;
      Point pos = d.pin_position(np);
      h.add_int(static_cast<long long>(pos.x));
      h.add_int(static_cast<long long>(pos.y));
      if (!np.is_io()) {
        std::pair<Coord, Coord> span = d.pin_span_abs(np.inst, np.pin);
        h.add_int(static_cast<long long>(span.first));
        h.add_int(static_cast<long long>(span.second));
      }
    }
  }

  return WindowSig{h.low(), h.high()};
}

}  // namespace vm1
