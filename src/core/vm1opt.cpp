#include "core/vm1opt.h"

#include <cmath>
#include <optional>

#include "core/incremental.h"
#include "dist/coordinator.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vm1 {

VM1OptStats vm1opt(Design& d, const VM1OptOptions& opts) {
  Timer timer;
  VM1OptStats stats;
  stats.initial = evaluate_objective(d, opts.params);
  stats.objective_trajectory.push_back(stats.initial.value);

  obs::ObsSpan run_span("vm1opt.run");
  run_span.arg("sequence", opts.sequence.size())
      .arg("initial", stats.initial.value);
  static obs::Gauge& objective_metric = obs::gauge("vm1opt.objective");
  objective_metric.set(stats.initial.value);
  // Total iteration count is data-dependent (convergence test), so the
  // reporter runs in open-ended mode and carries the objective instead.
  obs::ProgressReporter progress("vm1opt");
  progress.update_objective(stats.initial.value);

  // Exactly one execution substrate exists per run: the processes backend
  // must not create pool threads (the coordinator forks workers, and a
  // multi-threaded parent makes fork hostile territory — TSan rejects it
  // outright), and the threads backend needs no worker processes.
  std::optional<ThreadPool> pool;
  std::optional<dist::Coordinator> coord;
  dist::Coordinator* run_coord = nullptr;
  std::uint64_t fleet_token = 0;
  if (opts.backend == DistBackend::kProcesses) {
    if (opts.coordinator) {
      // Borrowed fleet (src/svc): the caller owns the coordinator and
      // shares it between jobs, so every batch runs under a lease. A token
      // of 0 would mean "exclusive" to dist_opt; synthesize a unique one.
      run_coord = opts.coordinator;
      fleet_token = opts.fleet_token;
      if (fleet_token == 0) {
        static std::atomic<std::uint64_t> next_token{1};
        fleet_token = next_token.fetch_add(1, std::memory_order_relaxed);
      }
      run_span.arg("backend", "processes-shared");
    } else {
      dist::CoordinatorOptions co;
      co.num_workers = opts.dist_workers;
      co.worker_path = opts.dist_worker_path;
      co.transport = opts.dist_transport == DistTransport::kTcp
                         ? dist::TransportKind::kTcp
                         : dist::TransportKind::kSocketpair;
      co.tcp_host = opts.dist_tcp_host;
      co.tcp_port = opts.dist_tcp_port;
      co.secret = opts.dist_secret;
      coord.emplace(co);
      run_coord = &*coord;
      run_span.arg("backend", "processes");
      run_span.arg("transport", opts.dist_transport == DistTransport::kTcp
                                    ? "tcp"
                                    : "socketpair");
    }
  } else {
    pool.emplace(opts.threads);
  }
  int tx = 0, ty = 0;
  double obj = stats.initial.value;

  // One incremental state for the whole run: memo entries recorded in one
  // pass are hit in later iterations whenever the window grid repeats
  // (shift period 2) and the window's neighborhood stayed clean.
  IncrementalState inc_state;
  if (opts.incremental) {
    inc_state.bind(d);
    // Tier-2 solve cache (src/cache): memo write-through + probe-on-miss.
    // Requires the incremental engine — the backend hangs off its memo.
    inc_state.set_backend(opts.cache);
  }

  auto accumulate = [&stats](const DistOptStats& s) {
    stats.windows += s.windows;
    stats.milp_nodes += s.total_nodes;
    stats.solved += s.solved;
    stats.fallback_rounding += s.fallback_rounding;
    stats.fallback_greedy += s.fallback_greedy;
    stats.rejected_audit += s.rejected_audit;
    stats.kept += s.kept;
    stats.faulted += s.faulted;
    stats.skipped += s.skipped;
    stats.cached_remote += s.cached_remote;
    stats.faults_injected += s.faults_injected;
    stats.deadline_hit = stats.deadline_hit || s.deadline_hit;
    stats.signature_hits += s.signature_hits;
    stats.signature_misses += s.signature_misses;
    stats.cells_changed += s.cells_changed;
    stats.cache_hits += s.cache_hits;
    stats.cache_stores += s.cache_stores;
    stats.memo_evictions += s.memo_evictions;
    stats.remote_requests += s.remote_requests;
    stats.remote_replies += s.remote_replies;
    stats.remote_retries += s.remote_retries;
    stats.remote_timeouts += s.remote_timeouts;
    stats.remote_desyncs += s.remote_desyncs;
    stats.remote_local_fallbacks += s.remote_local_fallbacks;
    stats.worker_restarts += s.worker_restarts;
    stats.remote_connect_failures += s.remote_connect_failures;
    stats.remote_heartbeats_missed += s.remote_heartbeats_missed;
    stats.wire_bytes_sent += s.wire_bytes_sent;
    stats.wire_bytes_received += s.wire_bytes_received;
    stats.wire_bytes_retransmitted += s.wire_bytes_retransmitted;
    stats.wire_bytes_dropped += s.wire_bytes_dropped;
    stats.remote_faults_scheduled += s.remote_faults_scheduled;
    stats.remote_cache_queries += s.remote_cache_queries;
    stats.remote_cache_query_hits += s.remote_cache_query_hits;
    stats.remote_frames_sent += s.remote_frames_sent;
    stats.remote_frames_received += s.remote_frames_received;
  };
  auto cancelled = [&opts] {
    return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
  };

  for (const ParamSet& u : opts.sequence) {
    double delta_obj = std::numeric_limits<double>::infinity();
    int inner = 0;
    while (delta_obj >= opts.theta && inner < opts.max_inner_iters &&
           !cancelled()) {
      double pre_obj = obj;
      obs::ObsSpan iter_span("vm1opt.iteration");
      iter_span.arg("bw", u.bw).arg("iter", inner);

      DistOptOptions move_pass;
      move_pass.bw = u.bw;
      move_pass.bh = u.rows();
      move_pass.tx = tx;
      move_pass.ty = ty;
      move_pass.lx = u.lx;
      move_pass.ly = u.ly;
      move_pass.allow_move = true;
      move_pass.allow_flip = false;
      move_pass.params = opts.params;
      move_pass.mip = opts.mip;
      move_pass.time_budget_sec = opts.pass_time_budget_sec;
      move_pass.cancel = opts.cancel;
      move_pass.incremental = opts.incremental;
      move_pass.inc = opts.incremental ? &inc_state : nullptr;
      move_pass.backend = opts.backend;
      move_pass.coordinator = run_coord;
      move_pass.fleet_token = fleet_token;
      move_pass.throttle = opts.throttle;
      DistOptStats ms = dist_opt(d, move_pass, pool ? &*pool : nullptr);
      accumulate(ms);
      obj = ms.objective;
      int iter_windows = ms.windows;
      // "Skipped" for the per-iteration skip-rate report means "no MILP
      // ran", whichever cache tier served the window.
      int iter_skipped = ms.skipped + ms.cached_remote;
      int iter_changed = ms.cells_changed;

      if (opts.flip_pass && !cancelled()) {
        DistOptOptions flip_pass = move_pass;
        flip_pass.lx = 0;
        flip_pass.ly = 0;
        flip_pass.allow_move = false;
        flip_pass.allow_flip = true;
        DistOptStats fs = dist_opt(d, flip_pass, pool ? &*pool : nullptr);
        accumulate(fs);
        obj = fs.objective;
        iter_windows += fs.windows;
        iter_skipped += fs.skipped + fs.cached_remote;
        iter_changed += fs.cells_changed;
      }
      stats.windows_per_iter.push_back(iter_windows);
      stats.skipped_per_iter.push_back(iter_skipped);

      // Shift windows so last iteration's boundary cells become movable.
      if (opts.shift_windows) {
        tx += u.bw / 2;
        ty += std::max(1, u.rows() / 2);
      }

      ++stats.outer_iterations;
      ++inner;
      stats.objective_trajectory.push_back(obj);
      objective_metric.set(obj);
      progress.update_objective(obj);
      progress.advance();
      iter_span.arg("objective", obj);
      delta_obj = (pre_obj - obj) / std::max(1.0, std::abs(pre_obj));
      log_debug("vm1opt: u=(", u.bw, ",", u.lx, ",", u.ly, ") iter ", inner,
                " obj ", pre_obj, " -> ", obj);
      // Sweep-level early termination: a full move+flip iteration that
      // changed zero cells is a fixpoint of this parameter set — further
      // iterations would dirty nothing and re-derive the same placements,
      // so short-circuit the theta loop. cells_changed is counted
      // identically with and without the incremental engine (replays
      // included), so both modes exit here on the same iteration.
      if (iter_changed == 0) {
        stats.converged_early = true;
        break;
      }
    }
  }

  stats.final = evaluate_objective(d, opts.params);
  stats.seconds = timer.seconds();
  objective_metric.set(stats.final.value);
  run_span.arg("final", stats.final.value);
  return stats;
}

}  // namespace vm1
