#include "core/vm1opt.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vm1 {

VM1OptStats vm1opt(Design& d, const VM1OptOptions& opts) {
  Timer timer;
  VM1OptStats stats;
  stats.initial = evaluate_objective(d, opts.params);
  stats.objective_trajectory.push_back(stats.initial.value);

  obs::ObsSpan run_span("vm1opt.run");
  run_span.arg("sequence", opts.sequence.size())
      .arg("initial", stats.initial.value);
  static obs::Gauge& objective_metric = obs::gauge("vm1opt.objective");
  objective_metric.set(stats.initial.value);
  // Total iteration count is data-dependent (convergence test), so the
  // reporter runs in open-ended mode and carries the objective instead.
  obs::ProgressReporter progress("vm1opt");
  progress.update_objective(stats.initial.value);

  ThreadPool pool(opts.threads);
  int tx = 0, ty = 0;
  double obj = stats.initial.value;

  auto accumulate = [&stats](const DistOptStats& s) {
    stats.windows += s.windows;
    stats.milp_nodes += s.total_nodes;
    stats.solved += s.solved;
    stats.fallback_rounding += s.fallback_rounding;
    stats.fallback_greedy += s.fallback_greedy;
    stats.rejected_audit += s.rejected_audit;
    stats.kept += s.kept;
    stats.faulted += s.faulted;
    stats.faults_injected += s.faults_injected;
    stats.deadline_hit = stats.deadline_hit || s.deadline_hit;
  };
  auto cancelled = [&opts] {
    return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
  };

  for (const ParamSet& u : opts.sequence) {
    double delta_obj = std::numeric_limits<double>::infinity();
    int inner = 0;
    while (delta_obj >= opts.theta && inner < opts.max_inner_iters &&
           !cancelled()) {
      double pre_obj = obj;
      obs::ObsSpan iter_span("vm1opt.iteration");
      iter_span.arg("bw", u.bw).arg("iter", inner);

      DistOptOptions move_pass;
      move_pass.bw = u.bw;
      move_pass.bh = u.rows();
      move_pass.tx = tx;
      move_pass.ty = ty;
      move_pass.lx = u.lx;
      move_pass.ly = u.ly;
      move_pass.allow_move = true;
      move_pass.allow_flip = false;
      move_pass.params = opts.params;
      move_pass.mip = opts.mip;
      move_pass.time_budget_sec = opts.pass_time_budget_sec;
      move_pass.cancel = opts.cancel;
      DistOptStats ms = dist_opt(d, move_pass, &pool);
      accumulate(ms);
      obj = ms.objective;

      if (opts.flip_pass && !cancelled()) {
        DistOptOptions flip_pass = move_pass;
        flip_pass.lx = 0;
        flip_pass.ly = 0;
        flip_pass.allow_move = false;
        flip_pass.allow_flip = true;
        DistOptStats fs = dist_opt(d, flip_pass, &pool);
        accumulate(fs);
        obj = fs.objective;
      }

      // Shift windows so last iteration's boundary cells become movable.
      if (opts.shift_windows) {
        tx += u.bw / 2;
        ty += std::max(1, u.rows() / 2);
      }

      ++stats.outer_iterations;
      ++inner;
      stats.objective_trajectory.push_back(obj);
      objective_metric.set(obj);
      progress.update_objective(obj);
      progress.advance();
      iter_span.arg("objective", obj);
      delta_obj = (pre_obj - obj) / std::max(1.0, std::abs(pre_obj));
      log_debug("vm1opt: u=(", u.bw, ",", u.lx, ",", u.ly, ") iter ", inner,
                " obj ", pre_obj, " -> ", obj);
    }
  }

  stats.final = evaluate_objective(d, opts.params);
  stats.seconds = timer.seconds();
  objective_metric.set(stats.final.value);
  run_span.arg("final", stats.final.value);
  return stats;
}

}  // namespace vm1
