/// Common window-MILP construction plus the ClosedM1 (alignment)
/// pair formulation, Eq. (1)-(9) of the paper. The OpenM1 pair formulation
/// lives in milp_builder_open.cpp.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "core/milp_builder_detail.h"
#include "place/hpwl.h"
#include "timing/sta.h"

namespace vm1 {

using detail::LinExpr;
using detail::PinGeom;

namespace detail {

void add_diff_constraint(milp::Model& model, const LinExpr& a,
                         const LinExpr& b, int d_var, double coeff_d,
                         double rhs) {
  std::vector<std::pair<int, double>> terms = a.terms;
  for (const auto& [v, c] : b.terms) terms.emplace_back(v, -c);
  if (d_var >= 0) terms.emplace_back(d_var, coeff_d);
  model.add_constraint(std::move(terms), lp::Sense::kLe,
                       rhs - a.constant + b.constant);
}

PinGeom make_pin_geom(const Design& d, const BuiltMilp& built,
                      int movable_idx, int inst, int pin) {
  PinGeom g;
  const Cell& c = d.netlist().cell_of(inst);
  const Coord H = d.tech().row_height();
  if (movable_idx < 0) {
    g.movable = false;
    Point p = d.pin_position(NetPin{inst, pin});
    auto [lo, hi] = d.pin_span_abs(inst, pin);
    g.x.constant = static_cast<double>(p.x);
    g.xlo.constant = static_cast<double>(lo);
    g.xhi.constant = static_cast<double>(hi);
    g.y.constant = static_cast<double>(p.y);
    g.x_min = g.x_max = g.x.constant;
    g.xlo_min = g.xlo_max = g.xlo.constant;
    g.xhi_min = g.xhi_max = g.xhi.constant;
    g.y_min = g.y_max = g.y.constant;
    return g;
  }

  g.movable = true;
  const auto& cands = built.cands[movable_idx];
  const auto& lams = built.lambda[movable_idx];
  bool first = true;
  for (std::size_t k = 0; k < cands.size(); ++k) {
    const Candidate& cd = cands[k];
    double x = static_cast<double>(cd.x) + c.pin_x_track(pin, cd.flipped);
    auto [slo, shi] = c.pin_span(pin, cd.flipped);
    double xlo = static_cast<double>(cd.x + slo);
    double xhi = static_cast<double>(cd.x + shi);
    double y =
        static_cast<double>(cd.row) * H + static_cast<double>(c.pins[pin].y_off);
    g.x.add(lams[k], x);
    g.xlo.add(lams[k], xlo);
    g.xhi.add(lams[k], xhi);
    g.y.add(lams[k], y);
    if (first) {
      g.x_min = g.x_max = x;
      g.xlo_min = g.xlo_max = xlo;
      g.xhi_min = g.xhi_max = xhi;
      g.y_min = g.y_max = y;
      first = false;
    } else {
      g.x_min = std::min(g.x_min, x);
      g.x_max = std::max(g.x_max, x);
      g.xlo_min = std::min(g.xlo_min, xlo);
      g.xlo_max = std::max(g.xlo_max, xlo);
      g.xhi_min = std::min(g.xhi_min, xhi);
      g.xhi_max = std::max(g.xhi_max, xhi);
      g.y_min = std::min(g.y_min, y);
      g.y_max = std::max(g.y_max, y);
    }
  }
  return g;
}

bool add_closed_pair(const WindowProblem& prob, BuiltMilp& built,
                     AlignPair& pair, const PinGeom& P, const PinGeom& Q) {
  const double H =
      static_cast<double>(prob.design->tech().row_height());
  const double y_bound = prob.params.gamma_closed * H;

  // Static pruning: x ranges must intersect and |dy| must be achievable.
  if (P.x_max < Q.x_min || Q.x_max < P.x_min) return false;
  double min_dy =
      std::max({0.0, P.y_min - Q.y_max, Q.y_min - P.y_max});
  if (min_dy > y_bound) return false;

  milp::Model& m = built.model;
  pair.d_var = m.add_binary(-prob.params.alpha, "d");
  m.set_branch_priority(pair.d_var, 1);  // big-M rows: branch d first

  const double gx =
      std::max(P.x_max - Q.x_min, Q.x_max - P.x_min) + 1.0;
  const double gy =
      std::max(P.y_max - Q.y_min, Q.y_max - P.y_min) + y_bound + 1.0;

  // (4): x_p - x_q <= G(1 - d)  and symmetric.
  detail::add_diff_constraint(m, P.x, Q.x, pair.d_var, gx, gx);
  detail::add_diff_constraint(m, Q.x, P.x, pair.d_var, gx, gx);
  // (4): |y_p - y_q| <= G(1 - d) + gamma_closed * H.
  detail::add_diff_constraint(m, P.y, Q.y, pair.d_var, gy, gy + y_bound);
  detail::add_diff_constraint(m, Q.y, P.y, pair.d_var, gy, gy + y_bound);
  return true;
}

}  // namespace detail

namespace {

/// Pins of a net that sit on instances (IO terminals excluded), tagged
/// with the movable-cell index when applicable.
std::vector<PairPin> net_instance_pins(
    const Design& d, int net,
    const std::unordered_map<int, int>& inst_to_movable) {
  std::vector<PairPin> out;
  for (const NetPin& p : d.netlist().net(net).pins) {
    if (p.is_io()) continue;
    PairPin pp;
    pp.inst = p.inst;
    pp.pin = p.pin;
    auto it = inst_to_movable.find(p.inst);
    pp.movable_idx = it == inst_to_movable.end() ? -1 : it->second;
    out.push_back(pp);
  }
  return out;
}

}  // namespace

BuiltMilp build_window_milp(const WindowProblem& prob) {
  const Design& d = *prob.design;
  const Netlist& nl = d.netlist();
  const Coord H = d.tech().row_height();
  const double W = static_cast<double>(d.core().hx);
  const double Hcore = static_cast<double>(d.core().hy);

  BuiltMilp built;
  built.design_ = prob.design;
  built.params_ = prob.params;
  built.window_ = prob.window;
  built.open_arch_ = d.library().arch() == CellArch::kOpenM1;
  built.cells = prob.movable;

  auto fixed_mask = fixed_site_mask(d, prob.window, prob.movable);

  // --- SCP candidates and lambda variables (Eq. (5)-(8)) -----------------
  for (std::size_t m = 0; m < built.cells.size(); ++m) {
    int inst = built.cells[m];
    built.inst_to_movable_[inst] = static_cast<int>(m);
    built.cands.push_back(enumerate_candidates(
        d, inst, prob.window, fixed_mask, prob.lx, prob.ly, prob.allow_move,
        prob.allow_flip));
    std::vector<int> lams;
    for (std::size_t k = 0; k < built.cands.back().size(); ++k) {
      lams.push_back(built.model.add_binary(0.0, "l"));
    }
    built.lambda.push_back(std::move(lams));
    // Exactly one candidate (Eq. (5)).
    std::vector<std::pair<int, double>> row;
    for (int v : built.lambda.back()) row.emplace_back(v, 1.0);
    built.model.add_constraint(std::move(row), lp::Sense::kEq, 1.0);
  }

  // --- Site exclusivity (Eq. (9)) -----------------------------------------
  {
    const int wsites = prob.window.width();
    const int wrows = prob.window.rows();
    std::vector<std::vector<std::pair<int, double>>> site_terms(
        static_cast<std::size_t>(wsites) * wrows);
    for (std::size_t m = 0; m < built.cells.size(); ++m) {
      const int w = nl.cell_of(built.cells[m]).width_sites;
      for (std::size_t k = 0; k < built.cands[m].size(); ++k) {
        const Candidate& cd = built.cands[m][k];
        int r = cd.row - prob.window.row0;
        for (int s = cd.x; s < cd.x + w; ++s) {
          int sx = s - prob.window.x0;
          if (r < 0 || r >= wrows || sx < 0 || sx >= wsites) continue;
          site_terms[static_cast<std::size_t>(r) * wsites + sx]
              .emplace_back(built.lambda[m][k], 1.0);
        }
      }
    }
    for (auto& terms : site_terms) {
      if (terms.size() < 2) continue;
      built.model.add_constraint(std::move(terms), lp::Sense::kLe, 1.0);
    }
  }

  // --- Nets: HPWL variables and bound constraints (Eq. (2)-(3)) ----------
  std::set<int> nets;
  for (int inst : built.cells) {
    for (int n : nets_of_instance(d, inst)) nets.insert(n);
  }

  for (int net : nets) {
    const Net& n = nl.net(net);
    if (!n.routable()) continue;
    bool any_fixed = false;
    double fx_max = 0, fx_min = 0, fy_max = 0, fy_min = 0;
    struct MovPin {
      int movable_idx, inst, pin;
    };
    std::vector<MovPin> movs;
    for (const NetPin& p : n.pins) {
      int midx = -1;
      if (!p.is_io()) {
        auto it = built.inst_to_movable_.find(p.inst);
        if (it != built.inst_to_movable_.end()) midx = it->second;
      }
      if (midx >= 0) {
        movs.push_back({midx, p.inst, p.pin});
      } else {
        Point pos = d.pin_position(p);
        if (!any_fixed) {
          fx_max = fx_min = static_cast<double>(pos.x);
          fy_max = fy_min = static_cast<double>(pos.y);
          any_fixed = true;
        } else {
          fx_max = std::max(fx_max, static_cast<double>(pos.x));
          fx_min = std::min(fx_min, static_cast<double>(pos.x));
          fy_max = std::max(fy_max, static_cast<double>(pos.y));
          fy_min = std::min(fy_min, static_cast<double>(pos.y));
        }
      }
    }
    if (movs.empty()) continue;

    const double beta = prob.params.beta_of(net);
    BuiltMilp::NetVars nv;
    nv.net = net;
    nv.xmax = built.model.add_continuous(any_fixed ? fx_max : 0.0, W, beta);
    nv.xmin =
        built.model.add_continuous(0.0, any_fixed ? fx_min : W, -beta);
    nv.ymax =
        built.model.add_continuous(any_fixed ? fy_max : 0.0, Hcore, beta);
    nv.ymin =
        built.model.add_continuous(0.0, any_fixed ? fy_min : Hcore, -beta);

    for (const MovPin& mp : movs) {
      PinGeom g = detail::make_pin_geom(d, built, mp.movable_idx, mp.inst,
                                        mp.pin);
      // expr - xmax <= 0 ; xmin - expr <= 0; same for y.
      LinExpr xmax_e, xmin_e, ymax_e, ymin_e;
      xmax_e.add(nv.xmax, 1.0);
      xmin_e.add(nv.xmin, 1.0);
      ymax_e.add(nv.ymax, 1.0);
      ymin_e.add(nv.ymin, 1.0);
      detail::add_diff_constraint(built.model, g.x, xmax_e, -1, 0.0, 0.0);
      detail::add_diff_constraint(built.model, xmin_e, g.x, -1, 0.0, 0.0);
      detail::add_diff_constraint(built.model, g.y, ymax_e, -1, 0.0, 0.0);
      detail::add_diff_constraint(built.model, ymin_e, g.y, -1, 0.0, 0.0);
    }
    built.net_vars.push_back(nv);
  }

  // --- Alignment / overlap pairs (Eq. (4) or (11)-(14)) -------------------
  for (int net : nets) {
    const Net& n = nl.net(net);
    if (!n.routable()) continue;
    std::vector<PairPin> pins =
        net_instance_pins(d, net, built.inst_to_movable_);

    struct CandPair {
      PairPin p, q;
      double cur_dy;
    };
    std::vector<CandPair> cand_pairs;
    for (std::size_t i = 0; i < pins.size(); ++i) {
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        if (pins[i].movable_idx < 0 && pins[j].movable_idx < 0) continue;
        if (pins[i].inst == pins[j].inst) continue;
        double yi = static_cast<double>(
            d.pin_y_abs(pins[i].inst, pins[i].pin));
        double yj = static_cast<double>(
            d.pin_y_abs(pins[j].inst, pins[j].pin));
        cand_pairs.push_back({pins[i], pins[j], std::abs(yi - yj)});
      }
    }
    std::stable_sort(cand_pairs.begin(), cand_pairs.end(),
                     [](const CandPair& a, const CandPair& b) {
                       return a.cur_dy < b.cur_dy;
                     });
    int budget = prob.params.max_pairs_per_net;
    for (const CandPair& cp : cand_pairs) {
      if (budget <= 0) break;
      AlignPair pair;
      pair.p = cp.p;
      pair.q = cp.q;
      pair.net = net;
      PinGeom P = detail::make_pin_geom(d, built, cp.p.movable_idx, cp.p.inst,
                                        cp.p.pin);
      PinGeom Q = detail::make_pin_geom(d, built, cp.q.movable_idx, cp.q.inst,
                                        cp.q.pin);
      bool added = built.open_arch_
                       ? detail::add_open_pair(prob, built, pair, P, Q)
                       : detail::add_closed_pair(prob, built, pair, P, Q);
      if (added) {
        built.pairs.push_back(pair);
        --budget;
      }
    }
  }
  (void)H;
  return built;
}

// --- Solution mapping ------------------------------------------------------

double BuiltMilp::pin_x(const PairPin& p, const std::vector<int>& chosen) const {
  const Cell& c = design_->netlist().cell_of(p.inst);
  if (p.movable_idx < 0) {
    return static_cast<double>(
        design_->pin_position(NetPin{p.inst, p.pin}).x);
  }
  const Candidate& cd = cands[p.movable_idx][chosen[p.movable_idx]];
  return static_cast<double>(cd.x) + c.pin_x_track(p.pin, cd.flipped);
}

double BuiltMilp::pin_y(const PairPin& p, const std::vector<int>& chosen) const {
  const Cell& c = design_->netlist().cell_of(p.inst);
  if (p.movable_idx < 0) {
    return static_cast<double>(design_->pin_y_abs(p.inst, p.pin));
  }
  const Candidate& cd = cands[p.movable_idx][chosen[p.movable_idx]];
  return static_cast<double>(cd.row) *
             design_->tech().row_height() +
         static_cast<double>(c.pins[p.pin].y_off);
}

std::pair<double, double> BuiltMilp::pin_span(
    const PairPin& p, const std::vector<int>& chosen) const {
  const Cell& c = design_->netlist().cell_of(p.inst);
  if (p.movable_idx < 0) {
    auto [lo, hi] = design_->pin_span_abs(p.inst, p.pin);
    return {static_cast<double>(lo), static_cast<double>(hi)};
  }
  const Candidate& cd = cands[p.movable_idx][chosen[p.movable_idx]];
  auto [lo, hi] = c.pin_span(p.pin, cd.flipped);
  return {static_cast<double>(cd.x + lo), static_cast<double>(cd.x + hi)};
}

std::vector<double> BuiltMilp::complete(const std::vector<int>& chosen) const {
  const Design& d = *design_;
  const Netlist& nl = d.netlist();
  const double H = static_cast<double>(d.tech().row_height());
  std::vector<double> x(model.num_variables(), 0.0);

  for (std::size_t m = 0; m < cells.size(); ++m) {
    x[lambda[m][chosen[m]]] = 1.0;
  }

  auto position_of = [&](const NetPin& p) -> Point {
    if (!p.is_io()) {
      auto it = inst_to_movable_.find(p.inst);
      if (it != inst_to_movable_.end()) {
        PairPin pp{p.inst, p.pin, it->second};
        return Point{static_cast<Coord>(std::llround(pin_x(pp, chosen))),
                     static_cast<Coord>(std::llround(pin_y(pp, chosen)))};
      }
    }
    return d.pin_position(p);
  };

  for (const NetVars& nv : net_vars) {
    BBox box;
    for (const NetPin& p : nl.net(nv.net).pins) box.add(position_of(p));
    const Rect& r = box.rect();
    x[nv.xmax] = static_cast<double>(r.hx);
    x[nv.xmin] = static_cast<double>(r.lx);
    x[nv.ymax] = static_cast<double>(r.hy);
    x[nv.ymin] = static_cast<double>(r.ly);
  }

  for (const AlignPair& pr : pairs) {
    double dy = std::abs(pin_y(pr.p, chosen) - pin_y(pr.q, chosen));
    if (!open_arch_) {
      bool aligned = pin_x(pr.p, chosen) == pin_x(pr.q, chosen) &&
                     dy <= params_.gamma_closed * H + 1e-9;
      x[pr.d_var] = aligned ? 1.0 : 0.0;
    } else {
      auto [plo, phi] = pin_span(pr.p, chosen);
      auto [qlo, qhi] = pin_span(pr.q, chosen);
      double a = std::max(plo, qlo);
      double b = std::min(phi, qhi);
      bool within_y = dy <= params_.gamma * H + 1e-9;
      bool overlapped =
          within_y && (b - a >= static_cast<double>(params_.delta));
      if (pr.v_var >= 0) x[pr.v_var] = within_y ? 0.0 : 1.0;
      x[pr.d_var] = overlapped ? 1.0 : 0.0;
      if (pr.a_var >= 0) x[pr.a_var] = a;
      if (pr.b_var >= 0) x[pr.b_var] = b;
      if (pr.o_var >= 0) {
        x[pr.o_var] =
            overlapped ? b - a - static_cast<double>(params_.delta) : 0.0;
      }
    }
  }
  return x;
}

std::vector<double> BuiltMilp::warm_start(const Design& d) const {
  (void)d;
  // Candidate 0 is by construction the current placement of every cell.
  return complete(std::vector<int>(cells.size(), 0));
}

void BuiltMilp::apply(Design& d, const std::vector<double>& x) const {
  std::vector<Placement> chosen = chosen_placements(x);
  for (std::size_t m = 0; m < cells.size(); ++m) {
    d.set_placement(cells[m], chosen[m]);
  }
}

std::vector<Placement> BuiltMilp::chosen_placements(
    const std::vector<double>& x) const {
  std::vector<Placement> out;
  out.reserve(cells.size());
  for (std::size_t m = 0; m < cells.size(); ++m) {
    // Default to the current placement: a (theoretically infeasible)
    // all-zero lambda row leaves the cell where it is, matching the old
    // apply() behaviour of skipping the cell.
    Placement p = design_->placement(cells[m]);
    for (std::size_t k = 0; k < lambda[m].size(); ++k) {
      if (x[lambda[m][k]] > 0.5) {
        p = cands[m][k];
        break;
      }
    }
    out.push_back(p);
  }
  return out;
}

milp::RoundingHeuristic BuiltMilp::make_heuristic() const {
  return [this](const milp::Model&, const std::vector<double>& lpx)
             -> std::optional<std::vector<double>> {
    const Netlist& nl = design_->netlist();
    const int wsites = window_.width();
    const int wrows = window_.rows();
    std::vector<int> chosen(cells.size(), -1);

    // Order cells by their strongest lambda, strongest first.
    std::vector<std::pair<double, int>> order;
    for (std::size_t m = 0; m < cells.size(); ++m) {
      double best = 0;
      for (int v : lambda[m]) best = std::max(best, lpx[v]);
      order.emplace_back(-best, static_cast<int>(m));
    }
    std::stable_sort(order.begin(), order.end());

    std::vector<bool> used(static_cast<std::size_t>(wsites) * wrows, false);
    auto try_take = [&](int m, int k) {
      const Candidate& cd = cands[m][k];
      const int w = nl.cell_of(cells[m]).width_sites;
      int r = cd.row - window_.row0;
      if (r < 0 || r >= wrows) return false;
      for (int s = cd.x; s < cd.x + w; ++s) {
        int sx = s - window_.x0;
        if (sx < 0 || sx >= wsites) return false;
        if (used[static_cast<std::size_t>(r) * wsites + sx]) return false;
      }
      for (int s = cd.x; s < cd.x + w; ++s) {
        used[static_cast<std::size_t>(r) * wsites +
             (s - window_.x0)] = true;
      }
      chosen[m] = k;
      return true;
    };

    for (const auto& [neg, m] : order) {
      (void)neg;
      std::vector<std::pair<double, int>> ks;
      for (std::size_t k = 0; k < lambda[m].size(); ++k) {
        ks.emplace_back(-lpx[lambda[m][k]], static_cast<int>(k));
      }
      std::stable_sort(ks.begin(), ks.end());
      bool ok = false;
      for (const auto& [nv, k] : ks) {
        (void)nv;
        if (try_take(m, k)) {
          ok = true;
          break;
        }
      }
      if (!ok) return std::nullopt;
    }
    return complete(chosen);
  };
}

// --- Full-design objective ---------------------------------------------------

std::pair<long, double> count_net_alignments(const Design& d, int net,
                                             const VM1Params& params) {
  const Netlist& nl = d.netlist();
  const Net& n = nl.net(net);
  const double H = static_cast<double>(d.tech().row_height());
  const bool open = d.library().arch() == CellArch::kOpenM1;
  long count = 0;
  double overlap_sum = 0;

  std::vector<NetPin> pins;
  for (const NetPin& p : n.pins) {
    if (!p.is_io()) pins.push_back(p);
  }
  for (std::size_t i = 0; i < pins.size(); ++i) {
    for (std::size_t j = i + 1; j < pins.size(); ++j) {
      if (pins[i].inst == pins[j].inst) continue;
      double dy = std::abs(
          static_cast<double>(d.pin_y_abs(pins[i].inst, pins[i].pin)) -
          static_cast<double>(d.pin_y_abs(pins[j].inst, pins[j].pin)));
      if (!open) {
        if (dy > params.gamma_closed * H) continue;
        Point a = d.pin_position(pins[i]);
        Point b = d.pin_position(pins[j]);
        if (a.x == b.x) ++count;
      } else {
        if (dy > params.gamma * H) continue;
        auto [plo, phi] = d.pin_span_abs(pins[i].inst, pins[i].pin);
        auto [qlo, qhi] = d.pin_span_abs(pins[j].inst, pins[j].pin);
        double ov = static_cast<double>(std::min(phi, qhi)) -
                    static_cast<double>(std::max(plo, qlo));
        if (ov >= static_cast<double>(params.delta)) {
          ++count;
          overlap_sum += ov - static_cast<double>(params.delta);
        }
      }
    }
  }
  return {count, overlap_sum};
}

ObjectiveBreakdown evaluate_objective(const Design& d,
                                      const VM1Params& params) {
  ObjectiveBreakdown out;
  const bool open = d.library().arch() == CellArch::kOpenM1;
  double weighted_hpwl = 0;
  for (int net = 0; net < d.netlist().num_nets(); ++net) {
    if (!d.netlist().net(net).routable()) continue;
    double w = static_cast<double>(net_hpwl(d, net));
    out.hpwl += w;
    weighted_hpwl += params.beta_of(net) * w;
    auto [cnt, ovl] = count_net_alignments(d, net, params);
    out.alignments += cnt;
    out.overlap_sum += ovl;
  }
  out.value = weighted_hpwl - params.alpha * out.alignments;
  if (open) out.value -= params.epsilon * out.overlap_sum;
  return out;
}

std::vector<double> timing_criticality_weights(
    const Design& d, const std::vector<long>& net_lengths,
    double max_weight) {
  StaOptions sta_opts;
  sta_opts.net_lengths = net_lengths;
  StaResult sta = run_sta(d, sta_opts);
  std::vector<double> beta(d.netlist().num_nets(), 1.0);
  if (sta.max_delay <= 0) return beta;
  for (int net = 0; net < d.netlist().num_nets(); ++net) {
    double crit = sta.net_arrival[net] / sta.max_delay;
    // Quadratic ramp: only genuinely late nets get a heavy HPWL weight.
    beta[net] = 1.0 + (max_weight - 1.0) * crit * crit;
  }
  return beta;
}

}  // namespace vm1
