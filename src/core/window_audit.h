/// \file window_audit.h
/// Post-solve legality audit for one window solution (the "trust but
/// verify" half of the window-solve guardrails, DESIGN.md "Window-solve
/// guardrails").
///
/// A window MILP solution is applied to the design and then audited before
/// it is accepted: every moved cell must stay inside the window, respect
/// the pass's displacement bounds and move/flip permissions, and the
/// window region must remain overlap-free (against both the window's own
/// cells and fixed cells protruding into it). On violation the caller
/// rolls the window back to its pre-apply snapshot — a wrong solution can
/// cost a window's improvement, never corrupt the layout.
///
/// Objective non-degradation is checked separately by the caller against
/// the warm-start objective (dist_opt validates the solver's reported
/// objective before apply); this module owns the geometric checks.
#pragma once

#include <string>
#include <vector>

#include "core/candidates.h"

namespace vm1 {

struct WindowAuditResult {
  bool ok = true;
  std::string violation;  ///< first violation, human readable (empty if ok)
};

/// Audits the current placement of `insts` (a window's movable cells)
/// against their pre-apply `before` snapshot (parallel to `insts`).
/// Checks, in order:
///  * footprint fully inside `win`;
///  * |dx| <= lx and |drow| <= ly (both must be 0 when !allow_move);
///  * orientation unchanged when !allow_flip;
///  * no two audited cells overlap, and none overlaps a fixed cell
///    occupying window sites.
WindowAuditResult audit_window_placement(
    const Design& d, const Window& win, const std::vector<int>& insts,
    const std::vector<Placement>& before, int lx, int ly, bool allow_move,
    bool allow_flip);

}  // namespace vm1
