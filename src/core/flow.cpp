#include "core/flow.h"

#include "place/hpwl.h"
#include "util/logging.h"

namespace vm1 {

Design prepare_design(const FlowOptions& opts, double* place_seconds) {
  Timer timer;
  Design d = make_design(opts.design_name, opts.arch, opts.design);
  global_place(d, opts.gp);
  legalize(d);
  // Converge the traditional wirelength-driven detailed placement hard, as
  // a commercial flow would: the VM1 optimizer's job is the alignment/HPWL
  // *trade-off*, not leftover HPWL slack.
  DetailedPlaceOptions dp = opts.dp;
  dp.max_passes = std::max(dp.max_passes, 10);
  dp.min_improve = std::min(dp.min_improve, 0.0005);
  detailed_place(d, dp);
  if (opts.polish_baseline) {
    VM1OptOptions polish = opts.vm1;
    polish.params.alpha = 0;
    polish.params.epsilon = 0;
    polish.max_inner_iters = std::min(polish.max_inner_iters, 2);
    vm1opt(d, polish);
  }
  if (place_seconds) *place_seconds = timer.seconds();
  return d;
}

QoR measure(const Design& d, const RouterOptions& ropts,
            const VM1Params& params, double clock_period) {
  QoR q;
  q.hpwl = total_hpwl(d);
  Router router(d, ropts);
  q.route = router.route();

  std::vector<long> lengths(d.netlist().num_nets(), 0);
  for (int n = 0; n < d.netlist().num_nets(); ++n) {
    lengths[n] = router.net_length_dbu(n);
  }
  StaOptions sta_opts;
  sta_opts.clock_period = clock_period;
  sta_opts.net_lengths = lengths;
  q.sta = run_sta(d, sta_opts);

  PowerOptions pow_opts;
  pow_opts.net_lengths = lengths;
  q.power = compute_power(d, pow_opts);

  q.objective = evaluate_objective(d, params);
  return q;
}

FlowResult run_flow(const FlowOptions& opts,
                    std::optional<Design>* out_design) {
  FlowResult res;
  Design d = prepare_design(opts, &res.place_seconds);

  res.init = measure(d, opts.router, opts.vm1.params);
  // Fix the clock period at the initial critical path so WNS deltas are
  // visible (paper reports WNS ~ 0.000 before and after).
  double period = res.init.sta.max_delay;

  if (opts.run_vm1) {
    res.opt = vm1opt(d, opts.vm1);
    res.final = measure(d, opts.router, opts.vm1.params, period);
    // Recompute init WNS against the same period for a fair comparison.
    res.init.sta.wns = period - res.init.sta.max_delay;
  } else {
    res.final = res.init;
  }

  if (out_design) out_design->emplace(std::move(d));
  return res;
}

}  // namespace vm1
