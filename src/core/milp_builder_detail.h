/// \file milp_builder_detail.h
/// Internal shared machinery between the ClosedM1 and OpenM1 MILP builders.
#pragma once

#include "core/milp_builder.h"

namespace vm1::detail {

/// Affine expression over model variables: sum(coeff * var) + constant.
struct LinExpr {
  std::vector<std::pair<int, double>> terms;
  double constant = 0;

  void add(int var, double coeff) { terms.emplace_back(var, coeff); }
};

/// Pin geometry prepared for pair-constraint construction. For a movable
/// pin the expressions range over its owner cell's lambda variables; for a
/// fixed pin they are constants.
struct PinGeom {
  bool movable = false;
  LinExpr x;    ///< pin track / midpoint x
  LinExpr xlo;  ///< pin span left edge (OpenM1)
  LinExpr xhi;  ///< pin span right edge (OpenM1)
  LinExpr y;    ///< absolute pin y
  // Achievable ranges over the candidate set (== the constant for fixed).
  double x_min = 0, x_max = 0;
  double xlo_min = 0, xlo_max = 0;
  double xhi_min = 0, xhi_max = 0;
  double y_min = 0, y_max = 0;
};

/// Emits `lhs_terms + sign*var_terms <= rhs` style rows; convenience around
/// Model::add_constraint for expression pairs.
/// Adds the constraint  exprA - exprB + coeff_d * d <= rhs.
void add_diff_constraint(milp::Model& model, const LinExpr& a,
                         const LinExpr& b, int d_var, double coeff_d,
                         double rhs);

/// Builds PinGeom for (inst, pin). `movable_idx` >= 0 selects the movable
/// cell whose candidates/lambdas drive the expressions.
PinGeom make_pin_geom(const Design& d, const BuiltMilp& built,
                      int movable_idx, int inst, int pin);

/// Architecture-specific pair emission. Returns false when the pair is
/// statically impossible and should be skipped.
bool add_closed_pair(const WindowProblem& prob, BuiltMilp& built,
                     AlignPair& pair, const PinGeom& P, const PinGeom& Q);
bool add_open_pair(const WindowProblem& prob, BuiltMilp& built,
                   AlignPair& pair, const PinGeom& P, const PinGeom& Q);

}  // namespace vm1::detail
