/// \file vm1opt.h
/// VM1Opt (Algorithm 1): the metaheuristic outer loop of the vertical-M1
/// routing-aware detailed placement optimization.
///
/// For each parameter set u = (bw, bh, lx, ly) in the sequence U, iterate:
///   1. DistOpt with moves enabled, flips disabled (f = 0);
///   2. DistOpt with flips enabled, moves disabled (f = 1, lx = ly = 0);
///   3. shift the window offsets (tx, ty) so boundary cells that straddled
///      windows become movable next iteration;
/// until the normalized objective improvement falls below theta (1%).
#pragma once

#include "core/dist_opt.h"

namespace vm1 {

class CacheBackend;  // core/incremental.h

/// One entry of the input parameter-set queue U.
struct ParamSet {
  int bw = 20;  ///< window width (sites) — also sets bh when bh == 0
  int bh = 0;   ///< window height in rows (0 = derive as max(2, 3*bw/20))
  int lx = 4;
  int ly = 1;

  int rows() const { return bh > 0 ? bh : std::max(2, 3 * bw / 20); }
};

struct VM1OptOptions {
  VM1Params params;
  std::vector<ParamSet> sequence = {ParamSet{20, 0, 4, 1}};
  double theta = 0.01;      ///< convergence threshold (paper: 1%)
  int max_inner_iters = 4;  ///< safety bound per parameter set
  bool flip_pass = true;    ///< run the f=1 DistOpt of Algorithm 1
  /// Shift window offsets (tx, ty) between iterations so boundary cells
  /// become movable (Algorithm 1 line 9). Disable only for ablations.
  bool shift_windows = true;
  /// Dirty-window incremental re-solve (see core/incremental.h): one
  /// IncrementalState is shared by every DistOpt pass of the run, so a
  /// window whose signature recurs while its cells/nets stayed clean is
  /// skipped and its memoized result replayed — bit-identical to full
  /// re-solve. Disable to force every window through the MILP (equivalence
  /// tests run both modes against each other).
  bool incremental = true;
  unsigned threads = 0;     ///< 0 = hardware concurrency
  /// Execution backend for every DistOpt pass (see core/dist_opt.h).
  /// kProcesses solves windows in `dist_workers` worker processes via one
  /// dist::Coordinator owned for the whole run — workers and their design
  /// replicas persist across passes — and creates no ThreadPool at all
  /// (fork safety). Results are bit-identical to kThreads.
  DistBackend backend = DistBackend::kThreads;
  int dist_workers = 2;
  /// Worker executable for the processes backend; empty uses $VM1_WORKER,
  /// then the build-baked default (apps/vm1_worker).
  std::string dist_worker_path;
  /// Transport underneath the processes backend. kTcp listens on
  /// dist_tcp_host:dist_tcp_port (0 = ephemeral) and either self-spawns
  /// loopback workers (`vm1_worker --connect`) or, with an empty worker
  /// path resolution, waits for remote peers; the auth secret comes from
  /// `dist_secret`, falling back to $VM1_DIST_SECRET.
  DistTransport dist_transport = DistTransport::kSocketpair;
  std::string dist_tcp_host = "127.0.0.1";
  int dist_tcp_port = 0;
  std::string dist_secret;
  /// Borrowed coordinator (src/svc fleet sharing): when non-null and the
  /// backend is kProcesses, the run uses this caller-owned coordinator
  /// instead of building its own, leasing it per batch under `fleet_token`
  /// (a fresh token is generated when 0) and gating each batch through
  /// `throttle` if one is given. The transport/worker knobs above are
  /// ignored — the fleet is whatever the owner built. Results remain
  /// bit-identical to an exclusive run.
  dist::Coordinator* coordinator = nullptr;
  std::uint64_t fleet_token = 0;
  BatchThrottle* throttle = nullptr;
  /// Tier-2 solve cache (src/cache): when non-null (and `incremental` is
  /// on, since the backend hangs off the run's IncrementalState), window
  /// memos are written through to it and probed on tier-1 misses — a
  /// persistent CacheStore makes whole re-runs skip their solves. The
  /// backend must outlive the run and be thread-safe.
  CacheBackend* cache = nullptr;
  milp::BranchAndBound::Options mip = default_mip();
  /// Per-DistOpt-pass wall-clock budget forwarded to
  /// DistOptOptions::time_budget_sec (0 = unlimited). See DESIGN.md
  /// "Window-solve guardrails".
  double pass_time_budget_sec = 0;
  /// Optional external cancellation token, checked between windows and
  /// between passes; the optimizer stops cleanly with coherent stats.
  const std::atomic<bool>* cancel = nullptr;

  static milp::BranchAndBound::Options default_mip() {
    milp::BranchAndBound::Options o;
    o.max_nodes = 60;
    o.time_limit_sec = 1.5;
    // Window objectives are quantized in ~0.02 steps (beta * integer HPWL
    // plus alpha multiples); proving optimality tighter than that only
    // burns nodes.
    o.gap_tol = 0.02;
    // One runaway LP (huge windows in the Figure-5 sweep) must not stall a
    // whole batch: truncate and fall back to the incumbent.
    o.lp_options.time_limit_sec = 0.75;
    return o;
  }
};

struct VM1OptStats {
  ObjectiveBreakdown initial;
  ObjectiveBreakdown final;
  int outer_iterations = 0;  ///< total DistOpt pairs executed
  int windows = 0;
  long milp_nodes = 0;
  // Window-outcome taxonomy aggregated over every DistOpt pass (see
  // WindowOutcome); the eight buckets sum to `windows`.
  long solved = 0;
  long fallback_rounding = 0;
  long fallback_greedy = 0;
  long rejected_audit = 0;
  long kept = 0;
  long faulted = 0;
  long skipped = 0;          ///< kSkipped: memoized replays (no MILP built)
  long cached_remote = 0;    ///< kCachedRemote: cache tier served the solve
  long faults_injected = 0;  ///< VM1_FAULTS firings observed across passes
  bool deadline_hit = false; ///< any pass cut off by its time budget
  // Incremental-engine observability, aggregated over every pass.
  long signature_hits = 0;
  long signature_misses = 0;
  long cells_changed = 0;
  // Solve-cache observability (zero without VM1OptOptions::cache).
  long cache_hits = 0;       ///< tier-2 hits replayed without solving
  long cache_stores = 0;     ///< memoized solves written through to tier 2
  long memo_evictions = 0;   ///< tier-1 memo entries evicted (capacity)
  // Distributed-backend transport counters, aggregated over every pass
  // (all zero for the threads backend).
  long remote_requests = 0;
  long remote_replies = 0;
  long remote_retries = 0;
  long remote_timeouts = 0;
  long remote_desyncs = 0;
  long remote_local_fallbacks = 0;
  long worker_restarts = 0;
  long remote_connect_failures = 0;
  long remote_heartbeats_missed = 0;
  long wire_bytes_sent = 0;
  long wire_bytes_received = 0;
  long wire_bytes_retransmitted = 0;
  long wire_bytes_dropped = 0;
  long remote_faults_scheduled = 0;  ///< timing-invariant drill census
  // Cache-aware dispatch (src/cache + dist::Coordinator remote_cache /
  // coalesce): probe volume and frame economy. frames-per-window =
  // remote_frames_sent / windows, the quantity coalescing drives < 1.0.
  long remote_cache_queries = 0;     ///< signatures probed via kCacheQuery
  long remote_cache_query_hits = 0;  ///< probes answered with a hit
  long remote_frames_sent = 0;       ///< wire frames the coordinator wrote
  long remote_frames_received = 0;   ///< wire frames the coordinator parsed
  /// True when a parameter set's inner loop exited because a full
  /// move+flip iteration changed zero cells (sweep-level early
  /// termination), rather than via theta or max_inner_iters.
  bool converged_early = false;
  /// Per outer iteration (one move+flip pair): windows visited / skipped.
  /// Lets benches report the skip rate after the first sweep.
  std::vector<int> windows_per_iter;
  std::vector<int> skipped_per_iter;
  double seconds = 0;
  std::vector<double> objective_trajectory;
};

/// Runs the full optimization on the design in place.
VM1OptStats vm1opt(Design& d, const VM1OptOptions& opts);

}  // namespace vm1
