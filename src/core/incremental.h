/// \file incremental.h
/// Dirty-window incremental re-solve engine for DistOpt.
///
/// After the first sweep of a VM1Opt run most windows are untouched: their
/// cells and incident nets have not moved, so re-building and re-solving
/// their MILPs is pure waste. This module provides the two pieces that let
/// dist_opt() skip that work *exactly*:
///
///  1. Net-level change tracking (IncrementalState): when a window's
///     accepted solution moves or flips cells, every cell and every net
///     incident to those cells gets the current generation stamp. A window
///     is clean since generation g iff none of its movable cells nor any of
///     its incident nets was stamped after g — this propagates dirtiness to
///     every window whose cell set touches a dirty net, including
///     diagonal-batch neighbors in later batches of the same pass.
///
///  2. A canonical window signature (window_signature): a stable 128-bit
///     FNV-style hash over everything the window solve depends on — window
///     geometry, movable cell ids/positions/orientations, the fixed-site
///     mask, the parameter set and MIP configuration, per-net weights,
///     boundary-pin terminals of incident nets, and the fault-injection
///     config. No wall-clock or address-dependent input ever enters the
///     hash, so signatures are reproducible across runs and platforms.
///
/// A memo entry (WindowMemo) records the outcome and the exact placement
/// delta a signature produced. A later window whose signature matches and
/// whose cells/nets are clean since the entry was recorded is *skipped*:
/// the recorded delta is replayed without building the MILP, which is
/// bit-identical to re-solving because the whole window pipeline is a
/// deterministic function of the signed inputs (see DESIGN.md
/// "Incremental re-solve & memoization" for the caveats around wall-clock
/// truncated solves, which are excluded from memoization).
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dist_opt.h"

namespace vm1 {

/// Streaming 2x64-bit FNV-1a-style hasher. Stable across platforms and
/// runs: it consumes explicit integer words only — callers hash doubles by
/// bit pattern, never pointers, clocks, or container addresses.
class SignatureHasher {
 public:
  void add(std::uint64_t v) {
    a_ = step(a_, v, kPrimeA);
    b_ = step(b_, v ^ kTweak, kPrimeB);
  }
  void add_int(long long v) { add(static_cast<std::uint64_t>(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add(bits);
  }
  void add_bool(bool v) { add(v ? 1u : 0u); }

  std::uint64_t low() const { return a_; }
  std::uint64_t high() const { return b_; }

 private:
  static std::uint64_t step(std::uint64_t h, std::uint64_t v,
                            std::uint64_t prime) {
    h ^= v;
    h *= prime;
    h ^= h >> 29;
    return h;
  }
  static constexpr std::uint64_t kPrimeA = 1099511628211ULL;  // FNV-1a prime
  static constexpr std::uint64_t kPrimeB = 0x9E3779B97F4A7C15ULL;
  static constexpr std::uint64_t kTweak = 0xA5A5A5A55A5A5A5AULL;
  std::uint64_t a_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::uint64_t b_ = 0x6C62272E07BB0142ULL;
};

/// 128-bit window signature. `a` keys the memo table; `b` is stored in the
/// entry and must also match on lookup, so a false skip needs a full
/// 128-bit collision *and* a clean dirtiness check.
struct WindowSig {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const WindowSig&, const WindowSig&) = default;
};

/// Recorded result of one window solve, replayable without the MILP.
struct WindowMemo {
  std::uint64_t sig2 = 0;         ///< WindowSig::b (collision guard)
  std::uint64_t recorded_gen = 0; ///< generation when the entry was stored
  WindowOutcome outcome = WindowOutcome::kKept;  ///< outcome when recorded
  bool empty_build = false;       ///< build_window_milp() returned empty
  double obj_delta = 0;           ///< window-local improvement when recorded
  /// Exact placement delta the solve produced (empty for fixpoints, which
  /// is the common case: a window that re-solves to identity).
  std::vector<std::pair<int, Placement>> changed;
};

/// Cross-pass state of the incremental engine: per-cell and per-net dirty
/// generations plus the signature-keyed memo table. One instance is owned
/// by the vm1opt() driver (or a test) and shared by every DistOpt pass on
/// the same design. All mutation happens in the serial apply phase of
/// dist_opt(); the parallel solve phase only reads.
class IncrementalState {
 public:
  /// Sizes the generation arrays for `d`. Re-binding to a design with a
  /// different instance/net count resets all state.
  void bind(const Design& d);

  bool bound() const { return !cell_gen_.empty() || !net_gen_.empty(); }
  std::uint64_t generation() const { return gen_; }

  /// Bumps the generation and stamps `insts` and every net incident to
  /// them. Returns the number of distinct nets stamped.
  long mark_changed(const std::vector<int>& insts, const Netlist& nl);

  /// True iff no cell in `cells` and no net in `nets` was stamped after
  /// generation `gen`.
  bool clean_since(const std::vector<int>& cells,
                   const std::vector<int>& nets, std::uint64_t gen) const;

  /// Memo entry for `sig`, or nullptr on miss (absent or secondary-hash
  /// mismatch). The pointer is invalidated by store()/clear().
  const WindowMemo* lookup(const WindowSig& sig) const;

  /// Inserts or overwrites the entry for `sig`. The table is capped: when
  /// it exceeds ~1M entries it is cleared wholesale (correctness is
  /// unaffected — a lost entry is just a future miss).
  void store(const WindowSig& sig, WindowMemo memo);

  std::size_t memo_entries() const { return memo_.size(); }
  void clear();

 private:
  static constexpr std::size_t kMaxEntries = 1u << 20;
  std::uint64_t gen_ = 0;
  std::vector<std::uint64_t> cell_gen_;
  std::vector<std::uint64_t> net_gen_;
  std::unordered_map<std::uint64_t, WindowMemo> memo_;
};

/// Canonical signature of one window solve under `opts`: hashes the window
/// geometry, displacement bounds and pass flags, VM1Params (including
/// per-net beta of every incident net), the MIP/LP configuration, the
/// fault-injection config, the movable cells' ids and placements, the
/// fixed-site mask, and — for every incident net — each pin *not* owned by
/// a movable cell (boundary terminals: position, and span for instance
/// pins). `movable` must be sorted ascending (partition_windows builds it
/// that way).
WindowSig window_signature(const Design& d, const Window& win,
                           const std::vector<int>& movable,
                           const std::vector<int>& incident_nets,
                           const DistOptOptions& opts);

}  // namespace vm1
