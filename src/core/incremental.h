/// \file incremental.h
/// Dirty-window incremental re-solve engine for DistOpt.
///
/// After the first sweep of a VM1Opt run most windows are untouched: their
/// cells and incident nets have not moved, so re-building and re-solving
/// their MILPs is pure waste. This module provides the two pieces that let
/// dist_opt() skip that work *exactly*:
///
///  1. Net-level change tracking (IncrementalState): when a window's
///     accepted solution moves or flips cells, every cell and every net
///     incident to those cells gets the current generation stamp. A window
///     is clean since generation g iff none of its movable cells nor any of
///     its incident nets was stamped after g — this propagates dirtiness to
///     every window whose cell set touches a dirty net, including
///     diagonal-batch neighbors in later batches of the same pass.
///
///  2. A canonical window signature (window_signature): a stable 128-bit
///     FNV-style hash over everything the window solve depends on — window
///     geometry, movable cell ids/positions/orientations, the fixed-site
///     mask, the parameter set and MIP configuration, per-net weights,
///     boundary-pin terminals of incident nets, and the fault-injection
///     config. No wall-clock or address-dependent input ever enters the
///     hash, so signatures are reproducible across runs and platforms.
///
/// A memo entry (WindowMemo) records the outcome and the exact placement
/// delta a signature produced. A later window whose signature matches and
/// whose cells/nets are clean since the entry was recorded is *skipped*:
/// the recorded delta is replayed without building the MILP, which is
/// bit-identical to re-solving because the whole window pipeline is a
/// deterministic function of the signed inputs (see DESIGN.md
/// "Incremental re-solve & memoization" for the caveats around wall-clock
/// truncated solves, which are excluded from memoization).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dist_opt.h"
#include "util/hash.h"

namespace vm1 {

/// The signature stream hasher lives in util/hash.h (shared with the wire
/// checksums and fault keys); the historical unqualified name stays valid
/// for every signature-computing call site.
using hash::SignatureHasher;

/// 128-bit window signature. `a` keys the memo table; `b` is stored in the
/// entry and must also match on lookup, so a false skip needs a full
/// 128-bit collision *and* a clean dirtiness check.
struct WindowSig {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const WindowSig&, const WindowSig&) = default;
};

/// Recorded result of one window solve, replayable without the MILP.
struct WindowMemo {
  std::uint64_t sig2 = 0;         ///< WindowSig::b (collision guard)
  std::uint64_t recorded_gen = 0; ///< generation when the entry was stored
  WindowOutcome outcome = WindowOutcome::kKept;  ///< outcome when recorded
  bool empty_build = false;       ///< build_window_milp() returned empty
  double obj_delta = 0;           ///< window-local improvement when recorded
  /// Exact placement delta the solve produced (empty for fixpoints, which
  /// is the common case: a window that re-solves to identity).
  std::vector<std::pair<int, Placement>> changed;
};

/// Second-tier memo storage behind IncrementalState — the seam the solve
/// cache (src/cache) plugs into. The in-memory memo table is tier 1; a
/// backend, when attached, is tier 2: probed on a tier-1 miss, written
/// through on every memoized solve. Unlike tier-1 hits, a backend hit is
/// trusted on the full 128-bit signature alone — no clean_since() check —
/// because backend entries outlive the run and cross-run generation stamps
/// are meaningless; the signature covers every input the solve reads, so
/// matching it IS the cleanliness proof. Implementations must be
/// thread-safe: dist_opt() probes from its parallel prepare phase.
class CacheBackend {
 public:
  virtual ~CacheBackend() = default;
  /// Memo for `sig`, or nullopt on miss. Must never return a value for a
  /// different signature (a corrupt or torn store entry is a miss).
  virtual std::optional<WindowMemo> lookup(const WindowSig& sig) = 0;
  /// Write-through of a freshly recorded memo. Failures must be absorbed
  /// (a lost store is a future miss, not an error).
  virtual void store(const WindowSig& sig, const WindowMemo& memo) = 0;
};

/// Cross-pass state of the incremental engine: per-cell and per-net dirty
/// generations plus the signature-keyed memo table. One instance is owned
/// by the vm1opt() driver (or a test) and shared by every DistOpt pass on
/// the same design. All mutation happens in the serial apply phase of
/// dist_opt(); the parallel solve phase only reads.
class IncrementalState {
 public:
  /// Sizes the generation arrays for `d`. Re-binding to a design with a
  /// different instance/net count resets all state.
  void bind(const Design& d);

  bool bound() const { return !cell_gen_.empty() || !net_gen_.empty(); }
  std::uint64_t generation() const { return gen_; }

  /// Bumps the generation and stamps `insts` and every net incident to
  /// them. Returns the number of distinct nets stamped.
  long mark_changed(const std::vector<int>& insts, const Netlist& nl);

  /// True iff no cell in `cells` and no net in `nets` was stamped after
  /// generation `gen`.
  bool clean_since(const std::vector<int>& cells,
                   const std::vector<int>& nets, std::uint64_t gen) const;

  /// Memo entry for `sig`, or nullptr on miss (absent or secondary-hash
  /// mismatch). The pointer is invalidated by store()/clear().
  const WindowMemo* lookup(const WindowSig& sig) const;

  /// Inserts or overwrites the entry for `sig`. The table is bounded by
  /// entry and byte caps (set_memo_limits): exceeding either evicts the
  /// oldest-inserted entries first. Correctness is unaffected — a lost
  /// entry is just a future miss — but unlike the historical wholesale
  /// clear, eviction is incremental and counted (memo_evictions), so a
  /// long service run degrades smoothly instead of periodically losing the
  /// whole table.
  void store(const WindowSig& sig, WindowMemo memo);

  /// Caps for the memo table. Defaults: 1M entries / 256 MiB estimated.
  void set_memo_limits(std::size_t max_entries, std::size_t max_bytes);

  /// Attaches (or detaches, with nullptr) the tier-2 backend. Not owned;
  /// must outlive every dist_opt() pass run against this state.
  void set_backend(CacheBackend* backend) { backend_ = backend; }
  CacheBackend* backend() const { return backend_; }

  std::size_t memo_entries() const { return memo_.size(); }
  std::size_t memo_bytes() const { return memo_bytes_; }
  long memo_evictions() const { return memo_evictions_; }
  void clear();

 private:
  static std::size_t memo_cost(const WindowMemo& m);

  std::size_t max_memo_entries_ = 1u << 20;
  std::size_t max_memo_bytes_ = 256u << 20;
  std::uint64_t gen_ = 0;
  std::vector<std::uint64_t> cell_gen_;
  std::vector<std::uint64_t> net_gen_;
  std::unordered_map<std::uint64_t, WindowMemo> memo_;
  std::deque<std::uint64_t> memo_fifo_;  ///< keys in first-insertion order
  std::size_t memo_bytes_ = 0;
  long memo_evictions_ = 0;
  CacheBackend* backend_ = nullptr;
};

/// Canonical signature of one window solve under `opts`: hashes the window
/// geometry, displacement bounds and pass flags, VM1Params (including
/// per-net beta of every incident net), the MIP/LP configuration, the
/// fault-injection config, the movable cells' ids and placements, the
/// fixed-site mask, and — for every incident net — each pin *not* owned by
/// a movable cell (boundary terminals: position, and span for instance
/// pins). `movable` must be sorted ascending (partition_windows builds it
/// that way).
WindowSig window_signature(const Design& d, const Window& win,
                           const std::vector<int>& movable,
                           const std::vector<int>& incident_nets,
                           const DistOptOptions& opts);

}  // namespace vm1
