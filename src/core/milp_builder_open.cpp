/// OpenM1 pair formulation: overlap interval [a, b], range indicator v_pq,
/// and overlap length o_pq — Eq. (10)-(14) of the paper.
#include <algorithm>
#include <cmath>

#include "core/milp_builder_detail.h"

namespace vm1::detail {

bool add_open_pair(const WindowProblem& prob, BuiltMilp& built,
                   AlignPair& pair, const PinGeom& P, const PinGeom& Q) {
  const double H = static_cast<double>(prob.design->tech().row_height());
  const double y_bound = prob.params.gamma * H;
  const double delta = static_cast<double>(prob.params.delta);
  const double W = static_cast<double>(prob.design->core().hx);

  // Static pruning on y: if the pins can never be within gamma rows the
  // pair can never earn a dM1.
  double min_dy = std::max({0.0, P.y_min - Q.y_max, Q.y_min - P.y_max});
  if (min_dy > y_bound) return false;
  // Static pruning on x: maximum achievable overlap must reach delta.
  double max_overlap =
      std::min(P.xhi_max, Q.xhi_max) - std::max(P.xlo_min, Q.xlo_min);
  if (max_overlap < delta) return false;

  milp::Model& m = built.model;
  pair.d_var = m.add_binary(-prob.params.alpha, "d");
  m.set_branch_priority(pair.d_var, 1);  // big-M rows: branch d first
  pair.a_var = m.add_continuous(0.0, W, 0.0, "a");
  pair.b_var = m.add_continuous(0.0, W, 0.0, "b");
  pair.o_var = m.add_continuous(0.0, W, -prob.params.epsilon, "o");

  LinExpr a_e, b_e, o_e;
  a_e.add(pair.a_var, 1.0);
  b_e.add(pair.b_var, 1.0);
  o_e.add(pair.o_var, 1.0);

  // (11): a >= xlo_p, a >= xlo_q;  b <= xhi_p, b <= xhi_q.
  add_diff_constraint(m, P.xlo, a_e, -1, 0.0, 0.0);
  add_diff_constraint(m, Q.xlo, a_e, -1, 0.0, 0.0);
  add_diff_constraint(m, b_e, P.xhi, -1, 0.0, 0.0);
  add_diff_constraint(m, b_e, Q.xhi, -1, 0.0, 0.0);

  // (12) + (14): v_pq = 1 when |dy| > gamma*H; d + v <= 1. Skipped when the
  // pins are always within range (v statically 0).
  double max_dy = std::max(P.y_max - Q.y_min, Q.y_max - P.y_min);
  if (max_dy > y_bound) {
    pair.v_var = m.add_binary(0.0, "v");
    const double gv = max_dy - y_bound + 1.0;
    LinExpr empty;
    // y_p - y_q - gv * v <= gamma*H  (and symmetric).
    add_diff_constraint(m, P.y, Q.y, pair.v_var, -gv, y_bound);
    add_diff_constraint(m, Q.y, P.y, pair.v_var, -gv, y_bound);
    m.add_constraint({{pair.d_var, 1.0}, {pair.v_var, 1.0}}, lp::Sense::kLe,
                     1.0);
    (void)empty;
  }

  // (13): o <= b - a - delta + G(1-d);  o <= G*d;  o >= 0 (variable bound).
  const double go = W + delta + 1.0;
  // o - b + a + go*d <= go - delta
  m.add_constraint({{pair.o_var, 1.0},
                    {pair.b_var, -1.0},
                    {pair.a_var, 1.0},
                    {pair.d_var, go}},
                   lp::Sense::kLe, go - delta);
  m.add_constraint({{pair.o_var, 1.0}, {pair.d_var, -W}}, lp::Sense::kLe,
                   0.0);
  return true;
}

}  // namespace vm1::detail
