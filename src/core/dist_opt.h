/// \file dist_opt.h
/// DistOpt (Algorithm 2): distributable window-based optimization.
///
/// Partitions the layout into (bw x bh) windows offset by (tx, ty), walks
/// the ~sqrt(|W|) diagonal batches, and inside each batch builds and solves
/// every window's MILP in parallel (both phases run in one pool job per
/// window: windows in a batch are disjoint and the design is read-only
/// until the serial apply phase). Each window's branch-and-bound is
/// warm-started with the current placement, so a window's local objective
/// never degrades.
#pragma once

#include "core/milp_builder.h"
#include "milp/branch_and_bound.h"
#include "util/thread_pool.h"

namespace vm1 {

struct DistOptOptions {
  int bw = 20;  ///< window width in sites
  int bh = 3;   ///< window height in rows
  int tx = 0;   ///< horizontal window offset (sites)
  int ty = 0;   ///< vertical window offset (rows)
  int lx = 4;   ///< max x displacement (sites)
  int ly = 1;   ///< max row displacement
  bool allow_move = true;  ///< f=0 pass: perturb positions
  bool allow_flip = true;  ///< f=1 pass: flip orientations
  VM1Params params;
  milp::BranchAndBound::Options mip;
};

struct DistOptStats {
  int windows = 0;          ///< windows with at least one movable cell
  int windows_solved = 0;   ///< windows whose MILP produced a solution
  int windows_improved = 0; ///< windows whose solution changed placements
  long total_nodes = 0;     ///< branch-and-bound nodes across windows
  long total_lp_iters = 0;  ///< simplex pivots across windows (primal + dual)
  // Warm-start observability, aggregated over window B&B solves
  // (see DESIGN.md "LP/MILP solver internals").
  long dual_pivots = 0;     ///< pivots spent in dual re-optimization
  long warm_solves = 0;     ///< node LPs served from a parent basis
  long cold_restarts = 0;   ///< node LPs that rebuilt the tableau (phase 1)
  long rc_fixed = 0;        ///< binaries fixed by root reduced costs
  double objective = 0;     ///< full-design objective after this DistOpt
  double seconds = 0;
};

/// Runs one DistOpt pass over the whole design. `pool` may be null
/// (sequential solving).
DistOptStats dist_opt(Design& d, const DistOptOptions& opts,
                      ThreadPool* pool);

}  // namespace vm1
