/// \file dist_opt.h
/// DistOpt (Algorithm 2): distributable window-based optimization.
///
/// Partitions the layout into (bw x bh) windows offset by (tx, ty), walks
/// the ~sqrt(|W|) diagonal batches, and inside each batch builds and solves
/// every window's MILP in parallel (both phases run in one pool job per
/// window: windows in a batch are disjoint and the design is read-only
/// until the serial apply phase). Each window's branch-and-bound is
/// warm-started with the current placement, so a window's local objective
/// never degrades.
///
/// Every window outcome is classified (WindowOutcome) and guarded — see
/// DESIGN.md "Window-solve guardrails": solver results are validated and
/// audited before being applied, failed windows degrade through a fallback
/// cascade (MILP -> standalone LP rounding -> window-scoped greedy -> keep
/// current), and an optional pass-level wall-clock budget adapts per-window
/// time limits and cancels the batch cleanly when exhausted.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/milp_builder.h"
#include "milp/branch_and_bound.h"
#include "util/thread_pool.h"

namespace vm1 {

namespace dist {
class Coordinator;  // dist/coordinator.h
}

/// Terminal classification of one window in a DistOpt pass. Every window
/// with at least one movable cell lands in exactly one bucket, so the
/// outcome counters in DistOptStats always sum to `windows` — a pass can
/// degrade, but never lose track of a window.
enum class WindowOutcome {
  kSolved,            ///< MILP solution validated, audited, applied
  kFallbackRounding,  ///< MILP failed; rounded root-LP solution applied
  kFallbackGreedy,    ///< MILP+rounding failed; greedy moves applied
  kRejectedAudit,     ///< solution failed the legality audit; rolled back
  kKept,              ///< nothing applied (no fallback fired, or deadline)
  kFaulted,           ///< build/solve/apply threw; window left untouched
  kSkipped,           ///< clean signature hit; memoized result replayed
  kCachedRemote,      ///< clean solve served by a cache tier (no MILP ran)
};

const char* to_string(WindowOutcome o);

/// Where a batch's window solves execute. Both backends share the window
/// preparation, the serial apply phase, and the incremental memoization,
/// and run the byte-identical solve path (core/window_solve.h) — results
/// are bit-identical; only the execution substrate differs.
enum class DistBackend {
  kThreads,    ///< ThreadPool jobs in this process (the default)
  kProcesses,  ///< worker processes via a dist::Coordinator (src/dist)
};

/// Transport underneath the processes backend (see dist/transport.h):
/// fork/exec'd socketpair children, or TCP workers attaching to the
/// coordinator's listener after the nonce/HMAC handshake (dist/tcp.h).
enum class DistTransport {
  kSocketpair,  ///< single-host fork/exec (the default)
  kTcp,         ///< TCP listener; loopback self-spawn or remote attach
};

class IncrementalState;  // core/incremental.h

/// Fleet-sharing gate for the placement service (src/svc). When a
/// DistOptOptions carries a throttle, the pass brackets every window batch
/// with acquire(windows)/release(): acquire blocks until the scheduler
/// grants this job the shared coordinator (weighted deficit round-robin
/// across tenants), and the gate spans dispatch through sync + stats
/// collection so no two jobs ever touch the non-thread-safe Coordinator
/// concurrently. `windows` is the batch's job count — the cost the
/// fair-share scheduler charges against the tenant's deficit.
class BatchThrottle {
 public:
  virtual ~BatchThrottle() = default;
  virtual void acquire(int windows) = 0;
  virtual void release() = 0;
};

struct DistOptOptions {
  int bw = 20;  ///< window width in sites
  int bh = 3;   ///< window height in rows
  int tx = 0;   ///< horizontal window offset (sites)
  int ty = 0;   ///< vertical window offset (rows)
  int lx = 4;   ///< max x displacement (sites)
  int ly = 1;   ///< max row displacement
  bool allow_move = true;  ///< f=0 pass: perturb positions
  bool allow_flip = true;  ///< f=1 pass: flip orientations
  VM1Params params;
  milp::BranchAndBound::Options mip;

  /// Wall-clock budget for the whole pass; 0 = unlimited. When set, each
  /// window's MIP time limit shrinks adaptively (remaining budget spread
  /// over the windows not yet started, scaled by the worker count) and the
  /// pass cancels cleanly once the budget is gone — remaining windows are
  /// classified kKept. Budgeted passes trade bitwise determinism across
  /// machines/thread counts for a bounded runtime.
  double time_budget_sec = 0;
  /// Floor of the adaptive per-window time limit, so late windows still get
  /// a useful (truncated, warm-started) solve instead of a guaranteed miss.
  double min_window_time_sec = 0.05;
  /// Fallback cascade kill switches (both on in production; tests disable
  /// one to pin down the other's behaviour).
  bool rounding_fallback = true;
  bool greedy_fallback = true;
  /// Optional external cancellation token: set it from another thread to
  /// stop the pass at the next window boundary (same path as the deadline).
  const std::atomic<bool>* cancel = nullptr;
  /// Incremental re-solve engine (see core/incremental.h). When `inc` is
  /// non-null and `incremental` is true, windows whose canonical signature
  /// matches a memo entry recorded while their cells/nets stayed clean are
  /// skipped (classified kSkipped) and the recorded placement delta is
  /// replayed — bit-identical to re-solving. With `incremental` false the
  /// pass must not carry a state (validate() rejects it), so equivalence
  /// tests can run both modes against each other. `inc` must outlive the
  /// pass and be bound to the same design.
  bool incremental = true;
  IncrementalState* inc = nullptr;
  /// Execution backend. kProcesses requires `coordinator` (owned by the
  /// caller, reused across passes so workers and their design replicas
  /// persist); `pool` is ignored in that mode — the parallelism is the
  /// worker processes, and fork safety forbids pool threads anyway.
  DistBackend backend = DistBackend::kThreads;
  dist::Coordinator* coordinator = nullptr;
  /// Fleet sharing (src/svc): when `fleet_token` is nonzero the coordinator
  /// is shared between jobs. The pass then (a) brackets each batch with
  /// `throttle` acquire/release if one is given, (b) re-leases the
  /// coordinator under its token at every batch (cheap when consecutive),
  /// and (c) skips the pass-level begin_pass/end_pass certification — the
  /// lease protocol replaces it, and calling into a shared coordinator
  /// outside the gate would race. Zero (the default) is the exclusive
  /// single-job mode with unchanged behaviour.
  std::uint64_t fleet_token = 0;
  BatchThrottle* throttle = nullptr;

  /// Throws std::invalid_argument on out-of-range fields (non-positive
  /// bw/bh, negative lx/ly or budgets, invalid `mip`, backend/coordinator
  /// mismatch). dist_opt() validates on entry.
  void validate() const;
};

struct DistOptStats {
  int windows = 0;          ///< windows with at least one movable cell
  int windows_solved = 0;   ///< windows whose MILP produced a solution
  int windows_improved = 0; ///< windows whose solution changed placements
  long total_nodes = 0;     ///< branch-and-bound nodes across windows
  long total_lp_iters = 0;  ///< simplex pivots across windows (primal + dual)
  // Warm-start observability, aggregated over window B&B solves
  // (see DESIGN.md "LP/MILP solver internals").
  long dual_pivots = 0;     ///< pivots spent in dual re-optimization
  long warm_solves = 0;     ///< node LPs served from a parent basis
  long cold_restarts = 0;   ///< node LPs that rebuilt the tableau (phase 1)
  long rc_fixed = 0;        ///< binaries fixed by root reduced costs
  // Guardrail outcome taxonomy: one bucket per window, summing to
  // `windows` (see WindowOutcome / DESIGN.md "Window-solve guardrails").
  int solved = 0;            ///< kSolved (includes identity solutions)
  int fallback_rounding = 0; ///< kFallbackRounding
  int fallback_greedy = 0;   ///< kFallbackGreedy
  int rejected_audit = 0;    ///< kRejectedAudit (rolled back)
  int kept = 0;              ///< kKept
  int faulted = 0;           ///< kFaulted (exception; window untouched)
  int skipped = 0;           ///< kSkipped (memoized replay; no MILP built)
  int cached_remote = 0;     ///< kCachedRemote (cache tier served the solve)
  long faults_injected = 0;  ///< fault-injection firings observed (VM1_FAULTS)
  bool deadline_hit = false; ///< pass was cut off by time_budget_sec
  // Incremental-engine observability (zero when no IncrementalState given).
  long signature_hits = 0;   ///< memo lookups that skipped a window
  long signature_misses = 0; ///< memo lookups that had to solve
  long nets_dirtied = 0;     ///< net generation stamps from applied windows
  // Solve-cache observability (zero when no CacheBackend is attached).
  long cache_hits = 0;       ///< tier-2 backend hits replayed without solving
  long cache_stores = 0;     ///< memoized solves written through to tier 2
  long memo_evictions = 0;   ///< tier-1 memo entries evicted (capacity)
  /// Cells whose placement changed in this pass. Counted in both modes
  /// (replays included), so vm1opt's zero-change early exit is
  /// mode-independent.
  int cells_changed = 0;
  // Distributed-backend transport counters (all zero for the threads
  // backend), folded from the coordinator at the end of the pass.
  long remote_requests = 0;  ///< request frames sent (incl. retries)
  long remote_replies = 0;   ///< well-formed worker replies accepted
  long remote_retries = 0;   ///< windows re-queued after a failed attempt
  long remote_timeouts = 0;  ///< per-request deadlines that fired
  long remote_desyncs = 0;   ///< replica desyncs (rebind + retry)
  long remote_local_fallbacks = 0;  ///< windows solved coordinator-side
  long worker_restarts = 0;  ///< workers respawned after dying
  long remote_connect_failures = 0;   ///< failed worker establishes
  long remote_heartbeats_missed = 0;  ///< pings that never saw a pong
  long wire_bytes_sent = 0;      ///< bytes actually handed to the kernel
  long wire_bytes_received = 0;
  long wire_bytes_retransmitted = 0;  ///< sent bytes spent on retries
  long wire_bytes_dropped = 0;   ///< unsent tails of mid-frame failures
  /// Transport drills scheduled for this pass's windows (see
  /// CoordinatorStats::faults_scheduled): timing-invariant, unlike the
  /// per-drill counters above.
  long remote_faults_scheduled = 0;
  // Cache-aware dispatch counters (processes backend only).
  long remote_cache_queries = 0;    ///< signatures probed via kCacheQuery
  long remote_cache_query_hits = 0; ///< probes a worker answered with a hit
  long remote_frames_sent = 0;      ///< frames the coordinator wrote
  long remote_frames_received = 0;  ///< frames the coordinator parsed
  double objective = 0;      ///< full-design objective after this DistOpt
  double seconds = 0;

  /// Sum of the outcome buckets; always equals `windows`.
  int outcome_total() const {
    return solved + fallback_rounding + fallback_greedy + rejected_audit +
           kept + faulted + skipped + cached_remote;
  }
};

/// Runs one DistOpt pass over the whole design. `pool` may be null
/// (sequential solving). Throws std::invalid_argument on invalid options.
DistOptStats dist_opt(Design& d, const DistOptOptions& opts,
                      ThreadPool* pool);

}  // namespace vm1
