#include "core/dist_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/greedy_aligner.h"
#include "core/incremental.h"
#include "core/window.h"
#include "core/window_audit.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace vm1 {

const char* to_string(WindowOutcome o) {
  switch (o) {
    case WindowOutcome::kSolved:
      return "solved";
    case WindowOutcome::kFallbackRounding:
      return "fallback_rounding";
    case WindowOutcome::kFallbackGreedy:
      return "fallback_greedy";
    case WindowOutcome::kRejectedAudit:
      return "rejected_audit";
    case WindowOutcome::kKept:
      return "kept";
    case WindowOutcome::kFaulted:
      return "faulted";
    case WindowOutcome::kSkipped:
      return "skipped";
  }
  return "?";
}

void DistOptOptions::validate() const {
  auto bad = [](const std::string& what) {
    throw std::invalid_argument("DistOptOptions: " + what);
  };
  if (bw <= 0 || bh <= 0) {
    bad("window size bw/bh must be positive, got " + std::to_string(bw) +
        "x" + std::to_string(bh));
  }
  if (lx < 0 || ly < 0) {
    bad("displacement bounds lx/ly must be >= 0, got " + std::to_string(lx) +
        "/" + std::to_string(ly));
  }
  if (time_budget_sec < 0) {
    bad("time_budget_sec must be >= 0, got " +
        std::to_string(time_budget_sec));
  }
  if (min_window_time_sec < 0) {
    bad("min_window_time_sec must be >= 0, got " +
        std::to_string(min_window_time_sec));
  }
  if (!incremental && inc != nullptr) {
    bad("inc state given but incremental mode is disabled");
  }
  mip.validate();
}

namespace {

/// A solver answer is applied only when it is a full, finite, non-degrading
/// solution — anything else (kNoSolution, truncated vector, NaN objective
/// from a numerically sick LP) drops to the fallback cascade.
bool usable_result(const milp::MipResult& r, const milp::Model& model,
                   double warm_obj) {
  if (r.x.size() != static_cast<std::size_t>(model.num_variables())) {
    return false;
  }
  if (!std::isfinite(r.objective)) return false;
  return r.objective <= warm_obj + 1e-9;
}

/// Registry counter for each outcome bucket, e.g. "dist_opt.outcome.solved".
/// The registry is cumulative across passes; DistOptStats stays the per-pass
/// view.
obs::Counter& outcome_counter(WindowOutcome o) {
  static obs::Counter* by_outcome[] = {
      &obs::counter("dist_opt.outcome.solved"),
      &obs::counter("dist_opt.outcome.fallback_rounding"),
      &obs::counter("dist_opt.outcome.fallback_greedy"),
      &obs::counter("dist_opt.outcome.rejected_audit"),
      &obs::counter("dist_opt.outcome.kept"),
      &obs::counter("dist_opt.outcome.faulted"),
      &obs::counter("dist_opt.outcome.skipped"),
  };
  return *by_outcome[static_cast<int>(o)];
}

struct Job {
  int widx = -1;
  std::uint64_t key = 0;       ///< deterministic window key (fault seeding)
  bool ran = false;            ///< run_one invoked (pool cancel can skip it)
  bool skipped = false;        ///< saw cancellation/deadline before solving
  bool failed = false;         ///< build or solve threw
  bool usable = false;         ///< MILP result passed validation
  bool has_fallback = false;   ///< rounding fallback produced a solution
  int faults = 0;              ///< injected faults observed by this job
  std::string error;
  BuiltMilp built;
  std::vector<double> warm;
  double warm_obj = 0;
  milp::MipResult result;
  std::vector<double> fallback_x;
  // Incremental engine: signature computed in the parallel phase; on a
  // clean memo hit the entry is copied here (the table may rehash later)
  // and build/solve are skipped entirely.
  WindowSig sig;
  bool sig_valid = false;
  bool memo_hit = false;
  WindowMemo memo;
};

}  // namespace

DistOptStats dist_opt(Design& d, const DistOptOptions& opts,
                      ThreadPool* pool) {
  opts.validate();
  Timer timer;
  DistOptStats stats;
  const bool fault_on = fault::config().enabled();

  obs::ObsSpan pass_span("dist_opt.pass");
  pass_span.arg("bw", opts.bw).arg("bh", opts.bh);
  static obs::Counter& passes_metric = obs::counter("dist_opt.passes");
  static obs::Histogram& pass_sec_metric = obs::histogram("dist_opt.pass_sec");
  static obs::Histogram& window_solve_sec_metric =
      obs::histogram("dist_opt.window_solve_sec");
  static obs::Gauge& objective_metric = obs::gauge("dist_opt.objective");
  static obs::Counter& skipped_metric =
      obs::counter("dist_opt.windows_skipped");
  static obs::Counter& sig_hits_metric =
      obs::counter("dist_opt.signature_hits");
  static obs::Counter& sig_misses_metric =
      obs::counter("dist_opt.signature_misses");
  passes_metric.add();
  obs::ScopedTimer pass_timer(pass_sec_metric);

  WindowGrid grid = partition_windows(d, opts.tx, opts.ty, opts.bw, opts.bh);
  std::vector<std::vector<int>> batches = diagonal_batches(grid);

  // Incremental engine (see core/incremental.h). The state is owned by the
  // caller (vm1opt or a test) so memo entries and dirty generations persist
  // across passes; without one this pass degenerates to full re-solve.
  IncrementalState* inc = opts.incremental ? opts.inc : nullptr;
  std::vector<std::vector<int>> incident_nets;
  if (inc) {
    inc->bind(d);
    incident_nets = window_incident_nets(grid, d.netlist());
  }

  // Pass-level cancellation token: set by the deadline, by an external
  // opts.cancel, and observed by every window's branch-and-bound.
  std::atomic<bool> cancelled{false};
  std::atomic<bool> deadline_fired{false};

  // Count of windows not yet started, for the adaptive time split.
  long total_jobs = 0;
  for (const std::vector<int>& m : grid.movable) {
    if (!m.empty()) ++total_jobs;
  }
  std::atomic<long> not_started{total_jobs};
  pass_span.arg("windows", total_jobs);
  obs::ProgressReporter progress("dist_opt", total_jobs);

  const double inf = std::numeric_limits<double>::infinity();
  auto budget_remaining = [&]() -> double {
    return opts.time_budget_sec > 0 ? opts.time_budget_sec - timer.seconds()
                                    : inf;
  };
  const unsigned workers = pool ? std::max(1u, pool->size()) : 1u;

  for (const std::vector<int>& batch : batches) {
    std::vector<std::unique_ptr<Job>> jobs;
    for (int widx : batch) {
      if (grid.movable[widx].empty()) continue;
      auto job = std::make_unique<Job>();
      job->widx = widx;
      const Window& w = grid.windows[widx];
      job->key = fault::mix(
          fault::mix(fault::mix(static_cast<std::uint64_t>(w.x0),
                                static_cast<std::uint64_t>(w.row0)),
                     static_cast<std::uint64_t>(w.x1)),
          (static_cast<std::uint64_t>(w.row1) << 2) |
              (opts.allow_move ? 2u : 0u) | (opts.allow_flip ? 1u : 0u));
      jobs.push_back(std::move(job));
    }

    // Build + solve phase (parallel): windows in a batch touch disjoint
    // cells and the design is read-only until the apply phase below, so
    // MILP construction, warm-start extraction, branch-and-bound, and the
    // rounding fallback all run inside the pool job. Fault sites are keyed
    // by the window, not the worker, so schedules are thread-invariant.
    auto run_one = [&](std::size_t j) {
      Job& job = *jobs[j];
      job.ran = true;
      const long left = not_started.fetch_sub(1, std::memory_order_relaxed);
      if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
        cancelled.store(true, std::memory_order_relaxed);
      }
      double remaining = budget_remaining();
      if (remaining <= 0) {
        deadline_fired.store(true, std::memory_order_relaxed);
        cancelled.store(true, std::memory_order_relaxed);
      }
      if (cancelled.load(std::memory_order_relaxed)) {
        job.skipped = true;
        progress.advance();
        return;
      }
      obs::ObsSpan solve_span("dist_opt.window_solve");
      solve_span.arg("window", job.widx);
      obs::ScopedTimer solve_timer(window_solve_sec_metric);
      if (inc) {
        // Parallel-phase memo probe: the design and the incremental state
        // are both read-only until the serial apply phase, so signature
        // computation and the table lookup are race-free. A hit needs a
        // full 128-bit signature match AND untouched cells/nets since the
        // entry was recorded.
        job.sig = window_signature(d, grid.windows[job.widx],
                                   grid.movable[job.widx],
                                   incident_nets[job.widx], opts);
        job.sig_valid = true;
        if (const WindowMemo* m = inc->lookup(job.sig)) {
          if (inc->clean_since(grid.movable[job.widx],
                               incident_nets[job.widx], m->recorded_gen)) {
            job.memo_hit = true;
            job.memo = *m;
            solve_span.arg("window_skip", 1);
            progress.advance();
            return;
          }
        }
      }
      try {
        if (fault_on && fault::should_fire(fault::Site::kBuildThrow, job.key)) {
          ++job.faults;
          throw fault::InjectedFault("injected fault: build_throw");
        }
        WindowProblem wp;
        wp.design = &d;
        wp.window = grid.windows[job.widx];
        wp.movable = grid.movable[job.widx];
        wp.lx = opts.lx;
        wp.ly = opts.ly;
        wp.allow_move = opts.allow_move;
        wp.allow_flip = opts.allow_flip;
        wp.params = opts.params;
        job.built = build_window_milp(wp);
        if (job.built.empty()) {
          progress.advance();
          return;
        }
        solve_span.arg("cells", job.built.cells.size());
        job.warm = job.built.warm_start(d);
        job.warm_obj = job.built.model.objective_value(job.warm);

        milp::BranchAndBound::Options mo = opts.mip;
        mo.cancel = &cancelled;
        if (opts.time_budget_sec > 0) {
          // Adaptive deadline split: share the remaining budget over the
          // windows not yet started; `workers` of them run concurrently, so
          // each may spend about remaining / ceil(left / workers).
          double share = remaining * workers / std::max<long>(1, left);
          share = std::max(share, opts.min_window_time_sec);
          mo.time_limit_sec = std::min(mo.time_limit_sec, share);
          if (mo.lp_options.time_limit_sec <= 0 ||
              mo.lp_options.time_limit_sec > share) {
            mo.lp_options.time_limit_sec = share;
          }
        }
        if (fault_on &&
            fault::should_fire(fault::Site::kLpTimeout, job.key)) {
          ++job.faults;
          mo.time_limit_sec = 0;
          mo.lp_options.time_limit_sec = 1e-9;
        }
        milp::BranchAndBound bnb(mo);
        job.result =
            bnb.solve(job.built.model, job.built.make_heuristic(), &job.warm);
        if (fault_on &&
            fault::should_fire(fault::Site::kNoSolution, job.key)) {
          ++job.faults;
          job.result = milp::MipResult{};
        }
        if (fault_on &&
            fault::should_fire(fault::Site::kNanObjective, job.key)) {
          ++job.faults;
          job.result.objective = std::numeric_limits<double>::quiet_NaN();
        }

        job.usable = usable_result(job.result, job.built.model, job.warm_obj);
        if (!job.usable && opts.rounding_fallback) {
          obs::ObsSpan fb_span("dist_opt.fallback_rounding");
          fb_span.arg("window", job.widx);
          // Standalone rounding: one root LP, rounded by the same repair
          // heuristic the solver uses, accepted only when feasible, finite,
          // and non-degrading — a cheap second chance that needs none of
          // the branch-and-bound machinery that just failed.
          lp::SimplexSolver lp_solver(opts.mip.lp_options);
          lp::Result rel = lp_solver.solve(job.built.model.lp());
          if (rel.status == lp::Status::kOptimal) {
            if (auto hx = job.built.make_heuristic()(job.built.model, rel.x)) {
              double hobj = job.built.model.objective_value(*hx);
              if (std::isfinite(hobj) && hobj <= job.warm_obj + 1e-9 &&
                  job.built.model.is_feasible(*hx, 1e-5)) {
                job.fallback_x = std::move(*hx);
                job.has_fallback = true;
              }
            }
          }
        }
      } catch (const std::exception& e) {
        job.failed = true;
        job.error = e.what();
      }
      progress.advance();
    };
    if (pool && jobs.size() > 1) {
      pool->parallel_for(jobs.size(), run_one, &cancelled);
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j);
    }

    // Apply phase (serial): windows in a batch touch disjoint cells. Every
    // job is classified into exactly one WindowOutcome bucket here. This is
    // also the only phase that mutates the incremental state: changed cells
    // stamp dirty generations, and finished windows are memoized under the
    // signature probed above.
    for (const auto& job : jobs) {
      obs::ObsSpan apply_span("dist_opt.window_apply");
      apply_span.arg("window", job->widx);
      auto classify = [&](WindowOutcome o) {
        outcome_counter(o).add();
        apply_span.arg("outcome", to_string(o));
      };
      stats.faults_injected += job->faults;
      if (inc && job->sig_valid && !job->memo_hit) {
        ++stats.signature_misses;
        sig_misses_metric.add();
      }

      // Counts the placement delta (both modes, so vm1opt's zero-change
      // early exit is mode-independent), stamps dirty generations, and
      // memoizes the outcome when it is a pure function of the signature.
      // Wall-clock-dependent results never enter the table: budgeted
      // passes adapt per-window limits to the remaining time, and genuine
      // (non-injected) failures may not reproduce.
      auto commit = [&](WindowOutcome o, double obj_delta,
                        std::vector<std::pair<int, Placement>> changed,
                        bool empty_build, bool memoizable) {
        stats.cells_changed += static_cast<int>(changed.size());
        if (!inc) return;
        if (!changed.empty()) {
          std::vector<int> insts;
          insts.reserve(changed.size());
          for (const auto& cp : changed) insts.push_back(cp.first);
          stats.nets_dirtied += inc->mark_changed(insts, d.netlist());
        }
        if (!job->sig_valid || job->memo_hit || !memoizable ||
            opts.time_budget_sec > 0) {
          return;
        }
        WindowMemo m;
        m.recorded_gen = inc->generation();
        m.outcome = o;
        m.empty_build = empty_build;
        m.obj_delta = obj_delta;
        m.changed = std::move(changed);
        inc->store(job->sig, m);
      };

      if (job->failed) {
        ++stats.windows;
        ++stats.faulted;
        classify(WindowOutcome::kFaulted);
        log_warn("dist_opt: window ", job->widx,
                 " faulted during build/solve: ", job->error);
        commit(WindowOutcome::kFaulted, 0, {}, false,
               /*memoizable=*/job->faults > 0);
        continue;
      }
      if (!job->ran || job->skipped) {
        // Cancelled before solving (deadline or external token). Never
        // memoized: where the cutoff lands is wall-clock-dependent.
        ++stats.windows;
        ++stats.kept;
        classify(WindowOutcome::kKept);
        continue;
      }
      if (job->memo_hit) {
        // Replay the recorded delta. No audit re-run: the entry was
        // recorded from an audited (or no-op) application of the very same
        // signed inputs, so this is the state a full re-solve would reach.
        ++stats.signature_hits;
        sig_hits_metric.add();
        if (job->memo.empty_build) {
          // Matches the uncounted "empty build" case below.
          apply_span.arg("outcome", "empty");
          apply_span.arg("window_skip", 1);
          continue;
        }
        ++stats.windows;
        ++stats.skipped;
        skipped_metric.add();
        classify(WindowOutcome::kSkipped);
        stats.cells_changed += static_cast<int>(job->memo.changed.size());
        if (!job->memo.changed.empty()) {
          std::vector<int> insts;
          insts.reserve(job->memo.changed.size());
          for (const auto& [inst, pl] : job->memo.changed) {
            d.set_placement(inst, pl);
            insts.push_back(inst);
          }
          stats.nets_dirtied += inc->mark_changed(insts, d.netlist());
        }
        continue;
      }
      if (job->built.empty()) {
        apply_span.arg("outcome", "empty");
        commit(WindowOutcome::kKept, 0, {}, /*empty_build=*/true,
               /*memoizable=*/true);
        continue;
      }
      ++stats.windows;
      stats.total_nodes += job->result.nodes_explored;
      stats.total_lp_iters += job->result.lp_iterations;
      stats.dual_pivots += job->result.dual_pivots;
      stats.warm_solves += job->result.warm_solves;
      stats.cold_restarts += job->result.cold_restarts;
      stats.rc_fixed += job->result.rc_fixed;
      if (!job->result.x.empty()) ++stats.windows_solved;

      const std::vector<double>* sol = nullptr;
      bool rounding = false;
      if (job->usable) {
        sol = &job->result.x;
      } else if (job->has_fallback) {
        sol = &job->fallback_x;
        rounding = true;
      }

      // Snapshot for rollback and for the post-apply placement diff that
      // feeds cells_changed / dirty marking / the memo entry.
      std::vector<Placement> before;
      before.reserve(job->built.cells.size());
      for (int inst : job->built.cells) before.push_back(d.placement(inst));
      WindowOutcome outcome = WindowOutcome::kKept;
      double obj_delta = 0;
      bool memoizable = true;

      if (sol) {
        // Apply and audit; roll back on violation or exception so a bad
        // window can never leak an illegal or degraded placement.
        auto rollback = [&] {
          for (std::size_t k = 0; k < job->built.cells.size(); ++k) {
            d.set_placement(job->built.cells[k], before[k]);
          }
        };
        try {
          job->built.apply(d, *sol);
          if (fault_on &&
              fault::should_fire(fault::Site::kApplyThrow, job->key)) {
            ++stats.faults_injected;
            throw fault::InjectedFault("injected fault: apply_throw");
          }
          WindowAuditResult audit = audit_window_placement(
              d, grid.windows[job->widx], job->built.cells, before, opts.lx,
              opts.ly, opts.allow_move, opts.allow_flip);
          if (!audit.ok) {
            rollback();
            ++stats.rejected_audit;
            outcome = WindowOutcome::kRejectedAudit;
            classify(outcome);
            log_warn("dist_opt: window ", job->widx,
                     " solution rejected by audit: ", audit.violation);
          } else if (rounding) {
            ++stats.fallback_rounding;
            outcome = WindowOutcome::kFallbackRounding;
            classify(outcome);
          } else {
            ++stats.solved;
            outcome = WindowOutcome::kSolved;
            classify(outcome);
            obj_delta = job->warm_obj - job->result.objective;
            if (job->result.objective < job->warm_obj - 1e-9) {
              ++stats.windows_improved;
            }
          }
        } catch (const std::exception& e) {
          rollback();
          ++stats.faulted;
          outcome = WindowOutcome::kFaulted;
          classify(outcome);
          // Injected apply faults are replayable (the schedule is part of
          // the signature); anything else is not provably deterministic.
          memoizable = dynamic_cast<const fault::InjectedFault*>(&e) !=
                       nullptr;
          log_warn("dist_opt: window ", job->widx,
                   " faulted during apply, rolled back: ", e.what());
        }
      } else if (opts.greedy_fallback) {
        // Last resort before keep-current: single-cell greedy moves inside
        // the window, each legality-preserving and objective-improving.
        obs::ObsSpan greedy_span("dist_opt.fallback_greedy");
        greedy_span.arg("window", job->widx);
        GreedyAlignOptions go;
        go.params = opts.params;
        go.lx = opts.lx;
        go.ly = opts.ly;
        go.allow_flip = opts.allow_flip;
        go.max_passes = 1;
        GreedyAlignStats gs =
            greedy_align_window(d, grid.windows[job->widx], job->built.cells,
                                go, opts.allow_move);
        if (gs.moves + gs.flips > 0) {
          ++stats.fallback_greedy;
          outcome = WindowOutcome::kFallbackGreedy;
        } else {
          ++stats.kept;
          outcome = WindowOutcome::kKept;
        }
        classify(outcome);
      } else {
        ++stats.kept;
        outcome = WindowOutcome::kKept;
        classify(outcome);
      }

      std::vector<std::pair<int, Placement>> changed;
      for (std::size_t k = 0; k < job->built.cells.size(); ++k) {
        const Placement& now = d.placement(job->built.cells[k]);
        if (!(now == before[k])) changed.emplace_back(job->built.cells[k], now);
      }
      commit(outcome, obj_delta, std::move(changed), false, memoizable);
    }
  }

  stats.deadline_hit = deadline_fired.load();
  stats.objective = evaluate_objective(d, opts.params).value;
  stats.seconds = timer.seconds();
  objective_metric.set(stats.objective);
  return stats;
}

}  // namespace vm1
