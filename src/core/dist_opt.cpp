#include "core/dist_opt.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/greedy_aligner.h"
#include "core/incremental.h"
#include "core/window.h"
#include "core/window_audit.h"
#include "core/window_solve.h"
#include "dist/coordinator.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace vm1 {

const char* to_string(WindowOutcome o) {
  switch (o) {
    case WindowOutcome::kSolved:
      return "solved";
    case WindowOutcome::kFallbackRounding:
      return "fallback_rounding";
    case WindowOutcome::kFallbackGreedy:
      return "fallback_greedy";
    case WindowOutcome::kRejectedAudit:
      return "rejected_audit";
    case WindowOutcome::kKept:
      return "kept";
    case WindowOutcome::kFaulted:
      return "faulted";
    case WindowOutcome::kSkipped:
      return "skipped";
    case WindowOutcome::kCachedRemote:
      return "cached_remote";
  }
  return "?";
}

void DistOptOptions::validate() const {
  auto bad = [](const std::string& what) {
    throw std::invalid_argument("DistOptOptions: " + what);
  };
  if (bw <= 0 || bh <= 0) {
    bad("window size bw/bh must be positive, got " + std::to_string(bw) +
        "x" + std::to_string(bh));
  }
  if (lx < 0 || ly < 0) {
    bad("displacement bounds lx/ly must be >= 0, got " + std::to_string(lx) +
        "/" + std::to_string(ly));
  }
  if (time_budget_sec < 0) {
    bad("time_budget_sec must be >= 0, got " +
        std::to_string(time_budget_sec));
  }
  if (min_window_time_sec < 0) {
    bad("min_window_time_sec must be >= 0, got " +
        std::to_string(min_window_time_sec));
  }
  if (!incremental && inc != nullptr) {
    bad("inc state given but incremental mode is disabled");
  }
  if (backend == DistBackend::kProcesses && coordinator == nullptr) {
    bad("processes backend requires a coordinator");
  }
  if (backend == DistBackend::kThreads && coordinator != nullptr) {
    bad("coordinator given but backend is threads");
  }
  if (fleet_token != 0 && coordinator == nullptr) {
    bad("fleet_token given but no coordinator to lease");
  }
  if (throttle != nullptr && fleet_token == 0) {
    bad("throttle given without a fleet_token");
  }
  mip.validate();
}

namespace {

/// Registry counter for each outcome bucket, e.g. "dist_opt.outcome.solved".
/// The registry is cumulative across passes; DistOptStats stays the per-pass
/// view.
obs::Counter& outcome_counter(WindowOutcome o) {
  static obs::Counter* by_outcome[] = {
      &obs::counter("dist_opt.outcome.solved"),
      &obs::counter("dist_opt.outcome.fallback_rounding"),
      &obs::counter("dist_opt.outcome.fallback_greedy"),
      &obs::counter("dist_opt.outcome.rejected_audit"),
      &obs::counter("dist_opt.outcome.kept"),
      &obs::counter("dist_opt.outcome.faulted"),
      &obs::counter("dist_opt.outcome.skipped"),
      &obs::counter("dist_opt.outcome.cached_remote"),
  };
  return *by_outcome[static_cast<int>(o)];
}

struct Job {
  WindowSolveJob in;         ///< prepared inputs (core/window_solve.h)
  WindowSolveResult out;     ///< filled by whichever backend solved it
  bool ran = false;          ///< prepare invoked (pool cancel can skip it)
  bool skipped = false;      ///< saw cancellation/deadline before solving
  // Incremental engine: signature computed in the parallel phase; on a
  // clean memo hit the entry is copied here (the table may rehash later)
  // and build/solve are skipped entirely.
  WindowSig sig;
  bool sig_valid = false;
  bool memo_hit = false;
  /// memo_hit came from the tier-2 CacheBackend (persistent store), not
  /// the run-local table: classified kCachedRemote and promoted to tier 1.
  bool from_cache = false;
  /// A worker served this solve from its memo tier (kReplyBatch `cached`
  /// tag or a kCacheQuery hit): classified kCachedRemote instead of
  /// kSolved when the solution applies cleanly.
  bool cached_remote = false;
  WindowMemo memo;
};

}  // namespace

DistOptStats dist_opt(Design& d, const DistOptOptions& opts,
                      ThreadPool* pool) {
  opts.validate();
  Timer timer;
  DistOptStats stats;
  const bool fault_on = fault::config().enabled();
  dist::Coordinator* coord =
      opts.backend == DistBackend::kProcesses ? opts.coordinator : nullptr;

  obs::ObsSpan pass_span("dist_opt.pass");
  pass_span.arg("bw", opts.bw).arg("bh", opts.bh);
  pass_span.arg("backend", coord ? "processes" : "threads");
  static obs::Counter& passes_metric = obs::counter("dist_opt.passes");
  static obs::Histogram& pass_sec_metric = obs::histogram("dist_opt.pass_sec");
  static obs::Histogram& window_solve_sec_metric =
      obs::histogram("dist_opt.window_solve_sec");
  static obs::Gauge& objective_metric = obs::gauge("dist_opt.objective");
  static obs::Counter& skipped_metric =
      obs::counter("dist_opt.windows_skipped");
  static obs::Counter& sig_hits_metric =
      obs::counter("dist_opt.signature_hits");
  static obs::Counter& sig_misses_metric =
      obs::counter("dist_opt.signature_misses");
  passes_metric.add();
  obs::ScopedTimer pass_timer(pass_sec_metric);

  WindowGrid grid = partition_windows(d, opts.tx, opts.ty, opts.bw, opts.bh);
  std::vector<std::vector<int>> batches = diagonal_batches(grid);

  // Incremental engine (see core/incremental.h). The state is owned by the
  // caller (vm1opt or a test) so memo entries and dirty generations persist
  // across passes; without one this pass degenerates to full re-solve.
  // The processes backend needs incident nets regardless: every request
  // carries the canonical window signature as a replica-consistency check.
  IncrementalState* inc = opts.incremental ? opts.inc : nullptr;
  std::vector<std::vector<int>> incident_nets;
  if (inc || coord) incident_nets = window_incident_nets(grid, d.netlist());
  if (inc) inc->bind(d);
  // The incremental state persists across passes; report this pass's
  // eviction delta, not the lifetime total.
  const long memo_evictions_base = inc ? inc->memo_evictions() : 0;
  // Fleet-shared mode (src/svc): the coordinator is multiplexed between
  // jobs, so the pass-level begin_pass/end_pass certification is replaced
  // by per-batch leasing inside the throttle gate — calling it here would
  // race with another job's batch, and its O(design) digest per batch
  // would dominate small batches anyway.
  const bool fleet = coord && opts.fleet_token != 0;
  dist::CoordinatorStats fleet_stats;  // per-batch take_stats, accumulated
  auto accumulate_fleet = [&fleet_stats](const dist::CoordinatorStats& cs) {
    fleet_stats.requests += cs.requests;
    fleet_stats.replies += cs.replies;
    fleet_stats.retries += cs.retries;
    fleet_stats.timeouts += cs.timeouts;
    fleet_stats.desyncs += cs.desyncs;
    fleet_stats.local_fallbacks += cs.local_fallbacks;
    fleet_stats.worker_restarts += cs.worker_restarts;
    fleet_stats.connect_failures += cs.connect_failures;
    fleet_stats.heartbeats_missed += cs.heartbeats_missed;
    fleet_stats.bytes_sent += cs.bytes_sent;
    fleet_stats.bytes_received += cs.bytes_received;
    fleet_stats.bytes_retransmitted += cs.bytes_retransmitted;
    fleet_stats.bytes_dropped += cs.bytes_dropped;
    fleet_stats.faults_scheduled += cs.faults_scheduled;
    fleet_stats.cache_queries += cs.cache_queries;
    fleet_stats.cache_query_hits += cs.cache_query_hits;
    fleet_stats.frames_sent += cs.frames_sent;
    fleet_stats.frames_received += cs.frames_received;
  };
  if (coord && !fleet) coord->begin_pass(d);

  // Pass-level cancellation token: set by the deadline, by an external
  // opts.cancel, and observed by every window's branch-and-bound.
  std::atomic<bool> cancelled{false};
  std::atomic<bool> deadline_fired{false};

  // Count of windows not yet started, for the adaptive time split.
  long total_jobs = 0;
  for (const std::vector<int>& m : grid.movable) {
    if (!m.empty()) ++total_jobs;
  }
  std::atomic<long> not_started{total_jobs};
  pass_span.arg("windows", total_jobs);
  obs::ProgressReporter progress("dist_opt", total_jobs);

  const double inf = std::numeric_limits<double>::infinity();
  auto budget_remaining = [&]() -> double {
    return opts.time_budget_sec > 0 ? opts.time_budget_sec - timer.seconds()
                                    : inf;
  };
  const unsigned workers =
      coord ? std::max(1u, static_cast<unsigned>(coord->num_workers()))
            : (pool ? std::max(1u, pool->size()) : 1u);

  for (const std::vector<int>& batch : batches) {
    std::vector<std::unique_ptr<Job>> jobs;
    for (int widx : batch) {
      if (grid.movable[widx].empty()) continue;
      auto job = std::make_unique<Job>();
      const Window& w = grid.windows[widx];
      job->in.widx = widx;
      job->in.key = fault::mix(
          fault::mix(fault::mix(static_cast<std::uint64_t>(w.x0),
                                static_cast<std::uint64_t>(w.row0)),
                     static_cast<std::uint64_t>(w.x1)),
          (static_cast<std::uint64_t>(w.row1) << 2) |
              (opts.allow_move ? 2u : 0u) | (opts.allow_flip ? 1u : 0u));
      job->in.window = w;
      job->in.movable = grid.movable[widx];
      job->in.lx = opts.lx;
      job->in.ly = opts.ly;
      job->in.allow_move = opts.allow_move;
      job->in.allow_flip = opts.allow_flip;
      job->in.rounding_fallback = opts.rounding_fallback;
      job->in.params = opts.params;
      job->in.mip = opts.mip;
      jobs.push_back(std::move(job));
    }
    if (jobs.empty()) continue;  // nothing to solve, sync, or account

    // Fleet gate: from first dispatch through sync and stats collection
    // the shared coordinator belongs to this job. acquire() blocks until
    // the fair-share scheduler grants the slot; lease() rebinds replicas
    // when another job ran since our last batch.
    struct Gate {
      BatchThrottle* t = nullptr;
      ~Gate() {
        if (t) t->release();
      }
    } gate;
    if (fleet) {
      if (opts.throttle) {
        opts.throttle->acquire(static_cast<int>(jobs.size()));
        gate.t = opts.throttle;
      }
      coord->lease(opts.fleet_token);
    }

    // Shared per-window preparation: cancellation/deadline check, memo
    // probe, and the adaptive time split — everything that must happen
    // before the solve, identical for both backends. Returns false when
    // the window is already settled (skipped or memo hit).
    auto prepare = [&](Job& job) -> bool {
      job.ran = true;
      const long left = not_started.fetch_sub(1, std::memory_order_relaxed);
      if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
        cancelled.store(true, std::memory_order_relaxed);
      }
      double remaining = budget_remaining();
      if (remaining <= 0) {
        deadline_fired.store(true, std::memory_order_relaxed);
        cancelled.store(true, std::memory_order_relaxed);
      }
      if (cancelled.load(std::memory_order_relaxed)) {
        job.skipped = true;
        progress.advance();
        return false;
      }
      if (inc || coord) {
        // Parallel-phase signature: the design and the incremental state
        // are both read-only until the serial apply phase, so signature
        // computation and the table lookup are race-free. A memo hit needs
        // a full 128-bit signature match AND untouched cells/nets since
        // the entry was recorded. The processes backend computes the
        // signature even without an incremental state: it rides along in
        // the request so the worker can prove its replica agrees.
        job.sig = window_signature(d, grid.windows[job.in.widx],
                                   job.in.movable,
                                   incident_nets[job.in.widx], opts);
        job.sig_valid = true;
        if (inc) {
          if (const WindowMemo* m = inc->lookup(job.sig)) {
            if (inc->clean_since(job.in.movable, incident_nets[job.in.widx],
                                 m->recorded_gen)) {
              job.memo_hit = true;
              job.memo = *m;
              progress.advance();
              return false;
            }
          }
          // Tier-2 probe (persistent solve cache). Trusted on the full
          // 128-bit signature alone: backend entries outlive the run, so
          // run-local generation stamps say nothing about them — the
          // signature covers every solve input, which IS the cleanliness
          // proof. The backend is thread-safe; everything else here is
          // read-only until the serial apply phase.
          if (CacheBackend* cb = inc->backend()) {
            if (std::optional<WindowMemo> m = cb->lookup(job.sig)) {
              job.memo_hit = true;
              job.from_cache = true;
              job.memo = std::move(*m);
              progress.advance();
              return false;
            }
          }
        }
      }
      if (opts.time_budget_sec > 0) {
        // Adaptive deadline split: share the remaining budget over the
        // windows not yet started; `workers` of them run concurrently, so
        // each may spend about remaining / ceil(left / workers).
        double share = remaining * workers / std::max<long>(1, left);
        share = std::max(share, opts.min_window_time_sec);
        job.in.mip.time_limit_sec = std::min(job.in.mip.time_limit_sec, share);
        if (job.in.mip.lp_options.time_limit_sec <= 0 ||
            job.in.mip.lp_options.time_limit_sec > share) {
          job.in.mip.lp_options.time_limit_sec = share;
        }
      }
      return true;
    };

    if (coord) {
      // Processes backend: prepare serially (cheap — signatures and memo
      // probes), then hand the whole batch to the coordinator, which
      // dispatches to workers with retry-once-then-local-fallback. Every
      // job's `out` is filled on return.
      std::vector<dist::RemoteJob> remote;
      std::vector<Job*> dispatched;  // parallel to `remote`
      for (const auto& job : jobs) {
        if (!prepare(*job)) continue;
        dist::RemoteJob rj;
        rj.job = &job->in;
        rj.result = &job->out;
        rj.expected_sig = job->sig;
        rj.greedy_fallback = opts.greedy_fallback;
        rj.sig_mip = opts.mip;
        remote.push_back(rj);
        dispatched.push_back(job.get());
      }
      if (!remote.empty()) {
        coord->solve_batch(d, remote, &cancelled);
        for (std::size_t j = 0; j < remote.size(); ++j) {
          dispatched[j]->cached_remote = remote[j].cached;
          progress.advance();
        }
      }
    } else {
      // Threads backend: windows in a batch touch disjoint cells and the
      // design is read-only until the apply phase below, so MILP
      // construction, warm-start extraction, branch-and-bound, and the
      // rounding fallback all run inside the pool job. Fault sites are
      // keyed by the window, not the worker, so schedules are
      // thread-invariant.
      auto run_one = [&](std::size_t j) {
        Job& job = *jobs[j];
        obs::ObsSpan solve_span("dist_opt.window_solve");
        solve_span.arg("window", job.in.widx);
        obs::ScopedTimer solve_timer(window_solve_sec_metric);
        if (!prepare(job)) {
          if (job.memo_hit) solve_span.arg("window_skip", 1);
          return;
        }
        job.out = solve_window(d, job.in, &cancelled);
        if (!job.out.empty_build) {
          solve_span.arg("cells", job.out.cells.size());
        }
        progress.advance();
      };
      if (pool && jobs.size() > 1) {
        pool->parallel_for(jobs.size(), run_one, &cancelled);
      } else {
        for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j);
      }
    }

    // Placement deltas committed by this batch, broadcast to the worker
    // replicas afterwards (processes backend only).
    std::vector<std::pair<int, Placement>> batch_changed;

    // Apply phase (serial): windows in a batch touch disjoint cells. Every
    // job is classified into exactly one WindowOutcome bucket here. This is
    // also the only phase that mutates the incremental state: changed cells
    // stamp dirty generations, and finished windows are memoized under the
    // signature probed above.
    for (const auto& job : jobs) {
      obs::ObsSpan apply_span("dist_opt.window_apply");
      apply_span.arg("window", job->in.widx);
      auto classify = [&](WindowOutcome o) {
        outcome_counter(o).add();
        apply_span.arg("outcome", to_string(o));
      };
      stats.faults_injected += job->out.faults;
      if (inc && job->sig_valid && !job->memo_hit) {
        ++stats.signature_misses;
        sig_misses_metric.add();
      }

      // Counts the placement delta (both modes, so vm1opt's zero-change
      // early exit is mode-independent), stamps dirty generations, and
      // memoizes the outcome when it is a pure function of the signature.
      // Wall-clock-dependent results never enter the table: budgeted
      // passes adapt per-window limits to the remaining time, and genuine
      // (non-injected) failures may not reproduce.
      auto commit = [&](WindowOutcome o, double obj_delta,
                        std::vector<std::pair<int, Placement>> changed,
                        bool empty_build, bool memoizable) {
        stats.cells_changed += static_cast<int>(changed.size());
        if (coord) {
          batch_changed.insert(batch_changed.end(), changed.begin(),
                               changed.end());
        }
        if (!inc) return;
        if (!changed.empty()) {
          std::vector<int> insts;
          insts.reserve(changed.size());
          for (const auto& cp : changed) insts.push_back(cp.first);
          stats.nets_dirtied += inc->mark_changed(insts, d.netlist());
        }
        if (!job->sig_valid || job->memo_hit || !memoizable ||
            opts.time_budget_sec > 0) {
          return;
        }
        WindowMemo m;
        m.sig2 = job->sig.b;  // collision guard; persisted, unlike gen
        m.recorded_gen = inc->generation();
        // A remote-cache-served solve memoizes as the outcome a fresh
        // solve would have produced: kCachedRemote only describes *how*
        // this run obtained it.
        m.outcome = o == WindowOutcome::kCachedRemote ? WindowOutcome::kSolved
                                                      : o;
        m.empty_build = empty_build;
        m.obj_delta = obj_delta;
        m.changed = std::move(changed);
        // Write-through to the persistent tier under the same guard: only
        // signature-pure results ever reach the backend.
        if (CacheBackend* cb = inc->backend()) {
          cb->store(job->sig, m);
          ++stats.cache_stores;
        }
        inc->store(job->sig, std::move(m));
      };

      if (job->out.failed) {
        ++stats.windows;
        ++stats.faulted;
        classify(WindowOutcome::kFaulted);
        log_warn("dist_opt: window ", job->in.widx,
                 " faulted during build/solve: ", job->out.error);
        commit(WindowOutcome::kFaulted, 0, {}, false,
               /*memoizable=*/job->out.faults > 0);
        continue;
      }
      if (!job->ran || job->skipped) {
        // Cancelled before solving (deadline or external token). Never
        // memoized: where the cutoff lands is wall-clock-dependent.
        ++stats.windows;
        ++stats.kept;
        classify(WindowOutcome::kKept);
        continue;
      }
      if (job->memo_hit) {
        // Replay the recorded delta. No audit re-run: the entry was
        // recorded from an audited (or no-op) application of the very same
        // signed inputs, so this is the state a full re-solve would reach.
        if (job->from_cache) {
          ++stats.cache_hits;
        } else {
          ++stats.signature_hits;
          sig_hits_metric.add();
        }
        // Promote a tier-2 hit into the run-local table so later passes
        // take the cheap tier-1 path. Stamped with the current generation
        // (matching commit(): the entry describes the state this apply
        // phase establishes).
        auto promote = [&] {
          if (!job->from_cache) return;
          WindowMemo m = job->memo;
          m.recorded_gen = inc->generation();
          inc->store(job->sig, std::move(m));
        };
        if (job->memo.empty_build) {
          // Matches the uncounted "empty build" case below.
          apply_span.arg("outcome", "empty");
          apply_span.arg("window_skip", 1);
          promote();
          continue;
        }
        ++stats.windows;
        if (job->from_cache) {
          ++stats.cached_remote;
          classify(WindowOutcome::kCachedRemote);
        } else {
          ++stats.skipped;
          skipped_metric.add();
          classify(WindowOutcome::kSkipped);
        }
        stats.cells_changed += static_cast<int>(job->memo.changed.size());
        if (coord) {
          batch_changed.insert(batch_changed.end(), job->memo.changed.begin(),
                               job->memo.changed.end());
        }
        if (!job->memo.changed.empty()) {
          std::vector<int> insts;
          insts.reserve(job->memo.changed.size());
          for (const auto& [inst, pl] : job->memo.changed) {
            d.set_placement(inst, pl);
            insts.push_back(inst);
          }
          stats.nets_dirtied += inc->mark_changed(insts, d.netlist());
        }
        promote();
        continue;
      }
      if (job->out.empty_build) {
        apply_span.arg("outcome", "empty");
        commit(WindowOutcome::kKept, 0, {}, /*empty_build=*/true,
               /*memoizable=*/true);
        continue;
      }
      ++stats.windows;
      stats.total_nodes += job->out.nodes;
      stats.total_lp_iters += job->out.lp_iterations;
      stats.dual_pivots += job->out.dual_pivots;
      stats.warm_solves += job->out.warm_solves;
      stats.cold_restarts += job->out.cold_restarts;
      stats.rc_fixed += job->out.rc_fixed;
      if (job->out.has_solution) ++stats.windows_solved;

      const std::vector<Placement>* sol = nullptr;
      bool rounding = false;
      if (job->out.usable) {
        sol = &job->out.placements;
      } else if (job->out.has_fallback) {
        sol = &job->out.placements;
        rounding = true;
      }

      // Snapshot for rollback and for the post-apply placement diff that
      // feeds cells_changed / dirty marking / the memo entry.
      std::vector<Placement> before;
      before.reserve(job->out.cells.size());
      for (int inst : job->out.cells) before.push_back(d.placement(inst));
      WindowOutcome outcome = WindowOutcome::kKept;
      double obj_delta = 0;
      bool memoizable = true;

      if (sol) {
        // Apply and audit; roll back on violation or exception so a bad
        // window can never leak an illegal or degraded placement.
        auto rollback = [&] {
          for (std::size_t k = 0; k < job->out.cells.size(); ++k) {
            d.set_placement(job->out.cells[k], before[k]);
          }
        };
        try {
          for (std::size_t k = 0; k < job->out.cells.size(); ++k) {
            d.set_placement(job->out.cells[k], (*sol)[k]);
          }
          if (fault_on &&
              fault::should_fire(fault::Site::kApplyThrow, job->in.key)) {
            ++stats.faults_injected;
            throw fault::InjectedFault("injected fault: apply_throw");
          }
          WindowAuditResult audit = audit_window_placement(
              d, grid.windows[job->in.widx], job->out.cells, before, opts.lx,
              opts.ly, opts.allow_move, opts.allow_flip);
          if (!audit.ok) {
            rollback();
            ++stats.rejected_audit;
            outcome = WindowOutcome::kRejectedAudit;
            classify(outcome);
            log_warn("dist_opt: window ", job->in.widx,
                     " solution rejected by audit: ", audit.violation);
          } else if (rounding) {
            ++stats.fallback_rounding;
            outcome = WindowOutcome::kFallbackRounding;
            classify(outcome);
          } else {
            // A worker-cache-served solution that applied and audited
            // cleanly classifies kCachedRemote; fallback-path results keep
            // their natural buckets above even when cached (the bucket
            // describes what the result IS, the cached tag only how the
            // solved case was obtained).
            if (job->cached_remote) {
              ++stats.cached_remote;
              outcome = WindowOutcome::kCachedRemote;
            } else {
              ++stats.solved;
              outcome = WindowOutcome::kSolved;
            }
            classify(outcome);
            obj_delta = job->out.warm_obj - job->out.objective;
            if (job->out.objective < job->out.warm_obj - 1e-9) {
              ++stats.windows_improved;
            }
          }
        } catch (const std::exception& e) {
          rollback();
          ++stats.faulted;
          outcome = WindowOutcome::kFaulted;
          classify(outcome);
          // Injected apply faults are replayable (the schedule is part of
          // the signature); anything else is not provably deterministic.
          memoizable = dynamic_cast<const fault::InjectedFault*>(&e) !=
                       nullptr;
          log_warn("dist_opt: window ", job->in.widx,
                   " faulted during apply, rolled back: ", e.what());
        }
      } else if (opts.greedy_fallback) {
        // Last resort before keep-current: single-cell greedy moves inside
        // the window, each legality-preserving and objective-improving.
        obs::ObsSpan greedy_span("dist_opt.fallback_greedy");
        greedy_span.arg("window", job->in.widx);
        GreedyAlignOptions go;
        go.params = opts.params;
        go.lx = opts.lx;
        go.ly = opts.ly;
        go.allow_flip = opts.allow_flip;
        go.max_passes = 1;
        GreedyAlignStats gs =
            greedy_align_window(d, grid.windows[job->in.widx],
                                job->out.cells, go, opts.allow_move);
        if (gs.moves + gs.flips > 0) {
          ++stats.fallback_greedy;
          outcome = WindowOutcome::kFallbackGreedy;
        } else {
          ++stats.kept;
          outcome = WindowOutcome::kKept;
        }
        classify(outcome);
      } else {
        ++stats.kept;
        outcome = WindowOutcome::kKept;
        classify(outcome);
      }

      std::vector<std::pair<int, Placement>> changed;
      for (std::size_t k = 0; k < job->out.cells.size(); ++k) {
        const Placement& now = d.placement(job->out.cells[k]);
        if (!(now == before[k])) {
          changed.emplace_back(job->out.cells[k], now);
        }
      }
      commit(outcome, obj_delta, std::move(changed), false, memoizable);
    }

    if (coord) coord->sync(batch_changed);
    if (fleet) accumulate_fleet(coord->take_stats());
  }

  if (coord) {
    dist::CoordinatorStats cs;
    if (fleet) {
      cs = fleet_stats;
    } else {
      coord->end_pass(d);
      cs = coord->take_stats();
    }
    stats.remote_requests = cs.requests;
    stats.remote_replies = cs.replies;
    stats.remote_retries = cs.retries;
    stats.remote_timeouts = cs.timeouts;
    stats.remote_desyncs = cs.desyncs;
    stats.remote_local_fallbacks = cs.local_fallbacks;
    stats.worker_restarts = cs.worker_restarts;
    stats.remote_connect_failures = cs.connect_failures;
    stats.remote_heartbeats_missed = cs.heartbeats_missed;
    stats.wire_bytes_sent = cs.bytes_sent;
    stats.wire_bytes_received = cs.bytes_received;
    stats.wire_bytes_retransmitted = cs.bytes_retransmitted;
    stats.wire_bytes_dropped = cs.bytes_dropped;
    stats.remote_faults_scheduled = cs.faults_scheduled;
    stats.remote_cache_queries = cs.cache_queries;
    stats.remote_cache_query_hits = cs.cache_query_hits;
    stats.remote_frames_sent = cs.frames_sent;
    stats.remote_frames_received = cs.frames_received;
  }

  if (inc) {
    static obs::Counter& memo_evict_metric =
        obs::counter("dist_opt.memo_evictions");
    stats.memo_evictions = inc->memo_evictions() - memo_evictions_base;
    memo_evict_metric.add(stats.memo_evictions);
  }

  stats.deadline_hit = deadline_fired.load();
  stats.objective = evaluate_objective(d, opts.params).value;
  stats.seconds = timer.seconds();
  objective_metric.set(stats.objective);
  return stats;
}

}  // namespace vm1
