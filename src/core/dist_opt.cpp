#include "core/dist_opt.h"

#include <memory>

#include "core/window.h"
#include "util/logging.h"

namespace vm1 {

DistOptStats dist_opt(Design& d, const DistOptOptions& opts,
                      ThreadPool* pool) {
  Timer timer;
  DistOptStats stats;

  WindowGrid grid = partition_windows(d, opts.tx, opts.ty, opts.bw, opts.bh);
  std::vector<std::vector<int>> batches = diagonal_batches(grid);

  for (const std::vector<int>& batch : batches) {
    struct Job {
      int widx;
      BuiltMilp built;
      std::vector<double> warm;
      milp::MipResult result;
    };
    std::vector<std::unique_ptr<Job>> jobs;
    for (int widx : batch) {
      if (grid.movable[widx].empty()) continue;
      auto job = std::make_unique<Job>();
      job->widx = widx;
      jobs.push_back(std::move(job));
    }

    // Build + solve phase (parallel): windows in a batch touch disjoint
    // cells and the design is read-only until the apply phase below, so
    // MILP construction, warm-start extraction, and branch-and-bound all
    // run inside the pool job.
    auto run_one = [&](std::size_t j) {
      Job& job = *jobs[j];
      WindowProblem wp;
      wp.design = &d;
      wp.window = grid.windows[job.widx];
      wp.movable = grid.movable[job.widx];
      wp.lx = opts.lx;
      wp.ly = opts.ly;
      wp.allow_move = opts.allow_move;
      wp.allow_flip = opts.allow_flip;
      wp.params = opts.params;
      job.built = build_window_milp(wp);
      if (job.built.empty()) return;
      job.warm = job.built.warm_start(d);
      milp::BranchAndBound bnb(opts.mip);
      job.result =
          bnb.solve(job.built.model, job.built.make_heuristic(), &job.warm);
    };
    if (pool && jobs.size() > 1) {
      pool->parallel_for(jobs.size(), run_one);
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j);
    }

    // Apply phase (serial): windows in a batch touch disjoint cells.
    for (const auto& job : jobs) {
      if (job->built.empty()) continue;
      ++stats.windows;
      stats.total_nodes += job->result.nodes_explored;
      stats.total_lp_iters += job->result.lp_iterations;
      stats.dual_pivots += job->result.dual_pivots;
      stats.warm_solves += job->result.warm_solves;
      stats.cold_restarts += job->result.cold_restarts;
      stats.rc_fixed += job->result.rc_fixed;
      if (job->result.x.empty()) continue;
      ++stats.windows_solved;
      double warm_obj = job->built.model.objective_value(job->warm);
      if (job->result.objective < warm_obj - 1e-9) {
        ++stats.windows_improved;
      }
      job->built.apply(d, job->result.x);
    }
  }

  stats.objective = evaluate_objective(d, opts.params).value;
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace vm1
