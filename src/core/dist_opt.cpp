#include "core/dist_opt.h"

#include <atomic>
#include <memory>

#include "core/window.h"
#include "util/logging.h"

namespace vm1 {

DistOptStats dist_opt(Design& d, const DistOptOptions& opts,
                      ThreadPool* pool) {
  Timer timer;
  DistOptStats stats;

  WindowGrid grid = partition_windows(d, opts.tx, opts.ty, opts.bw, opts.bh);
  std::vector<std::vector<int>> batches = diagonal_batches(grid);

  for (const std::vector<int>& batch : batches) {
    // Build phase (serial): snapshot-consistent MILPs for this batch.
    struct Job {
      BuiltMilp built;
      std::vector<double> warm;
      milp::MipResult result;
    };
    std::vector<std::unique_ptr<Job>> jobs;
    for (int widx : batch) {
      if (grid.movable[widx].empty()) continue;
      WindowProblem wp;
      wp.design = &d;
      wp.window = grid.windows[widx];
      wp.movable = grid.movable[widx];
      wp.lx = opts.lx;
      wp.ly = opts.ly;
      wp.allow_move = opts.allow_move;
      wp.allow_flip = opts.allow_flip;
      wp.params = opts.params;
      auto job = std::make_unique<Job>();
      job->built = build_window_milp(wp);
      if (job->built.empty()) continue;
      job->warm = job->built.warm_start(d);
      jobs.push_back(std::move(job));
      ++stats.windows;
    }

    // Solve phase (parallel): models are self-contained; the design is
    // read-only until the apply phase below.
    auto solve_one = [&](std::size_t j) {
      Job& job = *jobs[j];
      milp::BranchAndBound bnb(opts.mip);
      job.result =
          bnb.solve(job.built.model, job.built.make_heuristic(), &job.warm);
    };
    if (pool && jobs.size() > 1) {
      pool->parallel_for(jobs.size(), solve_one);
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) solve_one(j);
    }

    // Apply phase (serial): windows in a batch touch disjoint cells.
    for (const auto& job : jobs) {
      stats.total_nodes += job->result.nodes_explored;
      stats.total_lp_iters += job->result.lp_iterations;
      if (job->result.x.empty()) continue;
      ++stats.windows_solved;
      double warm_obj = job->built.model.objective_value(job->warm);
      if (job->result.objective < warm_obj - 1e-9) {
        ++stats.windows_improved;
      }
      job->built.apply(d, job->result.x);
    }
  }

  stats.objective = evaluate_objective(d, opts.params).value;
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace vm1
