/// \file window.h
/// Layout partitioning into windows and diagonal batch selection
/// (Section 4.1 of the paper).
///
/// Windows tile the core on a (bw x bh) grid offset by (tx, ty). A cell is
/// *movable* in a window when its footprint lies fully inside; boundary-
/// straddling cells stay fixed and are captured by shifting (tx, ty) in a
/// later outer iteration. Batches group windows whose x- and y-projections
/// are pairwise disjoint (wrapped diagonals), so per-window HPWL deltas add
/// up exactly (Figure 4(b)) and the batch can be solved in parallel;
/// there are max(grid_x, grid_y) ~ sqrt(|W|) batches.
#pragma once

#include <vector>

#include "core/candidates.h"

namespace vm1 {

struct WindowGrid {
  std::vector<Window> windows;
  std::vector<std::vector<int>> movable;  ///< per window: movable insts
  int grid_x = 0;  ///< number of window columns
  int grid_y = 0;  ///< number of window rows
};

/// Partitions the core into bw-site x bh-row windows with offset (tx, ty)
/// (in sites / rows), assigning each instance to the window that fully
/// contains it.
WindowGrid partition_windows(const Design& d, int tx, int ty, int bw,
                             int bh);

/// Returns batches of window indices with pairwise-disjoint x and y
/// projections covering every window exactly once.
std::vector<std::vector<int>> diagonal_batches(const WindowGrid& grid);

/// Per window: sorted, de-duplicated nets incident to any movable cell.
/// This is the dirtiness footprint used by the incremental engine — a
/// window must be re-solved when any of these nets was touched by another
/// window's accepted solution (including diagonal-batch neighbors).
std::vector<std::vector<int>> window_incident_nets(const WindowGrid& grid,
                                                   const Netlist& nl);

}  // namespace vm1
