/// \file flow.h
/// End-to-end reference flow: generate -> place -> route -> VM1Opt ->
/// re-route -> report. This is the programmatic equivalent of the paper's
/// commercial-tool flow (Design Compiler + Innovus) around the optimizer.
#pragma once

#include <optional>

#include "core/vm1opt.h"
#include "design/design.h"
#include "place/detailed_placer.h"
#include "place/global_placer.h"
#include "place/legalizer.h"
#include "route/router.h"
#include "timing/power.h"
#include "timing/sta.h"

namespace vm1 {

struct FlowOptions {
  std::string design_name = "aes";
  CellArch arch = CellArch::kClosedM1;
  DesignOptions design;
  GlobalPlaceOptions gp;
  DetailedPlaceOptions dp;
  RouterOptions router;
  VM1OptOptions vm1;
  bool run_vm1 = true;  ///< false = baseline flow only
  /// Run one alpha=0 (pure wirelength) window-MILP pass as part of the
  /// *baseline* placement. This emulates a commercial-strength detailed
  /// placer, so that subsequent alpha>0 runs measure the alignment/HPWL
  /// trade-off rather than leftover wirelength slack. Used by the
  /// alpha-sensitivity study (Figure 6).
  bool polish_baseline = false;
};

/// Snapshot of the quality metrics at one point of the flow.
struct QoR {
  Coord hpwl = 0;
  RouteMetrics route;
  StaResult sta;
  PowerResult power;
  ObjectiveBreakdown objective;
};

struct FlowResult {
  QoR init;   ///< after initial place & route
  QoR final;  ///< after VM1Opt + re-route (== init when run_vm1 is false)
  VM1OptStats opt;
  double place_seconds = 0;
};

/// Builds the design and runs initial placement + routing.
/// The returned Design is ready for vm1opt().
Design prepare_design(const FlowOptions& opts, double* place_seconds);

/// Measures HPWL / routing / timing / power at the current placement.
QoR measure(const Design& d, const RouterOptions& ropts,
            const VM1Params& params, double clock_period = 0);

/// Full flow. The design is constructed internally; pass `out_design` to
/// keep the optimized design for further experiments.
FlowResult run_flow(const FlowOptions& opts,
                    std::optional<Design>* out_design = nullptr);

}  // namespace vm1
