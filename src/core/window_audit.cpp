#include "core/window_audit.h"

#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vm1 {

namespace {

std::string describe(const Design& d, int inst, const Placement& p) {
  std::ostringstream os;
  os << "inst " << inst << " (" << d.netlist().cell_of(inst).name << ") at x="
     << p.x << " row=" << p.row << (p.flipped ? " flipped" : "");
  return os.str();
}

}  // namespace

WindowAuditResult audit_window_placement(
    const Design& d, const Window& win, const std::vector<int>& insts,
    const std::vector<Placement>& before, int lx, int ly, bool allow_move,
    bool allow_flip) {
  static obs::Counter& calls_metric = obs::counter("audit.calls");
  static obs::Counter& rejects_metric = obs::counter("audit.rejects");
  static obs::Histogram& audit_sec_metric = obs::histogram("audit.sec");
  calls_metric.add();
  obs::ObsSpan span("dist_opt.window_audit");
  span.arg("cells", insts.size());
  obs::ScopedTimer audit_timer(audit_sec_metric);

  WindowAuditResult res;
  auto fail = [&res, &span](std::string why) {
    rejects_metric.add();
    span.arg("rejected", 1);
    res.ok = false;
    res.violation = std::move(why);
    return res;
  };

  const Netlist& nl = d.netlist();
  // Occupancy of the window region: fixed cells first, then each audited
  // cell claims its run of sites.
  std::vector<std::vector<bool>> used = fixed_site_mask(d, win, insts);

  for (std::size_t k = 0; k < insts.size(); ++k) {
    const int inst = insts[k];
    const Placement& p = d.placement(inst);
    const Placement& b = before[k];
    const int w = nl.cell_of(inst).width_sites;

    if (!win.contains_footprint(p.x, p.row, w)) {
      return fail(describe(d, inst, p) + ": footprint escapes window [" +
                  std::to_string(win.x0) + "," + std::to_string(win.x1) +
                  ") rows " + std::to_string(win.row0) + ".." +
                  std::to_string(win.row1));
    }
    const int dx = std::abs(p.x - b.x);
    const int dr = std::abs(p.row - b.row);
    if (!allow_move && (dx != 0 || dr != 0)) {
      return fail(describe(d, inst, p) + ": moved in a flip-only pass");
    }
    if (dx > lx || dr > ly) {
      return fail(describe(d, inst, p) + ": displacement (" +
                  std::to_string(dx) + "," + std::to_string(dr) +
                  ") exceeds bounds (" + std::to_string(lx) + "," +
                  std::to_string(ly) + ")");
    }
    if (!allow_flip && p.flipped != b.flipped) {
      return fail(describe(d, inst, p) + ": flipped in a move-only pass");
    }
    std::vector<bool>& row_used = used[static_cast<std::size_t>(p.row - win.row0)];
    for (int s = p.x; s < p.x + w; ++s) {
      if (row_used[static_cast<std::size_t>(s - win.x0)]) {
        return fail(describe(d, inst, p) + ": overlaps at site " +
                    std::to_string(s) + " row " + std::to_string(p.row));
      }
      row_used[static_cast<std::size_t>(s - win.x0)] = true;
    }
  }
  return res;
}

}  // namespace vm1
