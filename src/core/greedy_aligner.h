/// \file greedy_aligner.h
/// Greedy baseline for vertical-M1-aware detailed placement.
///
/// The paper argues that alignment requires *joint* optimization over a
/// window (MILP), because aligning one pair perturbs neighbours and nets
/// interact. This module implements the natural greedy alternative — visit
/// alignment opportunities in order of cheapest HPWL cost and realize each
/// by sliding/flipping a single cell if the sites are free — so benches can
/// quantify the MILP's advantage (see bench_ablation).
#pragma once

#include "core/milp_builder.h"

namespace vm1 {

struct GreedyAlignOptions {
  VM1Params params;
  int lx = 4;  ///< max slide distance (sites)
  int ly = 0;  ///< greedy moves stay in-row (row moves need legalization
               ///< context a single-cell greedy cannot see)
  bool allow_flip = true;
  int max_passes = 3;
};

struct GreedyAlignStats {
  int moves = 0;
  int flips = 0;
  long alignments_before = 0;
  long alignments_after = 0;
  double hpwl_before = 0;
  double hpwl_after = 0;
  double seconds = 0;
};

/// Runs the greedy alignment heuristic in place. Preserves legality.
/// Accepts a move/flip only when the local objective
/// (beta * dHPWL - alpha * d#alignments [- epsilon * d_overlap]) improves.
GreedyAlignStats greedy_align(Design& d, const GreedyAlignOptions& opts);

/// Window-scoped variant used as the DistOpt fallback when a window's MILP
/// path fails (see DESIGN.md "Window-solve guardrails"): only `insts` may
/// move, footprints stay inside `win`, and displacement is bounded by
/// (lx, ly) from each cell's placement at entry — the same contract the
/// window audit enforces on MILP solutions. With allow_move false only
/// flips are tried (the f=1 pass). Only the moves/flips/seconds fields of
/// the returned stats are populated; the full-design objective breakdown is
/// skipped because this runs once per failed window.
GreedyAlignStats greedy_align_window(Design& d, const Window& win,
                                     const std::vector<int>& insts,
                                     const GreedyAlignOptions& opts,
                                     bool allow_move = true);

}  // namespace vm1
