#include "core/window.h"

#include <algorithm>

namespace vm1 {

WindowGrid partition_windows(const Design& d, int tx, int ty, int bw,
                             int bh) {
  WindowGrid grid;
  const int sites = d.sites_per_row();
  const int rows = d.num_rows();
  bw = std::max(1, bw);
  bh = std::max(1, bh);
  // Normalize offsets into [-(bw-1), 0] so window 0 starts at or before 0.
  tx = -(((tx % bw) + bw) % bw);
  ty = -(((ty % bh) + bh) % bh);

  grid.grid_x = (sites - tx + bw - 1) / bw;
  grid.grid_y = (rows - ty + bh - 1) / bh;

  for (int wy = 0; wy < grid.grid_y; ++wy) {
    for (int wx = 0; wx < grid.grid_x; ++wx) {
      Window w;
      w.x0 = std::max(0, tx + wx * bw);
      w.x1 = std::min(sites, tx + (wx + 1) * bw);
      w.row0 = std::max(0, ty + wy * bh);
      w.row1 = std::min(rows - 1, ty + (wy + 1) * bh - 1);
      grid.windows.push_back(w);
    }
  }
  grid.movable.resize(grid.windows.size());

  const Netlist& nl = d.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    const Cell& c = nl.cell_of(i);
    if (c.filler) continue;
    int wx = (p.x - tx) / bw;
    int wy = (p.row - ty) / bh;
    if (wx < 0 || wx >= grid.grid_x || wy < 0 || wy >= grid.grid_y) continue;
    std::size_t idx = static_cast<std::size_t>(wy) * grid.grid_x + wx;
    if (grid.windows[idx].contains_footprint(p.x, p.row, c.width_sites)) {
      grid.movable[idx].push_back(i);
    }
  }
  return grid;
}

std::vector<std::vector<int>> diagonal_batches(const WindowGrid& grid) {
  std::vector<std::vector<int>> batches;
  const int gx = grid.grid_x;
  const int gy = grid.grid_y;
  if (gx <= 0 || gy <= 0) return batches;

  // Wrapped diagonals over the larger dimension: every batch takes at most
  // one window per column and one per row.
  if (gx <= gy) {
    batches.resize(gy);
    for (int k = 0; k < gy; ++k) {
      for (int i = 0; i < gx; ++i) {
        int wy = (i + k) % gy;
        batches[k].push_back(wy * gx + i);
      }
    }
  } else {
    batches.resize(gx);
    for (int k = 0; k < gx; ++k) {
      for (int j = 0; j < gy; ++j) {
        int wx = (j + k) % gx;
        batches[k].push_back(j * gx + wx);
      }
    }
  }
  return batches;
}

std::vector<std::vector<int>> window_incident_nets(const WindowGrid& grid,
                                                   const Netlist& nl) {
  std::vector<std::vector<int>> incident(grid.windows.size());
  for (std::size_t w = 0; w < grid.windows.size(); ++w) {
    std::vector<int>& nets = incident[w];
    for (int inst : grid.movable[w]) {
      const std::vector<int>& in = nl.nets_of(inst);
      nets.insert(nets.end(), in.begin(), in.end());
    }
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }
  return incident;
}

}  // namespace vm1
