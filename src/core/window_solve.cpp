#include "core/window_solve.h"

#include <cmath>
#include <limits>

#include "lp/simplex.h"
#include "obs/trace.h"
#include "util/fault_injection.h"

namespace vm1 {

bool usable_result(const milp::MipResult& r, const milp::Model& model,
                   double warm_obj) {
  if (r.x.size() != static_cast<std::size_t>(model.num_variables())) {
    return false;
  }
  if (!std::isfinite(r.objective)) return false;
  return r.objective <= warm_obj + 1e-9;
}

WindowSolveResult solve_window(const Design& d, const WindowSolveJob& job,
                               const std::atomic<bool>* cancel) {
  WindowSolveResult res;
  const bool fault_on = fault::config().enabled();
  try {
    if (fault_on && fault::should_fire(fault::Site::kBuildThrow, job.key)) {
      ++res.faults;
      throw fault::InjectedFault("injected fault: build_throw");
    }
    WindowProblem wp;
    wp.design = &d;
    wp.window = job.window;
    wp.movable = job.movable;
    wp.lx = job.lx;
    wp.ly = job.ly;
    wp.allow_move = job.allow_move;
    wp.allow_flip = job.allow_flip;
    wp.params = job.params;
    BuiltMilp built = build_window_milp(wp);
    if (built.empty()) {
      res.empty_build = true;
      return res;
    }
    res.cells = built.cells;
    std::vector<double> warm = built.warm_start(d);
    res.warm_obj = built.model.objective_value(warm);

    milp::BranchAndBound::Options mo = job.mip;
    mo.cancel = cancel;
    if (fault_on && fault::should_fire(fault::Site::kLpTimeout, job.key)) {
      ++res.faults;
      mo.time_limit_sec = 0;
      mo.lp_options.time_limit_sec = 1e-9;
    }
    milp::BranchAndBound bnb(mo);
    milp::MipResult result =
        bnb.solve(built.model, built.make_heuristic(), &warm);
    if (fault_on && fault::should_fire(fault::Site::kNoSolution, job.key)) {
      ++res.faults;
      result = milp::MipResult{};
    }
    if (fault_on && fault::should_fire(fault::Site::kNanObjective, job.key)) {
      ++res.faults;
      result.objective = std::numeric_limits<double>::quiet_NaN();
    }

    res.has_solution = !result.x.empty();
    res.objective = result.objective;
    res.nodes = result.nodes_explored;
    res.lp_iterations = result.lp_iterations;
    res.dual_pivots = result.dual_pivots;
    res.warm_solves = result.warm_solves;
    res.cold_restarts = result.cold_restarts;
    res.rc_fixed = result.rc_fixed;

    res.usable = usable_result(result, built.model, res.warm_obj);
    if (res.usable) {
      res.placements = built.chosen_placements(result.x);
    } else if (job.rounding_fallback) {
      obs::ObsSpan fb_span("dist_opt.fallback_rounding");
      fb_span.arg("window", job.widx);
      // Standalone rounding: one root LP, rounded by the same repair
      // heuristic the solver uses, accepted only when feasible, finite,
      // and non-degrading — a cheap second chance that needs none of
      // the branch-and-bound machinery that just failed.
      lp::SimplexSolver lp_solver(job.mip.lp_options);
      lp::Result rel = lp_solver.solve(built.model.lp());
      if (rel.status == lp::Status::kOptimal) {
        if (auto hx = built.make_heuristic()(built.model, rel.x)) {
          double hobj = built.model.objective_value(*hx);
          if (std::isfinite(hobj) && hobj <= res.warm_obj + 1e-9 &&
              built.model.is_feasible(*hx, 1e-5)) {
            res.placements = built.chosen_placements(*hx);
            res.has_fallback = true;
          }
        }
      }
    }
  } catch (const std::exception& e) {
    res.failed = true;
    res.error = e.what();
  }
  return res;
}

}  // namespace vm1
