#include "core/greedy_aligner.h"

#include <algorithm>

#include "design/legality.h"
#include "place/hpwl.h"
#include "util/logging.h"

namespace vm1 {
namespace {

/// Local objective of instance `inst`'s nets under the current placement.
double local_objective(const Design& d, const std::vector<int>& nets,
                       const VM1Params& params, bool open) {
  double obj = 0;
  for (int n : nets) {
    obj += params.beta_of(n) * static_cast<double>(net_hpwl(d, n));
    auto [cnt, ovl] = count_net_alignments(d, n, params);
    obj -= params.alpha * static_cast<double>(cnt);
    if (open) obj -= params.epsilon * ovl;
  }
  return obj;
}

}  // namespace

GreedyAlignStats greedy_align(Design& d, const GreedyAlignOptions& opts) {
  Timer timer;
  GreedyAlignStats stats;
  const Netlist& nl = d.netlist();
  const bool open = d.library().arch() == CellArch::kOpenM1;

  ObjectiveBreakdown before = evaluate_objective(d, opts.params);
  stats.alignments_before = before.alignments;
  stats.hpwl_before = before.hpwl;

  auto grid = occupancy_grid(d);
  auto free_span = [&](int row, int x, int w, int self) {
    if (x < 0 || x + w > d.sites_per_row() || row < 0 ||
        row >= d.num_rows()) {
      return false;
    }
    for (int s = x; s < x + w; ++s) {
      int occ = grid[row][s];
      if (occ >= 0 && occ != self) return false;
    }
    return true;
  };

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    int accepted = 0;
    for (int i = 0; i < nl.num_instances(); ++i) {
      const Cell& c = nl.cell_of(i);
      if (c.filler || c.pins.empty()) continue;
      std::vector<int> nets = nets_of_instance(d, i);
      if (nets.empty()) continue;

      const Placement orig = d.placement(i);
      double base = local_objective(d, nets, opts.params, open);
      Placement best = orig;
      double best_gain = 1e-9;

      for (int dr = -opts.ly; dr <= opts.ly; ++dr) {
        for (int dx = -opts.lx; dx <= opts.lx; ++dx) {
          for (bool flip : {false, true}) {
            if (!opts.allow_flip && flip != orig.flipped) continue;
            Placement cand{orig.x + dx, orig.row + dr,
                           opts.allow_flip ? flip : orig.flipped};
            if (cand == orig) continue;
            if (!free_span(cand.row, cand.x, c.width_sites, i)) continue;
            d.set_placement(i, cand);
            double gain = base - local_objective(d, nets, opts.params, open);
            if (gain > best_gain) {
              best_gain = gain;
              best = cand;
            }
          }
        }
      }
      d.set_placement(i, orig);

      if (!(best == orig)) {
        // Commit: update occupancy.
        for (int s = orig.x; s < orig.x + c.width_sites; ++s) {
          grid[orig.row][s] = -1;
        }
        d.set_placement(i, best);
        for (int s = best.x; s < best.x + c.width_sites; ++s) {
          grid[best.row][s] = i;
        }
        ++accepted;
        if (best.x != orig.x || best.row != orig.row) ++stats.moves;
        if (best.flipped != orig.flipped) ++stats.flips;
      }
    }
    if (accepted == 0) break;
  }

  ObjectiveBreakdown after = evaluate_objective(d, opts.params);
  stats.alignments_after = after.alignments;
  stats.hpwl_after = after.hpwl;
  stats.seconds = timer.seconds();
  return stats;
}

GreedyAlignStats greedy_align_window(Design& d, const Window& win,
                                     const std::vector<int>& insts,
                                     const GreedyAlignOptions& opts,
                                     bool allow_move) {
  Timer timer;
  GreedyAlignStats stats;
  const Netlist& nl = d.netlist();
  const bool open = d.library().arch() == CellArch::kOpenM1;

  auto grid = occupancy_grid(d);
  auto free_span = [&](int row, int x, int w, int self) {
    if (!win.contains_footprint(x, row, w)) return false;
    for (int s = x; s < x + w; ++s) {
      int occ = grid[row][s];
      if (occ >= 0 && occ != self) return false;
    }
    return true;
  };

  // Displacement anchors: the placement at entry, so repeated passes can
  // never drift a cell beyond (lx, ly) of where the DistOpt pass found it.
  std::vector<Placement> entry;
  entry.reserve(insts.size());
  for (int i : insts) entry.push_back(d.placement(i));

  const int lx = allow_move ? opts.lx : 0;
  const int ly = allow_move ? opts.ly : 0;

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    int accepted = 0;
    for (std::size_t k = 0; k < insts.size(); ++k) {
      const int i = insts[k];
      const Cell& c = nl.cell_of(i);
      if (c.filler || c.pins.empty()) continue;
      std::vector<int> nets = nets_of_instance(d, i);
      if (nets.empty()) continue;

      const Placement orig = d.placement(i);
      const Placement& anchor = entry[k];
      double base = local_objective(d, nets, opts.params, open);
      Placement best = orig;
      double best_gain = 1e-9;

      for (int row = anchor.row - ly; row <= anchor.row + ly; ++row) {
        for (int x = anchor.x - lx; x <= anchor.x + lx; ++x) {
          for (bool flip : {false, true}) {
            if (!opts.allow_flip && flip != orig.flipped) continue;
            Placement cand{x, row, flip};
            if (cand == orig) continue;
            if (!free_span(row, x, c.width_sites, i)) continue;
            d.set_placement(i, cand);
            double gain = base - local_objective(d, nets, opts.params, open);
            if (gain > best_gain) {
              best_gain = gain;
              best = cand;
            }
          }
        }
      }
      d.set_placement(i, orig);

      if (!(best == orig)) {
        for (int s = orig.x; s < orig.x + c.width_sites; ++s) {
          grid[orig.row][s] = -1;
        }
        d.set_placement(i, best);
        for (int s = best.x; s < best.x + c.width_sites; ++s) {
          grid[best.row][s] = i;
        }
        ++accepted;
        if (best.x != orig.x || best.row != orig.row) ++stats.moves;
        if (best.flipped != orig.flipped) ++stats.flips;
      }
    }
    if (accepted == 0) break;
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace vm1
