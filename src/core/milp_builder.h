/// \file milp_builder.h
/// Per-window MILP construction for both cell architectures (Section 3).
///
/// ClosedM1 (Eq. (1)-(9)): minimize  -alpha * sum(d_pq) + sum(beta * w_n)
/// where d_pq = 1 only if pins p, q of a net have equal absolute x and
/// |dy| <= gamma_closed * H (big-M constraints (4)); the SCP lambda
/// candidates (5)-(8) choose each cell's placement and (9) keeps sites
/// exclusive.
///
/// OpenM1 (Eq. (10)-(14)): adds per-pair overlap interval [a, b], the
/// out-of-range indicator v_pq (|dy| > gamma * H forces v = 1, and (14)
/// d + v <= 1), and the overlap length o_pq rewarded with weight epsilon.
///
/// The builder folds fixed pins into variable bounds, prunes pairs that can
/// never align/overlap under the candidate sets, and uses per-pair big-M
/// values computed from candidate ranges (tight M ==> strong LP bounds).
#pragma once

#include <optional>
#include <unordered_map>

#include "core/candidates.h"
#include "milp/branch_and_bound.h"

namespace vm1 {

/// Converts a paper-style alpha (HPWL units of ~1 nm, e.g. 1200) into this
/// library's DBU (site-width) HPWL units.
inline double paper_alpha(double alpha_nm) { return alpha_nm / kNmPerSite; }

/// Paper parameters shared by both formulations. alpha/epsilon/delta are in
/// this library's DBU units (1 DBU = one site width ~ 45 nm); use
/// paper_alpha() to translate the paper's nm-denominated values.
struct VM1Params {
  double alpha = 1200.0 / kNmPerSite;  ///< weight of one dM1 alignment
  double beta = 1;       ///< default per-net HPWL weight (paper uses 1)
  double epsilon = 2;    ///< OpenM1: weight of total overlap length
  int gamma = 3;         ///< OpenM1: max dM1 span in rows
  int gamma_closed = 1;  ///< ClosedM1: max alignment span in rows (Eq. (4))
  Coord delta = 1;       ///< OpenM1: min overlap length for a dM1
  /// Cap on alignment pairs per net (keeps clock nets tractable).
  int max_pairs_per_net = 48;
  /// Optional per-net HPWL weights beta_n (indexed by net id; nets beyond
  /// the vector use `beta`). This realizes the paper's future-work item of
  /// folding timing criticality into the objective — see
  /// timing_criticality_weights().
  std::vector<double> net_beta;

  double beta_of(int net) const {
    return net < static_cast<int>(net_beta.size()) ? net_beta[net] : beta;
  }
};

/// Derives per-net beta_n from an STA run: nets on (near-)critical paths
/// get up to `max_weight`, relaxing linearly with slack. Use as
/// `params.net_beta = timing_criticality_weights(d, router_lengths, 4.0)`.
std::vector<double> timing_criticality_weights(
    const Design& d, const std::vector<long>& net_lengths,
    double max_weight = 4.0);

/// Inputs for one window MILP.
struct WindowProblem {
  const Design* design = nullptr;
  Window window;
  std::vector<int> movable;
  int lx = 4;
  int ly = 1;
  bool allow_move = true;
  bool allow_flip = true;
  VM1Params params;
};

/// A pin reference with cached geometry used by the builder.
struct PairPin {
  int inst = -1;  ///< owner instance (-1 for IO pins)
  int pin = 0;
  int movable_idx = -1;  ///< index into BuiltMilp::cells, or -1 when fixed
};

/// One candidate alignment/overlap pair in the model.
struct AlignPair {
  PairPin p, q;
  int net = -1;
  int d_var = -1;  ///< binary d_pq
  int v_var = -1;  ///< OpenM1 v_pq (-1 when statically decided)
  int o_var = -1;  ///< OpenM1 overlap length
  int a_var = -1;  ///< OpenM1 overlap left edge
  int b_var = -1;  ///< OpenM1 overlap right edge
};

/// The constructed model plus the mapping back to placements.
class BuiltMilp {
 public:
  milp::Model model;
  std::vector<int> cells;                     ///< movable instance ids
  std::vector<std::vector<Candidate>> cands;  ///< per cell
  std::vector<std::vector<int>> lambda;       ///< per cell: lambda var ids
  std::vector<AlignPair> pairs;
  /// Net bound variables (xmax, xmin, ymax, ymin) per included net.
  struct NetVars {
    int net;
    int xmax, xmin, ymax, ymin;
  };
  std::vector<NetVars> net_vars;

  bool empty() const { return cells.empty(); }

  /// Encodes the current design placement as a feasible warm-start vector
  /// (the identity assignment; candidate 0 of every cell).
  std::vector<double> warm_start(const Design& d) const;

  /// Applies a MILP solution: chooses each cell's selected candidate.
  void apply(Design& d, const std::vector<double>& x) const;

  /// The placements apply() would write, one per entry of `cells`, without
  /// mutating anything — cells whose solution selects no candidate keep
  /// their current placement. Safe in the read-only parallel phase; also
  /// how the distributed worker ships solutions back as plain deltas.
  std::vector<Placement> chosen_placements(const std::vector<double>& x) const;

  /// Rounding heuristic for branch-and-bound: pick each cell's
  /// highest-lambda candidate, greedily repair site conflicts, and complete
  /// the continuous variables.
  milp::RoundingHeuristic make_heuristic() const;

 private:
  friend BuiltMilp build_window_milp(const WindowProblem&);
  friend struct BuilderAccess;
  /// Completes non-lambda variables (net bounds, d/v/o/a/b) for a given
  /// per-cell candidate choice; returns the full solution vector.
  std::vector<double> complete(const std::vector<int>& chosen) const;
  double pin_x(const PairPin& p, const std::vector<int>& chosen) const;
  double pin_y(const PairPin& p, const std::vector<int>& chosen) const;
  std::pair<double, double> pin_span(const PairPin& p,
                                     const std::vector<int>& chosen) const;

  const Design* design_ = nullptr;
  VM1Params params_;
  Window window_;
  bool open_arch_ = false;
  std::unordered_map<int, int> inst_to_movable_;
};

/// Builds the window MILP for the design's architecture (ClosedM1 /
/// conventional use the alignment formulation; OpenM1 the overlap one).
BuiltMilp build_window_milp(const WindowProblem& prob);

/// Full-design objective (Algorithm 2's CalculateObj): beta * HPWL
/// - alpha * (#alignments) [- epsilon * (total overlap) for OpenM1].
struct ObjectiveBreakdown {
  double hpwl = 0;
  long alignments = 0;     ///< satisfied d_pq pairs across the design
  double overlap_sum = 0;  ///< OpenM1 only
  double value = 0;
};
ObjectiveBreakdown evaluate_objective(const Design& d,
                                      const VM1Params& params);

/// Counts aligned (ClosedM1) / overlapped (OpenM1) pin pairs of one net in
/// the current placement, and the total overlap beyond delta.
std::pair<long, double> count_net_alignments(const Design& d, int net,
                                             const VM1Params& params);

}  // namespace vm1
