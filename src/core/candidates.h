/// \file candidates.h
/// Single-cell-placement (SCP) candidate enumeration.
///
/// Following Li & Koh's SCP model as used by the paper (Section 3.1,
/// constraints (5)-(9)): each movable cell gets an explicit list of
/// candidate placements (x, row, flip) within its perturbation range
/// (lx, ly) that keep the cell inside its window and off sites occupied by
/// fixed cells. One binary lambda per candidate selects the placement.
#pragma once

#include <vector>

#include "design/design.h"

namespace vm1 {

/// One candidate placement for a cell (same encoding as Placement).
using Candidate = Placement;

/// An optimization window: sites [x0, x1) of rows [row0, row1].
struct Window {
  int x0 = 0;
  int x1 = 0;
  int row0 = 0;
  int row1 = 0;

  int width() const { return x1 - x0; }
  int rows() const { return row1 - row0 + 1; }
  bool contains_footprint(int x, int row, int w) const {
    return row >= row0 && row <= row1 && x >= x0 && x + w <= x1;
  }
};

/// Occupancy of the window's sites by *fixed* cells (movable cells'
/// current sites are free for re-assignment). Indexed [row - row0]
/// [site - x0]; true = blocked.
std::vector<std::vector<bool>> fixed_site_mask(
    const Design& d, const Window& win, const std::vector<int>& movable);

/// Enumerates candidates for `inst`:
///  * |x - x_cur| <= lx, |row - row_cur| <= ly;
///  * footprint inside `win` and clear of fixed sites;
///  * flip variants when allow_flip; when allow_move is false only the
///    current (x, row) is kept (the flip-only pass of Algorithm 1).
/// The current placement is always candidate 0.
std::vector<Candidate> enumerate_candidates(
    const Design& d, int inst, const Window& win,
    const std::vector<std::vector<bool>>& fixed_mask, int lx, int ly,
    bool allow_move, bool allow_flip);

}  // namespace vm1
