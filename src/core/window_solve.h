/// \file window_solve.h
/// One window's build → warm-start → branch-and-bound → rounding-fallback
/// pipeline, factored out of dist_opt's parallel phase so every DistOpt
/// backend runs the byte-identical solve path:
///
///   * threads backend: called inside ThreadPool jobs (core/dist_opt.cpp);
///   * processes backend: called by the worker executable on its design
///     replica (dist/worker.cpp), and by the coordinator as the local
///     fallback when a worker crashes/hangs/corrupts its reply.
///
/// The function never mutates the design: accepted solutions come back as
/// explicit per-cell placements (BuiltMilp::chosen_placements), and the
/// caller's serial apply phase commits them — which is what makes the
/// threads-vs-processes bit-identity guarantee checkable rather than
/// hopeful. Fault sites fire on the job's deterministic window key, so
/// injected schedules are identical no matter where the window solves.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "core/milp_builder.h"

namespace vm1 {

/// Inputs of one window solve, fully prepared by the caller: `mip` carries
/// the final (deadline-adjusted) solver limits, so the solve itself is a
/// pure function of this struct + the design + the fault config.
struct WindowSolveJob {
  int widx = -1;            ///< window index within the pass (telemetry)
  std::uint64_t key = 0;    ///< deterministic window key (fault seeding)
  Window window;
  std::vector<int> movable; ///< movable instance ids in the window
  int lx = 4;
  int ly = 1;
  bool allow_move = true;
  bool allow_flip = true;
  bool rounding_fallback = true;
  VM1Params params;
  milp::BranchAndBound::Options mip;
};

/// Everything the apply phase needs to classify and commit the window,
/// and nothing tied to the solving process's address space — this struct
/// is what dist/wire.{h,cpp} ships back over the socket.
struct WindowSolveResult {
  bool failed = false;      ///< build/solve threw; see `error`
  std::string error;
  int faults = 0;           ///< injected-fault firings observed
  bool empty_build = false; ///< window produced no MILP (nothing movable)
  std::vector<int> cells;   ///< BuiltMilp::cells (== job.movable)
  bool has_solution = false; ///< branch-and-bound returned a solution
  bool usable = false;       ///< MILP result passed validation
  bool has_fallback = false; ///< rounding fallback produced a solution
  /// Chosen placement per entry of `cells` for the accepted solution (the
  /// MILP optimum when `usable`, else the rounded root LP when
  /// `has_fallback`); empty otherwise.
  std::vector<Placement> placements;
  double warm_obj = 0;      ///< objective of the warm-start (identity)
  double objective = 0;     ///< branch-and-bound incumbent objective
  // Solver effort counters, folded into DistOptStats by the apply phase.
  long nodes = 0;
  long lp_iterations = 0;
  long dual_pivots = 0;
  long warm_solves = 0;
  long cold_restarts = 0;
  long rc_fixed = 0;
};

/// Solves one window against `d` (read-only). `cancel` is observed by the
/// branch-and-bound between nodes; pass nullptr when uncancellable (the
/// worker process — the coordinator cancels it with a deadline + SIGKILL
/// instead). Exceptions are captured into `failed`/`error`, never thrown.
WindowSolveResult solve_window(const Design& d, const WindowSolveJob& job,
                               const std::atomic<bool>* cancel);

/// Shared acceptance predicate: a solver answer is applied only when it is
/// a full, finite, non-degrading solution — anything else (kNoSolution,
/// truncated vector, NaN objective from a numerically sick LP) drops to
/// the fallback cascade.
bool usable_result(const milp::MipResult& r, const milp::Model& model,
                   double warm_obj);

}  // namespace vm1
