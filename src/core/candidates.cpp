#include "core/candidates.h"

#include <algorithm>

namespace vm1 {

std::vector<std::vector<bool>> fixed_site_mask(
    const Design& d, const Window& win, const std::vector<int>& movable) {
  std::vector<std::vector<bool>> mask(
      win.rows(), std::vector<bool>(win.width(), false));
  std::vector<bool> is_movable(d.netlist().num_instances(), false);
  for (int m : movable) is_movable[m] = true;

  const Netlist& nl = d.netlist();
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (is_movable[i]) continue;
    const Placement& p = d.placement(i);
    if (p.row < win.row0 || p.row > win.row1) continue;
    const Cell& c = nl.cell_of(i);
    int lo = std::max(p.x, win.x0);
    int hi = std::min(p.x + c.width_sites, win.x1);
    for (int s = lo; s < hi; ++s) {
      mask[p.row - win.row0][s - win.x0] = true;
    }
  }
  return mask;
}

std::vector<Candidate> enumerate_candidates(
    const Design& d, int inst, const Window& win,
    const std::vector<std::vector<bool>>& fixed_mask, int lx, int ly,
    bool allow_move, bool allow_flip) {
  const Placement cur = d.placement(inst);
  const int w = d.netlist().cell_of(inst).width_sites;

  auto fits = [&](int x, int row) {
    if (!win.contains_footprint(x, row, w)) return false;
    for (int s = x; s < x + w; ++s) {
      if (fixed_mask[row - win.row0][s - win.x0]) return false;
    }
    return true;
  };

  std::vector<Candidate> out;
  // Candidate 0 is always the current placement (kept even if the cell
  // straddles fixed sites — it is the fallback identity assignment).
  out.push_back(cur);
  if (allow_flip) {
    Candidate f = cur;
    f.flipped = !cur.flipped;
    if (fits(f.x, f.row)) out.push_back(f);
  }
  if (!allow_move) return out;

  for (int row = cur.row - ly; row <= cur.row + ly; ++row) {
    for (int x = cur.x - lx; x <= cur.x + lx; ++x) {
      if (x == cur.x && row == cur.row) continue;  // already added
      if (!fits(x, row)) continue;
      out.push_back(Candidate{x, row, cur.flipped});
      if (allow_flip) out.push_back(Candidate{x, row, !cur.flipped});
    }
  }
  return out;
}

}  // namespace vm1
