#include "cache/solve_cache.h"

#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/hash.h"

namespace vm1::cache {

namespace {

// Local little-endian helpers: the memo codec versions with the store's
// on-disk format (kStoreFormatVersion), deliberately independent of the
// wire protocol's codec.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

/// Bounds-checked little-endian reader; any short read poisons the cursor
/// so decode_memo fails closed.
struct Cursor {
  const std::uint8_t* p;
  std::size_t len;
  std::size_t off = 0;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || len - off < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p[off++];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[off + i]) << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
};

}  // namespace

std::uint64_t default_epoch() {
  return hash::splitmix_mix(kSolverEpoch,
                            static_cast<std::uint64_t>(fault::kNumSites));
}

std::vector<std::uint8_t> encode_memo(const WindowMemo& memo) {
  std::vector<std::uint8_t> out;
  out.reserve(22 + memo.changed.size() * 13);
  put_u64(out, memo.sig2);
  put_u8(out, static_cast<std::uint8_t>(memo.outcome));
  put_u8(out, memo.empty_build ? 1 : 0);
  std::uint64_t obj_bits = 0;
  std::memcpy(&obj_bits, &memo.obj_delta, sizeof(obj_bits));
  put_u64(out, obj_bits);
  put_u32(out, static_cast<std::uint32_t>(memo.changed.size()));
  for (const auto& [inst, pl] : memo.changed) {
    put_i32(out, inst);
    put_i32(out, pl.x);
    put_i32(out, pl.row);
    put_u8(out, pl.flipped ? 1 : 0);
  }
  return out;
}

std::optional<WindowMemo> decode_memo(const std::uint8_t* data,
                                      std::size_t len) {
  Cursor c{data, len};
  WindowMemo m;
  m.sig2 = c.u64();
  std::uint8_t outcome = c.u8();
  std::uint8_t empty = c.u8();
  std::uint64_t obj_bits = c.u64();
  std::uint32_t count = c.u32();
  if (!c.ok || outcome > static_cast<std::uint8_t>(WindowOutcome::kSkipped) ||
      empty > 1) {
    return std::nullopt;
  }
  // 13 bytes per delta entry: a count the remaining bytes can't hold is
  // corruption, not a short read we should loop into.
  if (std::uint64_t(count) * 13 != len - c.off) return std::nullopt;
  m.outcome = static_cast<WindowOutcome>(outcome);
  m.empty_build = empty != 0;
  std::memcpy(&m.obj_delta, &obj_bits, sizeof(m.obj_delta));
  m.changed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    int inst = c.i32();
    Placement pl;
    pl.x = c.i32();
    pl.row = c.i32();
    std::uint8_t flip = c.u8();
    if (!c.ok || flip > 1) return std::nullopt;
    pl.flipped = flip != 0;
    m.changed.emplace_back(inst, pl);
  }
  if (!c.ok || c.off != len) return std::nullopt;
  return m;
}

std::optional<WindowMemo> PersistentCache::lookup(const WindowSig& sig) {
  static obs::Counter& hit_c = obs::counter("cache.hits");
  static obs::Counter& miss_c = obs::counter("cache.misses");
  static obs::Histogram& hit_sec = obs::histogram("cache.hit_sec");
  const auto start = std::chrono::steady_clock::now();
  auto bytes = store_->lookup(sig.a, sig.b);
  if (!bytes) {
    miss_c.add();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  auto memo = decode_memo(bytes->data(), bytes->size());
  // A decodable value whose collision guard disagrees with the key is a
  // torn/foreign record: miss, never a wrong hit.
  if (!memo || memo->sig2 != sig.b) {
    miss_c.add();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hit_c.add();
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_sec.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return memo;
}

void PersistentCache::store(const WindowSig& sig, const WindowMemo& memo) {
  static obs::Counter& store_c = obs::counter("cache.stores");
  try {
    store_->put(sig.a, sig.b, encode_memo(memo));
  } catch (const CacheError&) {
    return;  // write-through is best-effort; a lost store is a future miss
  }
  store_c.add();
  stores_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vm1::cache
