/// \file solve_cache.h
/// The solve-cache adapter: exposes a CacheStore as the CacheBackend tier-2
/// seam of IncrementalState (src/core/incremental.h).
///
/// The key is the existing 128-bit window signature — it already covers
/// every input the window solve reads (geometry, cells, boundary pins,
/// params, MIP config, fault schedule) — combined with a store-level
/// *epoch* that fingerprints the solve semantics themselves (solver
/// algorithm generation, fault-site census). Signature equality under a
/// matching epoch is therefore a proof that replaying the recorded delta
/// is bit-identical to re-solving; when solver behavior changes, bumping
/// kSolverEpoch invalidates every persisted entry at open instead of
/// risking stale replays.
///
/// Values are WindowMemo records serialized with a self-contained
/// little-endian codec (no dist/wire dependency — the wire protocol and
/// the disk format version independently). Any malformed value decodes to
/// nullopt, which the backend reports as a clean miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "cache/store.h"
#include "core/incremental.h"

namespace vm1::cache {

/// Bump when the window-solve semantics change in a way the signature
/// cannot see (solver algorithm rework, objective redefinition). Persisted
/// entries from other epochs are discarded at open.
inline constexpr std::uint64_t kSolverEpoch = 1;

/// The epoch a store must be opened with for this build's solver: the
/// solver generation mixed with the fault-site census (adding a site
/// renumbers fault keys, which reshuffles injected-fault outcomes).
std::uint64_t default_epoch();

/// WindowMemo <-> bytes. recorded_gen is NOT persisted: generations are
/// run-local, and backend hits are trusted on the signature alone. decode
/// returns nullopt for any malformed input (short, oversized counts,
/// trailing bytes) — never a partial memo.
std::vector<std::uint8_t> encode_memo(const WindowMemo& memo);
std::optional<WindowMemo> decode_memo(const std::uint8_t* data,
                                      std::size_t len);

/// CacheBackend over a persistent CacheStore. Thread-safe (the store
/// serializes internally). Instruments cache.hits / cache.misses /
/// cache.stores counters and the cache.hit_sec lookup-latency histogram.
class PersistentCache : public CacheBackend {
 public:
  /// `store` is borrowed and must outlive the cache.
  explicit PersistentCache(CacheStore* store) : store_(store) {}

  std::optional<WindowMemo> lookup(const WindowSig& sig) override;
  void store(const WindowSig& sig, const WindowMemo& memo) override;

  CacheStore* backing() const { return store_; }
  long hits() const { return hits_; }
  long misses() const { return misses_; }
  long stores() const { return stores_; }

 private:
  CacheStore* store_;
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> stores_{0};
};

}  // namespace vm1::cache
