/// \file store.h
/// Crash-safe persistent content-addressed byte store — the on-disk tier
/// of the solve cache (see DESIGN.md "Solve cache").
///
/// A store is a directory holding one append-only record log (`cache.log`)
/// plus a `lock` file guarding single-writer access:
///
///   header:  [magic u32 "VM1C" | format u32 | epoch u64]
///   record*: [magic u32 "VM1R" | payload_len u32 | checksum u64 | payload]
///   payload: [key.a u64 | key.b u64 | value bytes]
///
/// all little-endian, `checksum` the FNV-1a 64 of the payload (the same
/// function as the wire-frame checksum, util/hash.h). Records append one
/// write() at a time; the full in-memory index (key -> value + last-use
/// ordinal) is rebuilt by scanning the log at open.
///
/// Failure policy — a damaged store degrades to misses, never wrong hits:
///
///   * truncated tail (crash mid-append): the partial record is dropped
///     and the file truncated back to the last good byte;
///   * bit-flipped record (checksum mismatch): the record is skipped —
///     framing survives because the length field was consistent;
///   * unparseable framing: everything from the bad offset on is dropped;
///   * stale epoch / format version / foreign magic: the whole log is
///     discarded and rewritten fresh (a clean miss for every key);
///   * second concurrent open (same or another process): CacheError
///     kLocked — single-writer by design, no torn logs.
///
/// Every anomaly is reported as a typed CacheError in the OpenReport; only
/// conditions that make the store unusable (I/O failure, lock held) throw.
///
/// The store is size-bounded: when entries or bytes exceed the caps, the
/// least-recently-used segment is evicted and the log compacted (rewrite +
/// atomic rename). All public methods are thread-safe — dist_opt probes
/// the cache from its parallel prepare phase, and the placement service
/// shares one store across jobs.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace vm1::cache {

inline constexpr std::uint32_t kStoreMagic = 0x564D3143u;   // "VM1C"
inline constexpr std::uint32_t kRecordMagic = 0x564D3152u;  // "VM1R"
/// On-disk format version. Bumps on ANY layout change (header or record);
/// an old-format log is discarded wholesale — the cache is a cache, so
/// compatibility shims are never worth a wrong-hit risk.
inline constexpr std::uint32_t kStoreFormatVersion = 1;
inline constexpr std::size_t kStoreHeaderSize = 16;
inline constexpr std::size_t kRecordHeaderSize = 16;
/// Sanity bound on one record's payload; larger lengths are corruption.
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 28;

/// What went wrong, machine-readably — tests assert kinds, operators read
/// messages.
enum class CacheErrorKind {
  kIo,               ///< open/read/write/rename failed (errno in message)
  kLocked,           ///< another open store holds the directory lock
  kVersionMismatch,  ///< on-disk format version != kStoreFormatVersion
  kStaleEpoch,       ///< header epoch != the configured epoch
  kCorrupt,          ///< record checksum/framing failure
  kTruncated,        ///< incomplete record at the log tail
};

const char* to_string(CacheErrorKind k);

/// Typed cache failure. Thrown for unusable-store conditions (kIo,
/// kLocked); collected in OpenReport::errors for anomalies the store
/// absorbs as misses.
class CacheError : public std::runtime_error {
 public:
  CacheError(CacheErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}
  CacheErrorKind kind() const { return kind_; }

 private:
  CacheErrorKind kind_;
};

struct StoreOptions {
  std::string dir;  ///< store directory; created if absent
  /// Content epoch (solver/config generation, see cache/solve_cache.h). A
  /// log recorded under a different epoch is discarded at open: signatures
  /// only key *inputs*, the epoch is what invalidates them when the solve
  /// *semantics* change.
  std::uint64_t epoch = 0;
  /// Size bounds. Exceeding either triggers LRU-segment eviction down to
  /// `evict_to_fraction` of the cap, then a log compaction.
  std::size_t max_entries = 1u << 20;
  std::size_t max_bytes = 256u << 20;
  double evict_to_fraction = 0.75;

  void validate() const;  ///< throws std::invalid_argument
};

/// Open-time scan summary: every anomaly the store absorbed, as typed
/// errors plus quick-check flags/counts.
struct OpenReport {
  bool created = false;          ///< no usable log existed; started fresh
  bool stale_epoch = false;      ///< discarded: header epoch mismatch
  bool version_mismatch = false; ///< discarded: format version mismatch
  bool truncated_tail = false;   ///< dropped a partial record at the tail
  long corrupt_records = 0;      ///< checksum-failed records skipped
  long records_loaded = 0;       ///< records indexed (after overwrites)
  std::vector<CacheError> errors;
};

class CacheStore {
 public:
  /// Opens (creating if needed) the store, scanning the log into the
  /// in-memory index. Throws CacheError kIo/kLocked; every other anomaly
  /// lands in open_report() and costs at most cache contents.
  explicit CacheStore(StoreOptions opts);
  ~CacheStore();
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Value bytes for the 128-bit key, or nullopt. A hit refreshes the
  /// entry's LRU ordinal.
  std::optional<std::vector<std::uint8_t>> lookup(std::uint64_t a,
                                                  std::uint64_t b);

  /// Inserts or overwrites, appending one record to the log (write errors
  /// throw CacheError kIo — the in-memory entry is still served). May
  /// trigger eviction + compaction when the caps are exceeded.
  void put(std::uint64_t a, std::uint64_t b, std::vector<std::uint8_t> value);

  const OpenReport& open_report() const { return report_; }
  const StoreOptions& options() const { return opts_; }

  std::size_t entries() const;
  std::size_t bytes() const;  ///< indexed payload bytes (keys + values)
  long evictions() const;     ///< entries evicted over this store's life

  /// One indexed entry, for the vm1_cache inspect tool.
  struct EntryInfo {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::size_t value_bytes = 0;
    std::uint64_t last_use = 0;  ///< LRU ordinal (higher = more recent)
  };
  std::vector<EntryInfo> list() const;

  /// Rewrites the log compacted (drops overwritten/evicted records). Also
  /// runs automatically after an eviction.
  void compact();

  /// Drops every entry and truncates the log to a fresh header.
  void clear();

 private:
  struct Rec {
    std::vector<std::uint8_t> value;
    std::uint64_t last_use = 0;
  };

  void open_locked();
  void scan_log_locked(const std::vector<std::uint8_t>& data);
  void write_header_locked();
  void append_record_locked(std::uint64_t a, std::uint64_t b,
                            const std::vector<std::uint8_t>& value);
  void rewrite_locked();
  void evict_if_over_locked();
  void set_bytes_gauge_locked();

  StoreOptions opts_;
  OpenReport report_;
  mutable std::mutex mu_;
  int log_fd_ = -1;
  int lock_fd_ = -1;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Rec> index_;
  std::size_t bytes_ = 0;      ///< sum of indexed key+value payload bytes
  std::uint64_t use_clock_ = 0;
  long evictions_ = 0;
};

}  // namespace vm1::cache
