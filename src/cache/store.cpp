#include "cache/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/hash.h"

namespace vm1::cache {

namespace {

std::string errno_msg(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

std::uint32_t rd_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t rd_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

/// write() the whole buffer, riding out EINTR and short writes.
void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw CacheError(CacheErrorKind::kIo, errno_msg("write cache.log"));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> read_whole(int fd) {
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  if (::lseek(fd, 0, SEEK_SET) < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("lseek cache.log"));
  }
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw CacheError(CacheErrorKind::kIo, errno_msg("read cache.log"));
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  return data;
}

obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::counter("cache.evictions");
  return c;
}

obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::gauge("cache.bytes");
  return g;
}

}  // namespace

const char* to_string(CacheErrorKind k) {
  switch (k) {
    case CacheErrorKind::kIo:
      return "cache io error";
    case CacheErrorKind::kLocked:
      return "cache locked";
    case CacheErrorKind::kVersionMismatch:
      return "cache format version mismatch";
    case CacheErrorKind::kStaleEpoch:
      return "cache stale epoch";
    case CacheErrorKind::kCorrupt:
      return "cache corrupt record";
    case CacheErrorKind::kTruncated:
      return "cache truncated record";
  }
  return "?";
}

void StoreOptions::validate() const {
  if (dir.empty()) throw std::invalid_argument("StoreOptions: dir is empty");
  if (max_entries == 0) {
    throw std::invalid_argument("StoreOptions: max_entries must be > 0");
  }
  if (max_bytes == 0) {
    throw std::invalid_argument("StoreOptions: max_bytes must be > 0");
  }
  if (!(evict_to_fraction > 0) || evict_to_fraction > 1) {
    throw std::invalid_argument(
        "StoreOptions: evict_to_fraction must be in (0, 1]");
  }
}

CacheStore::CacheStore(StoreOptions opts) : opts_(std::move(opts)) {
  opts_.validate();
  open_locked();
}

CacheStore::~CacheStore() {
  if (log_fd_ >= 0) ::close(log_fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
}

void CacheStore::open_locked() {
  // mkdir -p: a cache path like <out_dir>/cache_<scenario> routinely names
  // a parent that does not exist yet.
  for (std::size_t slash = opts_.dir.find('/', 1);;
       slash = opts_.dir.find('/', slash + 1)) {
    const std::string prefix =
        slash == std::string::npos ? opts_.dir : opts_.dir.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      throw CacheError(CacheErrorKind::kIo, errno_msg("mkdir " + prefix));
    }
    if (slash == std::string::npos) break;
  }
  // The lock file is never renamed (compaction renames cache.log), so the
  // flock stays pinned to one inode for the store's whole life. flock is
  // per open-file-description: a second CacheStore in the *same* process
  // conflicts just like one in another process would.
  const std::string lock_path = opts_.dir + "/lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("open " + lock_path));
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    int e = errno;
    ::close(lock_fd_);
    lock_fd_ = -1;
    if (e == EWOULDBLOCK) {
      throw CacheError(CacheErrorKind::kLocked,
                       "another store has " + lock_path);
    }
    errno = e;
    throw CacheError(CacheErrorKind::kIo, errno_msg("flock " + lock_path));
  }

  const std::string log_path = opts_.dir + "/cache.log";
  log_fd_ = ::open(log_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (log_fd_ < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("open " + log_path));
  }

  std::vector<std::uint8_t> data = read_whole(log_fd_);
  if (data.empty()) {
    report_.created = true;
    write_header_locked();
  } else if (data.size() < kStoreHeaderSize ||
             rd_u32(data.data()) != kStoreMagic) {
    report_.created = true;
    report_.errors.emplace_back(CacheErrorKind::kCorrupt,
                                "unrecognized log header; starting fresh");
    write_header_locked();
  } else if (rd_u32(data.data() + 4) != kStoreFormatVersion) {
    report_.version_mismatch = true;
    report_.errors.emplace_back(
        CacheErrorKind::kVersionMismatch,
        "log format v" + std::to_string(rd_u32(data.data() + 4)) +
            " != v" + std::to_string(kStoreFormatVersion) +
            "; discarding log");
    write_header_locked();
  } else if (rd_u64(data.data() + 8) != opts_.epoch) {
    report_.stale_epoch = true;
    report_.errors.emplace_back(
        CacheErrorKind::kStaleEpoch,
        "log epoch " + std::to_string(rd_u64(data.data() + 8)) +
            " != configured " + std::to_string(opts_.epoch) +
            "; discarding log");
    write_header_locked();
  } else {
    scan_log_locked(data);
  }
  set_bytes_gauge_locked();
}

void CacheStore::scan_log_locked(const std::vector<std::uint8_t>& data) {
  std::size_t off = kStoreHeaderSize;
  std::size_t good_end = off;  // byte after the last intact record
  while (off < data.size()) {
    if (data.size() - off < kRecordHeaderSize) {
      report_.truncated_tail = true;
      report_.errors.emplace_back(
          CacheErrorKind::kTruncated,
          "partial record header at offset " + std::to_string(off));
      break;
    }
    std::uint32_t magic = rd_u32(data.data() + off);
    std::uint32_t len = rd_u32(data.data() + off + 4);
    std::uint64_t sum = rd_u64(data.data() + off + 8);
    if (magic != kRecordMagic || len < 16 || len > kMaxRecordPayload) {
      // Framing is gone; nothing past this offset can be trusted.
      report_.errors.emplace_back(
          CacheErrorKind::kCorrupt,
          "bad record framing at offset " + std::to_string(off) +
              "; dropping the rest of the log");
      ++report_.corrupt_records;
      break;
    }
    if (data.size() - off - kRecordHeaderSize < len) {
      report_.truncated_tail = true;
      report_.errors.emplace_back(
          CacheErrorKind::kTruncated,
          "partial record payload at offset " + std::to_string(off));
      break;
    }
    const std::uint8_t* payload = data.data() + off + kRecordHeaderSize;
    off += kRecordHeaderSize + len;
    if (hash::fnv1a64(payload, len) != sum) {
      // Framing held, so later records are fine — skip just this one.
      ++report_.corrupt_records;
      report_.errors.emplace_back(
          CacheErrorKind::kCorrupt,
          "checksum mismatch in record ending at offset " +
              std::to_string(off));
      good_end = off;
      continue;
    }
    std::uint64_t a = rd_u64(payload);
    std::uint64_t b = rd_u64(payload + 8);
    Rec& rec = index_[{a, b}];
    if (!rec.value.empty() || rec.last_use != 0) bytes_ -= 16 + rec.value.size();
    rec.value.assign(payload + 16, payload + len);
    rec.last_use = ++use_clock_;
    bytes_ += 16 + rec.value.size();
    good_end = off;
  }
  report_.records_loaded = static_cast<long>(index_.size());
  if (good_end != data.size()) {
    if (::ftruncate(log_fd_, static_cast<off_t>(good_end)) != 0) {
      throw CacheError(CacheErrorKind::kIo, errno_msg("ftruncate cache.log"));
    }
  }
  if (::lseek(log_fd_, 0, SEEK_END) < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("lseek cache.log"));
  }
}

void CacheStore::write_header_locked() {
  index_.clear();
  bytes_ = 0;
  if (::ftruncate(log_fd_, 0) != 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("ftruncate cache.log"));
  }
  if (::lseek(log_fd_, 0, SEEK_SET) < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("lseek cache.log"));
  }
  std::vector<std::uint8_t> hdr;
  put_u32(hdr, kStoreMagic);
  put_u32(hdr, kStoreFormatVersion);
  put_u64(hdr, opts_.epoch);
  write_all(log_fd_, hdr.data(), hdr.size());
}

void CacheStore::append_record_locked(
    std::uint64_t a, std::uint64_t b,
    const std::vector<std::uint8_t>& value) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kRecordHeaderSize + 16 + value.size());
  put_u32(rec, kRecordMagic);
  put_u32(rec, static_cast<std::uint32_t>(16 + value.size()));
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + value.size());
  put_u64(payload, a);
  put_u64(payload, b);
  payload.insert(payload.end(), value.begin(), value.end());
  put_u64(rec, hash::fnv1a64(payload.data(), payload.size()));
  rec.insert(rec.end(), payload.begin(), payload.end());
  write_all(log_fd_, rec.data(), rec.size());
}

std::optional<std::vector<std::uint8_t>> CacheStore::lookup(std::uint64_t a,
                                                            std::uint64_t b) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find({a, b});
  if (it == index_.end()) return std::nullopt;
  it->second.last_use = ++use_clock_;
  return it->second.value;
}

void CacheStore::put(std::uint64_t a, std::uint64_t b,
                     std::vector<std::uint8_t> value) {
  if (16 + value.size() > kMaxRecordPayload) {
    throw std::invalid_argument("CacheStore::put: value too large");
  }
  std::lock_guard<std::mutex> lk(mu_);
  Rec& rec = index_[{a, b}];
  if (!rec.value.empty() || rec.last_use != 0) bytes_ -= 16 + rec.value.size();
  bytes_ += 16 + value.size();
  rec.last_use = ++use_clock_;
  rec.value = std::move(value);
  append_record_locked(a, b, rec.value);
  evict_if_over_locked();
  set_bytes_gauge_locked();
}

std::size_t CacheStore::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.size();
}

std::size_t CacheStore::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

long CacheStore::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

std::vector<CacheStore::EntryInfo> CacheStore::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<EntryInfo> out;
  out.reserve(index_.size());
  for (const auto& [key, rec] : index_) {
    out.push_back({key.first, key.second, rec.value.size(), rec.last_use});
  }
  return out;
}

void CacheStore::compact() {
  std::lock_guard<std::mutex> lk(mu_);
  rewrite_locked();
}

void CacheStore::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  write_header_locked();
  set_bytes_gauge_locked();
}

void CacheStore::evict_if_over_locked() {
  if (index_.size() <= opts_.max_entries && bytes_ <= opts_.max_bytes) return;
  const auto target_entries = static_cast<std::size_t>(
      static_cast<double>(opts_.max_entries) * opts_.evict_to_fraction);
  const auto target_bytes = static_cast<std::size_t>(
      static_cast<double>(opts_.max_bytes) * opts_.evict_to_fraction);

  // Oldest-first by last-use ordinal; drop until back under both targets.
  std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>>
      by_age;
  by_age.reserve(index_.size());
  for (const auto& [key, rec] : index_) by_age.push_back({rec.last_use, key});
  std::sort(by_age.begin(), by_age.end());
  long dropped = 0;
  for (const auto& [use, key] : by_age) {
    if (index_.size() <= target_entries && bytes_ <= target_bytes) break;
    auto it = index_.find(key);
    bytes_ -= 16 + it->second.value.size();
    index_.erase(it);
    ++dropped;
  }
  evictions_ += dropped;
  evictions_counter().add(dropped);
  rewrite_locked();
}

void CacheStore::rewrite_locked() {
  const std::string log_path = opts_.dir + "/cache.log";
  const std::string tmp_path = log_path + ".tmp";
  int tmp_fd = ::open(tmp_path.c_str(),
                      O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("open " + tmp_path));
  }
  try {
    std::vector<std::uint8_t> buf;
    put_u32(buf, kStoreMagic);
    put_u32(buf, kStoreFormatVersion);
    put_u64(buf, opts_.epoch);
    for (const auto& [key, rec] : index_) {
      put_u32(buf, kRecordMagic);
      put_u32(buf, static_cast<std::uint32_t>(16 + rec.value.size()));
      std::vector<std::uint8_t> payload;
      payload.reserve(16 + rec.value.size());
      put_u64(payload, key.first);
      put_u64(payload, key.second);
      payload.insert(payload.end(), rec.value.begin(), rec.value.end());
      put_u64(buf, hash::fnv1a64(payload.data(), payload.size()));
      buf.insert(buf.end(), payload.begin(), payload.end());
      if (buf.size() >= (1u << 20)) {
        write_all(tmp_fd, buf.data(), buf.size());
        buf.clear();
      }
    }
    if (!buf.empty()) write_all(tmp_fd, buf.data(), buf.size());
    if (::fsync(tmp_fd) != 0) {
      throw CacheError(CacheErrorKind::kIo, errno_msg("fsync " + tmp_path));
    }
  } catch (...) {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  ::close(tmp_fd);
  if (::rename(tmp_path.c_str(), log_path.c_str()) != 0) {
    int e = errno;
    ::unlink(tmp_path.c_str());
    errno = e;
    throw CacheError(CacheErrorKind::kIo,
                     errno_msg("rename " + tmp_path + " -> " + log_path));
  }
  int new_fd = ::open(log_path.c_str(), O_RDWR | O_CLOEXEC);
  if (new_fd < 0) {
    throw CacheError(CacheErrorKind::kIo, errno_msg("reopen " + log_path));
  }
  if (::lseek(new_fd, 0, SEEK_END) < 0) {
    ::close(new_fd);
    throw CacheError(CacheErrorKind::kIo, errno_msg("lseek " + log_path));
  }
  ::close(log_fd_);
  log_fd_ = new_fd;
}

void CacheStore::set_bytes_gauge_locked() {
  bytes_gauge().set(static_cast<double>(bytes_));
}

}  // namespace vm1::cache
