#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "util/logging.h"

namespace vm1::subprocess {

namespace {

void set_cloexec(int fd) {
  int flags = fcntl(fd, F_GETFD);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

bool is_executable(const std::string& path) {
  struct stat st{};
  if (stat(path.c_str(), &st) != 0) return false;
  return S_ISREG(st.st_mode) && access(path.c_str(), X_OK) == 0;
}

Child spawn_worker(const std::string& path,
                   const std::vector<std::string>& args) {
  Child child;
  if (!is_executable(path)) {
    log_warn("subprocess: worker binary not executable: ", path);
    return child;
  }
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    log_warn("subprocess: socketpair failed: ", std::strerror(errno));
    return child;
  }
  // Parent keeps sv[0]; the child's end sv[1] must survive exec in the
  // child but never leak into siblings spawned later from the parent.
  set_cloexec(sv[0]);

  std::string argv0 = path;
  std::size_t slash = argv0.find_last_of('/');
  if (slash != std::string::npos) argv0 = argv0.substr(slash + 1);
  std::string fd_arg = "--fd=" + std::to_string(sv[1]);

  pid_t pid = fork();
  if (pid < 0) {
    log_warn("subprocess: fork failed: ", std::strerror(errno));
    close(sv[0]);
    close(sv[1]);
    return child;
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls until exec.
    close(sv[0]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(argv0.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(const_cast<char*>(fd_arg.c_str()));
    argv.push_back(nullptr);
    execv(path.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees EOF on the socket
  }
  close(sv[1]);
  child.pid = pid;
  child.fd = sv[0];
  return child;
}

pid_t spawn_process(const std::string& path,
                    const std::vector<std::string>& args) {
  if (!is_executable(path)) {
    log_warn("subprocess: binary not executable: ", path);
    return -1;
  }
  std::string argv0 = path;
  std::size_t slash = argv0.find_last_of('/');
  if (slash != std::string::npos) argv0 = argv0.substr(slash + 1);

  pid_t pid = fork();
  if (pid < 0) {
    log_warn("subprocess: fork failed: ", std::strerror(errno));
    return -1;
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls until exec.
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(argv0.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(path.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

std::size_t write_upto(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < len) {
    ssize_t n = send(fd, p + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    written += static_cast<std::size_t>(n);
  }
  return written;
}

bool write_all(int fd, const void* data, std::size_t len) {
  return write_upto(fd, data, len) == len;
}

long read_some(int fd, void* data, std::size_t len) {
  for (;;) {
    ssize_t n = recv(fd, data, len, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

bool try_reap(pid_t pid) {
  if (pid <= 0) return true;
  int status = 0;
  pid_t r = waitpid(pid, &status, WNOHANG);
  if (r == pid) return true;
  if (r < 0 && errno == ECHILD) return true;  // someone else reaped it
  return false;
}

void kill_and_reap(pid_t pid, double timeout_sec) {
  if (pid <= 0) return;
  if (try_reap(pid)) return;
  kill(pid, SIGKILL);
  // A SIGKILLed child exits promptly unless stuck in uninterruptible IO;
  // poll with a short sleep rather than blocking in waitpid forever.
  const int kSliceUs = 10'000;
  int slices = static_cast<int>(timeout_sec * 1e6 / kSliceUs) + 1;
  for (int i = 0; i < slices; ++i) {
    if (try_reap(pid)) return;
    usleep(kSliceUs);
  }
  log_warn("subprocess: child ", pid, " did not die within ", timeout_sec,
           "s of SIGKILL");
}

}  // namespace vm1::subprocess
