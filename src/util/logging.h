/// \file logging.h
/// Lightweight leveled logging and wall-clock timers.
#pragma once

#include <chrono>
#include <functional>
#include <sstream>
#include <string>

namespace vm1 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted log line (already filtered by level).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the global sink; nullptr restores the default stderr sink.
/// The sink is invoked under the logging mutex — lines are serialized, and
/// the sink must not log recursively. Tests and bench harnesses use this to
/// capture output instead of racing on stderr.
void set_log_sink(LogSink sink);

/// Emit one log line (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
inline void stream_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void stream_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  stream_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::stream_all(os, args...);
  log_message(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

/// Monotonic stopwatch; reports elapsed seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace vm1
