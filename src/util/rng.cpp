#include "util/rng.h"

#include <cassert>

namespace vm1 {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform_real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int Rng::geometric_between(int lo, int hi, double ratio) {
  int k = lo;
  while (k < hi && chance(ratio)) ++k;
  return k;
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double r = uniform_real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace vm1
