/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of OpenVM1 (netlist generation, placement
/// seeding, tie-breaking) draw from this RNG so that a given seed reproduces
/// the exact same design and metrics on every platform. The generator is
/// splitmix64 + xoshiro256**, which is fast and has no platform-dependent
/// behaviour (unlike std::uniform_int_distribution).
#pragma once

#include <cstdint>
#include <vector>

namespace vm1 {

/// Deterministic, seedable RNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform(std::uint64_t n);

  /// Uniform integer in [lo, hi] (closed). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform_real() < p; }

  /// Geometric-like sample: returns k >= lo, each increment kept with
  /// probability `ratio` until hi. Used for fanout distributions.
  int geometric_between(int lo, int hi, double ratio);

  /// Sample an index from unnormalized non-negative weights. Requires a
  /// positive total weight.
  std::size_t weighted_pick(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace vm1
