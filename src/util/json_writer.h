/// \file json_writer.h
/// Minimal streaming JSON emitter shared by the bench binaries
/// (bench/bench_util.h) and the scenario harness (src/scenario) — both emit
/// machine-readable result files (BENCH_*.json, TREND_*.json) that are
/// diffed across commits, so they must agree on formatting. Usage:
///   JsonWriter jw("BENCH_solver.json");
///   jw.begin_object();
///   jw.field("wall_s", 1.25);
///   jw.begin_array("rows");
///   jw.begin_object(); jw.field("bw", 20); jw.end_object();
///   jw.end_array();
///   jw.end_object();   // closes the file when the root closes
#pragma once

#include <cassert>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

namespace vm1 {

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path)
      : f_(std::fopen(path.c_str(), "w")) {
    if (!f_) std::fprintf(stderr, "JsonWriter: cannot open %s\n", path.c_str());
  }
  ~JsonWriter() {
    if (f_) std::fclose(f_);
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// False when the output file could not be opened (fields are dropped).
  bool ok() const { return f_ != nullptr || closed_; }

  void begin_object() { open('{'); }
  void begin_object(const char* key) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(const char* key) { open('[', key); }
  void end_array() { close(']'); }

  void field(const char* key, double v) {
    prefix(key);
    put("%.10g", v);
  }
  void field(const char* key, long v) {
    prefix(key);
    put("%ld", v);
  }
  void field(const char* key, int v) { field(key, static_cast<long>(v)); }
  void field(const char* key, bool v) {
    prefix(key);
    put("%s", v ? "true" : "false");
  }
  void field(const char* key, const char* v) {
    prefix(key);
    put_string(v);
  }
  void field(const char* key, const std::string& v) { field(key, v.c_str()); }

 private:
  void open(char c, const char* key = nullptr) {
    prefix(key);
    put("%c", c);
    comma_.push_back(false);
  }
  void close(char c) {
    assert(!comma_.empty());
    comma_.pop_back();
    put("%c\n", c);
    if (f_ && comma_.empty()) {
      std::fclose(f_);
      f_ = nullptr;
      closed_ = true;
    }
  }
  void prefix(const char* key) {
    if (!comma_.empty()) {
      if (comma_.back()) put(",\n");
      comma_.back() = true;
    }
    if (key) {
      put_string(key);
      put(": ");
    }
  }
  void put_string(const char* s) {
    if (!f_) return;
    std::fputc('"', f_);
    for (; *s; ++s) {
      if (*s == '"' || *s == '\\') std::fputc('\\', f_);
      std::fputc(*s, f_);
    }
    std::fputc('"', f_);
  }
  template <typename... Args>
  void put(const char* fmt, Args... args) {
    if (f_) std::fprintf(f_, fmt, args...);
  }

  std::FILE* f_;
  bool closed_ = false;
  std::vector<bool> comma_;  ///< per open scope: "needs a comma first"
};

inline std::string iso_timestamp_utc() {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%FT%TZ", &tm);
  return buf;
}

}  // namespace vm1
