/// \file stats.h
/// Small statistics helpers used in reports and benchmark tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vm1 {

/// Running univariate summary (count / mean / min / max / sum).
class Summary {
 public:
  void add(double v);
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Percentage change from `before` to `after` ((after-before)/before*100);
/// 0 when before == 0.
double pct_delta(double before, double after);

/// Format a double with fixed precision (for report tables).
std::string fmt(double v, int precision = 1);

/// Format a percent delta as e.g. "-6.4" / "+4.0".
std::string fmt_delta(double before, double after, int precision = 1);

}  // namespace vm1
