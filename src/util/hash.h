/// \file hash.h
/// The repo's shared non-cryptographic hashing primitives. Three subsystems
/// grew near-duplicate FNV/splitmix implementations — wire-frame checksums
/// (src/dist/wire.cpp), the 128-bit window-signature streams
/// (src/core/incremental), and fault-injection window keys
/// (src/util/fault_injection) — and the solve cache (src/cache) keys its
/// on-disk records with the same functions. They live here once, with the
/// exact historical constants, because the bit patterns are load-bearing:
/// window signatures key the persistent cache and the golden scenario
/// corpus, wire checksums are protocol, and fault keys determine which
/// drills fire for a given seed. Changing any constant is a cache-epoch /
/// wire-version / golden-regeneration event, never a refactor.
///
/// Everything is a pure function of explicit integer words: no pointers,
/// clocks, or container addresses ever enter a hash, so all outputs are
/// reproducible across runs, platforms, and processes.
#pragma once

#include <cstdint>
#include <cstring>

namespace vm1::hash {

/// Plain 64-bit FNV-1a over bytes — the wire-frame checksum and the cache
/// store's record checksum.
inline std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;  // FNV-1a prime
  }
  return h;
}

/// splitmix64 finalizer (same construction as util/rng.h's seeding stage):
/// a bijective avalanche so nearby keys decorrelate completely.
inline std::uint64_t splitmix_finalize(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// splitmix64-based hash combine (boost::hash_combine shape) used for
/// window keys; stable across platforms so fault schedules are portable.
inline std::uint64_t splitmix_mix(std::uint64_t h, std::uint64_t v) {
  return splitmix_finalize(h ^
                           (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Streaming 2x64-bit FNV-1a-style hasher behind the 128-bit window
/// signatures. Stable across platforms and runs: it consumes explicit
/// integer words only — callers hash doubles by bit pattern, never
/// pointers, clocks, or container addresses.
class SignatureHasher {
 public:
  void add(std::uint64_t v) {
    a_ = step(a_, v, kPrimeA);
    b_ = step(b_, v ^ kTweak, kPrimeB);
  }
  void add_int(long long v) { add(static_cast<std::uint64_t>(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add(bits);
  }
  void add_bool(bool v) { add(v ? 1u : 0u); }

  std::uint64_t low() const { return a_; }
  std::uint64_t high() const { return b_; }

 private:
  static std::uint64_t step(std::uint64_t h, std::uint64_t v,
                            std::uint64_t prime) {
    h ^= v;
    h *= prime;
    h ^= h >> 29;
    return h;
  }
  static constexpr std::uint64_t kPrimeA = 1099511628211ULL;  // FNV-1a prime
  static constexpr std::uint64_t kPrimeB = 0x9E3779B97F4A7C15ULL;
  static constexpr std::uint64_t kTweak = 0xA5A5A5A55A5A5A5AULL;
  std::uint64_t a_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::uint64_t b_ = 0x6C62272E07BB0142ULL;
};

}  // namespace vm1::hash
