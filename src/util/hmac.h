/// \file hmac.h
/// Dependency-free SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104) for the
/// distributed service's auth handshake (dist/tcp.h): a worker attaching
/// over TCP proves knowledge of the shared secret ($VM1_DIST_SECRET) by
/// returning HMAC(secret, server_nonce) in its hello frame. Verified
/// against the FIPS 180-4 and RFC 4231 test vectors in tests/test_tcp.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vm1::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// SHA-256 of `len` bytes at `data`.
Digest sha256(const void* data, std::size_t len);

/// HMAC-SHA256 with an arbitrary-length key (keys longer than the 64-byte
/// block are hashed first, per RFC 2104).
Digest hmac_sha256(const void* key, std::size_t key_len, const void* msg,
                   std::size_t msg_len);

/// Constant-time digest comparison: the auth check must not leak how many
/// leading bytes of a forged tag were right.
bool digest_equal(const Digest& a, const Digest& b);

/// Lowercase hex of a digest (logging / test vectors).
std::string to_hex(const Digest& d);

}  // namespace vm1::crypto
