/// \file geometry.h
/// Integer lattice geometry primitives used throughout OpenVM1.
///
/// All layout coordinates in OpenVM1 are integers in *database units* (DBU).
/// One DBU equals one placement-site width, which for the synthetic 7nm
/// libraries also equals the M1 routing pitch (the ClosedM1 architecture of
/// the paper has "M1 pitch equal to the width of a placement site").
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace vm1 {

/// Coordinate type for all layout geometry (database units).
using Coord = std::int64_t;

/// A point on the integer layout lattice.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// L1 (Manhattan) distance between two points.
inline Coord manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Closed axis-aligned rectangle [lx, hx] x [ly, hy].
///
/// A Rect is *valid* when lx <= hx and ly <= hy. Degenerate (zero width or
/// height) rectangles are valid and are used for 1D pin shapes.
struct Rect {
  Coord lx = 0;
  Coord ly = 0;
  Coord hx = 0;
  Coord hy = 0;

  Rect() = default;
  Rect(Coord lx_, Coord ly_, Coord hx_, Coord hy_)
      : lx(lx_), ly(ly_), hx(hx_), hy(hy_) {}

  bool valid() const { return lx <= hx && ly <= hy; }
  Coord width() const { return hx - lx; }
  Coord height() const { return hy - ly; }
  /// Half-perimeter of the rectangle (HPWL of its corner set).
  Coord half_perimeter() const { return width() + height(); }
  Point center() const { return {(lx + hx) / 2, (ly + hy) / 2}; }

  /// True if point p lies inside (boundary inclusive).
  bool contains(const Point& p) const {
    return p.x >= lx && p.x <= hx && p.y >= ly && p.y <= hy;
  }
  /// True if r lies fully inside this rect (boundary inclusive).
  bool contains(const Rect& r) const {
    return r.lx >= lx && r.hx <= hx && r.ly >= ly && r.hy <= hy;
  }
  /// True if the closed rectangles share at least a point.
  bool intersects(const Rect& r) const {
    return lx <= r.hx && r.lx <= hx && ly <= r.hy && r.ly <= hy;
  }
  /// True if the *open* interiors overlap (shared edges do not count).
  bool overlaps_open(const Rect& r) const {
    return lx < r.hx && r.lx < hx && ly < r.hy && r.ly < hy;
  }

  /// Grow to include point p.
  void expand(const Point& p) {
    lx = std::min(lx, p.x);
    hx = std::max(hx, p.x);
    ly = std::min(ly, p.y);
    hy = std::max(hy, p.y);
  }
  /// Grow to include rect r.
  void expand(const Rect& r) {
    lx = std::min(lx, r.lx);
    hx = std::max(hx, r.hx);
    ly = std::min(ly, r.ly);
    hy = std::max(hy, r.hy);
  }

  /// Rect translated by (dx, dy).
  Rect shifted(Coord dx, Coord dy) const {
    return {lx + dx, ly + dy, hx + dx, hy + dy};
  }

  /// Intersection (invalid Rect if disjoint).
  Rect intersection(const Rect& r) const {
    return {std::max(lx, r.lx), std::max(ly, r.ly), std::min(hx, r.hx),
            std::min(hy, r.hy)};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Length of the 1D overlap of closed intervals [a0,a1] and [b0,b1];
/// negative values indicate the gap size between disjoint intervals.
inline Coord interval_overlap(Coord a0, Coord a1, Coord b0, Coord b1) {
  return std::min(a1, b1) - std::max(a0, b0);
}

/// Bounding box builder that starts empty.
class BBox {
 public:
  void add(const Point& p) {
    if (empty_) {
      box_ = {p.x, p.y, p.x, p.y};
      empty_ = false;
    } else {
      box_.expand(p);
    }
  }
  void add(const Rect& r) {
    if (empty_) {
      box_ = r;
      empty_ = false;
    } else {
      box_.expand(r);
    }
  }
  bool empty() const { return empty_; }
  /// Valid only when !empty().
  const Rect& rect() const { return box_; }

 private:
  Rect box_;
  bool empty_ = true;
};

std::string to_string(const Point& p);
std::string to_string(const Rect& r);
std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace vm1
