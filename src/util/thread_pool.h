/// \file thread_pool.h
/// Minimal fixed-size thread pool used for the distributable window
/// optimization (Section 4.1 of the paper): each iteration solves a batch of
/// diagonally-adjacent, mutually independent windows in parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vm1 {

/// Fixed-size worker pool. Tasks are void() callables; `wait_idle` blocks
/// until every submitted task has finished, providing the barrier between
/// window batches.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// If any invocation throws, the first exception (in completion order) is
  /// rethrown on the calling thread after all n tasks have finished —
  /// worker failures are never silently swallowed.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Cancellable variant: each task re-checks `cancel` (may be null) just
  /// before invoking fn, so once the token is set the remaining queued
  /// indices drain without running — the cooperative cut-off used by
  /// DistOpt's pass deadline. Returns the number of indices actually
  /// invoked (== n when never cancelled). In-flight invocations are not
  /// interrupted; exceptions propagate as in the plain overload.
  std::size_t parallel_for(std::size_t n,
                           const std::function<void(std::size_t)>& fn,
                           const std::atomic<bool>* cancel);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace vm1
