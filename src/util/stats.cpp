#include "util/stats.h"

#include <algorithm>
#include <cstdio>

namespace vm1 {

void Summary::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double pct_delta(double before, double after) {
  if (before == 0) return 0;
  return (after - before) / before * 100.0;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_delta(double before, double after, int precision) {
  double d = pct_delta(before, after);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f", precision, d);
  return buf;
}

}  // namespace vm1
