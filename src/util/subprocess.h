/// \file subprocess.h
/// Minimal fork/exec + Unix-domain-socket helpers for the distributed
/// window-solve backend (src/dist). Everything here is POSIX-only and
/// deliberately tiny: one blocking socketpair per worker, EINTR-safe
/// whole-buffer reads/writes, and reap-with-deadline so a wedged worker
/// can never wedge the coordinator's destructor.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <vector>

namespace vm1::subprocess {

/// A spawned child connected to us by one SOCK_STREAM Unix socket.
/// `fd` is the parent's end; the child sees its end as the fd number
/// passed in argv (the worker's `--fd=N` contract).
struct Child {
  pid_t pid = -1;
  int fd = -1;

  bool valid() const { return pid > 0 && fd >= 0; }
};

/// Forks and execs `path` with `args` (argv[0] is derived from `path`),
/// plus a final `--fd=N` argument naming the child's socket end. Returns
/// an invalid Child (and logs) if the binary is missing/not executable or
/// any syscall fails; never throws. The child's end is close-on-exec'd in
/// the parent, so worker A never inherits worker B's socket.
Child spawn_worker(const std::string& path,
                   const std::vector<std::string>& args);

/// Forks and execs `path` with `args` and no socketpair — used by the TCP
/// transport, whose workers connect back over the network instead of
/// inheriting a socket. Returns -1 (and logs) on failure; never throws.
pid_t spawn_process(const std::string& path,
                    const std::vector<std::string>& args);

/// Writes the whole buffer, retrying on EINTR/partial writes. Uses
/// send(MSG_NOSIGNAL) so a dead peer yields EPIPE instead of SIGPIPE.
/// Returns false on any unrecoverable error.
bool write_all(int fd, const void* data, std::size_t len);

/// Like write_all but reports how many bytes actually reached the kernel
/// before a failure (== len on success) — the coordinator's byte
/// accounting needs the split between delivered and dropped-mid-frame
/// bytes when a peer dies mid-write.
std::size_t write_upto(int fd, const void* data, std::size_t len);

/// Reads up to `len` bytes (one chunk, not a loop). Returns >0 bytes
/// read, 0 on orderly EOF, -1 on unrecoverable error. Retries EINTR.
long read_some(int fd, void* data, std::size_t len);

/// True if `path` names an executable regular file.
bool is_executable(const std::string& path);

/// SIGKILLs the child (if alive) and reaps it, waiting up to
/// `timeout_sec` before giving up (leaving a zombie is still better than
/// hanging the caller). Safe to call twice; closes nothing.
void kill_and_reap(pid_t pid, double timeout_sec = 2.0);

/// Non-blocking reap. Returns true if the child has exited (status
/// collected) or is already gone.
bool try_reap(pid_t pid);

}  // namespace vm1::subprocess
