#include "util/thread_pool.h"

#include <exception>

namespace vm1 {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, fn, nullptr);
}

std::size_t ThreadPool::parallel_for(std::size_t n,
                                     const std::function<void(std::size_t)>& fn,
                                     const std::atomic<bool>* cancel) {
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> invoked{0};
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, &first_error, &error_mutex, &invoked, cancel, i] {
      if (cancel && cancel->load(std::memory_order_relaxed)) return;
      invoked.fetch_add(1, std::memory_order_relaxed);
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
  return invoked.load();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vm1
