#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vm1 {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_io_mutex;

/// Leaky singleton: log lines can be emitted from atexit handlers (trace
/// flush), after a function-local static sink would have been destroyed.
LogSink& sink_slot() {
  static LogSink* s = new LogSink;
  return *s;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_io_mutex);
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_io_mutex);
  const LogSink& sink = sink_slot();
  if (sink) {
    sink(level, msg);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
  }
}

}  // namespace vm1
