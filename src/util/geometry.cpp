#include "util/geometry.h"

#include <ostream>
#include <sstream>

namespace vm1 {

std::string to_string(const Point& p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

std::string to_string(const Rect& r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << "," << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.lx << "," << r.ly << " .. " << r.hx << "," << r.hy
            << "]";
}

}  // namespace vm1
