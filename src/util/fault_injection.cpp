#include "util/fault_injection.h"

#include <cstdlib>

#include "util/hash.h"

namespace vm1::fault {

namespace {

const char* kSiteNames[kNumSites] = {
    "build_throw",     "lp_timeout",      "no_solution", "nan_objective",
    "apply_throw",     "worker_kill",     "reply_drop",  "reply_corrupt",
    "connect_timeout", "connect_refused", "partition",   "slow_loris",
};

using hash::splitmix_finalize;

Config& mutable_config() {
  static Config cfg = [] {
    const char* spec = std::getenv("VM1_FAULTS");
    return (spec && *spec) ? parse_spec(spec) : Config{};
  }();
  return cfg;
}

}  // namespace

const char* to_string(Site s) {
  int i = static_cast<int>(s);
  return (i >= 0 && i < kNumSites) ? kSiteNames[i] : "?";
}

Config parse_spec(const std::string& spec) {
  Config cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("VM1_FAULTS: entry '" + entry +
                                  "' is not key=value");
    }
    std::string key = entry.substr(0, eq);
    std::string val = entry.substr(eq + 1);
    char* parse_end = nullptr;
    if (key == "seed") {
      cfg.seed = std::strtoull(val.c_str(), &parse_end, 0);
      if (!parse_end || *parse_end != '\0') {
        throw std::invalid_argument("VM1_FAULTS: bad seed '" + val + "'");
      }
      continue;
    }
    double rate = std::strtod(val.c_str(), &parse_end);
    if (!parse_end || *parse_end != '\0' || rate < 0 || rate > 1) {
      throw std::invalid_argument("VM1_FAULTS: rate for '" + key +
                                  "' must be a number in [0, 1], got '" +
                                  val + "'");
    }
    if (key == "rate") {
      for (double& r : cfg.rate) r = rate;
      continue;
    }
    bool known = false;
    for (int i = 0; i < kNumSites; ++i) {
      if (key == kSiteNames[i]) {
        cfg.rate[i] = rate;
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("VM1_FAULTS: unknown key '" + key + "'");
    }
  }
  return cfg;
}

const Config& config() { return mutable_config(); }

void set_config(const Config& c) { mutable_config() = c; }

bool should_fire(Site s, std::uint64_t key) {
  const Config& cfg = config();
  double rate = cfg.rate[static_cast<int>(s)];
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  std::uint64_t h = splitmix_finalize(
      splitmix_finalize(cfg.seed ^ splitmix_finalize(key)) +
      static_cast<std::uint64_t>(s));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

void maybe_throw(Site s, std::uint64_t key) {
  if (should_fire(s, key)) {
    throw InjectedFault(std::string("injected fault: ") + to_string(s));
  }
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return hash::splitmix_mix(h, v);
}

}  // namespace vm1::fault
