/// \file fault_injection.h
/// Deterministic, seed-keyed fault injection for the window-solve path.
///
/// A production DistOpt run solves up to millions of window MILPs; the
/// guardrails around that path (legality audit, fallback cascade, deadline
/// manager — see DESIGN.md "Window-solve guardrails") are only trustworthy
/// if every degradation branch is exercised regularly. This module lets
/// tests (and brave operators) force failures at well-defined sites:
///
///   kBuildThrow     window MILP construction throws
///   kLpTimeout      the window's LP/MIP wall-clock budget collapses to 0
///   kNoSolution     the branch-and-bound result is replaced by kNoSolution
///   kNanObjective   the reported MIP objective is replaced by a quiet NaN
///   kApplyThrow     applying the window solution throws mid-mutation
///
/// and, for the distributed backend (src/dist — see DESIGN.md "Distributed
/// window solving"), seven transport-layer drills keyed by the same window
/// key so the retry/fallback matrix replays deterministically:
///
///   kWorkerKill      the worker process _exit()s mid-request (crash)
///   kReplyDrop       the worker solves but never sends the reply (hang)
///   kReplyCorrupt    the reply frame's payload is bit-flipped in transit
///   kConnectTimeout  dispatching the request to a worker fails outright
///   kConnectRefused  the worker's transport connection is refused/torn
///                    down at dispatch (the peer must be re-established)
///   kPartition       the connection dies mid-frame: half the request is
///                    written, then the link is severed
///   kSlowLoris       the worker sends a few reply bytes then stalls with
///                    the connection held open (incomplete frame forever)
///
/// Whether a site fires for a given window is a pure function of
/// (config seed, site, window key): runs are reproducible bit-for-bit, do
/// not depend on thread count or scheduling, and the same spec string
/// replays the same faults on any platform.
///
/// Enable via the VM1_FAULTS environment variable, e.g.
///   VM1_FAULTS="rate=0.3,seed=42"             # all sites at 30%
///   VM1_FAULTS="no_solution=0.5,apply_throw=0.1"
/// or programmatically with set_config() (tests).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vm1::fault {

enum class Site : int {
  kBuildThrow = 0,
  kLpTimeout,
  kNoSolution,
  kNanObjective,
  kApplyThrow,
  kWorkerKill,
  kReplyDrop,
  kReplyCorrupt,
  kConnectTimeout,
  kConnectRefused,
  kPartition,
  kSlowLoris,
};
inline constexpr int kNumSites = 12;

const char* to_string(Site s);

struct Config {
  double rate[kNumSites] = {};  ///< fire probability per site
  std::uint64_t seed = 0x5eedbea7ULL;

  bool enabled() const {
    for (double r : rate) {
      if (r > 0) return true;
    }
    return false;
  }
};

/// Exception type used by throwing fault sites, so handlers can tell an
/// injected drill from a genuine error when logging.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Parses a spec of comma-separated key=value entries. Keys: `rate` (sets
/// every site), one of the site names (`build_throw`, `lp_timeout`,
/// `no_solution`, `nan_objective`, `apply_throw`, `worker_kill`,
/// `reply_drop`, `reply_corrupt`, `connect_timeout`, `connect_refused`,
/// `partition`, `slow_loris`), and `seed`. Rates
/// must be in [0, 1]. Throws std::invalid_argument on malformed input.
Config parse_spec(const std::string& spec);

/// Process-wide active config. First call reads $VM1_FAULTS (empty/unset
/// => all rates zero). Not synchronized against concurrent should_fire()
/// calls: only (re)configure while no optimizer pass is running.
const Config& config();
void set_config(const Config& c);

/// Deterministic Bernoulli draw: fires iff
/// hash(config().seed, site, key) maps below the site's rate.
bool should_fire(Site s, std::uint64_t key);

/// Throws InjectedFault when should_fire(s, key).
void maybe_throw(Site s, std::uint64_t key);

/// splitmix64-based hash combine used for window keys; stable across
/// platforms so fault schedules are portable.
std::uint64_t mix(std::uint64_t h, std::uint64_t v);

}  // namespace vm1::fault
