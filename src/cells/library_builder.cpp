#include "cells/library_builder.h"

#include <array>
#include <cassert>

namespace vm1 {
namespace {

/// Prototype pin: name, direction, ClosedM1 M1-track offset (sites), and
/// OpenM1 M0 segment [xmin, xmax] with its M0 y track.
struct ProtoPin {
  const char* name;
  PinDir dir;
  Coord x_track;
  Coord xmin, xmax;
  Coord y_off;
  double cap;
};

struct ProtoCell {
  const char* name;
  int width;
  bool sequential;
  double drive_res;
  double intrinsic;
  double leakage;
  std::vector<ProtoPin> pins;
};

// The y offsets place M0 input segments on tracks 3/6 and outputs on track
// 9 so overlapping x spans never collide on the same M0 track. ClosedM1 M1
// pin stubs span y in [3, 11] inside the 15-DBU row.
const std::vector<ProtoCell>& prototypes() {
  static const std::vector<ProtoCell> kProtos = {
      {"INV_X1", 3, false, 2.0, 1.0, 1.0,
       {{"A", PinDir::kInput, 1, 0, 1, 3, 1.0},
        {"ZN", PinDir::kOutput, 2, 1, 3, 9, 0.3}}},
      {"INV_X2", 4, false, 1.2, 0.9, 1.8,
       {{"A", PinDir::kInput, 1, 0, 1, 3, 1.8},
        {"ZN", PinDir::kOutput, 3, 1, 4, 9, 0.5}}},
      {"BUF_X1", 4, false, 1.8, 1.6, 1.4,
       {{"A", PinDir::kInput, 1, 0, 1, 3, 1.0},
        {"Z", PinDir::kOutput, 3, 2, 4, 9, 0.3}}},
      {"NAND2_X1", 4, false, 2.2, 1.2, 1.5,
       {{"A1", PinDir::kInput, 1, 0, 1, 3, 1.1},
        {"A2", PinDir::kInput, 2, 1, 2, 6, 1.1},
        {"ZN", PinDir::kOutput, 3, 2, 4, 9, 0.3}}},
      {"NAND2_X2", 5, false, 1.3, 1.1, 2.6,
       {{"A1", PinDir::kInput, 1, 0, 1, 3, 2.0},
        {"A2", PinDir::kInput, 2, 1, 2, 6, 2.0},
        {"ZN", PinDir::kOutput, 4, 2, 5, 9, 0.5}}},
      {"NOR2_X1", 4, false, 2.4, 1.3, 1.5,
       {{"A1", PinDir::kInput, 1, 0, 1, 3, 1.1},
        {"A2", PinDir::kInput, 2, 1, 2, 6, 1.1},
        {"ZN", PinDir::kOutput, 3, 2, 4, 9, 0.3}}},
      {"AOI21_X1", 5, false, 2.6, 1.5, 1.8,
       {{"A", PinDir::kInput, 1, 0, 1, 3, 1.2},
        {"B", PinDir::kInput, 2, 1, 2, 6, 1.2},
        {"C", PinDir::kInput, 3, 2, 3, 3, 1.2},
        {"ZN", PinDir::kOutput, 4, 3, 5, 9, 0.35}}},
      {"OAI21_X1", 5, false, 2.6, 1.5, 1.8,
       {{"A", PinDir::kInput, 1, 0, 1, 3, 1.2},
        {"B", PinDir::kInput, 2, 1, 2, 6, 1.2},
        {"C", PinDir::kInput, 3, 2, 3, 3, 1.2},
        {"ZN", PinDir::kOutput, 4, 3, 5, 9, 0.35}}},
      {"XOR2_X1", 6, false, 3.0, 2.2, 2.2,
       {{"A", PinDir::kInput, 1, 0, 2, 3, 1.4},
        {"B", PinDir::kInput, 3, 2, 4, 6, 1.4},
        {"Z", PinDir::kOutput, 5, 4, 6, 9, 0.4}}},
      {"MUX2_X1", 6, false, 2.8, 2.0, 2.0,
       {{"D0", PinDir::kInput, 1, 0, 1, 3, 1.2},
        {"D1", PinDir::kInput, 2, 1, 2, 6, 1.2},
        {"S", PinDir::kInput, 4, 3, 4, 3, 1.3},
        {"Z", PinDir::kOutput, 5, 4, 6, 9, 0.4}}},
      {"DFF_X1", 8, true, 2.5, 3.0, 3.5,
       {{"D", PinDir::kInput, 1, 0, 2, 3, 1.2},
        {"CK", PinDir::kInput, 3, 2, 4, 6, 1.5},
        {"Q", PinDir::kOutput, 6, 5, 8, 9, 0.4}}},
  };
  return kProtos;
}

struct VtFlavor {
  Vt vt;
  const char* suffix;
  double res_scale;
  double delay_scale;
  double leak_scale;
};

constexpr std::array<VtFlavor, 3> kVts = {{
    {Vt::kLvt, "_LVT", 0.80, 0.85, 4.0},
    {Vt::kSvt, "_SVT", 1.00, 1.00, 1.0},
    {Vt::kHvt, "_HVT", 1.30, 1.25, 0.3},
}};

PinInfo make_pin(const ProtoPin& pp, CellArch arch) {
  PinInfo pin;
  pin.name = pp.name;
  pin.dir = pp.dir;
  pin.cap = pp.cap;
  pin.y_off = pp.y_off;
  if (arch == CellArch::kOpenM1) {
    pin.xmin = pp.xmin;
    pin.xmax = pp.xmax;
    pin.x_track = (pp.xmin + pp.xmax) / 2;
    pin.shapes.push_back(
        {LayerId::kM0, Rect(pp.xmin, pp.y_off, pp.xmax, pp.y_off)});
  } else {
    // ClosedM1 and conventional: 1D vertical M1 stub on the site grid.
    pin.x_track = pp.x_track;
    pin.xmin = pin.xmax = pp.x_track;
    pin.shapes.push_back(
        {LayerId::kM1, Rect(pp.x_track, 3, pp.x_track, 11)});
  }
  return pin;
}

Cell make_filler(CellArch arch, int width) {
  Cell c;
  c.name = "FILL" + std::to_string(width);
  c.arch = arch;
  c.width_sites = width;
  c.filler = true;
  c.drive_res = 0;
  c.intrinsic_delay = 0;
  c.leakage = 0.05 * width;
  return c;
}

}  // namespace

Library build_library(CellArch arch) {
  Library lib(arch);
  for (const ProtoCell& proto : prototypes()) {
    for (const VtFlavor& vt : kVts) {
      Cell c;
      c.name = std::string(proto.name) + vt.suffix;
      c.arch = arch;
      c.width_sites = proto.width;
      c.sequential = proto.sequential;
      c.vt = vt.vt;
      c.drive_res = proto.drive_res * vt.res_scale;
      c.intrinsic_delay = proto.intrinsic * vt.delay_scale;
      c.leakage = proto.leakage * vt.leak_scale;
      for (const ProtoPin& pp : proto.pins) {
        assert(pp.x_track > 0 && pp.x_track < proto.width);
        assert(pp.xmin >= 0 && pp.xmax <= proto.width && pp.xmin < pp.xmax);
        c.pins.push_back(make_pin(pp, arch));
      }
      lib.add_cell(std::move(c));
    }
  }
  lib.add_cell(make_filler(arch, 1));
  lib.add_cell(make_filler(arch, 2));
  lib.add_cell(make_filler(arch, 4));
  return lib;
}

std::string best_filler(const Library& lib, int sites) {
  for (int w : {4, 2, 1}) {
    if (w <= sites && lib.find("FILL" + std::to_string(w)) >= 0) {
      return "FILL" + std::to_string(w);
    }
  }
  return {};
}

}  // namespace vm1
