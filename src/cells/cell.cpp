#include "cells/cell.h"

namespace vm1 {

const char* to_string(Vt vt) {
  switch (vt) {
    case Vt::kLvt:
      return "LVT";
    case Vt::kSvt:
      return "SVT";
    case Vt::kHvt:
      return "HVT";
  }
  return "?";
}

int Cell::pin_index(const std::string& pin_name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].name == pin_name) return static_cast<int>(i);
  }
  return -1;
}

const PinInfo* Cell::find_pin(const std::string& pin_name) const {
  int i = pin_index(pin_name);
  return i < 0 ? nullptr : &pins[i];
}

int Cell::output_pin() const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].dir == PinDir::kOutput) return static_cast<int>(i);
  }
  return -1;
}

Coord Cell::pin_x_track(int pin, bool flipped) const {
  const PinInfo& p = pins[pin];
  if (!flipped) return p.x_track;
  return static_cast<Coord>(width_sites) - p.x_track;
}

std::pair<Coord, Coord> Cell::pin_span(int pin, bool flipped) const {
  const PinInfo& p = pins[pin];
  if (!flipped) return {p.xmin, p.xmax};
  Coord w = static_cast<Coord>(width_sites);
  return {w - p.xmax, w - p.xmin};
}

int Library::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return static_cast<int>(cells_.size()) - 1;
}

int Library::find(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace vm1
