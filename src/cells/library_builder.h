/// \file library_builder.h
/// Generates the synthetic 7.5-track triple-Vt standard-cell libraries used
/// by all experiments, for any of the three cell architectures of the paper.
///
/// ClosedM1 cells have 1D vertical M1 signal pins placed on the site grid
/// (M1 pitch == site width), so two pins of a net can be joined by a single
/// vertical M1 segment exactly when their x tracks align. OpenM1 cells have
/// horizontal M0 pin segments; a single vertical M1 segment plus two V01
/// vias joins two pins whenever their x projections overlap. The
/// conventional 12-track architecture keeps M1 PG rails, which block
/// inter-row M1 routing entirely (used as a contrast baseline).
#pragma once

#include "cells/cell.h"

namespace vm1 {

/// Builds the full library (logic + flops + fillers, 3 Vt flavours) for the
/// given architecture.
Library build_library(CellArch arch);

/// Name of the widest filler <= `sites` wide, or empty if none fits.
/// Fillers are FILL1 / FILL2 / FILL4.
std::string best_filler(const Library& lib, int sites);

}  // namespace vm1
