/// \file cell.h
/// Standard-cell masters, pins, and libraries.
///
/// Replaces the proprietary imec 7nm ClosedM1/OpenM1 triple-Vt libraries.
/// Only the properties the paper's optimization consumes are modelled:
///  * cell width in placement sites;
///  * per-pin access geometry — for ClosedM1 the x offset of the pin's
///    vertical M1 track (pins are 1D and sit on the site grid); for OpenM1
///    the [xmin, xmax] horizontal projection of the pin's M0 segment;
///  * physical pin shapes (for the router's blockage maps);
///  * simple electrical data (input cap, drive resistance, intrinsic delay,
///    leakage) for the STA/power columns of Table 2.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tech/tech.h"
#include "util/geometry.h"

namespace vm1 {

enum class PinDir { kInput, kOutput };

/// One physical pin shape, relative to the unflipped cell origin
/// (lower-left corner of the cell).
struct PinShape {
  LayerId layer;
  Rect box;
};

/// A logical pin of a cell master.
struct PinInfo {
  std::string name;
  PinDir dir = PinDir::kInput;
  std::vector<PinShape> shapes;

  /// ClosedM1: x offset (DBU) of the pin's vertical M1 track.
  /// OpenM1: x offset of the pin's M0 segment midpoint (rounded down).
  Coord x_track = 0;
  /// Horizontal projection of the pin (equal endpoints for ClosedM1 1D pins).
  Coord xmin = 0;
  Coord xmax = 0;
  /// Vertical position of the pin inside the row (DBU from row bottom).
  Coord y_off = 0;
  /// Input capacitance (output pins: self-loading).
  double cap = 1.0;
};

/// Threshold-voltage flavour (triple-Vt library).
enum class Vt { kLvt = 0, kSvt = 1, kHvt = 2 };

const char* to_string(Vt vt);

/// A standard-cell master.
struct Cell {
  std::string name;
  CellArch arch = CellArch::kClosedM1;
  int width_sites = 1;
  bool sequential = false;
  bool filler = false;
  Vt vt = Vt::kSvt;
  std::vector<PinInfo> pins;

  /// Electrical model: delay(load) = intrinsic + drive_res * load_cap.
  double drive_res = 1.0;
  double intrinsic_delay = 1.0;
  double leakage = 1.0;

  /// Index of a pin by name; -1 if absent.
  int pin_index(const std::string& pin_name) const;
  const PinInfo* find_pin(const std::string& pin_name) const;
  /// Index of the (single) output pin; -1 for fillers.
  int output_pin() const;

  Coord width_dbu(const Tech& tech) const {
    return width_sites * tech.site_width();
  }

  /// Pin x-track offset accounting for horizontal flip (mirror about the
  /// cell's vertical center line).
  Coord pin_x_track(int pin, bool flipped) const;
  /// Pin horizontal projection [xmin, xmax] accounting for flip.
  std::pair<Coord, Coord> pin_span(int pin, bool flipped) const;
};

/// A collection of cell masters for one architecture.
class Library {
 public:
  explicit Library(CellArch arch = CellArch::kClosedM1) : arch_(arch) {}

  CellArch arch() const { return arch_; }
  int add_cell(Cell cell);
  int num_cells() const { return static_cast<int>(cells_.size()); }
  const Cell& cell(int idx) const { return cells_[idx]; }
  const std::vector<Cell>& cells() const { return cells_; }
  /// Index by master name; -1 if absent.
  int find(const std::string& name) const;

 private:
  CellArch arch_;
  std::vector<Cell> cells_;
};

}  // namespace vm1
