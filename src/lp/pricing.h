/// \file pricing.h
/// Entering-variable pricing for the revised simplex engine.
///
/// Devex (Forrest-Goldfarb) reference-framework pricing: each nonbasic
/// column carries an approximate steepest-edge weight w_j, and the entering
/// candidate maximizes z_j^2 / w_j instead of Dantzig's |z_j|. Weights are
/// updated from the pivot row (which the engine computes anyway to update
/// reduced costs), so Devex costs nothing extra per iteration yet sharply
/// cuts the pivot count on the degenerate assignment-shaped LPs the window
/// MILPs produce. The framework resets to unit weights when they have grown
/// past the trust threshold.
///
/// Dantzig pricing (largest |z_j|) is kept selectable for differential
/// testing (Options::pricing).
#pragma once

#include <vector>

namespace vm1::lp::detail {

class DevexPricing {
 public:
  /// Resets to a fresh reference framework of `ncols` unit weights.
  void reset(int ncols);

  /// Entering column by max z^2/w over eligible nonbasics, or -1 if none.
  /// Eligibility is dir_j * z_j < -tol where dir is +1 at lower bound,
  /// -1 at upper bound, 0 for basic columns.
  int choose(const std::vector<double>& zrow, const std::vector<double>& dir,
             double tol) const;

  /// Devex update after a pivot: `entering` left the nonbasic set through
  /// the pivot row whose nonbasic values are rowvals[support[0..n)] with
  /// pivot element alpha_piv; `leaving` re-enters the nonbasic set.
  /// `is_basic` masks columns (by dir == 0) that must not be touched.
  void update(int entering, int leaving, double alpha_piv,
              const double* rowvals, const int* support, int nsupport,
              const std::vector<double>& dir);

  double weight(int j) const { return w_[j]; }

 private:
  std::vector<double> w_;
};

}  // namespace vm1::lp::detail
