/// \file dense_tableau.h
/// Dense-tableau simplex engine (Engine::kDense).
///
/// This is the original OpenVM1 LP engine, extracted verbatim from
/// simplex.cpp when the revised engine (revised.h) became the default. It
/// maintains the full m x ncols tableau B^-1 A explicitly and rewrites it on
/// every pivot, which is O(m * ncols) per iteration — asymptotically the
/// wrong trade for the sparse window LPs, but a completely independent
/// implementation of the same bounded-variable primal/dual simplex. The
/// differential fuzz tests in tests/test_simplex.cpp run both engines on
/// the same instances and require identical statuses and matching
/// objectives, which is why this engine stays in the tree.
#pragma once

#include <optional>
#include <vector>

#include "lp/simplex.h"
#include "util/logging.h"

namespace vm1::lp::detail {

/// Internal dense tableau state for the bounded-variable simplex.
///
/// The problem is normalized to `A x = b, 0 <= x <= u` (variables shifted by
/// their lower bounds, >= rows negated, one slack per row, artificials added
/// for rows whose slack-basis start is infeasible).
///
/// A DenseTableau can outlive one solve: after an optimal run it stays
/// consistent (basis, beta, reduced costs), and `set_bounds_incremental` +
/// `reoptimize_dual` re-solve after bound changes without rebuilding or
/// re-running phase 1. Bound changes never touch reduced costs, so a basis
/// that was optimal stays dual feasible and the dual simplex only has to
/// repair primal feasibility — typically a handful of pivots per
/// branch-and-bound node.
class DenseTableau {
 public:
  DenseTableau(const Problem& p, const SimplexSolver::Options& opts)
      : opts_(opts), n_struct_(p.num_variables()), m_(p.num_constraints()) {}

  /// Cold path: slack/artificial start, phase 1 if needed, primal phase 2.
  Result run_cold(const Problem& p) {
    build(p);
    return run(p);
  }

  /// Warm path from an exported basis: refactorize, then dual simplex (or
  /// primal phase 2 when the basis is primal- but not dual-feasible).
  /// nullopt means the basis was unusable and the caller should cold start.
  std::optional<Result> run_from_basis(const Problem& p, const Basis& warm);

  /// Incremental interface: O(m) bound update preserving the hot basis.
  /// Returns false when the basis cannot absorb the change (variable
  /// resting at an upper bound that became infinite).
  bool set_bounds_incremental(int v, double lo, double hi);

  /// Re-optimizes the hot tableau with the dual simplex. Returns kOptimal
  /// or kInfeasible (both trustworthy), or kIterLimit when the caller
  /// should cold restart (stall, drifted solution).
  Result reoptimize_dual(const Problem& p);

  int iterations() const { return iterations_; }

 private:
  enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

  double& tab(int i, int j) {
    return tab_[static_cast<std::size_t>(i) * ncols_ + j];
  }

  void build(const Problem& p);
  Result run(const Problem& p);
  /// Rebuilds tab_/beta_ exactly from the problem and the current basis
  /// (Gauss-Jordan from a fresh copy of A), wiping accumulated pivot drift.
  /// Returns false on a singular basis.
  bool refactorize(const Problem& p);
  // Runs simplex iterations on the current cost row. Returns status.
  Status iterate(bool phase1);
  Status dual_iterate();
  void compute_zrow();
  int choose_entering(bool bland) const;
  void pivot(int row, int col);
  std::vector<double> recover_x() const;
  void export_optimal(const Problem& p, Result* res) const;

  SimplexSolver::Options opts_;
  int n_struct_;  ///< structural variable count
  int m_;         ///< constraint count
  int ncols_ = 0;
  int n_art_begin_ = 0;  ///< first artificial column
  std::vector<double> tab_;   ///< m x ncols, equals B^-1 A
  std::vector<double> beta_;  ///< basic variable values
  std::vector<double> ub_;    ///< upper bounds of normalized vars (lower = 0)
  std::vector<double> cost_;  ///< current objective (phase 1 or 2)
  std::vector<double> cost2_; ///< phase-2 objective
  std::vector<double> zrow_;  ///< reduced costs
  std::vector<int> basis_;    ///< basis_[row] = column index
  std::vector<VarState> state_;
  std::vector<double> shift_;  ///< lower bounds of structural vars
  // Row normalization chosen at build time, kept so refactorize() can
  // reproduce the exact same normalized system: row i of A was scaled by
  // sign_[i] (Ge negation) then by flip_[i] (negated so its artificial
  // enters with +1). art_row_[k] is the row of artificial column
  // n_art_begin_ + k.
  std::vector<int> sign_, flip_;
  std::vector<int> art_row_;
  std::vector<int> piv_cols_;  ///< scratch: nonzero pivot-row columns
  Timer timer_;  ///< solve wall clock, reset when iterations_ resets
  int pivots_since_refactor_ = 0;
  int iterations_ = 0;
  int dual_iterations_ = 0;
  bool need_phase1_ = false;
#ifdef VM1_LP_DEBUG
  std::vector<double> a0_, b0_;  ///< normalized system copy for checks
  void check_system(const char* tag);
#endif
};

}  // namespace vm1::lp::detail
