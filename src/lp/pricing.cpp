#include "lp/pricing.h"

#include <cmath>

namespace vm1::lp::detail {

namespace {
// Weights above this mean the reference framework has drifted far from the
// current basis; restart it (standard Devex practice).
constexpr double kResetThreshold = 1e10;
}  // namespace

void DevexPricing::reset(int ncols) { w_.assign(ncols, 1.0); }

int DevexPricing::choose(const std::vector<double>& zrow,
                         const std::vector<double>& dir, double tol) const {
  // Branch-light scan: g < -tol encodes eligibility for both bound states
  // (dir = +1 at lower wants z < -tol, dir = -1 at upper wants z > tol,
  // dir = 0 for basic columns is never eligible). The division-free
  // comparison z^2 > best * w keeps the loop auto-vectorizable.
  const int n = static_cast<int>(zrow.size());
  const double* z = zrow.data();
  const double* d = dir.data();
  const double* w = w_.data();
  int best = -1;
  double best_ratio = 0;
  for (int j = 0; j < n; ++j) {
    const double g = d[j] * z[j];
    const double zz = z[j] * z[j];
    if (g < -tol && zz > best_ratio * w[j]) {
      best_ratio = zz / w[j];
      best = j;
    }
  }
  return best;
}

void DevexPricing::update(int entering, int leaving, double alpha_piv,
                          const double* rowvals, const int* support,
                          int nsupport, const std::vector<double>& dir) {
  double wq = w_[entering];
  double inv2 = 1.0 / (alpha_piv * alpha_piv);
  double wl = wq * inv2;
  if (wl > kResetThreshold) {
    reset(static_cast<int>(w_.size()));
    return;
  }
  for (int s = 0; s < nsupport; ++s) {
    int j = support[s];
    if (j == entering || dir[j] == 0.0) continue;  // basic: no weight
    double a = rowvals[j];
    double cand = a * a * wl;
    if (cand > w_[j]) w_[j] = cand;
  }
  w_[leaving] = wl > 1.0 ? wl : 1.0;
}

}  // namespace vm1::lp::detail
