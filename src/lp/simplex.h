/// \file simplex.h
/// Dense bounded-variable primal simplex LP solver.
///
/// This is the LP engine underneath the branch-and-bound MILP solver
/// (src/milp) that OpenVM1 uses in place of the paper's CPLEX 12.6.3.
/// Window MILP instances are small (hundreds of variables), so a dense
/// two-phase tableau simplex with upper-bounded variables is both simple
/// and fast enough; correctness is validated against brute-force vertex
/// enumeration in the test suite.
///
/// Conventions:
///  * minimization;
///  * every variable has a finite lower bound; upper bounds may be
///    +infinity (vm1::lp::kInf);
///  * constraints are `sum a_j x_j  (<= | >= | ==)  rhs`.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace vm1::lp {

/// Infinity marker for variable upper bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
};

const char* to_string(Status s);

/// One linear constraint: terms (var index, coefficient), sense, rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::kLe;
  double rhs = 0;
};

/// An LP in natural (row) form. Build with add_variable/add_constraint,
/// then hand to SimplexSolver::solve.
class Problem {
 public:
  /// Adds a variable with bounds [lo, hi] and objective coefficient `cost`.
  /// Requires lo finite and lo <= hi. Returns the variable index.
  int add_variable(double lo, double hi, double cost, std::string name = "");

  /// Adds a constraint. Term variable indices must be valid. Duplicate
  /// indices within one constraint are allowed (coefficients accumulate).
  void add_constraint(std::vector<std::pair<int, double>> terms, Sense sense,
                      double rhs);

  int num_variables() const { return static_cast<int>(lo_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  double lower_bound(int v) const { return lo_[v]; }
  double upper_bound(int v) const { return hi_[v]; }
  double cost(int v) const { return cost_[v]; }
  const std::string& name(int v) const { return names_[v]; }
  const Constraint& constraint(int i) const { return rows_[i]; }

  /// Overwrites a variable's bounds (used by branch-and-bound to fix
  /// binaries). Requires lo <= hi.
  void set_bounds(int v, double lo, double hi);

  /// Evaluates the objective at x.
  double objective_value(const std::vector<double>& x) const;

  /// Returns the largest violation of any constraint or bound at x
  /// (0 when feasible).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> lo_, hi_, cost_;
  std::vector<std::string> names_;
  std::vector<Constraint> rows_;
};

struct Result {
  Status status = Status::kInfeasible;
  double objective = 0;
  std::vector<double> x;  ///< variable values (size = num_variables)
  int iterations = 0;
};

/// Two-phase dense tableau simplex with bounded variables.
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 200000;
    /// Wall-clock budget; <= 0 means unlimited. Exceeding it returns
    /// kIterLimit (callers treat it as truncation).
    double time_limit_sec = 0;
    double tol = 1e-7;        ///< feasibility / optimality tolerance
    double pivot_tol = 1e-9;  ///< minimum |pivot| accepted
  };

  SimplexSolver() : opts_() {}
  explicit SimplexSolver(const Options& opts) : opts_(opts) {}

  Result solve(const Problem& p) const;

 private:
  Options opts_;
};

}  // namespace vm1::lp
