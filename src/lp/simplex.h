/// \file simplex.h
/// Bounded-variable simplex LP solver (primal two-phase + dual).
///
/// This is the LP engine underneath the branch-and-bound MILP solver
/// (src/milp) that OpenVM1 uses in place of the paper's CPLEX 12.6.3.
/// Two engines share one public surface (SimplexSolver::Options::engine):
///  * kRevised (default): revised simplex over a product-form basis
///    factorization — Markowitz-ordered sparse LU of the basis, rank-1 eta
///    updates per pivot, Devex pricing, shared CSC/CSR constraint columns
///    (see DESIGN.md "LP/MILP solver internals"). A pivot costs O(nnz)
///    instead of rewriting the whole tableau, which is what finally makes a
///    warm basis nearly free;
///  * kDense: the original dense-tableau engine, kept as the slow,
///    independently-implemented oracle for differential testing.
///
/// Two solve paths:
///  * cold: two-phase primal from the slack basis (SimplexSolver::solve);
///  * warm: dual simplex re-optimization from a previous optimal basis
///    after bound changes — either via an exported Basis
///    (SimplexSolver::solve(p, &basis)) or by keeping the factorization hot
///    across a sequence of bound changes (IncrementalSimplex), which is
///    how branch-and-bound dives without re-running phase 1 per node.
///
/// Conventions:
///  * minimization;
///  * every variable has a finite lower bound; upper bounds may be
///    +infinity (vm1::lp::kInf);
///  * constraints are `sum a_j x_j  (<= | >= | ==)  rhs`.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lp/sparse.h"

namespace vm1::lp {

/// Infinity marker for variable upper bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
};

const char* to_string(Status s);

/// One linear constraint: terms (var index, coefficient), sense, rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::kLe;
  double rhs = 0;
};

/// An LP in natural (row) form. Build with add_variable/add_constraint,
/// then hand to SimplexSolver::solve.
class Problem {
 public:
  /// Adds a variable with bounds [lo, hi] and objective coefficient `cost`.
  /// Requires lo finite and lo <= hi. Returns the variable index.
  int add_variable(double lo, double hi, double cost, std::string name = "");

  /// Adds a constraint. Term variable indices must be valid. Duplicate
  /// indices within one constraint are allowed (coefficients accumulate).
  void add_constraint(std::vector<std::pair<int, double>> terms, Sense sense,
                      double rhs);

  int num_variables() const { return static_cast<int>(lo_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  double lower_bound(int v) const { return lo_[v]; }
  double upper_bound(int v) const { return hi_[v]; }
  double cost(int v) const { return cost_[v]; }
  const std::string& name(int v) const { return names_[v]; }
  const Constraint& constraint(int i) const { return rows_[i]; }

  /// Overwrites a variable's bounds (used by branch-and-bound to fix
  /// binaries). Requires lo <= hi.
  void set_bounds(int v, double lo, double hi);

  /// Evaluates the objective at x.
  double objective_value(const std::vector<double>& x) const;

  /// Returns the largest violation of any constraint or bound at x
  /// (0 when feasible).
  double max_violation(const std::vector<double>& x) const;

  /// Shared sparse (CSC + CSR) view of the constraint matrix, built lazily
  /// on first use and cached for the lifetime of this Problem's structure
  /// (add_variable/add_constraint invalidate it; set_bounds does not).
  /// Copies share the cache. The first call is not thread-safe with respect
  /// to concurrent solves of the same Problem object.
  const detail::ColumnMatrix& columns() const;

 private:
  std::vector<double> lo_, hi_, cost_;
  std::vector<std::string> names_;
  std::vector<Constraint> rows_;
  mutable std::shared_ptr<const detail::ColumnMatrix> cols_cache_;
};

/// Status of one column in a basis snapshot. Columns live in the solver's
/// normalized space: [0, n) structural variables, [n, n+m) row slacks.
enum class BasisState : unsigned char { kBasic, kAtLower, kAtUpper };

/// A reusable simplex basis: which column is basic in each row plus the
/// bound each nonbasic column rests at. Captured from an optimal solve and
/// fed back (after bound changes) to skip phase 1 entirely — the dual
/// simplex repairs primal feasibility while reduced costs stay valid.
struct Basis {
  std::vector<int> basic;         ///< size m: basic column per row
  std::vector<BasisState> state;  ///< size n + m

  bool empty() const { return basic.empty(); }
};

struct Result {
  Status status = Status::kInfeasible;
  double objective = 0;
  std::vector<double> x;  ///< variable values (size = num_variables)
  int iterations = 0;       ///< total simplex pivots (primal + dual)
  int dual_iterations = 0;  ///< pivots spent in the dual simplex
  /// True when the solve re-optimized from a warm basis without phase 1.
  bool warm_start_used = false;
  /// Optimal basis (empty when not optimal or when an artificial variable
  /// remained basic, which makes the basis non-reusable).
  Basis basis;
  /// Reduced costs of the structural variables at the optimum (empty when
  /// not optimal). Nonnegative for variables at lower bound, nonpositive
  /// at upper bound — used for reduced-cost fixing in branch-and-bound.
  std::vector<double> reduced_cost;
};

/// Which simplex implementation runs underneath the public surface.
enum class Engine : unsigned char {
  kRevised,  ///< sparse factorization + eta updates (default, fast)
  kDense,    ///< dense tableau (differential-testing oracle)
};

/// Entering-variable rule for the revised engine (the dense oracle always
/// prices Dantzig-style).
enum class Pricing : unsigned char {
  kDevex,    ///< reference-framework steepest-edge approximation (default)
  kDantzig,  ///< largest reduced cost; for differential tests
};

const char* to_string(Engine e);

/// Two-phase simplex with bounded variables.
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 200000;
    /// Wall-clock budget; <= 0 means unlimited. Exceeding it returns
    /// kIterLimit (callers treat it as truncation).
    double time_limit_sec = 0;
    double tol = 1e-7;        ///< feasibility / optimality tolerance
    double pivot_tol = 1e-9;  ///< minimum |pivot| accepted
    Engine engine = Engine::kRevised;
    Pricing pricing = Pricing::kDevex;
    /// Revised engine: update etas tolerated before a scheduled
    /// refactorization. 0 means automatic (scales with the row count in
    /// eta-file mode; an order of magnitude longer in explicit-inverse
    /// mode, where walks don't grow with the update count). Consistency
    /// failures always force an immediate refactorization regardless of
    /// this interval.
    int refactor_interval = 0;
    /// Revised engine: bases with at most this many rows collapse the
    /// factorization into an explicit dense B^-1 updated in place per
    /// pivot (contiguous rank-1 outer products; no eta chain to walk).
    /// Larger bases keep the sparse eta file. 0 forces eta-file mode
    /// everywhere (used by the differential tests).
    int dense_inverse_dim = 256;
  };

  SimplexSolver() : opts_() {}
  explicit SimplexSolver(const Options& opts) : opts_(opts) {}

  /// Cold solve: two-phase primal from the slack basis.
  Result solve(const Problem& p) const;

  /// Warm solve: refactorizes `warm` (a basis exported from a previous
  /// optimal solve of a problem with the same rows/columns, possibly with
  /// different variable bounds) and re-optimizes with the dual simplex.
  /// Falls back to the primal (and ultimately to a cold start) when the
  /// basis is singular or not dual feasible. `warm` may be null.
  Result solve(const Problem& p, const Basis* warm) const;

 private:
  Options opts_;
};

/// Re-optimizing solver that owns a mutable copy of one Problem and keeps
/// the basis (factorization or dense tableau, per Options::engine) hot
/// across a sequence of bound changes. This is the branch-and-bound
/// workhorse: a child node differs from its parent by one integer-variable
/// bound, so `set_bounds` + `solve` costs a handful of dual pivots instead
/// of a full phase-1 + phase-2 rebuild. All per-solve scratch lives in a
/// reusable SolveWorkspace inside the engine core, so repeated solves do
/// not touch the allocator.
class IncrementalSimplex {
 public:
  IncrementalSimplex(const Problem& p, const SimplexSolver::Options& opts);
  ~IncrementalSimplex();

  IncrementalSimplex(const IncrementalSimplex&) = delete;
  IncrementalSimplex& operator=(const IncrementalSimplex&) = delete;

  /// The owned problem at its current bounds.
  const Problem& problem() const { return prob_; }

  /// Overwrites variable v's bounds (original, unshifted space). When the
  /// tableau is hot this is an O(m) incremental update that preserves the
  /// basis; otherwise it only records the new bounds.
  void set_bounds(int v, double lo, double hi);

  /// Re-optimizes at the current bounds: dual simplex from the previous
  /// optimal basis when the tableau is hot, full two-phase primal
  /// otherwise. A dual stall or a drifted solution triggers an automatic
  /// cold restart, so results match a fresh solve.
  Result solve();

  /// Discards the hot tableau; the next solve is a cold start.
  void invalidate();

  // Observability counters (accumulated across solve() calls).
  int warm_solves() const { return warm_solves_; }    ///< phase-1 solves avoided
  int cold_solves() const { return cold_solves_; }    ///< full rebuilds
  int dual_pivots() const { return dual_pivots_; }

 private:
  struct Impl;
  Problem prob_;
  SimplexSolver::Options opts_;
  std::unique_ptr<Impl> impl_;
  bool hot_ = false;
  int warm_solves_ = 0;
  int cold_solves_ = 0;
  int dual_pivots_ = 0;
};

}  // namespace vm1::lp
