#include "lp/revised.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace vm1::lp::detail {

namespace {
// Relative disagreement tolerated between the FTRANed pivot element and the
// BTRANed one before the factorization is declared drifted and rebuilt.
constexpr double kConsistencyTol = 1e-7;
// Residual bound for trusting a verdict against the original matrix.
constexpr double kVerifyTol = 1e-6;
}  // namespace

void SolveWorkspace::ensure(int m, int ncols) {
  if (static_cast<int>(alpha.size()) < m) {
    alpha.resize(m);
    rho.resize(m);
    d.resize(m);
    y.resize(m);
    relabel.resize(m);
  }
  if (static_cast<int>(rowvals.size()) < ncols) {
    rowvals.resize(ncols);
    col_stamp.resize(ncols, 0);
  }
}

RevisedCore::RevisedCore(const Problem& p, const SimplexSolver::Options& opts)
    : opts_(opts),
      A_(&p.columns()),
      n_struct_(p.num_variables()),
      m_(p.num_constraints()) {
  dense_inv_ = m_ > 0 && m_ <= opts.dense_inverse_dim;
  // In eta-file mode long intervals grow the file (FTRAN/BTRAN walk every
  // eta), so the automatic choice is a flat budget plus slack for bigger
  // bases. The explicit inverse has no chain to walk — refactorization is
  // then purely numerical hygiene and the interval stretches accordingly.
  // Per-pivot consistency checks force an immediate rebuild on drift
  // regardless of the interval.
  refactor_interval_ = opts.refactor_interval > 0 ? opts.refactor_interval
                       : dense_inv_               ? 4096
                                                  : 128 + 2 * m_;
}

void RevisedCore::size_for(int nart) {
  n_art_begin_ = n_struct_ + m_;
  ncols_ = n_art_begin_ + nart;
  beta_.assign(m_, 0.0);
  ub_.assign(ncols_, kInf);
  cost2_.assign(ncols_, 0.0);
  zrow_.assign(ncols_, 0.0);
  dir_.assign(ncols_, 1.0);
  basis_.assign(m_, -1);
  state_.assign(ncols_, VarState::kAtLower);
  ws_.ensure(m_, ncols_);
}

void RevisedCore::set_state(int j, VarState s) {
  state_[j] = s;
  dir_[j] = (s == VarState::kAtLower) ? 1.0
            : (s == VarState::kAtUpper) ? -1.0
                                        : 0.0;
}

void RevisedCore::load_column(int j, double* x) const {
  std::fill(x, x + m_, 0.0);
  if (j < n_struct_) {
    for (int e = A_->col_ptr[j]; e < A_->col_ptr[j + 1]; ++e) {
      x[A_->row_idx[e]] = A_->val[e];
    }
  } else if (j < n_art_begin_) {
    x[j - n_struct_] = 1.0;
  } else {
    const int k = j - n_art_begin_;
    x[art_row_[k]] = art_sign_[k];
  }
}

void RevisedCore::ftran_column(int j) {
  load_column(j, ws_.alpha.data());
  factor_.ftran(ws_.alpha.data());
}

void RevisedCore::gather_pivot_row(int r) {
  double* rho = ws_.rho.data();
  std::fill(rho, rho + m_, 0.0);
  rho[r] = 1.0;
  factor_.btran(rho);

  const int gen = ++ws_.stamp_gen;
  ws_.support.clear();
  double* rv = ws_.rowvals.data();
  int* stamp = ws_.col_stamp.data();
  auto touch = [&](int j) -> double& {
    if (stamp[j] != gen) {
      stamp[j] = gen;
      rv[j] = 0.0;
      ws_.support.push_back(j);
    }
    return rv[j];
  };
  for (int i = 0; i < m_; ++i) {
    const double ri = rho[i];
    if (ri == 0.0) continue;
    for (int e = A_->row_ptr[i]; e < A_->row_ptr[i + 1]; ++e) {
      touch(A_->col_idx[e]) += ri * A_->rval[e];
    }
    touch(n_struct_ + i) += ri;  // slack column of row i is +e_i
  }
  const int nart = ncols_ - n_art_begin_;
  for (int k = 0; k < nart; ++k) {
    const double ri = rho[art_row_[k]];
    if (ri == 0.0) continue;
    touch(n_art_begin_ + k) += art_sign_[k] * ri;
  }
}

bool RevisedCore::refactorize() {
  static obs::Counter& refactorizations = obs::counter("lp.refactorizations");
  static obs::Histogram& refactor_sec = obs::histogram("lp.refactorize_sec");
  refactorizations.add();
  obs::ScopedTimer st(refactor_sec);

  ws_.cols.clear();
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[i];
    if (j < n_struct_) {
      for (int e = A_->col_ptr[j]; e < A_->col_ptr[j + 1]; ++e) {
        ws_.cols.push(A_->row_idx[e], A_->val[e]);
      }
    } else if (j < n_art_begin_) {
      ws_.cols.push(j - n_struct_, 1.0);
    } else {
      const int k = j - n_art_begin_;
      ws_.cols.push(art_row_[k], art_sign_[k]);
    }
    ws_.cols.close_column();
  }
  if (!factor_.factorize(ws_.cols, opts_.pivot_tol)) return false;
  if (dense_inv_) factor_.collapse();
  // Relabel basis slots onto their factorization pivot rows so FTRAN output
  // is row-indexed directly (column k of the basis was assigned pivot row
  // slot_row[k]).
  std::copy(basis_.begin(), basis_.end(), ws_.relabel.begin());
  const std::vector<int>& sr = factor_.slot_row();
  for (int k = 0; k < m_; ++k) basis_[sr[k]] = ws_.relabel[k];
  return true;
}

bool RevisedCore::refresh() {
  if (!refactorize()) return false;
  recompute_beta();
  recompute_zrow();
  return true;
}

void RevisedCore::compute_bprime(double* d) const {
  for (int i = 0; i < m_; ++i) d[i] = A_->rhs_norm[i];
  for (int j = 0; j < n_struct_; ++j) {
    const double s = shift_[j];
    if (s == 0.0) continue;
    for (int e = A_->col_ptr[j]; e < A_->col_ptr[j + 1]; ++e) {
      d[A_->row_idx[e]] -= A_->val[e] * s;
    }
  }
}

void RevisedCore::recompute_beta() {
  double* d = ws_.d.data();
  compute_bprime(d);
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] != VarState::kAtUpper) continue;
    const double u = ub_[j];
    if (u == 0.0) continue;
    if (j < n_struct_) {
      for (int e = A_->col_ptr[j]; e < A_->col_ptr[j + 1]; ++e) {
        d[A_->row_idx[e]] -= A_->val[e] * u;
      }
    } else if (j < n_art_begin_) {
      d[j - n_struct_] -= u;
    }
    // Artificials are never nonbasic at a finite nonzero upper bound.
  }
  factor_.ftran(d);
  for (int i = 0; i < m_; ++i) beta_[i] = d[i];
}

void RevisedCore::recompute_zrow() {
  double* y = ws_.y.data();
  for (int i = 0; i < m_; ++i) y[i] = cost_[basis_[i]];
  factor_.btran(y);
  for (int j = 0; j < n_struct_; ++j) {
    double z = cost_[j];
    for (int e = A_->col_ptr[j]; e < A_->col_ptr[j + 1]; ++e) {
      z -= y[A_->row_idx[e]] * A_->val[e];
    }
    zrow_[j] = z;
  }
  for (int i = 0; i < m_; ++i) zrow_[n_struct_ + i] = cost_[n_struct_ + i] - y[i];
  const int nart = ncols_ - n_art_begin_;
  for (int k = 0; k < nart; ++k) {
    zrow_[n_art_begin_ + k] =
        cost_[n_art_begin_ + k] - art_sign_[k] * y[art_row_[k]];
  }
  // Basic reduced costs are identically zero; pin them so round-off never
  // makes a basic column price as eligible.
  for (int i = 0; i < m_; ++i) zrow_[basis_[i]] = 0.0;
}

bool RevisedCore::residual_ok() {
  double* r = ws_.d.data();
  compute_bprime(r);
  auto subtract = [&](int j, double v) {
    if (v == 0.0) return;
    if (j < n_struct_) {
      for (int e = A_->col_ptr[j]; e < A_->col_ptr[j + 1]; ++e) {
        r[A_->row_idx[e]] -= A_->val[e] * v;
      }
    } else if (j < n_art_begin_) {
      r[j - n_struct_] -= v;
    } else {
      const int k = j - n_art_begin_;
      r[art_row_[k]] -= art_sign_[k] * v;
    }
  };
  for (int i = 0; i < m_; ++i) subtract(basis_[i], beta_[i]);
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] == VarState::kAtUpper) subtract(j, ub_[j]);
  }
  double worst = 0;
  for (int i = 0; i < m_; ++i) worst = std::max(worst, std::abs(r[i]));
  return worst <= kVerifyTol;
}

int RevisedCore::choose_entering(bool bland) const {
  if (bland) {
    for (int j = 0; j < ncols_; ++j) {
      if (dir_[j] * zrow_[j] < -opts_.tol) return j;
    }
    return -1;
  }
  if (opts_.pricing == Pricing::kDevex) {
    return devex_.choose(zrow_, dir_, opts_.tol);
  }
  // Dantzig: largest reduced-cost improvement (the dense engine's rule).
  const double* z = zrow_.data();
  const double* d = dir_.data();
  int best = -1;
  double best_score = opts_.tol;
  for (int j = 0; j < ncols_; ++j) {
    const double g = d[j] * z[j];
    if (g < -opts_.tol && -g > best_score) {
      best_score = -g;
      best = j;
    }
  }
  return best;
}

bool RevisedCore::apply_pivot(int r, int q, int leave_dir, double enter_val,
                              bool use_devex) {
  const double arq = ws_.alpha[r];
  if (!factor_.append(r, ws_.alpha.data(), opts_.pivot_tol)) return false;
  const int leaving = basis_[r];
  if (use_devex && opts_.pricing == Pricing::kDevex) {
    devex_.update(q, leaving, arq, ws_.rowvals.data(), ws_.support.data(),
                  static_cast<int>(ws_.support.size()), dir_);
  }
  // Incremental reduced-cost update over the pivot row's support:
  //   z'_j = z_j - (z_q / a_rq) * a_rj.
  const double ratio = zrow_[q] / arq;
  if (ratio != 0.0) {
    const double* rv = ws_.rowvals.data();
    for (int s : ws_.support) {
      if (dir_[s] == 0.0) continue;  // basic / pinned: stays exact zero
      zrow_[s] -= ratio * rv[s];
    }
  }
  set_state(leaving,
            leave_dir > 0 ? VarState::kAtLower : VarState::kAtUpper);
  zrow_[leaving] = -ratio;
  basis_[r] = q;
  set_state(q, VarState::kBasic);
  zrow_[q] = 0.0;
  beta_[r] = enter_val;
  return true;
}

Status RevisedCore::iterate(bool phase1) {
  recompute_zrow();
  devex_.reset(ncols_);
  int stall = 0;
  bool bland = false;
  bool fresh = false;  // the factorization was just rebuilt and still failed
  while (iterations_ < opts_.max_iterations) {
    if (opts_.time_limit_sec > 0 && (iterations_ & 127) == 0 &&
        timer_.seconds() > opts_.time_limit_sec) {
      return Status::kIterLimit;
    }
    if (factor_.updates() >= refactor_interval_) {
      if (!refresh()) return Status::kIterLimit;
    }
    const int j = choose_entering(bland);
    if (j < 0) return Status::kOptimal;
    ++iterations_;

    const double dj = dir_[j];
    ftran_column(j);
    const double* alpha = ws_.alpha.data();

    // Ratio test (identical semantics to the dense engine).
    double t_max = ub_[j];  // bound-flip distance (may be inf)
    int leave_row = -1;
    int leave_dir = 0;  // +1: leaving var hits lower; -1: hits upper
    for (int i = 0; i < m_; ++i) {
      const double e = dj * alpha[i];
      if (std::abs(e) < opts_.pivot_tol) continue;
      double t;
      int dirn;
      if (e > 0) {
        t = beta_[i] / e;
        dirn = 1;
      } else {
        if (!std::isfinite(ub_[basis_[i]])) continue;
        t = (ub_[basis_[i]] - beta_[i]) / (-e);
        dirn = -1;
      }
      if (t < 0) t = 0;
      if (t < t_max - 1e-12 ||
          (leave_row >= 0 && t < t_max + 1e-12 && bland &&
           basis_[i] < basis_[leave_row])) {
        t_max = t;
        leave_row = i;
        leave_dir = dirn;
      }
    }

    if (!std::isfinite(t_max)) {
      return phase1 ? Status::kInfeasible : Status::kUnbounded;
    }

    if (t_max <= 1e-11) {
      ++stall;
      if (stall > 2 * (m_ + ncols_)) bland = true;
    } else {
      stall = 0;
    }

    if (leave_row < 0) {
      // Bound flip: no basis change, no eta — just shift beta.
      const double t = ub_[j];
      for (int i = 0; i < m_; ++i) beta_[i] -= dj * alpha[i] * t;
      set_state(j, state_[j] == VarState::kAtLower ? VarState::kAtUpper
                                                   : VarState::kAtLower);
      continue;
    }

    const int r = leave_row;
    gather_pivot_row(r);
    const double arq = alpha[r];
    // Consistency: the FTRANed column and BTRANed row must agree on the
    // pivot element; disagreement means the eta file has drifted.
    const bool drifted =
        std::abs(rowval(j) - arq) > kConsistencyTol * std::max(1.0, std::abs(arq));
    if (drifted) {
      if (fresh) return Status::kIterLimit;
      if (!refresh()) return Status::kIterLimit;
      fresh = true;
      continue;
    }

    const double enter_val = (dj > 0) ? t_max : ub_[j] - t_max;
    if (!apply_pivot(r, j, leave_dir, enter_val, /*use_devex=*/!bland)) {
      if (fresh) return Status::kIterLimit;
      if (!refresh()) return Status::kIterLimit;
      fresh = true;
      continue;
    }
    for (int i = 0; i < m_; ++i) {
      if (i != r) beta_[i] -= dj * alpha[i] * t_max;
    }
    fresh = false;
  }
  return Status::kIterLimit;
}

/// Bounded-variable dual simplex over the factorized basis. Requires a
/// dual-feasible basis; repairs primal bound violations of basic variables
/// one leaving row at a time, exactly like the dense engine — except that a
/// pivot costs one BTRAN + one FTRAN + a sparse row gather, and an
/// infeasibility verdict is certified by an O(nnz) residual check instead of
/// a refactorization.
Status RevisedCore::dual_iterate() {
  int stall = 0;
  bool bland = false;
  bool fresh = false;
  while (iterations_ < opts_.max_iterations) {
    if (opts_.time_limit_sec > 0 && (iterations_ & 127) == 0 &&
        timer_.seconds() > opts_.time_limit_sec) {
      return Status::kIterLimit;
    }
    if (factor_.updates() >= refactor_interval_) {
      if (!refresh()) return Status::kIterLimit;
    }
    // Leaving row: basic variable with the largest bound violation.
    int r = -1;
    bool above = false;
    double worst = opts_.tol;
    for (int i = 0; i < m_; ++i) {
      const double lo_viol = -beta_[i];
      if (lo_viol > worst) {
        worst = lo_viol;
        r = i;
        above = false;
      }
      const double up = ub_[basis_[i]];
      if (std::isfinite(up)) {
        const double hi_viol = beta_[i] - up;
        if (hi_viol > worst) {
          worst = hi_viol;
          r = i;
          above = true;
        }
      }
    }
    if (r < 0) return Status::kOptimal;

    gather_pivot_row(r);

    // Entering column: dual ratio test over the pivot row's support
    // (columns outside it have a zero pivot element and can never enter).
    int best_j = -1;
    double best_ratio = kInf;
    double best_a = 0;
    const double* rv = ws_.rowvals.data();
    for (int j : ws_.support) {
      if (j >= n_art_begin_) continue;
      if (state_[j] == VarState::kBasic) continue;
      const double a = rv[j];
      const double arj = above ? -a : a;
      double ratio;
      if (state_[j] == VarState::kAtLower) {
        if (arj >= -opts_.pivot_tol) continue;
        ratio = std::max(0.0, zrow_[j]) / (-arj);
      } else {
        if (arj <= opts_.pivot_tol) continue;
        ratio = std::max(0.0, -zrow_[j]) / arj;
      }
      if (best_j < 0 || ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           (bland ? j < best_j : std::abs(a) > std::abs(best_a)))) {
        best_j = j;
        best_ratio = ratio;
        best_a = a;
      }
    }
    if (best_j < 0) {
      // No column can absorb the violation: primal infeasible — if the
      // numbers are real. Certify against the original matrix (O(nnz));
      // only a failed check costs a refactorization.
      if (residual_ok()) return Status::kInfeasible;
      if (fresh) return Status::kIterLimit;
      if (!refresh()) return Status::kIterLimit;
      fresh = true;
      continue;
    }

    ++iterations_;
    ++dual_iterations_;
    if (best_ratio <= 1e-11) {
      ++stall;
      if (stall > 2 * (m_ + ncols_)) bland = true;
    } else {
      stall = 0;
    }

    const int q = best_j;
    ftran_column(q);
    const double arq = ws_.alpha[r];
    const bool drifted =
        std::abs(rowval(q) - arq) >
            kConsistencyTol * std::max(1.0, std::abs(arq)) ||
        std::abs(arq) < opts_.pivot_tol;
    if (drifted) {
      if (fresh) return Status::kIterLimit;
      if (!refresh()) return Status::kIterLimit;
      fresh = true;
      continue;
    }

    const double dq = dir_[q];  // +1 entering from lower, -1 from upper
    const double target = above ? ub_[basis_[r]] : 0.0;
    double t = (beta_[r] - target) / (dq * arq);
    if (t < 0) t = 0;
    const double enter_val = (dq > 0) ? t : ub_[q] - t;
    if (!apply_pivot(r, q, above ? -1 : 1, enter_val, /*use_devex=*/false)) {
      if (fresh) return Status::kIterLimit;
      if (!refresh()) return Status::kIterLimit;
      fresh = true;
      continue;
    }
    const double* alpha = ws_.alpha.data();
    for (int i = 0; i < m_; ++i) {
      if (i != r) beta_[i] -= dq * alpha[i] * t;
    }
    fresh = false;
  }
  return Status::kIterLimit;
}

std::vector<double> RevisedCore::recover_x() const {
  std::vector<double> x(n_struct_);
  for (int v = 0; v < n_struct_; ++v) {
    x[v] = shift_[v] +
           (state_[v] == VarState::kAtUpper ? ub_[v] : 0.0);
  }
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[i];
    if (j < n_struct_) x[j] = shift_[j] + beta_[i];
  }
  return x;
}

/// Fills x/objective/basis/reduced costs of an optimal result. The basis is
/// exported only when no artificial column remained basic (otherwise it is
/// not expressible in the structural+slack column space).
void RevisedCore::export_optimal(const Problem& p, Result* res) const {
  res->x = recover_x();
  res->objective = p.objective_value(res->x);
  const int n_real = n_struct_ + m_;
  bool clean = true;
  for (int i = 0; i < m_; ++i) {
    if (basis_[i] >= n_real) {
      clean = false;
      break;
    }
  }
  if (clean) {
    res->basis.basic = basis_;
    res->basis.state.resize(n_real);
    for (int j = 0; j < n_real; ++j) {
      switch (state_[j]) {
        case VarState::kBasic:
          res->basis.state[j] = BasisState::kBasic;
          break;
        case VarState::kAtLower:
          res->basis.state[j] = BasisState::kAtLower;
          break;
        case VarState::kAtUpper:
          res->basis.state[j] = BasisState::kAtUpper;
          break;
      }
    }
  }
  res->reduced_cost.assign(zrow_.begin(), zrow_.begin() + n_struct_);
}

Result RevisedCore::run_cold(const Problem& p) {
  Result res;
  iterations_ = 0;
  dual_iterations_ = 0;
  timer_.reset();

  shift_.resize(n_struct_);
  for (int v = 0; v < n_struct_; ++v) shift_[v] = p.lower_bound(v);

  // Slack-basis residuals decide which rows need an artificial.
  ws_.ensure(m_, n_struct_ + m_);
  compute_bprime(ws_.d.data());
  art_row_.clear();
  art_sign_.clear();
  std::vector<double>& bprime = ws_.d;
  for (int i = 0; i < m_; ++i) {
    const double su = (p.constraint(i).sense == Sense::kEq) ? 0.0 : kInf;
    const double v = bprime[i];
    const double clamped = std::min(std::max(v, 0.0), su);
    if (std::abs(v - clamped) > opts_.tol) {
      art_row_.push_back(i);
      art_sign_.push_back(v - clamped < 0 ? -1.0 : 1.0);
    }
  }
  need_phase1_ = !art_row_.empty();
  size_for(static_cast<int>(art_row_.size()));

  for (int v = 0; v < n_struct_; ++v) {
    const double hi = p.upper_bound(v);
    ub_[v] = std::isfinite(hi) ? hi - shift_[v] : kInf;
    cost2_[v] = p.cost(v);
  }
  std::size_t next_art = 0;
  for (int i = 0; i < m_; ++i) {
    const int js = n_struct_ + i;
    ub_[js] = (p.constraint(i).sense == Sense::kEq) ? 0.0 : kInf;
    if (next_art < art_row_.size() && art_row_[next_art] == i) {
      const int ja = n_art_begin_ + static_cast<int>(next_art);
      ++next_art;
      basis_[i] = ja;
      set_state(ja, VarState::kBasic);
      set_state(js, VarState::kAtLower);
    } else {
      basis_[i] = js;
      set_state(js, VarState::kBasic);
    }
  }

  if (need_phase1_) {
    cost_.assign(ncols_, 0.0);
    for (int j = n_art_begin_; j < ncols_; ++j) cost_[j] = 1.0;
  } else {
    cost_ = cost2_;
  }
  // The starting basis is diagonal (slack +1 / artificial +-1 per row), so
  // it is loaded directly in O(m) — no elimination, and deliberately not
  // counted as a refactorization.
  {
    double* diag = ws_.y.data();
    for (int i = 0; i < m_; ++i) diag[i] = 1.0;
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      diag[art_row_[k]] = art_sign_[k];
    }
    factor_.reset_diagonal(diag, m_, dense_inv_);
    recompute_beta();
  }

  if (need_phase1_) {
    Status s = iterate(/*phase1=*/true);
    if (s == Status::kIterLimit) {
      res.status = s;
      res.iterations = iterations_;
      return res;
    }
    double infeas = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_art_begin_) infeas += beta_[i];
    }
    if (s == Status::kInfeasible || infeas > 1e-6) {
      res.status = Status::kInfeasible;
      res.iterations = iterations_;
      return res;
    }
    // Pin artificials to zero so they cannot re-enter (dir 0 also removes
    // them from pricing; a still-basic artificial keeps its zero value).
    for (int j = n_art_begin_; j < ncols_; ++j) {
      ub_[j] = 0.0;
      if (state_[j] != VarState::kBasic) {
        state_[j] = VarState::kAtLower;
        dir_[j] = 0.0;
      }
    }
  }

  cost_ = cost2_;
  Status s = iterate(/*phase1=*/false);
  res.status = s;
  res.iterations = iterations_;
  if (s != Status::kOptimal) return res;

  export_optimal(p, &res);
  return res;
}

Result RevisedCore::reoptimize_dual(const Problem& p) {
  Result res;
  iterations_ = 0;
  dual_iterations_ = 0;
  timer_.reset();
  res.warm_start_used = true;
  cost_ = cost2_;
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (attempt > 0 || !factor_.factorized()) {
      if (!refresh()) {
        res.status = Status::kIterLimit;
        return res;
      }
    } else {
      // Self-correcting warm entry: beta is recomputed from the current
      // bounds with one FTRAN (so set_bounds cost nothing), and the reduced
      // costs with one BTRAN + sparse dots, wiping incremental drift from
      // the previous solve without touching the factorization.
      recompute_beta();
      recompute_zrow();
    }
    Status s = dual_iterate();
    res.status = s;
    res.iterations = iterations_;
    res.dual_iterations = dual_iterations_;
    if (s == Status::kIterLimit) return res;
    if (s == Status::kInfeasible) return res;  // residual-certified inside
    export_optimal(p, &res);
    if (p.max_violation(res.x) <= 1e-6) return res;
    res.x.clear();
    res.basis = Basis{};
    res.reduced_cost.clear();
  }
  // Persistent violation even after refactorizing: cold restart.
  res.status = Status::kIterLimit;
  return res;
}

bool RevisedCore::set_bounds_incremental(int v, double lo, double hi) {
  assert(v >= 0 && v < n_struct_);
  // Beta is recomputed wholesale at the next solve, so only the normalized
  // bound bookkeeping changes here. A variable resting at an upper bound
  // that became infinite has no value to rest at — force a cold restart.
  if (state_[v] == VarState::kAtUpper && !std::isfinite(hi)) return false;
  shift_[v] = lo;
  ub_[v] = std::isfinite(hi) ? hi - lo : kInf;
  return true;
}

std::optional<Result> RevisedCore::run_from_basis(const Problem& p,
                                                  const Basis& warm) {
  const int n_real = n_struct_ + m_;
  if (static_cast<int>(warm.basic.size()) != m_ ||
      static_cast<int>(warm.state.size()) != n_real) {
    return std::nullopt;
  }

  iterations_ = 0;
  dual_iterations_ = 0;
  timer_.reset();
  shift_.resize(n_struct_);
  for (int v = 0; v < n_struct_; ++v) shift_[v] = p.lower_bound(v);

  art_row_.clear();
  art_sign_.clear();
  need_phase1_ = false;
  size_for(0);

  for (int v = 0; v < n_struct_; ++v) {
    const double hi = p.upper_bound(v);
    ub_[v] = std::isfinite(hi) ? hi - shift_[v] : kInf;
    cost2_[v] = p.cost(v);
  }
  for (int i = 0; i < m_; ++i) {
    ub_[n_struct_ + i] = (p.constraint(i).sense == Sense::kEq) ? 0.0 : kInf;
  }

  basis_ = warm.basic;
  for (int j = 0; j < ncols_; ++j) {
    switch (warm.state[j]) {
      case BasisState::kBasic:
        set_state(j, VarState::kBasic);
        break;
      case BasisState::kAtLower:
        set_state(j, VarState::kAtLower);
        break;
      case BasisState::kAtUpper:
        if (!std::isfinite(ub_[j])) return std::nullopt;
        set_state(j, VarState::kAtUpper);
        break;
    }
  }
  for (int i = 0; i < m_; ++i) {
    const int c = basis_[i];
    if (c < 0 || c >= ncols_ || state_[c] != VarState::kBasic) {
      return std::nullopt;
    }
  }

  if (!refactorize()) return std::nullopt;  // singular warm basis
  recompute_beta();
  cost_ = cost2_;
  recompute_zrow();

  bool dual_feasible = true;
  for (int j = 0; j < ncols_ && dual_feasible; ++j) {
    if (state_[j] == VarState::kAtLower && zrow_[j] < -10 * opts_.tol) {
      dual_feasible = false;
    } else if (state_[j] == VarState::kAtUpper && zrow_[j] > 10 * opts_.tol) {
      dual_feasible = false;
    }
  }

  if (dual_feasible) {
    Result res = reoptimize_dual(p);
    if (res.status == Status::kOptimal || res.status == Status::kInfeasible) {
      return res;
    }
    return std::nullopt;  // stall or drift: cold restart
  }

  bool primal_feasible = true;
  for (int i = 0; i < m_ && primal_feasible; ++i) {
    if (beta_[i] < -opts_.tol || beta_[i] > ub_[basis_[i]] + opts_.tol) {
      primal_feasible = false;
    }
  }
  if (primal_feasible) {
    // Bound changes that only relax can leave the basis primal feasible but
    // dual infeasible; phase 2 from here still skips phase 1.
    Status s = iterate(/*phase1=*/false);
    Result res;
    res.status = s;
    res.iterations = iterations_;
    res.warm_start_used = true;
    if (s == Status::kOptimal) {
      export_optimal(p, &res);
      if (p.max_violation(res.x) > 1e-6) return std::nullopt;
      return res;
    }
    if (s == Status::kUnbounded) return res;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace vm1::lp::detail
