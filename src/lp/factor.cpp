#include "lp/factor.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace vm1::lp::detail {

namespace {
// Entries smaller than this are dropped when storing an eta: they are
// below double round-off for the coefficient magnitudes the builders emit
// and only bloat the file.
constexpr double kDropTol = 1e-13;
}  // namespace

bool EtaFactor::factorize(const BasisColumns& cols, double pivot_tol) {
  m_ = cols.cols();
  ops_.clear();
  idx_.clear();
  val_.clear();
  factor_ops_ = 0;
  factored_ = false;
  dense_ = false;  // back to the eta file until the owner collapse()s again
  dense_updates_ = 0;
  slot_row_.assign(m_, -1);
  if (m_ == 0) {
    factored_ = true;
    return true;
  }

  // Working copy of the basis columns; elimination rewrites them in place
  // (with fill-in), so they live in per-column vectors rather than a pool.
  wcols_.resize(m_);
  row_count_.assign(m_, 0);
  row_done_.assign(m_, 0);
  col_done_.assign(m_, 0);
  for (int k = 0; k < m_; ++k) {
    auto& w = wcols_[k];
    w.clear();
    for (int e = cols.ptr[k]; e < cols.ptr[k + 1]; ++e) {
      if (cols.val[e] == 0.0) continue;
      w.emplace_back(cols.idx[e], cols.val[e]);
      ++row_count_[cols.idx[e]];
    }
  }
  acc_.assign(m_, 0.0);
  stamp_.assign(m_, 0);
  gen_ = 0;

  for (int step = 0; step < m_; ++step) {
    // Markowitz selection: among entries of active columns at active rows
    // that pass threshold partial pivoting (|v| >= 0.1 * colmax), minimize
    // (row_count - 1) * (col_count - 1); break ties on magnitude.
    long best_cost = std::numeric_limits<long>::max();
    int best_k = -1, best_row = -1;
    double best_abs = 0;
    for (int k = 0; k < m_; ++k) {
      if (col_done_[k]) continue;
      double colmax = 0;
      int cnnz = 0;
      for (const auto& [i, v] : wcols_[k]) {
        if (row_done_[i]) continue;
        ++cnnz;
        double a = std::abs(v);
        if (a > colmax) colmax = a;
      }
      if (colmax < pivot_tol) continue;  // no acceptable pivot here (yet)
      double threshold = 0.1 * colmax;
      for (const auto& [i, v] : wcols_[k]) {
        if (row_done_[i]) continue;
        double a = std::abs(v);
        if (a < threshold || a < pivot_tol) continue;
        long cost = static_cast<long>(row_count_[i] - 1) *
                    static_cast<long>(cnnz - 1);
        if (cost < best_cost || (cost == best_cost && a > best_abs)) {
          best_cost = cost;
          best_k = k;
          best_row = i;
          best_abs = a;
        }
      }
    }
    if (best_k < 0) return false;  // numerically singular basis

    const auto& v = wcols_[best_k];
    double vp = 0;
    for (const auto& [i, x] : v) {
      if (i == best_row) vp = x;
    }
    Op op;
    op.row = best_row;
    op.inv_pivot = 1.0 / vp;
    op.begin = static_cast<int>(idx_.size());
    for (const auto& [i, x] : v) {
      if (i == best_row || std::abs(x) < kDropTol) continue;
      idx_.push_back(i);
      val_.push_back(x);
    }
    op.end = static_cast<int>(idx_.size());
    slot_row_[best_k] = best_row;
    col_done_[best_k] = 1;
    // The pivot column leaves the active submatrix.
    for (const auto& [i, x] : v) {
      (void)x;
      if (!row_done_[i] && i != best_row) --row_count_[i];
    }
    row_done_[best_row] = 1;

    // Gauss-Jordan: eliminate best_row from every remaining active column
    // (scatter into a dense accumulator, gather back sparse).
    for (int k2 = 0; k2 < m_; ++k2) {
      if (col_done_[k2]) continue;
      auto& w = wcols_[k2];
      double wr = 0;
      bool has = false;
      for (const auto& [i, x] : w) {
        if (i == best_row) {
          wr = x;
          has = true;
          break;
        }
      }
      if (!has || wr == 0.0) continue;
      double t = wr * op.inv_pivot;
      ++gen_;
      touched_.clear();
      for (const auto& [i, x] : w) {
        stamp_[i] = gen_;
        acc_[i] = x;
        touched_.push_back(i);
      }
      for (const auto& [i, x] : v) {
        if (i == best_row) continue;
        if (stamp_[i] != gen_) {
          stamp_[i] = gen_;
          acc_[i] = 0.0;
          touched_.push_back(i);
          if (!row_done_[i]) ++row_count_[i];  // structural fill-in
        }
        acc_[i] -= t * x;
      }
      acc_[best_row] = t;
      w.clear();
      for (int i : touched_) {
        double x = acc_[i];
        if (i != best_row && x == 0.0) {
          if (!row_done_[i]) --row_count_[i];  // exact cancellation
          continue;
        }
        w.emplace_back(i, x);
      }
    }

    ops_.push_back(op);
  }
  factor_ops_ = static_cast<int>(ops_.size());
  factored_ = true;
  return true;
}

void EtaFactor::collapse() {
  inv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
  fscratch_.resize(m_);
  const int* idx = idx_.data();
  const double* val = val_.data();
  for (int c = 0; c < m_; ++c) {
    double* col = inv_.data() + static_cast<std::size_t>(c) * m_;
    col[c] = 1.0;
    for (const Op& op : ops_) {
      double t = col[op.row];
      if (t == 0.0) continue;
      t *= op.inv_pivot;
      for (int e = op.begin; e < op.end; ++e) col[idx[e]] -= val[e] * t;
      col[op.row] = t;
    }
  }
  ops_.clear();
  idx_.clear();
  val_.clear();
  factor_ops_ = 0;
  dense_ = true;
  dense_updates_ = 0;
}

void EtaFactor::reset_diagonal(const double* diag, int m, bool dense) {
  m_ = m;
  ops_.clear();
  idx_.clear();
  val_.clear();
  factor_ops_ = 0;
  dense_ = dense;
  dense_updates_ = 0;
  slot_row_.resize(m);
  for (int i = 0; i < m; ++i) slot_row_[i] = i;
  if (dense) {
    inv_.assign(static_cast<std::size_t>(m) * m, 0.0);
    fscratch_.resize(m);
    for (int i = 0; i < m; ++i) {
      inv_[static_cast<std::size_t>(i) * m + i] = 1.0 / diag[i];
    }
  } else {
    for (int i = 0; i < m; ++i) {
      Op op;
      op.row = i;
      op.inv_pivot = 1.0 / diag[i];
      op.begin = op.end = static_cast<int>(idx_.size());
      ops_.push_back(op);
    }
    factor_ops_ = static_cast<int>(ops_.size());
  }
  factored_ = true;
}

void EtaFactor::ftran(double* x) const {
  static obs::Counter& ftrans = obs::counter("lp.ftran");
  ftrans.add();
  if (dense_) {
    // y = B^-1 x as a sum of scaled inverse columns; the loads/stores are
    // contiguous and entering columns are sparse, so most j are skipped.
    double* y = fscratch_.data();
    std::fill(y, y + m_, 0.0);
    for (int j = 0; j < m_; ++j) {
      const double xj = x[j];
      if (xj == 0.0) continue;
      const double* col = inv_.data() + static_cast<std::size_t>(j) * m_;
      for (int i = 0; i < m_; ++i) y[i] += xj * col[i];
    }
    std::copy(y, y + m_, x);
    return;
  }
  const int* idx = idx_.data();
  const double* val = val_.data();
  for (const Op& op : ops_) {
    double t = x[op.row];
    if (t == 0.0) continue;  // sparse rhs: this eta cannot touch anything
    t *= op.inv_pivot;
    for (int e = op.begin; e < op.end; ++e) x[idx[e]] -= val[e] * t;
    x[op.row] = t;
  }
}

void EtaFactor::btran(double* x) const {
  static obs::Counter& btrans = obs::counter("lp.btran");
  btrans.add();
  if (dense_) {
    // (B^-T x)_j = <column j of B^-1, x>. The dual pivot row asks for
    // B^-T e_r constantly, so very sparse inputs take a strided gather
    // instead of m full dot products.
    double* y = fscratch_.data();
    int nnz = 0;
    int nz[4];
    for (int i = 0; i < m_; ++i) {
      if (x[i] == 0.0) continue;
      if (nnz == 4) {
        nnz = 5;
        break;
      }
      nz[nnz++] = i;
    }
    if (nnz <= 4) {
      for (int j = 0; j < m_; ++j) {
        const double* col = inv_.data() + static_cast<std::size_t>(j) * m_;
        double s = 0;
        for (int k = 0; k < nnz; ++k) s += col[nz[k]] * x[nz[k]];
        y[j] = s;
      }
    } else {
      for (int j = 0; j < m_; ++j) {
        const double* col = inv_.data() + static_cast<std::size_t>(j) * m_;
        double s = 0;
        for (int i = 0; i < m_; ++i) s += col[i] * x[i];
        y[j] = s;
      }
    }
    std::copy(y, y + m_, x);
    return;
  }
  const int* idx = idx_.data();
  const double* val = val_.data();
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    const Op& op = *it;
    double s = x[op.row];
    for (int e = op.begin; e < op.end; ++e) s -= val[e] * x[idx[e]];
    x[op.row] = s * op.inv_pivot;
  }
}

bool EtaFactor::append(int row, const double* alpha, double pivot_tol) {
  static obs::Counter& eta_length = obs::counter("lp.eta_length");
  double vp = alpha[row];
  if (std::abs(vp) < pivot_tol) return false;
  if (dense_) {
    // Eager product-form update: B'^-1 = E B^-1 applied column by column
    // as a rank-1 outer product. Columns with a zero pivot-row entry are
    // untouched (t == 0 leaves every element, including row `row`, as-is).
    const double inv_piv = 1.0 / vp;
    for (int c = 0; c < m_; ++c) {
      double* col = inv_.data() + static_cast<std::size_t>(c) * m_;
      const double t = col[row] * inv_piv;
      if (t == 0.0) continue;
      for (int i = 0; i < m_; ++i) col[i] -= alpha[i] * t;
      col[row] = t;
    }
    ++dense_updates_;
    return true;
  }
  Op op;
  op.row = row;
  op.inv_pivot = 1.0 / vp;
  op.begin = static_cast<int>(idx_.size());
  for (int i = 0; i < m_; ++i) {
    if (i == row || std::abs(alpha[i]) < kDropTol) continue;
    idx_.push_back(i);
    val_.push_back(alpha[i]);
  }
  op.end = static_cast<int>(idx_.size());
  ops_.push_back(op);
  eta_length.add(op.end - op.begin + 1);
  return true;
}

}  // namespace vm1::lp::detail
