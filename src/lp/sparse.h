/// \file sparse.h
/// Shared sparse view of an LP constraint matrix.
///
/// The revised simplex engine works column-wise (FTRAN of an entering
/// column) and row-wise (gathering one tableau row from a BTRANed unit
/// vector), so the matrix is stored in both CSC and CSR form. Row signs are
/// already normalized: every kGe row is negated so all rows read
/// `sum a_j x_j + slack = rhs` with slack >= 0 (slack of a kEq row is
/// pinned to zero by its bound, not by a sign).
///
/// A ColumnMatrix depends only on a Problem's *structure* (rows, terms,
/// senses) — never on bounds or costs — so one instance is built lazily per
/// Problem (Problem::columns()) and shared by every solve, including the
/// hundreds of thousands of warm re-solves branch-and-bound issues against
/// one Problem copy. Building the cache is not thread-safe; the first
/// columns() call must not race with another solve of the same Problem
/// object (no current caller shares one Problem across threads).
#pragma once

#include <vector>

namespace vm1::lp {

class Problem;

namespace detail {

/// Compressed sparse column + row storage of the sign-normalized structural
/// columns of A (slack and artificial columns are implicit unit vectors and
/// never stored).
struct ColumnMatrix {
  int rows = 0;
  int cols = 0;

  // CSC: column j occupies [col_ptr[j], col_ptr[j+1]).
  std::vector<int> col_ptr;
  std::vector<int> row_idx;
  std::vector<double> val;

  // CSR: row i occupies [row_ptr[i], row_ptr[i+1]).
  std::vector<int> row_ptr;
  std::vector<int> col_idx;
  std::vector<double> rval;

  // rhs_norm[i] = sign_i * rhs_i (the bound-independent part of b').
  std::vector<double> rhs_norm;

  long nnz() const { return static_cast<long>(val.size()); }

  /// Builds from a Problem: accumulates duplicate term indices and negates
  /// kGe rows (coefficients and rhs alike).
  static ColumnMatrix build(const Problem& p);
};

}  // namespace detail
}  // namespace vm1::lp
