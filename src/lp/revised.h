/// \file revised.h
/// Revised simplex engine (Engine::kRevised, the default).
///
/// Instead of the dense engine's explicit m x ncols tableau (rewritten in
/// full on every pivot), this engine keeps only:
///  * the shared sparse constraint columns (Problem::columns(), CSC + CSR),
///  * a product-form factorization of the current basis (EtaFactor):
///    Markowitz-ordered sparse Gauss-Jordan etas plus one rank-1 update eta
///    per pivot,
///  * the dense m-vector of basic values (beta_) and the ncols-vector of
///    reduced costs (zrow_), both updated incrementally per pivot.
///
/// A pivot therefore costs FTRAN + BTRAN + one sparse row gather — O(nnz of
/// the eta file + nnz of the pivot row) — instead of O(m * ncols). The eta
/// file grows by one eta per pivot and is reset by a refactorization, which
/// runs only when the file passes the scheduled interval or a per-pivot
/// consistency check detects drift; verdicts are validated by O(nnz)
/// residual checks against the original matrix instead of by refactorizing,
/// which is what cuts lp.refactorizations by orders of magnitude versus the
/// dense engine's refactor-to-certify policy.
///
/// Bases with at most Options::dense_inverse_dim rows additionally collapse
/// the factorization into an explicit dense B^-1 (EtaFactor::collapse):
/// pivots become contiguous rank-1 updates and FTRAN/BTRAN dense column
/// passes, so per-pivot cost no longer depends on how many pivots separate
/// refactorizations and the refactor interval stretches to a numerical
/// hygiene backstop. The cold start loads the diagonal slack/artificial
/// basis directly in O(m) without counting a refactorization at all.
///
/// Warm re-solves recompute beta (one FTRAN of the bound-adjusted rhs) and
/// the reduced costs (one BTRAN + sparse dot per column) from scratch at
/// entry, so bound changes between solves are free and numeric drift cannot
/// accumulate across a branch-and-bound dive.
#pragma once

#include <optional>
#include <vector>

#include "lp/factor.h"
#include "lp/pricing.h"
#include "lp/simplex.h"
#include "util/logging.h"

namespace vm1::lp::detail {

/// Per-solve scratch, allocated once and reused for every solve a
/// RevisedCore performs (IncrementalSimplex keeps one core hot across an
/// entire branch-and-bound dive, so repeated solves never touch the
/// allocator). All vectors are sized by ensure() at solve entry.
struct SolveWorkspace {
  std::vector<double> alpha;    ///< FTRANed entering column (m)
  std::vector<double> rho;      ///< BTRANed pivot-row unit vector (m)
  std::vector<double> rowvals;  ///< gathered pivot tableau row (ncols)
  std::vector<int> support;     ///< nonzero columns of rowvals
  std::vector<int> col_stamp;   ///< rowvals validity stamps (ncols)
  std::vector<double> d;        ///< rhs / residual workspace (m)
  std::vector<double> y;        ///< dual prices workspace (m)
  std::vector<int> relabel;     ///< basis relabeling scratch (m)
  BasisColumns cols;            ///< basis assembly for refactorization
  int stamp_gen = 0;

  void ensure(int m, int ncols);
};

/// The engine proper: one instance per SimplexSolver::solve call, or one
/// long-lived instance inside IncrementalSimplex. Mirrors the DenseTableau
/// interface so the dispatch in simplex.cpp is symmetric. The Problem passed
/// to the constructor must outlive the core and must not gain variables or
/// constraints afterwards (bound changes are fine).
class RevisedCore {
 public:
  RevisedCore(const Problem& p, const SimplexSolver::Options& opts);

  /// Cold path: slack/artificial start, phase 1 if needed, primal phase 2.
  Result run_cold(const Problem& p);

  /// Warm path from an exported basis: factorize, then dual simplex (or
  /// primal phase 2 when the basis is primal- but not dual-feasible).
  /// nullopt means the basis was unusable and the caller should cold start.
  std::optional<Result> run_from_basis(const Problem& p, const Basis& warm);

  /// Incremental interface: records the new bounds; beta is recomputed from
  /// scratch (one FTRAN) at the next reoptimize_dual, so this is O(1).
  /// Returns false when the basis cannot absorb the change (variable
  /// resting at an upper bound that became infinite).
  bool set_bounds_incremental(int v, double lo, double hi);

  /// Re-optimizes the hot basis with the dual simplex. Returns kOptimal
  /// or kInfeasible (both trustworthy), or kIterLimit when the caller
  /// should cold restart (stall, drifted solution, singular basis).
  Result reoptimize_dual(const Problem& p);

  int iterations() const { return iterations_; }

 private:
  enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

  void size_for(int nart);
  void set_state(int j, VarState s);
  /// Scatters normalized column j (structural / slack / artificial) into
  /// dense x of length m (zero-filled first).
  void load_column(int j, double* x) const;
  /// ws_.alpha := B^-1 A_j.
  void ftran_column(int j);
  /// Gathers tableau pivot row r into ws_.rowvals / ws_.support via
  /// rho = B^-T e_r and the CSR rows of its support.
  void gather_pivot_row(int r);
  double rowval(int j) const {
    return ws_.col_stamp[j] == ws_.stamp_gen ? ws_.rowvals[j] : 0.0;
  }

  /// Refactorizes the current basis (assemble columns, Markowitz factorize,
  /// relabel slots to pivot rows). False on a singular basis.
  bool refactorize();
  /// refactorize() + recompute beta and zrow. False on a singular basis.
  bool refresh();
  /// ws_.d := b' = rhs_norm - A * shift (normalized rhs at current shifts).
  void compute_bprime(double* d) const;
  /// beta := B^-1 (b' - sum_{j at upper} A_j ub_j), row-indexed.
  void recompute_beta();
  /// zrow := c - c_B' B^-1 A under the current cost_ row (exact zeros on
  /// basic columns).
  void recompute_zrow();
  /// O(nnz) check that the current basic solution satisfies A x' = b'
  /// against the *original* matrix — validates infeasible verdicts without
  /// refactorizing.
  bool residual_ok();

  int choose_entering(bool bland) const;
  /// Shared pivot bookkeeping once (r, q) is fixed and ws_.alpha /
  /// ws_.rowvals are loaded: eta append, incremental zrow update, state and
  /// basis flips. beta is updated by the caller (primal and dual move it
  /// differently). Returns false when the eta pivot is numerically unusable.
  bool apply_pivot(int r, int q, int leave_dir, double enter_val,
                   bool use_devex);

  // Runs primal simplex iterations on the current cost row.
  Status iterate(bool phase1);
  Status dual_iterate();
  std::vector<double> recover_x() const;
  void export_optimal(const Problem& p, Result* res) const;

  SimplexSolver::Options opts_;
  const ColumnMatrix* A_;  ///< shared sparse columns (owned by the Problem)
  int n_struct_;
  int m_;
  int ncols_ = 0;
  int n_art_begin_ = 0;
  int refactor_interval_ = 0;
  bool dense_inv_ = false;  ///< collapse factorizations to explicit B^-1

  std::vector<double> beta_;   ///< basic values, indexed by row
  std::vector<double> ub_;     ///< normalized upper bounds (lower = 0)
  std::vector<double> cost_;   ///< current objective (phase 1 or 2)
  std::vector<double> cost2_;  ///< phase-2 objective
  std::vector<double> zrow_;   ///< reduced costs
  std::vector<double> dir_;    ///< +1 at lower, -1 at upper, 0 basic/pinned
  std::vector<int> basis_;     ///< basis_[row] = column index
  std::vector<VarState> state_;
  std::vector<double> shift_;  ///< lower bounds of structural vars
  std::vector<int> art_row_;   ///< row of artificial column n_art_begin_+k
  std::vector<double> art_sign_;  ///< its unit coefficient (+1 / -1)

  EtaFactor factor_;
  DevexPricing devex_;
  SolveWorkspace ws_;
  Timer timer_;  ///< solve wall clock, reset when iterations_ resets
  int iterations_ = 0;
  int dual_iterations_ = 0;
  bool need_phase1_ = false;
};

}  // namespace vm1::lp::detail
