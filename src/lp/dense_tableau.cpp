#include "lp/dense_tableau.h"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace vm1::lp::detail {

#ifdef VM1_LP_DEBUG
void DenseTableau::check_system(const char* tag) {
  std::vector<double> xn(ncols_, 0.0);
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] == VarState::kAtUpper) xn[j] = ub_[j];
  }
  for (int i = 0; i < m_; ++i) xn[basis_[i]] = beta_[i];
  double worst = 0;
  for (int i = 0; i < m_; ++i) {
    double lhs = 0;
    for (int j = 0; j < ncols_; ++j) {
      lhs += a0_[static_cast<std::size_t>(i) * ncols_ + j] * xn[j];
    }
    worst = std::max(worst, std::abs(lhs - b0_[i]));
  }
  std::fprintf(stderr, "[lp] %s: system residual %g\n", tag, worst);
}
#endif

void DenseTableau::build(const Problem& p) {
  // Column layout: [0, n_struct) structural, [n_struct, n_struct+m) slacks,
  // then artificials for initially-infeasible rows.
  // Rows are normalized so that Ge becomes Le (negated); Eq keeps slack with
  // upper bound zero.
  iterations_ = 0;
  dual_iterations_ = 0;
  timer_.reset();
  shift_.resize(n_struct_);
  for (int v = 0; v < n_struct_; ++v) shift_[v] = p.lower_bound(v);

  // Count artificials by computing the slack-start residual per row.
  std::vector<double> rhs_norm(m_);
  std::vector<double> slack_ub(m_);
  std::vector<int> sign(m_, 1);
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = p.constraint(i);
    double b = row.rhs;
    for (const auto& [v, a] : row.terms) b -= a * shift_[v];
    int s = (row.sense == Sense::kGe) ? -1 : 1;
    sign[i] = s;
    rhs_norm[i] = s * b;
    slack_ub[i] = (row.sense == Sense::kEq) ? 0.0 : kInf;
  }

  std::vector<int> art_rows;
  for (int i = 0; i < m_; ++i) {
    // Slack starts at clamp(rhs, 0, slack_ub); residual needs an artificial.
    double v = rhs_norm[i];
    double clamped = std::min(std::max(v, 0.0), slack_ub[i]);
    if (std::abs(v - clamped) > opts_.tol) art_rows.push_back(i);
  }
  need_phase1_ = !art_rows.empty();
  sign_ = sign;
  flip_.assign(m_, 1);
  art_row_ = art_rows;
  pivots_since_refactor_ = 0;

  n_art_begin_ = n_struct_ + m_;
  ncols_ = n_art_begin_ + static_cast<int>(art_rows.size());
  tab_.assign(static_cast<std::size_t>(m_) * ncols_, 0.0);
  ub_.assign(ncols_, kInf);
  cost2_.assign(ncols_, 0.0);
  state_.assign(ncols_, VarState::kAtLower);
  beta_.assign(m_, 0.0);
  basis_.assign(m_, -1);

  for (int v = 0; v < n_struct_; ++v) {
    double hi = p.upper_bound(v);
    ub_[v] = std::isfinite(hi) ? hi - shift_[v] : kInf;
    cost2_[v] = p.cost(v);
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = p.constraint(i);
    for (const auto& [v, a] : row.terms) tab(i, v) += sign[i] * a;
    tab(i, n_struct_ + i) = 1.0;
    ub_[n_struct_ + i] = slack_ub[i];
  }

  // Initial basis: slack where feasible, artificial otherwise. The basis
  // must be the identity in the tableau, so rows whose starting residual is
  // negative are negated before their artificial (coefficient +1) is added.
  int art_col = n_art_begin_;
  std::size_t next_art = 0;
  for (int i = 0; i < m_; ++i) {
    double v = rhs_norm[i];
    double clamped = std::min(std::max(v, 0.0), slack_ub[i]);
    if (next_art < art_rows.size() && art_rows[next_art] == i) {
      ++next_art;
      double resid = v - clamped;
      if (resid < 0) {
        // Negate the whole row (structural + slack coefficients and rhs)
        // so the artificial's column is +1.
        for (int j = 0; j < ncols_; ++j) tab(i, j) = -tab(i, j);
        rhs_norm[i] = -v;
        resid = -resid;
        flip_[i] = -1;
        // Slack stays at the same bound value (always 0 here: a negative
        // residual implies the slack was clamped to its lower bound).
      }
      tab(i, art_col) = 1.0;
      basis_[i] = art_col;
      beta_[i] = resid;
      state_[art_col] = VarState::kBasic;
      state_[n_struct_ + i] =
          (clamped == 0.0) ? VarState::kAtLower : VarState::kAtUpper;
      ++art_col;
    } else {
      basis_[i] = n_struct_ + i;
      beta_[i] = clamped;
      state_[n_struct_ + i] = VarState::kBasic;
    }
  }
#ifdef VM1_LP_DEBUG
  a0_ = tab_;
  b0_ = rhs_norm;
#endif
}

void DenseTableau::compute_zrow() {
  zrow_.assign(ncols_, 0.0);
  // z_j = c_j - c_B' (B^-1 A_j). tab_ holds B^-1 A.
  for (int j = 0; j < ncols_; ++j) zrow_[j] = cost_[j];
  for (int i = 0; i < m_; ++i) {
    double cb = cost_[basis_[i]];
    if (cb == 0.0) continue;
    const double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
    for (int j = 0; j < ncols_; ++j) zrow_[j] -= cb * row[j];
  }
}

int DenseTableau::choose_entering(bool bland) const {
  int best = -1;
  double best_score = opts_.tol;
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    double z = zrow_[j];
    double score = 0;
    if (state_[j] == VarState::kAtLower && z < -opts_.tol) {
      score = -z;
    } else if (state_[j] == VarState::kAtUpper && z > opts_.tol) {
      score = z;
    } else {
      continue;
    }
    if (bland) return j;  // first eligible (lowest index)
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool DenseTableau::refactorize(const Problem& p) {
  static obs::Counter& refactorizations = obs::counter("lp.refactorizations");
  refactorizations.add();
  // Rebuild the normalized system (with the *current* shifts, which track
  // bound changes) under the same row scaling build() chose.
  std::vector<double> rhs(m_);
  std::fill(tab_.begin(), tab_.end(), 0.0);
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = p.constraint(i);
    double b = row.rhs;
    for (const auto& [v, a] : row.terms) b -= a * shift_[v];
    const double s = sign_[i] * flip_[i];
    for (const auto& [v, a] : row.terms) tab(i, v) += s * a;
    tab(i, n_struct_ + i) = flip_[i];
    rhs[i] = s * b;
  }
  for (std::size_t k = 0; k < art_row_.size(); ++k) {
    tab(art_row_[k], n_art_begin_ + static_cast<int>(k)) = 1.0;
  }

  // Gauss-Jordan on the basis columns (carrying rhs): tab becomes B^-1 A.
  // The row <-> basic-variable pairing is only a permutation, so it is
  // re-derived here with full pivoting over the basis submatrix — pivoting
  // in the stored row order hits spuriously tiny pivots on triangular
  // chains even when the basis itself is well conditioned.
  std::vector<int> cols = basis_;
  std::vector<char> row_done(m_, 0);
  std::vector<int> new_basis(m_, -1);
  for (int step = 0; step < m_; ++step) {
    int br = -1, bk = -1;
    double bv = 1e-9;
    for (int k = step; k < m_; ++k) {
      for (int i = 0; i < m_; ++i) {
        if (row_done[i]) continue;
        double a = std::abs(tab(i, cols[k]));
        if (a > bv) {
          bv = a;
          br = i;
          bk = k;
        }
      }
    }
    if (br < 0) return false;  // numerically singular basis
    std::swap(cols[step], cols[bk]);
    int c = cols[step];
    row_done[br] = 1;
    new_basis[br] = c;
    double inv = 1.0 / tab(br, c);
    double* prow = &tab_[static_cast<std::size_t>(br) * ncols_];
    for (int j = 0; j < ncols_; ++j) prow[j] *= inv;
    rhs[br] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == br) continue;
      double f = tab(i, c);
      if (f == 0.0) continue;
      double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
      for (int j = 0; j < ncols_; ++j) row[j] -= f * prow[j];
      tab(i, c) = 0.0;
      rhs[i] -= f * rhs[br];
    }
  }
  basis_ = new_basis;
  beta_ = rhs;
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] != VarState::kAtUpper || ub_[j] == 0.0) continue;
    for (int i = 0; i < m_; ++i) beta_[i] -= tab(i, j) * ub_[j];
  }
  pivots_since_refactor_ = 0;
  return true;
}

void DenseTableau::pivot(int r, int c) {
  ++pivots_since_refactor_;
  double piv = tab(r, c);
  double inv = 1.0 / piv;
  double* prow = &tab_[static_cast<std::size_t>(r) * ncols_];
  // Gather the pivot row's structural nonzeros once: the window LPs keep
  // most tableau rows sparse, so the elimination loops below only touch
  // columns that can actually change. The pivot column itself is excluded
  // (its post-elimination value is exactly 0/1) so the store is done once
  // per row instead of inside the inner loop.
  piv_cols_.clear();
  for (int j = 0; j < ncols_; ++j) {
    if (prow[j] == 0.0) continue;
    prow[j] *= inv;
    if (j != c) piv_cols_.push_back(j);
  }
  prow[c] = 1.0;
  const int* pc = piv_cols_.data();
  const int npc = static_cast<int>(piv_cols_.size());
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    double f = tab(i, c);
    if (f == 0.0) continue;
    double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
    for (int e = 0; e < npc; ++e) row[pc[e]] -= f * prow[pc[e]];
    tab(i, c) = 0.0;
  }
  double fz = zrow_[c];
  if (fz != 0.0) {
    for (int e = 0; e < npc; ++e) zrow_[pc[e]] -= fz * prow[pc[e]];
    zrow_[c] = 0.0;
  }
}

Status DenseTableau::iterate(bool phase1) {
  compute_zrow();
  int stall = 0;
  bool bland = false;
  while (iterations_ < opts_.max_iterations) {
    if (opts_.time_limit_sec > 0 && (iterations_ & 127) == 0 &&
        timer_.seconds() > opts_.time_limit_sec) {
      return Status::kIterLimit;
    }
#ifdef VM1_LP_DEBUG
    check_system(phase1 ? "p1 iter" : "p2 iter");
#endif
    int j = choose_entering(bland);
    if (j < 0) return Status::kOptimal;
    ++iterations_;

    const int d = (state_[j] == VarState::kAtLower) ? 1 : -1;

    // Ratio test.
    double t_max = ub_[j];  // bound-flip distance (may be inf)
    int leave_row = -1;
    int leave_dir = 0;  // +1: leaving var hits lower; -1: hits upper
    for (int i = 0; i < m_; ++i) {
      double e = d * tab(i, j);
      if (std::abs(e) < opts_.pivot_tol) continue;
      double t;
      int dir;
      if (e > 0) {
        t = beta_[i] / e;  // basic hits its lower bound (0)
        dir = 1;
      } else {
        if (!std::isfinite(ub_[basis_[i]])) continue;
        t = (ub_[basis_[i]] - beta_[i]) / (-e);
        dir = -1;
      }
      if (t < 0) t = 0;
      if (t < t_max - 1e-12 ||
          (leave_row >= 0 && t < t_max + 1e-12 && bland &&
           basis_[i] < basis_[leave_row])) {
        t_max = t;
        leave_row = i;
        leave_dir = dir;
      }
    }

    if (!std::isfinite(t_max)) {
      return phase1 ? Status::kInfeasible : Status::kUnbounded;
    }

    if (t_max <= 1e-11) {
      ++stall;
      if (stall > 2 * (m_ + ncols_)) bland = true;
    } else {
      stall = 0;
    }

    if (leave_row < 0) {
      // Bound flip: entering variable moves to its opposite bound.
      double t = ub_[j];
      for (int i = 0; i < m_; ++i) beta_[i] -= d * tab(i, j) * t;
      state_[j] =
          (state_[j] == VarState::kAtLower) ? VarState::kAtUpper
                                            : VarState::kAtLower;
      continue;
    }

    // Basis change.
    double t = t_max;
    for (int i = 0; i < m_; ++i) beta_[i] -= d * tab(i, j) * t;
    int leaving = basis_[leave_row];
    state_[leaving] =
        (leave_dir > 0) ? VarState::kAtLower : VarState::kAtUpper;
    // Entering variable's new value relative to its lower bound.
    double enter_val = (d > 0) ? t : ub_[j] - t;
    pivot(leave_row, j);
    basis_[leave_row] = j;
    state_[j] = VarState::kBasic;
    beta_[leave_row] = enter_val;
  }
  return Status::kIterLimit;
}

/// Bounded-variable dual simplex. Requires a dual-feasible basis (reduced
/// costs of at-lower nonbasics >= 0, at-upper <= 0); repairs primal bound
/// violations of basic variables one leaving row at a time. Bound changes
/// preserve dual feasibility, which is why this is the branch-and-bound
/// re-optimization engine.
Status DenseTableau::dual_iterate() {
  cost_ = cost2_;
  compute_zrow();
  int stall = 0;
  bool bland = false;
  while (iterations_ < opts_.max_iterations) {
    if (opts_.time_limit_sec > 0 && (iterations_ & 127) == 0 &&
        timer_.seconds() > opts_.time_limit_sec) {
      return Status::kIterLimit;
    }
    // Leaving row: basic variable with the largest bound violation.
    int r = -1;
    bool above = false;
    double worst = opts_.tol;
    for (int i = 0; i < m_; ++i) {
      double lo_viol = -beta_[i];
      if (lo_viol > worst) {
        worst = lo_viol;
        r = i;
        above = false;
      }
      double up = ub_[basis_[i]];
      if (std::isfinite(up)) {
        double hi_viol = beta_[i] - up;
        if (hi_viol > worst) {
          worst = hi_viol;
          r = i;
          above = true;
        }
      }
    }
    if (r < 0) return Status::kOptimal;

    // Entering column: dual ratio test over nonbasic non-artificials.
    // arj is the pivot element in the direction that reduces the violation;
    // the min |z|/|arj| ratio keeps every reduced cost on its feasible side.
    int best_j = -1;
    double best_ratio = kInf;
    double best_a = 0;
    for (int j = 0; j < n_art_begin_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      double a = tab(r, j);
      double arj = above ? -a : a;
      double ratio;
      if (state_[j] == VarState::kAtLower) {
        if (arj >= -opts_.pivot_tol) continue;
        ratio = std::max(0.0, zrow_[j]) / (-arj);
      } else {
        if (arj <= opts_.pivot_tol) continue;
        ratio = std::max(0.0, -zrow_[j]) / arj;
      }
      if (best_j < 0 || ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           (bland ? j < best_j : std::abs(a) > std::abs(best_a)))) {
        best_j = j;
        best_ratio = ratio;
        best_a = a;
      }
    }
    // No column can absorb the violation: the primal is infeasible (the
    // dual ray certifies it), exactly like a positive phase-1 optimum.
    if (best_j < 0) return Status::kInfeasible;

    ++iterations_;
    ++dual_iterations_;
    if (best_ratio <= 1e-11) {
      ++stall;
      if (stall > 2 * (m_ + ncols_)) bland = true;
    } else {
      stall = 0;
    }

    const int d = (state_[best_j] == VarState::kAtLower) ? 1 : -1;
    double target = above ? ub_[basis_[r]] : 0.0;
    double t = (beta_[r] - target) / (d * tab(r, best_j));
    if (t < 0) t = 0;
    for (int i = 0; i < m_; ++i) {
      if (i != r) beta_[i] -= d * tab(i, best_j) * t;
    }
    int leaving = basis_[r];
    state_[leaving] = above ? VarState::kAtUpper : VarState::kAtLower;
    double enter_val = (d > 0) ? t : ub_[best_j] - t;
    pivot(r, best_j);
    basis_[r] = best_j;
    state_[best_j] = VarState::kBasic;
    beta_[r] = enter_val;
  }
  return Status::kIterLimit;
}

std::vector<double> DenseTableau::recover_x() const {
  std::vector<double> xn(ncols_, 0.0);
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] == VarState::kAtUpper) xn[j] = ub_[j];
  }
  for (int i = 0; i < m_; ++i) xn[basis_[i]] = beta_[i];
  std::vector<double> x(n_struct_);
  for (int v = 0; v < n_struct_; ++v) x[v] = shift_[v] + xn[v];
  return x;
}

/// Fills x/objective/basis/reduced costs of an optimal result. The basis is
/// exported only when no artificial column remained basic (otherwise it is
/// not expressible in the structural+slack column space).
void DenseTableau::export_optimal(const Problem& p, Result* res) const {
  res->x = recover_x();
  res->objective = p.objective_value(res->x);
  const int n_real = n_struct_ + m_;
  bool clean = true;
  for (int i = 0; i < m_; ++i) {
    if (basis_[i] >= n_real) {
      clean = false;
      break;
    }
  }
  if (clean) {
    res->basis.basic = basis_;
    res->basis.state.resize(n_real);
    for (int j = 0; j < n_real; ++j) {
      switch (state_[j]) {
        case VarState::kBasic:
          res->basis.state[j] = BasisState::kBasic;
          break;
        case VarState::kAtLower:
          res->basis.state[j] = BasisState::kAtLower;
          break;
        case VarState::kAtUpper:
          res->basis.state[j] = BasisState::kAtUpper;
          break;
      }
    }
  }
  res->reduced_cost.assign(zrow_.begin(), zrow_.begin() + n_struct_);
}

Result DenseTableau::run(const Problem& p) {
  Result res;
#ifdef VM1_LP_DEBUG
  auto report = [&](const char* tag) {
    std::vector<double> x = recover_x();
    std::fprintf(stderr, "[lp] %s: violation=%g obj=%g\n", tag,
                 p.max_violation(x), p.objective_value(x));
  };
#endif
  if (need_phase1_) {
    cost_.assign(ncols_, 0.0);
    for (int j = n_art_begin_; j < ncols_; ++j) cost_[j] = 1.0;
    Status s = iterate(/*phase1=*/true);
    if (s == Status::kIterLimit) {
      res.status = s;
      res.iterations = iterations_;
      return res;
    }
    double infeas = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_art_begin_) infeas += beta_[i];
    }
    for (int j = n_art_begin_; j < ncols_; ++j) {
      if (state_[j] == VarState::kAtUpper) infeas += ub_[j];
    }
    if (s == Status::kInfeasible || infeas > 1e-6) {
      res.status = Status::kInfeasible;
      res.iterations = iterations_;
      return res;
    }
    // Pin artificials to zero so they cannot re-enter.
    for (int j = n_art_begin_; j < ncols_; ++j) {
      ub_[j] = 0.0;
      if (state_[j] == VarState::kAtUpper) state_[j] = VarState::kAtLower;
    }
#ifdef VM1_LP_DEBUG
    report("after phase 1");
#endif
  }

  cost_ = cost2_;
  Status s = iterate(/*phase1=*/false);
  res.status = s;
  res.iterations = iterations_;
  if (s != Status::kOptimal) return res;

  export_optimal(p, &res);
  return res;
}

Result DenseTableau::reoptimize_dual(const Problem& p) {
  Result res;
  iterations_ = 0;
  dual_iterations_ = 0;
  timer_.reset();
  res.warm_start_used = true;
  // Dense tableaus drift over long pivot chains, so the hot state is
  // refactorized from the current basis every `interval` pivots, and any
  // verdict reached on a stale factorization is re-derived on a fresh one
  // before it is trusted: a drifted "optimal" over-prunes the search and a
  // drifted "infeasible" discards feasible subtrees.
  const int interval = 50 + 2 * m_;
  for (int attempt = 0; attempt < 4; ++attempt) {
    bool fresh = false;
    if (attempt > 0 || pivots_since_refactor_ > interval) {
      if (!refactorize(p)) {
        res.status = Status::kIterLimit;
        return res;
      }
      fresh = true;
    }
    Status s = dual_iterate();
    res.status = s;
    res.iterations = iterations_;
    res.dual_iterations = dual_iterations_;
    if (s == Status::kIterLimit) return res;
    if (s == Status::kInfeasible) {
      if (fresh) return res;  // certified on an exact factorization
      continue;
    }
    export_optimal(p, &res);
    if (p.max_violation(res.x) <= 1e-6) return res;
    res.x.clear();
    res.basis = Basis{};
    res.reduced_cost.clear();
  }
  // Persistent violation even after refactorizing: cold restart.
  res.status = Status::kIterLimit;
  return res;
}

bool DenseTableau::set_bounds_incremental(int v, double lo, double hi) {
  assert(v >= 0 && v < n_struct_);
  // Normalized: x = shift + x', 0 <= x' <= ub, rows A x' = b' with
  // b' = b - A*shift. The basic values are
  //   beta = B^-1 b' - sum_{j nonbasic} (B^-1 A_j) * val'_j,
  // so a bound change on v only shifts beta along column tab(:, v):
  //  * at lower (val stays at the lower bound) or basic (b' shift):
  //      beta -= tab(:,v) * (lo_new - lo_old);
  //  * at upper (val stays at the upper bound):
  //      beta -= tab(:,v) * (hi_new - hi_old).
  // Reduced costs are untouched, so dual feasibility survives.
  if (state_[v] == VarState::kAtUpper) {
    if (!std::isfinite(hi)) return false;  // cannot rest at +infinity
    double dval = hi - (shift_[v] + ub_[v]);
    if (dval != 0.0) {
      for (int i = 0; i < m_; ++i) beta_[i] -= tab(i, v) * dval;
    }
  } else {
    double ds = lo - shift_[v];
    if (ds != 0.0) {
      for (int i = 0; i < m_; ++i) beta_[i] -= tab(i, v) * ds;
    }
  }
  shift_[v] = lo;
  ub_[v] = std::isfinite(hi) ? hi - lo : kInf;
  return true;
}

std::optional<Result> DenseTableau::run_from_basis(const Problem& p,
                                                   const Basis& warm) {
  const int n_real = n_struct_ + m_;
  if (static_cast<int>(warm.basic.size()) != m_ ||
      static_cast<int>(warm.state.size()) != n_real) {
    return std::nullopt;
  }

  iterations_ = 0;
  dual_iterations_ = 0;
  timer_.reset();
  shift_.resize(n_struct_);
  for (int v = 0; v < n_struct_; ++v) shift_[v] = p.lower_bound(v);

  ncols_ = n_real;
  n_art_begin_ = n_real;
  need_phase1_ = false;
  tab_.assign(static_cast<std::size_t>(m_) * ncols_, 0.0);
  ub_.assign(ncols_, kInf);
  cost2_.assign(ncols_, 0.0);
  state_.assign(ncols_, VarState::kAtLower);
  beta_.assign(m_, 0.0);
  basis_ = warm.basic;

  for (int v = 0; v < n_struct_; ++v) {
    double hi = p.upper_bound(v);
    ub_[v] = std::isfinite(hi) ? hi - shift_[v] : kInf;
    cost2_[v] = p.cost(v);
  }
  sign_.resize(m_);
  flip_.assign(m_, 1);
  art_row_.clear();
  std::vector<double> rhs(m_);
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = p.constraint(i);
    double b = row.rhs;
    for (const auto& [v, a] : row.terms) b -= a * shift_[v];
    int s = (row.sense == Sense::kGe) ? -1 : 1;
    sign_[i] = s;
    for (const auto& [v, a] : row.terms) tab(i, v) += s * a;
    tab(i, n_struct_ + i) = 1.0;
    ub_[n_struct_ + i] = (row.sense == Sense::kEq) ? 0.0 : kInf;
    rhs[i] = s * b;
  }

  for (int j = 0; j < ncols_; ++j) {
    switch (warm.state[j]) {
      case BasisState::kBasic:
        state_[j] = VarState::kBasic;
        break;
      case BasisState::kAtLower:
        state_[j] = VarState::kAtLower;
        break;
      case BasisState::kAtUpper:
        if (!std::isfinite(ub_[j])) return std::nullopt;
        state_[j] = VarState::kAtUpper;
        break;
    }
  }
  for (int i = 0; i < m_; ++i) {
    int c = basis_[i];
    if (c < 0 || c >= ncols_ || state_[c] != VarState::kBasic) {
      return std::nullopt;
    }
  }

  // Refactorize: Gauss-Jordan pivots turn the basis columns into the
  // identity, yielding tab = B^-1 A and rhs = B^-1 b'.
  for (int r = 0; r < m_; ++r) {
    int c = basis_[r];
    double piv = tab(r, c);
    if (std::abs(piv) < 1e-9) return std::nullopt;  // singular basis
    double inv = 1.0 / piv;
    double* prow = &tab_[static_cast<std::size_t>(r) * ncols_];
    for (int j = 0; j < ncols_; ++j) prow[j] *= inv;
    rhs[r] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      double f = tab(i, c);
      if (f == 0.0) continue;
      double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
      for (int j = 0; j < ncols_; ++j) row[j] -= f * prow[j];
      tab(i, c) = 0.0;
      rhs[i] -= f * rhs[r];
    }
  }
  beta_ = rhs;
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] != VarState::kAtUpper || ub_[j] == 0.0) continue;
    for (int i = 0; i < m_; ++i) beta_[i] -= tab(i, j) * ub_[j];
  }
  pivots_since_refactor_ = 0;

  cost_ = cost2_;
  compute_zrow();
  bool dual_feasible = true;
  for (int j = 0; j < ncols_ && dual_feasible; ++j) {
    if (state_[j] == VarState::kAtLower && zrow_[j] < -10 * opts_.tol) {
      dual_feasible = false;
    } else if (state_[j] == VarState::kAtUpper && zrow_[j] > 10 * opts_.tol) {
      dual_feasible = false;
    }
  }

  if (dual_feasible) {
    Result res = reoptimize_dual(p);
    if (res.status == Status::kOptimal || res.status == Status::kInfeasible) {
      return res;
    }
    return std::nullopt;  // stall or drift: cold restart
  }

  bool primal_feasible = true;
  for (int i = 0; i < m_ && primal_feasible; ++i) {
    if (beta_[i] < -opts_.tol || beta_[i] > ub_[basis_[i]] + opts_.tol) {
      primal_feasible = false;
    }
  }
  if (primal_feasible) {
    // Bound changes that only relax can leave the basis primal feasible but
    // dual infeasible; phase 2 from here still skips phase 1.
    Status s = iterate(/*phase1=*/false);
    Result res;
    res.status = s;
    res.iterations = iterations_;
    res.warm_start_used = true;
    if (s == Status::kOptimal) {
      export_optimal(p, &res);
      if (p.max_violation(res.x) > 1e-6) return std::nullopt;
      return res;
    }
    if (s == Status::kUnbounded) return res;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace vm1::lp::detail
