#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <optional>

#include "lp/dense_tableau.h"
#include "lp/revised.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vm1::lp {

namespace {

/// Per-solve totals are bulk-added at the solve entry points; only the
/// (rare) basis refactorization counts from inside the engines.
void record_solve(const Result& r, bool warm) {
  static obs::Counter& solves = obs::counter("lp.solves");
  static obs::Counter& pivots = obs::counter("lp.pivots");
  static obs::Counter& dual_pivots = obs::counter("lp.dual_pivots");
  static obs::Counter& warm_solves = obs::counter("lp.warm_solves");
  solves.add();
  pivots.add(r.iterations);
  dual_pivots.add(r.dual_iterations);
  if (warm) warm_solves.add();
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kRevised:
      return "revised";
    case Engine::kDense:
      return "dense";
  }
  return "?";
}

int Problem::add_variable(double lo, double hi, double cost,
                          std::string name) {
  assert(std::isfinite(lo));
  assert(lo <= hi);
  cols_cache_.reset();  // structure changed
  lo_.push_back(lo);
  hi_.push_back(hi);
  cost_.push_back(cost);
  names_.push_back(std::move(name));
  return static_cast<int>(lo_.size()) - 1;
}

void Problem::add_constraint(std::vector<std::pair<int, double>> terms,
                             Sense sense, double rhs) {
  for ([[maybe_unused]] const auto& [v, a] : terms) {
    assert(v >= 0 && v < num_variables());
  }
  cols_cache_.reset();  // structure changed
  rows_.push_back(Constraint{std::move(terms), sense, rhs});
}

void Problem::set_bounds(int v, double lo, double hi) {
  assert(lo <= hi);
  lo_[v] = lo;
  hi_[v] = hi;
}

double Problem::objective_value(const std::vector<double>& x) const {
  double z = 0;
  for (int v = 0; v < num_variables(); ++v) z += cost_[v] * x[v];
  return z;
}

double Problem::max_violation(const std::vector<double>& x) const {
  double worst = 0;
  for (int v = 0; v < num_variables(); ++v) {
    worst = std::max(worst, lo_[v] - x[v]);
    if (std::isfinite(hi_[v])) worst = std::max(worst, x[v] - hi_[v]);
  }
  for (const auto& row : rows_) {
    double lhs = 0;
    for (const auto& [v, a] : row.terms) lhs += a * x[v];
    switch (row.sense) {
      case Sense::kLe:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::kGe:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::kEq:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

const detail::ColumnMatrix& Problem::columns() const {
  if (!cols_cache_) {
    cols_cache_ = std::make_shared<const detail::ColumnMatrix>(
        detail::ColumnMatrix::build(*this));
  }
  return *cols_cache_;
}

namespace detail {

ColumnMatrix ColumnMatrix::build(const Problem& p) {
  ColumnMatrix a;
  a.rows = p.num_constraints();
  a.cols = p.num_variables();
  a.row_ptr.assign(a.rows + 1, 0);
  a.rhs_norm.resize(a.rows);

  // CSR first: walk the constraints, accumulating duplicate term indices
  // and folding the Ge sign into coefficients and rhs.
  std::vector<double> acc(a.cols, 0.0);
  std::vector<int> stamp(a.cols, -1);
  std::vector<int> touched;
  for (int i = 0; i < a.rows; ++i) {
    const Constraint& row = p.constraint(i);
    const double s = (row.sense == Sense::kGe) ? -1.0 : 1.0;
    a.rhs_norm[i] = s * row.rhs;
    touched.clear();
    for (const auto& [v, c] : row.terms) {
      if (stamp[v] != i) {
        stamp[v] = i;
        acc[v] = 0.0;
        touched.push_back(v);
      }
      acc[v] += s * c;
    }
    for (int v : touched) {
      a.col_idx.push_back(v);
      a.rval.push_back(acc[v]);
    }
    a.row_ptr[i + 1] = static_cast<int>(a.col_idx.size());
  }

  // CSC by counting sort over the CSR entries (rows stay ascending within
  // each column, which keeps FTRAN scatters cache-friendly).
  a.col_ptr.assign(a.cols + 1, 0);
  for (int j : a.col_idx) ++a.col_ptr[j + 1];
  for (int j = 0; j < a.cols; ++j) a.col_ptr[j + 1] += a.col_ptr[j];
  a.row_idx.resize(a.col_idx.size());
  a.val.resize(a.col_idx.size());
  std::vector<int> next(a.col_ptr.begin(), a.col_ptr.end() - 1);
  for (int i = 0; i < a.rows; ++i) {
    for (int e = a.row_ptr[i]; e < a.row_ptr[i + 1]; ++e) {
      const int slot = next[a.col_idx[e]]++;
      a.row_idx[slot] = i;
      a.val[slot] = a.rval[e];
    }
  }
  return a;
}

}  // namespace detail

Result SimplexSolver::solve(const Problem& p) const {
  if (p.num_variables() == 0) {
    Result r;
    r.status = Status::kOptimal;
    r.objective = 0;
    return r;
  }
  obs::ObsSpan span("lp.solve");
  span.arg("engine", to_string(opts_.engine)).arg("warm", "cold");
  Result r;
  if (opts_.engine == Engine::kDense) {
    detail::DenseTableau t(p, opts_);
    r = t.run_cold(p);
  } else {
    detail::RevisedCore c(p, opts_);
    r = c.run_cold(p);
  }
  span.arg("status", to_string(r.status));
  record_solve(r, /*warm=*/false);
  return r;
}

Result SimplexSolver::solve(const Problem& p, const Basis* warm) const {
  if (!warm || warm->empty() || p.num_variables() == 0) return solve(p);
  std::optional<Result> res;
  int wasted = 0;
  {
    obs::ObsSpan span("lp.solve");
    span.arg("engine", to_string(opts_.engine)).arg("warm", "warm");
    if (opts_.engine == Engine::kDense) {
      detail::DenseTableau t(p, opts_);
      res = t.run_from_basis(p, *warm);
      if (!res) wasted = t.iterations();
    } else {
      detail::RevisedCore c(p, opts_);
      res = c.run_from_basis(p, *warm);
      if (!res) wasted = c.iterations();
    }
    span.arg("status", res ? to_string(res->status) : "cold-restart");
  }
  if (res) {
    record_solve(*res, /*warm=*/true);
    return *res;
  }
  Result cold = solve(p);  // record_solve runs inside
  cold.iterations += wasted;
  return cold;
}

/// Engine-dispatching pimpl: exactly one of the two cores is live,
/// selected once at construction from Options::engine.
struct IncrementalSimplex::Impl {
  Impl(const Problem& p, const SimplexSolver::Options& opts) {
    if (opts.engine == Engine::kDense) {
      dense = std::make_unique<detail::DenseTableau>(p, opts);
    } else {
      revised = std::make_unique<detail::RevisedCore>(p, opts);
    }
  }

  Result run_cold(const Problem& p) {
    return dense ? dense->run_cold(p) : revised->run_cold(p);
  }
  Result reoptimize_dual(const Problem& p) {
    return dense ? dense->reoptimize_dual(p) : revised->reoptimize_dual(p);
  }
  bool set_bounds_incremental(int v, double lo, double hi) {
    return dense ? dense->set_bounds_incremental(v, lo, hi)
                 : revised->set_bounds_incremental(v, lo, hi);
  }
  int iterations() const {
    return dense ? dense->iterations() : revised->iterations();
  }

  std::unique_ptr<detail::DenseTableau> dense;
  std::unique_ptr<detail::RevisedCore> revised;
};

IncrementalSimplex::IncrementalSimplex(const Problem& p,
                                       const SimplexSolver::Options& opts)
    : prob_(p), opts_(opts), impl_(std::make_unique<Impl>(prob_, opts)) {}

IncrementalSimplex::~IncrementalSimplex() = default;

void IncrementalSimplex::set_bounds(int v, double lo, double hi) {
  prob_.set_bounds(v, lo, hi);
  if (hot_) hot_ = impl_->set_bounds_incremental(v, lo, hi);
}

void IncrementalSimplex::invalidate() { hot_ = false; }

Result IncrementalSimplex::solve() {
  if (prob_.num_variables() == 0) {
    Result r;
    r.status = Status::kOptimal;
    r.objective = 0;
    return r;
  }
  obs::ObsSpan span("lp.solve");
  span.arg("engine", to_string(opts_.engine))
      .arg("warm", hot_ ? "warm" : "cold");
  int wasted = 0;
  int wasted_dual = 0;
  if (hot_) {
    Result r = impl_->reoptimize_dual(prob_);
    dual_pivots_ += r.dual_iterations;
    if (r.status == Status::kOptimal || r.status == Status::kInfeasible) {
      // Both outcomes leave the engine consistent and dual feasible: an
      // infeasible node's basis still warm-starts the sibling after its
      // bound fixes are undone.
      ++warm_solves_;
      span.arg("status", to_string(r.status));
      record_solve(r, /*warm=*/true);
      return r;
    }
    wasted = r.iterations;
    wasted_dual = r.dual_iterations;
    hot_ = false;
  }
  Result r = impl_->run_cold(prob_);
  r.iterations += wasted;
  r.dual_iterations += wasted_dual;
  ++cold_solves_;
  hot_ = (r.status == Status::kOptimal);
  span.arg("status", to_string(r.status));
  record_solve(r, /*warm=*/false);
  return r;
}

}  // namespace vm1::lp
