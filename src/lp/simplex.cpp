#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace vm1::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

int Problem::add_variable(double lo, double hi, double cost,
                          std::string name) {
  assert(std::isfinite(lo));
  assert(lo <= hi);
  lo_.push_back(lo);
  hi_.push_back(hi);
  cost_.push_back(cost);
  names_.push_back(std::move(name));
  return static_cast<int>(lo_.size()) - 1;
}

void Problem::add_constraint(std::vector<std::pair<int, double>> terms,
                             Sense sense, double rhs) {
  for ([[maybe_unused]] const auto& [v, a] : terms) {
    assert(v >= 0 && v < num_variables());
  }
  rows_.push_back(Constraint{std::move(terms), sense, rhs});
}

void Problem::set_bounds(int v, double lo, double hi) {
  assert(lo <= hi);
  lo_[v] = lo;
  hi_[v] = hi;
}

double Problem::objective_value(const std::vector<double>& x) const {
  double z = 0;
  for (int v = 0; v < num_variables(); ++v) z += cost_[v] * x[v];
  return z;
}

double Problem::max_violation(const std::vector<double>& x) const {
  double worst = 0;
  for (int v = 0; v < num_variables(); ++v) {
    worst = std::max(worst, lo_[v] - x[v]);
    if (std::isfinite(hi_[v])) worst = std::max(worst, x[v] - hi_[v]);
  }
  for (const auto& row : rows_) {
    double lhs = 0;
    for (const auto& [v, a] : row.terms) lhs += a * x[v];
    switch (row.sense) {
      case Sense::kLe:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::kGe:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::kEq:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

namespace {

/// Internal dense tableau state for the bounded-variable simplex.
///
/// The problem is normalized to `A x = b, 0 <= x <= u` (variables shifted by
/// their lower bounds, >= rows negated, one slack per row, artificials added
/// for rows whose slack-basis start is infeasible).
class Tableau {
 public:
  Tableau(const Problem& p, const SimplexSolver::Options& opts)
      : opts_(opts), n_struct_(p.num_variables()), m_(p.num_constraints()) {
    build(p);
  }

  Result run(const Problem& p);

 private:
  enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

  double& tab(int i, int j) { return tab_[static_cast<std::size_t>(i) * ncols_ + j]; }

  void build(const Problem& p);
  // Runs simplex iterations on the current cost row. Returns status.
  Status iterate(bool phase1);
  void compute_zrow();
  int choose_entering(bool bland) const;
  void pivot(int row, int col);

  SimplexSolver::Options opts_;
  int n_struct_;  ///< structural variable count
  int m_;         ///< constraint count
  int ncols_ = 0;
  int n_art_begin_ = 0;  ///< first artificial column
  std::vector<double> tab_;   ///< m x ncols, equals B^-1 A
  std::vector<double> beta_;  ///< basic variable values
  std::vector<double> ub_;    ///< upper bounds of normalized vars (lower = 0)
  std::vector<double> cost_;  ///< current objective (phase 1 or 2)
  std::vector<double> cost2_; ///< phase-2 objective
  std::vector<double> zrow_;  ///< reduced costs
  std::vector<int> basis_;    ///< basis_[row] = column index
  std::vector<VarState> state_;
  std::vector<double> shift_;  ///< lower bounds of structural vars
  int iterations_ = 0;
  bool need_phase1_ = false;
#ifdef VM1_LP_DEBUG
  std::vector<double> a0_, b0_;  ///< normalized system copy for checks
  void check_system(const char* tag) {
    std::vector<double> xn(ncols_, 0.0);
    for (int j = 0; j < ncols_; ++j) {
      if (state_[j] == VarState::kAtUpper) xn[j] = ub_[j];
    }
    for (int i = 0; i < m_; ++i) xn[basis_[i]] = beta_[i];
    double worst = 0;
    for (int i = 0; i < m_; ++i) {
      double lhs = 0;
      for (int j = 0; j < ncols_; ++j) {
        lhs += a0_[static_cast<std::size_t>(i) * ncols_ + j] * xn[j];
      }
      worst = std::max(worst, std::abs(lhs - b0_[i]));
    }
    std::fprintf(stderr, "[lp] %s: system residual %g\n", tag, worst);
  }
#endif
};

void Tableau::build(const Problem& p) {
  // Column layout: [0, n_struct) structural, [n_struct, n_struct+m) slacks,
  // then artificials for initially-infeasible rows.
  // Rows are normalized so that Ge becomes Le (negated); Eq keeps slack with
  // upper bound zero.
  shift_.resize(n_struct_);
  for (int v = 0; v < n_struct_; ++v) shift_[v] = p.lower_bound(v);

  // Count artificials by computing the slack-start residual per row.
  std::vector<double> rhs_norm(m_);
  std::vector<double> slack_ub(m_);
  std::vector<int> sign(m_, 1);
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = p.constraint(i);
    double b = row.rhs;
    for (const auto& [v, a] : row.terms) b -= a * shift_[v];
    int s = (row.sense == Sense::kGe) ? -1 : 1;
    sign[i] = s;
    rhs_norm[i] = s * b;
    slack_ub[i] = (row.sense == Sense::kEq) ? 0.0 : kInf;
  }

  std::vector<int> art_rows;
  for (int i = 0; i < m_; ++i) {
    // Slack starts at clamp(rhs, 0, slack_ub); residual needs an artificial.
    double v = rhs_norm[i];
    double clamped = std::min(std::max(v, 0.0), slack_ub[i]);
    if (std::abs(v - clamped) > opts_.tol) art_rows.push_back(i);
  }
  need_phase1_ = !art_rows.empty();

  n_art_begin_ = n_struct_ + m_;
  ncols_ = n_art_begin_ + static_cast<int>(art_rows.size());
  tab_.assign(static_cast<std::size_t>(m_) * ncols_, 0.0);
  ub_.assign(ncols_, kInf);
  cost2_.assign(ncols_, 0.0);
  state_.assign(ncols_, VarState::kAtLower);
  beta_.assign(m_, 0.0);
  basis_.assign(m_, -1);

  for (int v = 0; v < n_struct_; ++v) {
    double hi = p.upper_bound(v);
    ub_[v] = std::isfinite(hi) ? hi - shift_[v] : kInf;
    cost2_[v] = p.cost(v);
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = p.constraint(i);
    for (const auto& [v, a] : row.terms) tab(i, v) += sign[i] * a;
    tab(i, n_struct_ + i) = 1.0;
    ub_[n_struct_ + i] = slack_ub[i];
  }

  // Initial basis: slack where feasible, artificial otherwise. The basis
  // must be the identity in the tableau, so rows whose starting residual is
  // negative are negated before their artificial (coefficient +1) is added.
  int art_col = n_art_begin_;
  std::size_t next_art = 0;
  for (int i = 0; i < m_; ++i) {
    double v = rhs_norm[i];
    double clamped = std::min(std::max(v, 0.0), slack_ub[i]);
    if (next_art < art_rows.size() && art_rows[next_art] == i) {
      ++next_art;
      double resid = v - clamped;
      if (resid < 0) {
        // Negate the whole row (structural + slack coefficients and rhs)
        // so the artificial's column is +1.
        for (int j = 0; j < ncols_; ++j) tab(i, j) = -tab(i, j);
        rhs_norm[i] = -v;
        resid = -resid;
        // Slack stays at the same bound value (always 0 here: a negative
        // residual implies the slack was clamped to its lower bound).
      }
      tab(i, art_col) = 1.0;
      basis_[i] = art_col;
      beta_[i] = resid;
      state_[art_col] = VarState::kBasic;
      state_[n_struct_ + i] =
          (clamped == 0.0) ? VarState::kAtLower : VarState::kAtUpper;
      ++art_col;
    } else {
      basis_[i] = n_struct_ + i;
      beta_[i] = clamped;
      state_[n_struct_ + i] = VarState::kBasic;
    }
  }
#ifdef VM1_LP_DEBUG
  a0_ = tab_;
  b0_ = rhs_norm;
#endif
}

void Tableau::compute_zrow() {
  zrow_.assign(ncols_, 0.0);
  // z_j = c_j - c_B' (B^-1 A_j). tab_ holds B^-1 A.
  for (int j = 0; j < ncols_; ++j) zrow_[j] = cost_[j];
  for (int i = 0; i < m_; ++i) {
    double cb = cost_[basis_[i]];
    if (cb == 0.0) continue;
    const double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
    for (int j = 0; j < ncols_; ++j) zrow_[j] -= cb * row[j];
  }
}

int Tableau::choose_entering(bool bland) const {
  int best = -1;
  double best_score = opts_.tol;
  for (int j = 0; j < ncols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    double z = zrow_[j];
    double score = 0;
    if (state_[j] == VarState::kAtLower && z < -opts_.tol) {
      score = -z;
    } else if (state_[j] == VarState::kAtUpper && z > opts_.tol) {
      score = z;
    } else {
      continue;
    }
    if (bland) return j;  // first eligible (lowest index)
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

void Tableau::pivot(int r, int c) {
  double piv = tab(r, c);
  double inv = 1.0 / piv;
  double* prow = &tab_[static_cast<std::size_t>(r) * ncols_];
  for (int j = 0; j < ncols_; ++j) prow[j] *= inv;
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    double f = tab(i, c);
    if (f == 0.0) continue;
    double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
    for (int j = 0; j < ncols_; ++j) row[j] -= f * prow[j];
    tab(i, c) = 0.0;
  }
  double fz = zrow_[c];
  if (fz != 0.0) {
    for (int j = 0; j < ncols_; ++j) zrow_[j] -= fz * prow[j];
    zrow_[c] = 0.0;
  }
}

Status Tableau::iterate(bool phase1) {
  compute_zrow();
  int stall = 0;
  bool bland = false;
  Timer timer;
  while (iterations_ < opts_.max_iterations) {
    if (opts_.time_limit_sec > 0 && (iterations_ & 127) == 0 &&
        timer.seconds() > opts_.time_limit_sec) {
      return Status::kIterLimit;
    }
#ifdef VM1_LP_DEBUG
    check_system(phase1 ? "p1 iter" : "p2 iter");
#endif
    int j = choose_entering(bland);
    if (j < 0) return Status::kOptimal;
    ++iterations_;

    const int d = (state_[j] == VarState::kAtLower) ? 1 : -1;

    // Ratio test.
    double t_max = ub_[j];  // bound-flip distance (may be inf)
    int leave_row = -1;
    int leave_dir = 0;  // +1: leaving var hits lower; -1: hits upper
    for (int i = 0; i < m_; ++i) {
      double e = d * tab(i, j);
      if (std::abs(e) < opts_.pivot_tol) continue;
      double t;
      int dir;
      if (e > 0) {
        t = beta_[i] / e;  // basic hits its lower bound (0)
        dir = 1;
      } else {
        if (!std::isfinite(ub_[basis_[i]])) continue;
        t = (ub_[basis_[i]] - beta_[i]) / (-e);
        dir = -1;
      }
      if (t < 0) t = 0;
      if (t < t_max - 1e-12 ||
          (leave_row >= 0 && t < t_max + 1e-12 && bland &&
           basis_[i] < basis_[leave_row])) {
        t_max = t;
        leave_row = i;
        leave_dir = dir;
      }
    }

    if (!std::isfinite(t_max)) {
      return phase1 ? Status::kInfeasible : Status::kUnbounded;
    }

    if (t_max <= 1e-11) {
      ++stall;
      if (stall > 2 * (m_ + ncols_)) bland = true;
    } else {
      stall = 0;
    }

    if (leave_row < 0) {
      // Bound flip: entering variable moves to its opposite bound.
      double t = ub_[j];
      for (int i = 0; i < m_; ++i) beta_[i] -= d * tab(i, j) * t;
      state_[j] =
          (state_[j] == VarState::kAtLower) ? VarState::kAtUpper
                                            : VarState::kAtLower;
      continue;
    }

    // Basis change.
    double t = t_max;
    for (int i = 0; i < m_; ++i) beta_[i] -= d * tab(i, j) * t;
    int leaving = basis_[leave_row];
    state_[leaving] =
        (leave_dir > 0) ? VarState::kAtLower : VarState::kAtUpper;
    // Entering variable's new value relative to its lower bound.
    double enter_val = (d > 0) ? t : ub_[j] - t;
    pivot(leave_row, j);
    basis_[leave_row] = j;
    state_[j] = VarState::kBasic;
    beta_[leave_row] = enter_val;
  }
  return Status::kIterLimit;
}

Result Tableau::run(const Problem& p) {
  Result res;
  auto recover_x = [&]() {
    std::vector<double> xn(ncols_, 0.0);
    for (int j = 0; j < ncols_; ++j) {
      if (state_[j] == VarState::kAtUpper) xn[j] = ub_[j];
    }
    for (int i = 0; i < m_; ++i) xn[basis_[i]] = beta_[i];
    std::vector<double> x(n_struct_);
    for (int v = 0; v < n_struct_; ++v) x[v] = shift_[v] + xn[v];
    return x;
  };
#ifdef VM1_LP_DEBUG
  auto report = [&](const char* tag) {
    std::vector<double> x = recover_x();
    std::fprintf(stderr, "[lp] %s: violation=%g obj=%g\n", tag,
                 p.max_violation(x), p.objective_value(x));
  };
#endif
  if (need_phase1_) {
    cost_.assign(ncols_, 0.0);
    for (int j = n_art_begin_; j < ncols_; ++j) cost_[j] = 1.0;
    Status s = iterate(/*phase1=*/true);
    if (s == Status::kIterLimit) {
      res.status = s;
      res.iterations = iterations_;
      return res;
    }
    double infeas = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_art_begin_) infeas += beta_[i];
    }
    for (int j = n_art_begin_; j < ncols_; ++j) {
      if (state_[j] == VarState::kAtUpper) infeas += ub_[j];
    }
    if (s == Status::kInfeasible || infeas > 1e-6) {
      res.status = Status::kInfeasible;
      res.iterations = iterations_;
      return res;
    }
    // Pin artificials to zero so they cannot re-enter.
    for (int j = n_art_begin_; j < ncols_; ++j) {
      ub_[j] = 0.0;
      if (state_[j] == VarState::kAtUpper) state_[j] = VarState::kAtLower;
    }
#ifdef VM1_LP_DEBUG
    report("after phase 1");
#endif
  }

  cost_ = cost2_;
  Status s = iterate(/*phase1=*/false);
  res.status = s;
  res.iterations = iterations_;
  if (s != Status::kOptimal) return res;

  res.x = recover_x();
  res.objective = p.objective_value(res.x);
  return res;
}

}  // namespace

Result SimplexSolver::solve(const Problem& p) const {
  if (p.num_variables() == 0) {
    Result r;
    r.status = Status::kOptimal;
    r.objective = 0;
    return r;
  }
  Tableau t(p, opts_);
  return t.run(p);
}

}  // namespace vm1::lp
