/// \file factor.h
/// Product-form basis factorization for the revised simplex engine.
///
/// The basis inverse is represented as a sequence of Gauss-Jordan
/// elementary transforms ("etas"): B^-1 = G_k ... G_1 where each G applies
///   t = x[r] / pivot;  x[i] -= v_i * t (i != r);  x[r] = t.
/// The first m etas come from factorizing the basis submatrix with
/// Markowitz-ordered, threshold-pivoted Gauss-Jordan elimination; each
/// subsequent simplex pivot appends one more eta built from the FTRANed
/// entering column (product-form update — the rank-1 special case of
/// Forrest-Tomlin), so a pivot costs O(nnz) instead of rewriting an m x n
/// tableau. FTRAN applies the etas forward, BTRAN applies their transposes
/// in reverse. The eta file grows with every pivot; the owning engine
/// refactorizes when updates() crosses its interval or a consistency check
/// fails, which resets the file to a fresh m-eta factorization.
///
/// For small bases the owner may collapse() the factorization into an
/// explicit dense B^-1 (column-major m x m). Each product-form update is
/// then applied eagerly as a rank-1 outer-product on contiguous columns and
/// FTRAN/BTRAN become dense column passes the compiler vectorizes — no eta
/// chain ever accumulates, so walks stay O(m^2) regardless of how many
/// pivots separate refactorizations, and the refactor interval can be an
/// order of magnitude longer. Past the dimension cutoff the m^2 cost per
/// pivot loses to the sparse eta file, which remains the default.
#pragma once

#include <vector>

namespace vm1::lp::detail {

/// Basis columns handed to factorize(), in basis-slot order: column k
/// occupies [ptr[k], ptr[k+1]) of idx/val. Reused scratch — the caller
/// assembles it per refactorization without reallocating.
struct BasisColumns {
  std::vector<int> ptr;
  std::vector<int> idx;
  std::vector<double> val;

  void clear() {
    ptr.clear();
    ptr.push_back(0);
    idx.clear();
    val.clear();
  }
  void push(int row, double v) {
    idx.push_back(row);
    val.push_back(v);
  }
  void close_column() { ptr.push_back(static_cast<int>(idx.size())); }
  int cols() const { return static_cast<int>(ptr.size()) - 1; }
};

class EtaFactor {
 public:
  /// Factorizes the m basis columns in `cols` (Markowitz ordering with
  /// threshold partial pivoting). Returns false on a numerically singular
  /// basis. On success slot_row()[k] is the pivot row assigned to basis
  /// slot k — a permutation of [0, m); the caller relabels its basis so
  /// that slot k == row slot_row()[k], after which ftran() of a column
  /// yields tableau entries indexed directly by row.
  bool factorize(const BasisColumns& cols, double pivot_tol);

  /// Collapses the current factorization (factor etas plus any appended
  /// updates) into an explicit dense inverse and drops the eta file.
  /// Subsequent append()s update the inverse in place; updates() counts
  /// them so the owner's refactor interval still bounds drift.
  void collapse();

  /// Loads a diagonal basis B = diag(d) directly — the slack/artificial
  /// starting basis of a cold solve. O(m), no elimination: this is a basis
  /// load, not a refactorization, and is deliberately not counted as one.
  /// `dense` selects the explicit-inverse representation.
  void reset_diagonal(const double* diag, int m, bool dense);

  bool dense_inverse() const { return dense_; }

  const std::vector<int>& slot_row() const { return slot_row_; }

  /// x := B^-1 x (dense vector of length m). Skips etas whose pivot-row
  /// entry is exactly zero, so sparse right-hand sides stay cheap.
  void ftran(double* x) const;

  /// x := B^-T x (dense vector of length m).
  void btran(double* x) const;

  /// Appends the product-form update eta for a pivot at `row` whose
  /// FTRANed entering column is `alpha` (dense, length m). Returns false
  /// when the pivot element is numerically unusable (caller refactorizes).
  bool append(int row, const double* alpha, double pivot_tol);

  int size() const { return static_cast<int>(ops_.size()); }
  /// Updates appended since the last factorize()/collapse()/reset.
  int updates() const {
    return dense_ ? dense_updates_
                  : static_cast<int>(ops_.size()) - factor_ops_;
  }
  bool factorized() const { return factored_; }
  int dim() const { return m_; }

 private:
  struct Op {
    int row;
    double inv_pivot;
    int begin;  ///< off-pivot entries in idx_/val_
    int end;
  };

  void apply_op(const Op& op, double* x) const;

  std::vector<Op> ops_;
  std::vector<int> idx_;
  std::vector<double> val_;
  std::vector<int> slot_row_;
  int m_ = 0;
  int factor_ops_ = 0;
  bool factored_ = false;

  // Explicit-inverse mode: inv_ is B^-1 column-major (inv_[c*m_ + i] is
  // row i of column c); fscratch_ is the dense FTRAN/BTRAN temporary.
  bool dense_ = false;
  int dense_updates_ = 0;
  std::vector<double> inv_;
  mutable std::vector<double> fscratch_;

  // Factorization workspace (reused across refactorizations).
  std::vector<std::vector<std::pair<int, double>>> wcols_;
  std::vector<double> acc_;
  std::vector<int> stamp_;
  std::vector<int> touched_;
  std::vector<int> row_count_;
  std::vector<char> row_done_, col_done_;
  int gen_ = 0;
};

}  // namespace vm1::lp::detail
