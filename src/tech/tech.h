/// \file tech.h
/// Synthetic sub-10nm technology description.
///
/// Stands in for the LEF technology + imec 7nm PDK data the paper uses.
/// Units: 1 DBU = one placement-site width = one M1 routing pitch (the
/// ClosedM1 library property "M1 pitch equal to the width of a placement
/// site" from Section 1.1 of the paper). Vertical track indices count M2
/// tracks; a 7.5-track cell row spans `tracks_per_row` M2 tracks.
#pragma once

#include <string>
#include <vector>

#include "util/geometry.h"

namespace vm1 {

/// Physical size of one DBU (= one placement site = one M1 pitch) in nm.
/// Used only to translate the paper's nm-denominated weighting factors
/// (e.g. alpha = 1200) into this library's site-denominated units.
inline constexpr double kNmPerSite = 45.0;

/// Standard-cell architecture from Section 1.1 of the paper.
enum class CellArch {
  kConventional12T,  ///< M1 horizontal PG rails; no inter-row M1 routing
  kClosedM1,         ///< 1D vertical M1 pins on the site grid; M1 open between pins
  kOpenM1,           ///< pins on horizontal M0; M1 fully open
};

const char* to_string(CellArch arch);

/// Preferred routing direction of a metal layer.
enum class Dir { kHorizontal, kVertical };

/// Routing layer identifiers. M0 is the complementary layer below M1 used
/// for pins/intra-cell routing in the OpenM1 architecture.
enum class LayerId : int { kM0 = 0, kM1 = 1, kM2 = 2, kM3 = 3, kM4 = 4 };

inline int layer_index(LayerId l) { return static_cast<int>(l); }

struct Layer {
  LayerId id;
  std::string name;
  Dir dir;
  /// Track pitch in DBU along the non-preferred axis.
  Coord pitch;
  /// Per-unit-length resistance and capacitance (arbitrary consistent
  /// units; lower layers are more resistive, as in sub-10nm stacks).
  double r_per_dbu;
  double c_per_dbu;
};

/// Technology container. Use Tech::make_7nm() for the default used in all
/// experiments.
class Tech {
 public:
  /// Builds the default synthetic 7nm technology: 7.5-track rows,
  /// M0(H)/M1(V)/M2(H)/M3(V)/M4(H), site width 1 DBU, row height 15 DBU
  /// (M2 pitch 2 DBU).
  static Tech make_7nm();

  Coord site_width() const { return site_width_; }
  Coord row_height() const { return row_height_; }
  /// Number of M2 track slots a row spans (row_height / m2 pitch).
  int tracks_per_row() const { return tracks_per_row_; }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(LayerId id) const { return layers_[layer_index(id)]; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Via resistance between layer l and l+1.
  double via_resistance(int lower_layer) const {
    return via_r_[lower_layer];
  }
  /// Via capacitance contribution.
  double via_capacitance(int lower_layer) const {
    return via_c_[lower_layer];
  }

  /// Default maximum vertical span of a direct M1 route, in rows (the
  /// paper's gamma; paper uses 3).
  int gamma() const { return gamma_; }
  void set_gamma(int g) { gamma_ = g; }

  /// Default minimum pin-projection overlap (DBU) required for a dM1 in the
  /// OpenM1 architecture (the paper's delta).
  Coord delta() const { return delta_; }
  void set_delta(Coord d) { delta_ = d; }

 private:
  Coord site_width_ = 1;
  Coord row_height_ = 15;
  int tracks_per_row_ = 7;  // usable full M2 tracks per row (7.5-track cell)
  std::vector<Layer> layers_;
  std::vector<double> via_r_;
  std::vector<double> via_c_;
  int gamma_ = 3;
  Coord delta_ = 1;
};

}  // namespace vm1
