#include "tech/tech.h"

namespace vm1 {

const char* to_string(CellArch arch) {
  switch (arch) {
    case CellArch::kConventional12T:
      return "Conventional12T";
    case CellArch::kClosedM1:
      return "ClosedM1";
    case CellArch::kOpenM1:
      return "OpenM1";
  }
  return "?";
}

Tech Tech::make_7nm() {
  Tech t;
  t.site_width_ = 1;
  t.row_height_ = 15;
  t.tracks_per_row_ = 7;
  // Resistance grows toward the bottom of the stack (thin local metals),
  // capacitance is roughly constant per unit length.
  t.layers_ = {
      {LayerId::kM0, "M0", Dir::kHorizontal, 3, 4.0, 0.20},
      {LayerId::kM1, "M1", Dir::kVertical, 1, 3.0, 0.20},
      {LayerId::kM2, "M2", Dir::kHorizontal, 2, 2.0, 0.18},
      {LayerId::kM3, "M3", Dir::kVertical, 2, 1.5, 0.18},
      {LayerId::kM4, "M4", Dir::kHorizontal, 4, 1.0, 0.16},
  };
  t.via_r_ = {8.0, 6.0, 5.0, 4.0};  // V01, V12, V23, V34
  t.via_c_ = {0.05, 0.05, 0.04, 0.04};
  t.gamma_ = 3;
  t.delta_ = 1;
  return t;
}

}  // namespace vm1
