/// \file track_graph.h
/// 3D routing track graph over the core area.
///
/// Grid model (all coordinates in grid units):
///   * gx: x in DBU (one M1 track per placement site; M1 pitch == site width);
///   * gy: horizontal track index; track k sits at y = 2k DBU (M2 pitch 2);
///   * layers M1(V) / M2(H) / M3(V, every 2nd gx) / M4(H, every 2nd gy).
/// M0 is not part of the graph: OpenM1 pins are exposed as M1 access nodes
/// (a V01 via is implied and priced at access).
///
/// Architecture-specific blockage (built from the placed design):
///   * ClosedM1 / conventional signal pins own their M1 stub nodes (hard
///     blocked for other nets);
///   * ClosedM1 cells have boundary M1 PG pins: the M1 columns at every cell
///     boundary are blocked over the cell's row span;
///   * conventional 12T additionally blocks every M1 edge that crosses a row
///     boundary (horizontal M1 rails) — no inter-row M1 at all;
///   * OpenM1 reserves PG-staple M1 columns at a fixed pitch;
///   * every row boundary blocks one M2 track (M2 PG straps).
#pragma once

#include <cstdint>
#include <vector>

#include "design/design.h"

namespace vm1 {

/// Routable layers are indexed 0..3 == M1..M4 inside the router.
inline constexpr int kNumRouteLayers = 4;
inline constexpr int kM1 = 0;
inline constexpr int kM2 = 1;
inline constexpr int kM3 = 2;
inline constexpr int kM4 = 3;

/// Owner codes for node blockage.
inline constexpr std::int32_t kFree = -1;
inline constexpr std::int32_t kBlocked = -2;

/// Node handle: packed (layer, gx, gy).
struct GNode {
  int layer = 0;
  int gx = 0;
  int gy = 0;
  friend bool operator==(const GNode&, const GNode&) = default;
};

struct TrackGraphOptions {
  /// OpenM1 power-staple pitch in sites (M1 columns reserved for PG);
  /// 0 disables stapling.
  int staple_pitch = 12;
};

class TrackGraph {
 public:
  TrackGraph(const Design& d, const TrackGraphOptions& opts = {});

  int width() const { return gx_max_; }    ///< gx in [0, width()]
  int height() const { return gy_max_; }   ///< gy in [0, height()]
  const Design& design() const { return *design_; }

  /// True when (layer, gx, gy) is on the layer's track lattice and inside
  /// the core.
  bool valid(int layer, int gx, int gy) const;
  /// True when a vertical (along-y) layer; M1/M3 are vertical.
  static bool is_vertical(int layer) { return layer == kM1 || layer == kM3; }

  std::size_t node_id(int layer, int gx, int gy) const {
    return layer_off_[layer] + static_cast<std::size_t>(gy) * (gx_max_ + 1) +
           gx;
  }
  std::size_t num_nodes() const { return layer_off_[kNumRouteLayers]; }

  /// Node owner: kFree, kBlocked, or the owning net id (pins).
  std::int32_t owner(int layer, int gx, int gy) const {
    return owner_[node_id(layer, gx, gy)];
  }
  /// True when `net` may use the node (free or owned by the same net).
  bool passable(int layer, int gx, int gy, int net) const {
    std::int32_t o = owner_[node_id(layer, gx, gy)];
    return o == kFree || o == net;
  }

  /// True when the along-layer edge from (gx, gy) toward +1 step is usable
  /// (both endpoints valid; architecture rules allow it).
  bool edge_allowed(int layer, int gx, int gy, int net) const;

  /// Wire length of one along-layer edge step in DBU (1 for horizontal
  /// layers, 2 for vertical layers). Edges always advance the moving
  /// coordinate by one grid unit; the off-axis lattice restriction (M3 on
  /// even gx, M4 on even gy) is enforced by valid().
  static Coord edge_len_dbu(int layer) { return is_vertical(layer) ? 2 : 1; }

  /// Grid y-track range [lo, hi] covered by DBU interval [y0, y1].
  static std::pair<int, int> track_range(Coord y0, Coord y1) {
    int lo = static_cast<int>((y0 + 1) / 2);
    int hi = static_cast<int>(y1 / 2);
    return {lo, hi};
  }

  /// All M1 access nodes of (inst, pin) in the current placement.
  std::vector<GNode> pin_access_nodes(int inst, int pin) const;
  /// Access nodes for an IO terminal: the nearest M2 node to its location.
  std::vector<GNode> io_access_nodes(int io) const;

  /// Rebuilds pin/PG blockage from the design's current placement.
  void rebuild_blockage();

 private:
  void block_node(int layer, int gx, int gy, std::int32_t owner);

  const Design* design_;
  TrackGraphOptions opts_;
  int gx_max_;
  int gy_max_;
  std::size_t layer_off_[kNumRouteLayers + 1];
  std::vector<std::int32_t> owner_;
};

}  // namespace vm1
