#include "route/router.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/hpwl.h"
#include "util/logging.h"

namespace vm1 {

Router::Router(const Design& d, const RouterOptions& opts)
    : design_(&d),
      opts_(opts),
      graph_(d, opts.graph),
      state_(graph_, opts.cost) {
  net_routes_.resize(d.netlist().num_nets());
}

bool Router::route_net(int net) {
  const Design& d = *design_;
  const Netlist& nl = d.netlist();
  const Net& n = nl.net(net);
  NetRoute& nr = net_routes_[net];
  nr = NetRoute{};
  if (!n.routable()) return true;

  // Terminal access node sets, plus a pin-access membership set for dM1
  // classification.
  std::vector<std::vector<GNode>> access(n.pins.size());
  std::unordered_set<std::size_t> pin_access_ids;
  for (std::size_t t = 0; t < n.pins.size(); ++t) {
    const NetPin& p = n.pins[t];
    access[t] = p.is_io() ? graph_.io_access_nodes(p.pin)
                          : graph_.pin_access_nodes(p.inst, p.pin);
    for (const GNode& g : access[t]) {
      if (graph_.valid(g.layer, g.gx, g.gy)) {
        pin_access_ids.insert(graph_.node_id(g.layer, g.gx, g.gy));
      }
    }
  }

  // Terminal ordering: start at the driver, then repeatedly attach the
  // terminal nearest the current tree (Prim on pin positions).
  std::vector<Point> pos(n.pins.size());
  for (std::size_t t = 0; t < n.pins.size(); ++t) {
    pos[t] = d.pin_position(n.pins[t]);
  }
  std::vector<bool> in_tree(n.pins.size(), false);
  in_tree[0] = true;

  // Grid bbox over all terminals + margin.
  int bx0 = graph_.width(), bx1 = 0, by0 = graph_.height(), by1 = 0;
  for (const Point& p : pos) {
    int gx = static_cast<int>(p.x);
    int gy = static_cast<int>(p.y / 2);
    bx0 = std::min(bx0, gx);
    bx1 = std::max(bx1, gx);
    by0 = std::min(by0, gy);
    by1 = std::max(by1, gy);
  }
  bx0 = std::max(0, bx0 - opts_.bbox_margin);
  by0 = std::max(0, by0 - opts_.bbox_margin);
  bx1 = std::min(graph_.width(), bx1 + opts_.bbox_margin);
  by1 = std::min(graph_.height(), by1 + opts_.bbox_margin);

  std::vector<GNode> tree = access[0];
  std::unordered_set<std::size_t> tree_ids;
  for (const GNode& g : tree) {
    tree_ids.insert(graph_.node_id(g.layer, g.gx, g.gy));
  }

  auto commit_edge_wire = [&](std::size_t from_id, int layer) {
    if (nr.wire_edges.insert(from_id).second) {
      state_.add_wire(from_id, 1);
      nr.len_by_layer[layer] += TrackGraph::edge_len_dbu(layer);
    }
  };
  auto commit_edge_via = [&](std::size_t low_id, int low_layer) {
    if (nr.via_edges.insert(low_id).second) {
      state_.add_via(low_id, 1);
      ++nr.vias_by_pair[low_layer];
    }
  };

  bool all_ok = true;
  for (std::size_t k = 1; k < n.pins.size(); ++k) {
    // Nearest unattached terminal to the tree's terminal set.
    std::size_t best = 0;
    Coord best_d = 0;
    bool found = false;
    for (std::size_t t = 1; t < n.pins.size(); ++t) {
      if (in_tree[t]) continue;
      Coord dmin = 0;
      bool first = true;
      for (std::size_t s = 0; s < n.pins.size(); ++s) {
        if (!in_tree[s]) continue;
        Coord dd = manhattan(pos[t], pos[s]);
        if (first || dd < dmin) {
          dmin = dd;
          first = false;
        }
      }
      if (!found || dmin < best_d) {
        best = t;
        best_d = dmin;
        found = true;
      }
    }
    in_tree[best] = true;

    // Zero-length connection: a target access node already on the tree.
    bool direct = false;
    for (const GNode& g : access[best]) {
      if (graph_.valid(g.layer, g.gx, g.gy) &&
          tree_ids.count(graph_.node_id(g.layer, g.gx, g.gy))) {
        direct = true;
        break;
      }
    }
    if (direct) {
      ++nr.dm1;  // abutting pins: dM1 with zero extra wirelength
      continue;
    }

    std::vector<GNode> path =
        state_.search(tree, access[best], net, bx0, by0, bx1, by1);
    if (path.empty()) {
      // Retry over the whole core.
      path = state_.search(tree, access[best], net, 0, 0, graph_.width(),
                           graph_.height());
    }
    if (path.empty()) {
      all_ok = false;
      continue;
    }

    // Classify dM1: all wire edges on M1 and the path starts at a pin
    // access node (not a mid-wire Steiner point).
    bool pure_m1 = true;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const GNode& a = path[i];
      const GNode& b = path[i + 1];
      if (a.layer == b.layer && a.layer != kM1) {
        pure_m1 = false;
        break;
      }
      if (a.layer != b.layer) {
        pure_m1 = false;  // any via to M2+ disqualifies a direct M1 route
        break;
      }
    }
    std::size_t front_id =
        graph_.node_id(path.front().layer, path.front().gx, path.front().gy);
    if (pure_m1 && pin_access_ids.count(front_id)) ++nr.dm1;

    // Commit path edges and extend the tree.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const GNode& a = path[i];
      const GNode& b = path[i + 1];
      if (a.layer == b.layer) {
        // Wire edge id = low/left endpoint.
        int fx = std::min(a.gx, b.gx);
        int fy = std::min(a.gy, b.gy);
        commit_edge_wire(graph_.node_id(a.layer, fx, fy), a.layer);
      } else {
        int low = std::min(a.layer, b.layer);
        commit_edge_via(graph_.node_id(low, a.gx, a.gy), low);
      }
    }
    for (const GNode& g : path) {
      if (tree_ids.insert(graph_.node_id(g.layer, g.gx, g.gy)).second) {
        tree.push_back(g);
      }
    }
    // The freshly attached pin's other access nodes also join the tree.
    for (const GNode& g : access[best]) {
      if (!graph_.valid(g.layer, g.gx, g.gy)) continue;
      if (tree_ids.insert(graph_.node_id(g.layer, g.gx, g.gy)).second) {
        tree.push_back(g);
      }
    }
  }
  nr.routed = all_ok;
  return all_ok;
}

void Router::rip_up(int net) {
  NetRoute& nr = net_routes_[net];
  for (std::size_t e : nr.wire_edges) state_.add_wire(e, -1);
  for (std::size_t e : nr.via_edges) state_.add_via(e, -1);
  nr = NetRoute{};
}

RouteMetrics Router::route() {
  Timer timer;
  const Netlist& nl = design_->netlist();

  obs::ObsSpan route_span("route.route");
  static obs::Counter& nets_metric = obs::counter("route.nets");
  static obs::Counter& ripup_rounds_metric = obs::counter("route.ripup_rounds");
  static obs::Counter& ripup_victims_metric =
      obs::counter("route.ripup_victims");
  static obs::Histogram& route_sec_metric = obs::histogram("route.sec");
  obs::ScopedTimer route_timer(route_sec_metric);

  std::vector<int> order;
  for (int n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).routable()) continue;
    if (!opts_.route_clock && nl.net(n).is_clock) continue;
    order.push_back(n);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return net_hpwl(*design_, a) < net_hpwl(*design_, b);
  });

  nets_metric.add(static_cast<long>(order.size()));
  route_span.arg("nets", order.size());

  for (int n : order) route_net(n);

  for (int iter = 1; iter < opts_.max_iterations; ++iter) {
    if (state_.total_overflow() == 0) break;
    ripup_rounds_metric.add();
    obs::ObsSpan ripup_span("route.ripup_iteration");
    ripup_span.arg("iter", iter);
    state_.accumulate_history();
    // Rip up nets that currently use an overused edge, then reroute.
    std::vector<std::size_t> bad = state_.overused_edges();
    std::unordered_set<std::size_t> bad_set(bad.begin(), bad.end());
    std::vector<int> victims;
    for (int n : order) {
      for (std::size_t e : net_routes_[n].wire_edges) {
        if (bad_set.count(e)) {
          victims.push_back(n);
          break;
        }
      }
    }
    ripup_victims_metric.add(static_cast<long>(victims.size()));
    ripup_span.arg("victims", victims.size());
    for (int n : victims) rip_up(n);
    for (int n : victims) route_net(n);
  }

  finalize_metrics(timer.seconds());
  obs::gauge("route.drv").set(metrics_.drv);
  obs::gauge("route.unrouted").set(metrics_.unrouted);
  route_span.arg("drv", metrics_.drv).arg("unrouted", metrics_.unrouted);
  return metrics_;
}

void Router::finalize_metrics(double elapsed) {
  metrics_ = RouteMetrics{};
  metrics_.runtime_sec = elapsed;
  for (const NetRoute& nr : net_routes_) {
    for (int l = 0; l < kNumRouteLayers; ++l) {
      metrics_.wl_by_layer[l] += nr.len_by_layer[l];
    }
    metrics_.via12 += nr.vias_by_pair[0];
    metrics_.via23 += nr.vias_by_pair[1];
    metrics_.via34 += nr.vias_by_pair[2];
    metrics_.num_dm1 += nr.dm1;
    if (!nr.routed) ++metrics_.unrouted;
  }
  // Count maximal vertical M1 runs per net as "M1 routing segments".
  for (const NetRoute& nr : net_routes_) {
    if (nr.wire_edges.empty()) continue;
    // A run boundary occurs where an M1 edge lacks an M1 edge directly
    // below it (same net). Count edges whose predecessor edge is absent.
    for (std::size_t e : nr.wire_edges) {
      GNode nd{};
      // Decode: only M1 edges matter.
      const std::size_t per_layer =
          static_cast<std::size_t>(graph_.width() + 1) *
          (graph_.height() + 1);
      if (e >= per_layer) continue;  // not an M1 node id
      nd.layer = kM1;
      nd.gy = static_cast<int>((e % per_layer) / (graph_.width() + 1));
      nd.gx = static_cast<int>((e % per_layer) % (graph_.width() + 1));
      if (nd.gy == 0 ||
          !nr.wire_edges.count(graph_.node_id(kM1, nd.gx, nd.gy - 1))) {
        ++metrics_.num_m1_segments;
      }
    }
  }
  for (int n = 0; n < static_cast<int>(net_routes_.size()); ++n) {
    metrics_.rwl_dbu += net_routes_[n].total_len();
  }
  metrics_.drv = state_.total_overflow();
}

}  // namespace vm1
