#include "route/track_graph.h"

#include <algorithm>
#include <cmath>

namespace vm1 {

TrackGraph::TrackGraph(const Design& d, const TrackGraphOptions& opts)
    : design_(&d), opts_(opts) {
  const Rect core = d.core();
  gx_max_ = static_cast<int>(core.hx);
  gy_max_ = static_cast<int>(core.hy / 2);
  std::size_t per_layer =
      static_cast<std::size_t>(gx_max_ + 1) * (gy_max_ + 1);
  for (int l = 0; l <= kNumRouteLayers; ++l) {
    layer_off_[l] = static_cast<std::size_t>(l) * per_layer;
  }
  owner_.assign(num_nodes(), kFree);
  rebuild_blockage();
}

bool TrackGraph::valid(int layer, int gx, int gy) const {
  if (gx < 0 || gx > gx_max_ || gy < 0 || gy > gy_max_) return false;
  if (layer == kM3 && (gx % 2) != 0) return false;
  if (layer == kM4 && (gy % 2) != 0) return false;
  return true;
}

void TrackGraph::block_node(int layer, int gx, int gy, std::int32_t who) {
  if (gx < 0 || gx > gx_max_ || gy < 0 || gy > gy_max_) return;
  std::int32_t& o = owner_[node_id(layer, gx, gy)];
  // Hard blockage wins; net ownership never overwrites another net (that
  // would be a library/pin-geometry bug caught by tests).
  if (who == kBlocked || o == kFree) o = who;
}

void TrackGraph::rebuild_blockage() {
  std::fill(owner_.begin(), owner_.end(), kFree);
  const Design& d = *design_;
  const Netlist& nl = d.netlist();
  const Tech& tech = d.tech();
  const CellArch arch = d.library().arch();
  const Coord row_h = tech.row_height();

  // M2 PG straps: one blocked M2 track per row boundary.
  for (int r = 0; r <= d.num_rows(); ++r) {
    int gy = static_cast<int>(
        std::llround(static_cast<double>(r) * row_h / 2.0));
    gy = std::clamp(gy, 0, gy_max_);
    for (int gx = 0; gx <= gx_max_; ++gx) block_node(kM2, gx, gy, kBlocked);
  }

  // OpenM1 PG staples: reserve M1 columns at a fixed pitch.
  if (arch == CellArch::kOpenM1 && opts_.staple_pitch > 0) {
    for (int gx = 0; gx <= gx_max_; gx += opts_.staple_pitch) {
      for (int gy = 0; gy <= gy_max_; ++gy) block_node(kM1, gx, gy, kBlocked);
    }
  }

  for (int i = 0; i < nl.num_instances(); ++i) {
    const Placement& p = d.placement(i);
    const Cell& c = nl.cell_of(i);
    const Coord x0 = static_cast<Coord>(p.x);
    const Coord y0 = static_cast<Coord>(p.row) * row_h;
    auto [row_lo, row_hi] = track_range(y0, y0 + row_h);

    if (arch == CellArch::kClosedM1 || arch == CellArch::kConventional12T) {
      // Boundary M1 PG pins block the columns at both cell edges across the
      // full row span.
      for (Coord bx : {x0, x0 + c.width_sites}) {
        for (int gy = row_lo; gy <= std::min(row_hi, gy_max_); ++gy) {
          block_node(kM1, static_cast<int>(bx), gy, kBlocked);
        }
      }
      // Signal pins own their M1 stub nodes.
      for (std::size_t pin = 0; pin < c.pins.size(); ++pin) {
        int net = nl.net_at(i, static_cast<int>(pin));
        std::int32_t who = net >= 0 ? net : kBlocked;
        Coord px = x0 + c.pin_x_track(static_cast<int>(pin), p.flipped);
        const Rect& shape = c.pins[pin].shapes.front().box;
        auto [lo, hi] = track_range(y0 + shape.ly, y0 + shape.hy);
        for (int gy = lo; gy <= std::min(hi, gy_max_); ++gy) {
          block_node(kM1, static_cast<int>(px), gy, who);
        }
      }
    }
    // OpenM1 pins live on M0 and do not block M1.
  }
}

bool TrackGraph::edge_allowed(int layer, int gx, int gy, int net) const {
  int tx = gx + (is_vertical(layer) ? 0 : 1);
  int ty = gy + (is_vertical(layer) ? 1 : 0);
  if (!valid(layer, gx, gy) || !valid(layer, tx, ty)) return false;
  if (!passable(layer, gx, gy, net) || !passable(layer, tx, ty, net)) {
    return false;
  }
  // Conventional 12T: horizontal M1 PG rails sit on every row boundary, so
  // an M1 edge whose DBU span (2gy, 2gy+2] touches a boundary is forbidden.
  if (layer == kM1 &&
      design_->library().arch() == CellArch::kConventional12T) {
    Coord y0 = static_cast<Coord>(gy) * 2;
    Coord row_h = design_->tech().row_height();
    Coord next_boundary = (y0 / row_h + 1) * row_h;
    if (next_boundary <= y0 + 2) return false;
  }
  return true;
}

std::vector<GNode> TrackGraph::pin_access_nodes(int inst, int pin) const {
  const Design& d = *design_;
  const Netlist& nl = d.netlist();
  const Cell& c = nl.cell_of(inst);
  const Placement& p = d.placement(inst);
  const Coord row_h = d.tech().row_height();
  const Coord y0 = static_cast<Coord>(p.row) * row_h;
  std::vector<GNode> nodes;

  if (c.arch == CellArch::kOpenM1) {
    // Any M1 track over the M0 segment can drop a V01 via onto the pin.
    auto [xlo, xhi] = d.pin_span_abs(inst, pin);
    Coord py = y0 + c.pins[pin].y_off;
    int gy = std::clamp(static_cast<int>(py / 2), 0, gy_max_);
    for (Coord x = xlo; x <= xhi; ++x) {
      int gx = static_cast<int>(x);
      if (gx < 0 || gx > gx_max_) continue;
      if (owner(kM1, gx, gy) == kBlocked) continue;  // PG staple column
      nodes.push_back(GNode{kM1, gx, gy});
    }
  } else {
    // 1D M1 stub: every track the stub covers is an access node.
    Coord px = static_cast<Coord>(p.x) + c.pin_x_track(pin, p.flipped);
    const Rect& shape = c.pins[pin].shapes.front().box;
    auto [lo, hi] = track_range(y0 + shape.ly, y0 + shape.hy);
    for (int gy = lo; gy <= std::min(hi, gy_max_); ++gy) {
      nodes.push_back(GNode{kM1, static_cast<int>(px), gy});
    }
  }
  return nodes;
}

std::vector<GNode> TrackGraph::io_access_nodes(int io) const {
  const Point& pos = design_->io_position(io);
  int gx = std::clamp(static_cast<int>(pos.x), 0, gx_max_);
  int gy = std::clamp(static_cast<int>(pos.y / 2), 0, gy_max_);
  std::vector<GNode> nodes;
  // IO pads connect on M2 (horizontal); pick the nearest unblocked track.
  for (int dy = 0; dy <= gy_max_; ++dy) {
    for (int s : {gy - dy, gy + dy}) {
      if (s < 0 || s > gy_max_) continue;
      if (owner(kM2, gx, s) != kBlocked) {
        nodes.push_back(GNode{kM2, gx, s});
        return nodes;
      }
      if (dy == 0) break;
    }
  }
  nodes.push_back(GNode{kM2, gx, gy});
  return nodes;
}

}  // namespace vm1
