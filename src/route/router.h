/// \file router.h
/// PathFinder-style rip-up-and-reroute detailed router.
///
/// Stands in for the commercial router (Innovus) in the paper's flow. All
/// Table-2 routing metrics come from here:
///   * RWL        — total routed wirelength (DBU, all layers M1..M4);
///   * M1 WL      — wirelength on M1 only;
///   * #via12     — vias between M1 and M2;
///   * #dM1       — direct vertical M1 routes: 2-pin (sub)net connections
///                  realized with a single vertical M1 segment (zero-length
///                  abutments included);
///   * #DRV       — remaining wire-edge overflow after the final iteration
///                  (the design-rule-violation proxy).
#pragma once

#include <unordered_set>
#include <vector>

#include "route/maze_router.h"

namespace vm1 {

struct RouterOptions {
  int max_iterations = 5;   ///< rip-up and reroute rounds
  int bbox_margin = 16;     ///< grid margin around a net's terminal bbox
  MazeCostOptions cost;
  TrackGraphOptions graph;
  bool route_clock = true;  ///< include clock nets
};

struct RouteMetrics {
  long rwl_dbu = 0;
  long wl_by_layer[kNumRouteLayers] = {0, 0, 0, 0};
  long via12 = 0;
  long via23 = 0;
  long via34 = 0;
  long num_dm1 = 0;
  long num_m1_segments = 0;  ///< connected vertical M1 runs in the design
  long drv = 0;
  int unrouted = 0;
  double runtime_sec = 0;

  long m1_wl_dbu() const { return wl_by_layer[kM1]; }
};

/// Per-net routed data. `routed` defaults to true so nets the router never
/// attempts (unroutable single-pin stubs, excluded clocks) are not counted
/// as failures; route_net() sets it false on an actual search failure.
struct NetRoute {
  bool routed = true;
  int dm1 = 0;  ///< direct vertical M1 connections on this net
  std::unordered_set<std::size_t> wire_edges;  ///< edge ids (from-node)
  std::unordered_set<std::size_t> via_edges;   ///< low-node ids
  long len_by_layer[kNumRouteLayers] = {0, 0, 0, 0};
  int vias_by_pair[kNumRouteLayers - 1] = {0, 0, 0};

  long total_len() const {
    long t = 0;
    for (long l : len_by_layer) t += l;
    return t;
  }
};

/// Routes the design in its *current* placement. Create a fresh Router after
/// any placement change.
class Router {
 public:
  explicit Router(const Design& d, const RouterOptions& opts = {});

  /// Runs the full negotiated-congestion flow and returns the metrics.
  RouteMetrics route();

  const TrackGraph& graph() const { return graph_; }
  const MazeState& state() const { return state_; }
  const std::vector<NetRoute>& net_routes() const { return net_routes_; }
  const RouteMetrics& metrics() const { return metrics_; }

  /// Per-net routed wirelength in DBU (0 when unrouted); used by STA/power.
  long net_length_dbu(int net) const {
    return net_routes_[net].total_len();
  }

 private:
  bool route_net(int net);
  void rip_up(int net);
  void finalize_metrics(double elapsed);

  const Design* design_;
  RouterOptions opts_;
  TrackGraph graph_;
  MazeState state_;
  std::vector<NetRoute> net_routes_;
  RouteMetrics metrics_;
};

}  // namespace vm1
