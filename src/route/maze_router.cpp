#include "route/maze_router.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"

namespace vm1 {

MazeState::MazeState(const TrackGraph& graph, const MazeCostOptions& opts)
    : graph_(&graph), opts_(opts) {
  std::size_t n = graph.num_nodes();
  wire_use_.assign(n, 0);
  via_use_.assign(n, 0);
  history_.assign(n * 2, 0.0f);  // [0,n): wire history, [n,2n): via history
  dist_.assign(n, 0.0);
  parent_.assign(n, -1);
  stamp_.assign(n, 0);
  target_stamp_.assign(n, 0);
}

void MazeState::accumulate_history() {
  std::size_t n = graph_->num_nodes();
  for (std::size_t e = 0; e < n; ++e) {
    int over = wire_use_[e] - opts_.wire_capacity;
    if (over > 0) history_[e] += static_cast<float>(over);
    int vover = via_use_[e] - opts_.via_capacity;
    if (vover > 0) history_[n + e] += static_cast<float>(vover);
  }
}

long MazeState::total_overflow() const {
  long total = 0;
  for (int u : wire_use_) total += std::max(0, u - opts_.wire_capacity);
  return total;
}

std::vector<std::size_t> MazeState::overused_edges() const {
  std::vector<std::size_t> out;
  for (std::size_t e = 0; e < wire_use_.size(); ++e) {
    if (wire_use_[e] > opts_.wire_capacity) out.push_back(e);
  }
  return out;
}

void MazeState::reset_usage() {
  std::fill(wire_use_.begin(), wire_use_.end(), 0);
  std::fill(via_use_.begin(), via_use_.end(), 0);
}

double MazeState::wire_cost(int layer, std::size_t from_node) const {
  double base = static_cast<double>(TrackGraph::edge_len_dbu(layer));
  int over = wire_use_[from_node] - opts_.wire_capacity + 1;
  double congestion =
      over > 0 ? opts_.overuse_penalty * static_cast<double>(over) : 0.0;
  return base + congestion +
         opts_.history_weight * static_cast<double>(history_[from_node]);
}

double MazeState::via_cost(std::size_t low_node) const {
  int over = via_use_[low_node] - opts_.via_capacity + 1;
  double congestion =
      over > 0 ? opts_.overuse_penalty * static_cast<double>(over) : 0.0;
  std::size_t n = graph_->num_nodes();
  return opts_.via_cost + congestion +
         opts_.history_weight * static_cast<double>(history_[n + low_node]);
}

std::vector<GNode> MazeState::search(const std::vector<GNode>& sources,
                                     const std::vector<GNode>& targets,
                                     int net, int bx0, int by0, int bx1,
                                     int by1) {
  const TrackGraph& g = *graph_;
  ++cur_stamp_;

  for (const GNode& t : targets) {
    if (!g.valid(t.layer, t.gx, t.gy)) continue;
    target_stamp_[g.node_id(t.layer, t.gx, t.gy)] = cur_stamp_;
  }

  using QE = std::pair<double, std::size_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;

  auto relax = [&](std::size_t id, double cost, std::int64_t par) {
    if (stamp_[id] == cur_stamp_ && dist_[id] <= cost) return;
    stamp_[id] = cur_stamp_;
    dist_[id] = cost;
    parent_[id] = par;
    pq.push({cost, id});
  };

  for (const GNode& s : sources) {
    if (!g.valid(s.layer, s.gx, s.gy)) continue;
    if (!g.passable(s.layer, s.gx, s.gy, net)) continue;
    relax(g.node_id(s.layer, s.gx, s.gy), 0.0, -1);
  }

  // Decode node id -> (layer, gx, gy).
  const int wrow = g.width() + 1;
  const std::size_t per_layer =
      static_cast<std::size_t>(wrow) * (g.height() + 1);
  auto decode = [&](std::size_t id) {
    int layer = static_cast<int>(id / per_layer);
    std::size_t rem = id % per_layer;
    int gy = static_cast<int>(rem / wrow);
    int gx = static_cast<int>(rem % wrow);
    return GNode{layer, gx, gy};
  };

  std::size_t found = static_cast<std::size_t>(-1);
  long popped = 0;
  while (!pq.empty()) {
    auto [cost, id] = pq.top();
    pq.pop();
    ++popped;
    if (stamp_[id] != cur_stamp_ || cost > dist_[id]) continue;
    if (target_stamp_[id] == cur_stamp_) {
      found = id;
      break;
    }
    GNode nd = decode(id);

    auto try_wire = [&](int fx, int fy, int tx, int ty, std::size_t from_id,
                        std::size_t to_id) {
      // Edge is identified by its low/left endpoint (fx, fy).
      if (fx < bx0 || tx > bx1 || fy < by0 || ty > by1) return;
      if (!g.edge_allowed(nd.layer, fx, fy, net)) return;
      double c = cost + wire_cost(nd.layer, from_id);
      relax(to_id, c, static_cast<std::int64_t>(id));
    };

    if (TrackGraph::is_vertical(nd.layer)) {
      if (nd.gy < g.height()) {
        try_wire(nd.gx, nd.gy, nd.gx, nd.gy + 1, id,
                 g.node_id(nd.layer, nd.gx, nd.gy + 1));
      }
      if (nd.gy > 0) {
        std::size_t to = g.node_id(nd.layer, nd.gx, nd.gy - 1);
        try_wire(nd.gx, nd.gy - 1, nd.gx, nd.gy, to, to);
      }
    } else {
      if (nd.gx < g.width()) {
        try_wire(nd.gx, nd.gy, nd.gx + 1, nd.gy, id,
                 g.node_id(nd.layer, nd.gx + 1, nd.gy));
      }
      if (nd.gx > 0) {
        std::size_t to = g.node_id(nd.layer, nd.gx - 1, nd.gy);
        try_wire(nd.gx - 1, nd.gy, nd.gx, nd.gy, to, to);
      }
    }

    // Vias: between layer l and l+1 at this (gx, gy).
    for (int dl : {+1, -1}) {
      int nl = nd.layer + dl;
      if (nl < 0 || nl >= kNumRouteLayers) continue;
      if (!g.valid(nl, nd.gx, nd.gy)) continue;
      if (!g.passable(nl, nd.gx, nd.gy, net)) continue;
      if (nd.gx < bx0 || nd.gx > bx1 || nd.gy < by0 || nd.gy > by1) continue;
      int low_layer = std::min(nd.layer, nl);
      std::size_t low_id = g.node_id(low_layer, nd.gx, nd.gy);
      double c = cost + via_cost(low_id);
      relax(g.node_id(nl, nd.gx, nd.gy), c, static_cast<std::int64_t>(id));
    }
  }

  // One bulk add per search keeps the pop loop metric-free.
  static obs::Counter& searches_metric = obs::counter("route.maze_searches");
  static obs::Counter& expansions_metric =
      obs::counter("route.maze_expansions");
  searches_metric.add();
  expansions_metric.add(popped);

  std::vector<GNode> path;
  if (found == static_cast<std::size_t>(-1)) return path;
  std::int64_t cur = static_cast<std::int64_t>(found);
  while (cur >= 0) {
    path.push_back(decode(static_cast<std::size_t>(cur)));
    cur = parent_[static_cast<std::size_t>(cur)];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace vm1
