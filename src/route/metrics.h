/// \file metrics.h
/// Routing metric helpers: congestion maps and pretty-printing.
#pragma once

#include <string>
#include <vector>

#include "route/router.h"

namespace vm1 {

/// Wire-edge overflow accumulated into coarse bins (for congestion studies
/// and the ASCII heat map in examples/congestion_study).
struct CongestionMap {
  int bins_x = 0;
  int bins_y = 0;
  std::vector<long> overflow;  ///< bins_x * bins_y, row-major from bottom

  long at(int bx, int by) const {
    return overflow[static_cast<std::size_t>(by) * bins_x + bx];
  }
  long total() const;
};

/// Builds a congestion map with roughly `target_bins_x` columns.
CongestionMap build_congestion_map(const Router& router,
                                   int target_bins_x = 32);

/// Renders the map as an ASCII heat map (rows top to bottom).
std::string render_congestion(const CongestionMap& map);

/// One-line summary of routing metrics.
std::string summarize(const RouteMetrics& m);

}  // namespace vm1
