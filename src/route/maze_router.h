/// \file maze_router.h
/// Negotiated-congestion maze search over the TrackGraph.
///
/// Implements the inner engine of a PathFinder-style router: multi-source /
/// multi-target Dijkstra with present-congestion and history costs. The
/// outer rip-up-and-reroute loop lives in router.h.
#pragma once

#include <cstdint>
#include <vector>

#include "route/track_graph.h"

namespace vm1 {

/// Cost parameters for negotiated congestion.
struct MazeCostOptions {
  double via_cost = 4.0;
  double overuse_penalty = 12.0;  ///< added per unit of overuse on an edge
  double history_weight = 2.0;
  int wire_capacity = 1;
  int via_capacity = 4;
};

/// Shared routing state: per-edge usage and history. Wire edges are
/// identified by their *from* node id (the +direction edge leaving that
/// node along the layer); vias by the lower-layer node id.
class MazeState {
 public:
  MazeState(const TrackGraph& graph, const MazeCostOptions& opts);

  const TrackGraph& graph() const { return *graph_; }
  const MazeCostOptions& options() const { return opts_; }

  int wire_use(std::size_t from_node) const { return wire_use_[from_node]; }
  int via_use(std::size_t low_node) const { return via_use_[low_node]; }
  void add_wire(std::size_t from_node, int delta) {
    wire_use_[from_node] += delta;
  }
  void add_via(std::size_t low_node, int delta) {
    via_use_[low_node] += delta;
  }

  /// Adds current overuse into the history map (end of a rip-up iteration).
  void accumulate_history();
  /// Total wire-edge overuse (the DRV proxy).
  long total_overflow() const;
  /// Collects nodes whose outgoing wire edge is overused.
  std::vector<std::size_t> overused_edges() const;

  void reset_usage();

  /// Multi-source/multi-target Dijkstra for `net`, restricted to grid bbox
  /// [bx0,bx1]x[by0,by1]. Returns the node path from a source to a target
  /// (inclusive), or empty when unreachable.
  std::vector<GNode> search(const std::vector<GNode>& sources,
                            const std::vector<GNode>& targets, int net,
                            int bx0, int by0, int bx1, int by1);

 private:
  double wire_cost(int layer, std::size_t from_node) const;
  double via_cost(std::size_t low_node) const;

  const TrackGraph* graph_;
  MazeCostOptions opts_;
  std::vector<int> wire_use_;
  std::vector<int> via_use_;
  std::vector<float> history_;

  // Search scratch (stamped to avoid O(N) clears per search).
  std::vector<double> dist_;
  std::vector<std::int64_t> parent_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t cur_stamp_ = 0;
};

}  // namespace vm1
