#include "route/metrics.h"

#include <algorithm>
#include <sstream>

namespace vm1 {

long CongestionMap::total() const {
  long t = 0;
  for (long v : overflow) t += v;
  return t;
}

CongestionMap build_congestion_map(const Router& router, int target_bins_x) {
  const TrackGraph& g = router.graph();
  const MazeState& st = router.state();
  CongestionMap map;
  map.bins_x = std::max(1, std::min(target_bins_x, g.width()));
  int bin_w = std::max(1, (g.width() + map.bins_x - 1) / map.bins_x);
  map.bins_x = (g.width() + bin_w) / bin_w;
  int bin_h = bin_w;  // square-ish bins in grid units
  map.bins_y = (g.height() + bin_h) / bin_h;
  map.overflow.assign(static_cast<std::size_t>(map.bins_x) * map.bins_y, 0);

  const int cap = st.options().wire_capacity;
  const std::size_t per_layer =
      static_cast<std::size_t>(g.width() + 1) * (g.height() + 1);
  for (std::size_t id = 0; id < g.num_nodes(); ++id) {
    int over = st.wire_use(id) - cap;
    if (over <= 0) continue;
    std::size_t rem = id % per_layer;
    int gy = static_cast<int>(rem / (g.width() + 1));
    int gx = static_cast<int>(rem % (g.width() + 1));
    int bx = std::min(map.bins_x - 1, gx / bin_w);
    int by = std::min(map.bins_y - 1, gy / bin_h);
    map.overflow[static_cast<std::size_t>(by) * map.bins_x + bx] += over;
  }
  return map;
}

std::string render_congestion(const CongestionMap& map) {
  static const char kShades[] = " .:-=+*#%@";
  long peak = 1;
  for (long v : map.overflow) peak = std::max(peak, v);
  std::ostringstream os;
  for (int by = map.bins_y - 1; by >= 0; --by) {
    for (int bx = 0; bx < map.bins_x; ++bx) {
      long v = map.at(bx, by);
      int shade = static_cast<int>(
          v * (static_cast<long>(sizeof(kShades)) - 2) / peak);
      os << kShades[shade];
    }
    os << '\n';
  }
  return os.str();
}

std::string summarize(const RouteMetrics& m) {
  std::ostringstream os;
  os << "RWL=" << m.rwl_dbu << " M1WL=" << m.m1_wl_dbu()
     << " via12=" << m.via12 << " dM1=" << m.num_dm1 << " DRV=" << m.drv
     << " unrouted=" << m.unrouted;
  return os.str();
}

}  // namespace vm1
