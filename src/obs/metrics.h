/// \file metrics.h
/// Global metric registry: named counters, gauges, and log-scale latency
/// histograms, safe to update from any thread.
///
/// Hot-path contract: updating a metric is a handful of relaxed atomic
/// operations (counters are thread-sharded to avoid cache-line ping-pong).
/// Callers on hot paths cache the handle once:
///
///   static obs::Counter& pivots = obs::counter("lp.pivots");
///   pivots.add(r.iterations);
///
/// Handles returned by counter()/gauge()/histogram() are valid for the
/// process lifetime; reset_metrics() zeroes values but never invalidates a
/// handle. snapshot_metrics() reads everything with relaxed loads — values
/// racing with concurrent updates are each individually coherent, which is
/// all a telemetry dump needs.
///
/// Naming scheme (see DESIGN.md "Telemetry & tracing"):
///   <layer>.<noun>[_<unit>]   e.g. "milp.nodes", "dist_opt.window_solve_sec"
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vm1::obs {

namespace detail {

/// Relaxed CAS add/min/max for atomic<double> (fetch_add on double is C++20
/// but not universally lock-free; the CAS loop is portable and contention
/// here is negligible).
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Stable small integer id per thread, for shard selection.
unsigned thread_shard();

}  // namespace detail

/// Monotonic counter, sharded across cache lines so concurrent add() from
/// many workers never contends on one atomic.
class Counter {
 public:
  static constexpr unsigned kShards = 8;  // power of two

  void add(long d = 1) {
    shards_[detail::thread_shard() & (kShards - 1)].v.fetch_add(
        d, std::memory_order_relaxed);
  }
  long value() const {
    long t = 0;
    for (const Shard& s : shards_) t += s.v.load(std::memory_order_relaxed);
    return t;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<long> v{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> v_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
};

/// Log-scale histogram: 4 buckets per power of two covering ~1e-9 .. ~1e10,
/// so one shape serves both latencies in seconds and raw counts. Quantiles
/// are estimated by geometric interpolation inside the landing bucket
/// (resolution 2^(1/4) ~ 19%, plenty for p50/p95/p99 latency tracking).
class Histogram {
 public:
  static constexpr int kBuckets = 256;
  static constexpr int kSubBuckets = 4;  ///< buckets per power of two
  static constexpr int kBias = 120;      ///< bucket index of v = 2^-30

  void observe(double v);
  HistogramSnapshot snapshot() const;
  void reset();

  static int bucket_of(double v);
  /// Lower value bound of bucket i.
  static double bucket_lo(int i);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};  // valid only when count_ > 0
  std::atomic<double> max_{0};
};

/// Registry lookups: find-or-create by name. Thread-safe; the returned
/// reference is stable forever.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

struct MetricsSnapshot {
  std::vector<std::pair<std::string, long>> counters;      // name-sorted
  std::vector<std::pair<std::string, double>> gauges;      // name-sorted
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Point-in-time view of every registered metric.
MetricsSnapshot snapshot_metrics();

/// Zeroes every registered metric (handles stay valid). For tests and bench
/// harnesses that want per-phase deltas.
void reset_metrics();

/// RAII latency sample: observes elapsed seconds into `h` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::uint64_t start_ns_;
};

}  // namespace vm1::obs
