/// \file progress.h
/// Rate-limited progress reporting for long optimization runs, emitted
/// through the logging layer (so a custom log sink captures it too).
///
/// A ProgressReporter tracks work items done out of an (optionally known)
/// total plus the latest objective value, and emits at most one log line
/// per interval — so unit tests and short runs stay silent while an hour
/// long Table-2 run shows windows done, ETA, and objective delta.
///
/// The interval defaults to 5 seconds and can be overridden globally with
/// VM1_PROGRESS_SEC (e.g. VM1_PROGRESS_SEC=1 for chattier runs; 0 emits on
/// every advance).
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "util/logging.h"

namespace vm1::obs {

class ProgressReporter {
 public:
  /// `total` = expected advance() count (0 = unknown; no percentage/ETA).
  explicit ProgressReporter(std::string label, long total = 0,
                            double interval_sec = 5.0);

  /// Thread-safe. Records `n` completed items and maybe emits a line.
  void advance(long n = 1);

  /// Thread-safe. Records the latest objective value (reported with a
  /// delta against the previously *reported* value).
  void update_objective(double obj);

  /// Emits a final summary line iff a periodic line was emitted earlier
  /// (quiet runs end quietly). Called by the destructor.
  void finish();
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  long done() const { return done_.load(std::memory_order_relaxed); }

 private:
  void maybe_emit(bool force);

  std::string label_;
  long total_;
  double interval_sec_;
  Timer timer_;
  std::atomic<long> done_{0};
  std::atomic<double> objective_{0};
  std::atomic<bool> have_objective_{false};
  std::atomic<bool> emitted_{false};
  std::atomic<bool> finished_{false};
  std::mutex emit_mu_;          // serializes emission only
  double last_emit_sec_ = 0;    // guarded by emit_mu_
  double last_reported_obj_ = 0;  // guarded by emit_mu_
  bool have_reported_obj_ = false;  // guarded by emit_mu_
};

}  // namespace vm1::obs
