#include "obs/progress.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vm1::obs {

namespace {

double env_interval(double fallback) {
  static const char* e = std::getenv("VM1_PROGRESS_SEC");
  if (!e) return fallback;
  double v = std::atof(e);
  return v >= 0 ? v : fallback;
}

}  // namespace

ProgressReporter::ProgressReporter(std::string label, long total,
                                   double interval_sec)
    : label_(std::move(label)),
      total_(total),
      interval_sec_(env_interval(interval_sec)) {}

void ProgressReporter::advance(long n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  maybe_emit(false);
}

void ProgressReporter::update_objective(double obj) {
  objective_.store(obj, std::memory_order_relaxed);
  have_objective_.store(true, std::memory_order_relaxed);
}

void ProgressReporter::maybe_emit(bool force) {
  double elapsed = timer_.seconds();
  if (!force) {
    // Racy pre-check; the authoritative check re-runs under the lock.
    if (log_level() > LogLevel::kInfo) return;
  }
  std::unique_lock lock(emit_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (!force) return;  // someone else is emitting right now
    lock.lock();
  }
  if (!force && elapsed - last_emit_sec_ < interval_sec_) return;
  last_emit_sec_ = elapsed;

  long done = done_.load(std::memory_order_relaxed);
  char buf[256];
  int len;
  if (total_ > 0) {
    double pct = 100.0 * static_cast<double>(done) /
                 static_cast<double>(total_);
    len = std::snprintf(buf, sizeof buf, "%s: %ld/%ld (%.0f%%), elapsed %.1fs",
                        label_.c_str(), done, total_, pct, elapsed);
    if (done > 0 && done < total_) {
      double eta = elapsed / static_cast<double>(done) *
                   static_cast<double>(total_ - done);
      len += std::snprintf(buf + len, sizeof buf - static_cast<size_t>(len),
                           ", eta %.1fs", eta);
    }
  } else {
    len = std::snprintf(buf, sizeof buf, "%s: %ld steps, elapsed %.1fs",
                        label_.c_str(), done, elapsed);
  }
  if (have_objective_.load(std::memory_order_relaxed) &&
      len < static_cast<int>(sizeof buf)) {
    double obj = objective_.load(std::memory_order_relaxed);
    len += std::snprintf(buf + len, sizeof buf - static_cast<size_t>(len),
                         ", objective %.6g", obj);
    if (have_reported_obj_ && last_reported_obj_ != 0 &&
        len < static_cast<int>(sizeof buf)) {
      double delta = (obj - last_reported_obj_) /
                     std::abs(last_reported_obj_) * 100.0;
      std::snprintf(buf + len, sizeof buf - static_cast<size_t>(len),
                    " (%+.2f%%)", delta);
    }
    last_reported_obj_ = obj;
    have_reported_obj_ = true;
  }
  emitted_.store(true, std::memory_order_relaxed);
  log_info(buf);
}

void ProgressReporter::finish() {
  if (finished_.exchange(true, std::memory_order_relaxed)) return;
  if (emitted_.load(std::memory_order_relaxed)) maybe_emit(true);
}

ProgressReporter::~ProgressReporter() { finish(); }

}  // namespace vm1::obs
