#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "util/logging.h"

namespace vm1::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

namespace {

struct Event {
  const char* name = nullptr;
  char ph = 'X';
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  int nargs = 0;
  TraceArg args[kMaxTraceArgs];
};

/// Per-thread event ring. The owner thread pushes under `mu` (uncontended
/// in steady state); the flusher takes the same mutex, so no event copy
/// races with export — TSan-clean by construction.
struct Ring {
  explicit Ring(std::size_t cap) : slots(cap) {}
  std::mutex mu;
  std::vector<Event> slots;
  std::uint64_t head = 0;  ///< total events pushed (monotonic)
  int tid = 0;
};

/// Leaky singleton so flushing from atexit never touches a destroyed
/// object regardless of static destruction order.
struct State {
  std::mutex mu;  // guards everything below; lock order: State::mu, Ring::mu
  std::vector<std::shared_ptr<Ring>> rings;
  std::string path;
  std::size_t capacity = 1 << 15;
  std::uint64_t epoch_ns = 0;
  /// Bumped per trace_start/stop; threads re-register when stale. Atomic
  /// because the fast path in current_ring() reads it without State::mu.
  std::atomic<int> generation{0};
  bool atexit_registered = false;
};

State& state() {
  static State* s = new State;
  return *s;
}

struct ThreadSlot {
  std::shared_ptr<Ring> ring;
  int generation = -1;
};
thread_local ThreadSlot t_slot;

Ring* current_ring() {
  State& s = state();
  if (t_slot.generation != s.generation.load(std::memory_order_relaxed)) {
    std::lock_guard lock(s.mu);
    if (!trace_enabled()) return nullptr;
    auto ring = std::make_shared<Ring>(s.capacity);
    ring->tid = static_cast<int>(s.rings.size());
    s.rings.push_back(ring);
    t_slot.ring = ring;
    t_slot.generation = s.generation.load(std::memory_order_relaxed);
  }
  return t_slot.ring.get();
}

void push_event(const Event& e) {
  if (!trace_enabled()) return;
  Ring* r = current_ring();
  if (!r) return;
  std::lock_guard lock(r->mu);
  r->slots[r->head % r->slots.size()] = e;
  ++r->head;
}

void json_escape_to(std::FILE* f, const char* s) {
  for (; *s; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (c < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

void write_args(std::FILE* f, const Event& e) {
  if (e.nargs == 0) return;
  std::fputs(",\"args\":{", f);
  for (int i = 0; i < e.nargs; ++i) {
    const TraceArg& a = e.args[i];
    if (i) std::fputc(',', f);
    std::fputc('"', f);
    json_escape_to(f, a.key);
    std::fputs("\":", f);
    if (a.is_string) {
      std::fputc('"', f);
      json_escape_to(f, a.str);
      std::fputc('"', f);
    } else if (a.num == static_cast<double>(static_cast<long long>(a.num)) &&
               a.num > -1e15 && a.num < 1e15) {
      std::fprintf(f, "%lld", static_cast<long long>(a.num));
    } else {
      std::fprintf(f, "%.9g", a.num);
    }
  }
  std::fputc('}', f);
}

/// Writes the collected rings as Chrome trace_event JSON. Caller holds
/// State::mu.
void flush_locked(State& s) {
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (!f) {
    log_warn("obs: cannot open trace file ", s.path);
    return;
  }
  std::fputs("{\n\"traceEvents\": [", f);
  bool first = true;
  long dropped = 0;
  for (const auto& ring : s.rings) {
    std::lock_guard lock(ring->mu);
    const std::size_t cap = ring->slots.size();
    std::uint64_t begin = ring->head > cap ? ring->head - cap : 0;
    dropped += static_cast<long>(begin);
    for (std::uint64_t i = begin; i < ring->head; ++i) {
      const Event& e = ring->slots[i % cap];
      std::fputs(first ? "\n" : ",\n", f);
      first = false;
      std::fputs("{\"name\":\"", f);
      json_escape_to(f, e.name);
      std::fprintf(f, "\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f",
                   e.ph, ring->tid,
                   static_cast<double>(e.ts_ns - s.epoch_ns) / 1000.0);
      if (e.ph == 'X') {
        std::fprintf(f, ",\"dur\":%.3f",
                     static_cast<double>(e.dur_ns) / 1000.0);
      } else if (e.ph == 'i') {
        std::fputs(",\"s\":\"t\"", f);
      }
      write_args(f, e);
      std::fputc('}', f);
    }
  }
  std::fprintf(f,
               "\n],\n\"displayTimeUnit\": \"ms\",\n"
               "\"otherData\": {\"dropped_events\": %ld, \"threads\": %d}\n}\n",
               dropped, static_cast<int>(s.rings.size()));
  std::fclose(f);
  log_info("obs: wrote trace to ", s.path, " (", s.rings.size(),
           " thread(s), ", dropped, " dropped)");
}

void set_arg(TraceArg& a, const char* key, double v) {
  a.key = key;
  a.is_string = false;
  a.num = v;
}

void set_arg(TraceArg& a, const char* key, const char* v) {
  a.key = key;
  a.is_string = true;
  std::snprintf(a.str, sizeof a.str, "%s", v ? v : "");
}

/// VM1_TRACE / VM1_LOG environment hooks, evaluated before main so
/// unmodified binaries (quickstart, benches, tests) are traceable.
struct EnvInit {
  EnvInit() {
    if (const char* lvl = std::getenv("VM1_LOG")) {
      std::string v(lvl);
      if (v == "debug") set_log_level(LogLevel::kDebug);
      else if (v == "info") set_log_level(LogLevel::kInfo);
      else if (v == "warn") set_log_level(LogLevel::kWarn);
      else if (v == "error") set_log_level(LogLevel::kError);
      else log_warn("obs: unknown VM1_LOG level '", v, "' (want debug|info|warn|error)");
    }
    if (const char* path = std::getenv("VM1_TRACE")) {
      if (*path) trace_start(path);
    }
  }
};
EnvInit g_env_init;

}  // namespace

void trace_start(const std::string& path, std::size_t ring_capacity) {
  if (ring_capacity == 0) ring_capacity = 1;
  trace_stop();  // flush any active session first
  State& s = state();
  std::lock_guard lock(s.mu);
  s.path = path;
  s.capacity = ring_capacity;
  s.epoch_ns = detail::now_ns();
  s.rings.clear();
  ++s.generation;  // invalidates every thread's cached ring
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { trace_stop(); });
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  State& s = state();
  std::lock_guard lock(s.mu);
  if (!trace_enabled()) return;
  // Stop intake first: spans ending after this point are dropped.
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  flush_locked(s);
  s.rings.clear();
  ++s.generation;
}

void ObsSpan::begin(const char* name) {
  name_ = name;
  start_ns_ = detail::now_ns();
  active_ = true;
}

void ObsSpan::end() {
  Event e;
  e.name = name_;
  e.ph = 'X';
  e.ts_ns = start_ns_;
  e.dur_ns = detail::now_ns() - start_ns_;
  e.nargs = nargs_;
  for (int i = 0; i < nargs_; ++i) e.args[i] = args_[i];
  push_event(e);
  active_ = false;
}

ObsSpan& ObsSpan::arg(const char* key, double v) {
  if (active_ && nargs_ < kMaxTraceArgs) set_arg(args_[nargs_++], key, v);
  return *this;
}

ObsSpan& ObsSpan::arg(const char* key, const char* v) {
  if (active_ && nargs_ < kMaxTraceArgs) set_arg(args_[nargs_++], key, v);
  return *this;
}

void trace_instant(const char* name, const char* key, double v) {
  if (!trace_enabled()) return;
  Event e;
  e.name = name;
  e.ph = 'i';
  e.ts_ns = detail::now_ns();
  if (key) {
    e.nargs = 1;
    set_arg(e.args[0], key, v);
  }
  push_event(e);
}

void trace_instant(const char* name, const char* key, const char* v) {
  if (!trace_enabled()) return;
  Event e;
  e.name = name;
  e.ph = 'i';
  e.ts_ns = detail::now_ns();
  if (key) {
    e.nargs = 1;
    set_arg(e.args[0], key, v);
  }
  push_event(e);
}

}  // namespace vm1::obs
