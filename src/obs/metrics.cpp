#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace vm1::obs {

namespace detail {

unsigned thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

int Histogram::bucket_of(double v) {
  if (!(v > 0)) return 0;  // zero, negative, NaN -> smallest bucket
  int idx = static_cast<int>(std::floor(std::log2(v) * kSubBuckets)) + kBias;
  return std::clamp(idx, 0, kBuckets - 1);
}

double Histogram::bucket_lo(int i) {
  return std::exp2(static_cast<double>(i - kBias) / kSubBuckets);
}

void Histogram::observe(double v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  if (prev == 0) {
    // First sample initializes min/max; racing observers fix it up below.
    double z = 0;
    min_.compare_exchange_strong(z, v, std::memory_order_relaxed);
    z = 0;
    max_.compare_exchange_strong(z, v, std::memory_order_relaxed);
  }
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  s.count = total;
  if (total == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);

  auto quantile = [&](double q) {
    double target = q * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (counts[i] == 0) continue;
      if (static_cast<double>(cum + counts[i]) >= target) {
        double frac = (target - static_cast<double>(cum)) /
                      static_cast<double>(counts[i]);
        double v = bucket_lo(i) * std::exp2(frac / kSubBuckets);
        return std::clamp(v, s.min, s.max);
      }
      cum += counts[i];
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

/// Leaky singleton: metric handles must outlive every static destructor
/// (trace flush and bench JSON emission run at exit).
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& m,
                  const std::string& name) {
  auto& p = m[name];
  if (!p) p = std::make_unique<T>();
  return *p;
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return find_or_create(r.counters, name);
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return find_or_create(r.gauges, name);
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return find_or_create(r.histograms, name);
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  MetricsSnapshot s;
  for (const auto& [name, c] : r.counters) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : r.gauges) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : r.histograms) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

namespace {
std::uint64_t now_ns_mono() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Histogram& h) : h_(h), start_ns_(now_ns_mono()) {}

ScopedTimer::~ScopedTimer() {
  h_.observe(static_cast<double>(now_ns_mono() - start_ns_) * 1e-9);
}

}  // namespace vm1::obs
