/// \file trace.h
/// Lock-cheap span tracer with Chrome trace_event JSON export.
///
/// ObsSpan is an RAII scope: construction records a begin timestamp,
/// destruction pushes one complete ("ph":"X") event onto the calling
/// thread's ring buffer. trace_stop() (or process exit) merges every
/// thread's ring into a JSON file loadable by chrome://tracing and Perfetto.
///
/// Overhead contract:
///  * tracing DISABLED (the default): a span is one relaxed atomic load —
///    no allocation, no branch beyond the check, nothing else;
///  * tracing ENABLED: a begin timestamp plus, at scope exit, one
///    uncontended per-thread mutex lock and a struct copy into a
///    fixed-size ring. Rings wrap: the newest events win, the dropped
///    count is reported in the exported JSON ("otherData.dropped_events").
///
/// Span/event names MUST be string literals (or otherwise outlive the
/// trace session); they are stored by pointer. Argument strings are copied
/// (truncated to a small fixed buffer).
///
/// Enabling: set VM1_TRACE=<path> in the environment (auto-starts before
/// main, flushes at exit), or call trace_start()/trace_stop() directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vm1::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
std::uint64_t now_ns();
}  // namespace detail

/// True while a trace session is active. Relaxed load; safe anywhere.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Starts a trace session writing to `path` on trace_stop()/exit.
/// `ring_capacity` bounds the events kept per thread (wraparound keeps the
/// newest). Restarting an active session flushes the previous one first.
void trace_start(const std::string& path, std::size_t ring_capacity = 1 << 15);

/// Ends the session and writes the JSON file. No-op when not tracing.
void trace_stop();

/// One key/value annotation on a trace event.
struct TraceArg {
  const char* key = nullptr;
  bool is_string = false;
  double num = 0;
  char str[24] = {};  ///< truncated copy for string values
};

inline constexpr int kMaxTraceArgs = 3;

/// RAII traced scope. Usage:
///   obs::ObsSpan span("dist_opt.window_solve");
///   span.arg("window", widx).arg("cells", n);
///   ...;
///   span.arg("outcome", to_string(out));   // args may be added any time
class ObsSpan {
 public:
  explicit ObsSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  ~ObsSpan() {
    if (active_) end();
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  ObsSpan& arg(const char* key, double v);
  ObsSpan& arg(const char* key, long v) { return arg(key, static_cast<double>(v)); }
  ObsSpan& arg(const char* key, int v) { return arg(key, static_cast<double>(v)); }
  ObsSpan& arg(const char* key, std::size_t v) {
    return arg(key, static_cast<double>(v));
  }
  ObsSpan& arg(const char* key, const char* v);

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  int nargs_ = 0;
  TraceArg args_[kMaxTraceArgs];
};

/// Instant event ("ph":"i", thread scope) with an optional annotation —
/// e.g. a new branch-and-bound incumbent. No-op when tracing is disabled.
void trace_instant(const char* name, const char* key = nullptr, double v = 0);
void trace_instant(const char* name, const char* key, const char* v);

}  // namespace vm1::obs
