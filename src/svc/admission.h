/// \file admission.h
/// Admission control for the placement service: a bounded total backlog
/// plus per-tenant quotas, so one tenant's burst degrades into typed
/// rejections instead of unbounded queue growth.
///
/// Not synchronized — the JobManager calls every method under its own
/// lock, which is also what makes try_admit + enqueue atomic.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/job.h"

namespace vm1::svc {

class AdmissionController {
 public:
  /// `max_queue_depth` bounds jobs in kQueued across all tenants (running
  /// jobs have left the queue). Throws std::invalid_argument on a
  /// non-positive depth, duplicate tenant, or invalid tenant config.
  AdmissionController(int max_queue_depth,
                      const std::vector<TenantConfig>& tenants);

  /// Returns the rejection reason, or nullopt when the job was admitted
  /// (the queued/outstanding counters are then already charged — pair
  /// every admit with exactly one on_started + on_terminal).
  std::optional<std::string> try_admit(const std::string& tenant);

  /// The job left the queue for an executor (queued -> admitted).
  void on_started(const std::string& tenant);
  /// The job reached a terminal state. `was_queued` is true when it never
  /// started (rejected queued deadline / queued cancel), so the queue
  /// counter is released too.
  void on_terminal(const std::string& tenant, bool was_queued);

  int queue_depth() const { return queued_; }
  bool has_tenant(const std::string& tenant) const {
    return tenants_.count(tenant) != 0;
  }

 private:
  struct Tenant {
    int max_jobs = 0;
    int outstanding = 0;  ///< queued + admitted + running
  };
  int max_queue_depth_;
  int queued_ = 0;
  std::unordered_map<std::string, Tenant> tenants_;
};

}  // namespace vm1::svc
