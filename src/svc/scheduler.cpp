#include "svc/scheduler.h"

#include <limits>
#include <stdexcept>

#include "obs/metrics.h"

namespace vm1::svc {

namespace {

// Per-tenant SLO counter; the registry deduplicates by name, so repeated
// lookups return the same handle.
obs::Counter& served_counter(const std::string& tenant) {
  return obs::counter("svc.tenant." + tenant + ".windows_served");
}

}  // namespace

FairScheduler::FairScheduler(const std::vector<TenantConfig>& tenants) {
  for (const TenantConfig& t : tenants) {
    if (t.weight <= 0) {
      throw std::invalid_argument("svc: tenant " + t.name +
                                  " weight must be > 0");
    }
    if (!tenants_.emplace(t.name, Tenant{t.weight, 0, 0, {}}).second) {
      throw std::invalid_argument("svc: duplicate tenant " + t.name);
    }
    order_.push_back(t.name);
  }
}

void FairScheduler::acquire(const std::string& tenant, int windows) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    throw std::invalid_argument("svc: acquire for unknown tenant " + tenant);
  }
  Waiter w;
  w.cost = windows > 0 ? windows : 1;  // zero-cost grants must still rotate
  it->second.queue.push_back(&w);
  grant_next_locked();
  cv_.wait(lock, [&w] { return w.granted; });
}

void FairScheduler::release() {
  std::lock_guard<std::mutex> lock(mu_);
  busy_ = false;
  grant_next_locked();
}

void FairScheduler::grant_next_locked() {
  if (busy_) return;

  // Deficit round-robin: the next grant goes to the waiting tenant whose
  // head batch becomes affordable first as deficits fill at `weight` per
  // unit of virtual time — i.e. the argmin of (cost - deficit) / weight.
  // Everyone waiting advances by that same virtual-time slice, so over a
  // saturated interval each tenant's served windows grow proportionally
  // to its weight regardless of batch sizes.
  Tenant* pick = nullptr;
  const std::string* pick_name = nullptr;
  double pick_need = std::numeric_limits<double>::infinity();
  for (const std::string& name : order_) {
    Tenant& t = tenants_[name];
    if (t.queue.empty()) continue;
    double need = (static_cast<double>(t.queue.front()->cost) - t.deficit) /
                  t.weight;
    if (need < pick_need) {
      pick = &t;
      pick_name = &name;
      pick_need = need;
    }
  }
  if (!pick) return;

  if (pick_need > 0) {
    for (const std::string& name : order_) {
      Tenant& t = tenants_[name];
      if (!t.queue.empty()) t.deficit += pick_need * t.weight;
    }
  }

  Waiter* w = pick->queue.front();
  pick->queue.pop_front();
  pick->deficit -= static_cast<double>(w->cost);
  pick->served += w->cost;
  // Classic DRR: an emptied queue forfeits its residual credit instead of
  // banking unbounded burst allowance for later.
  if (pick->queue.empty()) pick->deficit = 0;
  served_counter(*pick_name).add(w->cost);
  w->granted = true;
  busy_ = true;
  cv_.notify_all();
}

void FairScheduler::credit(const std::string& tenant, long windows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    throw std::invalid_argument("svc: credit for unknown tenant " + tenant);
  }
  it->second.served += windows;
  served_counter(tenant).add(windows);
}

long FairScheduler::served_windows(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.served;
}

std::vector<std::pair<std::string, long>> FairScheduler::served_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, long>> out;
  out.reserve(order_.size());
  for (const std::string& name : order_) {
    out.emplace_back(name, tenants_.at(name).served);
  }
  return out;
}

}  // namespace vm1::svc
